(* irdl-stats: regenerate the paper's evaluation (Table 1, Figures 3-12)
   from the bundled IRDL corpus, or analyze user-provided IRDL files. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail_diag d =
  Fmt.epr "%a@." Irdl_support.Diag.pp d;
  exit 1

let figures =
  [
    ("table1", `Table1); ("fig3", `Fig3); ("fig4", `Fig4); ("fig5", `Fig5);
    ("fig6", `Fig6); ("fig7", `Fig7); ("fig8", `Fig8); ("fig9", `Fig9);
    ("fig10", `Fig10); ("fig11", `Fig11); ("fig12", `Fig12);
  ]

let run_fmt files =
  (* Normalizing IRDL formatter: parse and pretty-print each file. *)
  List.iter
    (fun path ->
      match Irdl_core.Parser.parse_file ~file:path (read_file path) with
      | Error d -> fail_diag d
      | Ok ds ->
          List.iter
            (fun d -> print_string (Irdl_core.Pp.dialect_to_string d))
            ds)
    files

let run_doc name files =
  let dls =
    if files = [] then
      match Irdl_dialects.Corpus.analyze () with
      | Ok dls -> dls
      | Error d -> fail_diag d
    else
      List.concat_map
        (fun path ->
          match Irdl_core.Irdl.analyze ~file:path (read_file path) with
          | Ok dls -> dls
          | Error d -> fail_diag d)
        files
  in
  match
    List.find_opt (fun (dl : Irdl_core.Resolve.dialect) -> dl.dl_name = name) dls
  with
  | Some dl -> print_string (Irdl_analysis.Docgen.dialect_to_string dl)
  | None ->
      Fmt.epr "no dialect named %S; available: %s@." name
        (String.concat ", "
           (List.map (fun (dl : Irdl_core.Resolve.dialect) -> dl.dl_name) dls));
      exit 2

let run_xref name files =
  let asts =
    if files = [] then
      List.concat_map
        (fun (e : Irdl_dialects.Corpus.entry) ->
          match Irdl_core.Parser.parse_file ~file:e.name e.source with
          | Ok ds -> ds
          | Error d -> fail_diag d)
        Irdl_dialects.Corpus.all
    else
      List.concat_map
        (fun path ->
          match Irdl_core.Parser.parse_file ~file:path (read_file path) with
          | Ok ds -> ds
          | Error d -> fail_diag d)
        files
  in
  let entries = List.concat_map Irdl_analysis.Xref.index asts in
  match
    List.filter (fun (e : Irdl_analysis.Xref.entry) -> e.e_name = name) entries
  with
  | [] ->
      Fmt.epr "no definition named %S@." name;
      exit 2
  | hits -> List.iter (Fmt.pr "%a@." Irdl_analysis.Xref.pp_entry) hits

let run only fmt doc xref files =
  if fmt then (run_fmt files; exit 0);
  (match doc with
  | Some name -> (run_doc name files; exit 0)
  | None -> ());
  (match xref with
  | Some name -> (run_xref name files; exit 0)
  | None -> ());
  let dls =
    if files = [] then
      match Irdl_dialects.Corpus.analyze () with
      | Ok dls -> dls
      | Error d -> fail_diag d
    else
      List.concat_map
        (fun path ->
          match Irdl_core.Irdl.analyze ~file:path (read_file path) with
          | Ok dls -> dls
          | Error d -> fail_diag d)
        files
  in
  let ppf = Fmt.stdout in
  let profiles = Irdl_analysis.Op_stats.profiles_of_corpus dls in
  (match only with
  | None -> Irdl_analysis.Report.full ppf dls
  | Some which -> (
      match List.assoc_opt which figures with
      | None ->
          Fmt.epr "unknown figure %S; available: %s@." which
            (String.concat ", " (List.map fst figures));
          exit 2
      | Some `Table1 -> Irdl_analysis.Report.table1 ppf dls
      | Some `Fig3 -> Irdl_analysis.Report.fig3 ppf dls
      | Some `Fig4 -> Irdl_analysis.Report.fig4 ppf dls
      | Some `Fig5 -> Irdl_analysis.Report.fig5 ppf profiles
      | Some `Fig6 -> Irdl_analysis.Report.fig6 ppf profiles
      | Some `Fig7 -> Irdl_analysis.Report.fig7 ppf profiles
      | Some `Fig8 -> Irdl_analysis.Report.fig8 ppf dls
      | Some `Fig9 -> Irdl_analysis.Report.fig9 ppf dls
      | Some `Fig10 -> Irdl_analysis.Report.fig10 ppf dls
      | Some `Fig11 -> Irdl_analysis.Report.fig11 ppf dls
      | Some `Fig12 -> Irdl_analysis.Report.fig12 ppf dls));
  Fmt.flush ppf ()

let only =
  Arg.(
    value & opt (some string) None
    & info [ "only" ] ~docv:"FIG"
        ~doc:
          "Print a single experiment: table1 or fig3..fig12 (default: all).")

let fmt_flag =
  Arg.(
    value & flag
    & info [ "fmt" ]
        ~doc:"Act as an IRDL formatter: parse the files and re-print them \
              in normalized form instead of analyzing.")

let xref_flag =
  Arg.(
    value & opt (some string) None
    & info [ "xref" ] ~docv:"NAME"
        ~doc:
          "Show the definition site and every reference of the named \
           definition (types, aliases, enums, constraints, operations).")

let doc_flag =
  Arg.(
    value & opt (some string) None
    & info [ "doc" ] ~docv:"DIALECT"
        ~doc:
          "Generate markdown documentation for the named dialect (from the \
           bundled corpus, or from the given IRDL files).")

let files =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "IRDL files to analyze instead of the bundled 28-dialect corpus.")

let cmd =
  let doc = "reproduce the paper's IR-design analysis (PLDI'22, section 6)" in
  Cmd.v (Cmd.info "irdl-stats" ~doc)
    Term.(const run $ only $ fmt_flag $ doc_flag $ xref_flag $ files)

let () = exit (Cmd.eval cmd)
