(* Regions, terminators and successors (paper sections 4.6, Listings 7-8).

   Builds the cmath.range_loop operation — a loop whose body region takes
   the induction variable as a block argument and must end in the dedicated
   range_loop_terminator — plus a small CFG using conditional_branch, and
   shows the region/terminator/successor checks the generated verifier
   performs.

   Run with: dune exec examples/range_loop.exe *)

open Irdl_ir

let loop_ir =
  {|
"test.wrapper"() ({
^bb0(%lb: i32, %ub: i32, %step: i32):
  "cmath.range_loop"(%lb, %ub, %step) ({
  ^body(%iv: i32):
    "cmath.range_loop_terminator"() : () -> ()
  }) : (i32, i32, i32) -> ()
}) : () -> ()
|}

let cfg_ir =
  {|
"test.wrapper"() ({
^entry(%cond: i1, %x: i32):
  "cmath.conditional_branch"(%cond)[^then, ^else] : (i1) -> ()
^then:
  "test.use"(%x) : (i32) -> ()
^else:
  "test.sink"() : () -> ()
}) : () -> ()
|}

let () =
  let ctx = Context.create () in
  (match Irdl_dialects.Cmath.load ctx with
  | Ok _ -> ()
  | Error d -> failwith (Irdl_support.Diag.to_string d));

  (* A well-formed loop parses and verifies. *)
  let loop =
    match Parser.parse_op_string ~file:"loop.mlir" ctx loop_ir with
    | Ok op -> op
    | Error d -> failwith (Irdl_support.Diag.to_string d)
  in
  (match Verifier.verify ctx loop with
  | Ok () -> Fmt.pr "range_loop verifies: OK@."
  | Error d -> Fmt.pr "unexpected failure: %a@." Irdl_support.Diag.pp d);
  Fmt.pr "@.%s@.@." (Printer.op_to_string ctx loop);

  (* A CFG with successors: conditional_branch is a terminator with two
     successor blocks (Listing 8). *)
  let cfg =
    match Parser.parse_op_string ~file:"cfg.mlir" ctx cfg_ir with
    | Ok op -> op
    | Error d -> failwith (Irdl_support.Diag.to_string d)
  in
  (match Verifier.verify ctx cfg with
  | Ok () -> Fmt.pr "conditional_branch CFG verifies: OK@."
  | Error d -> Fmt.pr "unexpected failure: %a@." Irdl_support.Diag.pp d);
  Fmt.pr "@.%s@.@." (Printer.op_to_string ctx cfg);

  (* Now the rejections the paper's region constraints imply. *)
  let expect_failure what src =
    match Parser.parse_op_string ctx src with
    | Error d -> Fmt.pr "%s rejected at parse time:@.  %a@." what Irdl_support.Diag.pp d
    | Ok op -> (
        match Verifier.verify ctx op with
        | Ok () -> Fmt.pr "BUG: %s was accepted@." what
        | Error d -> Fmt.pr "%s correctly rejected:@.  %a@." what Irdl_support.Diag.pp d)
  in

  (* Wrong terminator: the body must end in range_loop_terminator. *)
  expect_failure "loop body with wrong terminator"
    {|
"test.wrapper"() ({
^bb0(%lb: i32, %ub: i32, %step: i32):
  "cmath.range_loop"(%lb, %ub, %step) ({
  ^body(%iv: i32):
    "test.done"() : () -> ()
  }) : (i32, i32, i32) -> ()
}) : () -> ()
|};

  (* Wrong region argument type: the induction variable must be i32. *)
  expect_failure "loop body with f32 induction variable"
    {|
"test.wrapper"() ({
^bb0(%lb: i32, %ub: i32, %step: i32):
  "cmath.range_loop"(%lb, %ub, %step) ({
  ^body(%iv: f32):
    "cmath.range_loop_terminator"() : () -> ()
  }) : (i32, i32, i32) -> ()
}) : () -> ()
|};

  (* Terminator misplacement: a terminator op must be last in its block. *)
  expect_failure "terminator in the middle of a block"
    {|
"test.wrapper"() ({
^bb0(%c: i1):
  "cmath.range_loop_terminator"() : () -> ()
  "test.use"(%c) : (i1) -> ()
}) : () -> ()
|};

  (* Wrong successor count for conditional_branch. *)
  expect_failure "conditional_branch with one successor"
    {|
"test.wrapper"() ({
^entry(%cond: i1):
  "cmath.conditional_branch"(%cond)[^only] : (i1) -> ()
^only:
  "test.sink"() : () -> ()
}) : () -> ()
|}
