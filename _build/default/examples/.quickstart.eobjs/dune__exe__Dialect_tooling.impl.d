examples/dialect_tooling.ml: Fmt Irdl_analysis Irdl_core Irdl_dialects Irdl_ir Irdl_support List Option Printf String
