examples/range_loop.mli:
