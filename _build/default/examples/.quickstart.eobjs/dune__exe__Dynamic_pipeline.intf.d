examples/dynamic_pipeline.mli:
