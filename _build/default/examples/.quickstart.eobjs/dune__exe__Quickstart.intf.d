examples/quickstart.mli:
