examples/range_loop.ml: Context Fmt Irdl_dialects Irdl_ir Irdl_support Parser Printer Verifier
