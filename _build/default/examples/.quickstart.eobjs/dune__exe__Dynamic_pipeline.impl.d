examples/dynamic_pipeline.ml: Context Fmt Graph Irdl_core Irdl_ir Irdl_rewrite Irdl_support List Parser Printer Verifier
