examples/dialect_tooling.mli:
