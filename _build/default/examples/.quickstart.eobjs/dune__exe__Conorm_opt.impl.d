examples/conorm_opt.ml: Attr Context Driver Fmt Graph Hashtbl Irdl_dialects Irdl_ir Irdl_rewrite Irdl_support Parser Pattern Printer Verifier
