examples/quickstart.ml: Attr Builder Context Fmt Graph Irdl_core Irdl_dialects Irdl_ir Irdl_support List Parser Printer Verifier
