examples/conorm_opt.mli:
