(* IR meta-tooling over self-contained IRDL specifications.

   The paper's thesis (section 3) is that a structured, introspectable IR
   definition format enables an ecosystem of tooling: documentation
   generators, statistics, completion, refactoring. This example builds
   three small tools on the public API, all driven purely by the IRDL
   corpus — no tool knows anything about any specific dialect:

   1. a documentation generator (summaries + signatures for a dialect),
   2. an "op skeleton" generator (the completion a language server would
      insert for an operation name),
   3. a corpus query tool (find every operation matching a predicate).

   Run with: dune exec examples/dialect_tooling.exe *)

module R = Irdl_core.Resolve
module C = Irdl_core.Constraint_expr

let corpus () =
  match Irdl_dialects.Corpus.analyze () with
  | Ok dls -> dls
  | Error d -> failwith (Irdl_support.Diag.to_string d)

(* ---------- 1. documentation generator ---------- *)

let pp_slot ppf (s : R.slot) =
  Fmt.pf ppf "%s: %a" s.s_name C.pp s.s_constraint

let document_dialect ppf (dl : R.dialect) =
  Fmt.pf ppf "## Dialect `%s`@." dl.dl_name;
  List.iter
    (fun (td : R.typedef) ->
      Fmt.pf ppf "  type !%s.%s(%a)  — %s@." dl.dl_name td.td_name
        Fmt.(list ~sep:comma pp_slot)
        td.td_params
        (Option.value ~default:"(no summary)" td.td_summary))
    dl.dl_types;
  List.iter
    (fun (op : R.op) ->
      Fmt.pf ppf "  op %s.%s : (%a) -> (%a)%s  — %s@." dl.dl_name op.op_name
        Fmt.(list ~sep:comma pp_slot)
        op.op_operands
        Fmt.(list ~sep:comma pp_slot)
        op.op_results
        (if op.op_regions <> [] then
           Printf.sprintf " [%d regions]" (List.length op.op_regions)
         else "")
        (Option.value ~default:"(no summary)" op.op_summary))
    dl.dl_ops

(* ---------- 2. op skeleton generation ("completion") ---------- *)

(* The library's spec-based synthesizer does the heavy lifting; this tool
   just renders what a language server would insert. *)
let example_ty = Irdl_core.Skeleton.example_ty

let skeleton (dl : R.dialect) (op : R.op) : string =
  let operand_tys =
    List.map (fun (s : R.slot) -> example_ty s.s_constraint) op.op_operands
  in
  let result_tys =
    List.map (fun (s : R.slot) -> example_ty s.s_constraint) op.op_results
  in
  let ty_str = function
    | Some ty -> Irdl_ir.Attr.ty_to_string ty
    | None -> "<ty>"
  in
  Printf.sprintf "%s = \"%s.%s\"(%s) : (%s) -> (%s)"
    (String.concat ", "
       (List.mapi (fun i _ -> Printf.sprintf "%%r%d" i) result_tys))
    dl.dl_name op.op_name
    (String.concat ", "
       (List.mapi (fun i _ -> Printf.sprintf "%%a%d" i) operand_tys))
    (String.concat ", " (List.map ty_str operand_tys))
    (String.concat ", " (List.map ty_str result_tys))

(* ---------- 3. corpus queries ---------- *)

let query ~name ~pred dls =
  let hits =
    List.concat_map
      (fun (dl : R.dialect) ->
        List.filter_map
          (fun (op : R.op) ->
            if pred op then Some (dl.dl_name ^ "." ^ op.R.op_name) else None)
          dl.dl_ops)
      dls
  in
  Fmt.pr "query %-38s %4d ops   e.g. %s@." name (List.length hits)
    (String.concat ", "
       (List.filteri (fun i _ -> i < 4) hits))

let () =
  let dls = corpus () in
  (* 1. Document a small dialect end-to-end. *)
  let scf = List.find (fun (dl : R.dialect) -> dl.dl_name = "scf") dls in
  document_dialect Fmt.stdout scf;

  (* 2. Completion skeletons for a few well-known ops. *)
  Fmt.pr "@.## Completion skeletons@.";
  List.iter
    (fun (dname, opname) ->
      let dl = List.find (fun (dl : R.dialect) -> dl.dl_name = dname) dls in
      let op = List.find (fun (o : R.op) -> o.R.op_name = opname) dl.dl_ops in
      Fmt.pr "  %s@." (skeleton dl op))
    [
      ("arith", "addi"); ("memref", "load"); ("llvm", "icmp");
      ("tosa", "conv2d"); ("complex", "mul");
    ];

  (* 3. Structural queries over all 28 dialects. *)
  Fmt.pr "@.## Corpus queries@.";
  query dls ~name:"terminators with >=2 successors"
    ~pred:(fun op ->
      match op.R.op_successors with Some l -> List.length l >= 2 | None -> false);
  query dls ~name:"ops with multiple regions"
    ~pred:(fun op -> List.length op.R.op_regions >= 2);
  query dls ~name:"ops with >=2 variadic operand groups"
    ~pred:(fun op ->
      List.length
        (List.filter
           (fun (s : R.slot) -> C.is_variadic s.s_constraint)
           op.R.op_operands)
      >= 2);
  query dls ~name:"ops needing IRDL-C++ local constraints"
    ~pred:Irdl_analysis.Expressiveness.op_local_needs_native;
  query dls ~name:"zero-operand zero-result ops"
    ~pred:(fun op -> op.R.op_operands = [] && op.R.op_results = [])
