(* Quickstart: the paper's sections 2-4 in one runnable file.

   1. Define the cmath dialect in IRDL (Listing 3) and register it at
      runtime — no code generation involved.
   2. Parse the conorm function (Listing 1a) from its textual form.
   3. Verify it against the generated verifiers, print it back, and show
      what the verifier rejects.

   Run with: dune exec examples/quickstart.exe *)

open Irdl_ir

let conorm_ir =
  {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):
  %norm_p = cmath.norm %p : f32
  %norm_q = cmath.norm %q : f32
  %pq = "arith.mulf"(%norm_p, %norm_q) : (f32, f32) -> f32
  "func.return"(%pq) : (f32) -> ()
}) {sym_name = "conorm"} : () -> ()
|}

let () =
  (* A context holds the registered dialects; loading an IRDL spec
     instantiates operation/type/attribute definitions dynamically. *)
  let ctx = Context.create () in
  (match Irdl_dialects.Cmath.load ctx with
  | Ok dialect ->
      Fmt.pr "loaded dialect '%s': %d types, %d attributes, %d operations@."
        dialect.Irdl_core.Resolve.dl_name
        (List.length dialect.dl_types)
        (List.length dialect.dl_attrs)
        (List.length dialect.dl_ops)
  | Error d -> failwith (Irdl_support.Diag.to_string d));

  (* Parse the paper's Listing 1a. Operations with a declarative Format
     (cmath.norm) parse in their custom syntax; others use generic form. *)
  let func =
    match Parser.parse_op_string ~file:"conorm.mlir" ctx conorm_ir with
    | Ok op -> op
    | Error d -> failwith (Irdl_support.Diag.to_string d)
  in

  (* Verify: every cmath op is checked by the verifier generated from its
     IRDL constraints (the runtime analog of Listing 2's C++). *)
  (match Verifier.verify ctx func with
  | Ok () -> Fmt.pr "verification: OK@."
  | Error d -> Fmt.pr "verification failed: %a@." Irdl_support.Diag.pp d);

  Fmt.pr "@.%s@.@." (Printer.op_to_string ctx func);

  (* Build IR programmatically with the builder API. *)
  let complex_f32 =
    Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.typ Attr.f32 ]
  in
  let block = Graph.Block.create ~arg_tys:[ complex_f32; complex_f32 ] () in
  let b = Builder.at_end_of block in
  let args = Graph.Block.args block in
  let p, q = (List.nth args 0, List.nth args 1) in
  let pq =
    Builder.build1 b ~operands:[ p; q ] ~result_ty:complex_f32 "cmath.mul"
  in
  let norm = Builder.build1 b ~operands:[ pq ] ~result_ty:Attr.f32 "cmath.norm" in
  let _ = Builder.build b ~operands:[ norm ] "func.return" in
  let region = Graph.Region.create ~blocks:[ block ] () in
  let func2 =
    Graph.Op.create ~regions:[ region ]
      ~attrs:[ ("sym_name", Attr.string "conorm_fast") ]
      "func.func"
  in
  (match Verifier.verify ctx func2 with
  | Ok () -> Fmt.pr "builder-constructed function verifies: OK@."
  | Error d -> Fmt.pr "unexpected failure: %a@." Irdl_support.Diag.pp d);
  Fmt.pr "@.%s@.@." (Printer.op_to_string ctx func2);

  (* What the generated verifier rejects: mixing element types violates
     cmath.mul's constraint variable T. *)
  let complex_f64 =
    Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.typ Attr.f64 ]
  in
  let bad_arg = Graph.Block.create ~arg_tys:[ complex_f32; complex_f64 ] () in
  let args = Graph.Block.args bad_arg in
  let bad =
    Graph.Op.create
      ~operands:[ List.nth args 0; List.nth args 1 ]
      ~result_tys:[ complex_f32 ] "cmath.mul"
  in
  (match Verifier.verify_op ctx bad with
  | Ok () -> Fmt.pr "BUG: ill-typed mul accepted@."
  | Error d ->
      Fmt.pr "ill-typed cmath.mul correctly rejected:@.  %a@."
        Irdl_support.Diag.pp d);

  (* And a type-level rejection: complex of a non-float parameter. *)
  let bad_ty =
    Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.typ Attr.i32 ]
  in
  match Verifier.verify_ty ctx bad_ty with
  | Ok () -> Fmt.pr "BUG: !cmath.complex<i32> accepted@."
  | Error d ->
      Fmt.pr "!cmath.complex<i32> correctly rejected:@.  %a@."
        Irdl_support.Diag.pp d
