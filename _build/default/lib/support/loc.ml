(** Source locations for diagnostics.

    A location names a point (file, line, column) or a half-open span between
    two points in the same file. Columns are 1-based and count Unicode scalar
    values as single columns only for ASCII input, which is all IRDL accepts. *)

type pos = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  offset : int;  (** 0-based byte offset into the source buffer *)
}

type t = { start_pos : pos; end_pos : pos }

let start_of_file file = { file; line = 1; col = 1; offset = 0 }

let unknown_pos = { file = "<unknown>"; line = 0; col = 0; offset = 0 }
let unknown = { start_pos = unknown_pos; end_pos = unknown_pos }
let is_unknown t = t.start_pos.line = 0

let point p = { start_pos = p; end_pos = p }
let span a b = { start_pos = a; end_pos = b }

(** Smallest span covering both locations. Unknown locations are absorbed. *)
let merge a b =
  if is_unknown a then b
  else if is_unknown b then a
  else
    let start_pos =
      if a.start_pos.offset <= b.start_pos.offset then a.start_pos
      else b.start_pos
    in
    let end_pos =
      if a.end_pos.offset >= b.end_pos.offset then a.end_pos else b.end_pos
    in
    { start_pos; end_pos }

let advance (p : pos) (c : char) =
  if c = '\n' then { p with line = p.line + 1; col = 1; offset = p.offset + 1 }
  else { p with col = p.col + 1; offset = p.offset + 1 }

let pp_pos ppf (p : pos) = Fmt.pf ppf "%s:%d:%d" p.file p.line p.col

let pp ppf t =
  if is_unknown t then Fmt.string ppf "<unknown loc>"
  else if t.start_pos = t.end_pos then pp_pos ppf t.start_pos
  else if t.start_pos.line = t.end_pos.line then
    Fmt.pf ppf "%s:%d:%d-%d" t.start_pos.file t.start_pos.line t.start_pos.col
      t.end_pos.col
  else Fmt.pf ppf "%a-%a" pp_pos t.start_pos pp_pos t.end_pos

let to_string t = Fmt.str "%a" pp t
