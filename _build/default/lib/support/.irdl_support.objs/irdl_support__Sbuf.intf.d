lib/support/sbuf.mli: Loc
