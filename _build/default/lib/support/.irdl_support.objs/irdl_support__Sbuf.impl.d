lib/support/sbuf.ml: Loc String
