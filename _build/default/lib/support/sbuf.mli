(** A character-stream cursor over an in-memory source buffer: the shared
    lexing base of the IRDL and IR-syntax lexers. *)

type t = { src : string; mutable pos : Loc.pos }

val of_string : ?file:string -> string -> t
val eof : t -> bool
val peek : t -> char option
val peek2 : t -> char option
(** The character after the next one, if any. *)

val pos : t -> Loc.pos
val advance : t -> unit
val next : t -> char option
(** Consume and return the next character. *)

val accept : t -> char -> bool
(** Consume [c] iff it is the next character. *)

val skip_while : t -> (char -> bool) -> unit
val slice : t -> Loc.pos -> Loc.pos -> string
(** The substring between two previously captured positions. *)

val take_while : t -> (char -> bool) -> string
val loc_from : t -> Loc.pos -> Loc.t
(** The span from a saved position to the current one. *)

(** Character classifiers shared by the lexers. *)

val is_digit : char -> bool
val is_alpha : char -> bool
val is_ident_start : char -> bool
val is_ident_char : char -> bool
val is_space : char -> bool
