(** Structured diagnostics.

    Every user-facing failure in the IRDL frontend, the IR parser and the
    generated verifiers is reported as a {!t}: a severity, a message, a source
    location, and optional notes. Internal invariant violations use
    [invalid_arg]/[assert] instead. *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
  notes : (Loc.t * string) list;
}

exception Error_exn of t

let make ?(severity = Error) ?(loc = Loc.unknown) ?(notes = []) message =
  { severity; loc; message; notes }

let error ?loc ?notes fmt =
  Fmt.kstr (fun message -> make ~severity:Error ?loc ?notes message) fmt

let warning ?loc ?notes fmt =
  Fmt.kstr (fun message -> make ~severity:Warning ?loc ?notes message) fmt

let errorf ?loc ?notes fmt =
  Fmt.kstr
    (fun message -> Result.Error (make ~severity:Error ?loc ?notes message))
    fmt

(** Raise the diagnostic as an exception; callers at API boundaries catch
    [Error_exn] and convert to [result]. *)
let raise_error ?loc ?notes fmt =
  Fmt.kstr
    (fun message -> raise (Error_exn (make ~severity:Error ?loc ?notes message)))
    fmt

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Note -> Fmt.string ppf "note"

let pp ppf t =
  if Loc.is_unknown t.loc then
    Fmt.pf ppf "%a: %s" pp_severity t.severity t.message
  else Fmt.pf ppf "%a: %a: %s" Loc.pp t.loc pp_severity t.severity t.message;
  List.iter
    (fun (loc, note) ->
      if Loc.is_unknown loc then Fmt.pf ppf "@\n  note: %s" note
      else Fmt.pf ppf "@\n  %a: note: %s" Loc.pp loc note)
    t.notes

let to_string t = Fmt.str "%a" pp t

(** Run [f], converting a raised [Error_exn] into [Error diag]. *)
let protect f = try Ok (f ()) with Error_exn d -> Error d

let get_ok = function
  | Ok v -> v
  | Error d -> raise (Error_exn d)
