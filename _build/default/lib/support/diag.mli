(** Structured diagnostics.

    Every user-facing failure (IRDL frontend, IR parser, generated
    verifiers) is reported as a {!t}; internal invariant violations use
    [invalid_arg]/[assert] instead. *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
  notes : (Loc.t * string) list;
}

exception Error_exn of t
(** Raised by {!raise_error}; caught at API boundaries by {!protect}. *)

val make :
  ?severity:severity -> ?loc:Loc.t -> ?notes:(Loc.t * string) list ->
  string -> t

val error :
  ?loc:Loc.t -> ?notes:(Loc.t * string) list ->
  ('a, Format.formatter, unit, t) format4 -> 'a
(** [error fmt ...] builds an error diagnostic from a format string. *)

val warning :
  ?loc:Loc.t -> ?notes:(Loc.t * string) list ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val errorf :
  ?loc:Loc.t -> ?notes:(Loc.t * string) list ->
  ('a, Format.formatter, unit, ('b, t) result) format4 -> 'a
(** Like {!error} but already wrapped in [Result.Error]. *)

val raise_error :
  ?loc:Loc.t -> ?notes:(Loc.t * string) list ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise the diagnostic as {!Error_exn}. *)

val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val protect : (unit -> 'a) -> ('a, t) result
(** Run a thunk, converting a raised {!Error_exn} into [Error]. *)

val get_ok : ('a, t) result -> 'a
(** Unwrap, re-raising {!Error_exn} on [Error]. *)
