(** Source locations for diagnostics. *)

type pos = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  offset : int;  (** 0-based byte offset into the source buffer *)
}

type t = { start_pos : pos; end_pos : pos }

val start_of_file : string -> pos
(** The position of the first character of the named file. *)

val unknown : t
(** A location standing for "no location information". *)

val is_unknown : t -> bool

val point : pos -> t
(** The empty span at a position. *)

val span : pos -> pos -> t
(** The half-open span between two positions of the same file. *)

val merge : t -> t -> t
(** Smallest span covering both locations; {!unknown} is absorbed. *)

val advance : pos -> char -> pos
(** Advance past one character, tracking lines and columns. *)

val pp_pos : Format.formatter -> pos -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
