(** Lexer for the IRDL surface syntax (paper §4). Keywords are lexed as
    plain identifiers and recognized by the parser, so they remain usable as
    definition names. *)

open Irdl_support

type token =
  | Ident of string  (** bare, possibly dotted: [signedness.Signed] *)
  | Bang_ident of string  (** [!f32], [!cmath.complex] *)
  | Hash_ident of string  (** [#f32_attr] *)
  | Int_lit of int64
  | Str of string
  | Punct of string  (** one of [{ } ( ) < > , : = [ ] -] *)
  | Eof

type t = { tok : token; loc : Loc.t }

val pp_token : Format.formatter -> token -> unit

val next_token : Sbuf.t -> t
(** Lex one token; skips whitespace and [//] comments.
    @raise Irdl_support.Diag.Error_exn on invalid input. *)

val tokenize : ?file:string -> string -> t list
(** Lex a whole buffer, including the final {!Eof}. *)
