(** Pretty-printer for IRDL ASTs.

    Emits the surface syntax of paper §4; [Pp.dialect] followed by
    [Parser.parse_one] is the identity on ASTs up to locations, a property
    the test suite checks with qcheck. *)

let pp_prefix ppf = function
  | Ast.P_type -> Fmt.string ppf "!"
  | Ast.P_attr -> Fmt.string ppf "#"
  | Ast.P_bare -> ()

let rec pp_cexpr ppf (e : Ast.cexpr) =
  match e with
  | Ast.C_ref { prefix; name; args; _ } -> (
      Fmt.pf ppf "%a%s" pp_prefix prefix name;
      match args with
      | None -> ()
      | Some args -> Fmt.pf ppf "<%a>" Fmt.(list ~sep:comma pp_cexpr) args)
  | Ast.C_int { value; kind = None; _ } -> Fmt.pf ppf "%Ld" value
  | Ast.C_int { value; kind = Some k; _ } -> Fmt.pf ppf "%Ld : %s" value k
  | Ast.C_string { value; _ } -> Fmt.pf ppf "%S" value
  | Ast.C_list { elems; _ } ->
      Fmt.pf ppf "[%a]" Fmt.(list ~sep:comma pp_cexpr) elems

let pp_param ppf (p : Ast.param) =
  Fmt.pf ppf "%s: %a" p.p_name pp_cexpr p.p_constraint

let pp_params ppf = function
  | [] -> ()
  | ps -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma pp_param) ps

let pp_summary ppf = function
  | None -> ()
  | Some s -> Fmt.pf ppf "@,Summary %S" s

let pp_cpp ppf snippets =
  List.iter (fun s -> Fmt.pf ppf "@,CppConstraint %S" s) snippets

let pp_type_def ppf (t : Ast.type_def) =
  Fmt.pf ppf "@[<v 2>Type %s {" t.t_name;
  if t.t_params <> [] then Fmt.pf ppf "@,Parameters %a" pp_params t.t_params;
  pp_summary ppf t.t_summary;
  pp_cpp ppf t.t_cpp_constraints;
  Fmt.pf ppf "@]@,}"

let pp_attr_def ppf (a : Ast.attr_def) =
  Fmt.pf ppf "@[<v 2>Attribute %s {" a.a_name;
  if a.a_params <> [] then Fmt.pf ppf "@,Parameters %a" pp_params a.a_params;
  pp_summary ppf a.a_summary;
  pp_cpp ppf a.a_cpp_constraints;
  Fmt.pf ppf "@]@,}"

let pp_region_def ppf (r : Ast.region_def) =
  Fmt.pf ppf "@,@[<v 2>Region %s {" r.r_name;
  if r.r_args <> [] then Fmt.pf ppf "@,Arguments %a" pp_params r.r_args;
  (match r.r_terminator with
  | None -> ()
  | Some t -> Fmt.pf ppf "@,Terminator %s" t);
  Fmt.pf ppf "@]@,}"

let pp_op_def ppf (o : Ast.op_def) =
  Fmt.pf ppf "@[<v 2>Operation %s {" o.o_name;
  if o.o_constraint_vars <> [] then
    Fmt.pf ppf "@,ConstraintVars %a" pp_params o.o_constraint_vars;
  if o.o_operands <> [] then Fmt.pf ppf "@,Operands %a" pp_params o.o_operands;
  if o.o_results <> [] then Fmt.pf ppf "@,Results %a" pp_params o.o_results;
  if o.o_attributes <> [] then
    Fmt.pf ppf "@,Attributes %a" pp_params o.o_attributes;
  List.iter (pp_region_def ppf) o.o_regions;
  (match o.o_successors with
  | None -> ()
  | Some succs ->
      Fmt.pf ppf "@,Successors (%a)" Fmt.(list ~sep:comma string) succs);
  (match o.o_format with None -> () | Some f -> Fmt.pf ppf "@,Format %S" f);
  pp_summary ppf o.o_summary;
  pp_cpp ppf o.o_cpp_constraints;
  Fmt.pf ppf "@]@,}"

let pp_alias_def ppf (a : Ast.alias_def) =
  Fmt.pf ppf "Alias %a%s" pp_prefix a.al_prefix a.al_name;
  if a.al_params <> [] then
    Fmt.pf ppf "<%a>" Fmt.(list ~sep:comma string) a.al_params;
  Fmt.pf ppf " = %a" pp_cexpr a.al_body

let pp_enum_def ppf (e : Ast.enum_def) =
  Fmt.pf ppf "Enum %s { %a }" e.e_name
    Fmt.(list ~sep:comma string)
    e.e_cases

let pp_constraint_def ppf (c : Ast.constraint_def) =
  Fmt.pf ppf "@[<v 2>Constraint %s : %a {" c.c_name pp_cexpr c.c_base;
  pp_summary ppf c.c_summary;
  pp_cpp ppf c.c_cpp_constraints;
  Fmt.pf ppf "@]@,}"

let pp_param_def ppf (tp : Ast.param_def) =
  Fmt.pf ppf "@[<v 2>TypeOrAttrParam %s {" tp.tp_name;
  pp_summary ppf tp.tp_summary;
  Fmt.pf ppf "@,CppClassName %S" tp.tp_class_name;
  (match tp.tp_parser with
  | None -> ()
  | Some s -> Fmt.pf ppf "@,CppParser %S" s);
  (match tp.tp_printer with
  | None -> ()
  | Some s -> Fmt.pf ppf "@,CppPrinter %S" s);
  Fmt.pf ppf "@]@,}"

let pp_item ppf = function
  | Ast.I_type t -> pp_type_def ppf t
  | Ast.I_attr a -> pp_attr_def ppf a
  | Ast.I_op o -> pp_op_def ppf o
  | Ast.I_alias a -> pp_alias_def ppf a
  | Ast.I_enum e -> pp_enum_def ppf e
  | Ast.I_constraint c -> pp_constraint_def ppf c
  | Ast.I_param tp -> pp_param_def ppf tp

let pp_dialect ppf (d : Ast.dialect) =
  Fmt.pf ppf "@[<v 2>Dialect %s {" d.d_name;
  List.iter (fun item -> Fmt.pf ppf "@,@,%a" pp_item item) d.d_items;
  Fmt.pf ppf "@]@,}@."

(* Strip the trailing indentation that vertical boxes leave on blank
   lines. *)
let strip_trailing_ws s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         let n = ref (String.length line) in
         while !n > 0 && (line.[!n - 1] = ' ' || line.[!n - 1] = '\t') do
           decr n
         done;
         String.sub line 0 !n)
  |> String.concat "\n"

let dialect_to_string d = strip_trailing_ws (Fmt.str "%a" pp_dialect d)
let cexpr_to_string e = Fmt.str "%a" pp_cexpr e
