(** Example-instance synthesis from resolved constraints: the foundation
    for completion tooling and spec-based testing of dialects. Synthesis is
    best-effort; unsatisfiable constraints yield [None]/[Error]. *)

open Irdl_ir
module C = Constraint_expr

type lookup =
  kind:[ `Type | `Attr ] -> dialect:string -> name:string ->
  Resolve.typedef option
(** Resolver for the parameters of referenced definitions: needed when a
    constraint is [!builtin.tensor] (any parameters) but the registered
    definition demands specific ones. *)

val no_lookup : lookup

val example_attr : ?lookup:lookup -> ?depth:int -> C.t -> Attr.t option
(** An attribute satisfying the constraint, if one is easy to exhibit. *)

val example_ty : ?lookup:lookup -> C.t -> Attr.ty option

type skip_reason =
  | Is_terminator  (** needs successor blocks we cannot fabricate *)
  | Multiple_variadic_groups
  | Unsatisfiable_slot of string

type op_lookup = dialect:string -> name:string -> Resolve.op option
(** Resolver for terminator operations referenced by region definitions. *)

val no_op_lookup : op_lookup

val instantiate_op :
  ?lookup:lookup -> ?op_lookup:op_lookup -> dialect:string -> Resolve.op ->
  (Graph.op, skip_reason) result
(** Synthesize an instance of the operation: operands fed by placeholder
    ["test.source"] ops, single-block regions with synthesized arguments
    and (via [op_lookup]) required terminators; shared constraint variables
    take a single example each. Terminators with non-empty successor lists
    are skipped. *)

val skip_reason_to_string : skip_reason -> string
