lib/core/constraint_expr.ml: Attr Fmt Int64 Irdl_ir List Map Native String
