lib/core/constraint_expr.mli: Attr Format Irdl_ir Map Native
