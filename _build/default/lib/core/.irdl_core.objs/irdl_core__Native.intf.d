lib/core/native.mli: Attr Graph Hashtbl Irdl_ir
