lib/core/ast.ml: Irdl_support List Loc
