lib/core/pp.ml: Ast Fmt List String
