lib/core/pp.mli: Ast Format
