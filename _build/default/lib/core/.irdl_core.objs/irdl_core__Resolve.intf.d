lib/core/resolve.mli: Ast Constraint_expr Diag Irdl_support Loc
