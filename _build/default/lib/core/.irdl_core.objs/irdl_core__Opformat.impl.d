lib/core/opformat.ml: Attr Constraint_expr Diag Hashtbl Irdl_ir Irdl_support List Opfmt Option Resolve Sbuf String
