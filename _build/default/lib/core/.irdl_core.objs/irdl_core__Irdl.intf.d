lib/core/irdl.mli: Ast Diag Irdl_ir Irdl_support Native Resolve
