lib/core/skeleton.ml: Attr Constraint_expr Fun Graph Hashtbl Irdl_ir List Option Resolve Result String
