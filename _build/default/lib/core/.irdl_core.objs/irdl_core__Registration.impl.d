lib/core/registration.ml: Attr Constraint_expr Context Diag Graph Int64 Irdl_ir Irdl_support List Native Opformat Option Resolve Result
