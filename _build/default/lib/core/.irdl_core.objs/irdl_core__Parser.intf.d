lib/core/parser.mli: Ast Diag Irdl_support
