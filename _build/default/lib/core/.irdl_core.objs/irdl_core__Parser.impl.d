lib/core/parser.ml: Ast Diag Irdl_support Lexer List Loc Sbuf
