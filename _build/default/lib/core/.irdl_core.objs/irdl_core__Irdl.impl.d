lib/core/irdl.ml: Diag Irdl_ir Irdl_support List Parser Registration Resolve Result
