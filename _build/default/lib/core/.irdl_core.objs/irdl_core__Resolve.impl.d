lib/core/resolve.ml: Ast Constraint_expr Diag Hashtbl Irdl_ir Irdl_support List Loc Map Option Sbuf String
