lib/core/skeleton.mli: Attr Constraint_expr Graph Irdl_ir Resolve
