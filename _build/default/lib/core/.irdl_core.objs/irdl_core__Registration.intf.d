lib/core/registration.mli: Context Diag Graph Irdl_ir Irdl_support Native Resolve
