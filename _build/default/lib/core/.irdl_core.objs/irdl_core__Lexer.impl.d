lib/core/lexer.ml: Buffer Diag Fmt Int64 Irdl_support List Loc Sbuf String
