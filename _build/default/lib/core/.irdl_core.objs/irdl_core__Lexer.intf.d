lib/core/lexer.mli: Format Irdl_support Loc Sbuf
