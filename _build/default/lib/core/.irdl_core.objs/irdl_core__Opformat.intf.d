lib/core/opformat.mli: Diag Irdl_ir Irdl_support Resolve
