lib/core/native.ml: Attr Graph Hashtbl Irdl_ir List Logs
