(** Pretty-printer for IRDL ASTs: emits the surface syntax of paper §4.
    [dialect_to_string] followed by [Parser.parse_one] is the identity on
    ASTs up to locations (property-tested). *)

val pp_prefix : Format.formatter -> Ast.prefix -> unit
val pp_cexpr : Format.formatter -> Ast.cexpr -> unit
val pp_param : Format.formatter -> Ast.param -> unit
val pp_type_def : Format.formatter -> Ast.type_def -> unit
val pp_attr_def : Format.formatter -> Ast.attr_def -> unit
val pp_op_def : Format.formatter -> Ast.op_def -> unit
val pp_alias_def : Format.formatter -> Ast.alias_def -> unit
val pp_enum_def : Format.formatter -> Ast.enum_def -> unit
val pp_constraint_def : Format.formatter -> Ast.constraint_def -> unit
val pp_param_def : Format.formatter -> Ast.param_def -> unit
val pp_item : Format.formatter -> Ast.item -> unit
val pp_dialect : Format.formatter -> Ast.dialect -> unit

val dialect_to_string : Ast.dialect -> string
(** Render a dialect, with trailing whitespace stripped from every line. *)

val cexpr_to_string : Ast.cexpr -> string
