(** Compiler for declarative operation formats (paper §4.7).

    Compiles an IRDL [Format] string such as ["$lhs, $rhs : $T.elementType"]
    against the operation's resolved constraints into the first-order
    {!Irdl_ir.Opfmt.t} structure interpreted by the generic printer and
    parser.

    Two well-formedness obligations are checked at compile time:
    - every type directive must be {e printable}: the constraint variable it
      mentions must be recoverable from an operand or result type by
      projecting through dynamic-type parameters; and
    - the format must be {e parseable}: every operand and result type must be
      reconstructible from the parsed directives, inverting the constraint
      structure (e.g. parsing [f32] for [$T.elementType] rebuilds
      [T = !cmath.complex<f32>] when [T : !complex<!FloatType>]).

    Formats on operations with regions or successors, or with more than one
    variadic operand group, are rejected; such operations use the generic
    syntax. *)

open Irdl_support
open Irdl_ir
module C = Constraint_expr

type token = T_lit of string | T_directive of string list  (** [$a.b] parts *)

let tokenize ~loc (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '$' then begin
      incr i;
      let start = !i in
      while
        !i < n && (Sbuf.is_ident_char s.[!i] || s.[!i] = '.')
      do
        incr i
      done;
      if !i = start then
        Diag.raise_error ~loc "format: '$' must be followed by a name";
      let parts = String.split_on_char '.' (String.sub s start (!i - start)) in
      toks := T_directive parts :: !toks
    end
    else if Sbuf.is_ident_start c then begin
      let start = !i in
      while !i < n && Sbuf.is_ident_char s.[!i] do
        incr i
      done;
      toks := T_lit (String.sub s start (!i - start)) :: !toks
    end
    else begin
      toks := T_lit (String.make 1 c) :: !toks;
      incr i
    end
  done;
  List.rev !toks

(* ---------------------------------------------------------------- *)
(* Projections: where can a printed directive read its value from?   *)
(* ---------------------------------------------------------------- *)

(** Find a path to constraint variable [name] inside [c]: [Some []] if [c]
    is the variable itself, [Some (i :: rest)] when it sits under the [i]-th
    parameter of a base-type constraint. *)
let rec var_path_in ~name (c : C.t) : int list option =
  match c with
  | C.Var v when v.v_name = name -> Some []
  | C.Base_type { params = Some ps; _ } ->
      let rec go i = function
        | [] -> None
        | p :: rest -> (
            match var_path_in ~name p with
            | Some path -> Some (i :: path)
            | None -> go (i + 1) rest)
      in
      go 0 ps
  | C.Variadic c | C.Optional c -> var_path_in ~name c
  | _ -> None

(** Search operand then result slots for a value of variable [name]. Only
    fixed (non-variadic) slots can anchor a projection. *)
let find_var_proj ~(operands : Resolve.slot list)
    ~(results : Resolve.slot list) ~name : Opfmt.ty_proj option =
  let search mk slots =
    let rec go i = function
      | [] -> None
      | (s : Resolve.slot) :: rest ->
          if C.is_variadic s.s_constraint then go (i + 1) rest
          else (
            match var_path_in ~name s.s_constraint with
            | Some path -> Some { Opfmt.source = mk i; path }
            | None -> go (i + 1) rest)
    in
    go 0 slots
  in
  match search (fun i -> `Operand i) operands with
  | Some p -> Some p
  | None -> search (fun i -> `Result i) results

(* ---------------------------------------------------------------- *)
(* Reconstruction: rebuilding types at parse time                    *)
(* ---------------------------------------------------------------- *)

(** What a parsed directive tells us about a variable: either the variable's
    full value, or one parameter of it. *)
type binding = Whole of int | Param of { directive : int; param : int }

let rec ty_expr_of ~(var_exprs : (string * Opfmt.ty_expr) list) (c : C.t) :
    Opfmt.ty_expr option =
  match c with
  | C.Eq (Attr.Type ty) -> Some (Opfmt.Known ty)
  | C.Var v -> (
      match List.assoc_opt v.v_name var_exprs with
      | Some e -> Some e
      | None -> (
          (* A variable with an equality constraint needs no directive. *)
          match ty_expr_of ~var_exprs v.v_constraint with
          | Some (Opfmt.Known _ as e) -> Some e
          | _ -> None))
  | C.Base_type { dialect; name; params = Some ps } ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | p :: rest -> (
            match ty_expr_of ~var_exprs p with
            | Some e -> go (e :: acc) rest
            | None -> None)
      in
      Option.map
        (fun params -> Opfmt.Wrap { dialect; name; params })
        (go [] ps)
  | C.Variadic c | C.Optional c -> ty_expr_of ~var_exprs c
  | C.And cs ->
      (* An [And] is reconstructible if any conjunct is. *)
      List.find_map (ty_expr_of ~var_exprs) cs
  | C.Native { base; _ } -> ty_expr_of ~var_exprs base
  | _ -> None

(** Reconstruct a variable's value from a parameter binding: requires the
    variable's constraint to pin every other parameter to a known type. *)
let var_expr_of_param_binding (v : C.var) ~directive ~param :
    Opfmt.ty_expr option =
  match v.v_constraint with
  | C.Base_type { dialect; name; params = Some ps } ->
      let rec go i acc = function
        | [] -> Some (List.rev acc)
        | p :: rest ->
            if i = param then
              go (i + 1) (Opfmt.From_directive directive :: acc) rest
            else (
              match ty_expr_of ~var_exprs:[] p with
              | Some e -> go (i + 1) (e :: acc) rest
              | None -> None)
      in
      Option.map
        (fun params -> Opfmt.Wrap { dialect; name; params })
        (go 0 [] ps)
  | _ -> None

(* ---------------------------------------------------------------- *)
(* The compiler                                                      *)
(* ---------------------------------------------------------------- *)

(** [lookup_type_params] resolves a dynamic type's parameter names (so that
    [$T.elementType] can be turned into a parameter index); it receives the
    type's dialect and name. *)
let compile ~(lookup_type_params : dialect:string -> name:string -> string list option)
    (dl_name : string) (op : Resolve.op) : (Opfmt.t, Diag.t) result =
  Diag.protect @@ fun () ->
  let fail fmt =
    Diag.raise_error ~loc:op.op_loc
      ("format of %s.%s: " ^^ fmt)
      dl_name op.op_name
  in
  let format =
    match op.op_format with None -> fail "no format string" | Some f -> f
  in
  if op.op_regions <> [] then fail "operations with regions cannot have a format";
  if op.op_successors <> None then
    fail "terminator operations cannot have a format";
  let variadic_operands =
    List.filter (fun (s : Resolve.slot) -> C.is_variadic s.s_constraint)
      op.op_operands
  in
  if List.length variadic_operands > 1 then
    fail "at most one variadic operand group is supported in formats";
  (match variadic_operands with
  | [ _ ] ->
      let last = List.nth op.op_operands (List.length op.op_operands - 1) in
      if not (C.is_variadic last.s_constraint) then
        fail "the variadic operand group must be the last operand"
  | _ -> ());
  if List.exists (fun (s : Resolve.slot) -> C.is_variadic s.s_constraint)
       op.op_results
  then fail "variadic results are not supported in formats";
  let operand_index name =
    let rec go i = function
      | [] -> None
      | (s : Resolve.slot) :: _ when s.s_name = name -> Some (i, s)
      | _ :: rest -> go (i + 1) rest
    in
    go 0 op.op_operands
  in
  let attr_slot name =
    List.exists (fun (s : Resolve.slot) -> s.s_name = name) op.op_attributes
  in
  let var_of name =
    List.find_opt (fun (v : C.var) -> v.v_name = name) op.op_vars
  in
  let param_index_of_var (v : C.var) field =
    match v.v_constraint with
    | C.Base_type { dialect; name; _ } -> (
        match lookup_type_params ~dialect ~name with
        | None -> fail "cannot resolve parameters of the type bound by $%s" v.C.v_name
        | Some names -> (
            match
              List.find_index (fun n -> n = field) names
            with
            | Some i -> (dialect, name, i)
            | None ->
                fail "type bound by $%s has no parameter '%s'" v.C.v_name field))
    | _ -> fail "$%s.%s requires %s to be constrained to a parametric type"
             v.C.v_name field v.C.v_name
  in
  let toks = tokenize ~loc:op.op_loc format in
  let items = ref [] in
  let bindings : (string * binding) list ref = ref [] in
  let n_directives = ref 0 in
  let seen_operands = Hashtbl.create 8 in
  List.iter
    (fun tok ->
      match tok with
      | T_lit s -> items := Opfmt.Lit s :: !items
      | T_directive [ name ] -> (
          match operand_index name with
          | Some (i, s) ->
              Hashtbl.replace seen_operands name ();
              if C.is_variadic s.s_constraint then
                items := Opfmt.Operand_group i :: !items
              else items := Opfmt.Operand_ref i :: !items
          | None ->
              if attr_slot name then items := Opfmt.Attr_ref name :: !items
              else (
                match var_of name with
                | Some v ->
                    let proj =
                      match
                        find_var_proj ~operands:op.op_operands
                          ~results:op.op_results ~name:v.C.v_name
                      with
                      | Some p -> p
                      | None ->
                          fail "$%s is not recoverable from any operand or \
                                result type" name
                    in
                    let index = !n_directives in
                    incr n_directives;
                    bindings := (name, Whole index) :: !bindings;
                    items := Opfmt.Ty_directive { index; proj } :: !items
                | None -> fail "unknown format directive $%s" name))
      | T_directive [ name; field ] -> (
          match var_of name with
          | Some v ->
              let _dialect, _tyname, param = param_index_of_var v field in
              let base_proj =
                match
                  find_var_proj ~operands:op.op_operands
                    ~results:op.op_results ~name:v.C.v_name
                with
                | Some p -> p
                | None ->
                    fail "$%s is not recoverable from any operand or result \
                          type" name
              in
              let proj =
                { base_proj with Opfmt.path = base_proj.Opfmt.path @ [ param ] }
              in
              let index = !n_directives in
              incr n_directives;
              bindings := (name, Param { directive = index; param }) :: !bindings;
              items := Opfmt.Ty_directive { index; proj } :: !items
          | None -> fail "unknown constraint variable $%s" name)
      | T_directive parts ->
          fail "unsupported directive $%s" (String.concat "." parts))
    toks;
  (* The loop above built [items] in reverse; fix order. *)
  let items = List.rev !items in
  (* Every operand must be covered by the format. *)
  List.iter
    (fun (s : Resolve.slot) ->
      if not (Hashtbl.mem seen_operands s.s_name) then
        fail "operand '%s' does not appear in the format" s.s_name)
    op.op_operands;
  (* Turn directive bindings into variable reconstruction expressions. *)
  let var_exprs =
    List.filter_map
      (fun (name, b) ->
        match b with
        | Whole i -> Some (name, Opfmt.From_directive i)
        | Param { directive; param } -> (
            match var_of name with
            | Some v -> (
                match var_expr_of_param_binding v ~directive ~param with
                | Some e -> Some (name, e)
                | None -> None)
            | None -> None))
      !bindings
  in
  let slot_ty_expr what (s : Resolve.slot) =
    match ty_expr_of ~var_exprs s.s_constraint with
    | Some e -> e
    | None ->
        fail "%s '%s': type is not reconstructible from the format" what
          s.s_name
  in
  let operand_tys =
    List.map (slot_ty_expr "operand") op.op_operands
  in
  let result_tys = List.map (slot_ty_expr "result") op.op_results in
  { Opfmt.items; operand_tys; result_tys }
