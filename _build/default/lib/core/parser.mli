(** Recursive-descent parser for IRDL. The grammar is LL(1) over the token
    stream of {!Lexer}; keywords are contextual. *)

open Irdl_support

val parse_file : ?file:string -> string -> (Ast.dialect list, Diag.t) result
(** Parse a whole IRDL file: a sequence of [Dialect name { ... }]. *)

val parse_one : ?file:string -> string -> (Ast.dialect, Diag.t) result
(** Parse a source expected to contain exactly one dialect. *)

val parse_constraint_string :
  ?file:string -> string -> (Ast.cexpr, Diag.t) result
(** Parse a standalone constraint expression (tests and tooling). *)
