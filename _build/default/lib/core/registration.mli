(** Dynamic dialect registration: resolved IRDL dialects into a live
    {!Irdl_ir.Context.t}. Every registered definition is a closure over the
    resolved constraints — the generated verifiers of the paper's Listing 2
    — with no code generation involved (paper §3). *)

open Irdl_support
open Irdl_ir

val assign_slots :
  what:string -> seg_attr:string -> op:Graph.op -> Resolve.slot list ->
  'a list -> ('a list list, Diag.t) result
(** Split values across operand/result slots, honouring variadic/optional
    slots and, with several variadic groups, the
    [operandSegmentSizes]/[resultSegmentSizes] attribute (paper §4.6).
    Exposed for testing and tooling. *)

val make_op_verifier :
  native:Native.t -> Resolve.op -> Graph.op -> (unit, Diag.t) result
(** The generated operation verifier (arity, constraints with shared
    variables, attributes, regions, successors, IRDL-C++ hooks). *)

val register :
  ?native:Native.t -> Context.t -> Resolve.dialect -> (unit, Diag.t) result
(** Register a resolved dialect. Declarative formats are compiled eagerly so
    malformed specs fail at registration, not first use. *)
