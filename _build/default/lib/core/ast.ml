(** Abstract syntax of IRDL specifications (paper §4 and §5).

    The surface constraint grammar is uniform: references that may carry
    angle-bracket arguments, literals, and bracketed lists. Classification of
    a reference — builtin constructor ([AnyOf], [Variadic], [uint32_t], ...),
    builtin type ([!f32]), dialect type/attribute, alias, enum, constraint
    variable, or named [Constraint] definition — happens during {!Resolve}. *)

open Irdl_support

type prefix = P_type  (** [!name] *) | P_attr  (** [#name] *) | P_bare

type cexpr =
  | C_ref of {
      prefix : prefix;
      name : string;  (** possibly dotted: [cmath.complex], [signedness.Signed] *)
      args : cexpr list option;  (** [Some] iff [<...>] was written *)
      loc : Loc.t;
    }
  | C_int of { value : int64; kind : string option; loc : Loc.t }
      (** [3] or [3 : int32_t] *)
  | C_string of { value : string; loc : Loc.t }  (** ["foo"] *)
  | C_list of { elems : cexpr list; loc : Loc.t }  (** [[pc1, ..., pcN]] *)

let cexpr_loc = function
  | C_ref { loc; _ } | C_int { loc; _ } | C_string { loc; _ }
  | C_list { loc; _ } ->
      loc

(** A named, constrained binder: type/attr parameter, operand, result,
    attribute, region argument or constraint variable. *)
type param = { p_name : string; p_constraint : cexpr; p_loc : Loc.t }

type type_def = {
  t_name : string;
  t_params : param list;
  t_summary : string option;
  t_cpp_constraints : string list;  (** IRDL-C++ verifier snippets *)
  t_loc : Loc.t;
}

(** Attribute definitions are structurally identical to type definitions
    (paper §4.4); we keep a distinct record for clarity of the API. *)
type attr_def = {
  a_name : string;
  a_params : param list;
  a_summary : string option;
  a_cpp_constraints : string list;
  a_loc : Loc.t;
}

type region_def = {
  r_name : string;
  r_args : param list;
  r_terminator : string option;
      (** Requiring single-block regions ending in this operation (§4.6). *)
  r_loc : Loc.t;
}

type op_def = {
  o_name : string;
  o_summary : string option;
  o_constraint_vars : param list;
  o_operands : param list;
  o_results : param list;
  o_attributes : param list;
  o_regions : region_def list;
  o_successors : string list option;
      (** [Some names]: the op is a terminator with these successors; even
          [Some []] marks a terminator (§4.6). *)
  o_format : string option;
  o_cpp_constraints : string list;
  o_loc : Loc.t;
}

type alias_def = {
  al_prefix : prefix;
  al_name : string;
  al_params : string list;  (** parametric aliases: [Alias !ComplexOr<T> = ...] *)
  al_body : cexpr;
  al_loc : Loc.t;
}

type enum_def = { e_name : string; e_cases : string list; e_loc : Loc.t }

(** IRDL-C++ [Constraint] definition (§5.1): a base constraint refined by
    native-code predicates. *)
type constraint_def = {
  c_name : string;
  c_base : cexpr;
  c_summary : string option;
  c_cpp_constraints : string list;
  c_loc : Loc.t;
}

(** IRDL-C++ [TypeOrAttrParam] definition (§5.2): a parameter kind wrapping a
    native class with native parser/printer. *)
type param_def = {
  tp_name : string;
  tp_summary : string option;
  tp_class_name : string;
  tp_parser : string option;
  tp_printer : string option;
  tp_loc : Loc.t;
}

type item =
  | I_type of type_def
  | I_attr of attr_def
  | I_op of op_def
  | I_alias of alias_def
  | I_enum of enum_def
  | I_constraint of constraint_def
  | I_param of param_def

type dialect = { d_name : string; d_items : item list; d_loc : Loc.t }

(* Accessors used by the analysis pipeline. *)

let types d =
  List.filter_map (function I_type t -> Some t | _ -> None) d.d_items

let attrs d =
  List.filter_map (function I_attr a -> Some a | _ -> None) d.d_items

let ops d = List.filter_map (function I_op o -> Some o | _ -> None) d.d_items

let aliases d =
  List.filter_map (function I_alias a -> Some a | _ -> None) d.d_items

let enums d =
  List.filter_map (function I_enum e -> Some e | _ -> None) d.d_items

let constraint_defs d =
  List.filter_map (function I_constraint c -> Some c | _ -> None) d.d_items

let param_defs d =
  List.filter_map (function I_param p -> Some p | _ -> None) d.d_items
