(** Compiler for declarative operation formats (paper §4.7): IRDL [Format]
    strings into the first-order {!Irdl_ir.Opfmt.t} interpreted by the
    generic printer and parser.

    Checked at compile time: every type directive must be {e printable}
    (recoverable from an operand/result type by projecting through
    dynamic-type parameters), and the format must be {e parseable} (every
    operand and result type reconstructible from the parsed directives).
    Formats on operations with regions, successors, or more than one
    variadic operand group are rejected. *)

open Irdl_support

val compile :
  lookup_type_params:(dialect:string -> name:string -> string list option) ->
  string -> Resolve.op -> (Irdl_ir.Opfmt.t, Diag.t) result
(** [compile ~lookup_type_params dialect_name op]. [lookup_type_params]
    resolves a dynamic type's parameter names so [$T.elementType] can be
    turned into a parameter index. *)
