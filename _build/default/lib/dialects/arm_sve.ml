(** The [arm_sve] dialect: ARM's scalable vector extension. Generated as
    masked arithmetic plus raw intrinsics over a scalable-vector type —
    uniform many-operand hardware ops (Figure 5a). *)

let name = "arm_sve"
let description = "ARM's scalable vector instruction set"

(* (mnemonic, operand count beyond the mask, summary) for the masked ops;
   each also has a raw ".intr" twin. *)
let masked_ops =
  [
    ("masked_addi", "Masked integer addition");
    ("masked_addf", "Masked floating-point addition");
    ("masked_subi", "Masked integer subtraction");
    ("masked_subf", "Masked floating-point subtraction");
    ("masked_muli", "Masked integer multiplication");
    ("masked_mulf", "Masked floating-point multiplication");
    ("masked_sdivi", "Masked signed division");
    ("masked_udivi", "Masked unsigned division");
    ("masked_divf", "Masked floating-point division");
  ]

let dot_ops =
  [
    ("sdot", "Signed integer dot product");
    ("smmla", "Signed integer matrix multiply-accumulate");
    ("udot", "Unsigned integer dot product");
    ("ummla", "Unsigned integer matrix multiply-accumulate");
  ]

let source =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    {|
Dialect arm_sve {
  Type svector {
    Parameters (shape: array<int64_t>, elementType: !AnyType)
    Summary "A scalable vector"
  }

  Alias !SVec = !svector
|};
  List.iter
    (fun (op, summary) ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation %s {
    ConstraintVars (T: !SVec)
    Operands (mask: !SVec, src1: !T, src2: !T)
    Results (res: !T)
    Summary "%s"
  }

  Operation intr_%s {
    Operands (mask: !SVec, src1: !SVec, src2: !SVec)
    Results (res: !SVec)
    Summary "%s (raw intrinsic)"
  }
|}
           op summary op summary))
    masked_ops;
  List.iter
    (fun (op, summary) ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation %s {
    Operands (acc: !SVec, src1: !SVec, src2: !SVec)
    Results (dst: !SVec)
    Summary "%s"
  }

  Operation intr_%s {
    Operands (acc: !SVec, src1: !SVec, src2: !SVec)
    Results (dst: !SVec)
    Summary "%s (raw intrinsic)"
  }
|}
           op summary op summary))
    dot_ops;
  Buffer.add_string buf
    {|
  Operation vector_scale {
    Results (res: !index)
    Summary "The runtime vector-length multiple"
  }

  Operation load {
    Operands (base: !builtin.memref, index: !index)
    Results (result: !SVec)
    Summary "Scalable vector load"
  }

  Operation store {
    Operands (value: !SVec, base: !builtin.memref, index: !index)
    Summary "Scalable vector store"
  }

  Operation intr_get_vector_length {
    Results (res: !i64)
    Summary "Raw vector-length intrinsic"
  }

  Operation intr_zip1 {
    Operands (a: !SVec, b: !SVec)
    Results (res: !SVec)
    Summary "Interleave low halves (raw intrinsic)"
  }

  Operation intr_zip2 {
    Operands (a: !SVec, b: !SVec)
    Results (res: !SVec)
    Summary "Interleave high halves (raw intrinsic)"
  }
}
|};
  Buffer.contents buf
