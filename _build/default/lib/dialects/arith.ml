(** The [arith] dialect: standard integer and floating-point arithmetic.
    The archetypal "classical SSA" dialect: one or two operands, one result,
    same-type constraints via constraint variables — all in plain IRDL. *)

let name = "arith"
let description = "Arithmetic operations on integers and floats"

let source =
  {|
Dialect arith {
  Alias !AnyFloat = !AnyOf<!bf16, !f16, !f32, !f64>
  Alias !AnyInt = !AnyOf<!i1, !i8, !i16, !i32, !i64, !index>
  Alias !IntLike = AnyOf<!AnyInt, !builtin.vector, !builtin.tensor>
  Alias !FloatLike = AnyOf<!AnyFloat, !builtin.vector, !builtin.tensor>

  Enum cmpi_predicate { eq, ne, slt, sle, sgt, sge, ult, ule, ugt, uge }
  Enum cmpf_predicate { false_, oeq, ogt, oge, olt, ole, one, ord, ueq, ugt, uge, ult, ule, une, uno, true_ }

  Operation constant {
    Results (result: !AnyType)
    Attributes (value: #AnyAttr)
    Summary "A typed constant"
    CppConstraint "$_self.value().getType() == $_self.result().getType()"
  }

  Operation addi {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Integer addition"
  }

  Operation subi {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Integer subtraction"
  }

  Operation muli {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Integer multiplication"
  }

  Operation divsi {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Signed integer division"
  }

  Operation divui {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Unsigned integer division"
  }

  Operation ceildivsi {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Signed ceiling division"
  }

  Operation ceildivui {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Unsigned ceiling division"
  }

  Operation floordivsi {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Signed floor division"
  }

  Operation remsi {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Signed remainder"
  }

  Operation remui {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Unsigned remainder"
  }

  Operation andi {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Bitwise and"
  }

  Operation ori {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Bitwise or"
  }

  Operation xori {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Bitwise xor"
  }

  Operation shli {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Shift left"
  }

  Operation shrsi {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Arithmetic shift right"
  }

  Operation shrui {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Logical shift right"
  }

  Operation maxsi {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Signed maximum"
  }

  Operation maxui {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Unsigned maximum"
  }

  Operation minsi {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Signed minimum"
  }

  Operation minui {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Unsigned minimum"
  }

  Operation addf {
    ConstraintVars (T: !FloatLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Floating-point addition"
  }

  Operation subf {
    ConstraintVars (T: !FloatLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Floating-point subtraction"
  }

  Operation mulf {
    ConstraintVars (T: !FloatLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Floating-point multiplication"
  }

  Operation divf {
    ConstraintVars (T: !FloatLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Floating-point division"
  }

  Operation remf {
    ConstraintVars (T: !FloatLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Floating-point remainder"
  }

  Operation negf {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Floating-point negation"
  }

  Operation maxf {
    ConstraintVars (T: !FloatLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Floating-point maximum"
  }

  Operation minf {
    ConstraintVars (T: !FloatLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Floating-point minimum"
  }

  Operation cmpi {
    ConstraintVars (T: !IntLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !i1)
    Attributes (predicate: cmpi_predicate)
    Summary "Integer comparison"
  }

  Operation cmpf {
    ConstraintVars (T: !FloatLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !i1)
    Attributes (predicate: cmpf_predicate)
    Summary "Floating-point comparison"
  }

  Operation select {
    ConstraintVars (T: !AnyType)
    Operands (condition: !i1, true_value: !T, false_value: !T)
    Results (result: !T)
    Summary "Value selection"
  }

  Operation extui {
    Operands (in: !IntLike)
    Results (out: !IntLike)
    Summary "Zero extension"
    CppConstraint "$_self.out().getType().getIntOrFloatBitWidth() > $_self.in().getType().getIntOrFloatBitWidth()"
  }

  Operation extsi {
    Operands (in: !IntLike)
    Results (out: !IntLike)
    Summary "Sign extension"
    CppConstraint "$_self.out().getType().getIntOrFloatBitWidth() > $_self.in().getType().getIntOrFloatBitWidth()"
  }

  Operation trunci {
    Operands (in: !IntLike)
    Results (out: !IntLike)
    Summary "Integer truncation"
    CppConstraint "$_self.out().getType().getIntOrFloatBitWidth() < $_self.in().getType().getIntOrFloatBitWidth()"
  }

  Operation extf {
    Operands (in: !FloatLike)
    Results (out: !FloatLike)
    Summary "Floating-point extension"
    CppConstraint "$_self.out().getType().getIntOrFloatBitWidth() > $_self.in().getType().getIntOrFloatBitWidth()"
  }

  Operation truncf {
    Operands (in: !FloatLike)
    Results (out: !FloatLike)
    Summary "Floating-point truncation"
    CppConstraint "$_self.out().getType().getIntOrFloatBitWidth() < $_self.in().getType().getIntOrFloatBitWidth()"
  }

  Operation fptosi {
    Operands (in: !FloatLike)
    Results (out: !IntLike)
    Summary "Float to signed integer"
  }

  Operation fptoui {
    Operands (in: !FloatLike)
    Results (out: !IntLike)
    Summary "Float to unsigned integer"
  }

  Operation sitofp {
    Operands (in: !IntLike)
    Results (out: !FloatLike)
    Summary "Signed integer to float"
  }

  Operation uitofp {
    Operands (in: !IntLike)
    Results (out: !FloatLike)
    Summary "Unsigned integer to float"
  }

  Operation index_cast {
    Operands (in: !IntLike)
    Results (out: !IntLike)
    Summary "Cast between index and integer"
  }

  Operation bitcast {
    Operands (in: !AnyType)
    Results (out: !AnyType)
    Summary "Bitcast between equal-width types"
    CppConstraint "$_self.in().getType().getIntOrFloatBitWidth() == $_self.out().getType().getIntOrFloatBitWidth()"
  }
}
|}
