(** The [std] dialect: the historical "standard" dialect at the paper's
    analysis commit — control flow, calls and assorted non-domain-specific
    operations that had not yet been split into cf/func/etc. *)

let name = "std"
let description = "Non domain-specific operations"

let source =
  {|
Dialect std {
  Alias !AnyFloat = !AnyOf<!bf16, !f16, !f32, !f64>
  Alias !AnyInt = !AnyOf<!i1, !i8, !i16, !i32, !i64, !index>
  Alias !AnyTensor = !builtin.tensor
  Alias !AnyMemRef = !builtin.memref

  Operation assert {
    Operands (arg: !i1)
    Attributes (msg: string)
    Summary "Runtime assertion with a message"
  }

  Operation br {
    Operands (destOperands: Variadic<!AnyType>)
    Successors (dest)
    Summary "Unconditional branch"
  }

  Operation cond_br {
    Operands (condition: !i1, trueDestOperands: Variadic<!AnyType>,
              falseDestOperands: Variadic<!AnyType>)
    Successors (trueDest, falseDest)
    Summary "Conditional branch"
  }

  Operation switch {
    Operands (flag: !i32, defaultOperands: Variadic<!AnyType>,
              caseOperands: Variadic<!AnyType>)
    Attributes (case_values: Optional<array<int64_t>>)
    Successors (defaultDestination, caseDestinations)
    Summary "Multi-way branch"
    CppConstraint "$_self.case_values().size() == $_self.caseDestinations().size()"
  }

  Operation call {
    Operands (operands: Variadic<!AnyType>)
    Results (results: Variadic<!AnyType>)
    Attributes (callee: symbol)
    Summary "Direct call"
    CppConstraint "calleeSignatureMatches($_self)"
  }

  Operation call_indirect {
    Operands (callee: !AnyType, callee_operands: Variadic<!AnyType>)
    Results (results: Variadic<!AnyType>)
    Summary "Indirect call through a function value"
    CppConstraint "$_self.callee().getType().getInputs() == $_self.callee_operands().getTypes()"
  }

  Operation constant {
    Results (result: !AnyType)
    Attributes (value: #AnyAttr)
    Summary "A constant (including function references)"
    CppConstraint "$_self.value().getType() == $_self.result().getType()"
  }

  Operation func {
    Attributes (sym_name: string, function_type: !AnyType,
                sym_visibility: Optional<string>)
    Region body {
      Arguments (args: Variadic<!AnyType>)
    }
    Summary "A function definition"
    CppConstraint "$_self.body().empty() || $_self.body().args() == $_self.function_type().inputs()"
  }

  Operation return {
    Operands (operands: Variadic<!AnyType>)
    Successors ()
    Summary "Return from a function"
    CppConstraint "$_self.operands().getTypes() == $_self.parent().function_type().results()"
  }

  Operation select {
    ConstraintVars (T: !AnyType)
    Operands (condition: !AnyType, true_value: !T, false_value: !T)
    Results (result: !T)
    Summary "Value selection"
  }

  Operation splat {
    Operands (input: !AnyType)
    Results (aggregate: AnyOf<!builtin.vector, !builtin.tensor>)
    Summary "Broadcast a scalar into an aggregate"
    CppConstraint "$_self.input().getType() == $_self.aggregate().getType().getElementType()"
  }

  Operation absf {
    ConstraintVars (T: !AnyFloat)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Floating-point absolute value"
  }

  Operation copysign {
    ConstraintVars (T: !AnyFloat)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Copy sign"
  }

  Operation maximumf {
    ConstraintVars (T: !AnyFloat)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Floating-point maximum"
  }

  Operation minimumf {
    ConstraintVars (T: !AnyFloat)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Floating-point minimum"
  }

  Operation tensor_extract {
    Operands (tensor: !AnyTensor, indices: Variadic<!index>)
    Results (result: !AnyType)
    Summary "Extract a tensor element"
    CppConstraint "$_self.indices().size() == $_self.tensor().getType().getRank()"
  }

  Operation tensor_insert {
    Operands (scalar: !AnyType, dest: !AnyTensor, indices: Variadic<!index>)
    Results (result: !AnyTensor)
    Summary "Insert a tensor element"
  }

  Operation tensor_from_elements {
    Operands (elements: Variadic<!AnyType>)
    Results (result: !AnyTensor)
    Summary "Build a tensor from scalars"
  }

  Operation tensor_load {
    Operands (memref: !AnyMemRef)
    Results (result: !AnyTensor)
    Summary "Load a whole buffer as a tensor"
    CppConstraint "$_self.memref().getType().getShape() == $_self.result().getType().getShape()"
  }

  Operation tensor_store {
    Operands (tensor: !AnyTensor, memref: !AnyMemRef)
    Summary "Store a tensor into a buffer"
  }

  Operation tensor_cast {
    Operands (source: !AnyTensor)
    Results (dest: !AnyTensor)
    Summary "Compatible tensor cast"
    CppConstraint "areCastCompatible($_self.source().getType(), $_self.dest().getType())"
  }

  Operation view {
    Operands (source: !AnyMemRef, byte_shift: !index, sizes: Variadic<!index>)
    Results (result: !AnyMemRef)
    Summary "A byte-shifted buffer view"
  }

  Operation subview {
    Operands (source: !AnyMemRef, offsets: Variadic<!index>,
              sizes: Variadic<!index>, strides: Variadic<!index>)
    Results (result: !AnyMemRef)
    Summary "A strided sub-buffer view"
  }

  Operation dim {
    Operands (memrefOrTensor: !AnyType, index: !index)
    Results (result: !index)
    Summary "The size of one dimension"
  }

  Operation rank {
    Operands (memrefOrTensor: !AnyType)
    Results (result: !index)
    Summary "The rank of a shaped value"
  }

  Operation get_global_memref {
    Results (result: !AnyMemRef)
    Attributes (name: symbol)
    Summary "Reference a global buffer"
  }

  Operation global_memref {
    Attributes (sym_name: string, type: !AnyType,
                initial_value: Optional<#AnyAttr>, constant: Optional<bool>)
    Summary "Declare a global buffer"
  }

  Operation atomic_rmw {
    Operands (value: !AnyType, memref: !AnyMemRef, indices: Variadic<!index>)
    Results (result: !AnyType)
    Attributes (kind: atomic_kind)
    Summary "Atomic read-modify-write"
  }
  Enum atomic_kind { addf, addi, assign, maxf, maxs, maxu, minf, mins, minu, mulf, muli }

  Operation generic_atomic_rmw {
    Operands (memref: !AnyMemRef, indices: Variadic<!index>)
    Results (result: !AnyType)
    Region atomic_body {
      Arguments (current: !AnyType)
      Terminator atomic_rmw_yield
    }
    Summary "Atomic read-modify-write with a region"
  }

  Operation atomic_rmw_yield {
    Operands (result: !AnyType)
    Successors ()
    Summary "Terminates a generic_atomic_rmw region"
  }

  Operation bitcast {
    Operands (in: !AnyType)
    Results (out: !AnyType)
    Summary "Bitcast between equal-width types"
    CppConstraint "$_self.in().getType().getIntOrFloatBitWidth() == $_self.out().getType().getIntOrFloatBitWidth()"
  }

  Operation exp {
    ConstraintVars (T: !AnyFloat)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Exponential"
  }

  Operation log {
    ConstraintVars (T: !AnyFloat)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Natural logarithm"
  }

  Operation sqrt {
    ConstraintVars (T: !AnyFloat)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Square root"
  }

  Operation ceilf {
    ConstraintVars (T: !AnyFloat)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Ceiling"
  }

  Operation floorf {
    ConstraintVars (T: !AnyFloat)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Floor"
  }

  Operation negf {
    ConstraintVars (T: !AnyFloat)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Negation"
  }

  Operation and {
    ConstraintVars (T: !AnyInt)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Bitwise and"
  }

  Operation or {
    ConstraintVars (T: !AnyInt)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Bitwise or"
  }

  Operation xor {
    ConstraintVars (T: !AnyInt)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Bitwise xor"
  }

  Operation shift_left {
    ConstraintVars (T: !AnyInt)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Shift left"
  }

  Operation signed_shift_right {
    ConstraintVars (T: !AnyInt)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Arithmetic shift right"
  }

  Operation unsigned_shift_right {
    ConstraintVars (T: !AnyInt)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Logical shift right"
  }

  Operation index_cast {
    Operands (in: !AnyInt)
    Results (out: !AnyInt)
    Summary "Cast between index and integer"
  }

  Operation sitofp {
    Operands (in: !AnyInt)
    Results (out: !AnyFloat)
    Summary "Signed integer to float"
  }

  Operation fptosi {
    Operands (in: !AnyFloat)
    Results (out: !AnyInt)
    Summary "Float to signed integer"
  }
}
|}
