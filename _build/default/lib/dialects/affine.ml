(** The [affine] dialect: affine loops and memory operations.

    Its bound attributes wrap affine maps; bound validity checks are the
    corpus's "integer inequality" IRDL-C++ constraints (Figure 12). *)

let name = "affine"
let description = "Affine loops and memory operations"

let source =
  {|
Dialect affine {
  Alias !AnyMemRef = !builtin.memref

  Constraint LoopStep : int64_t {
    Summary "a strictly positive loop step"
    CppConstraint "$_self >= 1"
  }

  Operation apply {
    Operands (mapOperands: Variadic<!index>)
    Results (result: !index)
    Attributes (map: #builtin.affine_map_attr)
    Summary "Apply an affine map to SSA operands"
    CppConstraint "$_self.map().getNumInputs() == $_self.mapOperands().size()"
  }

  Operation for {
    Operands (operands: Variadic<!index>)
    Results (results: Variadic<!AnyType>)
    Attributes (lower_bound: #builtin.affine_map_attr,
                upper_bound: #builtin.affine_map_attr, step: LoopStep)
    Region body {
      Arguments (inductionVar: !index, iterArgs: Variadic<!AnyType>)
      Terminator yield
    }
    Summary "A loop with affine bounds"
    CppConstraint "$_self.lower_bound().getNumResults() >= 1"
  }

  Operation if {
    Operands (operands: Variadic<!index>)
    Results (results: Variadic<!AnyType>)
    Attributes (condition: #builtin.integer_set_attr)
    Region thenRegion {
      Arguments ()
    }
    Region elseRegion {
      Arguments ()
    }
    Summary "A conditional guarded by an integer set"
    CppConstraint "$_self.condition().getNumInputs() == $_self.operands().size()"
  }

  Operation parallel {
    Operands (mapOperands: Variadic<!index>)
    Results (results: Variadic<!AnyType>)
    Attributes (lowerBoundsMap: #builtin.affine_map_attr,
                upperBoundsMap: #builtin.affine_map_attr,
                steps: array<int64_t>, reductions: array<#AnyAttr>)
    Region region {
      Arguments (ivs: Variadic<!index>)
      Terminator yield
    }
    Summary "A parallel affine loop band"
  }

  Operation load {
    Operands (memref: !AnyMemRef, indices: Variadic<!index>)
    Results (result: !AnyType)
    Attributes (map: Optional<#builtin.affine_map_attr>)
    Summary "Load with an affine access map"
    CppConstraint "$_self.result().getType() == $_self.memref().getType().getElementType()"
  }

  Operation store {
    Operands (value: !AnyType, memref: !AnyMemRef, indices: Variadic<!index>)
    Attributes (map: Optional<#builtin.affine_map_attr>)
    Summary "Store with an affine access map"
    CppConstraint "$_self.value().getType() == $_self.memref().getType().getElementType()"
  }

  Operation min {
    Operands (operands: Variadic<!index>)
    Results (result: !index)
    Attributes (map: #builtin.affine_map_attr)
    Summary "Minimum over affine map results"
    CppConstraint "$_self.map().getNumResults() >= 1"
  }

  Operation max {
    Operands (operands: Variadic<!index>)
    Results (result: !index)
    Attributes (map: #builtin.affine_map_attr)
    Summary "Maximum over affine map results"
    CppConstraint "$_self.map().getNumResults() >= 1"
  }

  Operation prefetch {
    Operands (memref: !AnyMemRef, indices: Variadic<!index>)
    Attributes (isWrite: bool, localityHint: i32_attr, isDataCache: bool)
    Summary "Prefetch hint on an affine access"
  }

  Operation vector_load {
    Operands (memref: !AnyMemRef, indices: Variadic<!index>)
    Results (result: !builtin.vector)
    Summary "Vector load with affine indexing"
    CppConstraint "$_self.result().getType().getElementType() == $_self.memref().getType().getElementType()"
  }

  Operation vector_store {
    Operands (value: !builtin.vector, memref: !AnyMemRef,
              indices: Variadic<!index>)
    Summary "Vector store with affine indexing"
  }

  Operation dma_start {
    Operands (srcMemRef: !AnyMemRef, srcIndices: Variadic<!index>,
              destMemRef: !AnyMemRef, destIndices: Variadic<!index>,
              tagMemRef: !AnyMemRef, tagIndices: Variadic<!index>,
              numElements: !index)
    Summary "Start a DMA transfer between affine accesses"
  }

  Operation dma_wait {
    Operands (tagMemRef: !AnyMemRef, tagIndices: Variadic<!index>,
              numElements: !index)
    Summary "Wait for a DMA transfer to finish"
  }

  Operation yield {
    Operands (results: Variadic<!AnyType>)
    Successors ()
    Summary "Terminates affine regions"
  }
}
|}
