(** The [tosa] dialect: the Tensor Operator Set Architecture. A large
    ML-operator dialect; elementwise operators are generated uniformly,
    structured operators (convolutions, control flow) are spelled out. *)

let name = "tosa"
let description = "Tensor operator set architecture"

let unary_ops =
  [
    ("abs", "Elementwise absolute value");
    ("bitwise_not", "Elementwise bitwise negation");
    ("ceil", "Elementwise ceiling");
    ("clz", "Elementwise count-leading-zeros");
    ("exp", "Elementwise exponential");
    ("floor", "Elementwise floor");
    ("log", "Elementwise natural logarithm");
    ("logical_not", "Elementwise logical negation");
    ("reciprocal", "Elementwise reciprocal");
    ("rsqrt", "Elementwise reciprocal square root");
    ("sigmoid", "Elementwise sigmoid");
    ("tanh", "Elementwise hyperbolic tangent");
    ("identity", "Identity");
  ]

let binary_ops =
  [
    ("add", "Elementwise addition");
    ("bitwise_and", "Elementwise bitwise and");
    ("bitwise_or", "Elementwise bitwise or");
    ("bitwise_xor", "Elementwise bitwise xor");
    ("div", "Elementwise integer division");
    ("logical_and", "Elementwise logical and");
    ("logical_left_shift", "Elementwise left shift");
    ("logical_or", "Elementwise logical or");
    ("logical_right_shift", "Elementwise logical right shift");
    ("logical_xor", "Elementwise logical xor");
    ("maximum", "Elementwise maximum");
    ("minimum", "Elementwise minimum");
    ("pow", "Elementwise power");
    ("sub", "Elementwise subtraction");
  ]

let compare_ops =
  [
    ("equal", "Elementwise equality");
    ("greater", "Elementwise greater-than");
    ("greater_equal", "Elementwise greater-or-equal");
  ]

let reduce_ops =
  [
    ("reduce_all", "Reduce with logical and");
    ("reduce_any", "Reduce with logical or");
    ("reduce_max", "Reduce with maximum");
    ("reduce_min", "Reduce with minimum");
    ("reduce_prod", "Reduce with product");
    ("reduce_sum", "Reduce with sum");
  ]

let source =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf
    {|
Dialect tosa {
  Alias !Tensor = !builtin.tensor

  Constraint Axis : int64_t {
    Summary "an axis within the maximum supported rank"
    CppConstraint "$_self >= 0 && $_self < 32"
  }

  Constraint Shift8 : int64_t {
    Summary "a shift amount below 64"
    CppConstraint "$_self < 64"
  }
|};
  List.iter
    (fun (op, summary) ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation %s {
    Operands (input1: !Tensor)
    Results (output: !Tensor)
    Summary "%s"
  }
|}
           op summary))
    unary_ops;
  List.iter
    (fun (op, summary) ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation %s {
    Operands (input1: !Tensor, input2: !Tensor)
    Results (output: !Tensor)
    Summary "%s"
    CppConstraint "isBroadcastCompatible($_self.input1().getType(), $_self.input2().getType())"
  }
|}
           op summary))
    binary_ops;
  List.iter
    (fun (op, summary) ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation %s {
    Operands (input1: !Tensor, input2: !Tensor)
    Results (output: !Tensor)
    Summary "%s"
  }
|}
           op summary))
    compare_ops;
  List.iter
    (fun (op, summary) ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation %s {
    Operands (input: !Tensor)
    Results (output: !Tensor)
    Attributes (axis: Axis)
    Summary "%s"
  }
|}
           op summary))
    reduce_ops;
  Buffer.add_string buf
    {|
  Operation argmax {
    Operands (input: !Tensor)
    Results (output: !Tensor)
    Attributes (axis: Axis)
    Summary "Index of the maximum along an axis"
  }

  Operation arithmetic_right_shift {
    Operands (input1: !Tensor, input2: !Tensor)
    Results (output: !Tensor)
    Attributes (round: bool)
    Summary "Elementwise arithmetic right shift"
  }

  Operation apply_scale {
    Operands (value: !Tensor, multiplier: !Tensor, shift: !Tensor)
    Results (output: !Tensor)
    Attributes (double_round: bool)
    Summary "Quantized scaling"
  }

  Operation avg_pool2d {
    Operands (input: !Tensor)
    Results (output: !Tensor)
    Attributes (kernel: array<int64_t>, stride: array<int64_t>,
                pad: array<int64_t>, quantization_info: Optional<#AnyAttr>)
    Summary "2-d average pooling"
    CppConstraint "$_self.kernel().size() == 2 && $_self.stride().size() == 2"
  }

  Operation max_pool2d {
    Operands (input: !Tensor)
    Results (output: !Tensor)
    Attributes (kernel: array<int64_t>, stride: array<int64_t>,
                pad: array<int64_t>)
    Summary "2-d max pooling"
    CppConstraint "$_self.kernel().size() == 2 && $_self.stride().size() == 2"
  }

  Operation cast {
    Operands (input: !Tensor)
    Results (output: !Tensor)
    Summary "Elementwise type conversion"
  }

  Operation clamp {
    Operands (input: !Tensor)
    Results (output: !Tensor)
    Attributes (min_int: i64_attr, max_int: i64_attr, min_fp: #f32_attr,
                max_fp: #f32_attr)
    Summary "Clamp to a range"
    CppConstraint "$_self.min_int() <= $_self.max_int()"
  }

  Operation concat {
    Operands (input1: Variadic<!Tensor>)
    Results (output: !Tensor)
    Attributes (axis: Axis)
    Summary "Concatenate along an axis"
    CppConstraint "$_self.axis() < $_self.output().getType().getRank()"
  }

  Operation cond_if {
    Operands (cond: !Tensor, inputs: Variadic<!Tensor>)
    Results (output: Variadic<!Tensor>)
    Region then_branch {
      Arguments ()
      Terminator yield
    }
    Region else_branch {
      Arguments ()
      Terminator yield
    }
    Summary "Conditional execution"
  }

  Operation while_loop {
    Operands (inputs: Variadic<!Tensor>)
    Results (output: Variadic<!Tensor>)
    Region cond {
      Arguments (condArgs: Variadic<!Tensor>)
      Terminator yield
    }
    Region body {
      Arguments (bodyArgs: Variadic<!Tensor>)
      Terminator yield
    }
    Summary "While loop over tensors"
    CppConstraint "$_self.inputs().getTypes() == $_self.output().getTypes()"
  }

  Operation yield {
    Operands (inputs: Variadic<!Tensor>)
    Successors ()
    Summary "Terminates tosa control-flow regions"
  }

  Operation const {
    Results (output: !Tensor)
    Attributes (value: #AnyAttr)
    Summary "A constant tensor"
    CppConstraint "$_self.value().getType() == $_self.output().getType()"
  }

  Operation conv2d {
    Operands (input: !Tensor, weight: !Tensor, bias: !Tensor)
    Results (output: !Tensor)
    Attributes (pad: array<int64_t>, stride: array<int64_t>,
                dilation: array<int64_t>, quantization_info: Optional<#AnyAttr>)
    Summary "2-d convolution"
    CppConstraint "$_self.pad().size() == 4"
  }

  Operation conv3d {
    Operands (input: !Tensor, weight: !Tensor, bias: !Tensor)
    Results (output: !Tensor)
    Attributes (pad: array<int64_t>, stride: array<int64_t>,
                dilation: array<int64_t>, quantization_info: Optional<#AnyAttr>)
    Summary "3-d convolution"
    CppConstraint "$_self.pad().size() == 6"
  }

  Operation depthwise_conv2d {
    Operands (input: !Tensor, weight: !Tensor, bias: !Tensor)
    Results (output: !Tensor)
    Attributes (pad: array<int64_t>, stride: array<int64_t>,
                dilation: array<int64_t>, quantization_info: Optional<#AnyAttr>)
    Summary "Depthwise 2-d convolution"
  }

  Operation transpose_conv2d {
    Operands (input: !Tensor, filter: !Tensor, bias: !Tensor)
    Results (output: !Tensor)
    Attributes (out_pad: array<int64_t>, stride: array<int64_t>,
                out_shape: array<int64_t>, quantization_info: Optional<#AnyAttr>)
    Summary "Transposed 2-d convolution"
  }

  Operation fully_connected {
    Operands (input: !Tensor, weight: !Tensor, bias: !Tensor)
    Results (output: !Tensor)
    Attributes (quantization_info: Optional<#AnyAttr>)
    Summary "Fully connected layer"
    CppConstraint "$_self.input().getType().getRank() == 2"
  }

  Operation matmul {
    Operands (a: !Tensor, b: !Tensor)
    Results (c: !Tensor)
    Attributes (quantization_info: Optional<#AnyAttr>)
    Summary "Batched matrix multiplication"
    CppConstraint "$_self.a().getType().getDimSize(2) == $_self.b().getType().getDimSize(1)"
  }

  Operation custom {
    Operands (inputs: Variadic<!Tensor>)
    Results (outputs: Variadic<!Tensor>)
    Attributes (identifier: string, config: Optional<string>,
                implementation_attrs: Optional<string>)
    Summary "An implementation-defined operator"
  }

  Operation gather {
    Operands (values: !Tensor, indices: !Tensor)
    Results (output: !Tensor)
    Summary "Gather along the batch dimension"
  }

  Operation scatter {
    Operands (values_in: !Tensor, indices: !Tensor, input: !Tensor)
    Results (values_out: !Tensor)
    Summary "Scatter along the batch dimension"
  }

  Operation mul {
    Operands (input1: !Tensor, input2: !Tensor)
    Results (output: !Tensor)
    Attributes (shift: Shift8)
    Summary "Elementwise multiplication with shift"
  }

  Operation negate {
    Operands (input1: !Tensor)
    Results (output: !Tensor)
    Attributes (quantization_info: Optional<#AnyAttr>)
    Summary "Elementwise negation"
  }

  Operation pad {
    Operands (input1: !Tensor, padding: !Tensor, pad_const: Optional<!Tensor>)
    Results (output: !Tensor)
    Attributes (quantization_info: Optional<#AnyAttr>)
    Summary "Pad a tensor"
    CppConstraint "$_self.padding().getType().getRank() == 2"
  }

  Operation rescale {
    Operands (input: !Tensor)
    Results (output: !Tensor)
    Attributes (input_zp: i32_attr, output_zp: i32_attr,
                multiplier: array<int32_t>, shift: array<int32_t>,
                scale32: bool, double_round: bool, per_channel: bool)
    Summary "Quantized rescale"
    CppConstraint "$_self.multiplier().size() == $_self.shift().size()"
  }

  Operation reshape {
    Operands (input1: !Tensor)
    Results (output: !Tensor)
    Attributes (new_shape: array<int64_t>)
    Summary "Reshape preserving element count"
    CppConstraint "$_self.input1().getType().getNumElements() == $_self.output().getType().getNumElements()"
  }

  Operation resize {
    Operands (input: !Tensor)
    Results (output: !Tensor)
    Attributes (output_size: array<int64_t>, stride: array<int64_t>,
                offset: array<int64_t>, shift: i32_attr, mode: string)
    Summary "Resize an image tensor"
  }

  Operation reverse {
    Operands (input: !Tensor)
    Results (output: !Tensor)
    Attributes (axis: Axis)
    Summary "Reverse along an axis"
  }

  Operation select {
    Operands (pred: !Tensor, on_true: !Tensor, on_false: !Tensor)
    Results (output: !Tensor)
    Summary "Elementwise selection"
    CppConstraint "$_self.on_true().getType() == $_self.on_false().getType()"
  }

  Operation slice {
    Operands (input: !Tensor)
    Results (output: !Tensor)
    Attributes (start: array<int64_t>, size: array<int64_t>)
    Summary "Extract a slice"
    CppConstraint "$_self.start().size() == $_self.size().size()"
  }

  Operation table {
    Operands (input: !Tensor, table: !Tensor)
    Results (output: !Tensor)
    Summary "Table lookup"
  }

  Operation tile {
    Operands (input1: !Tensor)
    Results (output: !Tensor)
    Attributes (multiples: array<int64_t>)
    Summary "Tile a tensor"
    CppConstraint "$_self.multiples().size() == $_self.input1().getType().getRank()"
  }

  Operation transpose {
    Operands (input1: !Tensor, perms: !Tensor)
    Results (output: !Tensor)
    Summary "Permute dimensions"
    CppConstraint "$_self.perms().getType().getNumElements() == $_self.input1().getType().getRank()"
  }
}
|};
  Buffer.contents buf
