(** The [vector] dialect: a generic multi-dimensional vector abstraction.
    Heavy user of op-level IRDL-C++ verifiers: most operations relate
    operand and result shapes in ways local constraints cannot express
    (Figure 11b). *)

let name = "vector"
let description = "A generic vector abstraction"

let source =
  {|
Dialect vector {
  Alias !Vec = !builtin.vector
  Alias !MemRef = !builtin.memref
  Alias !Shaped = AnyOf<!builtin.memref, !builtin.tensor>

  Attribute combining_kind_attr {
    Parameters (kind: combining_kind)
    Summary "A reduction combining kind"
  }
  Enum combining_kind { add, mul, minui, minsi, minf, maxui, maxsi, maxf, and, or, xor }

  Attribute iterator_type_attr {
    Parameters (kind: iterator_kind)
    Summary "A contraction iterator kind"
  }
  Enum iterator_kind { parallel, reduction }

  Operation bitcast {
    Operands (source: !Vec)
    Results (result: !Vec)
    Summary "Bitcast preserving total bit width"
    CppConstraint "$_self.source().getType().getTotalBits() == $_self.result().getType().getTotalBits()"
  }

  Operation broadcast {
    Operands (source: !AnyType)
    Results (vector: !Vec)
    Summary "Broadcast a scalar or vector to a larger vector"
    CppConstraint "isBroadcastableTo($_self.source().getType(), $_self.vector().getType())"
  }

  Operation compressstore {
    Operands (base: !MemRef, indices: Variadic<!index>, mask: !Vec,
              valueToStore: !Vec)
    Summary "Compressed store under a mask"
    CppConstraint "$_self.mask().getType().getNumElements() == $_self.valueToStore().getType().getNumElements()"
  }

  Operation constant_mask {
    Results (result: !Vec)
    Attributes (mask_dim_sizes: array<int64_t>)
    Summary "A constant all-prefix mask"
    CppConstraint "$_self.mask_dim_sizes().size() == $_self.result().getType().getRank()"
  }

  Operation contract {
    Operands (lhs: !Vec, rhs: !Vec, acc: !AnyType)
    Results (result: !AnyType)
    Attributes (indexing_maps: array<#AnyAttr>, iterator_types: array<#AnyAttr>,
                kind: Optional<combining_kind>)
    Summary "A generalized vector contraction"
    CppConstraint "$_self.indexing_maps().size() == 3"
  }

  Operation create_mask {
    Operands (operands: Variadic<!index>)
    Results (result: !Vec)
    Summary "A runtime all-prefix mask"
    CppConstraint "$_self.operands().size() == $_self.result().getType().getRank()"
  }

  Operation expandload {
    Operands (base: !MemRef, indices: Variadic<!index>, mask: !Vec,
              passThru: !Vec)
    Results (result: !Vec)
    Summary "Expanding load under a mask"
    CppConstraint "$_self.passThru().getType() == $_self.result().getType()"
  }

  Operation extract {
    Operands (vector: !Vec)
    Results (result: !AnyType)
    Attributes (position: array<int64_t>)
    Summary "Extract a scalar or sub-vector"
    CppConstraint "$_self.position().size() <= $_self.vector().getType().getRank()"
  }

  Operation extractelement {
    Operands (vector: !Vec, position: Optional<!index>)
    Results (result: !AnyType)
    Summary "Extract one element at a dynamic position"
  }

  Operation extract_strided_slice {
    Operands (vector: !Vec)
    Results (result: !Vec)
    Attributes (offsets: array<int64_t>, sizes: array<int64_t>,
                strides: array<int64_t>)
    Summary "Extract a strided slice"
    CppConstraint "$_self.offsets().size() == $_self.sizes().size()"
  }

  Operation fma {
    ConstraintVars (T: !Vec)
    Operands (lhs: !T, rhs: !T, acc: !T)
    Results (result: !T)
    Summary "Vector fused multiply-add"
  }

  Operation flat_transpose {
    Operands (matrix: !Vec)
    Results (res: !Vec)
    Attributes (rows: i32_attr, columns: i32_attr)
    Summary "Transpose of a row-major flattened matrix"
    CppConstraint "$_self.matrix().getType().getNumElements() == $_self.rows() * $_self.columns()"
  }

  Operation gather {
    Operands (base: !Shaped, indices: Variadic<!index>, index_vec: !Vec,
              mask: !Vec, pass_thru: !Vec)
    Results (result: !Vec)
    Summary "Gather under a mask"
    CppConstraint "$_self.pass_thru().getType() == $_self.result().getType()"
  }

  Operation insert {
    Operands (source: !AnyType, dest: !Vec)
    Results (res: !Vec)
    Attributes (position: array<int64_t>)
    Summary "Insert a scalar or sub-vector"
    CppConstraint "$_self.dest().getType() == $_self.res().getType()"
  }

  Operation insertelement {
    Operands (source: !AnyType, dest: !Vec, position: Optional<!index>)
    Results (result: !Vec)
    Summary "Insert one element at a dynamic position"
  }

  Operation insert_strided_slice {
    Operands (source: !Vec, dest: !Vec)
    Results (res: !Vec)
    Attributes (offsets: array<int64_t>, strides: array<int64_t>)
    Summary "Insert a strided slice"
    CppConstraint "$_self.dest().getType() == $_self.res().getType()"
  }

  Operation load {
    Operands (base: !MemRef, indices: Variadic<!index>)
    Results (result: !Vec)
    Summary "Vector load from a buffer"
    CppConstraint "$_self.indices().size() == $_self.base().getType().getRank()"
  }

  Operation maskedload {
    Operands (base: !MemRef, indices: Variadic<!index>, mask: !Vec,
              pass_thru: !Vec)
    Results (result: !Vec)
    Summary "Masked vector load"
  }

  Operation maskedstore {
    Operands (base: !MemRef, indices: Variadic<!index>, mask: !Vec,
              valueToStore: !Vec)
    Summary "Masked vector store"
  }

  Operation matrix_multiply {
    Operands (lhs: !Vec, rhs: !Vec)
    Results (res: !Vec)
    Attributes (lhs_rows: i32_attr, lhs_columns: i32_attr, rhs_columns: i32_attr)
    Summary "Flattened matrix multiplication"
    CppConstraint "$_self.lhs().getType().getNumElements() == $_self.lhs_rows() * $_self.lhs_columns()"
  }

  Operation multi_reduction {
    Operands (source: !Vec, acc: !AnyType)
    Results (dest: !AnyType)
    Attributes (kind: combining_kind, reduction_dims: array<int64_t>)
    Summary "Reduce along several dimensions"
    CppConstraint "llvm::is_sorted($_self.reduction_dims())"
  }

  Operation outerproduct {
    Operands (lhs: !Vec, rhs: !AnyType, acc: Optional<!Vec>)
    Results (res: !Vec)
    Attributes (kind: Optional<combining_kind>)
    Summary "Vector outer product"
    CppConstraint "$_self.res().getType().getRank() <= 2"
  }

  Operation print {
    Operands (source: !AnyType)
    Summary "Print a value for debugging"
  }

  Operation reduction {
    Operands (vector: !Vec, acc: Optional<!AnyType>)
    Results (dest: !AnyType)
    Attributes (kind: combining_kind)
    Summary "Reduce a 1-D vector to a scalar"
    CppConstraint "$_self.vector().getType().getRank() == 1"
  }

  Operation scan {
    Operands (source: !Vec, initial_value: !Vec)
    Results (dest: !Vec, accumulated_value: !Vec)
    Attributes (kind: combining_kind, reduction_dim: i64_attr,
                inclusive: bool)
    Summary "Prefix scan along a dimension"
    CppConstraint "$_self.reduction_dim() < $_self.source().getType().getRank()"
  }

  Operation scatter {
    Operands (base: !MemRef, indices: Variadic<!index>, index_vec: !Vec,
              mask: !Vec, valueToStore: !Vec)
    Summary "Scatter under a mask"
    CppConstraint "$_self.index_vec().getType().getNumElements() == $_self.valueToStore().getType().getNumElements()"
  }

  Operation shape_cast {
    Operands (source: !Vec)
    Results (result: !Vec)
    Summary "Reshape preserving element count"
    CppConstraint "$_self.source().getType().getNumElements() == $_self.result().getType().getNumElements()"
  }

  Operation shuffle {
    Operands (v1: !Vec, v2: !Vec)
    Results (vector: !Vec)
    Attributes (mask: array<int64_t>)
    Summary "Shuffle two vectors"
    CppConstraint "$_self.mask().size() == $_self.vector().getType().getDimSize(0)"
  }

  Operation splat {
    Operands (input: !AnyType)
    Results (aggregate: !Vec)
    Summary "Broadcast a scalar into all lanes"
    CppConstraint "$_self.input().getType() == $_self.aggregate().getType().getElementType()"
  }

  Operation store {
    Operands (valueToStore: !Vec, base: !MemRef, indices: Variadic<!index>)
    Summary "Vector store to a buffer"
  }

  Operation transfer_read {
    Operands (source: !Shaped, indices: Variadic<!index>, padding: !AnyType,
              mask: Optional<!Vec>)
    Results (vector: !Vec)
    Attributes (permutation_map: #builtin.affine_map_attr,
                in_bounds: Optional<array<#AnyAttr>>)
    Summary "Read a vector slice from a shaped value"
    CppConstraint "$_self.permutation_map().getNumResults() == $_self.vector().getType().getRank()"
  }

  Operation transfer_write {
    Operands (vector: !Vec, source: !Shaped, indices: Variadic<!index>,
              mask: Optional<!Vec>)
    Results (result: Variadic<!builtin.tensor>)
    Attributes (permutation_map: #builtin.affine_map_attr,
                in_bounds: Optional<array<#AnyAttr>>)
    Summary "Write a vector slice into a shaped value"
    CppConstraint "$_self.permutation_map().getNumResults() == $_self.vector().getType().getRank()"
  }

  Operation transpose {
    Operands (vector: !Vec)
    Results (result: !Vec)
    Attributes (transp: array<int64_t>)
    Summary "Transpose a vector"
    CppConstraint "isPermutationOfRank($_self.transp(), $_self.vector().getType().getRank())"
  }

  Operation type_cast {
    Operands (memref: !MemRef)
    Results (result: !MemRef)
    Summary "Cast a scalar memref to a vector memref"
  }

  Operation warp_execute_on_lane_0 {
    Operands (laneid: !index, args: Variadic<!AnyType>)
    Results (results: Variadic<!AnyType>)
    Region warpRegion {
      Arguments (blockArgs: Variadic<!AnyType>)
      Terminator yield
    }
    Summary "Execute a region on lane 0 of a warp"
  }

  Operation yield {
    Operands (operands: Variadic<!AnyType>)
    Successors ()
    Summary "Terminates vector regions"
  }
}
|}
