(** The [spv] dialect: SPIR-V for graphics shaders and compute kernels.
    The largest dialect in the corpus (Figure 4). Uniform instruction
    families (arithmetic, comparisons, atomics, GL/OCL extended sets, group
    operations) are generated; structural operations are spelled out. *)

let name = "spv"
let description = "Graphics shaders and compute kernels"

let int_arith =
  [ "IAdd"; "ISub"; "IMul"; "SDiv"; "UDiv"; "SMod"; "SRem"; "UMod" ]

let float_arith = [ "FAdd"; "FSub"; "FMul"; "FDiv"; "FMod"; "FRem" ]

let bit_binops =
  [ "BitwiseAnd"; "BitwiseOr"; "BitwiseXor"; "ShiftLeftLogical";
    "ShiftRightLogical"; "ShiftRightArithmetic" ]

let int_compares =
  [ "IEqual"; "INotEqual"; "SGreaterThan"; "SGreaterThanEqual"; "SLessThan";
    "SLessThanEqual"; "UGreaterThan"; "UGreaterThanEqual"; "ULessThan";
    "ULessThanEqual" ]

let float_compares =
  [ "FOrdEqual"; "FOrdGreaterThan"; "FOrdGreaterThanEqual"; "FOrdLessThan";
    "FOrdLessThanEqual"; "FOrdNotEqual"; "FUnordEqual"; "FUnordGreaterThan";
    "FUnordGreaterThanEqual"; "FUnordLessThan"; "FUnordLessThanEqual";
    "FUnordNotEqual" ]

let conversions =
  [ "Bitcast"; "ConvertFToS"; "ConvertFToU"; "ConvertSToF"; "ConvertUToF";
    "FConvert"; "SConvert"; "UConvert"; "PtrCastToGeneric"; "GenericCastToPtr" ]

let atomics =
  [ "AtomicAnd"; "AtomicOr"; "AtomicXor"; "AtomicIAdd"; "AtomicISub";
    "AtomicSMax"; "AtomicSMin"; "AtomicUMax"; "AtomicUMin"; "AtomicExchange" ]

let gl_unary =
  [ "FAbs"; "SAbs"; "Ceil"; "Cos"; "Sin"; "Tan"; "Tanh"; "Sinh"; "Cosh";
    "Acos"; "Asin"; "Atan"; "Exp"; "Log"; "Sqrt"; "InverseSqrt"; "Floor";
    "Round"; "RoundEven"; "FSign"; "SSign" ]

let gl_binary = [ "FMax"; "FMin"; "SMax"; "SMin"; "UMax"; "UMin"; "Pow" ]

let ocl_unary =
  [ "erf"; "exp"; "fabs"; "floor"; "log"; "rsqrt"; "sqrt"; "sin"; "cos";
    "tanh" ]

let group_ops =
  [ "GroupNonUniformFAdd"; "GroupNonUniformFMax"; "GroupNonUniformFMin";
    "GroupNonUniformFMul"; "GroupNonUniformIAdd"; "GroupNonUniformIMul";
    "GroupNonUniformSMax"; "GroupNonUniformSMin"; "GroupNonUniformUMax";
    "GroupNonUniformUMin" ]

let source =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    {|
Dialect spv {
  Enum storage_class { UniformConstant, Input, Uniform, Output, Workgroup,
                       CrossWorkgroup, Private, Function, Generic,
                       PushConstant, AtomicCounter, Image, StorageBuffer }
  Enum scope { CrossDevice, Device, Workgroup, Subgroup, Invocation }
  Enum memory_semantics { None_, Acquire, Release, AcquireRelease,
                          SequentiallyConsistent }
  Enum group_operation { Reduce, InclusiveScan, ExclusiveScan }
  Enum image_dim { Dim1D, Dim2D, Dim3D, Cube, Rect, Buffer, SubpassData }

  Constraint ValidVersion : uint32_t {
    Summary "a supported SPIR-V minor version"
    CppConstraint "$_self <= 6"
  }

  Constraint DescriptorBinding : uint32_t {
    Summary "a descriptor binding index within limits"
    CppConstraint "$_self < 1048576"
  }

  Type array {
    Parameters (elementType: !AnyType, elementCount: uint32_t, stride: uint32_t)
    Summary "A fixed-size SPIR-V array"
    CppConstraint "$_self.elementCount >= 1"
  }

  Type runtime_array {
    Parameters (elementType: !AnyType, stride: uint32_t)
    Summary "An array without a compile-time size"
  }

  Type image {
    Parameters (elementType: !AnyType, dim: image_dim, depthInfo: uint32_t,
                arrayedInfo: uint32_t, samplingInfo: uint32_t,
                samplerUseInfo: uint32_t)
    Summary "An image type"
  }

  Type sampled_image {
    Parameters (imageType: !AnyType)
    Summary "An image combined with a sampler"
  }

  Type pointer {
    Parameters (pointeeType: !AnyType, storageClass: storage_class)
    Summary "A pointer with an explicit storage class"
  }

  Type struct {
    Parameters (memberTypes: array<!AnyType>, offsetInfo: array<int64_t>,
                identifier: string)
    Summary "A SPIR-V struct with explicit layout"
    CppConstraint "$_self.offsetInfo.size() == 0 || $_self.offsetInfo.size() == $_self.memberTypes.size()"
  }

  Type matrix {
    Parameters (columnType: !AnyType, columnCount: uint32_t)
    Summary "A matrix of column vectors"
    CppConstraint "$_self.columnCount >= 2 && $_self.columnCount <= 4"
  }

  Type cooperative_matrix {
    Parameters (elementType: !AnyType, rows: uint32_t, columns: uint32_t,
                scope: scope)
    Summary "A cooperative matrix"
  }

  Type sampler {
    Summary "A sampler"
  }

  Type void {
    Summary "The SPIR-V void type"
  }

  Type function {
    Parameters (returnType: !AnyType, argumentTypes: array<!AnyType>)
    Summary "A SPIR-V function type"
  }

  Type bool {
    Summary "The SPIR-V boolean"
  }

  Attribute entry_point_abi {
    Parameters (local_size: array<int64_t>)
    Summary "Workgroup size metadata for an entry point"
    CppConstraint "$_self.local_size.size() == 3"
  }

  Attribute interface_var_abi {
    Parameters (descriptor_set: uint32_t, binding: uint32_t,
                storage_class: storage_class)
    Summary "Descriptor binding metadata for an interface variable"
  }

  TypeOrAttrParam ResourceLimitsParam {
    Summary "Hardware resource limits"
    CppClassName "spirv::ResourceLimitsAttr"
    CppParser "parseResourceLimits($self)"
    CppPrinter "printResourceLimits($self)"
  }

  Attribute target_env {
    Parameters (triple: #AnyAttr, limits: ResourceLimitsParam)
    Summary "The target environment (version, capabilities, limits)"
  }

  Attribute ver_cap_ext {
    Parameters (version: ValidVersion, capabilities: array<string>,
                extensions: array<string>)
    Summary "A (version, capabilities, extensions) triple"
  }

  Attribute decoration {
    Parameters (kind: string, value: #AnyAttr)
    Summary "A SPIR-V decoration"
  }

  Attribute linkage_attributes {
    Parameters (linkage_name: string, linkage_type: string)
    Summary "Import/export linkage metadata"
  }

  Alias !Ptr = !pointer
  // The builtin "bool" parameter constraint shadows the unqualified name,
  // so the dialect's own boolean type is referenced fully qualified.
  Alias !Bool = AnyOf<!spv.bool, !i1>
|};
  let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun op ->
      emit
        {|
  Operation %s {
    ConstraintVars (T: !AnyType)
    Operands (operand1: !T, operand2: !T)
    Results (result: !T)
    Summary "SPIR-V Op%s"
  }
|}
        op op)
    (int_arith @ float_arith @ bit_binops);
  List.iter
    (fun op ->
      emit
        {|
  Operation %s {
    ConstraintVars (T: !AnyType)
    Operands (operand1: !T, operand2: !T)
    Results (result: !Bool)
    Summary "SPIR-V Op%s"
    CppConstraint "resultShapeMatchesOperands($_self)"
  }
|}
        op op)
    (int_compares @ float_compares);
  List.iter
    (fun op ->
      emit
        {|
  Operation %s {
    Operands (operand: !AnyType)
    Results (result: !AnyType)
    Summary "SPIR-V Op%s"
    CppConstraint "areConversionCompatible($_self.operand().getType(), $_self.result().getType())"
  }
|}
        op op)
    conversions;
  List.iter
    (fun op ->
      emit
        {|
  Operation %s {
    Operands (pointer: !Ptr, value: !AnyType)
    Results (result: !AnyType)
    Attributes (memory_scope: scope, semantics: memory_semantics)
    Summary "SPIR-V Op%s"
    CppConstraint "$_self.pointer().getType().getPointeeType() == $_self.result().getType()"
  }
|}
        op op)
    atomics;
  List.iter
    (fun op ->
      emit
        {|
  Operation GL_%s {
    ConstraintVars (T: !AnyType)
    Operands (operand: !T)
    Results (result: !T)
    Summary "GLSL extended instruction %s"
  }
|}
        op op)
    gl_unary;
  List.iter
    (fun op ->
      emit
        {|
  Operation GL_%s {
    ConstraintVars (T: !AnyType)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "GLSL extended instruction %s"
  }
|}
        op op)
    gl_binary;
  List.iter
    (fun op ->
      emit
        {|
  Operation OCL_%s {
    ConstraintVars (T: !AnyType)
    Operands (operand: !T)
    Results (result: !T)
    Summary "OpenCL extended instruction %s"
  }
|}
        op op)
    ocl_unary;
  List.iter
    (fun op ->
      emit
        {|
  Operation %s {
    Operands (value: !AnyType)
    Results (result: !AnyType)
    Attributes (execution_scope: scope, group_operation: group_operation)
    Summary "SPIR-V Op%s"
    CppConstraint "$_self.value().getType() == $_self.result().getType()"
  }
|}
        op op)
    group_ops;
  Buffer.add_string buf
    {|
  Operation FNegate {
    ConstraintVars (T: !AnyType)
    Operands (operand: !T)
    Results (result: !T)
    Summary "SPIR-V OpFNegate"
  }

  Operation SNegate {
    ConstraintVars (T: !AnyType)
    Operands (operand: !T)
    Results (result: !T)
    Summary "SPIR-V OpSNegate"
  }

  Operation Not {
    ConstraintVars (T: !AnyType)
    Operands (operand: !T)
    Results (result: !T)
    Summary "SPIR-V OpNot"
  }

  Operation BitCount {
    ConstraintVars (T: !AnyType)
    Operands (operand: !T)
    Results (result: !T)
    Summary "SPIR-V OpBitCount"
  }

  Operation BitReverse {
    ConstraintVars (T: !AnyType)
    Operands (operand: !T)
    Results (result: !T)
    Summary "SPIR-V OpBitReverse"
  }

  Operation BitFieldInsert {
    Operands (base: !AnyType, insert: !AnyType, offset: !AnyType,
              count: !AnyType)
    Results (result: !AnyType)
    Summary "SPIR-V OpBitFieldInsert"
    CppConstraint "$_self.base().getType() == $_self.result().getType()"
  }

  Operation BitFieldSExtract {
    Operands (base: !AnyType, offset: !AnyType, count: !AnyType)
    Results (result: !AnyType)
    Summary "SPIR-V OpBitFieldSExtract"
  }

  Operation BitFieldUExtract {
    Operands (base: !AnyType, offset: !AnyType, count: !AnyType)
    Results (result: !AnyType)
    Summary "SPIR-V OpBitFieldUExtract"
  }

  Operation LogicalAnd {
    Operands (operand1: !Bool, operand2: !Bool)
    Results (result: !Bool)
    Summary "SPIR-V OpLogicalAnd"
  }

  Operation LogicalOr {
    Operands (operand1: !Bool, operand2: !Bool)
    Results (result: !Bool)
    Summary "SPIR-V OpLogicalOr"
  }

  Operation LogicalNot {
    Operands (operand1: !Bool)
    Results (result: !Bool)
    Summary "SPIR-V OpLogicalNot"
  }

  Operation LogicalEqual {
    Operands (operand1: !Bool, operand2: !Bool)
    Results (result: !Bool)
    Summary "SPIR-V OpLogicalEqual"
  }

  Operation LogicalNotEqual {
    Operands (operand1: !Bool, operand2: !Bool)
    Results (result: !Bool)
    Summary "SPIR-V OpLogicalNotEqual"
  }

  Operation Select {
    ConstraintVars (T: !AnyType)
    Operands (condition: !Bool, true_value: !T, false_value: !T)
    Results (result: !T)
    Summary "SPIR-V OpSelect"
  }

  Operation IsNan {
    Operands (operand: !AnyType)
    Results (result: !Bool)
    Summary "SPIR-V OpIsNan"
  }

  Operation IsInf {
    Operands (operand: !AnyType)
    Results (result: !Bool)
    Summary "SPIR-V OpIsInf"
  }

  Operation Ordered {
    Operands (operand1: !AnyType, operand2: !AnyType)
    Results (result: !Bool)
    Summary "SPIR-V OpOrdered"
  }

  Operation Unordered {
    Operands (operand1: !AnyType, operand2: !AnyType)
    Results (result: !Bool)
    Summary "SPIR-V OpUnordered"
  }

  Operation CompositeConstruct {
    Operands (constituents: Variadic<!AnyType>)
    Results (result: !AnyType)
    Summary "SPIR-V OpCompositeConstruct"
    CppConstraint "constituentsMatchCompositeType($_self)"
  }

  Operation CompositeExtract {
    Operands (composite: !AnyType)
    Results (component: !AnyType)
    Attributes (indices: array<int32_t>)
    Summary "SPIR-V OpCompositeExtract"
    CppConstraint "indicesAreInBounds($_self.composite().getType(), $_self.indices())"
  }

  Operation CompositeInsert {
    Operands (object: !AnyType, composite: !AnyType)
    Results (result: !AnyType)
    Attributes (indices: array<int32_t>)
    Summary "SPIR-V OpCompositeInsert"
    CppConstraint "$_self.composite().getType() == $_self.result().getType()"
  }

  Operation VectorExtractDynamic {
    Operands (vector: !AnyType, index: !AnyType)
    Results (result: !AnyType)
    Summary "SPIR-V OpVectorExtractDynamic"
  }

  Operation VectorInsertDynamic {
    Operands (vector: !AnyType, component: !AnyType, index: !AnyType)
    Results (result: !AnyType)
    Summary "SPIR-V OpVectorInsertDynamic"
  }

  Operation VectorShuffle {
    Operands (vector1: !AnyType, vector2: !AnyType)
    Results (result: !AnyType)
    Attributes (components: array<int32_t>)
    Summary "SPIR-V OpVectorShuffle"
  }

  Operation VectorTimesScalar {
    Operands (vector: !AnyType, scalar: !AnyType)
    Results (result: !AnyType)
    Summary "SPIR-V OpVectorTimesScalar"
  }

  Operation MatrixTimesScalar {
    Operands (matrix: !matrix, scalar: !AnyType)
    Results (result: !matrix)
    Summary "SPIR-V OpMatrixTimesScalar"
  }

  Operation MatrixTimesMatrix {
    Operands (leftmatrix: !matrix, rightmatrix: !matrix)
    Results (result: !matrix)
    Summary "SPIR-V OpMatrixTimesMatrix"
    CppConstraint "$_self.leftmatrix().getType().getNumColumns() == $_self.rightmatrix().getType().getNumRows()"
  }

  Operation Transpose {
    Operands (matrix: !matrix)
    Results (result: !matrix)
    Summary "SPIR-V OpTranspose"
  }

  Operation Load {
    Operands (ptr: !Ptr)
    Results (value: !AnyType)
    Attributes (memory_access: Optional<string>, alignment: Optional<i32_attr>)
    Summary "SPIR-V OpLoad"
    CppConstraint "$_self.value().getType() == $_self.ptr().getType().getPointeeType()"
  }

  Operation Store {
    Operands (ptr: !Ptr, value: !AnyType)
    Attributes (memory_access: Optional<string>, alignment: Optional<i32_attr>)
    Summary "SPIR-V OpStore"
    CppConstraint "$_self.value().getType() == $_self.ptr().getType().getPointeeType()"
  }

  Operation AccessChain {
    Operands (base_ptr: !Ptr, indices: Variadic<!AnyType>)
    Results (component_ptr: !Ptr)
    Summary "SPIR-V OpAccessChain"
    CppConstraint "accessChainIsValid($_self)"
  }

  Operation InBoundsPtrAccessChain {
    Operands (base_ptr: !Ptr, element: !AnyType, indices: Variadic<!AnyType>)
    Results (result: !Ptr)
    Summary "SPIR-V OpInBoundsPtrAccessChain"
  }

  Operation Variable {
    Operands (initializer: Optional<!AnyType>)
    Results (pointer: !Ptr)
    Attributes (storage_class: storage_class)
    Summary "SPIR-V OpVariable"
    CppConstraint "$_self.pointer().getType().getStorageClass() == $_self.storage_class()"
  }

  Operation CopyMemory {
    Operands (target: !Ptr, source: !Ptr)
    Attributes (memory_access: Optional<string>)
    Summary "SPIR-V OpCopyMemory"
    CppConstraint "$_self.target().getType().getPointeeType() == $_self.source().getType().getPointeeType()"
  }

  Operation AtomicCompareExchange {
    Operands (pointer: !Ptr, value: !AnyType, comparator: !AnyType)
    Results (result: !AnyType)
    Attributes (memory_scope: scope, equal_semantics: memory_semantics,
                unequal_semantics: memory_semantics)
    Summary "SPIR-V OpAtomicCompareExchange"
  }

  Operation AtomicIIncrement {
    Operands (pointer: !Ptr)
    Results (result: !AnyType)
    Attributes (memory_scope: scope, semantics: memory_semantics)
    Summary "SPIR-V OpAtomicIIncrement"
  }

  Operation AtomicIDecrement {
    Operands (pointer: !Ptr)
    Results (result: !AnyType)
    Attributes (memory_scope: scope, semantics: memory_semantics)
    Summary "SPIR-V OpAtomicIDecrement"
  }

  Operation ControlBarrier {
    Attributes (execution_scope: scope, memory_scope: scope,
                semantics: memory_semantics)
    Summary "SPIR-V OpControlBarrier"
  }

  Operation MemoryBarrier {
    Attributes (memory_scope: scope, semantics: memory_semantics)
    Summary "SPIR-V OpMemoryBarrier"
  }

  Operation GroupBroadcast {
    Operands (value: !AnyType, localid: !AnyType)
    Results (result: !AnyType)
    Attributes (execution_scope: scope)
    Summary "SPIR-V OpGroupBroadcast"
  }

  Operation GroupNonUniformBallot {
    Operands (predicate: !Bool)
    Results (result: !AnyType)
    Attributes (execution_scope: scope)
    Summary "SPIR-V OpGroupNonUniformBallot"
  }

  Operation GroupNonUniformBroadcast {
    Operands (value: !AnyType, id: !AnyType)
    Results (result: !AnyType)
    Attributes (execution_scope: scope)
    Summary "SPIR-V OpGroupNonUniformBroadcast"
  }

  Operation GroupNonUniformElect {
    Results (result: !Bool)
    Attributes (execution_scope: scope)
    Summary "SPIR-V OpGroupNonUniformElect"
  }

  Operation GroupNonUniformShuffle {
    Operands (value: !AnyType, id: !AnyType)
    Results (result: !AnyType)
    Attributes (execution_scope: scope)
    Summary "SPIR-V OpGroupNonUniformShuffle"
  }

  Operation CooperativeMatrixLoadNV {
    Operands (pointer: !Ptr, stride: !AnyType, columnmajor: !Bool)
    Results (result: !cooperative_matrix)
    Attributes (memory_access: Optional<string>)
    Summary "SPIR-V OpCooperativeMatrixLoadNV"
  }

  Operation CooperativeMatrixStoreNV {
    Operands (pointer: !Ptr, object: !cooperative_matrix, stride: !AnyType,
              columnmajor: !Bool)
    Attributes (memory_access: Optional<string>)
    Summary "SPIR-V OpCooperativeMatrixStoreNV"
  }

  Operation CooperativeMatrixMulAddNV {
    Operands (a: !cooperative_matrix, b: !cooperative_matrix,
              c: !cooperative_matrix)
    Results (result: !cooperative_matrix)
    Summary "SPIR-V OpCooperativeMatrixMulAddNV"
    CppConstraint "$_self.c().getType() == $_self.result().getType()"
  }

  Operation CooperativeMatrixLengthNV {
    Results (result: !i32)
    Attributes (type: #AnyAttr)
    Summary "SPIR-V OpCooperativeMatrixLengthNV"
  }

  Operation ImageSampleImplicitLod {
    Operands (sampled_image: !sampled_image, coordinate: !AnyType)
    Results (result: !AnyType)
    Summary "SPIR-V OpImageSampleImplicitLod"
  }

  Operation ImageQuerySize {
    Operands (image: !image)
    Results (result: !AnyType)
    Summary "SPIR-V OpImageQuerySize"
  }

  Operation Image {
    Operands (sampled_image: !sampled_image)
    Results (result: !image)
    Summary "SPIR-V OpImage"
  }

  Operation module {
    Attributes (addressing_model: string, memory_model: string,
                vce_triple: Optional<#ver_cap_ext>, sym_name: Optional<string>)
    Region body {
      Arguments ()
    }
    Summary "A SPIR-V module"
    CppConstraint "$_self.body().hasOneBlock()"
  }

  Operation func {
    Attributes (sym_name: string, function_type: !AnyType,
                function_control: string)
    Region body {
      Arguments (args: Variadic<!AnyType>)
    }
    Summary "A SPIR-V function"
  }

  Operation mlir_loop {
    Region body {
      Arguments ()
    }
    Summary "Structured loop (header/body/merge blocks)"
    CppConstraint "loopRegionIsStructured($_self)"
  }

  Operation mlir_selection {
    Region body {
      Arguments ()
    }
    Summary "Structured selection"
    CppConstraint "selectionRegionIsStructured($_self)"
  }

  Operation mlir_merge {
    Successors ()
    Summary "Terminates loop/selection constructs"
  }

  Operation EntryPoint {
    Attributes (execution_model: string, fn: symbol,
                interface: array<#AnyAttr>)
    Summary "SPIR-V OpEntryPoint"
    CppConstraint "referencedFunctionExists($_self)"
  }

  Operation ExecutionMode {
    Attributes (fn: symbol, execution_mode: string, values: array<int32_t>)
    Summary "SPIR-V OpExecutionMode"
    CppConstraint "referencedFunctionExists($_self)"
  }

  Operation GlobalVariable {
    Attributes (type: #AnyAttr, sym_name: string,
                descriptor_set: Optional<DescriptorBinding>,
                binding: Optional<DescriptorBinding>,
                initializer: Optional<symbol>)
    Summary "A module-level variable"
    CppConstraint "$_self.type().isa<PointerType>()"
  }

  Operation mlir_addressof {
    Results (pointer: !Ptr)
    Attributes (variable: symbol)
    Summary "The address of a global variable"
  }

  Operation Constant {
    Results (constant: !AnyType)
    Attributes (value: #AnyAttr)
    Summary "SPIR-V OpConstant"
    CppConstraint "$_self.value().getType() == $_self.constant().getType()"
  }

  Operation SpecConstant {
    Attributes (sym_name: string, default_value: #AnyAttr)
    Summary "SPIR-V OpSpecConstant"
  }

  Operation SpecConstantComposite {
    Attributes (sym_name: string, constituents: array<#AnyAttr>)
    Summary "SPIR-V OpSpecConstantComposite"
  }

  Operation Undef {
    Results (result: !AnyType)
    Summary "SPIR-V OpUndef"
  }

  Operation FunctionCall {
    Operands (arguments: Variadic<!AnyType>)
    Results (return_value: Optional<!AnyType>)
    Attributes (callee: symbol)
    Summary "SPIR-V OpFunctionCall"
  }

  Operation Branch {
    Operands (blockArguments: Variadic<!AnyType>)
    Successors (target)
    Summary "SPIR-V OpBranch"
  }

  Operation BranchConditional {
    Operands (condition: !Bool, trueTargetOperands: Variadic<!AnyType>,
              falseTargetOperands: Variadic<!AnyType>)
    Attributes (branch_weights: Optional<array<int32_t>>)
    Successors (trueTarget, falseTarget)
    Summary "SPIR-V OpBranchConditional"
  }

  Operation Return {
    Successors ()
    Summary "SPIR-V OpReturn"
  }

  Operation ReturnValue {
    Operands (value: !AnyType)
    Successors ()
    Summary "SPIR-V OpReturnValue"
  }

  Operation Unreachable {
    Successors ()
    Summary "SPIR-V OpUnreachable"
  }

  Operation GL_FClamp {
    Operands (x: !AnyType, y: !AnyType, z: !AnyType)
    Results (result: !AnyType)
    Summary "GLSL FClamp extended instruction"
  }

  Operation GL_SClamp {
    Operands (x: !AnyType, y: !AnyType, z: !AnyType)
    Results (result: !AnyType)
    Summary "GLSL SClamp extended instruction"
  }

  Operation GL_UClamp {
    Operands (x: !AnyType, y: !AnyType, z: !AnyType)
    Results (result: !AnyType)
    Summary "GLSL UClamp extended instruction"
  }

  Operation GL_FMix {
    Operands (x: !AnyType, y: !AnyType, a: !AnyType)
    Results (result: !AnyType)
    Summary "GLSL FMix extended instruction"
  }

  Operation GL_Fma {
    Operands (a: !AnyType, b: !AnyType, c: !AnyType)
    Results (result: !AnyType)
    Summary "GLSL Fma extended instruction"
  }

  Operation GL_Ldexp {
    Operands (x: !AnyType, exp: !AnyType)
    Results (y: !AnyType)
    Summary "GLSL Ldexp extended instruction"
  }

  Operation GL_FrexpStruct {
    Operands (operand: !AnyType)
    Results (result: !struct)
    Summary "GLSL FrexpStruct extended instruction"
  }
}
|};
  Buffer.contents buf
