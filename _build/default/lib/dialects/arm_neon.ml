(** The [arm_neon] dialect: ARM's SIMD architecture extension.

    One of the two smallest dialects in the corpus (3 operations, Figure 4);
    representative of the hardware dialects whose operations take three or
    more operands (Figure 5a). *)

let name = "arm_neon"
let description = "ARM's SIMD architecture extension"

let source =
  {|
Dialect arm_neon {
  Alias !VectorOfInt = !builtin.vector

  Operation intr_smull {
    Operands (a: !VectorOfInt, b: !VectorOfInt)
    Results (res: !VectorOfInt)
    Summary "Signed multiply long (vector)"
    CppConstraint "$_self.res().getElementTypeBitWidth() == 2 * $_self.a().getElementTypeBitWidth()"
  }

  Operation intr_sdot {
    Operands (acc: !VectorOfInt, a: !VectorOfInt, b: !VectorOfInt)
    Results (res: !VectorOfInt)
    Summary "Signed integer dot product (vector)"
  }

  Operation sdot_2d {
    Operands (acc: !VectorOfInt, a: !VectorOfInt, b: !VectorOfInt)
    Results (res: !VectorOfInt)
    Summary "Signed integer dot product (2-d form)"
  }
}
|}
