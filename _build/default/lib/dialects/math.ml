(** The [math] dialect: scalar arithmetic beyond simple operations.
    Like [complex], fully expressible in declarative IRDL. *)

let name = "math"
let description = "Scalar arithmetic beyond simple operations"

let source =
  {|
Dialect math {
  Alias !AnyFloat = !AnyOf<!bf16, !f16, !f32, !f64>
  Alias !FloatLike = AnyOf<!AnyFloat, !builtin.vector, !builtin.tensor>
  Alias !IntLike = AnyOf<!i1, !i8, !i16, !i32, !i64, !builtin.vector, !builtin.tensor>

  Operation abs {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Floating-point absolute value"
  }

  Operation atan {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Arcus tangent"
  }

  Operation atan2 {
    ConstraintVars (T: !FloatLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Two-argument arcus tangent"
  }

  Operation ceil {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Round towards positive infinity"
  }

  Operation copysign {
    ConstraintVars (T: !FloatLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Copy the sign of one value onto another"
  }

  Operation cos {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Cosine"
  }

  Operation sin {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Sine"
  }

  Operation ctlz {
    ConstraintVars (T: !IntLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Count leading zeros"
  }

  Operation cttz {
    ConstraintVars (T: !IntLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Count trailing zeros"
  }

  Operation ctpop {
    ConstraintVars (T: !IntLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Count set bits"
  }

  Operation erf {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Error function"
  }

  Operation exp {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Base-e exponential"
  }

  Operation exp2 {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Base-2 exponential"
  }

  Operation expm1 {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "exp(x) - 1"
  }

  Operation floor {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Round towards negative infinity"
  }

  Operation fma {
    ConstraintVars (T: !FloatLike)
    Operands (a: !T, b: !T, c: !T)
    Results (result: !T)
    Summary "Fused multiply-add"
  }

  Operation log {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Natural logarithm"
  }

  Operation log10 {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Base-10 logarithm"
  }

  Operation log1p {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "log(1 + x)"
  }

  Operation log2 {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Base-2 logarithm"
  }

  Operation powf {
    ConstraintVars (T: !FloatLike)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Floating-point power"
  }

  Operation rsqrt {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Reciprocal square root"
  }

  Operation sqrt {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Square root"
  }

  Operation tanh {
    ConstraintVars (T: !FloatLike)
    Operands (operand: !T)
    Results (result: !T)
    Summary "Hyperbolic tangent"
  }
}
|}
