(** The [pdl] dialect: the pattern description language used to express
    rewrite patterns as IR. *)

let name = "pdl"
let description = "Rewrite pattern description language"

let source =
  {|
Dialect pdl {
  Type attribute {
    Summary "A handle to an attribute"
  }

  Type operation {
    Summary "A handle to an operation"
  }

  Type range {
    Parameters (elementType: !AnyType)
    Summary "A range of PDL handles"
  }

  Type type {
    Summary "A handle to a type"
  }

  Type value {
    Summary "A handle to an SSA value"
  }

  Constraint PatternBenefit : uint16_t {
    Summary "a pattern benefit below 65536"
    CppConstraint "$_self < 65536"
  }

  Operation apply_native_constraint {
    Operands (args: Variadic<!AnyType>)
    Attributes (name: string)
    Summary "Apply a native constraint to matched entities"
  }

  Operation apply_native_rewrite {
    Operands (args: Variadic<!AnyType>)
    Results (results: Variadic<!AnyType>)
    Attributes (name: string)
    Summary "Apply a native rewrite function"
  }

  Operation attribute {
    Operands (valueType: Optional<!type>)
    Results (attr: !attribute)
    Attributes (value: Optional<#AnyAttr>)
    Summary "Define an attribute handle"
    CppConstraint "!($_self.value() && $_self.valueType())"
  }

  Operation erase {
    Operands (opValue: !operation)
    Summary "Erase a matched operation"
  }

  Operation operand {
    Operands (valueType: Optional<!type>)
    Results (value: !value)
    Summary "Define an operand handle"
  }

  Operation operands {
    Operands (valueType: Optional<!range>)
    Results (value: !range)
    Summary "Define a group of operand handles"
  }

  Operation operation {
    Operands (operandValues: Variadic<!AnyType>,
              attributeValues: Variadic<!attribute>,
              typeValues: Variadic<!AnyType>)
    Results (op: !operation)
    Attributes (opName: Optional<string>, attributeValueNames: array<string>)
    Summary "Define an operation handle"
    CppConstraint "$_self.attributeValues().size() == $_self.attributeValueNames().size()"
  }

  Operation pattern {
    Attributes (benefit: PatternBenefit, sym_name: Optional<string>)
    Region bodyRegion {
      Arguments ()
      Terminator rewrite
    }
    Summary "A rewrite pattern definition"
    CppConstraint "$_self.bodyRegion().front().hasTerminator()"
  }

  Operation range {
    Operands (arguments: Variadic<!AnyType>)
    Results (result: !range)
    Summary "Construct a range from components"
  }

  Operation replace {
    Operands (opValue: !operation, replOperation: Optional<!operation>,
              replValues: Variadic<!value>)
    Summary "Replace a matched operation"
    CppConstraint "($_self.replOperation() != nullptr) != ($_self.replValues().size() > 0)"
  }

  Operation result {
    Operands (parent: !operation)
    Results (val: !value)
    Attributes (index: i32_attr)
    Summary "Extract one result from an operation handle"
  }

  Operation results {
    Operands (parent: !operation)
    Results (val: !range)
    Attributes (index: Optional<i32_attr>)
    Summary "Extract a result group from an operation handle"
  }

  Operation rewrite {
    Operands (root: Optional<!operation>, externalArgs: Variadic<!AnyType>)
    Attributes (name: Optional<string>)
    Region bodyRegion {
      Arguments ()
    }
    Successors ()
    Summary "The rewrite section of a pattern"
  }

  Operation type {
    Results (result: !type)
    Attributes (constantType: Optional<#AnyAttr>)
    Summary "Define a type handle"
  }

  Operation types {
    Results (result: !range)
    Attributes (constantTypes: Optional<array<#AnyAttr>>)
    Summary "Define a group of type handles"
  }
}
|}
