(** The [memref] dialect: multi-dimensional memory references.

    Carries the corpus's "stride check" IRDL-C++ constraints (Figure 12):
    view-like operations require strided layouts, which plain IRDL cannot
    express. *)

let name = "memref"
let description = "Multi-dimensional memory references"

let source =
  {|
Dialect memref {
  Alias !AnyMemRef = !builtin.memref
  Alias !MemRefLike = AnyOf<!builtin.memref, !builtin.unranked_memref>
  Alias !AnyTensor = !builtin.tensor

  // Stride checks need IRDL-C++ (Figure 12).
  Constraint Strided : !builtin.memref {
    Summary "a memref with a strided layout"
    CppConstraint "isStrided($_self)"
  }

  Constraint Alignment : uint64_t {
    Summary "a power-of-two alignment"
    CppConstraint "llvm::isPowerOf2_64($_self)"
  }

  Operation alloc {
    Operands (dynamicSizes: Variadic<!index>, symbolOperands: Variadic<!index>)
    Results (memref: !AnyMemRef)
    Attributes (alignment: Optional<Alignment>)
    Summary "Allocate a heap buffer"
    CppConstraint "$_self.dynamicSizes().size() == $_self.memref().getType().getNumDynamicDims()"
  }

  Operation alloca {
    Operands (dynamicSizes: Variadic<!index>, symbolOperands: Variadic<!index>)
    Results (memref: !AnyMemRef)
    Attributes (alignment: Optional<Alignment>)
    Summary "Allocate stack memory"
    CppConstraint "$_self.dynamicSizes().size() == $_self.memref().getType().getNumDynamicDims()"
  }

  Operation alloca_scope {
    Results (results: Variadic<!AnyType>)
    Region bodyRegion {
      Arguments ()
      Terminator alloca_scope.return
    }
    Summary "A scope delimiting stack allocation lifetime"
  }

  Operation alloca_scope.return {
    Operands (results: Variadic<!AnyType>)
    Successors ()
    Summary "Terminates an alloca_scope region"
  }

  Operation assume_alignment {
    Operands (memref: !AnyMemRef)
    Attributes (alignment: Alignment)
    Summary "Assert a pointer alignment to the optimizer"
  }

  Operation atomic_rmw {
    Operands (value: !AnyType, memref: !AnyMemRef, indices: Variadic<!index>)
    Results (result: !AnyType)
    Attributes (kind: atomic_kind)
    Summary "Atomic read-modify-write"
    CppConstraint "$_self.value().getType() == $_self.memref().getType().getElementType()"
  }
  Enum atomic_kind { addf, addi, assign, maxf, maxs, maxu, minf, mins, minu, mulf, muli, ori, andi }

  Operation atomic_yield {
    Operands (result: !AnyType)
    Successors ()
    Summary "Terminates a generic_atomic_rmw region"
  }

  Operation generic_atomic_rmw {
    Operands (memref: !AnyMemRef, indices: Variadic<!index>)
    Results (result: !AnyType)
    Region atomic_body {
      Arguments (current: !AnyType)
      Terminator atomic_yield
    }
    Summary "Atomic read-modify-write with a user-defined region"
  }

  Operation cast {
    Operands (source: !MemRefLike)
    Results (dest: !MemRefLike)
    Summary "Cast between compatible memref types"
    CppConstraint "areCastCompatible($_self.source().getType(), $_self.dest().getType())"
  }

  Operation clone {
    Operands (input: !MemRefLike)
    Results (output: !MemRefLike)
    Summary "Clone a buffer, maybe aliasing"
  }

  Operation copy {
    Operands (source: Strided, target: Strided)
    Summary "Copy between buffers with identical shapes"
    CppConstraint "$_self.source().getType().getShape() == $_self.target().getType().getShape()"
  }

  Operation collapse_shape {
    Operands (src: !AnyMemRef)
    Results (result: !AnyMemRef)
    Attributes (reassociation: array<#AnyAttr>)
    Summary "Collapse contiguous dimension groups"
    CppConstraint "$_self.reassociation().size() == $_self.result().getType().getRank()"
  }

  Operation expand_shape {
    Operands (src: !AnyMemRef)
    Results (result: !AnyMemRef)
    Attributes (reassociation: array<#AnyAttr>)
    Summary "Expand dimensions into contiguous groups"
    CppConstraint "$_self.reassociation().size() == $_self.src().getType().getRank()"
  }

  Operation dealloc {
    Operands (memref: !MemRefLike)
    Summary "Free a heap buffer"
  }

  Operation dim {
    Operands (source: !MemRefLike, index: !index)
    Results (result: !index)
    Summary "The size of one dimension"
  }

  Operation dma_start {
    Operands (operands: Variadic<!AnyType>)
    Summary "Start a DMA transfer"
    CppConstraint "$_self.operands().size() >= 4"
  }

  Operation dma_wait {
    Operands (tagMemRef: !AnyMemRef, tagIndices: Variadic<!index>,
              numElements: !index)
    Summary "Wait for a DMA transfer"
  }

  Operation get_global {
    Results (result: !AnyMemRef)
    Attributes (name: symbol)
    Summary "Reference a global memref"
  }

  Operation global {
    Attributes (sym_name: string, type: !AnyType,
                initial_value: Optional<#AnyAttr>, constant: Optional<bool>,
                alignment: Optional<Alignment>)
    Summary "Declare a global memref"
    CppConstraint "$_self.initial_value().getType() == $_self.type()"
  }

  Operation load {
    Operands (memref: !AnyMemRef, indices: Variadic<!index>)
    Results (result: !AnyType)
    Summary "Load one element"
    CppConstraint "$_self.indices().size() == $_self.memref().getType().getRank()"
  }

  Operation store {
    Operands (value: !AnyType, memref: !AnyMemRef, indices: Variadic<!index>)
    Summary "Store one element"
    CppConstraint "$_self.indices().size() == $_self.memref().getType().getRank()"
  }

  Operation prefetch {
    Operands (memref: !AnyMemRef, indices: Variadic<!index>)
    Attributes (isWrite: bool, localityHint: i32_attr, isDataCache: bool)
    Summary "Prefetch hint"
  }

  Operation rank {
    Operands (memref: !MemRefLike)
    Results (result: !index)
    Summary "The rank of a memref"
  }

  Operation reinterpret_cast {
    Operands (source: !MemRefLike, offsets: Variadic<!index>,
              sizes: Variadic<!index>, strides: Variadic<!index>)
    Results (result: Strided)
    Attributes (static_offsets: array<int64_t>, static_sizes: array<int64_t>,
                static_strides: array<int64_t>)
    Summary "Reinterpret a buffer with new offset/sizes/strides"
  }

  Operation reshape {
    Operands (source: !MemRefLike, shape: !AnyMemRef)
    Results (result: !MemRefLike)
    Summary "Reshape to a runtime shape"
    CppConstraint "$_self.shape().getType().getRank() == 1"
  }

  Operation subview {
    Operands (source: Strided, offsets: Variadic<!index>,
              sizes: Variadic<!index>, strides: Variadic<!index>)
    Results (result: Strided)
    Attributes (static_offsets: array<int64_t>, static_sizes: array<int64_t>,
                static_strides: array<int64_t>)
    Summary "A strided view into a buffer"
  }

  Operation transpose {
    Operands (in: Strided)
    Results (result: Strided)
    Attributes (permutation: #builtin.affine_map_attr)
    Summary "A transposed strided view"
    CppConstraint "$_self.permutation().isPermutation()"
  }

  Operation view {
    Operands (source: Strided, byte_shift: !index, sizes: Variadic<!index>)
    Results (result: !AnyMemRef)
    Summary "A contiguous view with a byte offset"
  }

  Operation tensor_store {
    Operands (tensor: !AnyTensor, memref: !AnyMemRef)
    Summary "Store a tensor value into a buffer"
    CppConstraint "$_self.tensor().getType().getShape() == $_self.memref().getType().getShape()"
  }
}
|}
