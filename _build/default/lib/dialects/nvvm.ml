(** The [nvvm] dialect: LLVM's IR for NVIDIA GPU compute kernels. *)

let name = "nvvm"
let description = "LLVM's IR for GPU compute kernels"

let source =
  {|
Dialect nvvm {
  Alias !Ptr = !llvm.ptr

  Operation read_ptx_sreg_tid_x {
    Results (res: !i32)
    Summary "Thread id, x dimension"
  }

  Operation read_ptx_sreg_tid_y {
    Results (res: !i32)
    Summary "Thread id, y dimension"
  }

  Operation read_ptx_sreg_tid_z {
    Results (res: !i32)
    Summary "Thread id, z dimension"
  }

  Operation read_ptx_sreg_ntid_x {
    Results (res: !i32)
    Summary "Block dimension, x"
  }

  Operation read_ptx_sreg_ntid_y {
    Results (res: !i32)
    Summary "Block dimension, y"
  }

  Operation read_ptx_sreg_ntid_z {
    Results (res: !i32)
    Summary "Block dimension, z"
  }

  Operation read_ptx_sreg_ctaid_x {
    Results (res: !i32)
    Summary "Block id, x dimension"
  }

  Operation read_ptx_sreg_ctaid_y {
    Results (res: !i32)
    Summary "Block id, y dimension"
  }

  Operation read_ptx_sreg_ctaid_z {
    Results (res: !i32)
    Summary "Block id, z dimension"
  }

  Operation read_ptx_sreg_nctaid_x {
    Results (res: !i32)
    Summary "Grid dimension, x"
  }

  Operation read_ptx_sreg_nctaid_y {
    Results (res: !i32)
    Summary "Grid dimension, y"
  }

  Operation read_ptx_sreg_nctaid_z {
    Results (res: !i32)
    Summary "Grid dimension, z"
  }

  Operation read_ptx_sreg_laneid {
    Results (res: !i32)
    Summary "Lane id within the warp"
  }

  Operation read_ptx_sreg_warpsize {
    Results (res: !i32)
    Summary "Warp size"
  }

  Operation barrier0 {
    Summary "Synchronize all threads in a block"
  }

  Operation shfl_sync {
    Operands (dst: !i32, val: !AnyType, offset: !i32, mask_and_clamp: !i32)
    Results (res: !AnyType)
    Attributes (kind: shfl_kind, return_value_and_is_valid: Optional<bool>)
    Summary "Warp shuffle"
    CppConstraint "$_self.val().getType() == $_self.res().getTypeOrValidStruct()"
  }
  Enum shfl_kind { bfly, up, down, idx }

  Operation vote_ballot_sync {
    Operands (mask: !i32, pred: !i1)
    Results (res: !i32)
    Summary "Warp ballot vote"
  }

  Operation mma_sync {
    Operands (args: Variadic<!AnyType>)
    Results (res: !AnyType)
    Attributes (shape: array<int64_t>)
    Summary "Warp-level matrix multiply-accumulate"
    CppConstraint "$_self.shape().size() == 3"
  }

  Operation cp_async_shared_global {
    Operands (dst: !Ptr, src: !Ptr)
    Attributes (size: i32_attr)
    Summary "Asynchronous copy from global to shared memory"
  }

  Operation cp_async_commit_group {
    Summary "Commit outstanding async copies"
  }

  Operation cp_async_wait_group {
    Attributes (n: i32_attr)
    Summary "Wait for async copy groups"
  }

  Operation wmma_load_tile {
    Operands (ptr: !Ptr, stride: !i32)
    Results (res: !AnyType)
    Attributes (m: i32_attr, n: i32_attr, k: i32_attr, layout: string,
                eltype: string, frag: string)
    Summary "Load a WMMA tile fragment"
  }

  Operation wmma_store_tile {
    Operands (ptr: !Ptr, args: Variadic<!AnyType>)
    Attributes (m: i32_attr, n: i32_attr, k: i32_attr, layout: string,
                eltype: string)
    Summary "Store a WMMA tile fragment"
  }

  Operation wmma_mma {
    Operands (args: Variadic<!AnyType>)
    Results (res: !AnyType)
    Attributes (m: i32_attr, n: i32_attr, k: i32_attr, layoutA: string,
                layoutB: string, eltypeA: string, eltypeB: string)
    Summary "WMMA matrix multiply-accumulate"
  }

  Operation ld_matrix {
    Operands (ptr: !Ptr)
    Results (res: !AnyType)
    Attributes (num: i32_attr, layout: string)
    Summary "Load a matrix fragment from shared memory"
  }
}
|}
