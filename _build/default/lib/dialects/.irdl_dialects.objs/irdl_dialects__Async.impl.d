lib/dialects/async.ml:
