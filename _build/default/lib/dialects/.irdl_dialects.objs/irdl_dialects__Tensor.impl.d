lib/dialects/tensor.ml:
