lib/dialects/nvvm.ml:
