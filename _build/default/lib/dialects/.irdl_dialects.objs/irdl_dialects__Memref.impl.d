lib/dialects/memref.ml:
