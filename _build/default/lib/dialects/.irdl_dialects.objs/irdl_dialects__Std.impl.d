lib/dialects/std.ml:
