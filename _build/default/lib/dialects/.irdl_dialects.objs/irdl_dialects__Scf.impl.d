lib/dialects/scf.ml:
