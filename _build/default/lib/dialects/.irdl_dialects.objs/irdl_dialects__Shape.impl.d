lib/dialects/shape.ml:
