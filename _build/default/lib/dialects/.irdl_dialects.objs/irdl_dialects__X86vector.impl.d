lib/dialects/x86vector.ml:
