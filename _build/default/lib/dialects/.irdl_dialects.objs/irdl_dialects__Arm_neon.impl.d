lib/dialects/arm_neon.ml:
