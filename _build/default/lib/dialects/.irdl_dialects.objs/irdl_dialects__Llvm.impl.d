lib/dialects/llvm.ml: Buffer List Printf
