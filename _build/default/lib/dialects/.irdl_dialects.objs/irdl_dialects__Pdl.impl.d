lib/dialects/pdl.ml:
