lib/dialects/builtin.ml:
