lib/dialects/spv.ml: Buffer List Printf
