lib/dialects/arith.ml:
