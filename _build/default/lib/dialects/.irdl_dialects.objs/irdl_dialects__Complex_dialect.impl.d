lib/dialects/complex_dialect.ml:
