lib/dialects/amx.ml:
