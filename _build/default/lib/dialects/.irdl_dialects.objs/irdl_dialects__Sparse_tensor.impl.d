lib/dialects/sparse_tensor.ml:
