lib/dialects/math.ml:
