lib/dialects/pdl_interp.ml:
