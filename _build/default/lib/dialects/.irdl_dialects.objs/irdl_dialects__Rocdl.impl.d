lib/dialects/rocdl.ml: Buffer List Printf
