lib/dialects/linalg.ml:
