lib/dialects/vector.ml:
