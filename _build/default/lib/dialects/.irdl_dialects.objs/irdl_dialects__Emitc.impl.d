lib/dialects/emitc.ml:
