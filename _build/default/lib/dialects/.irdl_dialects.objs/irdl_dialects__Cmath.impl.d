lib/dialects/cmath.ml: Attr Graph Int64 Irdl_core Irdl_ir
