lib/dialects/tosa.ml: Buffer List Printf
