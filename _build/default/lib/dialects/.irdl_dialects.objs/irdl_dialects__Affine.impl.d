lib/dialects/affine.ml:
