lib/dialects/gpu.ml:
