lib/dialects/arm_sve.ml: Buffer List Printf
