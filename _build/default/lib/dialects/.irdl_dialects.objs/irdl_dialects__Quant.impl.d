lib/dialects/quant.ml:
