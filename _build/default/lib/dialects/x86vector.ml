(** The [x86vector] dialect: Intel x86 vector (AVX/AVX512) instructions.
    Includes the corpus's only two-result hardware op, [vp2intersect]. *)

let name = "x86vector"
let description = "The Intel x86 vector instruction set"

let source =
  {|
Dialect x86vector {
  Alias !Vec = !builtin.vector

  Operation avx512_mask_compress {
    Operands (k: !Vec, a: !Vec, src: Optional<!Vec>)
    Results (dst: !Vec)
    Summary "Masked compress (AVX512)"
    CppConstraint "$_self.a().getType() == $_self.dst().getType()"
  }

  Operation avx512_mask_rndscale {
    Operands (src: !Vec, k: !i32, a: !Vec, imm: !i16)
    Results (dst: !Vec)
    Summary "Masked round-scale (AVX512)"
  }

  Operation avx512_mask_scalef {
    Operands (src: !Vec, a: !Vec, b: !Vec, k: !i16)
    Results (dst: !Vec)
    Summary "Masked scale with factor (AVX512)"
  }

  Operation avx512_vp2intersect {
    Operands (a: !Vec, b: !Vec)
    Results (k1: !Vec, k2: !Vec)
    Summary "Compute intersection masks (AVX512)"
  }

  Operation avx512_mask_rndscale_ps_512 {
    Operands (src: !Vec, k: !i32, a: !Vec, imm: !i16, rounding: !i32)
    Results (dst: !Vec)
    Summary "Raw rndscale.ps.512 intrinsic"
  }

  Operation avx512_mask_rndscale_pd_512 {
    Operands (src: !Vec, k: !i32, a: !Vec, imm: !i16, rounding: !i32)
    Results (dst: !Vec)
    Summary "Raw rndscale.pd.512 intrinsic"
  }

  Operation avx512_mask_scalef_ps_512 {
    Operands (src: !Vec, a: !Vec, b: !Vec, k: !i16, rounding: !i32)
    Results (dst: !Vec)
    Summary "Raw scalef.ps.512 intrinsic"
  }

  Operation avx512_mask_scalef_pd_512 {
    Operands (src: !Vec, a: !Vec, b: !Vec, k: !i8, rounding: !i32)
    Results (dst: !Vec)
    Summary "Raw scalef.pd.512 intrinsic"
  }

  Operation avx512_vp2intersect_d_512 {
    Operands (a: !Vec, b: !Vec)
    Results (k1: !Vec, k2: !Vec)
    Summary "Raw vp2intersect.d.512 intrinsic"
  }

  Operation avx512_vp2intersect_q_512 {
    Operands (a: !Vec, b: !Vec)
    Results (k1: !Vec, k2: !Vec)
    Summary "Raw vp2intersect.q.512 intrinsic"
  }

  Operation avx_rsqrt {
    Operands (a: !Vec)
    Results (b: !Vec)
    Summary "Reciprocal square root approximation (AVX)"
    CppConstraint "$_self.a().getType() == $_self.b().getType()"
  }

  Operation avx_rsqrt_ps_256 {
    Operands (a: !Vec)
    Results (b: !Vec)
    Summary "Raw rsqrt.ps.256 intrinsic"
  }

  Operation avx_intr_dp_ps_256 {
    Operands (a: !Vec, b: !Vec, c: !i8)
    Results (res: !Vec)
    Summary "Raw dp.ps.256 intrinsic"
  }

  Operation avx_intr_dot {
    Operands (a: !Vec, b: !Vec)
    Results (res: !Vec)
    Summary "Horizontal dot product (AVX)"
  }

  Operation avx512_mask_cvt_ps_to_bf16 {
    Operands (src: !Vec, a: !Vec, k: !i16)
    Results (dst: !Vec)
    Summary "Masked convert f32 to bf16 (AVX512)"
  }

  Operation avx512_gather_dps {
    Operands (src: !Vec, base: !i64, index: !Vec, k: !i16, scale: !i8)
    Results (dst: !Vec)
    Summary "Gather packed singles (AVX512)"
  }
}
|}
