(** The [async] dialect: asynchronous execution. [execute] shows a
    multi-result operation (a token plus the async values, Figure 6a) and a
    region; [coro_suspend] is a terminator with successors. *)

let name = "async"
let description = "Asynchronous execution"

let source =
  {|
Dialect async {
  Type token {
    Summary "A handle to an asynchronous task"
  }

  Type value {
    Parameters (valueType: !AnyType)
    Summary "A future carrying a value"
  }

  Type group {
    Summary "A group of async tokens or values"
  }

  Type coro_handle {
    Summary "An LLVM coroutine handle"
  }

  Type coro_id {
    Summary "A coroutine identifier"
  }

  Type coro_state {
    Summary "A saved coroutine state"
  }

  Constraint GroupSize : int64_t {
    Summary "a non-negative group size"
    CppConstraint "$_self >= 0"
  }

  Operation execute {
    Operands (dependencies: Variadic<!token>, bodyOperands: Variadic<!AnyType>)
    Results (token: !token, bodyResults: Variadic<!value>)
    Region bodyRegion {
      Arguments (args: Variadic<!AnyType>)
      Terminator yield
    }
    Summary "Execute a region asynchronously"
    CppConstraint "$_self.bodyOperands().size() == $_self.bodyRegion().getNumArguments()"
  }

  Operation yield {
    Operands (operands: Variadic<!AnyType>)
    Successors ()
    Summary "Terminates an async.execute body"
  }

  Operation await {
    Operands (operand: !AnyType)
    Results (result: Optional<!AnyType>)
    Summary "Block until a token or value becomes available"
    CppConstraint "isTokenOrValue($_self.operand().getType())"
  }

  Operation await_all {
    Operands (operand: !group)
    Summary "Block until every member of a group completes"
  }

  Operation create_group {
    Operands (size: !index)
    Results (result: !group)
    Summary "Create an empty async group of the given size"
  }

  Operation add_to_group {
    Operands (operand: !AnyType, group: !group)
    Results (rank: !index)
    Summary "Add a token or value to a group"
  }

  Operation runtime_create {
    Results (result: !AnyType)
    Summary "Create an async runtime object"
  }

  Operation runtime_create_group {
    Operands (size: !index)
    Results (result: !group)
    Summary "Create a runtime group"
  }

  Operation runtime_set_available {
    Operands (operand: !AnyType)
    Summary "Mark a runtime object as available"
  }

  Operation runtime_set_error {
    Operands (operand: !AnyType)
    Summary "Mark a runtime object as failed"
  }

  Operation runtime_is_error {
    Operands (operand: !AnyType)
    Results (is_error: !i1)
    Summary "Query the error flag of a runtime object"
  }

  Operation runtime_await {
    Operands (operand: !AnyType)
    Summary "Runtime-level blocking await"
  }

  Operation runtime_resume {
    Operands (handle: !coro_handle)
    Summary "Resume a suspended coroutine"
  }

  Operation runtime_store {
    Operands (value: !AnyType, storage: !value)
    Summary "Store into a future's storage"
  }

  Operation runtime_load {
    Operands (storage: !value)
    Results (result: !AnyType)
    Summary "Load from a future's storage"
  }

  Operation runtime_add_ref {
    Operands (operand: !AnyType)
    Attributes (count: GroupSize)
    Summary "Increase a runtime reference count"
  }

  Operation runtime_drop_ref {
    Operands (operand: !AnyType)
    Attributes (count: GroupSize)
    Summary "Decrease a runtime reference count"
  }

  Operation runtime_add_to_group {
    Operands (operand: !AnyType, group: !group)
    Results (rank: !index)
    Summary "Runtime-level group insertion"
  }

  Operation runtime_num_worker_threads {
    Results (result: !index)
    Summary "Number of runtime worker threads"
  }

  Operation coro_id {
    Results (id: !coro_id)
    Summary "Coroutine identifier"
  }

  Operation coro_begin {
    Operands (id: !coro_id)
    Results (handle: !coro_handle)
    Summary "Allocate and begin a coroutine"
  }

  Operation coro_free {
    Operands (id: !coro_id, handle: !coro_handle)
    Summary "Free a coroutine frame"
  }

  Operation coro_end {
    Operands (handle: !coro_handle)
    Summary "End a coroutine"
  }

  Operation coro_save {
    Operands (handle: !coro_handle)
    Results (state: !coro_state)
    Summary "Save the coroutine state before suspension"
  }

  Operation coro_suspend {
    Operands (state: !coro_state)
    Successors (suspendDest, resumeDest, cleanupDest)
    Summary "Suspend a coroutine (three-way branch)"
  }
}
|}
