(** The [gpu] dialect: a retargetable GPU programming abstraction.
    [shuffle] is one of the corpus's rare two-result ops (Figure 6a), and
    [launch_func] needs segment sizes for its variadic groups. *)

let name = "gpu"
let description = "GPU abstraction"

let source =
  {|
Dialect gpu {
  Type async_token {
    Summary "A token for asynchronous GPU execution"
  }

  Type mma_matrix {
    Parameters (shape: array<int64_t>, elementType: !AnyType, operand: string)
    Summary "A matrix fragment for cooperative matrix multiply"
    CppConstraint "$_self.shape.size() == 2"
  }

  Enum dimension { x, y, z }
  Enum all_reduce_kind { add, and, max, min, mul, or, xor }

  Alias !MemRef = !builtin.memref

  Operation all_reduce {
    Operands (value: !AnyType)
    Results (result: !AnyType)
    Attributes (op: Optional<all_reduce_kind>)
    Region body {
      Arguments (lhs: !AnyType, rhs: !AnyType)
    }
    Summary "Reduce a value across a workgroup"
    CppConstraint "$_self.body().empty() != ($_self.op() == nullptr)"
  }

  Operation alloc {
    Operands (asyncDependencies: Variadic<!async_token>,
              dynamicSizes: Variadic<!index>, symbolOperands: Variadic<!index>)
    Results (memref: !MemRef, asyncToken: Optional<!async_token>)
    Summary "Allocate device memory"
    CppConstraint "$_self.dynamicSizes().size() == $_self.memref().getType().getNumDynamicDims()"
  }

  Operation barrier {
    Summary "Synchronize all work items of a workgroup"
  }

  Operation block_dim {
    Results (result: !index)
    Attributes (dimension: dimension)
    Summary "Workgroup size along a dimension"
  }

  Operation block_id {
    Results (result: !index)
    Attributes (dimension: dimension)
    Summary "Workgroup id along a dimension"
  }

  Operation dealloc {
    Operands (asyncDependencies: Variadic<!async_token>, memref: !MemRef)
    Results (asyncToken: Optional<!async_token>)
    Summary "Free device memory"
  }

  Operation func {
    Attributes (sym_name: string, function_type: !AnyType,
                workgroup_attributions: Optional<i64_attr>,
                kernel: Optional<#AnyAttr>)
    Region body {
      Arguments (args: Variadic<!AnyType>)
    }
    Summary "A function executable on a GPU"
    CppConstraint "!$_self.body().empty()"
  }

  Operation module {
    Attributes (sym_name: string)
    Region bodyRegion {
      Arguments ()
    }
    Summary "A module containing GPU kernels"
  }

  Operation module_end {
    Successors ()
    Summary "Terminates a gpu.module"
  }

  Operation grid_dim {
    Results (result: !index)
    Attributes (dimension: dimension)
    Summary "Grid size along a dimension"
  }

  Operation host_register {
    Operands (value: !builtin.unranked_memref)
    Summary "Map host memory into the device address space"
  }

  Operation launch {
    Operands (asyncDependencies: Variadic<!async_token>,
              gridSizeX: !index, gridSizeY: !index, gridSizeZ: !index,
              blockSizeX: !index, blockSizeY: !index, blockSizeZ: !index,
              dynamicSharedMemorySize: Optional<!i32>)
    Results (asyncToken: Optional<!async_token>)
    Region body {
      Arguments (ids: Variadic<!index>)
    }
    Summary "Launch a kernel given as a region"
    CppConstraint "$_self.body().getNumArguments() == 12"
  }

  Operation launch_func {
    Operands (asyncDependencies: Variadic<!async_token>,
              gridSizeX: !index, gridSizeY: !index, gridSizeZ: !index,
              blockSizeX: !index, blockSizeY: !index, blockSizeZ: !index,
              dynamicSharedMemorySize: Optional<!i32>,
              kernelOperands: Variadic<!AnyType>)
    Results (asyncToken: Optional<!async_token>)
    Attributes (kernel: symbol)
    Summary "Launch a kernel by symbol"
    CppConstraint "kernelSignatureMatches($_self)"
  }

  Operation memcpy {
    Operands (asyncDependencies: Variadic<!async_token>, dst: !MemRef,
              src: !MemRef)
    Results (asyncToken: Optional<!async_token>)
    Summary "Copy between host and device buffers"
    CppConstraint "$_self.dst().getType().getShape() == $_self.src().getType().getShape()"
  }

  Operation memset {
    Operands (asyncDependencies: Variadic<!async_token>, dst: !MemRef,
              value: !AnyType)
    Results (asyncToken: Optional<!async_token>)
    Summary "Fill a device buffer with a value"
  }

  Operation printf {
    Operands (args: Variadic<!AnyType>)
    Attributes (format: string)
    Summary "Device-side printf"
  }

  Operation return {
    Operands (operands: Variadic<!AnyType>)
    Successors ()
    Summary "Return from a gpu.func"
  }

  Operation set_default_device {
    Operands (devIndex: !i32)
    Summary "Select the default device"
  }

  Operation shuffle {
    Operands (value: !AnyType, offset: !i32, width: !i32)
    Results (shuffleResult: !AnyType, valid: !i1)
    Attributes (mode: shuffle_mode)
    Summary "Exchange values between work items of a subgroup"
    CppConstraint "$_self.value().getType() == $_self.shuffleResult().getType()"
  }
  Enum shuffle_mode { xor, down, up, idx }

  Operation subgroup_id {
    Results (result: !index)
    Summary "The id of the current subgroup"
  }

  Operation subgroup_size {
    Results (result: !index)
    Summary "The number of work items in a subgroup"
  }

  Operation num_subgroups {
    Results (result: !index)
    Summary "The number of subgroups in a workgroup"
  }

  Operation subgroup_mma_load_matrix {
    Operands (srcMemref: !MemRef, indices: Variadic<!index>)
    Results (res: !mma_matrix)
    Attributes (leadDimension: i64_attr)
    Summary "Load a cooperative matrix fragment"
  }

  Operation subgroup_mma_store_matrix {
    Operands (src: !mma_matrix, dstMemref: !MemRef, indices: Variadic<!index>)
    Attributes (leadDimension: i64_attr)
    Summary "Store a cooperative matrix fragment"
  }

  Operation subgroup_mma_compute {
    Operands (opA: !mma_matrix, opB: !mma_matrix, opC: !mma_matrix)
    Results (res: !mma_matrix)
    Summary "Cooperative matrix multiply-accumulate"
    CppConstraint "$_self.opC().getType() == $_self.res().getType()"
  }

  Operation subgroup_mma_constant_matrix {
    Operands (value: !AnyType)
    Results (res: !mma_matrix)
    Summary "Broadcast a scalar into a matrix fragment"
  }

  Operation terminator {
    Successors ()
    Summary "Terminates a gpu.launch region"
  }

  Operation thread_id {
    Results (result: !index)
    Attributes (dimension: dimension)
    Summary "Work-item id along a dimension"
  }

  Operation wait {
    Operands (asyncDependencies: Variadic<!async_token>)
    Results (asyncToken: Optional<!async_token>)
    Summary "Wait for async GPU operations"
  }

  Operation yield {
    Operands (values: Variadic<!AnyType>)
    Successors ()
    Summary "Terminates gpu regions, forwarding values"
  }
}
|}
