(** The [amx] dialect: Intel's advanced matrix extensions instruction set.
    Typical hardware dialect: most operations take three or more operands
    (Figure 5a). *)

let name = "amx"
let description = "Intel's advanced matrix instruction set"

let source =
  {|
Dialect amx {
  Alias !Vec = !builtin.vector
  Alias !MemRef = !builtin.memref

  Operation tile_zero {
    Results (res: !Vec)
    Summary "Zero a tile"
  }

  Operation tile_load {
    Operands (base: !MemRef, row: !index, col: !index)
    Results (res: !Vec)
    Summary "Load a tile from memory"
  }

  Operation tile_store {
    Operands (base: !MemRef, row: !index, col: !index, val: !Vec)
    Summary "Store a tile to memory"
  }

  Operation tile_mulf {
    Operands (lhs: !Vec, rhs: !Vec, acc: !Vec)
    Results (res: !Vec)
    Summary "Tile multiplication (floating-point)"
    CppConstraint "$_self.acc().getType() == $_self.res().getType()"
  }

  Operation tile_muli {
    Operands (lhs: !Vec, rhs: !Vec, acc: !Vec)
    Results (res: !Vec)
    Attributes (isZextLhs: Optional<bool>, isZextRhs: Optional<bool>)
    Summary "Tile multiplication (integer)"
    CppConstraint "$_self.acc().getType() == $_self.res().getType()"
  }

  Operation tilezero {
    Operands (row: !i16, col: !i16)
    Results (res: !Vec)
    Summary "Raw tilezero intrinsic"
  }

  Operation tileloadd64 {
    Operands (row: !i16, col: !i16, base: !i64, stride: !i64)
    Results (res: !Vec)
    Summary "Raw tile load intrinsic"
  }

  Operation tilestored64 {
    Operands (row: !i16, col: !i16, base: !i64, stride: !i64, val: !Vec)
    Summary "Raw tile store intrinsic"
  }

  Operation tdpbf16ps {
    Operands (row: !i16, col: !i16, k: !i16, acc: !Vec, lhs: !Vec, rhs: !Vec)
    Results (res: !Vec)
    Summary "Raw bf16 dot-product accumulate intrinsic"
    CppConstraint "$_self.acc().getType() == $_self.res().getType()"
  }

  Operation tdpbssd {
    Operands (row: !i16, col: !i16, k: !i16, acc: !Vec, lhs: !Vec, rhs: !Vec)
    Results (res: !Vec)
    Summary "Raw signed/signed i8 dot-product accumulate intrinsic"
  }

  Operation tdpbsud {
    Operands (row: !i16, col: !i16, k: !i16, acc: !Vec, lhs: !Vec, rhs: !Vec)
    Results (res: !Vec)
    Summary "Raw signed/unsigned i8 dot-product accumulate intrinsic"
  }

  Operation tdpbusd {
    Operands (row: !i16, col: !i16, k: !i16, acc: !Vec, lhs: !Vec, rhs: !Vec)
    Results (res: !Vec)
    Summary "Raw unsigned/signed i8 dot-product accumulate intrinsic"
  }

  Operation tdpbuud {
    Operands (row: !i16, col: !i16, k: !i16, acc: !Vec, lhs: !Vec, rhs: !Vec)
    Results (res: !Vec)
    Summary "Raw unsigned/unsigned i8 dot-product accumulate intrinsic"
  }

  Operation tile_mulfp16 {
    Operands (lhs: !Vec, rhs: !Vec, acc: !Vec)
    Results (res: !Vec)
    Summary "Tile multiplication (fp16)"
    CppConstraint "$_self.acc().getType() == $_self.res().getType()"
  }
}
|}
