(** The [shape] dialect: shape inference computations, operating on either
    shape-dialect types or standard index/tensor values. *)

let name = "shape"
let description = "Shape inference"

let source =
  {|
Dialect shape {
  Type shape {
    Summary "A (possibly unranked) shape"
  }

  Type size {
    Summary "A dimension size (or an error)"
  }

  Type value_shape {
    Summary "A pair of a value and its shape"
  }

  Type witness {
    Summary "A proof that constraints hold at runtime"
  }

  Alias !ShapeOrTensor = AnyOf<!shape, !builtin.tensor>
  Alias !SizeOrIndex = AnyOf<!size, !index>

  Operation add {
    Operands (lhs: !SizeOrIndex, rhs: !SizeOrIndex)
    Results (result: !SizeOrIndex)
    Summary "Size addition"
    CppConstraint "resultIsSizeIffAnyOperandIsSize($_self)"
  }

  Operation any {
    Operands (inputs: Variadic<!ShapeOrTensor>)
    Results (result: !ShapeOrTensor)
    Summary "Pick any of the equivalent input shapes"
  }

  Operation assuming {
    Operands (witness: !witness)
    Results (results: Variadic<!AnyType>)
    Region doRegion {
      Arguments ()
      Terminator assuming_yield
    }
    Summary "Execute a region assuming a witness holds"
  }

  Operation assuming_all {
    Operands (inputs: Variadic<!witness>)
    Results (result: !witness)
    Summary "Conjoin witnesses"
  }

  Operation assuming_yield {
    Operands (operands: Variadic<!AnyType>)
    Successors ()
    Summary "Terminates an assuming region"
  }

  Operation broadcast {
    Operands (shapes: Variadic<!ShapeOrTensor>)
    Results (result: !ShapeOrTensor)
    Attributes (error: Optional<string>)
    Summary "Broadcast shapes"
  }

  Operation concat {
    Operands (lhs: !shape, rhs: !shape)
    Results (result: !shape)
    Summary "Concatenate shapes"
  }

  Operation const_shape {
    Results (result: !ShapeOrTensor)
    Attributes (shape: array<int64_t>)
    Summary "A constant shape"
  }

  Operation const_size {
    Results (result: !size)
    Attributes (value: i64_attr)
    Summary "A constant size"
  }

  Operation const_witness {
    Results (result: !witness)
    Attributes (passing: bool)
    Summary "A constant witness"
  }

  Operation cstr_broadcastable {
    Operands (shapes: Variadic<!ShapeOrTensor>)
    Results (result: !witness)
    Summary "Witness that shapes are broadcastable"
    CppConstraint "$_self.shapes().size() >= 2"
  }

  Operation cstr_eq {
    Operands (shapes: Variadic<!ShapeOrTensor>)
    Results (result: !witness)
    Summary "Witness that shapes are equal"
    CppConstraint "$_self.shapes().size() >= 2"
  }

  Operation cstr_require {
    Operands (pred: !i1)
    Results (result: !witness)
    Attributes (msg: string)
    Summary "Witness from a boolean predicate"
  }

  Operation debug_print {
    Operands (input: !ShapeOrTensor)
    Results (output: !ShapeOrTensor)
    Summary "Print a shape for debugging"
  }

  Operation div {
    Operands (lhs: !SizeOrIndex, rhs: !SizeOrIndex)
    Results (result: !SizeOrIndex)
    Summary "Size division"
  }

  Operation from_extents {
    Operands (extents: Variadic<!SizeOrIndex>)
    Results (shape: !shape)
    Summary "Build a shape from extents"
  }

  Operation from_extent_tensor {
    Operands (input: !builtin.tensor)
    Results (result: !shape)
    Summary "Build a shape from an extent tensor"
    CppConstraint "$_self.input().getType().getRank() == 1"
  }

  Operation function_library {
    Attributes (sym_name: string, mapping: #AnyAttr)
    Region body {
      Arguments ()
    }
    Summary "Maps ops to their shape functions"
  }

  Operation func {
    Attributes (sym_name: string, function_type: !AnyType)
    Region body {
      Arguments ()
    }
    Summary "A shape function definition"
  }

  Operation get_extent {
    Operands (shape: !ShapeOrTensor, dim: !SizeOrIndex)
    Results (extent: !SizeOrIndex)
    Summary "Extract one extent"
  }

  Operation index_to_size {
    Operands (arg: !index)
    Results (result: !size)
    Summary "Convert an index to a size"
  }

  Operation is_broadcastable {
    Operands (shapes: Variadic<!ShapeOrTensor>)
    Results (result: !i1)
    Summary "Test broadcastability"
  }

  Operation max {
    Operands (lhs: !SizeOrIndex, rhs: !SizeOrIndex)
    Results (result: !SizeOrIndex)
    Summary "Size maximum"
  }

  Operation meet {
    Operands (arg0: !AnyType, arg1: !AnyType)
    Results (result: !AnyType)
    Attributes (error: Optional<string>)
    Summary "Most refined of two compatible values"
  }

  Operation min {
    Operands (lhs: !SizeOrIndex, rhs: !SizeOrIndex)
    Results (result: !SizeOrIndex)
    Summary "Size minimum"
  }

  Operation mul {
    Operands (lhs: !SizeOrIndex, rhs: !SizeOrIndex)
    Results (result: !SizeOrIndex)
    Summary "Size multiplication"
  }

  Operation num_elements {
    Operands (shape: !ShapeOrTensor)
    Results (result: !SizeOrIndex)
    Summary "Total element count of a shape"
  }

  Operation rank {
    Operands (shape: !ShapeOrTensor)
    Results (rank: !SizeOrIndex)
    Summary "The rank of a shape"
  }

  Operation reduce {
    Operands (shape: !ShapeOrTensor, initVals: Variadic<!AnyType>)
    Results (result: Variadic<!AnyType>)
    Region region {
      Arguments (index: !index, extent: !SizeOrIndex,
                 acc: Variadic<!AnyType>)
      Terminator yield
    }
    Summary "Reduce over a shape's extents"
    CppConstraint "$_self.initVals().getTypes() == $_self.result().getTypes()"
  }

  Operation return {
    Operands (operands: Variadic<!AnyType>)
    Successors ()
    Summary "Return from a shape function"
  }

  Operation shape_eq {
    Operands (shapes: Variadic<!ShapeOrTensor>)
    Results (result: !i1)
    Summary "Test shape equality"
  }

  Operation shape_of {
    Operands (arg: !AnyType)
    Results (result: !ShapeOrTensor)
    Summary "The shape of a value"
  }

  Operation size_to_index {
    Operands (arg: !SizeOrIndex)
    Results (result: !index)
    Summary "Convert a size to an index"
  }

  Operation split_at {
    Operands (operand: !ShapeOrTensor, index: !SizeOrIndex)
    Results (head: !ShapeOrTensor, tail: !ShapeOrTensor)
    Summary "Split a shape at an index"
  }

  Operation to_extent_tensor {
    Operands (input: !ShapeOrTensor)
    Results (result: !builtin.tensor)
    Summary "Convert a shape to an extent tensor"
  }

  Operation value_as_shape {
    Operands (arg: !AnyType)
    Results (shape: !ShapeOrTensor)
    Summary "Interpret a value's content as a shape"
  }

  Operation value_of {
    Operands (arg: !value_shape)
    Results (result: !AnyType)
    Summary "The value of a value-shape pair"
  }

  Operation with_shape {
    Operands (operand: !AnyType, shape: !ShapeOrTensor)
    Results (result: !value_shape)
    Summary "Pair a value with a shape"
  }

  Operation yield {
    Operands (operands: Variadic<!AnyType>)
    Successors ()
    Summary "Terminates shape regions"
  }
}
|}
