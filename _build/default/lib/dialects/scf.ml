(** The [scf] dialect: structured control flow.

    With [builtin], one of the two dialects where more than half the
    operations carry regions (Figure 7b); [for], [if] and [while] are also
    the corpus's main users of variadic results (Figure 6b). *)

let name = "scf"
let description = "Structured control flow, e.g. 'for' and 'if'"

let source =
  {|
Dialect scf {
  Constraint UnrollFactor : uint32_t {
    Summary "a positive unroll factor"
    CppConstraint "$_self >= 1"
  }

  Operation for {
    Operands (lowerBound: !index, upperBound: !index, step: !index,
              initArgs: Variadic<!AnyType>)
    Results (results: Variadic<!AnyType>)
    Attributes (unroll: Optional<UnrollFactor>)
    Region body {
      Arguments (inductionVar: !index, iterArgs: Variadic<!AnyType>)
      Terminator yield
    }
    Summary "A counted loop with loop-carried values"
    CppConstraint "$_self.initArgs().getTypes() == $_self.results().getTypes()"
  }

  Operation if {
    Operands (condition: !i1)
    Results (results: Variadic<!AnyType>)
    Region thenRegion {
      Arguments ()
    }
    Region elseRegion {
      Arguments ()
    }
    Summary "An if-then-else construct returning values"
    CppConstraint "$_self.elseRegion().empty() implies $_self.results().empty()"
  }

  Operation while {
    Operands (inits: Variadic<!AnyType>)
    Results (results: Variadic<!AnyType>)
    Region before {
      Arguments (beforeArgs: Variadic<!AnyType>)
      Terminator condition
    }
    Region after {
      Arguments (afterArgs: Variadic<!AnyType>)
      Terminator yield
    }
    Summary "A general while/do-while loop"
    CppConstraint "$_self.inits().getTypes() == $_self.before().getArgumentTypes()"
  }

  Operation parallel {
    Operands (lowerBound: Variadic<!index>, upperBound: Variadic<!index>,
              step: Variadic<!index>, initVals: Variadic<!AnyType>)
    Results (results: Variadic<!AnyType>)
    Region body {
      Arguments (inductionVars: Variadic<!index>)
      Terminator yield
    }
    Summary "A parallel multi-dimensional loop nest"
    CppConstraint "$_self.lowerBound().size() == $_self.upperBound().size() && $_self.lowerBound().size() == $_self.step().size()"
  }

  Operation reduce {
    Operands (operand: !AnyType)
    Region reductionOperator {
      Arguments (lhs: !AnyType, rhs: !AnyType)
      Terminator reduce.return
    }
    Summary "Declare a reduction inside an scf.parallel"
  }

  Operation reduce.return {
    Operands (result: !AnyType)
    Successors ()
    Summary "Terminates a reduction body"
    CppConstraint "$_self.result().getType() == $_self.parent().operand().getType()"
  }

  Operation condition {
    Operands (condition: !i1, args: Variadic<!AnyType>)
    Successors ()
    Summary "Terminates the before region of scf.while"
  }

  Operation yield {
    Operands (results: Variadic<!AnyType>)
    Successors ()
    Summary "Terminates scf regions, forwarding values"
  }

  Operation execute_region {
    Results (results: Variadic<!AnyType>)
    Region body {
      Arguments ()
    }
    Summary "Execute a region inline, yielding values"
  }

  Operation index_switch {
    Operands (arg: !index)
    Results (results: Variadic<!AnyType>)
    Attributes (cases: array<int64_t>)
    Region defaultRegion {
      Arguments ()
    }
    Summary "A switch on an index value"
    CppConstraint "llvm::is_sorted($_self.cases())"
  }

  Operation forall {
    Operands (lowerBound: Variadic<!index>, upperBound: Variadic<!index>,
              step: Variadic<!index>)
    Results (results: Variadic<!AnyType>)
    Region body {
      Arguments (inductionVars: Variadic<!index>)
    }
    Summary "A concurrently executed loop nest"
  }
}
|}
