(** The [emitc] dialect: printable C code. *)

let name = "emitc"
let description = "Printable C code"

let source =
  {|
Dialect emitc {
  Type opaque {
    Parameters (value: string)
    Summary "An opaque C type spelled out as a string"
  }

  Type ptr {
    Parameters (pointee: !AnyType)
    Summary "A C pointer"
  }

  Type array {
    Parameters (shape: array<int64_t>, elementType: !AnyType)
    Summary "A C array"
  }

  Attribute opaque_attr {
    Parameters (value: string)
    Summary "An opaque C expression"
  }

  Attribute include_attr {
    Parameters (file: string, isStandard: bool)
    Summary "A #include directive"
  }

  Attribute pointer_literal {
    Parameters (value: string)
    Summary "A pointer literal such as NULL"
  }

  Operation apply {
    Operands (operand: !AnyType)
    Results (result: !AnyType)
    Attributes (applicableOperator: string)
    Summary "Apply a C operator such as * or & to an operand"
    CppConstraint "$_self.applicableOperator() == \"&\" || $_self.applicableOperator() == \"*\""
  }

  Operation call {
    Operands (operands: Variadic<!AnyType>)
    Results (results: Variadic<!AnyType>)
    Attributes (callee: string, args: Optional<array<#AnyAttr>>,
                template_args: Optional<array<#AnyAttr>>)
    Summary "Call an opaque C function"
    CppConstraint "$_self.args() == nullptr || argsReferenceOperands($_self)"
  }

  Operation constant {
    Results (result: !AnyType)
    Attributes (value: #AnyAttr)
    Summary "A C constant"
    CppConstraint "$_self.value().getType() == $_self.result().getType()"
  }

  Operation include {
    Attributes (include: string, is_standard_include: Optional<bool>)
    Summary "A standalone #include"
  }

  Operation yield {
    Operands (result: Optional<!AnyType>)
    Successors ()
    Summary "Terminates an emitc region"
  }
}
|}
