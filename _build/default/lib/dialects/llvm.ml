(** The [llvm] dialect: LLVM's intermediate representation embedded in MLIR.

    One of the two largest dialects (Figure 4). Its [struct] type carries a
    native body parameter and the "struct opacity" IRDL-C++ constraint —
    the largest of the three native-constraint categories of Figure 12. *)

let name = "llvm"
let description = "LLVM's intermediate representation in MLIR"

let int_binops =
  [ "add"; "sub"; "mul"; "udiv"; "sdiv"; "urem"; "srem"; "and"; "or"; "xor";
    "shl"; "lshr"; "ashr" ]

let float_binops = [ "fadd"; "fsub"; "fmul"; "fdiv"; "frem" ]

let casts =
  [ "trunc"; "zext"; "sext"; "fptrunc"; "fpext"; "fptoui"; "fptosi";
    "uitofp"; "sitofp"; "ptrtoint"; "inttoptr"; "bitcast"; "addrspacecast" ]

let unary_float_intrinsics =
  [ "sqrt"; "sin"; "cos"; "exp"; "exp2"; "log"; "log2"; "log10"; "fabs";
    "floor"; "ceil"; "round"; "nearbyint"; "rint" ]

let binary_float_intrinsics =
  [ "pow"; "minnum"; "maxnum"; "minimum"; "maximum"; "copysign" ]

let bit_intrinsics = [ "bswap"; "bitreverse"; "ctpop" ]

let overflow_intrinsics =
  [ "sadd_with_overflow"; "uadd_with_overflow"; "ssub_with_overflow";
    "usub_with_overflow"; "smul_with_overflow"; "umul_with_overflow" ]

let sat_intrinsics = [ "sadd_sat"; "uadd_sat"; "ssub_sat"; "usub_sat" ]

let vector_reductions =
  [ "add"; "mul"; "and"; "or"; "xor"; "smax"; "smin"; "umax"; "umin";
    "fmax"; "fmin" ]

let coro_intrinsics =
  [ "id"; "begin"; "size"; "save"; "suspend"; "end"; "free"; "resume" ]

let source =
  let buf = Buffer.create 32768 in
  Buffer.add_string buf
    {|
Dialect llvm {
  Enum linkage { private_, internal, available_externally, linkonce, weak,
                 common, appending, extern_weak, linkonce_odr, weak_odr,
                 external }
  Enum icmp_predicate { eq, ne, slt, sle, sgt, sge, ult, ule, ugt, uge }
  Enum fcmp_predicate { false_, oeq, ogt, oge, olt, ole, one, ord, ueq, ugt,
                        uge, ult, ule, une, uno, true_ }
  Enum atomic_ordering { not_atomic, unordered, monotonic, acquire, release,
                         acq_rel, seq_cst }

  TypeOrAttrParam StructBodyParam {
    Summary "The field list of an identified struct"
    CppClassName "LLVMStructTypeStorage*"
    CppParser "parseStructBody($self)"
    CppPrinter "printStructBody($self)"
  }

  TypeOrAttrParam DINodeParam {
    Summary "A debug-info metadata node"
    CppClassName "llvm::DINode*"
    CppParser "parseDINode($self)"
    CppPrinter "printDINode($self)"
  }

  Type void {
    Summary "The void type"
  }

  Type ptr {
    Parameters (addressSpace: uint32_t)
    Summary "An (opaque) LLVM pointer"
  }

  Type struct {
    Parameters (identifier: string, body: StructBodyParam, packed: bool)
    Summary "An LLVM aggregate struct"
    CppConstraint "$_self.isIdentified() || !$_self.isPacked()"
  }

  Type array {
    Parameters (elementType: !AnyType, numElements: uint64_t)
    Summary "An LLVM array"
    CppConstraint "LLVMArrayType::isValidElementType($_self.elementType)"
  }

  Type fixed_vec {
    Parameters (elementType: !AnyType, numElements: uint64_t)
    Summary "A fixed-length LLVM vector"
    CppConstraint "$_self.numElements >= 1"
  }

  Type scalable_vec {
    Parameters (elementType: !AnyType, minNumElements: uint64_t)
    Summary "A scalable LLVM vector"
  }

  Type func {
    Parameters (result: !AnyType, arguments: array<!AnyType>, isVarArg: bool)
    Summary "An LLVM function type"
  }

  Type metadata {
    Summary "LLVM metadata"
  }

  Type token {
    Summary "The LLVM token type"
  }

  Type label {
    Summary "The LLVM label type"
  }

  Type x86_mmx {
    Summary "The x86 MMX register type"
  }

  Attribute linkage_attr {
    Parameters (linkage: linkage)
    Summary "Symbol linkage"
  }

  Attribute fastmath {
    Parameters (flags: array<string>)
    Summary "Fast-math flags"
  }

  Attribute loop_options {
    Parameters (options: array<#AnyAttr>)
    Summary "Loop metadata options"
    CppConstraint "optionsAreSorted($_self.options)"
  }

  Attribute di_subprogram {
    Parameters (node: DINodeParam)
    Summary "Debug-info subprogram reference"
  }

  // Struct-opacity checks need IRDL-C++ (the largest category of Figure 12).
  Constraint NonOpaquePointee : !AnyType {
    Summary "a pointee type that is not an opaque struct"
    CppConstraint "!isOpaqueStruct($_self)"
  }

  Constraint NonOpaqueAggregate : AnyOf<!struct, !array> {
    Summary "an aggregate whose struct members are non-opaque"
    CppConstraint "!hasOpaqueMember($_self)"
  }

  Alias !Int = !AnyOf<!i1, !i8, !i16, !i32, !i64>
  Alias !Float = !AnyOf<!bf16, !f16, !f32, !f64>
|};
  List.iter
    (fun op ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation %s {
    ConstraintVars (T: AnyOf<!Int, !fixed_vec>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
    Summary "LLVM '%s' instruction"
  }
|}
           op op))
    int_binops;
  List.iter
    (fun op ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation %s {
    ConstraintVars (T: AnyOf<!Float, !fixed_vec>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
    Attributes (fastmathFlags: Optional<#fastmath>)
    Summary "LLVM '%s' instruction"
  }
|}
           op op))
    float_binops;
  List.iter
    (fun op ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation %s {
    Operands (arg: !AnyType)
    Results (res: !AnyType)
    Summary "LLVM '%s' cast"
    CppConstraint "areCastCompatible($_self.arg().getType(), $_self.res().getType())"
  }
|}
           op op))
    casts;
  Buffer.add_string buf
    {|
  Operation fneg {
    ConstraintVars (T: AnyOf<!Float, !fixed_vec>)
    Operands (operand: !T)
    Results (res: !T)
    Summary "LLVM 'fneg' instruction"
  }

  Operation icmp {
    ConstraintVars (T: !AnyType)
    Operands (lhs: !T, rhs: !T)
    Results (res: !i1)
    Attributes (predicate: icmp_predicate)
    Summary "LLVM integer comparison"
  }

  Operation fcmp {
    ConstraintVars (T: !AnyType)
    Operands (lhs: !T, rhs: !T)
    Results (res: !i1)
    Attributes (predicate: fcmp_predicate, fastmathFlags: Optional<#fastmath>)
    Summary "LLVM floating-point comparison"
  }

  Operation alloca {
    Operands (arraySize: !Int)
    Results (res: !ptr)
    Attributes (alignment: Optional<i64_attr>, elem_type: Optional<NonOpaquePointee>)
    Summary "Stack allocation"
  }

  Operation load {
    Operands (addr: !ptr)
    Results (res: NonOpaquePointee)
    Attributes (alignment: Optional<i64_attr>, volatile_: Optional<bool>,
                nontemporal: Optional<bool>)
    Summary "Memory load"
  }

  Operation store {
    Operands (value: NonOpaquePointee, addr: !ptr)
    Attributes (alignment: Optional<i64_attr>, volatile_: Optional<bool>)
    Summary "Memory store"
  }

  Operation getelementptr {
    Operands (base: !ptr, dynamicIndices: Variadic<!Int>)
    Results (res: !ptr)
    Attributes (rawConstantIndices: array<int32_t>, elem_type: Optional<#AnyAttr>)
    Summary "Address computation"
    CppConstraint "!baseIsOpaqueStruct($_self) || $_self.elem_type() != nullptr"
  }

  Operation fence {
    Attributes (ordering: atomic_ordering, syncscope: Optional<string>)
    Summary "Memory fence"
  }

  Operation atomicrmw {
    Operands (ptr: !ptr, val: !AnyType)
    Results (res: !AnyType)
    Attributes (bin_op: string, ordering: atomic_ordering)
    Summary "Atomic read-modify-write"
  }

  Operation cmpxchg {
    Operands (ptr: !ptr, cmp: !AnyType, val: !AnyType)
    Results (res: NonOpaqueAggregate)
    Attributes (success_ordering: atomic_ordering,
                failure_ordering: atomic_ordering)
    Summary "Atomic compare-and-exchange"
    CppConstraint "$_self.cmp().getType() == $_self.val().getType()"
  }

  Operation extractvalue {
    Operands (container: NonOpaqueAggregate)
    Results (res: !AnyType)
    Attributes (position: array<int64_t>)
    Summary "Extract from an aggregate"
    CppConstraint "positionIsValid($_self.container().getType(), $_self.position())"
  }

  Operation insertvalue {
    Operands (container: NonOpaqueAggregate, value: !AnyType)
    Results (res: NonOpaqueAggregate)
    Attributes (position: array<int64_t>)
    Summary "Insert into an aggregate"
    CppConstraint "$_self.container().getType() == $_self.res().getType()"
  }

  Operation extractelement {
    Operands (vector: !fixed_vec, position: !Int)
    Results (res: !AnyType)
    Summary "Extract a vector lane"
  }

  Operation insertelement {
    Operands (vector: !fixed_vec, value: !AnyType, position: !Int)
    Results (res: !fixed_vec)
    Summary "Insert a vector lane"
  }

  Operation shufflevector {
    Operands (v1: !fixed_vec, v2: !fixed_vec)
    Results (res: !fixed_vec)
    Attributes (mask: array<int32_t>)
    Summary "Shuffle two vectors"
    CppConstraint "$_self.v1().getType() == $_self.v2().getType()"
  }

  Operation select {
    ConstraintVars (T: !AnyType)
    Operands (condition: !i1, trueValue: !T, falseValue: !T)
    Results (res: !T)
    Summary "Value selection"
  }

  Operation freeze {
    ConstraintVars (T: !AnyType)
    Operands (val: !T)
    Results (res: !T)
    Summary "Freeze a possibly-poison value"
  }

  Operation br {
    Operands (destOperands: Variadic<!AnyType>)
    Successors (dest)
    Summary "Unconditional branch"
  }

  Operation cond_br {
    Operands (condition: !i1, trueDestOperands: Variadic<!AnyType>,
              falseDestOperands: Variadic<!AnyType>)
    Successors (trueDest, falseDest)
    Summary "Conditional branch"
  }

  Operation switch {
    Operands (value: !Int, defaultOperands: Variadic<!AnyType>,
              caseOperands: Variadic<!AnyType>)
    Attributes (case_values: Optional<array<int64_t>>)
    Successors (defaultDestination, caseDestinations)
    Summary "Multi-way branch"
  }

  Operation call {
    Operands (callee_operands: Variadic<!AnyType>)
    Results (result: Optional<!AnyType>)
    Attributes (callee: Optional<symbol>, fastmathFlags: Optional<#fastmath>)
    Summary "Direct or indirect call"
  }

  Operation invoke {
    Operands (callee_operands: Variadic<!AnyType>,
              normalDestOperands: Variadic<!AnyType>,
              unwindDestOperands: Variadic<!AnyType>)
    Results (result: Optional<!AnyType>)
    Attributes (callee: Optional<symbol>)
    Successors (normalDest, unwindDest)
    Summary "Call with exception edges"
  }

  Operation landingpad {
    Operands (clauses: Variadic<!AnyType>)
    Results (res: NonOpaqueAggregate)
    Attributes (cleanup: Optional<bool>)
    Summary "Exception landing pad"
  }

  Operation resume {
    Operands (value: !AnyType)
    Successors ()
    Summary "Resume exception propagation"
  }

  Operation return {
    Operands (args: Variadic<!AnyType>)
    Successors ()
    Summary "Return from a function"
  }

  Operation unreachable {
    Successors ()
    Summary "Unreachable terminator"
  }

  Operation func {
    Attributes (sym_name: string, function_type: !AnyType,
                linkage: Optional<#linkage_attr>, personality: Optional<symbol>,
                garbageCollector: Optional<string>)
    Region body {
      Arguments (args: Variadic<!AnyType>)
    }
    Summary "An LLVM function"
    CppConstraint "$_self.body().empty() || $_self.body().args() == $_self.function_type().params()"
  }

  Operation mlir_global {
    Attributes (sym_name: string, global_type: NonOpaquePointee, constant: Optional<bool>,
                value: Optional<#AnyAttr>, linkage: Optional<#linkage_attr>,
                alignment: Optional<i64_attr>)
    Region initializer {
      Arguments ()
    }
    Summary "A global variable"
    CppConstraint "$_self.value() != nullptr || !$_self.initializer().empty() || isDeclaration($_self)"
  }

  Operation mlir_addressof {
    Results (res: !ptr)
    Attributes (global_name: symbol)
    Summary "The address of a global"
  }

  Operation mlir_constant {
    Results (res: !AnyType)
    Attributes (value: #AnyAttr)
    Summary "An LLVM constant"
    CppConstraint "valueFitsType($_self.value(), $_self.res().getType())"
  }

  Operation mlir_null {
    Results (res: !ptr)
    Summary "A null pointer"
  }

  Operation mlir_undef {
    Results (res: !AnyType)
    Summary "An undefined value"
  }

  Operation intr_memcpy {
    Operands (dst: !ptr, src: !ptr, len: !Int, isVolatile: !i1)
    Summary "memcpy intrinsic"
  }

  Operation intr_memmove {
    Operands (dst: !ptr, src: !ptr, len: !Int, isVolatile: !i1)
    Summary "memmove intrinsic"
  }

  Operation intr_memset {
    Operands (dst: !ptr, val: !i8, len: !Int, isVolatile: !i1)
    Summary "memset intrinsic"
  }

  Operation intr_fma {
    ConstraintVars (T: AnyOf<!Float, !fixed_vec>)
    Operands (a: !T, b: !T, c: !T)
    Results (res: !T)
    Summary "fma intrinsic"
  }

  Operation intr_fmuladd {
    ConstraintVars (T: AnyOf<!Float, !fixed_vec>)
    Operands (a: !T, b: !T, c: !T)
    Results (res: !T)
    Summary "fmuladd intrinsic"
  }

  Operation intr_powi {
    Operands (val: !Float, power: !i32)
    Results (res: !Float)
    Summary "powi intrinsic"
  }

  Operation intr_ctlz {
    Operands (in: !Int, zero_undefined: !i1)
    Results (res: !Int)
    Summary "count-leading-zeros intrinsic"
  }

  Operation intr_cttz {
    Operands (in: !Int, zero_undefined: !i1)
    Results (res: !Int)
    Summary "count-trailing-zeros intrinsic"
  }

  Operation intr_assume {
    Operands (cond: !i1)
    Summary "assume intrinsic"
  }

  Operation intr_expect {
    ConstraintVars (T: !Int)
    Operands (val: !T, expected: !T)
    Results (res: !T)
    Summary "expect intrinsic"
  }

  Operation intr_prefetch {
    Operands (addr: !ptr, rw: !i32, hint: !i32, cache: !i32)
    Summary "prefetch intrinsic"
  }

  Operation intr_stacksave {
    Results (res: !ptr)
    Summary "stacksave intrinsic"
  }

  Operation intr_stackrestore {
    Operands (ptr: !ptr)
    Summary "stackrestore intrinsic"
  }

  Operation intr_vastart {
    Operands (arg_list: !ptr)
    Summary "va_start intrinsic"
  }

  Operation intr_vaend {
    Operands (arg_list: !ptr)
    Summary "va_end intrinsic"
  }

  Operation intr_vacopy {
    Operands (dest_list: !ptr, src_list: !ptr)
    Summary "va_copy intrinsic"
  }

  Operation intr_masked_load {
    Operands (data: !ptr, mask: !fixed_vec, pass_thru: Variadic<!fixed_vec>)
    Results (res: !fixed_vec)
    Attributes (alignment: i32_attr)
    Summary "masked load intrinsic"
  }

  Operation intr_masked_store {
    Operands (value: !fixed_vec, data: !ptr, mask: !fixed_vec)
    Attributes (alignment: i32_attr)
    Summary "masked store intrinsic"
  }

  Operation intr_masked_gather {
    Operands (ptrs: !fixed_vec, mask: !fixed_vec, pass_thru: Variadic<!fixed_vec>)
    Results (res: !fixed_vec)
    Attributes (alignment: i32_attr)
    Summary "masked gather intrinsic"
  }

  Operation intr_masked_scatter {
    Operands (value: !fixed_vec, ptrs: !fixed_vec, mask: !fixed_vec)
    Attributes (alignment: i32_attr)
    Summary "masked scatter intrinsic"
  }

  Operation intr_matrix_multiply {
    Operands (lhs: !fixed_vec, rhs: !fixed_vec)
    Results (res: !fixed_vec)
    Attributes (lhs_rows: i32_attr, lhs_columns: i32_attr,
                rhs_columns: i32_attr)
    Summary "matrix multiply intrinsic"
  }

  Operation intr_matrix_transpose {
    Operands (matrix: !fixed_vec)
    Results (res: !fixed_vec)
    Attributes (rows: i32_attr, columns: i32_attr)
    Summary "matrix transpose intrinsic"
  }

  Operation intr_lifetime_start {
    Operands (size: !i64, ptr: !ptr)
    Summary "lifetime.start intrinsic"
  }

  Operation intr_lifetime_end {
    Operands (size: !i64, ptr: !ptr)
    Summary "lifetime.end intrinsic"
  }

  Operation intr_dbg_value {
    Operands (value: !AnyType)
    Attributes (varInfo: #di_subprogram)
    Summary "dbg.value intrinsic"
  }

  Operation intr_dbg_declare {
    Operands (addr: !ptr)
    Attributes (varInfo: #di_subprogram)
    Summary "dbg.declare intrinsic"
  }

  Operation intr_eh_typeid_for {
    Operands (type_info: !ptr)
    Results (res: !i32)
    Summary "eh.typeid.for intrinsic"
  }
|};
  List.iter
    (fun op ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation intr_%s {
    ConstraintVars (T: AnyOf<!Float, !fixed_vec>)
    Operands (in: !T)
    Results (res: !T)
    Summary "%s intrinsic"
  }
|}
           op op))
    unary_float_intrinsics;
  List.iter
    (fun op ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation intr_%s {
    ConstraintVars (T: AnyOf<!Float, !fixed_vec>)
    Operands (a: !T, b: !T)
    Results (res: !T)
    Summary "%s intrinsic"
  }
|}
           op op))
    binary_float_intrinsics;
  List.iter
    (fun op ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation intr_%s {
    ConstraintVars (T: !Int)
    Operands (in: !T)
    Results (res: !T)
    Summary "%s intrinsic"
  }
|}
           op op))
    bit_intrinsics;
  List.iter
    (fun op ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation intr_%s {
    ConstraintVars (T: !Int)
    Operands (a: !T, b: !T)
    Results (res: NonOpaqueAggregate)
    Summary "%s intrinsic"
  }
|}
           op op))
    overflow_intrinsics;
  List.iter
    (fun op ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation intr_%s {
    ConstraintVars (T: !Int)
    Operands (a: !T, b: !T)
    Results (res: !T)
    Summary "%s intrinsic"
  }
|}
           op op))
    sat_intrinsics;
  List.iter
    (fun op ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation intr_vector_reduce_%s {
    Operands (in: !fixed_vec)
    Results (res: !AnyType)
    Summary "vector.reduce.%s intrinsic"
  }
|}
           op op))
    vector_reductions;
  List.iter
    (fun op ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation intr_coro_%s {
    Operands (args: Variadic<!AnyType>)
    Results (res: Optional<!AnyType>)
    Summary "coro.%s intrinsic"
  }
|}
           op op))
    coro_intrinsics;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
