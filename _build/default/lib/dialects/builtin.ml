(** The [builtin] dialect: MLIR's built-in intermediate representation.

    Carries most of the corpus's type and attribute definitions (Figures
    8–10): the parametric integer/tensor/vector/memref types and the
    standard attribute kinds. The [memref] layout and the [affine_map] and
    [integer_set] attributes wrap native affine-map parameters
    (IRDL-C++ [TypeOrAttrParam]), matching the paper's finding that builtin
    is one of the three dialects whose parameters need IRDL-C++. *)

let name = "builtin"
let description = "MLIR's builtin intermediate representation"

let source =
  {|
Dialect builtin {
  Enum signedness { Signless, Signed, Unsigned }

  // Native parameters (IRDL-C++): affine maps are a C++ class.
  TypeOrAttrParam AffineMapParam {
    Summary "An affine map"
    CppClassName "AffineMap"
    CppParser "parseAffineMap($self)"
    CppPrinter "printAffineMap($self)"
  }

  TypeOrAttrParam IntegerSetParam {
    Summary "An integer set"
    CppClassName "IntegerSet"
    CppParser "parseIntegerSet($self)"
    CppPrinter "printIntegerSet($self)"
  }

  TypeOrAttrParam DenseStorageParam {
    Summary "Raw dense element storage"
    CppClassName "DenseElementsStorage"
    CppParser "parseDenseStorage($self)"
    CppPrinter "printDenseStorage($self)"
  }

  // ---------------- Types ----------------

  Type integer {
    Parameters (width: uint32_t, signed: signedness)
    Summary "Arbitrary-width integer"
    CppConstraint "$_self.width <= (1 << 24)"
  }

  Type float {
    Parameters (kind: float_kind)
    Summary "A floating-point type"
  }
  Enum float_kind { BF16, F16, F32, F64, F80, F128 }

  Type index {
    Summary "A platform-sized index"
  }

  Type none {
    Summary "A unit type"
  }

  Type complex {
    Parameters (elementType: !AnyType)
    Summary "A complex number type"
    CppConstraint "$_self.elementType.isa<FloatType, IntegerType>()"
  }

  Type tensor {
    Parameters (shape: array<int64_t>, elementType: !AnyType)
    Summary "A ranked dense tensor"
    CppConstraint "llvm::all_of($_self.shape, [](int64_t d) { return d >= -1; })"
  }

  Type unranked_tensor {
    Parameters (elementType: !AnyType)
    Summary "A tensor of unknown rank"
  }

  Type vector {
    Parameters (shape: array<int64_t>, elementType: !AnyType)
    Summary "A fixed-length multi-dimensional vector"
    CppConstraint "$_self.shape.size() >= 1"
  }

  Type memref {
    Parameters (shape: array<int64_t>, elementType: !AnyType,
                layout: AffineMapParam, memorySpace: uint32_t)
    Summary "A reference into a memory buffer"
  }

  Type unranked_memref {
    Parameters (elementType: !AnyType, memorySpace: uint32_t)
    Summary "A memref of unknown rank"
  }

  Type tuple {
    Parameters (types: array<!AnyType>)
    Summary "A fixed-size collection of other types"
  }

  Type function {
    Parameters (inputs: array<!AnyType>, results: array<!AnyType>)
    Summary "A function type"
  }

  Type opaque {
    Parameters (dialectNamespace: string, typeData: string)
    Summary "An unparsed type from an unregistered dialect"
  }

  // ---------------- Attributes ----------------

  Attribute unit {
    Summary "A unit attribute"
  }

  Attribute bool_attr {
    Parameters (value: bool)
    Summary "A boolean"
  }

  Attribute integer_attr {
    Parameters (value: int64_t, type: !AnyType)
    Summary "A typed integer constant"
  }

  Attribute float_attr_def {
    Parameters (value: float, type: !AnyType)
    Summary "A typed floating-point constant"
  }

  Attribute string_attr {
    Parameters (value: string)
    Summary "A string"
  }

  Attribute symbol_ref {
    Parameters (rootReference: string, nestedReferences: array<string>)
    Summary "A reference to a symbol"
  }

  Attribute type_attr {
    Parameters (value: !AnyType)
    Summary "A type used as an attribute"
  }

  Attribute array_attr {
    Parameters (value: array<#AnyAttr>)
    Summary "An array of attributes"
  }

  Attribute dictionary_attr {
    Parameters (names: array<string>, values: array<#AnyAttr>)
    Summary "A sorted name/attribute dictionary"
    CppConstraint "llvm::is_sorted($_self.names)"
  }

  Attribute affine_map_attr {
    Parameters (value: AffineMapParam)
    Summary "An affine map"
  }

  Attribute integer_set_attr {
    Parameters (value: IntegerSetParam)
    Summary "An integer set"
  }

  Attribute dense_elements {
    Parameters (type: !AnyType, storage: DenseStorageParam)
    Summary "Densely stored constant elements"
    CppConstraint "$_self.storage.size() == $_self.type.numElements()"
  }

  Attribute sparse_elements {
    Parameters (type: !AnyType, indices: DenseStorageParam,
                values: DenseStorageParam)
    Summary "Sparsely stored constant elements"
    CppConstraint "$_self.indices.getType().getRank() == 2"
  }

  Attribute opaque_attr {
    Parameters (dialectNamespace: string, attrData: string)
    Summary "An unparsed attribute from an unregistered dialect"
  }

  Attribute location_attr {
    Parameters (value: location)
    Summary "A source location"
  }

  Attribute type_id_attr {
    Parameters (value: type_id)
    Summary "A unique identifier for a native type"
  }

  // ---------------- Operations ----------------

  // Integer-inequality constraint requiring IRDL-C++ (Figure 12).
  Constraint ModuleVersion : uint32_t {
    Summary "supported module version"
    CppConstraint "$_self <= 5"
  }

  Operation module {
    Attributes (sym_name: Optional<string>, version: Optional<ModuleVersion>)
    Region body {
      Arguments ()
    }
    Summary "A top-level container operation"
    CppConstraint "$_self.body().hasOneBlock()"
  }

  Operation func {
    Attributes (sym_name: string, function_type: !AnyType)
    Region body {
      Arguments ()
    }
    Summary "A function definition"
    CppConstraint "$_self.body().args() == $_self.function_type().inputs()"
  }

  Operation unrealized_conversion_cast {
    Operands (inputs: Variadic<!AnyType>)
    Results (outputs: Variadic<!AnyType>)
    Summary "A live cast materialized during partial conversion"
  }
}
|}
