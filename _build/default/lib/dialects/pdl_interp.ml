(** The [pdl_interp] dialect: the state machine the PDL bytecode interpreter
    executes. Unusually terminator-heavy — matcher control flow is encoded
    as branches with successors. *)

let name = "pdl_interp"
let description = "The IR for a PDL interpreter"

let source =
  {|
Dialect pdl_interp {
  Alias !Op = !pdl.operation
  Alias !Val = !pdl.value
  Alias !Ty = !pdl.type
  Alias !At = !pdl.attribute
  Alias !Range = !pdl.range

  Constraint OperandIndex : uint32_t {
    Summary "an operand index small enough to inline"
    CppConstraint "$_self < 4096"
  }

  Operation apply_constraint {
    Operands (args: Variadic<!AnyType>)
    Attributes (name: string)
    Successors (trueDest, falseDest)
    Summary "Apply a native constraint and branch on the outcome"
  }

  Operation apply_rewrite {
    Operands (args: Variadic<!AnyType>)
    Results (results: Variadic<!AnyType>)
    Attributes (name: string)
    Summary "Apply a native rewrite"
  }

  Operation are_equal {
    Operands (lhs: !AnyType, rhs: !AnyType)
    Successors (trueDest, falseDest)
    Summary "Branch on equality of two interpreter values"
    CppConstraint "$_self.lhs().getType() == $_self.rhs().getType()"
  }

  Operation branch {
    Successors (dest)
    Summary "Unconditional branch"
  }

  Operation check_attribute {
    Operands (attribute: !At)
    Attributes (constantValue: #AnyAttr)
    Successors (trueDest, falseDest)
    Summary "Branch on an attribute's constant value"
  }

  Operation check_operand_count {
    Operands (inputOp: !Op)
    Attributes (count: i32_attr, compareAtLeast: Optional<bool>)
    Successors (trueDest, falseDest)
    Summary "Branch on an operation's operand count"
  }

  Operation check_operation_name {
    Operands (inputOp: !Op)
    Attributes (name: string)
    Successors (trueDest, falseDest)
    Summary "Branch on an operation's name"
  }

  Operation check_result_count {
    Operands (inputOp: !Op)
    Attributes (count: i32_attr, compareAtLeast: Optional<bool>)
    Successors (trueDest, falseDest)
    Summary "Branch on an operation's result count"
  }

  Operation check_type {
    Operands (value: !Ty)
    Attributes (type: #AnyAttr)
    Successors (trueDest, falseDest)
    Summary "Branch on a type equality"
  }

  Operation check_types {
    Operands (value: !Range)
    Attributes (types: array<#AnyAttr>)
    Successors (trueDest, falseDest)
    Summary "Branch on a range of type equalities"
  }

  Operation continue {
    Successors ()
    Summary "Continue to the next iteration of a foreach"
  }

  Operation create_attribute {
    Results (attribute: !At)
    Attributes (value: #AnyAttr)
    Summary "Materialize an attribute handle"
  }

  Operation create_operation {
    Operands (inputOperands: Variadic<!Val>, inputAttributes: Variadic<!At>,
              inputResultTypes: Variadic<!Ty>)
    Results (resultOp: !Op)
    Attributes (name: string, inputAttributeNames: array<string>)
    Summary "Create an operation"
    CppConstraint "$_self.inputAttributes().size() == $_self.inputAttributeNames().size()"
  }

  Operation create_type {
    Results (result: !Ty)
    Attributes (value: #AnyAttr)
    Summary "Materialize a type handle"
  }

  Operation create_types {
    Results (result: !Range)
    Attributes (value: array<#AnyAttr>)
    Summary "Materialize a range of type handles"
  }

  Operation erase {
    Operands (inputOp: !Op)
    Summary "Erase an operation"
  }

  Operation extract {
    Operands (range: !Range)
    Results (result: !AnyType)
    Attributes (index: OperandIndex)
    Summary "Extract an element from a range"
  }

  Operation finalize {
    Successors ()
    Summary "Finalize a matcher or rewriter sequence"
  }

  Operation foreach {
    Operands (values: !Range)
    Region region {
      Arguments (loopVariable: !AnyType)
      Terminator continue
    }
    Successors (successor)
    Summary "Iterate over a range"
  }

  Operation func {
    Attributes (sym_name: string, function_type: !AnyType)
    Region body {
      Arguments (args: Variadic<!AnyType>)
    }
    Summary "An interpreter function"
  }

  Operation get_attribute {
    Operands (inputOp: !Op)
    Results (attribute: !At)
    Attributes (name: string)
    Summary "Get an attribute from an operation"
  }

  Operation get_attribute_type {
    Operands (value: !At)
    Results (result: !Ty)
    Summary "Get the type of an attribute"
  }

  Operation get_defining_op {
    Operands (value: !Val)
    Results (inputOp: !Op)
    Summary "Get a value's defining operation"
  }

  Operation get_operand {
    Operands (inputOp: !Op)
    Results (value: !Val)
    Attributes (index: OperandIndex)
    Summary "Get one operand"
  }

  Operation get_operands {
    Operands (inputOp: !Op)
    Results (value: !Range)
    Attributes (index: Optional<OperandIndex>)
    Summary "Get an operand group"
  }

  Operation get_result {
    Operands (inputOp: !Op)
    Results (value: !Val)
    Attributes (index: OperandIndex)
    Summary "Get one result"
  }

  Operation get_results {
    Operands (inputOp: !Op)
    Results (value: !Range)
    Attributes (index: Optional<OperandIndex>)
    Summary "Get a result group"
  }

  Operation get_users {
    Operands (value: !Val)
    Results (operations: !Range)
    Summary "Get the users of a value"
  }

  Operation get_value_type {
    Operands (value: !Val)
    Results (result: !Ty)
    Summary "Get the type of a value"
  }

  Operation is_not_null {
    Operands (value: !AnyType)
    Successors (trueDest, falseDest)
    Summary "Branch on non-nullness"
  }

  Operation record_match {
    Operands (inputs: Variadic<!AnyType>, matchedOps: Variadic<!Op>)
    Attributes (rewriter: symbol, rootKind: Optional<string>,
                generatedOps: Optional<array<string>>, benefit: i16_attr)
    Successors (dest)
    Summary "Record a successful match"
  }

  Operation replace {
    Operands (inputOp: !Op, replValues: Variadic<!Val>)
    Summary "Replace an operation's results"
  }

  Operation switch_attribute {
    Operands (attribute: !At)
    Attributes (caseValues: array<#AnyAttr>)
    Successors (defaultDest, cases)
    Summary "Multi-way branch on an attribute"
    CppConstraint "$_self.caseValues().size() == $_self.cases().size()"
  }

  Operation switch_operand_count {
    Operands (inputOp: !Op)
    Attributes (caseValues: array<int32_t>)
    Successors (defaultDest, cases)
    Summary "Multi-way branch on operand count"
    CppConstraint "$_self.caseValues().size() == $_self.cases().size()"
  }

  Operation switch_operation_name {
    Operands (inputOp: !Op)
    Attributes (caseValues: array<string>)
    Successors (defaultDest, cases)
    Summary "Multi-way branch on operation name"
    CppConstraint "$_self.caseValues().size() == $_self.cases().size()"
  }

  Operation switch_result_count {
    Operands (inputOp: !Op)
    Attributes (caseValues: array<int32_t>)
    Successors (defaultDest, cases)
    Summary "Multi-way branch on result count"
    CppConstraint "$_self.caseValues().size() == $_self.cases().size()"
  }

  Operation switch_type {
    Operands (value: !Ty)
    Attributes (caseValues: array<#AnyAttr>)
    Successors (defaultDest, cases)
    Summary "Multi-way branch on a type"
  }
}
|}
