(** The [linalg] dialect: high-level linear algebra operations on tensor or
    buffer operands. [generic] is the corpus's showcase of multiple variadic
    operand groups (requiring [operandSegmentSizes], §4.6). *)

let name = "linalg"
let description = "High-level linear algebra operations"

let source =
  {|
Dialect linalg {
  Alias !AnyTensor = !builtin.tensor
  Alias !AnyMemRef = !builtin.memref
  Alias !AnyShaped = AnyOf<!AnyTensor, !AnyMemRef>

  Type range {
    Parameters ()
    Summary "A (min, max, step) triple"
  }

  Operation generic {
    Operands (inputs: Variadic<!AnyShaped>, outputs: Variadic<!AnyShaped>)
    Results (result_tensors: Variadic<!AnyTensor>)
    Attributes (indexing_maps: array<#AnyAttr>, iterator_types: array<string>)
    Region body {
      Arguments (args: Variadic<!AnyType>)
      Terminator yield
    }
    Summary "A generic structured linear-algebra operation"
    CppConstraint "$_self.indexing_maps().size() == $_self.inputs().size() + $_self.outputs().size()"
  }

  Operation yield {
    Operands (values: Variadic<!AnyType>)
    Successors ()
    Summary "Terminates a linalg body region"
    CppConstraint "$_self.values().getTypes() == $_self.parent().outputElementTypes()"
  }

  Operation index {
    Results (result: !index)
    Attributes (dim: i64_attr)
    Summary "The index of an iteration dimension"
    CppConstraint "$_self.dim() < $_self.parent().getNumLoops()"
  }

  Operation init_tensor {
    Operands (sizes: Variadic<!index>)
    Results (result: !AnyTensor)
    Attributes (static_sizes: array<int64_t>)
    Summary "Materialize an undefined tensor of the given shape"
    CppConstraint "$_self.static_sizes().size() == $_self.result().getType().getRank()"
  }

  Operation fill {
    Operands (value: !AnyType, output: !AnyShaped)
    Results (result: Variadic<!AnyTensor>)
    Summary "Fill an output with a scalar"
    CppConstraint "$_self.value().getType() == $_self.output().getType().getElementType()"
  }

  Operation copy {
    Operands (input: !AnyShaped, output: !AnyShaped)
    Summary "Copy between shaped values"
    CppConstraint "$_self.input().getType().getShape() == $_self.output().getType().getShape()"
  }

  Operation dot {
    Operands (lhs: !AnyShaped, rhs: !AnyShaped, out: !AnyShaped)
    Results (result: Variadic<!AnyTensor>)
    Summary "Vector-vector dot product"
  }

  Operation matvec {
    Operands (lhs: !AnyShaped, rhs: !AnyShaped, out: !AnyShaped)
    Results (result: Variadic<!AnyTensor>)
    Summary "Matrix-vector product"
  }

  Operation matmul {
    Operands (lhs: !AnyShaped, rhs: !AnyShaped, out: !AnyShaped)
    Results (result: Variadic<!AnyTensor>)
    Summary "Matrix-matrix product"
    CppConstraint "$_self.lhs().getType().getDimSize(1) == $_self.rhs().getType().getDimSize(0)"
  }
}
|}
