(** The [complex] dialect: arithmetic on complex numbers. A pure "classical
    SSA" dialect: no variadics, regions, attributes or successors —
    everything is expressible in plain IRDL (Figure 11). *)

let name = "complex"
let description = "Complex arithmetic"

let source =
  {|
Dialect complex {
  Alias !AnyFloat = !AnyOf<!bf16, !f16, !f32, !f64>
  Alias !Complex = !builtin.complex

  Operation abs {
    ConstraintVars (T: !AnyFloat)
    Operands (complex: !builtin.complex<!T>)
    Results (result: !T)
    Summary "Absolute value (modulus)"
  }

  Operation add {
    ConstraintVars (T: !Complex)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Complex addition"
  }

  Operation sub {
    ConstraintVars (T: !Complex)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Complex subtraction"
  }

  Operation mul {
    ConstraintVars (T: !Complex)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Complex multiplication"
  }

  Operation div {
    ConstraintVars (T: !Complex)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Complex division"
  }

  Operation neg {
    ConstraintVars (T: !Complex)
    Operands (complex: !T)
    Results (result: !T)
    Summary "Complex negation"
  }

  Operation create {
    ConstraintVars (T: !AnyFloat)
    Operands (real: !T, imaginary: !T)
    Results (complex: !builtin.complex<!T>)
    Summary "Build a complex number from real and imaginary parts"
  }

  Operation re {
    ConstraintVars (T: !AnyFloat)
    Operands (complex: !builtin.complex<!T>)
    Results (result: !T)
    Summary "Real part"
  }

  Operation im {
    ConstraintVars (T: !AnyFloat)
    Operands (complex: !builtin.complex<!T>)
    Results (result: !T)
    Summary "Imaginary part"
  }

  Operation exp {
    ConstraintVars (T: !Complex)
    Operands (complex: !T)
    Results (result: !T)
    Summary "Complex exponential"
  }

  Operation expm1 {
    ConstraintVars (T: !Complex)
    Operands (complex: !T)
    Results (result: !T)
    Summary "exp(x) - 1"
  }

  Operation log {
    ConstraintVars (T: !Complex)
    Operands (complex: !T)
    Results (result: !T)
    Summary "Complex natural logarithm"
  }

  Operation log1p {
    ConstraintVars (T: !Complex)
    Operands (complex: !T)
    Results (result: !T)
    Summary "log(1 + x)"
  }

  Operation pow {
    ConstraintVars (T: !Complex)
    Operands (lhs: !T, rhs: !T)
    Results (result: !T)
    Summary "Complex power"
  }

  Operation sqrt {
    ConstraintVars (T: !Complex)
    Operands (complex: !T)
    Results (result: !T)
    Summary "Complex square root"
  }

  Operation sign {
    ConstraintVars (T: !Complex)
    Operands (complex: !T)
    Results (result: !T)
    Summary "Complex sign"
  }

  Operation sin {
    ConstraintVars (T: !Complex)
    Operands (complex: !T)
    Results (result: !T)
    Summary "Complex sine"
  }

  Operation cos {
    ConstraintVars (T: !Complex)
    Operands (complex: !T)
    Results (result: !T)
    Summary "Complex cosine"
  }

  Operation tanh {
    ConstraintVars (T: !Complex)
    Operands (complex: !T)
    Results (result: !T)
    Summary "Complex hyperbolic tangent"
  }

  Operation constant {
    Results (complex: !Complex)
    Attributes (value: array<#AnyAttr>)
    Summary "A complex constant"
  }
}
|}
