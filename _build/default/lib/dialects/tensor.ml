(** The [tensor] dialect: dense tensor computations. *)

let name = "tensor"
let description = "Dense tensor computations"

let source =
  {|
Dialect tensor {
  Alias !AnyTensor = !builtin.tensor
  Alias !AnyUnrankedTensor = !builtin.unranked_tensor
  Alias !TensorLike = AnyOf<!AnyTensor, !AnyUnrankedTensor>

  Operation cast {
    Operands (source: !TensorLike)
    Results (dest: !TensorLike)
    Summary "Cast between compatible tensor types"
    CppConstraint "areCastCompatible($_self.source().getType(), $_self.dest().getType())"
  }

  Operation dim {
    Operands (source: !TensorLike, index: !index)
    Results (result: !index)
    Summary "The size of one dimension"
  }

  Operation extract {
    Operands (tensor: !AnyTensor, indices: Variadic<!index>)
    Results (result: !AnyType)
    Summary "Extract one element"
    CppConstraint "$_self.indices().size() == $_self.tensor().getType().getRank()"
  }

  Operation insert {
    Operands (scalar: !AnyType, dest: !AnyTensor, indices: Variadic<!index>)
    Results (result: !AnyTensor)
    Summary "Insert one element"
    CppConstraint "$_self.scalar().getType() == $_self.dest().getType().getElementType()"
  }

  Operation extract_slice {
    Operands (source: !AnyTensor, offsets: Variadic<!index>,
              sizes: Variadic<!index>, strides: Variadic<!index>)
    Results (result: !AnyTensor)
    Attributes (static_offsets: array<int64_t>, static_sizes: array<int64_t>,
                static_strides: array<int64_t>)
    Summary "Extract a sub-tensor"
    CppConstraint "$_self.static_offsets().size() == $_self.source().getType().getRank()"
  }

  Operation insert_slice {
    Operands (source: !AnyTensor, dest: !AnyTensor, offsets: Variadic<!index>,
              sizes: Variadic<!index>, strides: Variadic<!index>)
    Results (result: !AnyTensor)
    Attributes (static_offsets: array<int64_t>, static_sizes: array<int64_t>,
                static_strides: array<int64_t>)
    Summary "Insert a sub-tensor"
  }

  Operation from_elements {
    Operands (elements: Variadic<!AnyType>)
    Results (result: !AnyTensor)
    Summary "Build a tensor from scalars"
    CppConstraint "$_self.elements().size() == $_self.result().getType().getNumElements()"
  }

  Operation generate {
    Operands (dynamicExtents: Variadic<!index>)
    Results (result: !AnyTensor)
    Region body {
      Arguments (indices: Variadic<!index>)
      Terminator yield
    }
    Summary "Build a tensor from a computation per element"
  }

  Operation yield {
    Operands (value: !AnyType)
    Successors ()
    Summary "Terminates tensor regions"
    CppConstraint "$_self.value().getType() == $_self.parent().getElementType()"
  }

  Operation rank {
    Operands (tensor: !TensorLike)
    Results (result: !index)
    Summary "The rank of a tensor"
  }

  Operation reshape {
    Operands (source: !AnyTensor, shape: !AnyTensor)
    Results (result: !AnyTensor)
    Summary "Reshape to the given shape tensor"
    CppConstraint "$_self.source().getType().getNumElements() == $_self.result().getType().getNumElements()"
  }

  Operation collapse_shape {
    Operands (src: !AnyTensor)
    Results (result: !AnyTensor)
    Attributes (reassociation: array<#AnyAttr>)
    Summary "Collapse contiguous dimension groups"
    CppConstraint "$_self.reassociation().size() == $_self.result().getType().getRank()"
  }

  Operation expand_shape {
    Operands (src: !AnyTensor)
    Results (result: !AnyTensor)
    Attributes (reassociation: array<#AnyAttr>)
    Summary "Expand dimensions into contiguous groups"
    CppConstraint "$_self.reassociation().size() == $_self.src().getType().getRank()"
  }
}
|}
