(** The [sparse_tensor] dialect: sparse tensor computations.

    Its [encoding] attribute wraps a native affine-map parameter (the
    dimension ordering), making it one of the three dialects whose
    parameters require IRDL-C++ (paper §6.3). *)

let name = "sparse_tensor"
let description = "Sparse tensor computations"

let source =
  {|
Dialect sparse_tensor {
  Alias !AnyTensor = !builtin.tensor
  Alias !AnyMemRef = !builtin.memref

  Enum dim_level_type { Dense, Compressed, Singleton }

  TypeOrAttrParam DimOrderingParam {
    Summary "Dimension ordering as an affine map"
    CppClassName "AffineMap"
    CppParser "parseAffineMap($self)"
    CppPrinter "printAffineMap($self)"
  }

  Attribute encoding {
    Parameters (dimLevelType: array<dim_level_type>,
                dimOrdering: DimOrderingParam,
                pointerBitWidth: uint32_t,
                indexBitWidth: uint32_t)
    Summary "Sparse tensor storage encoding"
    CppConstraint "isPowerOf2($_self.pointerBitWidth) && isPowerOf2($_self.indexBitWidth)"
  }

  // Stride checks on buffers need IRDL-C++ (Figure 12).
  Constraint StridedBuffer : !builtin.memref {
    Summary "A memref with a strided layout"
    CppConstraint "isStrided($_self)"
  }

  Operation new {
    Operands (source: !AnyType)
    Results (result: !AnyTensor)
    Summary "Materialize a sparse tensor from an external source"
    CppConstraint "getSparseTensorEncoding($_self.result().getType()) != nullptr"
  }

  Operation init {
    Operands (sizes: Variadic<!index>)
    Results (result: !AnyTensor)
    Summary "Materialize an uninitialized sparse tensor"
    CppConstraint "$_self.sizes().size() == $_self.result().getType().getRank()"
  }

  Operation convert {
    Operands (source: !AnyTensor)
    Results (dest: !AnyTensor)
    Summary "Convert between sparse encodings"
    CppConstraint "$_self.source().getType().getShape() == $_self.dest().getType().getShape()"
  }

  Operation to_pointers {
    Operands (tensor: !AnyTensor, dim: !index)
    Results (result: StridedBuffer)
    Summary "Extract the pointers array at the given dimension"
  }

  Operation to_indices {
    Operands (tensor: !AnyTensor, dim: !index)
    Results (result: StridedBuffer)
    Summary "Extract the indices array at the given dimension"
  }

  Operation to_values {
    Operands (tensor: !AnyTensor)
    Results (result: !AnyMemRef)
    Summary "Extract the values array"
    CppConstraint "$_self.result().getType().getRank() == 1"
  }

  Operation load {
    Operands (tensor: !AnyTensor)
    Results (result: !AnyTensor)
    Summary "Rematerialize a tensor from its inserted values"
  }

  Operation release {
    Operands (tensor: !AnyTensor)
    Summary "Release the underlying sparse storage"
    CppConstraint "getSparseTensorEncoding($_self.tensor().getType()) != nullptr"
  }
}
|}
