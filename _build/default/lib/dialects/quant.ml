(** The [quant] dialect: quantization types and conversion operations. *)

let name = "quant"
let description = "Quantization"

let source =
  {|
Dialect quant {
  Alias !AnyFloat = !AnyOf<!bf16, !f16, !f32, !f64>
  Alias !QuantizedOrTensor = AnyOf<!AnyType, !builtin.tensor>

  Constraint StorageBitWidth : uint32_t {
    Summary "a storage width between 1 and 32 bits"
    CppConstraint "$_self >= 1 && $_self <= 32"
  }

  Type any_quantized {
    Parameters (storageWidth: StorageBitWidth, expressedType: !AnyFloat)
    Summary "A quantized type with unspecified mapping"
  }

  Type uniform_quantized {
    Parameters (storageWidth: StorageBitWidth, expressedType: !AnyFloat,
                scale: float, zeroPoint: int64_t)
    Summary "A uniformly quantized type"
  }

  Type uniform_quantized_per_axis {
    Parameters (storageWidth: StorageBitWidth, expressedType: !AnyFloat,
                scales: array<float>, zeroPoints: array<int64_t>,
                quantizedDimension: int32_t)
    Summary "A per-axis uniformly quantized type"
    CppConstraint "$_self.scales.size() == $_self.zeroPoints.size()"
  }

  Type calibrated {
    Parameters (expressedType: !AnyFloat, min: float, max: float)
    Summary "A calibrated type carrying min/max bounds"
  }

  Operation qcast {
    Operands (arg: !QuantizedOrTensor)
    Results (res: !QuantizedOrTensor)
    Summary "Cast an expressed value to its quantized form"
    CppConstraint "isCompatibleExpressedType($_self.arg().getType(), $_self.res().getType())"
  }

  Operation dcast {
    Operands (arg: !QuantizedOrTensor)
    Results (res: !QuantizedOrTensor)
    Summary "Cast a quantized value back to its expressed form"
    CppConstraint "isCompatibleExpressedType($_self.res().getType(), $_self.arg().getType())"
  }

  Operation scast {
    Operands (arg: !QuantizedOrTensor)
    Results (res: !QuantizedOrTensor)
    Summary "Cast between a quantized type and its storage type"
  }

  Operation const_fake_quant {
    Operands (inputs: !builtin.tensor)
    Results (outputs: !builtin.tensor)
    Attributes (min: #f32_attr, max: #f32_attr, num_bits: i64_attr,
                narrow_range: Optional<bool>, is_signed: Optional<bool>)
    Summary "Simulate quantization with constant ranges"
  }

  Operation const_fake_quant_per_axis {
    Operands (inputs: !builtin.tensor)
    Results (outputs: !builtin.tensor)
    Attributes (min: array<float>, max: array<float>, axis: i64_attr,
                num_bits: i64_attr)
    Summary "Per-axis fake quantization"
    CppConstraint "$_self.min().size() == $_self.max().size()"
  }

  Operation coupled_ref {
    Operands (arg: !AnyType)
    Results (res: !AnyType)
    Attributes (coupledKey: string)
    Summary "Identify values that must share quantization parameters"
  }

  Operation region {
    Operands (inputs: Variadic<!AnyType>)
    Results (outputs: Variadic<!AnyType>)
    Attributes (input_specs: array<#AnyAttr>, output_specs: array<#AnyAttr>,
                logical_kernel: string)
    Region body {
      Arguments (args: Variadic<!AnyType>)
      Terminator return
    }
    Summary "A quantization-aware kernel region"
  }

  Operation return {
    Operands (results: Variadic<!AnyType>)
    Successors ()
    Summary "Terminates a quant.region"
  }

  Operation stats {
    Operands (arg: !builtin.tensor)
    Results (res: !builtin.tensor)
    Attributes (layerStats: #AnyAttr, axisStats: Optional<#AnyAttr>,
                axis: Optional<i64_attr>)
    Summary "Recorded calibration statistics"
    CppConstraint "$_self.layerStats().getType().getNumElements() == 2"
  }

  Operation stats_ref {
    Operands (arg: !AnyType)
    Results (res: !AnyType)
    Attributes (statsKey: string)
    Summary "Reference statistics recorded elsewhere"
  }
}
|}
