(** The [rocdl] dialect: AMD's IR for GPU compute kernels. Dominated by
    MFMA (matrix fused multiply-add) intrinsic variants. *)

let name = "rocdl"
let description = "AMD's IR for GPU compute kernels"

let mfma_variants =
  [
    "f32_32x32x1f32"; "f32_16x16x1f32"; "f32_4x4x1f32"; "f32_32x32x2f32";
    "f32_16x16x4f32"; "f32_32x32x4f16"; "f32_16x16x4f16"; "f32_4x4x4f16";
    "f32_32x32x8f16"; "f32_16x16x16f16"; "i32_32x32x4i8"; "i32_16x16x4i8";
    "i32_4x4x4i8"; "i32_32x32x8i8"; "i32_16x16x16i8"; "f32_32x32x2bf16";
    "f32_16x16x2bf16"; "f32_4x4x2bf16"; "f32_32x32x4bf16"; "f32_16x16x8bf16";
  ]

let source =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    {|
Dialect rocdl {
  Alias !Vec = !builtin.vector

  Operation workitem_id_x {
    Results (res: !i32)
    Summary "Work-item id, x dimension"
  }

  Operation workitem_id_y {
    Results (res: !i32)
    Summary "Work-item id, y dimension"
  }

  Operation workitem_id_z {
    Results (res: !i32)
    Summary "Work-item id, z dimension"
  }

  Operation workgroup_id_x {
    Results (res: !i32)
    Summary "Workgroup id, x dimension"
  }

  Operation workgroup_id_y {
    Results (res: !i32)
    Summary "Workgroup id, y dimension"
  }

  Operation workgroup_id_z {
    Results (res: !i32)
    Summary "Workgroup id, z dimension"
  }

  Operation workgroup_dim_x {
    Results (res: !i32)
    Summary "Workgroup size, x dimension"
  }

  Operation workgroup_dim_y {
    Results (res: !i32)
    Summary "Workgroup size, y dimension"
  }

  Operation workgroup_dim_z {
    Results (res: !i32)
    Summary "Workgroup size, z dimension"
  }

  Operation grid_dim_x {
    Results (res: !i32)
    Summary "Grid size, x dimension"
  }

  Operation grid_dim_y {
    Results (res: !i32)
    Summary "Grid size, y dimension"
  }

  Operation grid_dim_z {
    Results (res: !i32)
    Summary "Grid size, z dimension"
  }

  Operation barrier {
    Summary "Workgroup barrier"
  }

  Operation mubuf_load {
    Operands (rsrc: !Vec, vindex: !i32, offset: !i32, glc: !i1, slc: !i1)
    Results (res: !AnyType)
    Summary "Raw buffer load intrinsic"
  }

  Operation mubuf_store {
    Operands (vdata: !AnyType, rsrc: !Vec, vindex: !i32, offset: !i32,
              glc: !i1, slc: !i1)
    Summary "Raw buffer store intrinsic"
  }

  Operation buffer_load {
    Operands (rsrc: !Vec, vindex: !i32, voffset: !i32, soffset: !i32,
              aux: !i32)
    Results (res: !AnyType)
    Summary "Structured buffer load intrinsic"
  }

  Operation buffer_store {
    Operands (vdata: !AnyType, rsrc: !Vec, vindex: !i32, voffset: !i32,
              soffset: !i32, aux: !i32)
    Summary "Structured buffer store intrinsic"
  }
|};
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf
           {|
  Operation mfma_%s {
    Operands (a: !AnyType, b: !AnyType, c: !Vec, cbsz: !i32, abid: !i32, blgp: !i32)
    Results (res: !Vec)
    Summary "MFMA intrinsic variant %s"
  }
|}
           v v))
    mfma_variants;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
