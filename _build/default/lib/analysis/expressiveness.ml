(** Expressiveness analysis: which definitions are pure IRDL and which need
    the IRDL-C++ escape hatch (paper §6.3/§6.4, Figures 9–12). *)

module C = Irdl_core.Constraint_expr
module R = Irdl_core.Resolve

(** Does a constraint (transitively) rely on native code — a [Constraint]
    with [CppConstraint] snippets or a native [TypeOrAttrParam]? *)
let rec needs_native (c : C.t) : bool =
  match c with
  | C.Native _ | C.Native_param _ -> true
  | C.Any_of cs | C.And cs | C.Array_exact cs -> List.exists needs_native cs
  | C.Not c | C.Array_of c | C.Variadic c | C.Optional c -> needs_native c
  | C.Base_type { params = Some ps; _ } | C.Base_attr { params = Some ps; _ }
    ->
      List.exists needs_native ps
  | C.Var v -> needs_native v.C.v_constraint
  | _ -> false

(** The native snippets referenced by a constraint, with their defining
    [Constraint] names. *)
let rec native_snippets (c : C.t) : (string * string) list =
  match c with
  | C.Native { name; base; snippets } ->
      List.map (fun s -> (name, s)) snippets @ native_snippets base
  | C.Native_param _ -> []
  | C.Any_of cs | C.And cs | C.Array_exact cs ->
      List.concat_map native_snippets cs
  | C.Not c | C.Array_of c | C.Variadic c | C.Optional c -> native_snippets c
  | C.Base_type { params = Some ps; _ } | C.Base_attr { params = Some ps; _ }
    ->
      List.concat_map native_snippets ps
  | C.Var v -> native_snippets v.C.v_constraint
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Figure 12: the categories of native local constraints               *)
(* ------------------------------------------------------------------ *)

type native_category =
  | Struct_opacity
  | Stride_check
  | Integer_inequality
  | Other_native

let category_to_string = function
  | Struct_opacity -> "struct opacity"
  | Stride_check -> "stride check"
  | Integer_inequality -> "integer inequality"
  | Other_native -> "other"

(** Classify a native snippet the way the paper's authors classified the
    residual C++ constraints manually (Figure 12): opacity tests, stride
    checks, and integer range comparisons. *)
let classify_snippet (snippet : string) : native_category =
  let has needle = Param_stats.contains_ci snippet needle in
  if has "opaque" then Struct_opacity
  else if has "strided" || has "stride" then Stride_check
  else if
    has "<=" || has ">=" || has "< " || has "> " || has "$_self <"
    || has "$_self >" || has "ispowerof2"
  then Integer_inequality
  else Other_native

(* ------------------------------------------------------------------ *)
(* Per-dialect splits (Figures 9–11)                                   *)
(* ------------------------------------------------------------------ *)

type split = { irdl : int; native : int }

let split_total s = s.irdl + s.native

let add_to split native = if native then { split with native = split.native + 1 }
  else { split with irdl = split.irdl + 1 }

let empty = { irdl = 0; native = 0 }

(* A definition counts as needing IRDL-C++ only when it uses a native
   [TypeOrAttrParam] (paper: "exclusively use parameters defined in IRDL");
   a [Constraint] refined with [CppConstraint] is a verifier concern. *)
let typedef_def_needs_native (td : R.typedef) =
  List.exists
    (fun (s : R.slot) -> Param_stats.needs_native_param s.s_constraint)
    td.td_params

(** Figure 9a/10a: type (or attribute) definitions whose parameters are
    expressible in IRDL vs needing IRDL-C++. *)
let def_split (defs : R.typedef list) : split =
  List.fold_left (fun acc td -> add_to acc (typedef_def_needs_native td)) empty
    defs

(** Figure 9b/10b: type (or attribute) verifiers in IRDL vs with an
    additional C++ verifier. *)
let verifier_split (defs : R.typedef list) : split =
  List.fold_left (fun acc (td : R.typedef) -> add_to acc (td.td_cpp <> []))
    empty defs

let op_slots (op : R.op) : R.slot list =
  op.op_operands @ op.op_results @ op.op_attributes
  @ List.concat_map (fun (r : R.region) -> r.reg_args) op.op_regions

(** Figure 11a: can the op define all of its local (per-operand/result/attr)
    constraints in IRDL? *)
let op_local_needs_native (op : R.op) =
  List.exists (fun (s : R.slot) -> needs_native s.s_constraint) (op_slots op)
  || List.exists (fun (v : C.var) -> needs_native v.C.v_constraint) op.op_vars

(** Figure 11b: does the op need a C++ verifier for non-local constraints? *)
let op_verifier_needs_native (op : R.op) = op.op_cpp <> []

let op_local_split (ops : R.op list) : split =
  List.fold_left (fun acc op -> add_to acc (op_local_needs_native op)) empty
    ops

let op_verifier_split (ops : R.op list) : split =
  List.fold_left (fun acc op -> add_to acc (op_verifier_needs_native op))
    empty ops

(** Figure 12: operations per native-constraint category. An op counts once
    per category it uses. *)
let native_categories_of_op (op : R.op) : native_category list =
  let snippets =
    List.concat_map
      (fun (s : R.slot) -> native_snippets s.s_constraint)
      (op_slots op)
    @ List.concat_map
        (fun (v : C.var) -> native_snippets v.C.v_constraint)
        op.op_vars
  in
  List.sort_uniq compare (List.map (fun (_, s) -> classify_snippet s) snippets)

let category_histogram (dls : R.dialect list) : (native_category * int) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (dl : R.dialect) ->
      List.iter
        (fun op ->
          List.iter
            (fun cat ->
              Hashtbl.replace tbl cat
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl cat)))
            (native_categories_of_op op))
        dl.dl_ops)
    dls;
  List.filter_map
    (fun cat ->
      match Hashtbl.find_opt tbl cat with
      | Some n when n > 0 -> Some (cat, n)
      | _ -> None)
    [ Struct_opacity; Stride_check; Integer_inequality; Other_native ]
