(** Markdown documentation generation from IRDL definitions — one of the
    tooling directions the paper's §3 motivates ("well-defined and
    well-documented interface"). Everything is derived from the resolved
    dialect; no dialect-specific code. *)

module R = Irdl_core.Resolve
module C = Irdl_core.Constraint_expr

let pp_slot ppf (s : R.slot) =
  Fmt.pf ppf "`%s`: `%a`" s.s_name C.pp s.s_constraint

let pp_slots ppf = function
  | [] -> Fmt.string ppf "none"
  | slots -> Fmt.(list ~sep:(any ", ") pp_slot) ppf slots

let summary_line = function
  | Some s -> s
  | None -> "*(undocumented)*"

let pp_typedef ~what ppf (td : R.typedef) =
  Fmt.pf ppf "### %s `%s`@.@.%s@.@." what td.td_name
    (summary_line td.td_summary);
  Fmt.pf ppf "- parameters: %a@." pp_slots td.td_params;
  if td.td_cpp <> [] then
    Fmt.pf ppf "- native verifier: %s@."
      (String.concat "; " (List.map (Printf.sprintf "`%s`") td.td_cpp));
  Fmt.pf ppf "@."

let pp_op ppf (op : R.op) =
  Fmt.pf ppf "### operation `%s`@.@.%s@.@." op.op_name
    (summary_line op.op_summary);
  if op.op_vars <> [] then
    Fmt.pf ppf "- constraint variables: %s@."
      (String.concat ", "
         (List.map
            (fun (v : C.var) ->
              Fmt.str "`%s`: `%a`" v.C.v_name C.pp v.C.v_constraint)
            op.op_vars));
  Fmt.pf ppf "- operands: %a@." pp_slots op.op_operands;
  Fmt.pf ppf "- results: %a@." pp_slots op.op_results;
  if op.op_attributes <> [] then
    Fmt.pf ppf "- attributes: %a@." pp_slots op.op_attributes;
  List.iter
    (fun (r : R.region) ->
      Fmt.pf ppf "- region `%s`: arguments %a%s@." r.reg_name pp_slots
        r.reg_args
        (match r.reg_terminator with
        | Some t -> Printf.sprintf ", terminated by `%s`" t
        | None -> ""))
    op.op_regions;
  (match op.op_successors with
  | None -> ()
  | Some [] -> Fmt.pf ppf "- terminator (no successors)@."
  | Some succs ->
      Fmt.pf ppf "- terminator with successors: %s@."
        (String.concat ", " succs));
  (match op.op_format with
  | Some f -> Fmt.pf ppf "- custom syntax: `%s`@." f
  | None -> ());
  if op.op_cpp <> [] then
    Fmt.pf ppf "- native verifier: %s@."
      (String.concat "; " (List.map (Printf.sprintf "`%s`") op.op_cpp));
  Fmt.pf ppf "@."

(** Render a whole dialect as a markdown document. *)
let pp_dialect ppf (dl : R.dialect) =
  Fmt.pf ppf "# Dialect `%s`@.@." dl.dl_name;
  Fmt.pf ppf
    "%d operations, %d types, %d attributes, %d enums.@.@."
    (List.length dl.dl_ops) (List.length dl.dl_types)
    (List.length dl.dl_attrs)
    (List.length dl.dl_enums);
  List.iter
    (fun (e : Irdl_core.Ast.enum_def) ->
      Fmt.pf ppf "### enum `%s`@.@.Constructors: %s@.@." e.e_name
        (String.concat ", " e.e_cases))
    dl.dl_enums;
  List.iter (pp_typedef ~what:"type" ppf) dl.dl_types;
  List.iter (pp_typedef ~what:"attribute" ppf) dl.dl_attrs;
  List.iter (pp_op ppf) dl.dl_ops

let dialect_to_string dl = Fmt.str "%a" pp_dialect dl
