(** Operation-count evolution (paper §6.1, Figure 3).

    Reconstructs the monthly total operation count from the per-dialect
    checkpoints recorded in {!Irdl_dialects.Corpus} (the stand-in for the
    MLIR git history — see DESIGN.md) with linear interpolation between
    checkpoints, anchored at the measured final corpus size. *)

(** Months as indices: "2020-04" = 0 ... "2022-01" = 21. *)
let month_index s =
  match String.split_on_char '-' s with
  | [ y; m ] -> ((int_of_string y - 2020) * 12) + int_of_string m - 4
  | _ -> invalid_arg ("Evolution.month_index: " ^ s)

let index_month i =
  let y = 2020 + ((i + 3) / 12) in
  let m = ((i + 3) mod 12) + 1 in
  Printf.sprintf "%04d-%02d" y m

let first_month = month_index "2020-04"
let last_month = month_index "2022-01"

(** Value of one dialect's op count at month [m], given its checkpoints and
    its measured final count (anchored at [last_month]). *)
let dialect_count_at ~(checkpoints : (string * int) list) ~(final : int) m =
  let points =
    List.map (fun (mo, v) -> (month_index mo, v)) checkpoints
    @ [ (last_month, final) ]
  in
  let points = List.sort compare points in
  match points with
  | [] -> 0
  | (first, _) :: _ ->
      if m < first then 0
      else
        let rec interp = function
          | [ (_, v) ] -> v
          | (m0, v0) :: ((m1, v1) :: _ as rest) ->
              if m < m0 then v0
              else if m <= m1 then
                if m1 = m0 then v1
                else
                  v0
                  + (v1 - v0) * (m - m0) / (m1 - m0)
              else interp rest
          | [] -> 0
        in
        interp points

type point = { month : string; total_ops : int; num_dialects : int }

(** The full Figure-3 series: total ops per month, plus how many dialects
    exist in that month. [finals] maps dialect name to its measured op
    count. *)
let series ~(finals : (string * int) list) : point list =
  List.init
    (last_month - first_month + 1)
    (fun i ->
      let m = first_month + i in
      let total_ops, num_dialects =
        List.fold_left
          (fun (tot, nd) (e : Irdl_dialects.Corpus.entry) ->
            let final =
              Option.value ~default:0 (List.assoc_opt e.name finals)
            in
            let v =
              dialect_count_at ~checkpoints:e.history ~final m
            in
            (tot + v, if v > 0 then nd + 1 else nd))
          (0, 0) Irdl_dialects.Corpus.all
      in
      { month = index_month m; total_ops; num_dialects })

let growth_factor (points : point list) =
  match (points, List.rev points) with
  | first :: _, last :: _ when first.total_ops > 0 ->
      float_of_int last.total_ops /. float_of_int first.total_ops
  | _ -> nan
