(** Classification of type and attribute parameters (paper §6.3, Figure 8). *)

module C = Irdl_core.Constraint_expr
module R = Irdl_core.Resolve

type kind =
  | K_attr_type  (** types or attributes as parameters *)
  | K_integer
  | K_enum
  | K_float
  | K_string
  | K_location
  | K_type_id
  | K_affine  (** domain-specific: affine maps / integer sets *)
  | K_llvm  (** domain-specific: LLVM-specific native classes *)
  | K_other

let kind_to_string = function
  | K_attr_type -> "attr/type"
  | K_integer -> "integer"
  | K_enum -> "enum"
  | K_float -> "float"
  | K_string -> "string"
  | K_location -> "location"
  | K_type_id -> "type id"
  | K_affine -> "affine"
  | K_llvm -> "llvm"
  | K_other -> "other"

let all_kinds =
  [ K_attr_type; K_integer; K_enum; K_float; K_string; K_location; K_type_id;
    K_affine; K_llvm; K_other ]

let contains_ci haystack needle =
  let h = String.lowercase_ascii haystack
  and n = String.lowercase_ascii needle in
  let hl = String.length h and nl = String.length n in
  let rec go i = i + nl <= hl && (String.sub h i nl = n || go (i + 1)) in
  nl = 0 || go 0

(** Classify a native parameter by its wrapped C++ class (the paper's
    "domain-specific parameters" of Figure 8, found only in affine-map-like
    and LLVM-specific classes). *)
let kind_of_native_class class_name =
  if contains_ci class_name "affine" || contains_ci class_name "integerset"
  then K_affine
  else if contains_ci class_name "llvm" || contains_ci class_name "struct"
          || contains_ci class_name "di" then K_llvm
  else K_other

let rec kind_of (c : C.t) : kind =
  match c with
  | C.Any_type | C.Any_attr | C.Any | C.Eq (Irdl_ir.Attr.Type _)
  | C.Base_type _ | C.Base_attr _ ->
      K_attr_type
  | C.Int_param _ | C.Eq (Irdl_ir.Attr.Int _) | C.Bool_param
  | C.Eq (Irdl_ir.Attr.Bool _) ->
      K_integer
  | C.Enum_param _ | C.Eq (Irdl_ir.Attr.Enum _) -> K_enum
  | C.Float_param _ | C.Eq (Irdl_ir.Attr.Float_attr _) -> K_float
  | C.String_param | C.Symbol_param | C.Eq (Irdl_ir.Attr.String _) -> K_string
  | C.Location_param -> K_location
  | C.Type_id_param -> K_type_id
  | C.Native_param { class_name; _ } -> kind_of_native_class class_name
  | C.Native { base; _ } -> kind_of base
  | C.Array_of c -> kind_of c
  | C.Array_exact (c :: _) -> kind_of c
  | C.Array_exact [] | C.Array_any -> K_attr_type
  | C.Any_of (c :: _) | C.And (c :: _) -> kind_of c
  | C.Any_of [] | C.And [] -> K_other
  | C.Not c | C.Variadic c | C.Optional c -> kind_of c
  | C.Var v -> kind_of v.C.v_constraint
  | C.Eq _ -> K_other

let is_domain_specific = function K_affine | K_llvm -> true | _ -> false

type count = { kind : kind; total : int; domain_specific : bool }

(** Kind histogram over the parameters of the given type/attr definitions. *)
let histogram (defs : R.typedef list) : count list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (td : R.typedef) ->
      List.iter
        (fun (s : R.slot) ->
          let k = kind_of s.s_constraint in
          Hashtbl.replace tbl k
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        td.td_params)
    defs;
  List.filter_map
    (fun k ->
      match Hashtbl.find_opt tbl k with
      | Some n when n > 0 ->
          Some { kind = k; total = n; domain_specific = is_domain_specific k }
      | _ -> None)
    all_kinds

(** Does a parameter constraint (transitively) involve a native
    [TypeOrAttrParam]? Unlike {!Expressiveness.needs_native} this ignores
    [Constraint]-with-[CppConstraint] refinements: those are verifier
    concerns, not parameter-definition concerns (paper §6.3). *)
let rec needs_native_param (c : C.t) : bool =
  match c with
  | C.Native_param _ -> true
  | C.Native { base; _ } -> needs_native_param base
  | C.Any_of cs | C.And cs | C.Array_exact cs ->
      List.exists needs_native_param cs
  | C.Not c | C.Array_of c | C.Variadic c | C.Optional c ->
      needs_native_param c
  | C.Base_type { params = Some ps; _ } | C.Base_attr { params = Some ps; _ }
    ->
      List.exists needs_native_param ps
  | C.Var v -> needs_native_param v.C.v_constraint
  | _ -> false

(** Fraction of parameters expressible in plain IRDL (everything that is not
    a native [TypeOrAttrParam]). *)
let irdl_param_fraction (defs : R.typedef list) =
  let params =
    List.concat_map
      (fun (td : R.typedef) ->
        List.map (fun (s : R.slot) -> s.s_constraint) td.td_params)
      defs
  in
  let total = List.length params in
  let native = List.length (List.filter needs_native_param params) in
  if total = 0 then 1.0
  else float_of_int (total - native) /. float_of_int total
