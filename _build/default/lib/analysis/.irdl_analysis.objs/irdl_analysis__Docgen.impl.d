lib/analysis/docgen.ml: Fmt Irdl_core List Printf String
