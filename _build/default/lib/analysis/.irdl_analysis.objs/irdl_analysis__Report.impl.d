lib/analysis/report.ml: Array Evolution Expressiveness Fmt Irdl_core Irdl_dialects List Op_stats Param_stats Printf String
