lib/analysis/op_stats.ml: Array Hashtbl Irdl_core List Option
