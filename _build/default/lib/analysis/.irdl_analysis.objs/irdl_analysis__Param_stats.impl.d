lib/analysis/param_stats.ml: Hashtbl Irdl_core Irdl_ir List Option String
