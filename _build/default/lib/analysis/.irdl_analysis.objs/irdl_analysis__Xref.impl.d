lib/analysis/xref.ml: Fmt Irdl_core Irdl_support List Loc Option String
