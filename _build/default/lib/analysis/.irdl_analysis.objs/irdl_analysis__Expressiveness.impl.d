lib/analysis/expressiveness.ml: Hashtbl Irdl_core List Option Param_stats
