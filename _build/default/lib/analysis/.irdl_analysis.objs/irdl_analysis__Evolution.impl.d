lib/analysis/evolution.ml: Irdl_dialects List Option Printf String
