(** Textual reproduction of every table and figure in the paper's
    evaluation (§6). Each [figN] function prints the measured statistic
    next to the value the paper reports, so the harness output doubles as
    the paper-vs-measured record summarized in EXPERIMENTS.md. *)

module R = Irdl_core.Resolve

let pct x = Printf.sprintf "%.0f%%" (100.0 *. x)

let bar ?(width = 30) frac =
  let n = int_of_float (frac *. float_of_int width) in
  String.make (min width (max 0 n)) '#'

let section ppf title = Fmt.pf ppf "@.=== %s ===@." title

(* ------------------------------------------------------------------ *)

let table1 ppf (dls : R.dialect list) =
  section ppf "Table 1: the 28 MLIR dialects";
  List.iter
    (fun (e : Irdl_dialects.Corpus.entry) ->
      Fmt.pf ppf "  %-14s %s@." e.name e.description)
    Irdl_dialects.Corpus.all;
  let ops = List.fold_left (fun a dl -> a + List.length dl.R.dl_ops) 0 dls in
  let tys = List.fold_left (fun a dl -> a + List.length dl.R.dl_types) 0 dls in
  let ats = List.fold_left (fun a dl -> a + List.length dl.R.dl_attrs) 0 dls in
  Fmt.pf ppf
    "  total: %d dialects, %d operations, %d types, %d attributes  (paper: \
     28 / 942 / 62 / 30)@."
    (List.length dls) ops tys ats

let fig3 ppf (dls : R.dialect list) =
  section ppf "Figure 3: operations defined in MLIR over time";
  let finals =
    List.map (fun dl -> (dl.R.dl_name, List.length dl.R.dl_ops)) dls
  in
  let points = Evolution.series ~finals in
  List.iter
    (fun (p : Evolution.point) ->
      Fmt.pf ppf "  %s  %4d ops  %2d dialects  |%s@." p.month p.total_ops
        p.num_dialects
        (bar ~width:40 (float_of_int p.total_ops /. 1000.0)))
    points;
  Fmt.pf ppf "  growth over 20 months: %.1fx  (paper: 2.1x, 444 -> 942)@."
    (Evolution.growth_factor points)

let fig4 ppf (dls : R.dialect list) =
  section ppf "Figure 4: operations per dialect (log-scale in the paper)";
  let sorted =
    List.sort
      (fun a b -> compare (List.length a.R.dl_ops) (List.length b.R.dl_ops))
      dls
  in
  List.iter
    (fun dl ->
      let n = List.length dl.R.dl_ops in
      Fmt.pf ppf "  %-14s %3d |%s@." dl.R.dl_name n
        (bar ~width:40 (log (float_of_int (max n 1)) /. log 200.0)))
    sorted;
  Fmt.pf ppf "  (paper: 3 ops for arm_neon/builtin up to >100 for llvm/spv)@."

let pp_buckets ppf ~paper (b : Op_stats.buckets) =
  List.iteri
    (fun i label ->
      Fmt.pf ppf "    %-3s %4d ops  %4s |%s@." label b.Op_stats.counts.(i)
        (pct (Op_stats.fraction b i))
        (bar (Op_stats.fraction b i)))
    b.Op_stats.labels;
  Fmt.pf ppf "    (paper: %s)@." paper

let fig5 ppf profiles =
  section ppf "Figure 5: operand definitions";
  Fmt.pf ppf "  (a) operands per operation@.";
  pp_buckets ppf ~paper:"0: 12%, 1: 41%, 2: 32%, 3+: 16%"
    (Op_stats.operand_buckets profiles);
  Fmt.pf ppf "  (b) variadic operand definitions per operation@.";
  pp_buckets ppf ~paper:"83% non-variadic, 17% variadic"
    (Op_stats.variadic_operand_buckets profiles);
  let with_variadic =
    Op_stats.dialects_with
      ~pred:(fun p -> p.Op_stats.p_variadic_operands > 0)
      profiles
  in
  let nd = Op_stats.num_dialects profiles in
  Fmt.pf ppf
    "  dialects with at least one variadic-operand op: %d/%d = %s  (paper: \
     79%%)@."
    with_variadic nd
    (pct (float_of_int with_variadic /. float_of_int nd));
  let quarter =
    List.length
      (List.filter
         (fun (_, f) -> f > 0.25)
         (Op_stats.dialect_fraction
            ~pred:(fun p -> p.Op_stats.p_variadic_operands > 0)
            profiles))
  in
  Fmt.pf ppf
    "  dialects with >25%% variadic-operand ops: %d/%d = %s  (paper: 46%%)@."
    quarter nd
    (pct (float_of_int quarter /. float_of_int nd))

let fig6 ppf profiles =
  section ppf "Figure 6: result definitions";
  Fmt.pf ppf "  (a) results per operation@.";
  pp_buckets ppf ~paper:"0: 16%, 1: 84%, 2: 1%"
    (Op_stats.result_buckets profiles);
  let multi =
    List.sort_uniq compare
      (List.filter_map
         (fun p ->
           if p.Op_stats.p_results >= 2 then Some p.Op_stats.p_dialect
           else None)
         profiles)
  in
  Fmt.pf ppf "  dialects with multi-result ops: %s  (paper: gpu, x86vector, \
              async, shape)@."
    (String.concat ", " multi);
  Fmt.pf ppf "  (b) variadic result definitions per operation@.";
  pp_buckets ppf ~paper:"97% non-variadic, 3% variadic; no op has 2 variadic \
                         results"
    (Op_stats.variadic_result_buckets profiles);
  let with_v =
    Op_stats.dialects_with
      ~pred:(fun p -> p.Op_stats.p_variadic_results > 0)
      profiles
  in
  let nd = Op_stats.num_dialects profiles in
  Fmt.pf ppf
    "  dialects with at least one variadic-result op: %d/%d = %s  (paper: \
     50%%)@."
    with_v nd
    (pct (float_of_int with_v /. float_of_int nd))

let fig7 ppf profiles =
  section ppf "Figure 7: attribute and region definitions";
  Fmt.pf ppf "  (a) attributes per operation@.";
  pp_buckets ppf ~paper:"0: 73%, 1: 16%, 2+: 11%"
    (Op_stats.attribute_buckets profiles);
  let nd = Op_stats.num_dialects profiles in
  let with_attr =
    Op_stats.dialects_with ~pred:(fun p -> p.Op_stats.p_attributes > 0)
      profiles
  in
  Fmt.pf ppf
    "  dialects with at least one attributed op: %d/%d = %s  (paper: 76%%)@."
    with_attr nd
    (pct (float_of_int with_attr /. float_of_int nd));
  Fmt.pf ppf "  (b) regions per operation@.";
  pp_buckets ppf ~paper:"0: 96%, 1: 4%, 2: 1%"
    (Op_stats.region_buckets profiles);
  let with_region =
    Op_stats.dialects_with ~pred:(fun p -> p.Op_stats.p_regions > 0) profiles
  in
  Fmt.pf ppf
    "  dialects with at least one region op: %d/%d = %s  (paper: 54%%)@."
    with_region nd
    (pct (float_of_int with_region /. float_of_int nd))

let pp_param_hist ppf (counts : Param_stats.count list) =
  List.iter
    (fun (c : Param_stats.count) ->
      Fmt.pf ppf "    %-10s %3d%s@."
        (Param_stats.kind_to_string c.kind)
        c.total
        (if c.domain_specific then "  (domain-specific, IRDL-C++)" else ""))
    (List.sort (fun a b -> compare b.Param_stats.total a.Param_stats.total)
       counts)

let fig8 ppf (dls : R.dialect list) =
  section ppf "Figure 8: type and attribute parameter kinds";
  let tys = List.concat_map (fun dl -> dl.R.dl_types) dls in
  let ats = List.concat_map (fun dl -> dl.R.dl_attrs) dls in
  Fmt.pf ppf "  (a) type parameters@.";
  pp_param_hist ppf (Param_stats.histogram tys);
  Fmt.pf ppf "    IRDL-expressible: %s  (paper: 97%%)@."
    (pct (Param_stats.irdl_param_fraction tys));
  Fmt.pf ppf "  (b) attribute parameters@.";
  pp_param_hist ppf (Param_stats.histogram ats);
  Fmt.pf ppf "    IRDL-expressible: %s  (paper: 77%%)@."
    (pct (Param_stats.irdl_param_fraction ats))

let pp_split_line ppf name (s : Expressiveness.split) =
  if Expressiveness.split_total s > 0 then
    Fmt.pf ppf "    %-14s IRDL %3d  IRDL-C++ %2d@." name s.Expressiveness.irdl
      s.Expressiveness.native

let fig9_10 ppf ~what ~defs_of ~paper_def ~paper_ver (dls : R.dialect list) =
  Fmt.pf ppf "  (a) %s definitions (parameters)@." what;
  let total_split = ref Expressiveness.empty in
  List.iter
    (fun (dl : R.dialect) ->
      let s = Expressiveness.def_split (defs_of dl) in
      (total_split :=
         Expressiveness.
           {
             irdl = !total_split.irdl + s.irdl;
             native = !total_split.native + s.native;
           });
      pp_split_line ppf dl.dl_name s)
    dls;
  let t = !total_split in
  let tot = Expressiveness.split_total t in
  Fmt.pf ppf "    overall: %d/%d = %s in IRDL  (paper: %s)@."
    t.Expressiveness.irdl tot
    (pct (float_of_int t.Expressiveness.irdl /. float_of_int (max 1 tot)))
    paper_def;
  Fmt.pf ppf "  (b) %s verifiers@." what;
  let total_split = ref Expressiveness.empty in
  List.iter
    (fun (dl : R.dialect) ->
      let s = Expressiveness.verifier_split (defs_of dl) in
      (total_split :=
         Expressiveness.
           {
             irdl = !total_split.irdl + s.irdl;
             native = !total_split.native + s.native;
           });
      pp_split_line ppf dl.dl_name s)
    dls;
  let t = !total_split in
  let tot = Expressiveness.split_total t in
  Fmt.pf ppf "    overall: %d/%d = %s need a C++ verifier  (paper: %s)@."
    t.Expressiveness.native tot
    (pct (float_of_int t.Expressiveness.native /. float_of_int (max 1 tot)))
    paper_ver

let fig9 ppf dls =
  section ppf "Figure 9: expressiveness of type definitions";
  fig9_10 ppf ~what:"type"
    ~defs_of:(fun dl -> dl.R.dl_types)
    ~paper_def:"97% of parameters in IRDL" ~paper_ver:"16% need C++" dls

let fig10 ppf dls =
  section ppf "Figure 10: expressiveness of attribute definitions";
  fig9_10 ppf ~what:"attribute"
    ~defs_of:(fun dl -> dl.R.dl_attrs)
    ~paper_def:"77% of parameters in IRDL" ~paper_ver:"20% need C++" dls

let fig11 ppf (dls : R.dialect list) =
  section ppf "Figure 11: expressiveness of operations";
  Fmt.pf ppf "  (a) local constraints@.";
  let all_ops = List.concat_map (fun dl -> dl.R.dl_ops) dls in
  List.iter
    (fun (dl : R.dialect) ->
      pp_split_line ppf dl.dl_name (Expressiveness.op_local_split dl.dl_ops))
    dls;
  let s = Expressiveness.op_local_split all_ops in
  Fmt.pf ppf "    overall: %d/%d = %s in IRDL  (paper: 97%%)@."
    s.Expressiveness.irdl
    (Expressiveness.split_total s)
    (pct
       (float_of_int s.Expressiveness.irdl
       /. float_of_int (max 1 (Expressiveness.split_total s))));
  Fmt.pf ppf "  (b) verifiers (non-local constraints)@.";
  List.iter
    (fun (dl : R.dialect) ->
      pp_split_line ppf dl.dl_name
        (Expressiveness.op_verifier_split dl.dl_ops))
    dls;
  let s = Expressiveness.op_verifier_split all_ops in
  Fmt.pf ppf "    overall: %d/%d = %s need IRDL-C++  (paper: 30%%)@."
    s.Expressiveness.native
    (Expressiveness.split_total s)
    (pct
       (float_of_int s.Expressiveness.native
       /. float_of_int (max 1 (Expressiveness.split_total s))))

let fig12 ppf (dls : R.dialect list) =
  section ppf "Figure 12: native local-constraint categories";
  List.iter
    (fun (cat, n) ->
      Fmt.pf ppf "  %-20s %3d ops |%s@."
        (Expressiveness.category_to_string cat)
        n
        (bar ~width:30 (float_of_int n /. 25.0)))
    (Expressiveness.category_histogram dls);
  Fmt.pf ppf
    "  (paper: three categories — struct opacity, stride check, integer \
     inequality; struct opacity largest at ~20)@."

(** The whole evaluation, in paper order. *)
let full ppf (dls : R.dialect list) =
  let profiles = Op_stats.profiles_of_corpus dls in
  table1 ppf dls;
  fig3 ppf dls;
  fig4 ppf dls;
  fig5 ppf profiles;
  fig6 ppf profiles;
  fig7 ppf profiles;
  fig8 ppf dls;
  fig9 ppf dls;
  fig10 ppf dls;
  fig11 ppf dls;
  fig12 ppf dls

let full_string dls = Fmt.str "%a" full dls
