(** Per-operation structural statistics (paper §6.2, Figures 5–7). *)

module C = Irdl_core.Constraint_expr
module R = Irdl_core.Resolve

type profile = {
  p_dialect : string;
  p_name : string;
  p_operands : int;  (** operand definitions (slots, not runtime arity) *)
  p_variadic_operands : int;  (** variadic or optional operand slots *)
  p_results : int;
  p_variadic_results : int;
  p_attributes : int;
  p_regions : int;
  p_successors : int;
  p_is_terminator : bool;
  p_has_format : bool;
  p_has_constraint_vars : bool;
}

let count_variadic slots =
  List.length
    (List.filter (fun (s : R.slot) -> C.is_variadic s.s_constraint) slots)

let profile ~dialect (op : R.op) : profile =
  {
    p_dialect = dialect;
    p_name = op.op_name;
    p_operands = List.length op.op_operands;
    p_variadic_operands = count_variadic op.op_operands;
    p_results = List.length op.op_results;
    p_variadic_results = count_variadic op.op_results;
    p_attributes = List.length op.op_attributes;
    p_regions = List.length op.op_regions;
    p_successors =
      (match op.op_successors with None -> 0 | Some l -> List.length l);
    p_is_terminator = op.op_successors <> None;
    p_has_format = op.op_format <> None;
    p_has_constraint_vars = op.op_vars <> [];
  }

let profiles_of_dialect (dl : R.dialect) =
  List.map (profile ~dialect:dl.dl_name) dl.dl_ops

let profiles_of_corpus (dls : R.dialect list) =
  List.concat_map profiles_of_dialect dls

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

(** Bucketed counts: [buckets] maps a raw count to a bucket label index via
    [bucket_of]; e.g. Figure 5a buckets operand counts as 0/1/2/3+. *)
type buckets = { labels : string list; counts : int array }

let bucketize ~labels ~bucket_of values =
  let counts = Array.make (List.length labels) 0 in
  List.iter
    (fun v ->
      let b = bucket_of v in
      counts.(b) <- counts.(b) + 1)
    values;
  { labels; counts }

let total (b : buckets) = Array.fold_left ( + ) 0 b.counts

let fraction (b : buckets) i =
  let t = total b in
  if t = 0 then 0.0 else float_of_int b.counts.(i) /. float_of_int t

(** Figure 5a: operand definitions per op, bucketed 0 / 1 / 2 / 3+. *)
let operand_buckets profiles =
  bucketize
    ~labels:[ "0"; "1"; "2"; "3+" ]
    ~bucket_of:(fun p -> min p.p_operands 3)
    profiles

(** Figure 5b: variadic operand definitions per op, bucketed 0 / 1 / 2+. *)
let variadic_operand_buckets profiles =
  bucketize
    ~labels:[ "0"; "1"; "2+" ]
    ~bucket_of:(fun p -> min p.p_variadic_operands 2)
    profiles

(** Figure 6a: result definitions per op, bucketed 0 / 1 / 2. *)
let result_buckets profiles =
  bucketize
    ~labels:[ "0"; "1"; "2" ]
    ~bucket_of:(fun p -> min p.p_results 2)
    profiles

(** Figure 6b: variadic result definitions per op, bucketed 0 / 1. *)
let variadic_result_buckets profiles =
  bucketize
    ~labels:[ "0"; "1" ]
    ~bucket_of:(fun p -> min p.p_variadic_results 1)
    profiles

(** Figure 7a: attribute definitions per op, bucketed 0 / 1 / 2+. *)
let attribute_buckets profiles =
  bucketize
    ~labels:[ "0"; "1"; "2+" ]
    ~bucket_of:(fun p -> min p.p_attributes 2)
    profiles

(** Figure 7b: region definitions per op, bucketed 0 / 1 / 2. *)
let region_buckets profiles =
  bucketize
    ~labels:[ "0"; "1"; "2" ]
    ~bucket_of:(fun p -> min p.p_regions 2)
    profiles

(* ------------------------------------------------------------------ *)
(* Per-dialect aggregates (the y-axes of Figures 5–7)                  *)
(* ------------------------------------------------------------------ *)

let group_by_dialect profiles =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun p ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl p.p_dialect) in
      Hashtbl.replace tbl p.p_dialect (p :: cur))
    profiles;
  Hashtbl.fold (fun d ps acc -> (d, List.rev ps) :: acc) tbl []
  |> List.sort compare

(** Fraction of a dialect's ops satisfying [pred]. *)
let dialect_fraction ~pred profiles =
  List.map
    (fun (d, ps) ->
      let n = List.length ps in
      let k = List.length (List.filter pred ps) in
      (d, float_of_int k /. float_of_int (max 1 n)))
    (group_by_dialect profiles)

(** Count of dialects with at least one op satisfying [pred]. *)
let dialects_with ~pred profiles =
  List.length
    (List.filter (fun (_, ps) -> List.exists pred ps)
       (group_by_dialect profiles))

let num_dialects profiles = List.length (group_by_dialect profiles)
