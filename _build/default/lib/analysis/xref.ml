(** Cross-reference index over IRDL sources: definitions and references of
    types, attributes, aliases, enums, constraints and native parameters,
    with source locations.

    This is the data an IRDL language server needs for go-to-definition,
    find-references and rename — the "LSP support" direction of paper §3.
    It works on the AST (not the resolved form) so that every occurrence
    keeps its own source location. *)

open Irdl_support
module Ast = Irdl_core.Ast

type def_kind =
  | D_dialect
  | D_type
  | D_attr
  | D_op
  | D_alias
  | D_enum
  | D_constraint
  | D_param  (** TypeOrAttrParam *)

let def_kind_to_string = function
  | D_dialect -> "dialect"
  | D_type -> "type"
  | D_attr -> "attribute"
  | D_op -> "operation"
  | D_alias -> "alias"
  | D_enum -> "enum"
  | D_constraint -> "constraint"
  | D_param -> "native parameter"

type entry = {
  e_kind : def_kind;
  e_name : string;  (** unqualified *)
  e_dialect : string;
  e_loc : Loc.t;  (** the definition site *)
  e_refs : Loc.t list;  (** every reference, in source order *)
}

(* ------------------------------------------------------------------ *)
(* Collecting references                                               *)
(* ------------------------------------------------------------------ *)

(* Strip a same-dialect qualification: inside dialect d, [d.x] refers to
   local [x]. *)
let local_name ~dialect name =
  let prefix = dialect ^ "." in
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    String.sub name pl (String.length name - pl)
  else name

let rec cexpr_refs ~dialect acc (e : Ast.cexpr) =
  match e with
  | Ast.C_ref { name; args; loc; _ } ->
      let acc = (local_name ~dialect name, loc) :: acc in
      let acc =
        (* enum constructors also reference the enum: [sign.Pos] -> [sign] *)
        match String.index_opt name '.' with
        | Some i -> (String.sub name 0 i, loc) :: acc
        | None -> acc
      in
      List.fold_left (cexpr_refs ~dialect) acc
        (Option.value ~default:[] args)
  | Ast.C_list { elems; _ } -> List.fold_left (cexpr_refs ~dialect) acc elems
  | Ast.C_int _ | Ast.C_string _ -> acc

let param_refs ~dialect acc (p : Ast.param) =
  cexpr_refs ~dialect acc p.p_constraint

let op_refs ~dialect (o : Ast.op_def) =
  let acc =
    List.fold_left (param_refs ~dialect) []
      (o.o_constraint_vars @ o.o_operands @ o.o_results @ o.o_attributes)
  in
  let acc =
    List.fold_left
      (fun acc (r : Ast.region_def) ->
        let acc = List.fold_left (param_refs ~dialect) acc r.r_args in
        match r.r_terminator with
        | Some t -> (local_name ~dialect t, r.r_loc) :: acc
        | None -> acc)
      acc o.o_regions
  in
  acc

(** Build the index of one dialect. *)
let index (d : Ast.dialect) : entry list =
  let dialect = d.d_name in
  (* 1. definition sites *)
  let defs =
    List.filter_map
      (fun (item : Ast.item) ->
        match item with
        | Ast.I_type t -> Some (D_type, t.t_name, t.t_loc)
        | Ast.I_attr a -> Some (D_attr, a.a_name, a.a_loc)
        | Ast.I_op o -> Some (D_op, o.o_name, o.o_loc)
        | Ast.I_alias a -> Some (D_alias, a.al_name, a.al_loc)
        | Ast.I_enum e -> Some (D_enum, e.e_name, e.e_loc)
        | Ast.I_constraint c -> Some (D_constraint, c.c_name, c.c_loc)
        | Ast.I_param p -> Some (D_param, p.tp_name, p.tp_loc))
      d.d_items
  in
  (* 2. every reference in the dialect, as (name, loc) *)
  let refs =
    List.concat_map
      (fun (item : Ast.item) ->
        match item with
        | Ast.I_type t -> List.fold_left (param_refs ~dialect) [] t.t_params
        | Ast.I_attr a -> List.fold_left (param_refs ~dialect) [] a.a_params
        | Ast.I_op o -> op_refs ~dialect o
        | Ast.I_alias a -> cexpr_refs ~dialect [] a.al_body
        | Ast.I_constraint c -> cexpr_refs ~dialect [] c.c_base
        | Ast.I_enum _ | Ast.I_param _ -> [])
      d.d_items
  in
  let entry_of (kind, name, loc) =
    let e_refs =
      List.filter_map
        (fun (n, l) -> if n = name then Some l else None)
        refs
      |> List.sort (fun (a : Loc.t) (b : Loc.t) ->
             compare a.start_pos.offset b.start_pos.offset)
    in
    { e_kind = kind; e_name = name; e_dialect = dialect; e_loc = loc; e_refs }
  in
  { e_kind = D_dialect; e_name = d.d_name; e_dialect = dialect;
    e_loc = d.d_loc; e_refs = [] }
  :: List.map entry_of defs

let find (entries : entry list) name =
  List.find_opt (fun e -> e.e_name = name) entries

(** The definition whose source span contains [pos] most tightly — the
    "go to definition" base query. *)
let definition_at (entries : entry list) (pos : Loc.pos) : entry option =
  let contains (l : Loc.t) =
    (not (Loc.is_unknown l))
    && l.start_pos.offset <= pos.offset
    && pos.offset <= l.end_pos.offset
  in
  List.filter (fun e -> contains e.e_loc) entries
  |> List.sort (fun a b ->
         compare
           (a.e_loc.end_pos.offset - a.e_loc.start_pos.offset)
           (b.e_loc.end_pos.offset - b.e_loc.start_pos.offset))
  |> function
  | [] -> None
  | e :: _ -> Some e

(** Definitions that are never referenced inside their dialect — dead
    aliases/constraints a refactoring tool would flag. Operations and the
    dialect itself are exempt (they are the external interface). *)
let unreferenced (entries : entry list) : entry list =
  List.filter
    (fun e ->
      e.e_refs = []
      && match e.e_kind with
         | D_alias | D_constraint | D_param | D_enum -> true
         | _ -> false)
    entries

let pp_entry ppf (e : entry) =
  Fmt.pf ppf "%s %s.%s  defined at %a, %d reference(s)"
    (def_kind_to_string e.e_kind)
    e.e_dialect e.e_name Loc.pp e.e_loc (List.length e.e_refs);
  List.iter (fun l -> Fmt.pf ppf "@.  ref at %a" Loc.pp l) e.e_refs
