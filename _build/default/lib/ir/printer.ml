(** Textual IR output.

    Prints the MLIR-like generic form for every operation:

    {v
    %0 = "cmath.norm"(%p) : (!cmath.complex<f32>) -> f32
    v}

    and, when the operation's definition carries a compiled declarative
    format (paper §4.7), the custom pretty form:

    {v
    %0 = cmath.norm %p : f32
    v}

    Printing never fails: if a custom format cannot be applied to a
    (possibly invalid) operation, the printer falls back to the generic
    form for that operation. *)

type t = {
  ctx : Context.t;
  value_names : (int, string) Hashtbl.t;
  block_names : (int, string) Hashtbl.t;
  mutable next_value : int;
  mutable next_block : int;
  generic : bool;  (** Force generic form even when a format is registered. *)
}

let create ?(generic = false) ctx =
  {
    ctx;
    value_names = Hashtbl.create 64;
    block_names = Hashtbl.create 16;
    next_value = 0;
    next_block = 0;
    generic;
  }

let value_name t (v : Graph.value) =
  match Hashtbl.find_opt t.value_names v.v_id with
  | Some n -> n
  | None ->
      let n = Printf.sprintf "%%%d" t.next_value in
      t.next_value <- t.next_value + 1;
      Hashtbl.add t.value_names v.v_id n;
      n

let block_name t (b : Graph.block) =
  match Hashtbl.find_opt t.block_names b.blk_id with
  | Some n -> n
  | None ->
      let n = Printf.sprintf "^bb%d" t.next_block in
      t.next_block <- t.next_block + 1;
      Hashtbl.add t.block_names b.blk_id n;
      n

exception Fallback
(* Raised when a custom format cannot be applied; caught to emit generic
   form instead. *)

let project_ty (op : Graph.op) (proj : Opfmt.ty_proj) : Attr.ty =
  let base =
    match proj.source with
    | `Operand i -> (
        match List.nth_opt op.operands i with
        | Some v -> Graph.Value.ty v
        | None -> raise Fallback)
    | `Result i -> (
        match List.nth_opt op.results i with
        | Some v -> Graph.Value.ty v
        | None -> raise Fallback)
  in
  List.fold_left
    (fun ty idx ->
      match (ty : Attr.ty) with
      | Attr.Dynamic { params; _ } -> (
          match List.nth_opt params idx with
          | Some (Attr.Type ty') -> ty'
          | _ -> raise Fallback)
      | _ -> raise Fallback)
    base proj.path

let indent ppf n = Fmt.string ppf (String.make n ' ')

let rec pp_op ?(level = 0) t ppf (op : Graph.op) =
  (* Results are named before the body so that custom formats see them. *)
  let result_names = List.map (value_name t) op.results in
  (match result_names with
  | [] -> ()
  | names -> Fmt.pf ppf "%s = " (String.concat ", " names));
  let custom_format =
    if t.generic then None
    else
      match Context.lookup_op t.ctx op.op_name with
      | Some { od_format = Some f; _ } -> Some f
      | _ -> None
  in
  match custom_format with
  | Some f -> (
      (* Render to a buffer first: on Fallback, nothing partial is emitted. *)
      let buf = Buffer.create 64 in
      let bppf = Format.formatter_of_buffer buf in
      try
        pp_custom t bppf op f;
        Format.pp_print_flush bppf ();
        Fmt.string ppf (Buffer.contents buf)
      with Fallback -> pp_generic ~level t ppf op)
  | None -> pp_generic ~level t ppf op

and pp_custom t ppf (op : Graph.op) (f : Opfmt.t) =
  Fmt.pf ppf "%s" op.op_name;
  List.iter
    (fun (item : Opfmt.item) ->
      match item with
      | Opfmt.Lit s ->
          (* Punctuation hugs the previous token; words get a space. *)
          if s = "," || s = ">" || s = ")" then Fmt.string ppf s
          else Fmt.pf ppf " %s" s
      | Opfmt.Operand_ref i -> (
          match List.nth_opt op.operands i with
          | Some v -> Fmt.pf ppf " %s" (value_name t v)
          | None -> raise Fallback)
      | Opfmt.Operand_group start ->
          let rec drop n l =
            if n = 0 then l
            else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
          in
          let group = drop start op.operands in
          Fmt.pf ppf " %s"
            (String.concat ", " (List.map (value_name t) group))
      | Opfmt.Attr_ref name -> (
          match Graph.Op.attr op name with
          | Some a -> Fmt.pf ppf " %a" Attr.pp a
          | None -> raise Fallback)
      | Opfmt.Ty_directive { proj; _ } ->
          Fmt.pf ppf " %a" Attr.pp_ty (project_ty op proj))
    f.items

and pp_generic ~level t ppf (op : Graph.op) =
  Fmt.pf ppf "%S(%s)" op.op_name
    (String.concat ", " (List.map (value_name t) op.operands));
  (match op.successors with
  | [] -> ()
  | succs ->
      Fmt.pf ppf "[%s]" (String.concat ", " (List.map (block_name t) succs)));
  (match op.regions with
  | [] -> ()
  | regions ->
      Fmt.pf ppf " (";
      List.iteri
        (fun i r ->
          if i > 0 then Fmt.pf ppf ", ";
          pp_region ~level t ppf r)
        regions;
      Fmt.pf ppf ")");
  (match op.attrs with
  | [] -> ()
  | attrs ->
      Fmt.pf ppf " {%s}"
        (String.concat ", "
           (List.map
              (fun (k, v) -> Fmt.str "%s = %a" k Attr.pp v)
              attrs)));
  Fmt.pf ppf " : (%s) -> (%s)"
    (String.concat ", "
       (List.map (fun v -> Attr.ty_to_string (Graph.Value.ty v)) op.operands))
    (String.concat ", "
       (List.map (fun v -> Attr.ty_to_string (Graph.Value.ty v)) op.results))

and pp_region ~level t ppf (r : Graph.region) =
  let inner = level + 2 in
  Fmt.string ppf "{";
  List.iteri
    (fun i (b : Graph.block) ->
      (* The entry block's label is implicit when it has no arguments and is
         the only block, matching MLIR's convention. *)
      let needs_label =
        i > 0 || b.blk_args <> [] || List.length r.blocks > 1
      in
      if needs_label then (
        Fmt.pf ppf "\n%a%s" indent level (block_name t b);
        (match b.blk_args with
        | [] -> ()
        | args ->
            Fmt.pf ppf "(%s)"
              (String.concat ", "
                 (List.map
                    (fun v ->
                      Fmt.str "%s: %a" (value_name t v) Attr.pp_ty
                        (Graph.Value.ty v))
                    args)));
        Fmt.string ppf ":");
      List.iter
        (fun o ->
          Fmt.pf ppf "\n%a%a" indent inner (pp_op ~level:inner t) o)
        b.blk_ops)
    r.blocks;
  Fmt.pf ppf "\n%a}" indent level

let op_to_string ?generic ctx op =
  let t = create ?generic ctx in
  Fmt.str "%a" (pp_op t) op

(** Print a list of top-level operations, one per line. *)
let ops_to_string ?generic ctx ops =
  let t = create ?generic ctx in
  String.concat "\n" (List.map (fun o -> Fmt.str "%a" (pp_op t) o) ops)
