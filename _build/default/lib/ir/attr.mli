(** Types and attributes of the IR.

    Following xDSL (and unlike MLIR's C++ split), types and attributes live
    in one recursive value domain: a type can appear as an attribute
    ({!Type}) and dynamic (IRDL-defined) types carry attribute parameters.
    This makes IRDL parameter constraints uniform: they all constrain
    attributes. *)

type signedness = Signless | Signed | Unsigned
type float_kind = BF16 | F16 | F32 | F64

type ty =
  | Integer of { width : int; signedness : signedness }
  | Float of float_kind
  | Index
  | None_ty
  | Function of { inputs : ty list; outputs : ty list }
  | Tuple of ty list
  | Dynamic of { dialect : string; name : string; params : t list }
      (** A type defined at runtime by an IRDL [Type] definition. *)

and t =
  | Unit
  | Bool of bool
  | Int of { value : int64; ty : ty }
  | Float_attr of { value : float; ty : ty }
  | String of string
  | Array of t list
  | Dict of (string * t) list
  | Type of ty  (** A type used as an attribute. *)
  | Enum of { dialect : string; enum : string; case : string }
  | Symbol of string
  | Location of { file : string; line : int; col : int }
  | Type_id of string
  | Opaque of { tag : string; repr : string }
      (** Escape hatch for IRDL-C++ [TypeOrAttrParam] parameters: [tag]
          names the registered native parameter kind, [repr] its printed
          form. *)
  | Dyn_attr of { dialect : string; name : string; params : t list }
      (** An attribute defined at runtime by an IRDL [Attribute]
          definition. *)

(** {2 Type constructors} *)

val i1 : ty
val i8 : ty
val i16 : ty
val i32 : ty
val i64 : ty
val f16 : ty
val f32 : ty
val f64 : ty
val bf16 : ty
val index : ty

val integer : ?signedness:signedness -> int -> ty
(** An integer type of the given positive bit width. *)

val dynamic : dialect:string -> name:string -> t list -> ty

(** {2 Attribute constructors} *)

val bool : bool -> t
val int : ?ty:ty -> int64 -> t
val int_of : ty:ty -> int -> t
val float : ?ty:ty -> float -> t
val string : string -> t
val array : t list -> t
val dict : (string * t) list -> t
val typ : ty -> t
val enum : dialect:string -> enum:string -> string -> t
val symbol : string -> t
val opaque : tag:string -> string -> t
val bool_int : bool -> t
(** The [i1] constant 1/0 used by conditional branches. *)

(** {2 Equality and printing} *)

val equal_ty : ty -> ty -> bool
val equal : t -> t -> bool
(** Structural; float payloads compare bitwise so equality is reflexive. *)

val pp_signedness : Format.formatter -> signedness -> unit
val pp_float_kind : Format.formatter -> float_kind -> unit
val pp_ty : Format.formatter -> ty -> unit
val pp : Format.formatter -> t -> unit
val ty_to_string : ty -> string
val to_string : t -> string

(** {2 Classifiers and helpers} *)

val is_float_ty : ty -> bool
val is_integer_ty : ty -> bool
val dict_find : string -> t -> t option
