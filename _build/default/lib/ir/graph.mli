(** The mutable SSA IR object graph: values, operations, blocks and regions
    (MLIR's object model, paper §2).

    Operations are extensible: [op_name] is a plain ["dialect.mnemonic"]
    string and all structural fields are generic — the property IRDL relies
    on to register dialects at runtime without code generation. *)

type value = {
  v_id : int;
  mutable v_ty : Attr.ty;
  mutable v_def : value_def;
}

and value_def =
  | Op_result of { op : op; index : int }
  | Block_arg of { block : block; index : int }
  | Forward_ref of string
      (** A use seen before its definition while parsing; patched to a real
          definition when the defining operation is parsed. *)

and op = {
  op_id : int;
  op_name : string;  (** Fully qualified, e.g. ["cmath.mul"]. *)
  mutable operands : value list;
  mutable results : value list;
  mutable attrs : (string * Attr.t) list;
  mutable regions : region list;
  mutable successors : block list;
  mutable op_parent : block option;
  op_loc : Irdl_support.Loc.t;
}

and block = {
  blk_id : int;
  mutable blk_args : value list;
  mutable blk_ops : op list;
  mutable blk_parent : region option;
}

and region = {
  reg_id : int;
  mutable blocks : block list;
  mutable reg_parent : op option;
}

val next_id : unit -> int
(** A fresh id, unique within the process. *)

module Value : sig
  type t = value

  val ty : t -> Attr.ty
  val id : t -> int
  val equal : t -> t -> bool
  val defining_op : t -> op option
  val owner_block : t -> block option
  val pp : Format.formatter -> t -> unit
end

module Op : sig
  type t = op

  val create :
    ?operands:value list -> ?result_tys:Attr.ty list ->
    ?attrs:(string * Attr.t) list -> ?regions:region list ->
    ?successors:block list -> ?loc:Irdl_support.Loc.t -> string -> t
  (** Create an operation; fresh result values are wired to it, and the
      given regions are attached (they must be detached). *)

  val name : t -> string
  val dialect : t -> string
  val mnemonic : t -> string
  val operand : t -> int -> value
  val result : t -> int -> value
  val num_operands : t -> int
  val num_results : t -> int
  val attr : t -> string -> Attr.t option
  val set_attr : t -> string -> Attr.t -> unit
  val remove_attr : t -> string -> unit
  val set_operands : t -> value list -> unit
  val parent_op : t -> t option
  val walk : t -> f:(t -> unit) -> unit
  (** Pre-order walk over the op and everything nested in its regions. *)

  val is_ancestor : ancestor:t -> t -> bool
  (** Is the op nested (strictly or not) inside [ancestor]? *)
end

module Block : sig
  type t = block

  val create : ?arg_tys:Attr.ty list -> unit -> t
  val args : t -> value list
  val ops : t -> op list
  val add_arg : t -> Attr.ty -> value
  val append : t -> op -> unit
  val prepend : t -> op -> unit
  val insert_before : t -> anchor:op -> op -> unit
  val remove : t -> op -> unit
  val terminator : t -> op option
  (** The last operation of the block, if any. *)
end

module Region : sig
  type t = region

  val create : ?blocks:block list -> unit -> t
  val add_block : t -> block -> unit
  val entry : t -> block option
  val blocks : t -> block list
  val num_blocks : t -> int
end

val detach : op -> unit
(** Remove an op from its parent block (no-op when detached). *)

val replace_uses_in : op -> from:value -> to_:value -> unit
(** Replace every use of [from] by [to_] in all operations nested inside the
    scope op (inclusive). *)

val has_uses_in : op -> value -> bool
