(** Compiled declarative operation formats (paper §4.7).

    An IRDL [Format "$lhs, $rhs : $T.elementType"] directive is compiled (by
    [Irdl_core.Opformat]) into this first-order structure, which the generic
    printer and parser interpret. Keeping it declarative keeps [lib/ir] free
    of any dependency on the IRDL frontend while still letting dynamically
    registered operations print and parse in their custom syntax.

    A format is printable iff every directive projects out of the op's actual
    state, and parseable iff every operand and result type is reconstructible
    from the parsed type directives; the format compiler enforces both. *)

(** Where a printed type directive gets its value from: project [path]
    (successive dynamic-type parameter indices) out of an operand/result
    type. An empty path is the type itself. *)
type ty_proj = {
  source : [ `Operand of int | `Result of int ];
  path : int list;
}

(** How to rebuild a type at parse time from the parsed type directives. *)
type ty_expr =
  | Known of Attr.ty  (** Fully determined by the op's constraints. *)
  | From_directive of int  (** The value parsed for the i-th type directive. *)
  | Param_of of int * int
      (** [Param_of (i, j)]: parameter [j] of the (dynamic) type parsed for
          directive [i]. *)
  | Wrap of { dialect : string; name : string; params : ty_expr list }
      (** A dynamic type whose parameters are themselves reconstructed. *)

type item =
  | Lit of string  (** Literal token, e.g. [","] or ["to"]. *)
  | Operand_ref of int  (** [$name] where [name] is the i-th operand. *)
  | Operand_group of int
      (** A variadic operand group: prints/parses a comma-separated list. *)
  | Attr_ref of string  (** [$name] where [name] is an attribute. *)
  | Ty_directive of { index : int; proj : ty_proj }
      (** [$T] / [$T.param] / [$operand_name.ty]: prints the projected type,
          and at parse time records directive [index]. *)

type t = {
  items : item list;
  operand_tys : ty_expr list;  (** one per operand slot, in order *)
  result_tys : ty_expr list;  (** one per result slot, in order *)
}
