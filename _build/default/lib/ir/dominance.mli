(** SSA dominance checking (paper §2): every use must be dominated by its
    definition — textual order within a block, CFG dominance across blocks
    (per region, entry = first block), and enclosing-region visibility
    across regions.

    Kept separate from {!Verifier} because the textual format deliberately
    allows forward references while parsing; dominance is checked on demand
    (e.g. [irdl-opt --dominance]). *)

open Irdl_support

type t
(** Cached per-region dominator trees. *)

val create : unit -> t

val value_dominates : t -> Graph.value -> Graph.op -> bool
(** Does the value properly dominate (is it visible at) the use in the op? *)

val verify : Graph.op -> (unit, Diag.t) result
(** Check SSA dominance for every use inside [scope] (exclusive of the
    scope op's own operands). *)
