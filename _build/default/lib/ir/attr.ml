(** Types and attributes of the IR.

    Following xDSL (and unlike MLIR's C++ split), types and attributes live in
    one recursive value domain: a type can appear as an attribute ({!Type})
    and dynamic (IRDL-defined) types carry attribute parameters. This makes
    IRDL parameter constraints uniform: they all constrain attributes.

    Builtin types mirror the MLIR builtins that the paper's corpus depends
    on: signless/signed/unsigned integers, the standard float kinds, [index],
    and function/tuple aggregates. Everything else is a {!Dynamic} type or
    {!Dyn_attr} attribute introduced at runtime by dialect registration. *)

type signedness = Signless | Signed | Unsigned

type float_kind = BF16 | F16 | F32 | F64

type ty =
  | Integer of { width : int; signedness : signedness }
  | Float of float_kind
  | Index
  | None_ty
  | Function of { inputs : ty list; outputs : ty list }
  | Tuple of ty list
  | Dynamic of { dialect : string; name : string; params : t list }

and t =
  | Unit
  | Bool of bool
  | Int of { value : int64; ty : ty }
  | Float_attr of { value : float; ty : ty }
  | String of string
  | Array of t list
  | Dict of (string * t) list
  | Type of ty
  | Enum of { dialect : string; enum : string; case : string }
  | Symbol of string
  | Location of { file : string; line : int; col : int }
  | Type_id of string
  | Opaque of { tag : string; repr : string }
      (** Escape hatch for IRDL-C++ [TypeOrAttrParam] parameters: [tag] names
          the registered native parameter kind, [repr] its printed form. *)
  | Dyn_attr of { dialect : string; name : string; params : t list }
      (** An attribute defined at runtime by an IRDL [Attribute] definition. *)

(* Convenience type constructors. *)

let i1 = Integer { width = 1; signedness = Signless }
let i8 = Integer { width = 8; signedness = Signless }
let i16 = Integer { width = 16; signedness = Signless }
let i32 = Integer { width = 32; signedness = Signless }
let i64 = Integer { width = 64; signedness = Signless }
let f16 = Float F16
let f32 = Float F32
let f64 = Float F64
let bf16 = Float BF16
let index = Index

let integer ?(signedness = Signless) width =
  if width <= 0 then invalid_arg "Attr.integer: width must be positive";
  Integer { width; signedness }

let dynamic ~dialect ~name params = Dynamic { dialect; name; params }

(* Convenience attribute constructors. *)

let bool b = Bool b
let int ?(ty = i64) value = Int { value; ty }
let int_of ~ty value = Int { value = Int64.of_int value; ty }
let float ?(ty = f64) value = Float_attr { value; ty }
let string s = String s
let array xs = Array xs
let dict kvs = Dict kvs
let typ ty = Type ty
let enum ~dialect ~enum:e case = Enum { dialect; enum = e; case }
let symbol s = Symbol s
let opaque ~tag repr = Opaque { tag; repr }

let rec equal_ty (a : ty) (b : ty) =
  match (a, b) with
  | Integer a, Integer b -> a.width = b.width && a.signedness = b.signedness
  | Float a, Float b -> a = b
  | Index, Index | None_ty, None_ty -> true
  | Function a, Function b ->
      List.length a.inputs = List.length b.inputs
      && List.length a.outputs = List.length b.outputs
      && List.for_all2 equal_ty a.inputs b.inputs
      && List.for_all2 equal_ty a.outputs b.outputs
  | Tuple a, Tuple b ->
      List.length a = List.length b && List.for_all2 equal_ty a b
  | Dynamic a, Dynamic b ->
      a.dialect = b.dialect && a.name = b.name
      && List.length a.params = List.length b.params
      && List.for_all2 equal a.params b.params
  | ( ( Integer _ | Float _ | Index | None_ty | Function _ | Tuple _
      | Dynamic _ ),
      _ ) ->
      false

and equal (a : t) (b : t) =
  match (a, b) with
  | Unit, Unit -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> Int64.equal a.value b.value && equal_ty a.ty b.ty
  | Float_attr a, Float_attr b ->
      (* Bitwise comparison so that attribute equality is reflexive even for
         NaN payloads appearing in folded constants. *)
      Int64.equal (Int64.bits_of_float a.value) (Int64.bits_of_float b.value)
      && equal_ty a.ty b.ty
  | String a, String b -> String.equal a b
  | Array a, Array b ->
      List.length a = List.length b && List.for_all2 equal a b
  | Dict a, Dict b ->
      List.length a = List.length b
      && List.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
           a b
  | Type a, Type b -> equal_ty a b
  | Enum a, Enum b ->
      a.dialect = b.dialect && a.enum = b.enum && a.case = b.case
  | Symbol a, Symbol b -> String.equal a b
  | Location a, Location b ->
      String.equal a.file b.file && a.line = b.line && a.col = b.col
  | Type_id a, Type_id b -> String.equal a b
  | Opaque a, Opaque b -> a.tag = b.tag && a.repr = b.repr
  | Dyn_attr a, Dyn_attr b ->
      a.dialect = b.dialect && a.name = b.name
      && List.length a.params = List.length b.params
      && List.for_all2 equal a.params b.params
  | ( ( Unit | Bool _ | Int _ | Float_attr _ | String _ | Array _ | Dict _
      | Type _ | Enum _ | Symbol _ | Location _ | Type_id _ | Opaque _
      | Dyn_attr _ ),
      _ ) ->
      false

let pp_signedness ppf = function
  | Signless -> Fmt.string ppf "i"
  | Signed -> Fmt.string ppf "si"
  | Unsigned -> Fmt.string ppf "ui"

let pp_float_kind ppf k =
  Fmt.string ppf
    (match k with BF16 -> "bf16" | F16 -> "f16" | F32 -> "f32" | F64 -> "f64")

let rec pp_ty ppf (ty : ty) =
  match ty with
  | Integer { width; signedness } ->
      Fmt.pf ppf "%a%d" pp_signedness signedness width
  | Float k -> pp_float_kind ppf k
  | Index -> Fmt.string ppf "index"
  | None_ty -> Fmt.string ppf "none"
  | Function { inputs; outputs } ->
      Fmt.pf ppf "(%a) -> (%a)"
        Fmt.(list ~sep:(any ", ") pp_ty)
        inputs
        Fmt.(list ~sep:(any ", ") pp_ty)
        outputs
  | Tuple tys -> Fmt.pf ppf "tuple<%a>" Fmt.(list ~sep:(any ", ") pp_ty) tys
  | Dynamic { dialect; name; params = [] } -> Fmt.pf ppf "!%s.%s" dialect name
  | Dynamic { dialect; name; params } ->
      Fmt.pf ppf "!%s.%s<%a>" dialect name Fmt.(list ~sep:(any ", ") pp) params

and pp ppf (a : t) =
  match a with
  | Unit -> Fmt.string ppf "unit"
  | Bool b -> Fmt.bool ppf b
  | Int { value; ty } -> Fmt.pf ppf "%Ld : %a" value pp_ty ty
  | Float_attr { value; ty } ->
      (* Shortest decimal form that round-trips; the parser requires a '.'
         or exponent to lex a float, which %.1f / %g guarantee here. *)
      let repr =
        if Float.is_integer value && Float.abs value < 1e15 then
          Printf.sprintf "%.1f" value
        else
          let s = Printf.sprintf "%.15g" value in
          if float_of_string s = value then s
          else Printf.sprintf "%.17g" value
      in
      Fmt.pf ppf "%s : %a" repr pp_ty ty
  | String s -> Fmt.pf ppf "%S" s
  | Array xs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp) xs
  | Dict kvs ->
      Fmt.pf ppf "{%a}"
        Fmt.(list ~sep:(any ", ") (fun ppf (k, v) -> pf ppf "%s = %a" k pp v))
        kvs
  | Type ty -> pp_ty ppf ty
  | Enum { dialect; enum; case } -> Fmt.pf ppf "#%s<%s.%s>" dialect enum case
  | Symbol s -> Fmt.pf ppf "@%s" s
  | Location { file; line; col } -> Fmt.pf ppf "loc(%S:%d:%d)" file line col
  | Type_id id -> Fmt.pf ppf "#typeid<%s>" id
  | Opaque { tag; repr } -> Fmt.pf ppf "#native<%s, %S>" tag repr
  | Dyn_attr { dialect; name; params = [] } -> Fmt.pf ppf "#%s.%s" dialect name
  | Dyn_attr { dialect; name; params } ->
      Fmt.pf ppf "#%s.%s<%a>" dialect name Fmt.(list ~sep:(any ", ") pp) params

let ty_to_string ty = Fmt.str "%a" pp_ty ty
let to_string a = Fmt.str "%a" pp a

(** The [i1] constant [true]/[false] used by conditional branches. *)
let bool_int b = Int { value = (if b then 1L else 0L); ty = i1 }

let is_float_ty = function Float _ -> true | _ -> false
let is_integer_ty = function Integer _ -> true | _ -> false

(** Dictionary lookup helper used throughout verifier generation. *)
let dict_find key = function
  | Dict kvs -> List.assoc_opt key kvs
  | _ -> None
