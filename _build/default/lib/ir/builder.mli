(** A convenience API for constructing IR programmatically: an insertion
    point plus creation helpers, mirroring MLIR's [OpBuilder]. *)

type t

val create : unit -> t
(** A builder with no insertion point: built ops stay detached. *)

val at_end_of : Graph.block -> t
val set_insertion_point : t -> Graph.block -> unit
val insertion_block : t -> Graph.block option

val build :
  t -> ?operands:Graph.value list -> ?result_tys:Attr.ty list ->
  ?attrs:(string * Attr.t) list -> ?regions:Graph.region list ->
  ?successors:Graph.block list -> ?loc:Irdl_support.Loc.t -> string ->
  Graph.op
(** Create an operation and append it at the insertion point (if set). *)

val build1 :
  t -> ?operands:Graph.value list -> result_ty:Attr.ty ->
  ?attrs:(string * Attr.t) list -> ?regions:Graph.region list ->
  ?successors:Graph.block list -> ?loc:Irdl_support.Loc.t -> string ->
  Graph.value
(** {!build} for the single-result case; returns the result value. *)

val region_with_block :
  ?arg_tys:Attr.ty list -> (t -> Graph.value list -> unit) -> Graph.region
(** Create a single-block region and populate it via the callback, which
    receives a builder positioned in the block and the block arguments. *)

val module_op :
  ?name:string -> ?loc:Irdl_support.Loc.t -> (t -> unit) -> Graph.op
(** A module-like container op with one region and one block. *)

val func_op :
  ?loc:Irdl_support.Loc.t -> name:string -> inputs:Attr.ty list ->
  outputs:Attr.ty list -> (t -> Graph.value list -> unit) -> Graph.op
(** A ["func.func"] with [sym_name]/[function_type] attributes and a
    single-block body. *)
