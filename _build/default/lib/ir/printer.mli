(** Textual IR output: the MLIR-like generic form, plus custom pretty forms
    for operations registered with a declarative format (paper §4.7).
    Printing never fails; inapplicable formats fall back to generic form. *)

type t

val create : ?generic:bool -> Context.t -> t
(** A printing session; value/block names are assigned per session.
    [generic] forces generic form even when formats are registered. *)

val value_name : t -> Graph.value -> string
(** The (stable, per-session) printed name of a value, e.g. ["%0"]. *)

val block_name : t -> Graph.block -> string

val pp_op : ?level:int -> t -> Format.formatter -> Graph.op -> unit
(** Print one operation (and its nested regions) at indent [level]. *)

val op_to_string : ?generic:bool -> Context.t -> Graph.op -> string

val ops_to_string : ?generic:bool -> Context.t -> Graph.op list -> string
(** Print top-level operations, one per line, sharing value names. *)
