lib/ir/verifier.ml: Attr Context Diag Graph Irdl_support List Loc Result
