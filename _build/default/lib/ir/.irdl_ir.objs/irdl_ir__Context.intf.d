lib/ir/context.mli: Attr Diag Graph Irdl_support Map Opfmt
