lib/ir/dominance.mli: Diag Graph Irdl_support
