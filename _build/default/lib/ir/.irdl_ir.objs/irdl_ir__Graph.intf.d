lib/ir/graph.mli: Attr Format Irdl_support
