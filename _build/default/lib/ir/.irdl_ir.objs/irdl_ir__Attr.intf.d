lib/ir/attr.mli: Format
