lib/ir/graph.ml: Attr Fmt Irdl_support List Loc String
