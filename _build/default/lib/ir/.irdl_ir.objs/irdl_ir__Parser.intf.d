lib/ir/parser.mli: Attr Context Diag Graph Irdl_support
