lib/ir/parser.ml: Attr Buffer Context Diag Fmt Graph Hashtbl Int64 Irdl_support List Loc Opfmt Option Sbuf String
