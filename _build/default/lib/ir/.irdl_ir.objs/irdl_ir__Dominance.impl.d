lib/ir/dominance.ml: Array Diag Graph Hashtbl Irdl_support List Option
