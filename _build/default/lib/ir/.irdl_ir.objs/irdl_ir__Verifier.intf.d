lib/ir/verifier.mli: Attr Context Diag Graph Irdl_support
