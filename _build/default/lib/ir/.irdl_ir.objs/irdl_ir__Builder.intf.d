lib/ir/builder.mli: Attr Graph Irdl_support
