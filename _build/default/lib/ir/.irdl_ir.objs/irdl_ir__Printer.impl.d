lib/ir/printer.ml: Attr Buffer Context Fmt Format Graph Hashtbl List Opfmt Printf String
