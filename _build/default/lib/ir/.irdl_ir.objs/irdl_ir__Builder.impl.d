lib/ir/builder.ml: Attr Graph
