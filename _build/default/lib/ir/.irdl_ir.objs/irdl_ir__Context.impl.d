lib/ir/context.ml: Attr Diag Graph Irdl_support List Map Opfmt Option String
