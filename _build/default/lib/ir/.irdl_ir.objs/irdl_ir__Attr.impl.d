lib/ir/attr.ml: Float Fmt Int64 List Printf String
