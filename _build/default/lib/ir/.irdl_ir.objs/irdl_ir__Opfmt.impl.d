lib/ir/opfmt.ml: Attr
