lib/ir/printer.mli: Context Format Graph
