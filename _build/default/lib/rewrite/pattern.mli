(** Rewrite patterns, native and declarative. The declarative combinators
    cover DAG-shaped peephole patterns — enough to express the paper's
    Listing 1 optimization without host-language matching code. *)

open Irdl_ir

type t = {
  name : string;
  benefit : int;  (** Higher-benefit patterns are attempted first. *)
  match_and_rewrite : Rewriter.t -> Graph.op -> bool;
      (** Returns true iff the pattern applied (and mutated the IR). *)
}

val make : ?benefit:int -> name:string -> (Rewriter.t -> Graph.op -> bool) -> t

(** {2 Declarative DAG patterns} *)

type matcher =
  | M_op of { op_name : string; operands : matcher list; bind : string option }
      (** Matches a value produced by (the unique result of) an op. *)
  | M_value of string
      (** Matches any value, capturing it; repeated names must match the
          same value (non-linear patterns). *)

val m_op : ?bind:string -> string -> matcher list -> matcher
val m_val : string -> matcher

type captures = (string, Graph.value) Hashtbl.t

type builder =
  | B_capture of string
  | B_op of {
      op_name : string;
      operands : builder list;
      result_ty : ty_builder;
    }

and ty_builder =
  | Ty_const of Attr.ty
  | Ty_of_capture of string  (** The type of a captured value. *)
  | Ty_fn of (captures -> Attr.ty)

val b_cap : string -> builder
val b_op : string -> builder list -> ty_builder -> builder

val dag :
  ?benefit:int -> name:string -> root:matcher -> replacement:builder ->
  unit -> t
(** A root-to-leaves pattern: match [root] at a single-result op, rewrite to
    [replacement]; dead producers are cleaned up by the driver's DCE. *)
