lib/rewrite/textual.ml: Attr Context Diag Irdl_ir Irdl_support List Loc Parser Pattern Result Sbuf String
