lib/rewrite/driver.ml: Context Fmt Graph Irdl_ir List Logs Pattern Rewriter
