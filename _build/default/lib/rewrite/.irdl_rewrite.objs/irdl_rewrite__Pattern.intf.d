lib/rewrite/pattern.mli: Attr Graph Hashtbl Irdl_ir Rewriter
