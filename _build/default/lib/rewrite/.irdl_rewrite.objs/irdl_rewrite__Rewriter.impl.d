lib/rewrite/rewriter.ml: Context Graph Irdl_ir List
