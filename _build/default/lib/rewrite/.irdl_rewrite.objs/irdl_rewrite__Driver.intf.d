lib/rewrite/driver.mli: Context Format Graph Irdl_ir Pattern
