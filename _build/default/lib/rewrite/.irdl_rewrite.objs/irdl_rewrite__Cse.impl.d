lib/rewrite/cse.ml: Attr Buffer Context Dominance Graph Hashtbl Irdl_ir List Option String Verifier
