lib/rewrite/textual.mli: Context Diag Irdl_ir Irdl_support Pattern
