lib/rewrite/rewriter.mli: Attr Context Graph Irdl_ir
