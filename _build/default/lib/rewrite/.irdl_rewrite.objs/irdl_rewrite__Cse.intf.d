lib/rewrite/cse.mli: Context Graph Irdl_ir
