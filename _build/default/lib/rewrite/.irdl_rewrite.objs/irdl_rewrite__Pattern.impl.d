lib/rewrite/pattern.ml: Attr Graph Hashtbl Irdl_ir List Rewriter
