(** The greedy pattern-rewrite driver (MLIR's
    [applyPatternsAndFoldGreedily] analog): sweeps the scope, trying
    patterns in decreasing benefit order, until a fixpoint or the iteration
    cap; dead producers are removed between sweeps. *)

open Irdl_ir

type stats = {
  iterations : int;
  applications : int;
  erased : int;
  converged : bool;
}

val pp_stats : Format.formatter -> stats -> unit

val apply :
  ?max_iterations:int -> Context.t -> Pattern.t list -> Graph.op -> stats
