(** Textual rewrite patterns: rewrites parsed at runtime, completing the
    fully dynamic flow of paper §3 (dialect from IRDL text + patterns from
    pattern text + IR from IR text, no host code anywhere).

    {v
    Pattern norm_of_mul {
      Benefit 2
      Match (arith.mulf (cmath.norm $p) (cmath.norm $q))
      Rewrite (cmath.norm (cmath.mul $p $q : $p) : f32)
    }
    v}

    In a [Rewrite] template, [(op args... : ty)] creates an op with one
    result of type [ty]: a concrete type, or [$x] for "the type of capture
    [x]"; omitted ascriptions default to the first capture's type. *)

open Irdl_support
open Irdl_ir

val parse_patterns :
  Context.t -> ?file:string -> string -> (Pattern.t list, Diag.t) result
(** Parse a source of [Pattern] definitions; the context is used to parse
    concrete type ascriptions. *)
