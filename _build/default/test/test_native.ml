(** Tests for the IRDL-C++ native registry: hook kinds, codecs, strict
    mode, and unresolved-snippet bookkeeping. *)

open Irdl_ir
module N = Irdl_core.Native
open Util

let def_hooks () =
  let n = N.create () in
  N.register_def_hook n "paramsSorted($_self)" (fun params ->
      let rec sorted = function
        | Attr.Int { value = a; _ } :: (Attr.Int { value = b; _ } :: _ as rest)
          ->
            a <= b && sorted rest
        | _ -> true
      in
      sorted params);
  let ctx = Context.create () in
  let _ =
    check_ok "load"
      (Irdl_core.Irdl.load_one ~native:n ctx
         {|Dialect d {
             Type sorted {
               Parameters (a: int64_t, b: int64_t)
               CppConstraint "paramsSorted($_self)"
             }
           }|})
  in
  let ty a b =
    Attr.dynamic ~dialect:"d" ~name:"sorted" [ Attr.int a; Attr.int b ]
  in
  verify_ok ctx (Graph.Op.create ~result_tys:[ ty 1L 2L ] "t.v");
  verify_err ~containing:"native" ctx
    (Graph.Op.create ~result_tys:[ ty 2L 1L ] "t.v")

let codecs () =
  let n = N.create () in
  Irdl_dialects.Cmath.register_hooks n;
  match N.find_codec n "StringParam" with
  | None -> Alcotest.fail "codec not registered"
  | Some codec -> (
      (match codec.N.codec_parse "hello" with
      | Some (Attr.Opaque { tag = "StringParam"; repr = "hello" }) -> ()
      | _ -> Alcotest.fail "parse");
      (match codec.N.codec_print (Attr.opaque ~tag:"StringParam" "x") with
      | Some "x" -> ()
      | _ -> Alcotest.fail "print");
      match codec.N.codec_print (Attr.int 1L) with
      | None -> ()
      | Some _ -> Alcotest.fail "print of non-opaque should fail")

let unresolved_bookkeeping () =
  let n = N.create () in
  (match N.check_param n "a()" (Attr.int 1L) with
  | Ok true -> ()
  | _ -> Alcotest.fail "non-strict accepts");
  (match N.check_op n "b()" (Graph.Op.create "t.x") with
  | Ok true -> ()
  | _ -> Alcotest.fail "non-strict accepts op");
  Alcotest.(check (list string)) "ordered oldest-first" [ "a()"; "b()" ]
    (N.unresolved n);
  N.clear_unresolved n;
  Alcotest.(check (list string)) "cleared" [] (N.unresolved n)

let strict_mode () =
  let n = N.create ~strict:true () in
  (match N.check_param n "x()" (Attr.int 1L) with
  | Error "x()" -> ()
  | _ -> Alcotest.fail "strict must surface the snippet");
  (* registered hooks still work in strict mode *)
  N.register_param_hook n "x()" (fun _ -> true);
  match N.check_param n "x()" (Attr.int 1L) with
  | Ok true -> ()
  | _ -> Alcotest.fail "registered hook in strict mode"

let strict_end_to_end () =
  let n = N.create ~strict:true () in
  let ctx = Context.create () in
  let _ =
    check_ok "load"
      (Irdl_core.Irdl.load_one ~native:n ctx
         {|Dialect d { Operation o { CppConstraint "mystery()" } }|})
  in
  verify_err ~containing:"strict" ctx (Graph.Op.create "d.o")

let hook_replacement () =
  let n = N.create () in
  N.register_param_hook n "p" (fun _ -> false);
  N.register_param_hook n "p" (fun _ -> true);
  match N.check_param n "p" Attr.Unit with
  | Ok true -> ()
  | _ -> Alcotest.fail "last registration wins"

let suite =
  [
    tc "definition-level hooks" def_hooks;
    tc "TypeOrAttrParam codecs" codecs;
    tc "unresolved snippets are recorded" unresolved_bookkeeping;
    tc "strict mode" strict_mode;
    tc "strict mode end-to-end" strict_end_to_end;
    tc "hook re-registration replaces" hook_replacement;
  ]
