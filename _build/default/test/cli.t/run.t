CLI integration tests for irdl-opt and irdl-stats.

A dialect definition, a rewrite pattern and a program, all plain text:

  $ cat > poly.irdl <<'EOF'
  > Dialect poly {
  >   Type poly {
  >     Parameters (coeff: !AnyOf<!f32, !f64>)
  >     Summary "A dense univariate polynomial"
  >   }
  >   Operation eval {
  >     ConstraintVars (T: !AnyOf<!f32, !f64>)
  >     Operands (p: !poly<!T>, at: !T)
  >     Results (res: !T)
  >     Format "$p, $at : $T"
  >     Summary "Evaluate a polynomial at a point"
  >   }
  >   Operation mul {
  >     ConstraintVars (T: !poly<AnyOf<!f32, !f64>>)
  >     Operands (lhs: !T, rhs: !T)
  >     Results (res: !T)
  >     Summary "Polynomial multiplication"
  >   }
  > }
  > EOF

  $ cat > opt.pat <<'EOF'
  > Pattern eval_of_mul {
  >   Match (poly.eval (poly.mul $p $q) $x)
  >   Rewrite (arith.mulf (poly.eval $p $x : $x) (poly.eval $q $x : $x) : $x)
  > }
  > EOF

  $ cat > prog.mlir <<'EOF'
  > "func.func"() ({
  > ^bb0(%p: !poly.poly<f32>, %q: !poly.poly<f32>, %x: f32):
  >   %pq = "poly.mul"(%p, %q) : (!poly.poly<f32>, !poly.poly<f32>) -> !poly.poly<f32>
  >   %y = poly.eval %pq, %x : f32
  >   "func.return"(%y) : (f32) -> ()
  > }) {sym_name = "eval_product"} : () -> ()
  > EOF

Parse, verify and re-print against the dynamically loaded dialect:

  $ irdl-opt -d poly.irdl prog.mlir
  "func.func"() ({
  ^bb0(%0: !poly.poly<f32>, %1: !poly.poly<f32>, %2: f32):
    %3 = "poly.mul"(%0, %1) : (!poly.poly<f32>, !poly.poly<f32>) -> (!poly.poly<f32>)
    %4 = poly.eval %3, %2 : f32
    "func.return"(%4) : (f32) -> ()
  }) {sym_name = "eval_product"} : () -> ()

Apply the textual rewrite pattern:

  $ irdl-opt -d poly.irdl -p opt.pat prog.mlir
  "func.func"() ({
  ^bb0(%0: !poly.poly<f32>, %1: !poly.poly<f32>, %2: f32):
    %3 = poly.eval %0, %2 : f32
    %4 = poly.eval %1, %2 : f32
    %5 = "arith.mulf"(%3, %4) : (f32, f32) -> (f32)
    "func.return"(%5) : (f32) -> ()
  }) {sym_name = "eval_product"} : () -> ()

Verification failures are reported with locations and exit code 1:

  $ cat > bad.mlir <<'EOF'
  > "t.wrap"() ({
  > ^bb0(%p: !poly.poly<i32>):
  >   "t.use"(%p) : (!poly.poly<i32>) -> ()
  > }) : () -> ()
  > EOF
  $ irdl-opt -d poly.irdl bad.mlir
  bad.mlir:3:3-10: error: type 'poly.poly': parameter 'coeff': i32 satisfies no alternative of AnyOf
  [1]

The formatter normalizes IRDL sources:

  $ echo 'Dialect d { Operation o { Operands (x: !f32) Summary "an op" } }' > d.irdl
  $ irdl-stats --fmt d.irdl
  Dialect d {
  
    Operation o {
      Operands (x: !f32)
      Summary "an op"
    }
  }


Documentation generation from a user-provided dialect:

  $ irdl-stats --doc poly poly.irdl | head -8
  # Dialect `poly`
  
  2 operations, 1 types, 0 attributes, 0 enums.
  
  ### type `poly`
  
  A dense univariate polynomial
  




One figure of the paper's evaluation, from the bundled corpus:

  $ irdl-stats --only table1 | tail -3
    vector         A generic vector abstraction
    x86vector      The Intel x86 vector instruction set
    total: 28 dialects, 942 operations, 62 types, 32 attributes  (paper: 28 / 942 / 62 / 30)

SSA dominance checking (--dominance):

  $ cat > nodom.mlir <<'XEOF'
  > "t.wrap"() ({
  > ^bb0:
  >   "t.use"(%later) : (i32) -> ()
  >   %later = "t.def"() : () -> i32
  > }) : () -> ()
  > XEOF
  $ irdl-opt --dominance --verify-only nodom.mlir
  nodom.mlir:3:3-10: error: operand 0 of 't.use' is not dominated by its definition
  [1]
  $ irdl-opt --verify-only nodom.mlir

Cross-references (find-references over IRDL definitions):

  $ irdl-stats --xref F poly.irdl 2>/dev/null || true
  $ irdl-stats --xref poly poly.irdl | head -2
  dialect poly.poly  defined at poly.irdl:1:1-poly.irdl:20:1, 0 reference(s)
  type poly.poly  defined at poly.irdl:2:3-poly.irdl:6:12, 2 reference(s)

CSE through the CLI:

  $ cat > dup.mlir <<'XEOF'
  > "func.func"() ({
  > ^bb0(%p: !poly.poly<f32>, %x: f32):
  >   %a = poly.eval %p, %x : f32
  >   %b = poly.eval %p, %x : f32
  >   "t.use"(%a, %b) : (f32, f32) -> ()
  > }) : () -> ()
  > XEOF
  $ irdl-opt -d poly.irdl --cse dup.mlir
  "func.func"() ({
  ^bb0(%0: !poly.poly<f32>, %1: f32):
    %2 = poly.eval %0, %1 : f32
    "t.use"(%2, %2) : (f32, f32) -> ()
  }) : () -> ()
