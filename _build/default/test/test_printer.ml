(** Tests for the IR printer: custom formats, generic fallback, and
    print/parse round-trips. *)

open Irdl_ir
open Util

(* tiny local substring helper *)
module Astring_contains = struct
  let contains hay needle =
    let hl = String.length hay and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    nl = 0 || go 0
end

let roundtrip ?generic ctx op =
  let printed = Printer.op_to_string ?generic ctx op in
  let reparsed = parse_op ctx printed in
  (printed, reparsed)

let generic_form () =
  let ctx = Context.create () in
  let def = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.def" in
  let use =
    Graph.Op.create
      ~operands:[ Graph.Op.result def 0 ]
      ~attrs:[ ("k", Attr.string "v") ]
      "t.use"
  in
  ignore (Printer.op_to_string ctx def);
  let s = Printer.op_to_string ctx use in
  (* operand name is assigned independently per printer; structure matters *)
  Alcotest.(check bool) "quoted name" true
    (String.length s > 0 && s.[0] = '"');
  Alcotest.(check bool) "attr dict" true
    (Astring_contains.contains s {|k = "v"|})

let custom_format_printing () =
  let ctx = cmath_ctx () in
  let p = Graph.Op.create ~result_tys:[ complex_f32 ] "t.def" in
  let mul =
    Graph.Op.create
      ~operands:[ Graph.Op.result p 0; Graph.Op.result p 0 ]
      ~result_tys:[ complex_f32 ] "cmath.mul"
  in
  let printer = Printer.create ctx in
  let _ = Printer.value_name printer (Graph.Op.result p 0) in
  let s = Fmt.str "%a" (Printer.pp_op printer) mul in
  Alcotest.(check string) "custom" "%1 = cmath.mul %0, %0 : f32" s

let generic_flag_overrides () =
  let ctx = cmath_ctx () in
  let p = Graph.Op.create ~result_tys:[ complex_f32 ] "t.def" in
  let norm =
    Graph.Op.create
      ~operands:[ Graph.Op.result p 0 ]
      ~result_tys:[ Attr.f32 ] "cmath.norm"
  in
  let s = Printer.op_to_string ~generic:true ctx norm in
  Alcotest.(check bool) "quoted" true
    (Astring_contains.contains s "\"cmath.norm\"")

let fallback_on_invalid () =
  let ctx = cmath_ctx () in
  (* A cmath.mul over a non-complex type cannot use the format's type
     projection; printing must fall back to generic form, not fail. *)
  let x = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.def" in
  let bad =
    Graph.Op.create
      ~operands:[ Graph.Op.result x 0; Graph.Op.result x 0 ]
      ~result_tys:[ Attr.i32 ] "cmath.mul"
  in
  let s = Printer.op_to_string ctx bad in
  Alcotest.(check bool) "generic fallback" true
    (Astring_contains.contains s "\"cmath.mul\"")

let roundtrip_custom () =
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):
  %m = cmath.mul %p, %q : f32
  %n = cmath.norm %m : f32
  "func.return"(%n) : (f32) -> ()
}) {sym_name = "f"} : () -> ()
|}
  in
  let printed, reparsed = roundtrip ctx func in
  verify_ok ctx reparsed;
  let printed2, _ = roundtrip ctx reparsed in
  Alcotest.(check string) "print is stable" printed printed2

let roundtrip_generic_only () =
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>):
  %n = cmath.norm %p : f32
  "func.return"(%n) : (f32) -> ()
}) : () -> ()
|}
  in
  (* Round-trip through fully generic syntax preserves verification. *)
  let printed, reparsed = roundtrip ~generic:true ctx func in
  Alcotest.(check bool) "no custom form used" false
    (Astring_contains.contains printed "cmath.norm %");
  verify_ok ctx reparsed

let successors_printed () =
  let ctx = cmath_ctx () in
  let op =
    parse_op ctx
      {|
"t.wrap"() ({
^entry(%c: i1):
  "cmath.conditional_branch"(%c)[^a, ^b] : (i1) -> ()
^a:
  "t.end"() : () -> ()
^b:
  "t.end"() : () -> ()
}) : () -> ()
|}
  in
  let printed, reparsed = roundtrip ctx op in
  Alcotest.(check bool) "successors present" true
    (Astring_contains.contains printed "[^bb");
  verify_ok ctx reparsed

let nested_regions_roundtrip () =
  let ctx = cmath_ctx () in
  let op =
    parse_op ctx
      {|
"t.outer"() ({
^bb0(%lb: i32):
  "cmath.range_loop"(%lb, %lb, %lb) ({
  ^body(%iv: i32):
    "cmath.range_loop_terminator"() : () -> ()
  }) : (i32, i32, i32) -> ()
}) : () -> ()
|}
  in
  let _, reparsed = roundtrip ctx op in
  verify_ok ctx reparsed;
  let count = ref 0 in
  Graph.Op.walk reparsed ~f:(fun _ -> incr count);
  Alcotest.(check int) "ops preserved" 3 !count

let attrs_roundtrip () =
  let ctx = Context.create () in
  let op =
    Graph.Op.create
      ~attrs:
        [
          ("i", Attr.int ~ty:Attr.i32 7L);
          ("f", Attr.float 2.5);
          ("s", Attr.string "x\"y");
          ("arr", Attr.array [ Attr.bool false; Attr.Unit ]);
          ("d", Attr.dict [ ("n", Attr.symbol "g") ]);
          ("t", Attr.typ complex_f32);
        ]
      "t.attrs"
  in
  let _, reparsed = roundtrip ctx op in
  List.iter
    (fun (k, v) ->
      match Graph.Op.attr reparsed k with
      | Some v' ->
          Alcotest.(check bool) ("attr " ^ k) true (Attr.equal v v')
      | None -> Alcotest.failf "missing attr %s" k)
    op.Graph.attrs

let suite =
  [
    tc "generic form" generic_form;
    tc "custom format printing" custom_format_printing;
    tc "generic flag overrides formats" generic_flag_overrides;
    tc "fallback to generic on unprintable ops" fallback_on_invalid;
    tc "custom-format round trip is stable" roundtrip_custom;
    tc "generic round trip" roundtrip_generic_only;
    tc "successors round trip" successors_printed;
    tc "nested regions round trip" nested_regions_roundtrip;
    tc "attributes round trip" attrs_roundtrip;
  ]
