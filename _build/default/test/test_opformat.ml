(** Tests for the declarative-format compiler (paper §4.7): projection and
    reconstruction of types, and the well-formedness rejections. *)

open Irdl_ir
open Util

let compile src ~op_name =
  let ast = check_ok "parse" (Irdl_core.Parser.parse_one src) in
  let dl = check_ok "resolve" (Irdl_core.Resolve.resolve_dialect ast) in
  let op =
    List.find (fun (o : Irdl_core.Resolve.op) -> o.op_name = op_name) dl.dl_ops
  in
  let lookup_type_params ~dialect ~name =
    if dialect <> dl.dl_name then None
    else
      List.find_opt (fun (t : Irdl_core.Resolve.typedef) -> t.td_name = name)
        dl.dl_types
      |> Option.map (fun (t : Irdl_core.Resolve.typedef) ->
             List.map (fun (s : Irdl_core.Resolve.slot) -> s.s_name) t.td_params)
  in
  Irdl_core.Opformat.compile ~lookup_type_params dl.dl_name op

let mul_format () =
  (* Listing 3's cmath.mul: "$lhs, $rhs : $T.elementType" *)
  let f =
    check_ok "mul"
      (compile ~op_name:"mul"
         {|Dialect cmath {
             Alias !FloatType = !AnyOf<!f32, !f64>
             Type complex { Parameters (elementType: !FloatType) }
             Operation mul {
               ConstraintVars (T: !complex<FloatType>)
               Operands (lhs: !T, rhs: !T)
               Results (res: !T)
               Format "$lhs, $rhs : $T.elementType"
             }
           }|})
  in
  (* items: operand , operand : ty-directive *)
  (match f.Opfmt.items with
  | [ Opfmt.Operand_ref 0; Opfmt.Lit ","; Opfmt.Operand_ref 1; Opfmt.Lit ":";
      Opfmt.Ty_directive { index = 0; proj } ] ->
      Alcotest.(check bool) "proj source" true (proj.source = `Operand 0);
      Alcotest.(check (list int)) "proj path" [ 0 ] proj.path
  | _ -> Alcotest.fail "unexpected items");
  (* reconstruction: operands and result are complex<directive0> *)
  match f.Opfmt.operand_tys with
  | [ Opfmt.Wrap { dialect = "cmath"; name = "complex";
                   params = [ Opfmt.From_directive 0 ] }; _ ] ->
      ()
  | _ -> Alcotest.fail "unexpected reconstruction"

let norm_format () =
  let f =
    check_ok "norm"
      (compile ~op_name:"norm"
         {|Dialect cmath {
             Alias !FloatType = !AnyOf<!f32, !f64>
             Type complex { Parameters (elementType: !FloatType) }
             Operation norm {
               ConstraintVars (T: !FloatType)
               Operands (c: !complex<!T>)
               Results (res: !T)
               Format "$c : $T"
             }
           }|})
  in
  (* $T projects out of the operand's first type parameter *)
  (match f.Opfmt.items with
  | [ Opfmt.Operand_ref 0; Opfmt.Lit ":";
      Opfmt.Ty_directive { proj = { source = `Operand 0; path = [ 0 ] }; _ } ]
    ->
      ()
  | _ -> Alcotest.fail "unexpected items");
  match f.Opfmt.result_tys with
  | [ Opfmt.From_directive 0 ] -> ()
  | _ -> Alcotest.fail "unexpected result reconstruction"

let attr_directive () =
  let f =
    check_ok "attr fmt"
      (compile ~op_name:"c"
         {|Dialect d {
             Operation c {
               Results (r: !i32)
               Attributes (value: i32_attr)
               Format "$value"
             }
           }|})
  in
  (match f.Opfmt.items with
  | [ Opfmt.Attr_ref "value" ] -> ()
  | _ -> Alcotest.fail "unexpected items");
  match f.Opfmt.result_tys with
  | [ Opfmt.Known Attr.(Integer _) ] -> ()
  | _ -> Alcotest.fail "result should be known i32"

let variadic_group_format () =
  let f =
    check_ok "variadic fmt"
      (compile ~op_name:"pack"
         {|Dialect d {
             Operation pack {
               Operands (first: !i32, rest: Variadic<!i32>)
               Results (r: !i32)
               Format "$first, $rest"
             }
           }|})
  in
  match f.Opfmt.items with
  | [ Opfmt.Operand_ref 0; Opfmt.Lit ","; Opfmt.Operand_group 1 ] -> ()
  | _ -> Alcotest.fail "unexpected items"

let rejections () =
  let expect_reject what src ~op_name needle =
    check_err_containing what needle (compile ~op_name src)
  in
  expect_reject "missing operand"
    {|Dialect d {
        Operation o { Operands (a: !i32, b: !i32) Results (r: !i32)
                      Format "$a" } }|}
    ~op_name:"o" "does not appear";
  expect_reject "unknown directive"
    {|Dialect d { Operation o { Results (r: !i32) Format "$zzz" } }|}
    ~op_name:"o" "unknown format directive";
  expect_reject "unreconstructible result"
    {|Dialect d {
        Operation o { Operands (a: !i32) Results (r: !AnyType)
                      Format "$a" } }|}
    ~op_name:"o" "not reconstructible";
  expect_reject "regions unsupported"
    {|Dialect d {
        Operation o { Region body { Arguments () } Format "x" } }|}
    ~op_name:"o" "regions";
  expect_reject "terminators unsupported"
    {|Dialect d { Operation o { Successors (a) Format "x" } }|}
    ~op_name:"o" "terminator";
  expect_reject "unrecoverable variable"
    {|Dialect d {
        Operation o { ConstraintVars (T: !AnyType)
                      Results (r: !AnyType) Format "$T" } }|}
    ~op_name:"o" "not recoverable"

let end_to_end_roundtrip () =
  (* A custom-format op defined here, printed and parsed back. *)
  let ctx, _ =
    load_dialect
      {|Dialect v {
          Type vec { Parameters (elt: !AnyType) }
          Operation splat {
            ConstraintVars (T: !AnyType)
            Operands (x: !T)
            Results (r: !vec<!T>)
            Format "$x : $T"
          }
        }|}
  in
  let x = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.def" in
  let splat =
    Graph.Op.create
      ~operands:[ Graph.Op.result x 0 ]
      ~result_tys:[ Attr.dynamic ~dialect:"v" ~name:"vec" [ Attr.typ Attr.i32 ] ]
      "v.splat"
  in
  verify_ok ctx splat;
  let printer = Printer.create ctx in
  let _ = Printer.value_name printer (Graph.Op.result x 0) in
  let s = Fmt.str "%a" (Printer.pp_op printer) splat in
  Alcotest.(check string) "printed" "%1 = v.splat %0 : i32" s;
  (* parse the custom form back in a block providing %0 *)
  let ops =
    check_ok "reparse"
      (Parser.parse_ops ctx
         {|
"t.wrap"() ({
^bb0(%a: i32):
  %r = v.splat %a : i32
}) : () -> ()
|})
  in
  List.iter (verify_ok ctx) ops

let suite =
  [
    tc "Listing 3 mul format compiles" mul_format;
    tc "Listing 3 norm format compiles" norm_format;
    tc "attribute directives" attr_directive;
    tc "variadic operand groups" variadic_group_format;
    tc "ill-formed formats rejected" rejections;
    tc "custom format end-to-end round trip" end_to_end_roundtrip;
  ]
