(** Tests for the support library: locations, diagnostics, lexing base. *)

open Irdl_support
open Util

let loc_advance () =
  let p = Loc.start_of_file "f" in
  let p = Loc.advance p 'a' in
  Alcotest.(check int) "col" 2 p.col;
  Alcotest.(check int) "line" 1 p.line;
  let p = Loc.advance p '\n' in
  Alcotest.(check int) "line after nl" 2 p.line;
  Alcotest.(check int) "col after nl" 1 p.col;
  Alcotest.(check int) "offset" 2 p.offset

let loc_merge () =
  let a = Loc.start_of_file "f" in
  let b = Loc.advance (Loc.advance a 'x') 'y' in
  let l = Loc.merge (Loc.point a) (Loc.point b) in
  Alcotest.(check int) "start" 0 l.start_pos.offset;
  Alcotest.(check int) "end" 2 l.end_pos.offset;
  (* merge is commutative *)
  let l' = Loc.merge (Loc.point b) (Loc.point a) in
  Alcotest.(check int) "start'" 0 l'.start_pos.offset;
  (* unknown absorbs *)
  let l'' = Loc.merge Loc.unknown (Loc.point b) in
  Alcotest.(check int) "unknown merge" 2 l''.start_pos.offset

let loc_pp () =
  let p = Loc.start_of_file "file.irdl" in
  Alcotest.(check string) "point" "file.irdl:1:1" (Loc.to_string (Loc.point p));
  Alcotest.(check bool) "unknown" true (Loc.is_unknown Loc.unknown);
  let q = Loc.advance (Loc.advance p 'a') 'b' in
  Alcotest.(check string) "span" "file.irdl:1:1-3"
    (Loc.to_string (Loc.span p q))

let diag_format () =
  let d = Diag.error "bad %s %d" "thing" 42 in
  Alcotest.(check string) "msg" "error: bad thing 42" (Diag.to_string d)

let diag_notes () =
  let d = Diag.error ~notes:[ (Loc.unknown, "see here") ] "top" in
  let s = Diag.to_string d in
  Alcotest.(check bool) "has note" true
    (String.length s > String.length "error: top")

let diag_protect () =
  (match Diag.protect (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "ok" 42 v
  | Error _ -> Alcotest.fail "expected Ok");
  match Diag.protect (fun () -> Diag.raise_error "boom %d" 1) with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error d -> Alcotest.(check string) "msg" "error: boom 1" (Diag.to_string d)

let diag_errorf () =
  match (Diag.errorf "x=%d" 3 : (unit, Diag.t) result) with
  | Error d -> Alcotest.(check string) "msg" "error: x=3" (Diag.to_string d)
  | Ok () -> Alcotest.fail "expected Error"

let sbuf_cursor () =
  let b = Sbuf.of_string "ab c" in
  Alcotest.(check (option char)) "peek" (Some 'a') (Sbuf.peek b);
  Alcotest.(check (option char)) "peek2" (Some 'b') (Sbuf.peek2 b);
  Alcotest.(check bool) "accept a" true (Sbuf.accept b 'a');
  Alcotest.(check bool) "accept z" false (Sbuf.accept b 'z');
  Alcotest.(check (option char)) "next" (Some 'b') (Sbuf.next b);
  Sbuf.skip_while b Sbuf.is_space;
  Alcotest.(check (option char)) "after space" (Some 'c') (Sbuf.peek b);
  Sbuf.advance b;
  Alcotest.(check bool) "eof" true (Sbuf.eof b);
  Alcotest.(check (option char)) "peek eof" None (Sbuf.peek b)

let sbuf_take_while () =
  let b = Sbuf.of_string "hello42!" in
  Alcotest.(check string) "ident" "hello42"
    (Sbuf.take_while b Sbuf.is_ident_char);
  Alcotest.(check (option char)) "rest" (Some '!') (Sbuf.peek b)

let sbuf_slice () =
  let b = Sbuf.of_string "abcdef" in
  let start = Sbuf.pos b in
  Sbuf.advance b;
  Sbuf.advance b;
  Sbuf.advance b;
  Alcotest.(check string) "slice" "abc" (Sbuf.slice b start (Sbuf.pos b))

let sbuf_classifiers () =
  Alcotest.(check bool) "digit" true (Sbuf.is_digit '7');
  Alcotest.(check bool) "not digit" false (Sbuf.is_digit 'a');
  Alcotest.(check bool) "ident start _" true (Sbuf.is_ident_start '_');
  Alcotest.(check bool) "ident start 1" false (Sbuf.is_ident_start '1');
  Alcotest.(check bool) "ident char $" true (Sbuf.is_ident_char '$');
  Alcotest.(check bool) "space tab" true (Sbuf.is_space '\t')

let suite =
  [
    tc "loc: advance tracks lines and columns" loc_advance;
    tc "loc: merge covers both spans" loc_merge;
    tc "loc: printing" loc_pp;
    tc "diag: formatted message" diag_format;
    tc "diag: notes attach" diag_notes;
    tc "diag: protect catches raise_error" diag_protect;
    tc "diag: errorf returns Error" diag_errorf;
    tc "sbuf: cursor operations" sbuf_cursor;
    tc "sbuf: take_while" sbuf_take_while;
    tc "sbuf: slice between positions" sbuf_slice;
    tc "sbuf: character classifiers" sbuf_classifiers;
  ]
