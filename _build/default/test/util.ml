(** Shared helpers for the test suites. *)

let tc name f = Alcotest.test_case name `Quick f

let check_ok what = function
  | Ok v -> v
  | Error d -> Alcotest.failf "%s: %s" what (Irdl_support.Diag.to_string d)

(** Assert failure and return the diagnostic message. *)
let check_err what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error d -> Irdl_support.Diag.to_string d

let check_err_containing what needle result =
  let msg = check_err what result in
  let contains hay needle =
    let h = String.lowercase_ascii hay and n = String.lowercase_ascii needle in
    let hl = String.length h and nl = String.length n in
    let rec go i = i + nl <= hl && (String.sub h i nl = n || go (i + 1)) in
    nl = 0 || go 0
  in
  if not (contains msg needle) then
    Alcotest.failf "%s: error %S does not mention %S" what msg needle

(** A fresh context with cmath (and its native hooks) loaded. *)
let cmath_ctx () =
  let ctx = Irdl_ir.Context.create () in
  let _ = check_ok "load cmath" (Irdl_dialects.Cmath.load ctx) in
  ctx

(** Load one dialect from IRDL source into a fresh context. *)
let load_dialect ?native src =
  let ctx = Irdl_ir.Context.create () in
  let dl = check_ok "load dialect" (Irdl_core.Irdl.load_one ?native ctx src) in
  (ctx, dl)

let complex_f32 =
  Irdl_ir.Attr.dynamic ~dialect:"cmath" ~name:"complex"
    [ Irdl_ir.Attr.typ Irdl_ir.Attr.f32 ]

let complex_f64 =
  Irdl_ir.Attr.dynamic ~dialect:"cmath" ~name:"complex"
    [ Irdl_ir.Attr.typ Irdl_ir.Attr.f64 ]

(** Parse one op, failing the test on parse errors. *)
let parse_op ctx src =
  check_ok "parse op" (Irdl_ir.Parser.parse_op_string ctx src)

let verify_ok ctx op =
  match Irdl_ir.Verifier.verify ctx op with
  | Ok () -> ()
  | Error d -> Alcotest.failf "expected valid IR: %s" (Irdl_support.Diag.to_string d)

let verify_err ?containing ctx op =
  match Irdl_ir.Verifier.verify ctx op with
  | Ok () -> Alcotest.fail "expected a verification error"
  | Error d -> (
      match containing with
      | None -> ()
      | Some needle ->
          check_err_containing "verify" needle (Error d : (unit, _) result))
