(** Tests for the analysis pipeline: exact values on a hand-made dialect,
    and tolerance checks against the paper's percentages for the corpus. *)

open Util
module R = Irdl_core.Resolve
module OS = Irdl_analysis.Op_stats
module PS = Irdl_analysis.Param_stats
module EX = Irdl_analysis.Expressiveness
module EV = Irdl_analysis.Evolution

let small_dialect =
  lazy
    (check_ok "resolve"
       (Result.bind
          (Irdl_core.Parser.parse_one
             {|Dialect small {
                 Enum mode { A, B }
                 TypeOrAttrParam M { CppClassName "AffineMapX" }
                 Type t1 { Parameters (a: !AnyType, b: int32_t) }
                 Type t2 { Parameters (m: M) CppConstraint "ok($_self)" }
                 Attribute a1 { Parameters (s: string, e: mode, l: location) }
                 Constraint Bounded : uint8_t { CppConstraint "$_self <= 32" }
                 Constraint Stride : !AnyType { CppConstraint "isStrided($_self)" }
                 Operation zero {}
                 Operation one { Operands (a: !f32) Results (r: !f32) }
                 Operation two {
                   Operands (a: !f32, b: Variadic<!f32>)
                   Results (r1: !f32, r2: Optional<!f32>)
                   Attributes (k: Bounded)
                 }
                 Operation three {
                   Operands (a: !f32, b: !f32, c: Stride)
                   Region body { Arguments () }
                   CppConstraint "nonlocal($_self)"
                 }
               }|})
          R.resolve_dialect))

let profiles () = OS.profiles_of_dialect (Lazy.force small_dialect)

let operand_histogram_exact () =
  let b = OS.operand_buckets (profiles ()) in
  Alcotest.(check (array int)) "0/1/2/3+" [| 1; 1; 1; 1 |] b.OS.counts;
  Alcotest.(check int) "total" 4 (OS.total b)

let variadic_histogram_exact () =
  let b = OS.variadic_operand_buckets (profiles ()) in
  Alcotest.(check (array int)) "0/1/2+" [| 3; 1; 0 |] b.OS.counts;
  let r = OS.variadic_result_buckets (profiles ()) in
  (* Optional results count as variadic (size 0 or 1, paper 4.6) *)
  Alcotest.(check (array int)) "res 0/1" [| 3; 1 |] r.OS.counts

let result_attr_region_exact () =
  Alcotest.(check (array int)) "results" [| 2; 1; 1 |]
    (OS.result_buckets (profiles ())).OS.counts;
  Alcotest.(check (array int)) "attrs" [| 3; 1; 0 |]
    (OS.attribute_buckets (profiles ())).OS.counts;
  Alcotest.(check (array int)) "regions" [| 3; 1; 0 |]
    (OS.region_buckets (profiles ())).OS.counts

let dialect_fractions () =
  let ps = profiles () in
  Alcotest.(check int) "dialects" 1 (OS.num_dialects ps);
  Alcotest.(check int) "with variadic" 1
    (OS.dialects_with ~pred:(fun p -> p.OS.p_variadic_operands > 0) ps);
  match OS.dialect_fraction ~pred:(fun p -> p.OS.p_regions > 0) ps with
  | [ ("small", f) ] -> Alcotest.(check (float 0.001)) "region frac" 0.25 f
  | _ -> Alcotest.fail "expected one dialect"

let param_kinds_exact () =
  let dl = Lazy.force small_dialect in
  let h = PS.histogram dl.dl_types in
  let find k =
    match List.find_opt (fun (c : PS.count) -> c.kind = k) h with
    | Some c -> c.total
    | None -> 0
  in
  Alcotest.(check int) "attr/type" 1 (find PS.K_attr_type);
  Alcotest.(check int) "integer" 1 (find PS.K_integer);
  Alcotest.(check int) "affine (native class)" 1 (find PS.K_affine);
  let ha = PS.histogram dl.dl_attrs in
  let finda k =
    match List.find_opt (fun (c : PS.count) -> c.kind = k) ha with
    | Some c -> c.total
    | None -> 0
  in
  Alcotest.(check int) "string" 1 (finda PS.K_string);
  Alcotest.(check int) "enum" 1 (finda PS.K_enum);
  Alcotest.(check int) "location" 1 (finda PS.K_location)

let expressiveness_exact () =
  let dl = Lazy.force small_dialect in
  let s = EX.def_split dl.dl_types in
  Alcotest.(check int) "types irdl" 1 s.EX.irdl;
  Alcotest.(check int) "types native" 1 s.EX.native;
  let v = EX.verifier_split dl.dl_types in
  Alcotest.(check int) "type verifier native" 1 v.EX.native;
  let local = EX.op_local_split dl.dl_ops in
  (* 'two' uses Bounded, 'three' uses Stride *)
  Alcotest.(check int) "local native ops" 2 local.EX.native;
  let ver = EX.op_verifier_split dl.dl_ops in
  Alcotest.(check int) "verifier native ops" 1 ver.EX.native

let category_classification () =
  Alcotest.(check bool) "inequality" true
    (EX.classify_snippet "$_self <= 32" = EX.Integer_inequality);
  Alcotest.(check bool) "pow2 is inequality" true
    (EX.classify_snippet "llvm::isPowerOf2_64($_self)" = EX.Integer_inequality);
  Alcotest.(check bool) "stride" true
    (EX.classify_snippet "isStrided($_self)" = EX.Stride_check);
  Alcotest.(check bool) "opacity" true
    (EX.classify_snippet "$_self.isOpaque()" = EX.Struct_opacity);
  let cats = EX.category_histogram [ Lazy.force small_dialect ] in
  Alcotest.(check bool) "has inequality" true
    (List.mem_assoc EX.Integer_inequality cats);
  Alcotest.(check bool) "has stride" true
    (List.mem_assoc EX.Stride_check cats)

let evolution_interpolation () =
  Alcotest.(check int) "month index" 0 (EV.month_index "2020-04");
  Alcotest.(check int) "last" 21 (EV.month_index "2022-01");
  Alcotest.(check string) "roundtrip" "2021-06"
    (EV.index_month (EV.month_index "2021-06"));
  (* a dialect introduced mid-series is 0 before its first checkpoint *)
  let v m =
    EV.dialect_count_at ~checkpoints:[ ("2021-01", 10) ] ~final:20
      (EV.month_index m)
  in
  Alcotest.(check int) "before intro" 0 (v "2020-06");
  Alcotest.(check int) "at intro" 10 (v "2021-01");
  Alcotest.(check int) "at end" 20 (v "2022-01");
  Alcotest.(check bool) "monotone between" true
    (v "2021-06" >= 10 && v "2021-06" <= 20)

(* ---------------- paper tolerances on the real corpus ---------------- *)

let corpus = lazy (check_ok "corpus" (Irdl_dialects.Corpus.analyze ()))

let close ~name ~paper ~tol measured =
  if Float.abs (measured -. paper) > tol then
    Alcotest.failf "%s: measured %.3f, paper %.3f (tolerance %.3f)" name
      measured paper tol

let corpus_headline_fractions () =
  let dls = Lazy.force corpus in
  let ps = OS.profiles_of_corpus dls in
  let b = OS.operand_buckets ps in
  close ~name:"0 operands" ~paper:0.12 ~tol:0.05 (OS.fraction b 0);
  close ~name:"1 operand" ~paper:0.41 ~tol:0.06 (OS.fraction b 1);
  close ~name:"2 operands" ~paper:0.32 ~tol:0.06 (OS.fraction b 2);
  let vb = OS.variadic_operand_buckets ps in
  close ~name:"non-variadic" ~paper:0.83 ~tol:0.05 (OS.fraction vb 0);
  let rb = OS.result_buckets ps in
  close ~name:"1 result" ~paper:0.84 ~tol:0.05 (OS.fraction rb 1);
  let ab = OS.attribute_buckets ps in
  close ~name:"0 attrs" ~paper:0.73 ~tol:0.05 (OS.fraction ab 0);
  let gb = OS.region_buckets ps in
  close ~name:"0 regions" ~paper:0.96 ~tol:0.03 (OS.fraction gb 0)

let corpus_expressiveness_fractions () =
  let dls = Lazy.force corpus in
  let ops = List.concat_map (fun (dl : R.dialect) -> dl.dl_ops) dls in
  let local = EX.op_local_split ops in
  close ~name:"local in IRDL" ~paper:0.97 ~tol:0.04
    (float_of_int local.EX.irdl
    /. float_of_int (EX.split_total local));
  let ver = EX.op_verifier_split ops in
  close ~name:"verifier native" ~paper:0.30 ~tol:0.06
    (float_of_int ver.EX.native /. float_of_int (EX.split_total ver));
  let tys = List.concat_map (fun (dl : R.dialect) -> dl.dl_types) dls in
  close ~name:"type params IRDL" ~paper:0.97 ~tol:0.04
    (PS.irdl_param_fraction tys);
  let ats = List.concat_map (fun (dl : R.dialect) -> dl.dl_attrs) dls in
  close ~name:"attr params IRDL" ~paper:0.77 ~tol:0.10
    (PS.irdl_param_fraction ats)

let corpus_growth_factor () =
  let dls = Lazy.force corpus in
  let finals =
    List.map (fun (dl : R.dialect) -> (dl.dl_name, List.length dl.dl_ops)) dls
  in
  let points = EV.series ~finals in
  close ~name:"growth" ~paper:2.1 ~tol:0.15 (EV.growth_factor points);
  (match points with
  | first :: _ ->
      Alcotest.(check bool) "starts near 444" true
        (abs (first.EV.total_ops - 444) <= 30)
  | [] -> Alcotest.fail "empty series");
  (* the series is monotonically non-decreasing overall (within noise) *)
  let rec check_monotone = function
    | a :: (b :: _ as rest) ->
        if b.EV.total_ops < a.EV.total_ops - 10 then
          Alcotest.failf "series dips at %s" b.EV.month;
        check_monotone rest
    | _ -> ()
  in
  check_monotone points

let corpus_hardware_dialects_many_operands () =
  (* Figure 5a: dialects dominated by 3+-operand ops are the hardware ones
     (amx, arm_neon, arm_sve, x86vector). *)
  let dls = Lazy.force corpus in
  let ps = OS.profiles_of_corpus dls in
  let heavy =
    OS.dialect_fraction ~pred:(fun p -> p.OS.p_operands >= 3) ps
    |> List.filter (fun (_, f) -> f > 0.5)
    |> List.map fst
  in
  List.iter
    (fun d ->
      Alcotest.(check bool) (d ^ " is operand-heavy") true (List.mem d heavy))
    [ "amx"; "arm_neon"; "arm_sve"; "x86vector" ];
  Alcotest.(check bool) "arith is not" false (List.mem "arith" heavy);
  Alcotest.(check bool) "math is not" false (List.mem "math" heavy)

let corpus_region_heavy_dialects () =
  (* Figure 7b: builtin and scf are the dialects with >50% region ops. *)
  let ps = OS.profiles_of_corpus (Lazy.force corpus) in
  let heavy =
    OS.dialect_fraction ~pred:(fun p -> p.OS.p_regions > 0) ps
    |> List.filter (fun (_, f) -> f > 0.5)
    |> List.map fst |> List.sort compare
  in
  Alcotest.(check (list string)) "builtin and scf" [ "builtin"; "scf" ] heavy

let corpus_no_variadic_dialects () =
  (* Figure 5b's zero rows include the pure-arithmetic dialects. *)
  let ps = OS.profiles_of_corpus (Lazy.force corpus) in
  List.iter
    (fun d ->
      let frac = List.assoc d
          (OS.dialect_fraction ~pred:(fun p -> p.OS.p_variadic_operands > 0) ps)
      in
      Alcotest.(check (float 0.0)) (d ^ " has no variadic ops") 0.0 frac)
    [ "complex"; "math"; "arith"; "arm_sve" ]

let corpus_native_categories () =
  let cats = EX.category_histogram (Lazy.force corpus) in
  (* exactly the paper's three categories, no 'other' *)
  Alcotest.(check bool) "no other" true
    (not (List.mem_assoc EX.Other_native cats));
  List.iter
    (fun cat ->
      Alcotest.(check bool)
        (EX.category_to_string cat ^ " present")
        true (List.mem_assoc cat cats))
    [ EX.Struct_opacity; EX.Stride_check; EX.Integer_inequality ]

let report_renders () =
  let dls = Lazy.force corpus in
  let s = Irdl_analysis.Report.full_string dls in
  List.iter
    (fun needle ->
      let contains hay needle =
        let hl = String.length hay and nl = String.length needle in
        let rec go i =
          i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
        in
        nl = 0 || go 0
      in
      if not (contains s needle) then
        Alcotest.failf "report lacks %S" needle)
    [ "Table 1"; "Figure 3"; "Figure 4"; "Figure 5"; "Figure 6"; "Figure 7";
      "Figure 8"; "Figure 9"; "Figure 10"; "Figure 11"; "Figure 12" ]

let suite =
  [
    tc "operand histogram (exact, small dialect)" operand_histogram_exact;
    tc "variadic histograms (exact)" variadic_histogram_exact;
    tc "result/attr/region histograms (exact)" result_attr_region_exact;
    tc "per-dialect fractions" dialect_fractions;
    tc "parameter kind classification (exact)" param_kinds_exact;
    tc "expressiveness splits (exact)" expressiveness_exact;
    tc "native-constraint categories" category_classification;
    tc "evolution interpolation" evolution_interpolation;
    tc "corpus: Figures 5-7 fractions within tolerance"
      corpus_headline_fractions;
    tc "corpus: Figures 8-11 fractions within tolerance"
      corpus_expressiveness_fractions;
    tc "corpus: Figure 3 growth 2.1x from ~444" corpus_growth_factor;
    tc "corpus: hardware dialects are operand-heavy (Fig 5a)"
      corpus_hardware_dialects_many_operands;
    tc "corpus: builtin/scf are region-heavy (Fig 7b)"
      corpus_region_heavy_dialects;
    tc "corpus: arithmetic dialects have no variadics (Fig 5b)"
      corpus_no_variadic_dialects;
    tc "corpus: Figure 12 categories" corpus_native_categories;
    tc "report renders every figure" report_renders;
  ]
