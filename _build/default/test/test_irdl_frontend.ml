(** Tests for the IRDL lexer, parser and pretty-printer. *)

open Irdl_core
open Util

(* ---------------- lexer ---------------- *)

let toks src =
  List.map (fun (t : Lexer.t) -> t.tok) (Lexer.tokenize src)

let lex_idents () =
  Alcotest.(check int) "count" 4 (List.length (toks "Dialect cmath {"));
  match toks "cmath.complex !f32 #foo.bar" with
  | [ Lexer.Ident "cmath.complex"; Lexer.Bang_ident "f32";
      Lexer.Hash_ident "foo.bar"; Lexer.Eof ] ->
      ()
  | _ -> Alcotest.fail "unexpected tokens"

let lex_literals () =
  match toks {|42 -3 "hi\n" |} with
  | [ Lexer.Int_lit 42L; Lexer.Int_lit -3L; Lexer.Str "hi\n"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "unexpected literal tokens"

let lex_puncts () =
  match toks "{}()<>,:=[]" with
  | [ Lexer.Punct "{"; Lexer.Punct "}"; Lexer.Punct "("; Lexer.Punct ")";
      Lexer.Punct "<"; Lexer.Punct ">"; Lexer.Punct ","; Lexer.Punct ":";
      Lexer.Punct "="; Lexer.Punct "["; Lexer.Punct "]"; Lexer.Eof ] ->
      ()
  | _ -> Alcotest.fail "unexpected punctuation"

let lex_comments () =
  match toks "a // comment\n b" with
  | [ Lexer.Ident "a"; Lexer.Ident "b"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let lex_bad_char () =
  match Irdl_support.Diag.protect (fun () -> toks "a ~ b") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected lex error"

(* ---------------- parser ---------------- *)

let parse_one src = check_ok "parse" (Parser.parse_one src)

let parses_cmath () =
  let d = parse_one Irdl_dialects.Cmath.source in
  Alcotest.(check string) "name" "cmath" d.Ast.d_name;
  Alcotest.(check int) "ops" 8 (List.length (Ast.ops d));
  Alcotest.(check int) "types" 3 (List.length (Ast.types d));
  Alcotest.(check int) "attrs" 1 (List.length (Ast.attrs d));
  Alcotest.(check int) "aliases" 4 (List.length (Ast.aliases d));
  Alcotest.(check int) "enums" 1 (List.length (Ast.enums d));
  Alcotest.(check int) "constraints" 1 (List.length (Ast.constraint_defs d));
  Alcotest.(check int) "params" 1 (List.length (Ast.param_defs d))

let op_fields () =
  let d =
    parse_one
      {|Dialect d {
          Operation op {
            ConstraintVars (T: !AnyType)
            Operands (a: !T, b: Variadic<!T>)
            Results (r: !T)
            Attributes (k: string)
            Successors (s1, s2)
            Format "$a : $T"
            Summary "sum"
            CppConstraint "check($_self)"
          }
        }|}
  in
  match Ast.ops d with
  | [ op ] ->
      Alcotest.(check int) "vars" 1 (List.length op.o_constraint_vars);
      Alcotest.(check int) "operands" 2 (List.length op.o_operands);
      Alcotest.(check int) "results" 1 (List.length op.o_results);
      Alcotest.(check int) "attrs" 1 (List.length op.o_attributes);
      Alcotest.(check (option (list string))) "succs" (Some [ "s1"; "s2" ])
        op.o_successors;
      Alcotest.(check (option string)) "format" (Some "$a : $T") op.o_format;
      Alcotest.(check (option string)) "summary" (Some "sum") op.o_summary;
      Alcotest.(check (list string)) "cpp" [ "check($_self)" ]
        op.o_cpp_constraints
  | _ -> Alcotest.fail "expected one op"

let region_fields () =
  let d =
    parse_one
      {|Dialect d {
          Operation loop {
            Region body {
              Arguments (iv: !i32)
              Terminator stop
            }
          }
          Operation stop { Successors () }
        }|}
  in
  match Ast.ops d with
  | [ loop; stop ] ->
      Alcotest.(check (option (list string))) "terminator marker" (Some [])
        stop.o_successors;
      (match loop.o_regions with
      | [ r ] ->
          Alcotest.(check string) "region name" "body" r.r_name;
          Alcotest.(check int) "args" 1 (List.length r.r_args);
          Alcotest.(check (option string)) "terminator" (Some "stop")
            r.r_terminator
      | _ -> Alcotest.fail "expected one region")
  | _ -> Alcotest.fail "expected two ops"

let cexpr_shapes () =
  let e src = check_ok src (Parser.parse_constraint_string src) in
  (match e "AnyOf<!f32, !f64>" with
  | Ast.C_ref { name = "AnyOf"; args = Some [ _; _ ]; _ } -> ()
  | _ -> Alcotest.fail "AnyOf");
  (match e "3 : int32_t" with
  | Ast.C_int { value = 3L; kind = Some "int32_t"; _ } -> ()
  | _ -> Alcotest.fail "int literal");
  (match e "[!f32, string]" with
  | Ast.C_list { elems = [ _; _ ]; _ } -> ()
  | _ -> Alcotest.fail "list");
  (match e "!complex<FloatType>" with
  | Ast.C_ref { prefix = Ast.P_type; name = "complex"; args = Some [ _ ]; _ }
    ->
      ()
  | _ -> Alcotest.fail "parametric");
  match e "signedness.Signed" with
  | Ast.C_ref { prefix = Ast.P_bare; name = "signedness.Signed"; args = None; _ }
    ->
      ()
  | _ -> Alcotest.fail "dotted"

let parse_errors () =
  let err what src needle =
    check_err_containing what needle (Parser.parse_one src)
  in
  err "no dialect" "Type t {}" "expected 'Dialect'";
  err "bad item" "Dialect d { Frobnicate }" "expected a dialect item";
  err "unclosed" "Dialect d {" "expected a dialect item";
  err "bad field" "Dialect d { Operation o { Bogus } }" "expected an operation field";
  err "param needs class" "Dialect d { TypeOrAttrParam P { Summary \"x\" } }"
    "CppClassName";
  err "two dialects for parse_one" "Dialect a {} Dialect b {}"
    "exactly one"

let multiple_dialects () =
  let ds = check_ok "multi" (Parser.parse_file "Dialect a {} Dialect b {}") in
  Alcotest.(check (list string)) "names" [ "a"; "b" ]
    (List.map (fun (d : Ast.dialect) -> d.d_name) ds)

(* ---------------- pretty-printer round trip ---------------- *)

(* Structural equality of ASTs modulo locations. *)
let rec cexpr_equal (a : Ast.cexpr) (b : Ast.cexpr) =
  match (a, b) with
  | Ast.C_ref a, Ast.C_ref b ->
      a.prefix = b.prefix && a.name = b.name
      && Option.equal (List.equal cexpr_equal) a.args b.args
  | Ast.C_int a, Ast.C_int b -> a.value = b.value && a.kind = b.kind
  | Ast.C_string a, Ast.C_string b -> a.value = b.value
  | Ast.C_list a, Ast.C_list b -> List.equal cexpr_equal a.elems b.elems
  | _ -> false

let param_equal (a : Ast.param) (b : Ast.param) =
  a.p_name = b.p_name && cexpr_equal a.p_constraint b.p_constraint

let op_equal (a : Ast.op_def) (b : Ast.op_def) =
  a.o_name = b.o_name
  && List.equal param_equal a.o_constraint_vars b.o_constraint_vars
  && List.equal param_equal a.o_operands b.o_operands
  && List.equal param_equal a.o_results b.o_results
  && List.equal param_equal a.o_attributes b.o_attributes
  && a.o_successors = b.o_successors
  && a.o_format = b.o_format
  && a.o_summary = b.o_summary
  && a.o_cpp_constraints = b.o_cpp_constraints
  && List.equal
       (fun (x : Ast.region_def) (y : Ast.region_def) ->
         x.r_name = y.r_name
         && List.equal param_equal x.r_args y.r_args
         && x.r_terminator = y.r_terminator)
       a.o_regions b.o_regions

let item_equal (a : Ast.item) (b : Ast.item) =
  match (a, b) with
  | Ast.I_op x, Ast.I_op y -> op_equal x y
  | Ast.I_type x, Ast.I_type y ->
      x.t_name = y.t_name
      && List.equal param_equal x.t_params y.t_params
      && x.t_summary = y.t_summary
      && x.t_cpp_constraints = y.t_cpp_constraints
  | Ast.I_attr x, Ast.I_attr y ->
      x.a_name = y.a_name && List.equal param_equal x.a_params y.a_params
  | Ast.I_alias x, Ast.I_alias y ->
      x.al_name = y.al_name && x.al_params = y.al_params
      && cexpr_equal x.al_body y.al_body
  | Ast.I_enum x, Ast.I_enum y -> x.e_name = y.e_name && x.e_cases = y.e_cases
  | Ast.I_constraint x, Ast.I_constraint y ->
      x.c_name = y.c_name && cexpr_equal x.c_base y.c_base
      && x.c_cpp_constraints = y.c_cpp_constraints
  | Ast.I_param x, Ast.I_param y ->
      x.tp_name = y.tp_name && x.tp_class_name = y.tp_class_name
      && x.tp_parser = y.tp_parser && x.tp_printer = y.tp_printer
  | _ -> false

let dialect_equal (a : Ast.dialect) (b : Ast.dialect) =
  a.d_name = b.d_name && List.equal item_equal a.d_items b.d_items

let roundtrip_source name src () =
  let d = parse_one src in
  let printed = Pp.dialect_to_string d in
  let d' =
    check_ok (name ^ " reparse") (Parser.parse_one ~file:(name ^ ".pp") printed)
  in
  if not (dialect_equal d d') then
    Alcotest.failf "round trip changed the AST of %s:\n%s" name printed

let corpus_roundtrip () =
  List.iter
    (fun (e : Irdl_dialects.Corpus.entry) ->
      roundtrip_source e.name e.source ())
    Irdl_dialects.Corpus.all

let suite =
  [
    tc "lexer: identifiers" lex_idents;
    tc "lexer: literals" lex_literals;
    tc "lexer: punctuation" lex_puncts;
    tc "lexer: comments" lex_comments;
    tc "lexer: bad character" lex_bad_char;
    tc "parses the paper's cmath dialect" parses_cmath;
    tc "operation fields" op_fields;
    tc "region fields and terminator marker" region_fields;
    tc "constraint expression shapes" cexpr_shapes;
    tc "parse errors" parse_errors;
    tc "multiple dialects per file" multiple_dialects;
    tc "pp/parse round trip: cmath"
      (roundtrip_source "cmath" Irdl_dialects.Cmath.source);
    tc "pp/parse round trip: all 28 corpus dialects" corpus_roundtrip;
  ]
