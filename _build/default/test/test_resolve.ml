(** Tests for name resolution: builtins, aliases, enums, constraint
    definitions, cross-dialect references, and the error cases. *)

open Irdl_core
module C = Constraint_expr
open Util

let resolve_dialect src =
  Result.bind (Parser.parse_one src) Resolve.resolve_dialect

let resolve_ok src = check_ok "resolve" (resolve_dialect src)

let slot_constraint (dl : Resolve.dialect) ~op ~operand =
  let o = List.find (fun (o : Resolve.op) -> o.op_name = op) dl.dl_ops in
  let s = List.find (fun (s : Resolve.slot) -> s.s_name = operand) o.op_operands in
  s.s_constraint

let builtin_types_resolve () =
  let dl =
    resolve_ok
      {|Dialect d { Operation o { Operands (a: !f32, b: !i32, c: !index) } }|}
  in
  (match slot_constraint dl ~op:"o" ~operand:"a" with
  | C.Eq (Irdl_ir.Attr.Type t) ->
      Alcotest.(check bool) "f32" true (Irdl_ir.Attr.equal_ty Irdl_ir.Attr.f32 t)
  | c -> Alcotest.failf "unexpected %s" (C.to_string c));
  match slot_constraint dl ~op:"o" ~operand:"c" with
  | C.Eq (Irdl_ir.Attr.Type Irdl_ir.Attr.Index) -> ()
  | c -> Alcotest.failf "unexpected %s" (C.to_string c)

let builtin_constructors () =
  let dl =
    resolve_ok
      {|Dialect d {
          Operation o {
            Operands (a: AnyOf<!f32, !f64>, b: And<!AnyType, Not<!f32>>,
                      c: Variadic<!AnyType>, d: Optional<!i32>)
            Attributes (s: string, n: int32_t, l: [string, uint8_t],
                        arr: array<int64_t>, any: AnyParam)
          } }|}
  in
  (match slot_constraint dl ~op:"o" ~operand:"a" with
  | C.Any_of [ _; _ ] -> ()
  | c -> Alcotest.failf "AnyOf: %s" (C.to_string c));
  (match slot_constraint dl ~op:"o" ~operand:"b" with
  | C.And [ C.Any_type; C.Not _ ] -> ()
  | c -> Alcotest.failf "And/Not: %s" (C.to_string c));
  (match slot_constraint dl ~op:"o" ~operand:"c" with
  | C.Variadic C.Any_type -> ()
  | c -> Alcotest.failf "Variadic: %s" (C.to_string c));
  match slot_constraint dl ~op:"o" ~operand:"d" with
  | C.Optional _ -> ()
  | c -> Alcotest.failf "Optional: %s" (C.to_string c)

let alias_expansion () =
  let dl =
    resolve_ok
      {|Dialect d {
          Alias !F = !AnyOf<!f32, !f64>
          Type box { Parameters (t: !F) }
          Operation o { Operands (x: !box<F>) }
        }|}
  in
  match slot_constraint dl ~op:"o" ~operand:"x" with
  | C.Base_type { dialect = "d"; name = "box"; params = Some [ C.Any_of _ ] } ->
      ()
  | c -> Alcotest.failf "alias: %s" (C.to_string c)

let parametric_alias () =
  let dl =
    resolve_ok
      {|Dialect d {
          Type box { Parameters (t: !AnyType) }
          Alias !BoxOr<T> = AnyOf<!box<!AnyType>, T>
          Operation o { Operands (x: !BoxOr<!f32>) }
        }|}
  in
  match slot_constraint dl ~op:"o" ~operand:"x" with
  | C.Any_of [ C.Base_type _; C.Eq _ ] -> ()
  | c -> Alcotest.failf "parametric alias: %s" (C.to_string c)

let alias_cycle_rejected () =
  check_err_containing "cycle" "recursively"
    (resolve_dialect
       {|Dialect d {
           Alias !A = !B
           Alias !B = !A
           Operation o { Operands (x: !A) }
         }|})

let alias_arity_mismatch () =
  check_err_containing "arity" "expects"
    (resolve_dialect
       {|Dialect d {
           Alias !P<T> = AnyOf<T, !f32>
           Operation o { Operands (x: !P) }
         }|})

let enums_resolve () =
  let dl =
    resolve_ok
      {|Dialect d {
          Enum sign { Pos, Neg }
          Type t { Parameters (s: sign) }
          Alias !PosT = !t<sign.Pos>
          Operation o { Operands (x: !PosT) }
        }|}
  in
  match slot_constraint dl ~op:"o" ~operand:"x" with
  | C.Base_type { params = Some [ C.Eq (Irdl_ir.Attr.Enum e) ]; _ } ->
      Alcotest.(check string) "case" "Pos" e.case;
      Alcotest.(check string) "enum" "sign" e.enum
  | c -> Alcotest.failf "enum: %s" (C.to_string c)

let unknown_enum_case () =
  check_err_containing "bad case" "no constructor"
    (resolve_dialect
       {|Dialect d {
           Enum sign { Pos, Neg }
           Type t { Parameters (s: sign.Zero) }
         }|})

let constraint_def_inlined () =
  (* A Constraint without CppConstraint is a plain alias for its base. *)
  let dl =
    resolve_ok
      {|Dialect d {
          Constraint Small : uint8_t { Summary "small" }
          Operation o { Attributes (n: Small) }
        }|}
  in
  let o = List.hd dl.dl_ops in
  match (List.hd o.op_attributes).s_constraint with
  | C.Int_param _ -> ()
  | c -> Alcotest.failf "inline: %s" (C.to_string c)

let constraint_def_native () =
  let dl =
    resolve_ok
      {|Dialect d {
          Constraint Bounded : uint32_t { CppConstraint "$_self <= 32" }
          Operation o { Attributes (n: Bounded) }
        }|}
  in
  let o = List.hd dl.dl_ops in
  match (List.hd o.op_attributes).s_constraint with
  | C.Native { name = "Bounded"; snippets = [ "$_self <= 32" ]; _ } -> ()
  | c -> Alcotest.failf "native: %s" (C.to_string c)

let type_or_attr_param () =
  let dl =
    resolve_ok
      {|Dialect d {
          TypeOrAttrParam P { CppClassName "char*" }
          Attribute a { Parameters (x: P) }
        }|}
  in
  let a = List.hd dl.dl_attrs in
  match (List.hd a.td_params).s_constraint with
  | C.Native_param { name = "P"; class_name = "char*" } -> ()
  | c -> Alcotest.failf "param: %s" (C.to_string c)

let cross_dialect_refs () =
  let dl =
    resolve_ok
      {|Dialect d {
          Operation o { Operands (t: !builtin.tensor, a: !other.thing<!f32>)
                        Attributes (x: #other.attr) }
        }|}
  in
  (match slot_constraint dl ~op:"o" ~operand:"t" with
  | C.Base_type { dialect = "builtin"; name = "tensor"; params = None } -> ()
  | c -> Alcotest.failf "builtin.tensor: %s" (C.to_string c));
  (match slot_constraint dl ~op:"o" ~operand:"a" with
  | C.Base_type { dialect = "other"; name = "thing"; params = Some [ _ ] } ->
      ()
  | c -> Alcotest.failf "other.thing: %s" (C.to_string c));
  let o = List.hd dl.dl_ops in
  match (List.hd o.op_attributes).s_constraint with
  | C.Base_attr { dialect = "other"; name = "attr"; _ } -> ()
  | c -> Alcotest.failf "other.attr: %s" (C.to_string c)

let builtin_namespace_shorthand () =
  (* f32 is shorthand for builtin.f32 (paper section 4.2). *)
  let dl =
    resolve_ok {|Dialect d { Operation o { Operands (x: builtin.f32) } }|}
  in
  match slot_constraint dl ~op:"o" ~operand:"x" with
  | C.Eq (Irdl_ir.Attr.Type (Irdl_ir.Attr.Float Irdl_ir.Attr.F32)) -> ()
  | c -> Alcotest.failf "builtin.f32: %s" (C.to_string c)

let same_dialect_qualified () =
  let dl =
    resolve_ok
      {|Dialect d {
          Type t { Parameters () }
          Operation o { Operands (x: !d.t) }
        }|}
  in
  match slot_constraint dl ~op:"o" ~operand:"x" with
  | C.Base_type { dialect = "d"; name = "t"; _ } -> ()
  | c -> Alcotest.failf "d.t: %s" (C.to_string c)

let constraint_vars_scope () =
  let dl =
    resolve_ok
      {|Dialect d {
          Operation o {
            ConstraintVars (T: !AnyType, U: AnyOf<T, !f32>)
            Operands (a: !T, b: !U)
          }
        }|}
  in
  (match slot_constraint dl ~op:"o" ~operand:"a" with
  | C.Var { C.v_name = "T"; _ } -> ()
  | c -> Alcotest.failf "var T: %s" (C.to_string c));
  (* U's own constraint references T *)
  match slot_constraint dl ~op:"o" ~operand:"b" with
  | C.Var { C.v_name = "U"; v_constraint = C.Any_of [ C.Var _; _ ] } -> ()
  | c -> Alcotest.failf "var U: %s" (C.to_string c)

let local_arity_checked () =
  check_err_containing "type arity" "expects 1 parameters"
    (resolve_dialect
       {|Dialect d {
           Type box { Parameters (t: !AnyType) }
           Operation o { Operands (x: !box<!f32, !f32>) }
         }|})

let variadic_positions () =
  check_err_containing "nested variadic" "top-level"
    (resolve_dialect
       {|Dialect d { Operation o { Operands (x: AnyOf<Variadic<!f32>, !f32>) } }|});
  check_err_containing "type param variadic" "not allowed"
    (resolve_dialect
       {|Dialect d { Type t { Parameters (x: Variadic<!f32>) } }|});
  check_err_containing "variadic attr" "cannot be Variadic"
    (resolve_dialect
       {|Dialect d { Operation o { Attributes (x: Variadic<string>) } }|})

let duplicates_rejected () =
  check_err_containing "dup op" "duplicate operation"
    (resolve_dialect {|Dialect d { Operation o {} Operation o {} }|});
  check_err_containing "dup type" "duplicate type"
    (resolve_dialect {|Dialect d { Type t {} Type t {} }|});
  check_err_containing "dup var" "duplicate constraint variable"
    (resolve_dialect
       {|Dialect d { Operation o { ConstraintVars (T: !AnyType, T: !AnyType) } }|})

let unknown_name () =
  check_err_containing "unknown" "unknown name"
    (resolve_dialect {|Dialect d { Operation o { Operands (x: Mystery) } }|})

let terminator_qualification () =
  let dl =
    resolve_ok
      {|Dialect d {
          Operation stop { Successors () }
          Operation loop { Region body { Terminator stop } }
          Operation loop2 { Region body { Terminator other.end } }
        }|}
  in
  let region op_name =
    let o = List.find (fun (o : Resolve.op) -> o.op_name = op_name) dl.dl_ops in
    List.hd o.op_regions
  in
  Alcotest.(check (option string)) "local qualified" (Some "d.stop")
    (region "loop").reg_terminator;
  Alcotest.(check (option string)) "foreign kept" (Some "other.end")
    (region "loop2").reg_terminator

let suite =
  [
    tc "builtin types resolve" builtin_types_resolve;
    tc "builtin constraint constructors" builtin_constructors;
    tc "alias expansion" alias_expansion;
    tc "parametric aliases" parametric_alias;
    tc "alias cycles rejected" alias_cycle_rejected;
    tc "alias arity mismatch" alias_arity_mismatch;
    tc "enums and enum constructors" enums_resolve;
    tc "unknown enum case rejected" unknown_enum_case;
    tc "Constraint without C++ is inlined" constraint_def_inlined;
    tc "Constraint with C++ becomes Native" constraint_def_native;
    tc "TypeOrAttrParam becomes Native_param" type_or_attr_param;
    tc "cross-dialect references" cross_dialect_refs;
    tc "builtin namespace shorthand" builtin_namespace_shorthand;
    tc "same-dialect qualified references" same_dialect_qualified;
    tc "constraint variables scope left-to-right" constraint_vars_scope;
    tc "local type arity checked" local_arity_checked;
    tc "variadic only in legal positions" variadic_positions;
    tc "duplicate definitions rejected" duplicates_rejected;
    tc "unknown names rejected" unknown_name;
    tc "terminator name qualification" terminator_qualification;
  ]
