(** Tests over the 28-dialect corpus: it must parse, resolve, register, and
    reproduce the headline counts of the paper's section 6. *)

open Util
module R = Irdl_core.Resolve

let corpus = lazy (check_ok "analyze corpus" (Irdl_dialects.Corpus.analyze ()))

let dialect name =
  List.find (fun (dl : R.dialect) -> dl.dl_name = name) (Lazy.force corpus)

let all_load_and_register () =
  let ctx = Irdl_ir.Context.create () in
  let dls = check_ok "register corpus" (Irdl_dialects.Corpus.load_all ctx) in
  Alcotest.(check int) "28 dialects" 28 (List.length dls);
  let ops, tys, attrs = Irdl_ir.Context.op_stats ctx in
  Alcotest.(check int) "ops registered" 942 ops;
  Alcotest.(check int) "types registered" 62 tys;
  Alcotest.(check int) "attrs registered" 32 attrs

let table1_names_match () =
  let names =
    List.map (fun (e : Irdl_dialects.Corpus.entry) -> e.name)
      Irdl_dialects.Corpus.all
  in
  Alcotest.(check int) "28 entries" 28 (List.length names);
  Alcotest.(check int) "unique" 28 (List.length (List.sort_uniq compare names));
  (* spot-check Table 1 membership *)
  List.iter
    (fun n ->
      Alcotest.(check bool) ("has " ^ n) true (List.mem n names))
    [ "affine"; "builtin"; "llvm"; "spv"; "tosa"; "scf"; "pdl_interp" ]

let op_counts_shape () =
  (* Figure 4's shape: builtin/arm_neon smallest at 3; llvm/spv above 100. *)
  let count n = List.length (dialect n).dl_ops in
  Alcotest.(check int) "builtin" 3 (count "builtin");
  Alcotest.(check int) "arm_neon" 3 (count "arm_neon");
  Alcotest.(check bool) "llvm > 100" true (count "llvm" > 100);
  Alcotest.(check bool) "spv > 100" true (count "spv" > 100);
  Alcotest.(check bool) "spv is largest" true
    (List.for_all
       (fun (dl : R.dialect) -> List.length dl.dl_ops <= count "spv")
       (Lazy.force corpus))

let every_op_has_summary () =
  List.iter
    (fun (dl : R.dialect) ->
      List.iter
        (fun (op : R.op) ->
          if op.op_summary = None then
            Alcotest.failf "%s.%s has no summary" dl.dl_name op.op_name)
        dl.dl_ops)
    (Lazy.force corpus)

let type_attr_dialect_split () =
  (* 14 of the 28 dialects define a type or an attribute (paper 6.3). *)
  let n =
    List.length
      (List.filter
         (fun (dl : R.dialect) -> dl.dl_types <> [] || dl.dl_attrs <> [])
         (Lazy.force corpus))
  in
  Alcotest.(check bool) "13..15 dialects define types/attrs" true
    (n >= 12 && n <= 16)

let history_is_consistent () =
  List.iter
    (fun (e : Irdl_dialects.Corpus.entry) ->
      (* checkpoints are sorted and positive *)
      let months = List.map fst e.history in
      let sorted = List.sort compare months in
      if months <> sorted then
        Alcotest.failf "%s: history not sorted" e.name;
      List.iter
        (fun (m, v) ->
          if v < 0 then Alcotest.failf "%s: negative checkpoint" e.name;
          ignore (Irdl_analysis.Evolution.month_index m))
        e.history)
    Irdl_dialects.Corpus.all

let corpus_ir_instantiation () =
  (* Registered corpus dialects verify actual IR: a small arith/scf
     program against the dynamically loaded definitions. *)
  let ctx = Irdl_ir.Context.create () in
  let _ = check_ok "register" (Irdl_dialects.Corpus.load_all ctx) in
  let ops =
    check_ok "parse program"
      (Irdl_ir.Parser.parse_ops ctx
         {|
"builtin.module"() ({
  "func.func"() ({
  ^bb0(%a: i32, %b: i32):
    %c = "arith.addi"(%a, %b) : (i32, i32) -> i32
    %d = "arith.muli"(%c, %c) : (i32, i32) -> i32
    %cmp = "arith.cmpi"(%c, %d) {predicate = #arith<cmpi_predicate.slt>} : (i32, i32) -> i1
    "func.return"(%cmp) : (i1) -> ()
  }) {sym_name = "f"} : () -> ()
}) {sym_name = "m"} : () -> ()
|})
  in
  List.iter (verify_ok ctx) ops;
  (* and rejects ill-typed uses of the same definitions *)
  let bad =
    check_ok "parse bad"
      (Irdl_ir.Parser.parse_ops ctx
         {|
"t.wrap"() ({
^bb0(%a: i32, %b: f32):
  %c = "arith.addi"(%a, %b) : (i32, f32) -> i32
}) : () -> ()
|})
  in
  List.iter (fun op -> verify_err ctx op) bad

let scf_for_verifies () =
  let ctx = Irdl_ir.Context.create () in
  let _ = check_ok "register" (Irdl_dialects.Corpus.load_all ctx) in
  let ops =
    check_ok "scf.for"
      (Irdl_ir.Parser.parse_ops ctx
         {|
"t.wrap"() ({
^bb0(%lb: index, %ub: index, %step: index, %init: f32):
  %sum = "scf.for"(%lb, %ub, %step, %init) ({
  ^body(%iv: index, %acc: f32):
    "scf.yield"(%acc) : (f32) -> ()
  }) : (index, index, index, f32) -> f32
}) : () -> ()
|})
  in
  List.iter (verify_ok ctx) ops

let variadic_segments_in_corpus () =
  (* linalg.generic requires operandSegmentSizes (two variadic groups). *)
  let ctx = Irdl_ir.Context.create () in
  let _ = check_ok "register" (Irdl_dialects.Corpus.load_all ctx) in
  let tensor =
    Irdl_ir.Attr.dynamic ~dialect:"builtin" ~name:"tensor"
      [ Irdl_ir.Attr.array [ Irdl_ir.Attr.int 4L ];
        Irdl_ir.Attr.typ Irdl_ir.Attr.f32 ]
  in
  let v () =
    Irdl_ir.Graph.Op.result
      (Irdl_ir.Graph.Op.create ~result_tys:[ tensor ] "t.v")
      0
  in
  let blk = Irdl_ir.Graph.Block.create ~arg_tys:[ Irdl_ir.Attr.f32; Irdl_ir.Attr.f32 ] () in
  Irdl_ir.Graph.Block.append blk
    (Irdl_ir.Graph.Op.create
       ~operands:[ List.hd (Irdl_ir.Graph.Block.args blk) ]
       "linalg.yield");
  let region = Irdl_ir.Graph.Region.create ~blocks:[ blk ] () in
  let attrs segs =
    [
      ("indexing_maps", Irdl_ir.Attr.array [ Irdl_ir.Attr.Unit; Irdl_ir.Attr.Unit ]);
      ("iterator_types", Irdl_ir.Attr.array [ Irdl_ir.Attr.string "parallel" ]);
      ("operandSegmentSizes",
       Irdl_ir.Attr.array (List.map (fun n -> Irdl_ir.Attr.int (Int64.of_int n)) segs));
    ]
  in
  let generic =
    Irdl_ir.Graph.Op.create ~operands:[ v (); v () ] ~attrs:(attrs [ 1; 1 ])
      ~regions:[ region ] "linalg.generic"
  in
  verify_ok ctx generic;
  (* without the segment attribute it must fail *)
  let blk2 = Irdl_ir.Graph.Block.create ~arg_tys:[ Irdl_ir.Attr.f32; Irdl_ir.Attr.f32 ] () in
  Irdl_ir.Graph.Block.append blk2
    (Irdl_ir.Graph.Op.create
       ~operands:[ List.hd (Irdl_ir.Graph.Block.args blk2) ]
       "linalg.yield");
  let region2 = Irdl_ir.Graph.Region.create ~blocks:[ blk2 ] () in
  let attrs_without_segments =
    List.filter (fun (k, _) -> k <> "operandSegmentSizes") (attrs [ 1; 1 ])
  in
  let bad =
    Irdl_ir.Graph.Op.create ~operands:[ v (); v () ]
      ~attrs:attrs_without_segments ~regions:[ region2 ] "linalg.generic"
  in
  verify_err ~containing:"operandSegmentSizes" ctx bad

let suite =
  [
    tc "all 28 dialects load and register (942 ops)" all_load_and_register;
    tc "Table 1 dialect names" table1_names_match;
    tc "Figure 4 op-count shape" op_counts_shape;
    tc "every corpus op is documented" every_op_has_summary;
    tc "type/attr-defining dialect count" type_attr_dialect_split;
    tc "history checkpoints well-formed" history_is_consistent;
    tc "corpus definitions verify real IR" corpus_ir_instantiation;
    tc "scf.for with loop-carried values verifies" scf_for_verifies;
    tc "linalg.generic needs segment sizes" variadic_segments_in_corpus;
  ]
