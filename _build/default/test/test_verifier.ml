(** Tests for the verification driver: structural invariants, nested
    type/attribute verification, strict contexts and multi-diagnostics. *)

open Irdl_ir
open Util

let terminator_placement () =
  let ctx = cmath_ctx () in
  (* a terminator op anywhere but last in its block *)
  let blk = Graph.Block.create () in
  Graph.Block.append blk (Graph.Op.create "cmath.range_loop_terminator");
  Graph.Block.append blk (Graph.Op.create "t.after");
  let wrap =
    Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.w"
  in
  verify_err ~containing:"must be the last" ctx wrap

let successors_cross_region () =
  let ctx = cmath_ctx () in
  (* successor pointing into a sibling region *)
  let other_blk = Graph.Block.create () in
  let _other_region = Graph.Region.create ~blocks:[ other_blk ] () in
  let blk = Graph.Block.create ~arg_tys:[ Attr.i1 ] () in
  let cond = List.hd (Graph.Block.args blk) in
  Graph.Block.append blk
    (Graph.Op.create ~operands:[ cond ]
       ~successors:[ other_blk; other_blk ]
       "cmath.conditional_branch");
  let wrap =
    Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.w"
  in
  verify_err ~containing:"same region" ctx wrap

let nested_type_verification () =
  let ctx = cmath_ctx () in
  (* an invalid dynamic type hiding inside an attribute *)
  let bad_ty = Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.int 1L ] in
  verify_err ctx
    (Graph.Op.create ~attrs:[ ("t", Attr.typ bad_ty) ] "t.x");
  (* ... inside an array attribute *)
  verify_err ctx
    (Graph.Op.create
       ~attrs:[ ("arr", Attr.array [ Attr.typ bad_ty ]) ]
       "t.x");
  (* ... inside a function type *)
  verify_err ctx
    (Graph.Op.create
       ~result_tys:[ Attr.Function { inputs = [ bad_ty ]; outputs = [] } ]
       "t.x");
  (* ... as a dynamic-type parameter of another dynamic type *)
  verify_err ctx
    (Graph.Op.create
       ~result_tys:
         [ Attr.dynamic ~dialect:"x" ~name:"wrap" [ Attr.typ bad_ty ] ]
       "t.x")

let nested_attr_verification () =
  let ctx = cmath_ctx () in
  let bad =
    Attr.Dyn_attr { dialect = "cmath"; name = "StringAttr"; params = [] }
  in
  verify_err ~containing:"expects 1 parameters" ctx
    (Graph.Op.create ~attrs:[ ("a", bad) ] "t.x");
  verify_err ctx
    (Graph.Op.create ~attrs:[ ("a", Attr.dict [ ("inner", bad) ]) ] "t.x")

let strict_context () =
  let ctx = Context.create ~allow_unregistered:false () in
  verify_err ~containing:"unregistered type" ctx
    (Graph.Op.create
       ~result_tys:[ Attr.dynamic ~dialect:"ghost" ~name:"t" [] ]
       "ghost.op")

let verify_all_collects () =
  let ctx = cmath_ctx () in
  let v1 = Graph.Op.create ~result_tys:[ complex_f32 ] "t.v" in
  let v2 = Graph.Op.create ~result_tys:[ complex_f64 ] "t.v" in
  let blk = Graph.Block.create () in
  Graph.Block.append blk v1;
  Graph.Block.append blk v2;
  (* two independent failures *)
  Graph.Block.append blk
    (Graph.Op.create
       ~operands:[ Graph.Op.result v1 0; Graph.Op.result v2 0 ]
       ~result_tys:[ complex_f32 ] "cmath.mul");
  Graph.Block.append blk
    (Graph.Op.create ~operands:[ Graph.Op.result v1 0 ]
       ~result_tys:[ Attr.f64 ] "cmath.norm");
  let wrap =
    Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.w"
  in
  let diags = Verifier.verify_all ctx wrap in
  Alcotest.(check int) "two diagnostics" 2 (List.length diags);
  (* verify stops at the first *)
  match Verifier.verify ctx wrap with
  | Ok () -> Alcotest.fail "expected failure"
  | Error _ -> ()

let is_terminator_fallback () =
  (* unregistered ops with successors count as terminators structurally *)
  let ctx = Context.create () in
  let blk = Graph.Block.create () in
  let b2 = Graph.Block.create () in
  let region = Graph.Region.create ~blocks:[ blk; b2 ] () in
  Graph.Block.append blk (Graph.Op.create ~successors:[ b2 ] "x.br");
  Graph.Block.append b2 (Graph.Op.create "x.end");
  let wrap = Graph.Op.create ~regions:[ region ] "t.w" in
  verify_ok ctx wrap

let mk_i32s n =
  List.init n (fun _ ->
      Graph.Op.result (Graph.Op.create ~result_tys:[ Attr.i32 ] "t.v") 0)

let empty_block_with_terminator_requirement () =
  let ctx = cmath_ctx () in
  let blk = Graph.Block.create ~arg_tys:[ Attr.i32 ] () in
  (* body block exists but is empty: terminator requirement fails *)
  let v = mk_i32s 3 in
  let loop =
    Graph.Op.create ~operands:v
      ~regions:[ Graph.Region.create ~blocks:[ blk ] () ]
      "cmath.range_loop"
  in
  verify_err ~containing:"must end with" ctx loop

let multi_block_region_with_terminator_requirement () =
  let ctx = cmath_ctx () in
  let b1 = Graph.Block.create ~arg_tys:[ Attr.i32 ] () in
  Graph.Block.append b1 (Graph.Op.create "cmath.range_loop_terminator");
  let b2 = Graph.Block.create () in
  Graph.Block.append b2 (Graph.Op.create "cmath.range_loop_terminator");
  let loop =
    Graph.Op.create ~operands:(mk_i32s 3)
      ~regions:[ Graph.Region.create ~blocks:[ b1; b2 ] () ]
      "cmath.range_loop"
  in
  verify_err ~containing:"single block" ctx loop

let region_arg_count () =
  let ctx = cmath_ctx () in
  let blk = Graph.Block.create ~arg_tys:[ Attr.i32; Attr.i32 ] () in
  Graph.Block.append blk (Graph.Op.create "cmath.range_loop_terminator");
  let loop =
    Graph.Op.create ~operands:(mk_i32s 3)
      ~regions:[ Graph.Region.create ~blocks:[ blk ] () ]
      "cmath.range_loop"
  in
  verify_err ~containing:"region argument" ctx loop

let function_types_verified () =
  let ctx = Context.create ~allow_unregistered:false () in
  let _ = check_ok "load" (Irdl_core.Irdl.load_one ctx "Dialect d { Type t {} }") in
  (* !d.t with wrong arity nested in tuple *)
  verify_err ctx
    (Graph.Op.create
       ~result_tys:
         [ Attr.Tuple [ Attr.dynamic ~dialect:"d" ~name:"t" [ Attr.int 1L ] ] ]
       "d.op")

let suite =
  [
    tc "terminators must be last" terminator_placement;
    tc "successors stay in their region" successors_cross_region;
    tc "types nested in attributes are verified" nested_type_verification;
    tc "attributes nested in attributes are verified" nested_attr_verification;
    tc "strict contexts reject unregistered types" strict_context;
    tc "verify_all collects every failure" verify_all_collects;
    tc "unregistered ops with successors are terminators"
      is_terminator_fallback;
    tc "empty region vs terminator requirement"
      empty_block_with_terminator_requirement;
    tc "single-block requirement" multi_block_region_with_terminator_requirement;
    tc "region argument arity" region_arg_count;
    tc "types nested in aggregates are verified" function_types_verified;
  ]
