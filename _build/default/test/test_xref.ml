(** Tests for the cross-reference index (the LSP foundation). *)

open Util
module X = Irdl_analysis.Xref

let sample =
  {|Dialect d {
  Alias !F = !AnyOf<!f32, !f64>
  Alias !Unused = !i32
  Enum mode { A, B }
  Constraint Small : uint8_t { CppConstraint "$_self < 8" }
  Type box { Parameters (t: !F, m: mode) }
  Operation make {
    Operands (x: !box<F, mode.A>)
    Results (r: !box)
    Attributes (n: Small)
  }
  Operation fin { Successors () }
  Operation loop {
    Region body { Arguments (iv: !i32) Terminator fin }
  }
}|}

let entries =
  lazy
    (let d = check_ok "parse" (Irdl_core.Parser.parse_one sample) in
     X.index d)

let get name =
  match X.find (Lazy.force entries) name with
  | Some e -> e
  | None -> Alcotest.failf "no entry for %s" name

let definitions_present () =
  List.iter
    (fun (name, kind) ->
      let e = get name in
      Alcotest.(check string) (name ^ " kind") kind
        (X.def_kind_to_string e.X.e_kind))
    [
      ("d", "dialect"); ("F", "alias"); ("mode", "enum");
      ("Small", "constraint"); ("box", "type"); ("make", "operation");
      ("fin", "operation");
    ]

let reference_counts () =
  (* F: used in box's parameter and in make's operand (inside !box<F, ...>) *)
  Alcotest.(check int) "F refs" 2 (List.length (get "F").X.e_refs);
  (* box: make's operand and result *)
  Alcotest.(check int) "box refs" 2 (List.length (get "box").X.e_refs);
  (* mode: box param, and via the constructor reference mode.A *)
  Alcotest.(check bool) "mode referenced" true ((get "mode").X.e_refs <> []);
  (* fin: referenced as loop's terminator *)
  Alcotest.(check int) "fin refs" 1 (List.length (get "fin").X.e_refs);
  Alcotest.(check int) "Small refs" 1 (List.length (get "Small").X.e_refs)

let unused_detection () =
  let dead = X.unreferenced (Lazy.force entries) in
  Alcotest.(check (list string)) "only !Unused is dead" [ "Unused" ]
    (List.map (fun e -> e.X.e_name) dead)

let go_to_definition () =
  (* A position inside the box type definition resolves to box, not d. *)
  let e = get "box" in
  let pos = e.X.e_loc.start_pos in
  match X.definition_at (Lazy.force entries) pos with
  | Some found -> Alcotest.(check string) "tightest" "box" found.X.e_name
  | None -> Alcotest.fail "no definition at position"

let qualified_self_references () =
  let d =
    check_ok "parse"
      (Irdl_core.Parser.parse_one
         {|Dialect q {
             Type t {}
             Operation o { Operands (x: !q.t) }
           }|})
  in
  let idx = X.index d in
  match X.find idx "t" with
  | Some e -> Alcotest.(check int) "q.t counts as a ref to t" 1
                (List.length e.X.e_refs)
  | None -> Alcotest.fail "t not indexed"

let corpus_indexes () =
  (* The index builds for every corpus dialect and finds no dead aliases
     (the corpus only defines helpers it uses). *)
  List.iter
    (fun (e : Irdl_dialects.Corpus.entry) ->
      let d = check_ok e.name (Irdl_core.Parser.parse_one e.source) in
      let idx = X.index d in
      Alcotest.(check bool) (e.name ^ " non-empty") true (List.length idx > 1);
      match X.unreferenced idx with
      | [] -> ()
      | dead ->
          Alcotest.failf "%s has unreferenced definitions: %s" e.name
            (String.concat ", " (List.map (fun x -> x.X.e_name) dead)))
    Irdl_dialects.Corpus.all

let suite =
  [
    tc "definitions are indexed" definitions_present;
    tc "reference counts" reference_counts;
    tc "unreferenced definitions flagged" unused_detection;
    tc "go-to-definition by position" go_to_definition;
    tc "self-qualified references resolve" qualified_self_references;
    tc "corpus indexes cleanly with no dead aliases" corpus_indexes;
  ]
