  $ cat > poly.irdl <<'EOF'
  > Dialect poly {
  >   Type poly {
  >     Parameters (coeff: !AnyOf<!f32, !f64>)
  >     Summary "A dense univariate polynomial"
  >   }
  >   Operation eval {
  >     ConstraintVars (T: !AnyOf<!f32, !f64>)
  >     Operands (p: !poly<!T>, at: !T)
  >     Results (res: !T)
  >     Format "$p, $at : $T"
  >     Summary "Evaluate a polynomial at a point"
  >   }
  >   Operation mul {
  >     ConstraintVars (T: !poly<AnyOf<!f32, !f64>>)
  >     Operands (lhs: !T, rhs: !T)
  >     Results (res: !T)
  >     Summary "Polynomial multiplication"
  >   }
  > }
  > EOF
  $ cat > opt.pat <<'EOF'
  > Pattern eval_of_mul {
  >   Match (poly.eval (poly.mul $p $q) $x)
  >   Rewrite (arith.mulf (poly.eval $p $x : $x) (poly.eval $q $x : $x) : $x)
  > }
  > EOF
  $ cat > prog.mlir <<'EOF'
  > "func.func"() ({
  > ^bb0(%p: !poly.poly<f32>, %q: !poly.poly<f32>, %x: f32):
  >   %pq = "poly.mul"(%p, %q) : (!poly.poly<f32>, !poly.poly<f32>) -> !poly.poly<f32>
  >   %y = poly.eval %pq, %x : f32
  >   "func.return"(%y) : (f32) -> ()
  > }) {sym_name = "eval_product"} : () -> ()
  > EOF
  $ irdl-opt -d poly.irdl prog.mlir
  $ irdl-opt -d poly.irdl -p opt.pat prog.mlir
  $ cat > bad.mlir <<'EOF'
  > "t.wrap"() ({
  > ^bb0(%p: !poly.poly<i32>):
  >   "t.use"(%p) : (!poly.poly<i32>) -> ()
  > }) : () -> ()
  > EOF
  $ irdl-opt -d poly.irdl bad.mlir
  $ echo 'Dialect d { Operation o { Operands (x: !f32) Summary "an op" } }' > d.irdl
  $ irdl-stats --fmt d.irdl
  $ irdl-stats --doc poly poly.irdl | head -8
  $ irdl-stats --only table1 | tail -3
  $ cat > nodom.mlir <<'XEOF'
  > "t.wrap"() ({
  > ^bb0:
  >   "t.use"(%later) : (i32) -> ()
  >   %later = "t.def"() : () -> i32
  > }) : () -> ()
  > XEOF
  $ irdl-opt --dominance --verify-only nodom.mlir
  $ irdl-opt --verify-only nodom.mlir
  $ irdl-stats --xref F poly.irdl 2>/dev/null || true
  $ irdl-stats --xref poly poly.irdl | head -2
  $ cat > dup.mlir <<'XEOF'
  > "func.func"() ({
  > ^bb0(%p: !poly.poly<f32>, %x: f32):
  >   %a = poly.eval %p, %x : f32
  >   %b = poly.eval %p, %x : f32
  >   "t.use"(%a, %b) : (f32, f32) -> ()
  > }) : () -> ()
  > XEOF
  $ irdl-opt -d poly.irdl --cse dup.mlir
