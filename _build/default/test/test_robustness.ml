(** Robustness properties: no parser entry point may escape with anything
    but a diagnostic, whatever the input. *)

open QCheck2.Gen
open Util

let printable_gen = string_size ~gen:printable (int_range 0 120)

(* Strings biased toward the parsers' own token vocabulary: plain random
   printables rarely get past the first token. *)
let token_soup_gen =
  let frag =
    oneofl
      [ "Dialect"; "Operation"; "Type"; "Operands"; "("; ")"; "{"; "}"; "<";
        ">"; "!f32"; "#a"; "$x"; ":"; ","; "="; "["; "]"; "\"s\""; "42"; "-";
        "%v"; "^bb"; "@f"; "d.op"; "Variadic"; "AnyOf"; "->"; "//c\n"; " " ]
  in
  let* frags = list_size (int_range 0 40) frag in
  return (String.concat "" frags)

let never_raises name f gen =
  QCheck2.Test.make ~name ~count:500 gen (fun src ->
      match f src with Ok _ | Error _ -> true | exception _ -> false)

let irdl_parser_total g name =
  never_raises name (fun src -> Irdl_core.Parser.parse_file src) g

let ir_parser_total g name =
  never_raises name
    (fun src -> Irdl_ir.Parser.parse_ops (Irdl_ir.Context.create ()) src)
    g

let pattern_parser_total g name =
  never_raises name
    (fun src ->
      Irdl_rewrite.Textual.parse_patterns (Irdl_ir.Context.create ()) src)
    g

let load_total g name =
  never_raises name
    (fun src -> Irdl_core.Irdl.load (Irdl_ir.Context.create ()) src)
    g

(* Verification never raises either, even on badly-shaped ops. *)
let verify_total () =
  let ctx = cmath_ctx () in
  let open Irdl_ir in
  let detached_with_everything =
    Graph.Op.create
      ~operands:
        [ Graph.Op.result (Graph.Op.create ~result_tys:[ Attr.None_ty ] "t.v") 0 ]
      ~result_tys:[ Attr.None_ty ]
      ~attrs:[ ("operandSegmentSizes", Attr.string "not an array") ]
      ~regions:[ Graph.Region.create () ]
      "cmath.mul"
  in
  match Verifier.verify ctx detached_with_everything with
  | Ok () -> Alcotest.fail "should not verify"
  | Error _ -> ()

let suite =
  [
    QCheck_alcotest.to_alcotest
      (irdl_parser_total printable_gen "IRDL parser total on noise");
    QCheck_alcotest.to_alcotest
      (irdl_parser_total token_soup_gen "IRDL parser total on token soup");
    QCheck_alcotest.to_alcotest
      (ir_parser_total printable_gen "IR parser total on noise");
    QCheck_alcotest.to_alcotest
      (ir_parser_total token_soup_gen "IR parser total on token soup");
    QCheck_alcotest.to_alcotest
      (pattern_parser_total token_soup_gen "pattern parser total");
    QCheck_alcotest.to_alcotest
      (load_total token_soup_gen "load (parse+resolve+register) total");
    tc "verifier total on malformed ops" verify_total;
  ]
