(** Property test: for randomly generated IRDL ASTs, pretty-printing then
    re-parsing is the identity (up to source locations). This exercises the
    lexer, parser and printer against inputs far from the hand-written
    corpus. *)

open Irdl_core
open QCheck2.Gen

let loc = Irdl_support.Loc.unknown

let name_gen =
  let* base = oneofl [ "op"; "ty"; "attr"; "x"; "foo"; "value_2"; "T" ] in
  let* n = int_range 0 99 in
  return (Printf.sprintf "%s%d" base n)

let dotted_gen =
  let* a = name_gen in
  let* b = name_gen in
  oneofl [ a; a ^ "." ^ b ]

let string_lit_gen =
  (* printable, escape-friendly strings *)
  let* s = string_size ~gen:(char_range 'a' 'z') (int_range 0 8) in
  let* with_esc = bool in
  return (if with_esc then s ^ "\\n\"" else s)

let prefix_gen = oneofl [ Ast.P_type; Ast.P_attr; Ast.P_bare ]

let rec cexpr_gen n =
  if n = 0 then
    oneof
      [
        (let* prefix = prefix_gen in
         let* name = dotted_gen in
         return (Ast.C_ref { prefix; name; args = None; loc }));
        (let* value = map Int64.of_int small_signed_int in
         let* kind = opt (oneofl [ "int32_t"; "uint8_t"; "int64_t" ]) in
         return (Ast.C_int { value; kind; loc }));
        (let* value = string_size ~gen:(char_range 'a' 'z') (int_range 0 6) in
         return (Ast.C_string { value; loc }));
      ]
  else
    frequency
      [
        (3, cexpr_gen 0);
        ( 2,
          let* prefix = prefix_gen in
          let* name = dotted_gen in
          let* args = opt (list_size (int_range 0 3) (cexpr_gen (n - 1))) in
          return (Ast.C_ref { prefix; name; args; loc }) );
        ( 1,
          let* elems = list_size (int_range 0 3) (cexpr_gen (n - 1)) in
          return (Ast.C_list { elems; loc }) );
      ]

let param_gen =
  let* p_name = name_gen in
  let* p_constraint = cexpr_gen 2 in
  return { Ast.p_name; p_constraint; p_loc = loc }

let params_gen = list_size (int_range 0 3) param_gen

let summary_gen = opt (string_size ~gen:(char_range 'a' 'z') (int_range 1 10))

let cpp_gen =
  list_size (int_range 0 2)
    (string_size ~gen:(char_range 'a' 'z') (int_range 1 12))

let type_def_gen =
  let* t_name = name_gen in
  let* t_params = params_gen in
  let* t_summary = summary_gen in
  let* t_cpp_constraints = cpp_gen in
  return
    (Ast.I_type { t_name; t_params; t_summary; t_cpp_constraints; t_loc = loc })

let attr_def_gen =
  let* a_name = name_gen in
  let* a_params = params_gen in
  let* a_summary = summary_gen in
  let* a_cpp_constraints = cpp_gen in
  return
    (Ast.I_attr { a_name; a_params; a_summary; a_cpp_constraints; a_loc = loc })

let region_gen =
  let* r_name = name_gen in
  let* r_args = params_gen in
  let* r_terminator = opt dotted_gen in
  return { Ast.r_name; r_args; r_terminator; r_loc = loc }

let op_def_gen =
  let* o_name = name_gen in
  let* o_constraint_vars = params_gen in
  let* o_operands = params_gen in
  let* o_results = params_gen in
  let* o_attributes = params_gen in
  let* o_regions = list_size (int_range 0 2) region_gen in
  let* o_successors = opt (list_size (int_range 0 2) name_gen) in
  let* o_summary = summary_gen in
  let* o_cpp_constraints = cpp_gen in
  return
    (Ast.I_op
       {
         o_name; o_summary; o_constraint_vars; o_operands; o_results;
         o_attributes; o_regions; o_successors;
         o_format = None (* format strings have their own compiler tests *);
         o_cpp_constraints; o_loc = loc;
       })

let alias_gen =
  let* al_prefix = prefix_gen in
  let* al_name = name_gen in
  let* al_params = list_size (int_range 0 2) name_gen in
  let* al_body = cexpr_gen 2 in
  return (Ast.I_alias { al_prefix; al_name; al_params; al_body; al_loc = loc })

let enum_gen =
  let* e_name = name_gen in
  let* e_cases = list_size (int_range 0 4) name_gen in
  return (Ast.I_enum { e_name; e_cases; e_loc = loc })

let constraint_gen =
  let* c_name = name_gen in
  let* c_base = cexpr_gen 2 in
  let* c_summary = summary_gen in
  let* c_cpp_constraints = cpp_gen in
  return
    (Ast.I_constraint
       { c_name; c_base; c_summary; c_cpp_constraints; c_loc = loc })

let param_def_gen =
  let* tp_name = name_gen in
  let* tp_summary = summary_gen in
  let* tp_class_name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let* tp_parser = opt (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) in
  let* tp_printer = opt (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) in
  return
    (Ast.I_param
       { tp_name; tp_summary; tp_class_name; tp_parser; tp_printer;
         tp_loc = loc })

let item_gen =
  frequency
    [ (3, op_def_gen); (2, type_def_gen); (1, attr_def_gen); (1, alias_gen);
      (1, enum_gen); (1, constraint_gen); (1, param_def_gen) ]

let dialect_gen =
  let* d_name = name_gen in
  let* d_items = list_size (int_range 0 6) item_gen in
  return { Ast.d_name; d_items; d_loc = loc }

let roundtrip_prop =
  QCheck2.Test.make ~name:"IRDL pp/parse roundtrip on random ASTs" ~count:300
    ~print:(fun d -> Pp.dialect_to_string d)
    dialect_gen
    (fun d ->
      let printed = Pp.dialect_to_string d in
      match Parser.parse_one printed with
      | Error _ -> false
      | Ok d' ->
          (* reuse the structural equality from the frontend tests *)
          Test_irdl_frontend.dialect_equal d d')

let string_escape_prop =
  QCheck2.Test.make ~name:"string literal escaping roundtrips" ~count:300
    string_lit_gen (fun s ->
      let printed = Printf.sprintf "%S" s in
      match Lexer.tokenize printed with
      | [ { tok = Lexer.Str s'; _ }; { tok = Lexer.Eof; _ } ] -> s = s'
      | _ -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest roundtrip_prop;
    QCheck_alcotest.to_alcotest string_escape_prop;
  ]
