(** Tests for the builder API. *)

open Irdl_ir
open Util

let insertion_point () =
  let blk = Graph.Block.create () in
  let b = Builder.at_end_of blk in
  let op1 = Builder.build b "t.a" in
  let op2 = Builder.build b "t.b" in
  Alcotest.(check (list string)) "appended in order" [ "t.a"; "t.b" ]
    (List.map Graph.Op.name (Graph.Block.ops blk));
  Alcotest.(check bool) "parents set" true
    (op1.Graph.op_parent <> None && op2.Graph.op_parent <> None)

let detached_builder () =
  let b = Builder.create () in
  Alcotest.(check bool) "no block" true (Builder.insertion_block b = None);
  let op = Builder.build b "t.a" in
  Alcotest.(check bool) "detached" true (op.Graph.op_parent = None);
  let blk = Graph.Block.create () in
  Builder.set_insertion_point b blk;
  let op2 = Builder.build b "t.b" in
  Alcotest.(check bool) "attached" true (op2.Graph.op_parent <> None)

let build1_returns_value () =
  let blk = Graph.Block.create () in
  let b = Builder.at_end_of blk in
  let v = Builder.build1 b ~result_ty:Attr.f32 "t.c" in
  Alcotest.(check bool) "f32" true (Attr.equal_ty Attr.f32 (Graph.Value.ty v))

let region_with_block () =
  let seen = ref 0 in
  let region =
    Builder.region_with_block ~arg_tys:[ Attr.i32; Attr.f32 ] (fun b args ->
        seen := List.length args;
        ignore (Builder.build b "t.x"))
  in
  Alcotest.(check int) "args passed" 2 !seen;
  match Graph.Region.entry region with
  | Some e -> Alcotest.(check int) "ops" 1 (List.length (Graph.Block.ops e))
  | None -> Alcotest.fail "entry expected"

let module_and_func () =
  let ctx = cmath_ctx () in
  let m =
    Builder.module_op (fun b ->
        ignore
          (Builder.func_op ~name:"f" ~inputs:[ Attr.f32 ] ~outputs:[ Attr.f32 ]
             (fun fb args ->
               ignore (Builder.build fb ~operands:args "func.return"))
          |> fun f ->
            match Builder.insertion_block b with
            | Some blk -> Graph.Block.append blk f
            | None -> ()))
  in
  Alcotest.(check string) "module name" "builtin.module" (Graph.Op.name m);
  let names = ref [] in
  Graph.Op.walk m ~f:(fun o -> names := Graph.Op.name o :: !names);
  Alcotest.(check (list string)) "structure"
    [ "builtin.module"; "func.func"; "func.return" ]
    (List.rev !names);
  verify_ok ctx m

let suite =
  [
    tc "insertion point appends" insertion_point;
    tc "builder without insertion point" detached_builder;
    tc "build1 returns the result value" build1_returns_value;
    tc "region_with_block" region_with_block;
    tc "module/func helpers" module_and_func;
  ]
