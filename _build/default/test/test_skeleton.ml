(** Spec-based exercising of the generated verifiers: synthesize an example
    instance of every (synthesizable) operation in the 28-dialect corpus and
    check that it verifies against its own dynamically registered
    definition. This closes the loop between the IRDL frontend, the
    synthesizer and the verifier generator at corpus scale. *)

open Util
module R = Irdl_core.Resolve
module S = Irdl_core.Skeleton

let corpus_env =
  lazy
    (let ctx = Irdl_ir.Context.create () in
     let dls = check_ok "register" (Irdl_dialects.Corpus.load_all ctx) in
     let lookup ~kind ~dialect ~name =
       List.find_opt (fun (dl : R.dialect) -> dl.dl_name = dialect) dls
       |> Fun.flip Option.bind (fun (dl : R.dialect) ->
              let defs =
                match kind with `Type -> dl.dl_types | `Attr -> dl.dl_attrs
              in
              List.find_opt (fun (td : R.typedef) -> td.td_name = name) defs)
     in
     (ctx, dls, lookup))

let simple_example_types () =
  let _, _, lookup = Lazy.force corpus_env in
  (* !builtin.tensor with no parameter constraints synthesizes the
     registered definition's parameters. *)
  let c =
    Irdl_core.Constraint_expr.Base_type
      { dialect = "builtin"; name = "tensor"; params = None }
  in
  match S.example_ty ~lookup c with
  | Some (Irdl_ir.Attr.Dynamic { dialect = "builtin"; name = "tensor"; params })
    ->
      Alcotest.(check int) "two params" 2 (List.length params)
  | _ -> Alcotest.fail "expected a tensor type"

let corpus_instantiation_coverage () =
  let ctx, dls, lookup = Lazy.force corpus_env in
  let op_lookup ~dialect ~name =
    List.find_opt (fun (dl : R.dialect) -> dl.dl_name = dialect) dls
    |> Fun.flip Option.bind (fun (dl : R.dialect) ->
           List.find_opt (fun (o : R.op) -> o.op_name = name) dl.dl_ops)
  in
  let total = ref 0 in
  let synthesized = ref 0 in
  let verified = ref 0 in
  let failures = ref [] in
  List.iter
    (fun (dl : R.dialect) ->
      List.iter
        (fun (op : R.op) ->
          incr total;
          match S.instantiate_op ~lookup ~op_lookup ~dialect:dl.dl_name op with
          | Error _ -> ()
          | Ok instance -> (
              incr synthesized;
              match Irdl_ir.Verifier.verify_op ctx instance with
              | Ok () -> incr verified
              | Error d ->
                  failures :=
                    Fmt.str "%s.%s: %s" dl.dl_name op.op_name
                      (Irdl_support.Diag.to_string d)
                    :: !failures))
        dl.dl_ops)
    dls;
  (* Every synthesized instance must verify. *)
  (match !failures with
  | [] -> ()
  | fs ->
      Alcotest.failf "%d synthesized ops failed verification, e.g.:\n%s"
        (List.length fs)
        (String.concat "\n" (List.filteri (fun i _ -> i < 5) fs)));
  Alcotest.(check int) "all ops considered" 942 !total;
  (* Nearly the whole corpus is synthesizable: ops skipped are terminators
     with successors or have several variadic groups. *)
  Alcotest.(check bool)
    (Printf.sprintf "at least 800 ops synthesizable (got %d)" !synthesized)
    true (!synthesized >= 800);
  Alcotest.(check int) "synthesized = verified" !synthesized !verified

let cmath_instantiation () =
  let ctx = Irdl_ir.Context.create () in
  let dl = check_ok "load" (Irdl_dialects.Cmath.load ctx) in
  let op_lookup ~dialect ~name =
    if dialect <> "cmath" then None
    else List.find_opt (fun (o : R.op) -> o.op_name = name) dl.R.dl_ops
  in
  let results =
    List.map
      (fun (op : R.op) ->
        (op.op_name, S.instantiate_op ~op_lookup ~dialect:"cmath" op))
      dl.R.dl_ops
  in
  (* Everything synthesizes — including range_loop, whose body block and
     range_loop_terminator are built recursively — except the multi-successor
     conditional_branch. *)
  let ok name =
    match List.assoc name results with
    | Ok instance -> verify_ok ctx instance
    | Error r -> Alcotest.failf "%s skipped: %s" name (S.skip_reason_to_string r)
  in
  ok "mul";
  ok "norm";
  ok "log";
  ok "create_constant";
  ok "range_loop";
  ok "range_loop_terminator";
  (* Synthesis is best-effort w.r.t. native predicates: append_vector's
     naive example (sizes 1, 1 -> 1) is correctly rejected by the
     registered IRDL-C++ hook. *)
  (match List.assoc "append_vector" results with
  | Ok instance -> verify_err ~containing:"native constraint" ctx instance
  | Error r ->
      Alcotest.failf "append_vector skipped: %s" (S.skip_reason_to_string r));
  match List.assoc "conditional_branch" results with
  | Error S.Is_terminator -> ()
  | _ -> Alcotest.fail "conditional_branch should be skipped (terminator)"

let unsatisfiable_reported () =
  let ast =
    check_ok "parse"
      (Irdl_core.Parser.parse_one
         {|Dialect d {
             Operation weird { Operands (x: Not<!AnyType>) }
           }|})
  in
  let dl = check_ok "resolve" (Irdl_core.Resolve.resolve_dialect ast) in
  match S.instantiate_op ~dialect:"d" (List.hd dl.R.dl_ops) with
  | Error (S.Unsatisfiable_slot s) ->
      Alcotest.(check bool) "names the slot" true
        (String.length s > 0)
  | _ -> Alcotest.fail "expected unsatisfiable"

let suite =
  [
    tc "lookup-driven parameter synthesis" simple_example_types;
    tc "corpus-wide: synthesized ops verify" corpus_instantiation_coverage;
    tc "cmath instantiation and skip reasons" cmath_instantiation;
    tc "unsatisfiable slots are reported" unsatisfiable_reported;
  ]
