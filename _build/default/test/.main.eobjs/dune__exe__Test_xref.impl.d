test/test_xref.ml: Alcotest Irdl_analysis Irdl_core Irdl_dialects Lazy List String Util
