test/test_builder.ml: Alcotest Attr Builder Graph Irdl_ir List Util
