test/test_attr.ml: Alcotest Attr Context Float Irdl_ir List Parser QCheck2 QCheck_alcotest Util
