test/test_graph.ml: Alcotest Attr Graph Irdl_ir List Util
