test/test_robustness.ml: Alcotest Attr Graph Irdl_core Irdl_ir Irdl_rewrite QCheck2 QCheck_alcotest String Util Verifier
