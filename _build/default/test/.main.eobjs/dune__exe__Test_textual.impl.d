test/test_textual.ml: Alcotest Graph Irdl_ir Irdl_rewrite List Util
