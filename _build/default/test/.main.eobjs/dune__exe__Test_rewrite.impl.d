test/test_rewrite.ml: Alcotest Attr Context Driver Graph Irdl_ir Irdl_rewrite List Option Pattern Rewriter Util
