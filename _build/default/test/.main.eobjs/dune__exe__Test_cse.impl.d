test/test_cse.ml: Alcotest Context Graph Irdl_ir Irdl_rewrite Util
