test/test_ir_property.ml: Array Attr Context Float Graph Hashtbl Int64 Irdl_ir List Parser Printer Printf QCheck2 QCheck_alcotest
