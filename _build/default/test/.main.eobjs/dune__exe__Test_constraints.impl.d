test/test_constraints.ml: Alcotest Attr Int64 Irdl_core Irdl_ir List QCheck2 QCheck_alcotest Result Util
