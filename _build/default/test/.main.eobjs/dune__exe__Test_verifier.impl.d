test/test_verifier.ml: Alcotest Attr Context Graph Irdl_core Irdl_ir List Util Verifier
