test/test_pp_property.ml: Ast Int64 Irdl_core Irdl_support Lexer Parser Pp Printf QCheck2 QCheck_alcotest Test_irdl_frontend
