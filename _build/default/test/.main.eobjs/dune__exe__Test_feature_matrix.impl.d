test/test_feature_matrix.ml: Alcotest Attr Graph Int64 Irdl_core Irdl_dialects Irdl_ir List Util
