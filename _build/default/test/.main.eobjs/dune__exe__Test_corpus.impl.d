test/test_corpus.ml: Alcotest Int64 Irdl_analysis Irdl_core Irdl_dialects Irdl_ir Lazy List Util
