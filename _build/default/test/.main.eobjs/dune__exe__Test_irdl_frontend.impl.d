test/test_irdl_frontend.ml: Alcotest Ast Irdl_core Irdl_dialects Irdl_support Lexer List Option Parser Pp Util
