test/test_printer.ml: Alcotest Attr Context Fmt Graph Irdl_ir List Printer String Util
