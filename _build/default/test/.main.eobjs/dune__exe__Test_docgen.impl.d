test/test_docgen.ml: Alcotest Irdl_analysis Irdl_core Irdl_dialects Irdl_ir Lazy List String Util
