test/test_ir_parser.ml: Alcotest Attr Context Graph Irdl_ir List Parser Util
