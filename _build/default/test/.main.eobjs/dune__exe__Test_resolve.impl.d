test/test_resolve.ml: Alcotest Constraint_expr Irdl_core Irdl_ir List Parser Resolve Result Util
