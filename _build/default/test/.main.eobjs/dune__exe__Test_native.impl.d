test/test_native.ml: Alcotest Attr Context Graph Irdl_core Irdl_dialects Irdl_ir Util
