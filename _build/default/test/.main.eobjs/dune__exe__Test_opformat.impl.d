test/test_opformat.ml: Alcotest Attr Fmt Graph Irdl_core Irdl_ir List Opfmt Option Parser Printer Util
