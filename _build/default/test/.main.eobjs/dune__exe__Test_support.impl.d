test/test_support.ml: Alcotest Diag Irdl_support Loc Sbuf String Util
