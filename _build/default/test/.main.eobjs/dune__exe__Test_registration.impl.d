test/test_registration.ml: Alcotest Attr Context Graph Int64 Irdl_core Irdl_ir List Util
