test/test_dominance.ml: Alcotest Attr Dominance Graph Irdl_ir Irdl_support Util
