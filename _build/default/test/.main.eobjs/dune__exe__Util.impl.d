test/util.ml: Alcotest Irdl_core Irdl_dialects Irdl_ir Irdl_support String
