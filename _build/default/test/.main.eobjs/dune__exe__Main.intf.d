test/main.mli:
