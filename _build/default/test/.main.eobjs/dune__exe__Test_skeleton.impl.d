test/test_skeleton.ml: Alcotest Fmt Fun Irdl_core Irdl_dialects Irdl_ir Irdl_support Lazy List Option Printf String Util
