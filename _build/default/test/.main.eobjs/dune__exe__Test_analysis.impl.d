test/test_analysis.ml: Alcotest Float Irdl_analysis Irdl_core Irdl_dialects Lazy List Result String Util
