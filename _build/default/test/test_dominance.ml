(** Tests for SSA dominance checking. *)

open Irdl_ir
open Util

let dom_ok ctx src =
  let op = parse_op ctx src in
  match Dominance.verify op with
  | Ok () -> ()
  | Error d -> Alcotest.failf "expected dominance: %s" (Irdl_support.Diag.to_string d)

let dom_err ctx src =
  let op = parse_op ctx src in
  match Dominance.verify op with
  | Ok () -> Alcotest.fail "expected a dominance violation"
  | Error _ -> ()

let straight_line () =
  let ctx = cmath_ctx () in
  dom_ok ctx
    {|
"f.f"() ({
^bb0(%a: i32):
  %b = "t.id"(%a) : (i32) -> i32
  "t.use"(%b, %a) : (i32, i32) -> ()
}) : () -> ()
|}

let use_before_def () =
  let ctx = cmath_ctx () in
  dom_err ctx
    {|
"f.f"() ({
^bb0:
  "t.use"(%later) : (i32) -> ()
  %later = "t.def"() : () -> i32
}) : () -> ()
|}

let self_reference () =
  (* an op using its own result *)
  let def = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.def" in
  Graph.Op.set_operands def [ Graph.Op.result def 0 ];
  let blk = Graph.Block.create () in
  Graph.Block.append blk def;
  let wrap =
    Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.w"
  in
  match Dominance.verify wrap with
  | Ok () -> Alcotest.fail "self-use must not dominate"
  | Error _ -> ()

let cross_block_dominance () =
  let ctx = cmath_ctx () in
  (* bb0 dominates both successors: uses are fine *)
  dom_ok ctx
    {|
"f.f"() ({
^bb0(%c: i1):
  %x = "t.def"() : () -> i32
  "cmath.conditional_branch"(%c)[^then, ^else] : (i1) -> ()
^then:
  "t.use"(%x) : (i32) -> ()
^else:
  "t.use"(%x) : (i32) -> ()
}) : () -> ()
|};
  (* a value defined in one branch is not visible in the sibling branch *)
  dom_err ctx
    {|
"f.f"() ({
^bb0(%c: i1):
  "cmath.conditional_branch"(%c)[^then, ^else] : (i1) -> ()
^then:
  %y = "t.def"() : () -> i32
  "t.end"() : () -> ()
^else:
  "t.use"(%y) : (i32) -> ()
}) : () -> ()
|}

let diamond_join () =
  (* Values from either branch do not dominate the join; values from the
     entry do. *)
  let ctx = cmath_ctx () in
  dom_err ctx
    {|
"f.f"() ({
^bb0(%c: i1):
  "cmath.conditional_branch"(%c)[^l, ^r] : (i1) -> ()
^l:
  %v = "t.def"() : () -> i32
  "t.br"()[^join] : () -> ()
^r:
  "t.br"()[^join] : () -> ()
^join:
  "t.use"(%v) : (i32) -> ()
}) : () -> ()
|};
  dom_ok ctx
    {|
"f.f"() ({
^bb0(%c: i1):
  %v = "t.def"() : () -> i32
  "cmath.conditional_branch"(%c)[^l, ^r] : (i1) -> ()
^l:
  "t.br"()[^join] : () -> ()
^r:
  "t.br"()[^join] : () -> ()
^join:
  "t.use"(%v) : (i32) -> ()
}) : () -> ()
|}

let loop_back_edge () =
  (* The header's block argument dominates the loop body; a body-defined
     value does not dominate the header. *)
  let ctx = cmath_ctx () in
  dom_ok ctx
    {|
"f.f"() ({
^entry(%init: i32):
  "t.br"()[^header] : () -> ()
^header:
  "t.use"(%init) : (i32) -> ()
  "t.br"()[^body] : () -> ()
^body:
  %step = "t.def"() : () -> i32
  "t.use"(%step) : (i32) -> ()
  "t.br"()[^header] : () -> ()
}) : () -> ()
|};
  dom_err ctx
    {|
"f.f"() ({
^entry:
  "t.br"()[^header] : () -> ()
^header:
  "t.use"(%step) : (i32) -> ()
  "t.br"()[^body] : () -> ()
^body:
  %step = "t.def"() : () -> i32
  "t.br"()[^header] : () -> ()
}) : () -> ()
|}

let enclosing_region_visibility () =
  let ctx = cmath_ctx () in
  (* outer values visible inside nested regions *)
  dom_ok ctx
    {|
"f.f"() ({
^bb0(%lb: i32):
  "cmath.range_loop"(%lb, %lb, %lb) ({
  ^body(%iv: i32):
    "t.use"(%lb, %iv) : (i32, i32) -> ()
    "cmath.range_loop_terminator"() : () -> ()
  }) : (i32, i32, i32) -> ()
}) : () -> ()
|};
  (* inner values do not escape their region *)
  dom_err ctx
    {|
"f.f"() ({
^bb0(%lb: i32):
  "cmath.range_loop"(%lb, %lb, %lb) ({
  ^body(%iv: i32):
    %inner = "t.def"() : () -> i32
    "cmath.range_loop_terminator"() : () -> ()
  }) : (i32, i32, i32) -> ()
  "t.use"(%inner) : (i32) -> ()
}) : () -> ()
|}

let op_result_not_visible_in_own_region () =
  (* an op's own results are not available inside its regions *)
  let blk = Graph.Block.create () in
  let region = Graph.Region.create ~blocks:[ blk ] () in
  let op = Graph.Op.create ~regions:[ region ] ~result_tys:[ Attr.i32 ] "t.loop" in
  Graph.Block.append blk
    (Graph.Op.create ~operands:[ Graph.Op.result op 0 ] "t.use");
  let outer_blk = Graph.Block.create () in
  Graph.Block.append outer_blk op;
  let wrap =
    Graph.Op.create
      ~regions:[ Graph.Region.create ~blocks:[ outer_blk ] () ]
      "t.w"
  in
  match Dominance.verify wrap with
  | Ok () -> Alcotest.fail "own-region use of own result must fail"
  | Error _ -> ()

let unreachable_blocks_permissive () =
  (* MLIR is permissive inside unreachable code; so are we. *)
  let ctx = cmath_ctx () in
  dom_ok ctx
    {|
"f.f"() ({
^bb0:
  "t.end"() : () -> ()
^dead1:
  "t.use"(%deadv) : (i32) -> ()
  "t.br"()[^dead2] : () -> ()
^dead2:
  %deadv = "t.def"() : () -> i32
  "t.br"()[^dead1] : () -> ()
}) : () -> ()
|}

let suite =
  [
    tc "straight-line code" straight_line;
    tc "use before def in a block" use_before_def;
    tc "self reference" self_reference;
    tc "cross-block dominance" cross_block_dominance;
    tc "diamond join" diamond_join;
    tc "loops and back edges" loop_back_edge;
    tc "enclosing-region visibility" enclosing_region_visibility;
    tc "op results not visible in own regions"
      op_result_not_visible_in_own_region;
    tc "unreachable code is permissive" unreachable_blocks_permissive;
  ]
