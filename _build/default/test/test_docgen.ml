(** Tests for the markdown documentation generator, plus a per-dialect
    op-count snapshot guarding the corpus against accidental drift. *)

open Util
module R = Irdl_core.Resolve

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let corpus = lazy (check_ok "corpus" (Irdl_dialects.Corpus.analyze ()))

let dialect name =
  List.find (fun (dl : R.dialect) -> dl.dl_name = name) (Lazy.force corpus)

let scf_doc () =
  let doc = Irdl_analysis.Docgen.dialect_to_string (dialect "scf") in
  List.iter
    (fun needle ->
      if not (contains doc needle) then
        Alcotest.failf "scf doc lacks %S" needle)
    [
      "# Dialect `scf`";
      "### operation `for`";
      "A counted loop with loop-carried values";
      "terminated by `scf.yield`";
      "native verifier";
      "- terminator (no successors)";
    ]

let cmath_doc () =
  let ctx = Irdl_ir.Context.create () in
  let dl = check_ok "cmath" (Irdl_dialects.Cmath.load ctx) in
  let doc = Irdl_analysis.Docgen.dialect_to_string dl in
  List.iter
    (fun needle ->
      if not (contains doc needle) then
        Alcotest.failf "cmath doc lacks %S" needle)
    [
      "### type `complex`";
      "### enum `signedness`";
      "Constructors: Signless, Signed, Unsigned";
      "custom syntax: `$lhs, $rhs : $T.elementType`";
      "terminator with successors: next_bb_true, next_bb_false";
      "### attribute `StringAttr`";
    ]

(* Snapshot of per-dialect op counts; update deliberately when the corpus
   changes, never accidentally. *)
let expected_op_counts =
  [
    ("affine", 14); ("amx", 14); ("arith", 43); ("arm_sve", 32);
    ("arm_neon", 3); ("async", 25); ("builtin", 3); ("complex", 20);
    ("emitc", 5); ("gpu", 30); ("linalg", 9); ("llvm", 142); ("math", 24);
    ("memref", 29); ("nvvm", 25); ("pdl", 15); ("pdl_interp", 37);
    ("quant", 10); ("rocdl", 37); ("scf", 11); ("shape", 39);
    ("sparse_tensor", 8); ("spv", 187); ("std", 46); ("tensor", 13);
    ("tosa", 69); ("vector", 36); ("x86vector", 16);
  ]

let corpus_snapshot () =
  List.iter
    (fun (name, expected) ->
      Alcotest.(check int) name expected (List.length (dialect name).dl_ops))
    expected_op_counts;
  Alcotest.(check int) "total" 942
    (List.fold_left (fun a (_, n) -> a + n) 0 expected_op_counts)

let suite =
  [
    tc "scf documentation renders" scf_doc;
    tc "cmath documentation covers all constructs" cmath_doc;
    tc "corpus per-dialect op-count snapshot" corpus_snapshot;
  ]
