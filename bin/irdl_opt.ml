(* irdl-opt: the mlir-opt analog of this project.

   Loads IRDL dialect definitions (from files and/or the bundled corpus),
   then parses, verifies, optionally canonicalizes (DCE), and re-prints an
   IR file — the full dynamic-registration flow of paper §3: no code is
   generated or compiled at any point. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let fail_diag d =
  Fmt.epr "%a@." Irdl_support.Diag.pp d;
  exit 1

let run dialect_files pattern_files with_corpus with_cmath input generic
    verify_only dce cse dominance strict verify_stats verbose =
  setup_logs verbose;
  let ctx = Irdl_ir.Context.create () in
  let native = Irdl_core.Native.create ~strict () in
  if with_cmath then
    Irdl_dialects.Cmath.register_hooks native;
  (* Dialect definitions: bundled corpus, cmath, then user files. *)
  if with_corpus then (
    match Irdl_dialects.Corpus.load_all ~native ctx with
    | Ok _ -> ()
    | Error d -> fail_diag d);
  if with_cmath then (
    match Irdl_core.Irdl.load_one ~native ctx Irdl_dialects.Cmath.source with
    | Ok _ -> ()
    | Error d -> fail_diag d);
  List.iter
    (fun path ->
      match Irdl_core.Irdl.load ~native ~file:path ctx (read_file path) with
      | Ok dls ->
          Logs.info (fun m ->
              m "loaded %d dialect(s) from %s" (List.length dls) path)
      | Error d -> fail_diag d)
    dialect_files;
  (* The IR itself. *)
  (* Textual rewrite patterns (fully dynamic pattern-based flow, paper §3). *)
  let patterns =
    List.concat_map
      (fun path ->
        match
          Irdl_rewrite.Textual.parse_patterns ctx ~file:path (read_file path)
        with
        | Ok ps ->
            Logs.info (fun m ->
                m "loaded %d pattern(s) from %s" (List.length ps) path);
            ps
        | Error d -> fail_diag d)
      pattern_files
  in
  match input with
  | None ->
      Fmt.pr "registered dialects: %s@."
        (String.concat ", "
           (List.map
              (fun (d : Irdl_ir.Context.dialect) -> d.d_name)
              (Irdl_ir.Context.dialects ctx)))
  | Some path -> (
      let src = if path = "-" then In_channel.input_all stdin else read_file path in
      match Irdl_ir.Parser.parse_ops ~file:path ctx src with
      | Error d -> fail_diag d
      | Ok ops ->
          List.iter
            (fun op ->
              match Irdl_ir.Verifier.verify ctx op with
              | Ok () -> ()
              | Error d -> fail_diag d)
            ops;
          if dominance then
            List.iter
              (fun op ->
                match Irdl_ir.Dominance.verify op with
                | Ok () -> ()
                | Error d -> fail_diag d)
              ops;
          if patterns <> [] then
            List.iter
              (fun op ->
                let stats = Irdl_rewrite.Driver.apply ctx patterns op in
                Logs.info (fun m ->
                    m "rewrite: %a" Irdl_rewrite.Driver.pp_stats stats);
                (* the rewritten IR must still verify *)
                match Irdl_ir.Verifier.verify ctx op with
                | Ok () -> ()
                | Error d -> fail_diag d)
              ops;
          if cse then
            List.iter
              (fun op ->
                let stats = Irdl_rewrite.Cse.run ctx op in
                Logs.info (fun m ->
                    m "cse: eliminated %d of %d examined"
                      stats.Irdl_rewrite.Cse.eliminated
                      stats.Irdl_rewrite.Cse.examined))
              ops;
          if dce then
            List.iter
              (fun op ->
                let rw = Irdl_rewrite.Rewriter.create ctx op in
                ignore (Irdl_rewrite.Rewriter.dce rw))
              ops;
          if not verify_only then
            Fmt.pr "%s@." (Irdl_ir.Printer.ops_to_string ~generic ctx ops));
  if verify_stats then
    Fmt.epr "verification cache: %a@." Irdl_ir.Context.pp_verify_stats
      (Irdl_ir.Context.verify_stats ctx)

let dialect_files =
  Arg.(
    value & opt_all file []
    & info [ "d"; "dialect" ] ~docv:"FILE"
        ~doc:"Load IRDL dialect definitions from $(docv). Repeatable.")

let pattern_files =
  Arg.(
    value & opt_all file []
    & info [ "p"; "patterns" ] ~docv:"FILE"
        ~doc:
          "Load textual rewrite patterns from $(docv) and apply them \
           greedily. Repeatable.")

let with_corpus =
  Arg.(
    value & flag
    & info [ "corpus" ]
        ~doc:"Register the bundled 28-dialect MLIR corpus (Table 1).")

let with_cmath =
  Arg.(
    value & flag
    & info [ "cmath" ]
        ~doc:
          "Register the paper's cmath dialect with its native (IRDL-C++) \
           hooks.")

let input =
  Arg.(
    value & pos 0 (some string) None
    & info [] ~docv:"INPUT"
        ~doc:"IR file to parse and verify ('-' for stdin).")

let generic =
  Arg.(
    value & flag
    & info [ "generic" ]
        ~doc:"Print operations in generic form, ignoring custom formats.")

let verify_only =
  Arg.(
    value & flag
    & info [ "verify-only" ] ~doc:"Verify without re-printing the IR.")

let dce =
  Arg.(
    value & flag
    & info [ "dce" ] ~doc:"Run dead-code elimination before printing.")

let cse =
  Arg.(
    value & flag
    & info [ "cse" ]
        ~doc:"Run dominance-aware common-subexpression elimination.")

let dominance =
  Arg.(
    value & flag
    & info [ "dominance" ]
        ~doc:"Also check SSA dominance (defs dominate uses).")

let strict =
  Arg.(
    value & flag
    & info [ "strict-native" ]
        ~doc:
          "Fail on IRDL-C++ snippets with no registered native hook instead \
           of accepting them.")

let verify_stats =
  Arg.(
    value & flag
    & info [ "verify-stats" ]
        ~doc:
          "Report verification-cache statistics (entries, hit rate, \
           invalidations) on stderr after the run.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let cmd =
  let doc = "parse, verify and transform IR against IRDL-defined dialects" in
  Cmd.v
    (Cmd.info "irdl-opt" ~doc)
    Term.(
      const run $ dialect_files $ pattern_files $ with_corpus $ with_cmath
      $ input $ generic $ verify_only $ dce $ cse $ dominance $ strict
      $ verify_stats $ verbose)

let () = exit (Cmd.eval cmd)
