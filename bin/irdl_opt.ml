(* irdl-opt: the mlir-opt analog of this project.

   Loads IRDL dialect definitions (from files and/or the bundled corpus),
   then parses, verifies, transforms and re-prints an IR file — the full
   dynamic-registration flow of paper §3: no code is generated or compiled
   at any point.

   All user-facing failures flow through a diagnostic engine
   (lib/support/diag): the frontend recovers and reports every error in a
   source instead of stopping at the first, errors render with caret
   source snippets, `--max-errors` caps the flood, and `--diag-json`
   mirrors the run to a machine-readable sink. `--split-input-file`
   processes `// -----`-separated chunks independently and
   `--verify-diagnostics` checks produced diagnostics against
   `expected-error {{...}}` annotations, MLIR-style.

   Exit codes: 0 success; 1 parse-class failure (IRDL/pattern/pipeline/IR
   parsing); 2 verify-class failure (verifier or pass failures on IR that
   parsed); 3 `--verify-diagnostics` mismatch or malformed annotation.
   Parse failures take precedence over verify failures.

   Transformations run through the instrumented pass manager
   (lib/pass): `--pass-pipeline "canonicalize,cse,dce"` names the passes;
   `--pass-timing`/`--pass-timing-json` report per-pass wall-clock time;
   `--print-ir-before/-after[-all]` snapshot the IR around passes; and
   `--verify-each` re-runs the (memoized) verifier between passes so a
   pass that breaks IR invariants is caught and attributed by name. The
   historical `--dce`/`--cse`/`--dominance` flags remain as deprecated
   aliases that desugar into pipeline entries. *)

open Cmdliner
module Diag = Irdl_support.Diag
module Harness = Irdl_support.Diag_harness

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* For failures outside any user source (bundled corpus, cmath): nothing to
   recover, nothing to annotate. *)
let fail_diag d =
  Fmt.epr "%a@." Diag.pp d;
  exit 1

let with_out_channel path f =
  if path = "-" then f Fmt.stderr
  else
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let ppf = Format.formatter_of_out_channel oc in
        f ppf;
        Format.pp_print_flush ppf ())

(* The deprecated boolean flags desugar into pipeline entries, in the
   historical execution order (dominance check, pattern application, CSE,
   DCE). With an explicit --pass-pipeline the alias entries are appended
   after it; the parser then reports duplicates uniformly. *)
let effective_pipeline ~pipeline ~have_patterns ~dce ~cse ~dominance =
  let explicit = Option.is_some pipeline in
  let entries =
    Option.to_list pipeline
    @ (if dominance then [ "verify-dominance" ] else [])
    @ (if have_patterns && not explicit then [ "canonicalize" ] else [])
    @ (if cse then [ "cse" ] else [])
    @ if dce then [ "dce" ] else []
  in
  if entries = [] then None else Some (String.concat "," entries)

let run dialect_files pattern_files with_corpus with_cmath input generic
    verify_only split_input_file verify_diagnostics max_errors diag_json
    pipeline dce cse dominance verify_each print_ir_before print_ir_after
    print_ir_before_all print_ir_after_all pass_timing pass_timing_json strict
    verify_stats verbose =
  setup_logs verbose;
  let engine = Diag.Engine.create ~max_errors () in
  (* Under --verify-diagnostics the produced diagnostics are consumed by
     the matcher instead of printed; only harness failures reach stderr. *)
  if not verify_diagnostics then
    Diag.Engine.add_handler engine (Diag.Engine.printer Fmt.stderr);
  let parse_failed = ref false and verify_failed = ref false in
  let ctx = Irdl_ir.Context.create () in
  let native = Irdl_core.Native.create ~strict () in
  if with_cmath then Irdl_dialects.Cmath.register_hooks native;
  let finish code =
    Option.iter
      (fun path ->
        let json = Diag.Engine.to_json engine in
        if path = "-" then print_string json
        else
          let oc = open_out path in
          output_string oc json;
          close_out oc)
      diag_json;
    if verify_stats then
      Fmt.epr "verification cache: %a@." Irdl_ir.Context.pp_verify_stats
        (Irdl_ir.Context.verify_stats ctx);
    exit code
  in
  (* Dialect definitions: bundled corpus, cmath, then user files. The
     bundled sources are not user input; a failure there is a build bug. *)
  if with_corpus then (
    match Irdl_dialects.Corpus.load_all ~native ctx with
    | Ok _ -> ()
    | Error d -> fail_diag d);
  if with_cmath then (
    match Irdl_core.Irdl.load_one ~native ctx Irdl_dialects.Cmath.source with
    | Ok _ -> ()
    | Error d -> fail_diag d);
  (* User dialect files: fail-soft. Every error in every file is reported;
     definitions that survive are registered so later stages still have
     something to check against. *)
  let errors_before_frontend = Diag.Engine.error_count engine in
  List.iter
    (fun path ->
      let dls =
        Irdl_core.Irdl.load_collect ~native ~file:path ~engine ctx
          (read_file path)
      in
      Logs.info (fun m ->
          m "loaded %d dialect(s) from %s" (List.length dls) path))
    dialect_files;
  (* Textual rewrite patterns (fully dynamic pattern-based flow, paper §3);
     they parameterize the 'canonicalize' pass. *)
  let patterns =
    List.concat_map
      (fun path ->
        match
          Irdl_rewrite.Textual.parse_patterns ctx ~file:path (read_file path)
        with
        | Ok ps ->
            Logs.info (fun m ->
                m "loaded %d pattern(s) from %s" (List.length ps) path);
            ps
        | Error d ->
            Diag.Engine.emit engine d;
            [])
      pattern_files
  in
  if Diag.Engine.error_count engine > errors_before_frontend then
    parse_failed := true;
  (* Resolve the pipeline before touching the input so a malformed pipeline
     fails fast. Pipeline text carries no annotations to expect diagnostics
     against, so this is fatal even under --verify-diagnostics. *)
  let passes =
    match
      effective_pipeline ~pipeline ~have_patterns:(patterns <> []) ~dce ~cse
        ~dominance
    with
    | None -> []
    | Some src -> (
        match
          Irdl_pass.Pipeline.parse
            ~available:(Irdl_pass.Passes.builtin ~patterns ())
            src
        with
        | Ok passes -> passes
        | Error d ->
            Diag.Engine.emit engine d;
            if verify_diagnostics then Fmt.epr "%a@." Diag.pp d;
            finish 1)
  in
  if
    patterns <> []
    && not (List.exists (fun p -> Irdl_pass.Pass.name p = "canonicalize") passes)
  then
    Logs.warn (fun m ->
        m "rewrite patterns were loaded but 'canonicalize' is not in the \
           pipeline; they will not be applied");
  (* A broken frontend would drown the IR in cascaded 'unregistered
     operation' errors, so stop here — except under --verify-diagnostics,
     where those errors may be exactly what the run expects. *)
  if !parse_failed && not verify_diagnostics then finish 1;
  let run_passes ops =
    (* Run the pipeline (even over an empty module: the timing report is
       still produced, with every pass at zero ops). *)
    let mgr =
      Irdl_pass.Pass_manager.create ~verify_each ~print_ir_before
        ~print_ir_after ~print_ir_before_all ~print_ir_after_all passes
    in
    match Irdl_pass.Pass_manager.run mgr ctx ops with
    | Error d ->
        Diag.Engine.emit engine d;
        verify_failed := true
    | Ok report ->
        (* Whatever ran — CSE and DCE included — the transformed IR must
           still verify, pipeline instrumentation or not. *)
        let post = Irdl_ir.Verifier.verify_ops_all ctx ops in
        List.iter (Diag.Engine.emit engine) post;
        if post <> [] then verify_failed := true;
        Option.iter
          (fun path ->
            with_out_channel path (fun ppf ->
                Irdl_pass.Pass_manager.pp_report ppf report))
          pass_timing;
        Option.iter
          (fun path ->
            let json = Irdl_pass.Pass_manager.report_to_json report in
            if path = "-" then print_string json
            else
              let oc = open_out path in
              output_string oc json;
              close_out oc)
          pass_timing_json
  in
  (* The IR itself, chunk by chunk under --split-input-file: a chunk that
     fails to parse or verify never blocks the chunks after it. *)
  let input_src =
    match input with
    | None -> None
    | Some path ->
        Some
          ( path,
            if path = "-" then In_channel.input_all stdin else read_file path )
  in
  (match input_src with
  | None ->
      if passes <> [] then run_passes []
      else if not verify_diagnostics then
        Fmt.pr "registered dialects: %s@."
          (String.concat ", "
             (List.map
                (fun (d : Irdl_ir.Context.dialect) -> d.d_name)
                (Irdl_ir.Context.dialects ctx)))
  | Some _ when !parse_failed -> ()
  | Some (path, src) ->
      let chunks =
        if split_input_file then Harness.split_input src else [ src ]
      in
      let outputs = ref [] in
      List.iter
        (fun chunk ->
          let e0 = Diag.Engine.error_count engine in
          let ops =
            Irdl_ir.Parser.parse_ops_collect ~file:path ~engine ctx chunk
          in
          if Diag.Engine.error_count engine > e0 then parse_failed := true
          else begin
            let vdiags = Irdl_ir.Verifier.verify_ops_all ctx ops in
            List.iter (Diag.Engine.emit engine) vdiags;
            if vdiags <> [] then verify_failed := true
            else begin
              if passes <> [] then run_passes ops;
              if
                (not (verify_only || verify_diagnostics))
                && Diag.Engine.error_count engine = e0
              then
                outputs :=
                  Irdl_ir.Printer.ops_to_string ~generic ctx ops :: !outputs
            end
          end)
        chunks;
      (match List.rev !outputs with
      | [] -> ()
      | outs -> Fmt.pr "%s@." (String.concat "\n// -----\n" outs)));
  if verify_diagnostics then begin
    (* Expectations come from the input file and every -d dialect file. *)
    let sources =
      List.map (fun p -> (p, read_file p)) dialect_files
      @ Option.to_list input_src
    in
    let expectations, scan_errors =
      List.fold_left
        (fun (es, errs) (file, src) ->
          let e, r = Harness.scan_expectations ~file src in
          (es @ e, errs @ r))
        ([], []) sources
    in
    let failures =
      scan_errors @ Harness.check ~expectations (Diag.Engine.diagnostics engine)
    in
    if failures = [] then finish 0
    else begin
      List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) failures;
      finish 3
    end
  end;
  finish (if !parse_failed then 1 else if !verify_failed then 2 else 0)

let dialect_files =
  Arg.(
    value & opt_all file []
    & info [ "d"; "dialect" ] ~docv:"FILE"
        ~doc:"Load IRDL dialect definitions from $(docv). Repeatable.")

let pattern_files =
  Arg.(
    value & opt_all file []
    & info [ "p"; "patterns" ] ~docv:"FILE"
        ~doc:
          "Load textual rewrite patterns from $(docv); they parameterize \
           the 'canonicalize' pass (added to the pipeline automatically \
           when no $(b,--pass-pipeline) is given). Repeatable.")

let with_corpus =
  Arg.(
    value & flag
    & info [ "corpus" ]
        ~doc:"Register the bundled 28-dialect MLIR corpus (Table 1).")

let with_cmath =
  Arg.(
    value & flag
    & info [ "cmath" ]
        ~doc:
          "Register the paper's cmath dialect with its native (IRDL-C++) \
           hooks.")

let input =
  Arg.(
    value & pos 0 (some string) None
    & info [] ~docv:"INPUT"
        ~doc:"IR file to parse and verify ('-' for stdin).")

let generic =
  Arg.(
    value & flag
    & info [ "generic" ]
        ~doc:"Print operations in generic form, ignoring custom formats.")

let verify_only =
  Arg.(
    value & flag
    & info [ "verify-only" ] ~doc:"Verify without re-printing the IR.")

let split_input_file =
  Arg.(
    value & flag
    & info [ "split-input-file" ]
        ~doc:
          "Split the input at '// -----' lines and process each chunk \
           independently; a malformed chunk does not block later chunks. \
           Diagnostics keep the line numbers of the original file.")

let verify_diagnostics =
  Arg.(
    value & flag
    & info [ "verify-diagnostics" ]
        ~doc:
          "Check produced diagnostics against 'expected-error@<offset> \
           {{substring}}' comment annotations (also -warning/-note; \
           offsets: @+N, @-N, @above, @below) in the input and dialect \
           files instead of printing them. Unexpected diagnostics and \
           unfulfilled expectations are reported and exit with status 3.")

let max_errors =
  Arg.(
    value & opt int 0
    & info [ "max-errors" ] ~docv:"N"
        ~doc:
          "Stop collecting after $(docv) errors (0, the default, is \
           unlimited); further errors are counted as suppressed.")

let diag_json =
  Arg.(
    value & opt (some string) None
    & info [ "diag-json" ] ~docv:"FILE"
        ~doc:
          "Write every diagnostic of the run (plus severity counts) as a \
           JSON document to $(docv) ('-' for stdout).")

let pipeline =
  Arg.(
    value & opt (some string) None
    & info [ "pass-pipeline" ] ~docv:"PIPELINE"
        ~doc:
          "Run a comma-separated pass pipeline over the parsed IR, e.g. \
           'canonicalize,cse,dce'. Available passes: canonicalize (greedy \
           pattern rewriting, uses the patterns of $(b,-p)), cse, dce, \
           verify-dominance.")

let dce =
  Arg.(
    value & flag
    & info [ "dce" ]
        ~doc:
          "Deprecated alias: appends 'dce' to the pass pipeline \
           (equivalent to --pass-pipeline dce).")

let cse =
  Arg.(
    value & flag
    & info [ "cse" ]
        ~doc:
          "Deprecated alias: appends 'cse' to the pass pipeline \
           (equivalent to --pass-pipeline cse).")

let dominance =
  Arg.(
    value & flag
    & info [ "dominance" ]
        ~doc:
          "Deprecated alias: appends 'verify-dominance' to the pass \
           pipeline (equivalent to --pass-pipeline verify-dominance).")

let verify_each =
  Arg.(
    value & flag
    & info [ "verify-each" ]
        ~doc:
          "Re-run the verifier after every pass; a failure is attributed \
           to the offending pass by name.")

let print_ir_before =
  Arg.(
    value & opt_all string []
    & info [ "print-ir-before" ] ~docv:"PASS"
        ~doc:"Dump the IR to stderr before the named pass. Repeatable.")

let print_ir_after =
  Arg.(
    value & opt_all string []
    & info [ "print-ir-after" ] ~docv:"PASS"
        ~doc:"Dump the IR to stderr after the named pass. Repeatable.")

let print_ir_before_all =
  Arg.(
    value & flag
    & info [ "print-ir-before-all" ]
        ~doc:"Dump the IR to stderr before every pass.")

let print_ir_after_all =
  Arg.(
    value & flag
    & info [ "print-ir-after-all" ]
        ~doc:"Dump the IR to stderr after every pass.")

let pass_timing =
  Arg.(
    value & opt (some string) None
    & info [ "pass-timing" ] ~docv:"FILE"
        ~doc:
          "Write the per-pass wall-clock timing report (text) to $(docv) \
           ('-' for stderr).")

let pass_timing_json =
  Arg.(
    value & opt (some string) None
    & info [ "pass-timing-json" ] ~docv:"FILE"
        ~doc:
          "Write the per-pass timing report as JSON to $(docv) ('-' for \
           stdout).")

let strict =
  Arg.(
    value & flag
    & info [ "strict-native" ]
        ~doc:
          "Fail on IRDL-C++ snippets with no registered native hook instead \
           of accepting them.")

let verify_stats =
  Arg.(
    value & flag
    & info [ "verify-stats" ]
        ~doc:
          "Report verification-cache statistics (entries, hit rate, \
           invalidations) on stderr after the run.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let cmd =
  let doc = "parse, verify and transform IR against IRDL-defined dialects" in
  Cmd.v
    (Cmd.info "irdl-opt" ~doc)
    Term.(
      const run $ dialect_files $ pattern_files $ with_corpus $ with_cmath
      $ input $ generic $ verify_only $ split_input_file $ verify_diagnostics
      $ max_errors $ diag_json $ pipeline $ dce $ cse $ dominance
      $ verify_each $ print_ir_before $ print_ir_after $ print_ir_before_all
      $ print_ir_after_all $ pass_timing $ pass_timing_json $ strict
      $ verify_stats $ verbose)

let () = exit (Cmd.eval cmd)
