(* irdl-opt: the mlir-opt analog of this project.

   Loads IRDL dialect definitions (from files and/or the bundled corpus),
   then parses, verifies, transforms and re-prints an IR file — the full
   dynamic-registration flow of paper §3: no code is generated or compiled
   at any point.

   All user-facing failures flow through a diagnostic engine
   (lib/support/diag): the frontend recovers and reports every error in a
   source instead of stopping at the first, errors render with caret
   source snippets, `--max-errors` caps the flood, and `--diag-json`
   mirrors the run to a machine-readable sink. `--split-input-file`
   processes `// -----`-separated chunks independently and
   `--verify-diagnostics` checks produced diagnostics against
   `expected-error {{...}}` annotations, MLIR-style.

   `--jobs N` verifies independent chunks on N domains over the one
   resident (frozen) dialect registry; `--batch` feeds many IR files into
   a single run. Workers collect diagnostics in a local engine, pre-render
   them against their own source registrations, and the main domain
   replays everything in input order — so a parallel run is byte-identical
   to `--jobs 1` (same stderr, same stdout, same exit code, same
   --diag-json). Flags whose output is inherently cross-chunk —
   --max-errors, --pass-timing[-json], the IR print-around-pass dumps —
   force the sequential path.

   Exit codes: 0 success; 1 parse-class failure (IRDL/pattern/pipeline/IR
   parsing); 2 verify-class failure (verifier or pass failures on IR that
   parsed); 3 `--verify-diagnostics` mismatch or malformed annotation.
   Parse failures take precedence over verify failures.

   Transformations run through the instrumented pass manager
   (lib/pass): `--pass-pipeline "canonicalize,cse,dce"` names the passes;
   `--pass-timing`/`--pass-timing-json` report per-pass wall-clock time;
   `--print-ir-before/-after[-all]` snapshot the IR around passes; and
   `--verify-each` re-runs the (memoized) verifier between passes so a
   pass that breaks IR invariants is caught and attributed by name. The
   historical `--dce`/`--cse`/`--dominance` flags remain as deprecated
   aliases that desugar into pipeline entries. *)

open Cmdliner
module Diag = Irdl_support.Diag
module Harness = Irdl_support.Diag_harness
module Domain_pool = Irdl_support.Domain_pool
module Limits = Irdl_support.Limits
module Failpoints = Irdl_support.Failpoints
module Bytecode = Irdl_bytecode.Bytecode
module Frontend = Irdl_bytecode.Frontend
module Source = Frontend.Source
module Server = Irdl_server.Server

let write_binary path data =
  if path = "-" then begin
    Out_channel.set_binary_mode stdout true;
    print_string data
  end
  else begin
    let oc = open_out_bin path in
    output_string oc data;
    close_out oc
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* For failures outside any user source (bundled corpus, cmath): nothing to
   recover, nothing to annotate. *)
let fail_diag d =
  Fmt.epr "%a@." Diag.pp d;
  exit 1

let with_out_channel path f =
  if path = "-" then f Fmt.stderr
  else
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let ppf = Format.formatter_of_out_channel oc in
        f ppf;
        Format.pp_print_flush ppf ())

(* The deprecated boolean flags desugar into pipeline entries, in the
   historical execution order (dominance check, pattern application, CSE,
   DCE). With an explicit --pass-pipeline the alias entries are appended
   after it; the parser then reports duplicates uniformly. *)
let effective_pipeline ~pipeline ~have_patterns ~dce ~cse ~dominance =
  let explicit = Option.is_some pipeline in
  let entries =
    Option.to_list pipeline
    @ (if dominance then [ "verify-dominance" ] else [])
    @ (if have_patterns && not explicit then [ "canonicalize" ] else [])
    @ (if cse then [ "cse" ] else [])
    @ if dce then [ "dce" ] else []
  in
  if entries = [] then None else Some (String.concat "," entries)

(* --batch PATH: a directory (every *.mlir / *.irdlbc in it, sorted) or a
   text file listing one IR path per line ('#' comments and blank lines
   skipped). *)
let batch_inputs path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".mlir" || Filename.check_suffix f ".irdlbc")
    |> List.sort String.compare
    |> List.map (Filename.concat path)
  else
    read_file path |> String.split_on_char '\n' |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let run dialect_files pattern_files with_corpus with_cmath input generic
    verify_only split_input_file verify_diagnostics max_errors diag_json
    pipeline dce cse dominance verify_each print_ir_before print_ir_after
    print_ir_before_all print_ir_after_all pass_timing pass_timing_json strict
    verify_stats jobs batch streaming no_streaming emit_bytecode load_bytecode
    emit_dialect_bytecode serve listen connect failpoints_spec max_queue
    max_ops max_region_depth max_payload_bytes deadline_ms verbose =
  setup_logs verbose;
  (* Fault-injection seams, armed before anything parses. *)
  (match failpoints_spec with
  | None -> ()
  | Some spec -> (
      match Failpoints.configure spec with
      | Ok () -> ()
      | Error msg ->
          Fmt.epr "irdl-opt: --failpoints: %s@." msg;
          exit 1));
  (* Resource budgets: applied to one-shot parsing below, to every request
     of a server ([--serve]/[--listen], as the server-wide ceiling), and
     sent along with a [--connect] request. *)
  let base_limits =
    Limits.create ~max_payload_bytes ~max_ops ~max_depth:max_region_depth ()
  in
  let mode_conflict msg =
    Fmt.epr "irdl-opt: %s@." msg;
    exit 1
  in
  if serve && Option.is_some listen then
    mode_conflict "--serve and --listen are mutually exclusive";
  if Option.is_some connect && (serve || Option.is_some listen) then
    mode_conflict "--connect cannot be combined with --serve/--listen";
  (* Client mode: one framed request against a resident server; the
     response's diagnostics (pre-rendered, byte-identical to a one-shot
     run) go to stderr, the output to stdout, and the exit code mirrors
     the one-shot convention. No dialects are loaded here — the server
     holds the registry. *)
  (match connect with
  | None -> ()
  | Some path ->
      let file = Option.value input ~default:"-" in
      let payload =
        try Source.contents (Source.read file)
        with Sys_error msg ->
          Fmt.epr "irdl-opt: %s@." msg;
          exit 1
      in
      let kind =
        if Option.is_some emit_bytecode then Server.Emit_bytecode
        else if verify_only then Server.Verify
        else Server.Print
      in
      (match
         Server.roundtrip ~path ~kind ~file ~deadline_ms ~limits:base_limits
           payload
       with
      | Error msg ->
          Fmt.epr "irdl-opt: --connect: %s@." msg;
          exit 4
      | Ok rs ->
          prerr_string rs.Server.rs_diags;
          (match emit_bytecode with
          | Some out when rs.Server.rs_output <> "" ->
              write_binary out rs.Server.rs_output
          | _ -> print_string rs.Server.rs_output);
          exit (Server.status_exit_code rs.Server.rs_status)));
  let engine = Diag.Engine.create ~max_errors () in
  (* Under --verify-diagnostics the produced diagnostics are consumed by
     the matcher instead of printed; only harness failures reach stderr. *)
  if not verify_diagnostics then
    Diag.Engine.add_handler engine (Diag.Engine.printer Fmt.stderr);
  let parse_failed = ref false and verify_failed = ref false in
  let ctx = Irdl_ir.Context.create () in
  let native = Irdl_core.Native.create ~strict () in
  if with_cmath then Irdl_dialects.Cmath.register_hooks native;
  let finish code =
    Option.iter
      (fun path ->
        let json = Diag.Engine.to_json engine in
        if path = "-" then print_string json
        else
          let oc = open_out path in
          output_string oc json;
          close_out oc)
      diag_json;
    if verify_stats then
      Fmt.epr "verification cache: %a@." Irdl_ir.Context.pp_verify_stats
        ((Irdl_ir.Context.stats ctx).st_verify);
    exit code
  in
  (* Dialect definitions: bundled corpus, cmath, then user files. The
     bundled sources are not user input; a failure there is a build bug.
     Every resolved dialect is remembered in registration order so
     --emit-dialect-bytecode can serialize the whole registry. *)
  let resolved_dialects = ref [] in
  let note_dialects dls =
    resolved_dialects := List.rev_append dls !resolved_dialects
  in
  if with_corpus then (
    match Irdl_dialects.Corpus.load_all ~native ctx with
    | Ok dls -> note_dialects dls
    | Error d -> fail_diag d);
  if with_cmath then (
    match Irdl_core.Irdl.load_one ~native ctx Irdl_dialects.Cmath.source with
    | Ok dl -> note_dialects [ dl ]
    | Error d -> fail_diag d);
  (* User dialect files: fail-soft, format-sniffed. IRDL text goes through
     parse+resolve; a bytecode dialect pack (--emit-dialect-bytecode of an
     earlier run) skips both. Every error in every file is reported;
     definitions that survive are registered so later stages still have
     something to check against. *)
  let errors_before_frontend = Diag.Engine.error_count engine in
  List.iter
    (fun path ->
      match
        Frontend.load_dialects ~native ~file:path ~engine ctx
          (Source.classify (read_file path))
      with
      | Ok dls ->
          note_dialects dls;
          Logs.info (fun m ->
              m "loaded %d dialect(s) from %s" (List.length dls) path)
      | Error d -> Diag.Engine.emit engine d)
    dialect_files;
  Option.iter
    (fun out ->
      match
        Bytecode.Write.dialects_to_string (List.rev !resolved_dialects)
      with
      | Ok blob -> write_binary out blob
      | Error d -> fail_diag d)
    emit_dialect_bytecode;
  (* Textual rewrite patterns (fully dynamic pattern-based flow, paper §3);
     they parameterize the 'canonicalize' pass. *)
  let patterns =
    List.concat_map
      (fun path ->
        match
          Irdl_rewrite.Textual.parse_patterns ctx ~file:path (read_file path)
        with
        | Ok ps ->
            Logs.info (fun m ->
                m "loaded %d pattern(s) from %s" (List.length ps) path);
            ps
        | Error d ->
            Diag.Engine.emit engine d;
            [])
      pattern_files
  in
  if Diag.Engine.error_count engine > errors_before_frontend then
    parse_failed := true;
  (* Resolve the pipeline before touching the input so a malformed pipeline
     fails fast. Pipeline text carries no annotations to expect diagnostics
     against, so this is fatal even under --verify-diagnostics. *)
  let pipeline_src =
    effective_pipeline ~pipeline ~have_patterns:(patterns <> []) ~dce ~cse
      ~dominance
  in
  let passes =
    match pipeline_src with
    | None -> []
    | Some src -> (
        match
          Irdl_pass.Pipeline.parse
            ~available:(Irdl_pass.Passes.builtin ~patterns ())
            src
        with
        | Ok passes -> passes
        | Error d ->
            Diag.Engine.emit engine d;
            if verify_diagnostics then Fmt.epr "%a@." Diag.pp d;
            finish 1)
  in
  if
    patterns <> []
    && not (List.exists (fun p -> Irdl_pass.Pass.name p = "canonicalize") passes)
  then
    Logs.warn (fun m ->
        m "rewrite patterns were loaded but 'canonicalize' is not in the \
           pipeline; they will not be applied");
  (* A broken frontend would drown the IR in cascaded 'unregistered
     operation' errors, so stop here — except under --verify-diagnostics,
     where those errors may be exactly what the run expects. *)
  if !parse_failed && not verify_diagnostics then finish 1;
  (* Server modes: the registry loaded above becomes the resident corpus;
     requests are served until EOF (--serve) or shutdown. The exit is
     clean even on SIGTERM/SIGINT — in-flight requests drain first. *)
  if serve || Option.is_some listen then begin
    if Option.is_some input || Option.is_some batch then
      mode_conflict "--serve/--listen take no input (requests carry it)";
    let config =
      {
        Server.default_config with
        limits = base_limits;
        max_queue;
        domains = (if jobs > 0 then jobs else 0);
        generic;
      }
    in
    Server.install_signal_handlers ();
    let answered =
      match listen with
      | Some path -> Server.serve_unix ~config ctx ~path ()
      | None ->
          Server.serve_fd ~config ctx ~in_fd:Unix.stdin ~out_fd:Unix.stdout ()
    in
    Logs.info (fun m -> m "served %d request(s)" answered);
    finish 0
  end;
  if streaming && no_streaming then begin
    Fmt.epr "irdl-opt: --streaming and --no-streaming are mutually exclusive@.";
    finish 1
  end;
  (* Materialize-vs-stream decision: a pass pipeline transforms the module
     as a whole, so it needs every op resident; --verify-stats reports
     cache counters of exactly the work the materializing semantics define
     (streaming eagerly verifies ops of chunks that later parse-fail, so
     its counters would differ); everything else (verify, re-print,
     --verify-diagnostics) is per-op and streams by default. *)
  let use_streaming =
    if no_streaming then false
    else if passes = [] && not verify_stats then true
    else begin
      if streaming then
        Logs.warn (fun m ->
            m
              "--streaming ignored: %s; using the materializing parser"
              (if passes <> [] then
                 "a pass pipeline needs the whole module resident"
               else "--verify-stats counts materializing-semantics work"));
      false
    end
  in
  (* Run a pipeline over [ops], reporting to [engine]. [timing] carries the
     --pass-timing[-json] sinks on the sequential path; parallel workers
     pass [None] (those flags force sequential execution). *)
  let run_passes ~engine ~verify_failed ~timing passes ops =
    (* Run the pipeline (even over an empty module: the timing report is
       still produced, with every pass at zero ops). *)
    let mgr =
      Irdl_pass.Pass_manager.create ~verify_each ~print_ir_before
        ~print_ir_after ~print_ir_before_all ~print_ir_after_all passes
    in
    match Irdl_pass.Pass_manager.run mgr ctx ops with
    | Error d ->
        Diag.Engine.emit engine d;
        verify_failed := true
    | Ok report -> (
        (* Whatever ran — CSE and DCE included — the transformed IR must
           still verify, pipeline instrumentation or not. *)
        let post = Irdl_ir.Verifier.verify_ops_all ctx ops in
        List.iter (Diag.Engine.emit engine) post;
        if post <> [] then verify_failed := true;
        match timing with
        | None -> ()
        | Some (pass_timing, pass_timing_json) ->
            Option.iter
              (fun path ->
                with_out_channel path (fun ppf ->
                    Irdl_pass.Pass_manager.pp_report ppf report))
              pass_timing;
            Option.iter
              (fun path ->
                let json = Irdl_pass.Pass_manager.report_to_json report in
                if path = "-" then print_string json
                else
                  let oc = open_out path in
                  output_string oc json;
                  close_out oc)
              pass_timing_json)
  in
  (* --emit-bytecode switches every output sink from the textual printer
     to the bytecode emitter; everything else (chunking, verification,
     parallelism, exit codes) is format-independent. *)
  let emit_binary = Option.is_some emit_bytecode in
  (* The one-shot budget. The deadline clock starts here — dialect loading
     is setup, not input processing. *)
  let run_limits =
    if deadline_ms > 0 then Limits.with_deadline_ms base_limits deadline_ms
    else base_limits
  in
  (* One input chunk through the streaming frontend: parse (or decode),
     verify, emit and release one top-level op at a time, so peak memory
     is bounded by the largest op rather than the chunk. Byte-identical to
     the materializing path below: parse diagnostics flow through the
     shared engine in parse order; per-op verification results are held
     back and merged into [Verifier.verify_ops_all]'s stable order at
     end-of-stream (and discarded on a parse failure, which skips
     verification there too); output flows through one [Frontend.Sink]
     session — the textual sink joins exactly like
     [Printer.ops_to_string]. *)
  let process_chunk_stream ~engine ~path payload =
    let e0 = Diag.Engine.error_count engine in
    let parse_failed = ref false and verify_failed = ref false in
    let output = ref None in
    let want_output = not (verify_only || verify_diagnostics) in
    let session =
      Frontend.Stream.create ~file:path ~engine ~limits:run_limits ctx payload
    in
    let sink =
      if emit_binary then Frontend.Sink.bytecode ()
      else Frontend.Sink.text ~generic ctx
    in
    let vdiags = ref [] in
    let rec drain () =
      match Frontend.Stream.next session with
      | Ok None | Error _ -> ()
      | Ok (Some op) ->
          vdiags := Irdl_ir.Verifier.verify_all ctx op :: !vdiags;
          if want_output then Frontend.Sink.push sink op;
          Frontend.Stream.release op;
          drain ()
    in
    drain ();
    if Diag.Engine.error_count engine > e0 then parse_failed := true
    else begin
      let diags =
        Irdl_ir.Verifier.merge_diags (List.concat (List.rev !vdiags))
      in
      List.iter (Diag.Engine.emit engine) diags;
      if diags <> [] then verify_failed := true
      else if want_output && Diag.Engine.error_count engine = e0 then
        match Frontend.Sink.close sink with
        | Ok out -> output := Some out
        | Error d ->
            Diag.Engine.emit engine d;
            verify_failed := true
    end;
    (!parse_failed, !verify_failed, !output)
  in
  (* One input chunk, against an arbitrary engine: the sequential driver
     passes the main engine, parallel workers a local one (replayed in
     input order afterwards). Returns (parse_failed, verify_failed,
     printed output). A chunk that fails to parse or verify never blocks
     the chunks after it. *)
  let process_chunk ~engine ~streaming ~timing passes ~path payload =
    if load_bytecode && not (Source.is_binary payload) then begin
      Diag.Engine.emit engine
        (Diag.error
           ~loc:(Irdl_support.Loc.point (Irdl_support.Loc.start_of_file path))
           "--load-bytecode: input is not IRDL bytecode (bad magic)");
      (true, false, None)
    end
    else if streaming && passes = [] then
      process_chunk_stream ~engine ~path payload
    else begin
      let e0 = Diag.Engine.error_count engine in
      let parse_failed = ref false and verify_failed = ref false in
      let output = ref None in
      let ops =
        Frontend.parse_module ~file:path ~engine ~limits:run_limits ctx payload
        |> Result.value ~default:[]
      in
      if Diag.Engine.error_count engine > e0 then parse_failed := true
      else begin
        let vdiags = Irdl_ir.Verifier.verify_ops_all ctx ops in
        List.iter (Diag.Engine.emit engine) vdiags;
        if vdiags <> [] then verify_failed := true
        else begin
          if passes <> [] then
            run_passes ~engine ~verify_failed ~timing passes ops;
          if
            (not (verify_only || verify_diagnostics))
            && Diag.Engine.error_count engine = e0
          then begin
            let sink =
              if emit_binary then Frontend.Sink.bytecode ()
              else Frontend.Sink.text ~generic ctx
            in
            List.iter (Frontend.Sink.push sink) ops;
            match Frontend.Sink.close sink with
            | Ok out -> output := Some out
            | Error d ->
                Diag.Engine.emit engine d;
                verify_failed := true
          end
        end
      end;
      (!parse_failed, !verify_failed, !output)
    end
  in
  if Option.is_some batch && Option.is_some input then begin
    Fmt.epr "irdl-opt: --batch cannot be combined with a positional INPUT@.";
    finish 1
  end;
  (* Documents are (path, fetch) pairs producing classified payloads
     (text or bytecode, sniffed by magic): --batch files are fetched
     lazily so the sequential driver keeps at most one source resident
     (and can drop it once processed), instead of materializing a whole
     corpus up front. A positional input is read eagerly ([Source.read]
     peeks stdin without seeking; stdin cannot be re-read). *)
  let docs =
    try
      match batch with
      | Some bpath ->
          List.map
            (fun p -> (p, fun () -> Source.classify (read_file p)))
            (batch_inputs bpath)
      | None -> (
          match input with
          | None -> []
          | Some path ->
              let payload = Source.read path in
              [ (path, fun () -> payload) ])
    with Sys_error msg ->
      Fmt.epr "irdl-opt: %s@." msg;
      finish 1
  in
  let fetch_doc fetch =
    try fetch ()
    with Sys_error msg ->
      Fmt.epr "irdl-opt: %s@." msg;
      finish 1
  in
  (match docs with
  | [] when batch = None ->
      if passes <> [] then
        run_passes ~engine ~verify_failed
          ~timing:(Some (pass_timing, pass_timing_json))
          passes []
      else if not verify_diagnostics then
        Fmt.pr "registered dialects: %s@."
          (String.concat ", "
             (List.map
                (fun (d : Irdl_ir.Context.dialect) -> d.d_name)
                (Irdl_ir.Context.dialects ctx)))
  | [] -> () (* --batch expanded to no files *)
  | _ when !parse_failed -> ()
  | docs ->
      (* The unit of work is one chunk of one document: --split-input-file
         cuts text at '// -----' lines and bytecode at document
         boundaries, --batch contributes one document per file; both
         compose. *)
      let chunks_of payload = Source.chunks ~split:split_input_file payload in
      let doc_outs = Array.make (List.length docs) [] in
      let n_jobs =
        if jobs <= 0 then Domain.recommended_domain_count () else jobs
      in
      (* --max-errors couples chunks (the cap is global); the pass
         instrumentation sinks interleave per-chunk output. Both are
         inherently sequential, so fall back silently. *)
      let flags_allow_parallel =
        max_errors = 0
        && pass_timing = None
        && pass_timing_json = None
        && print_ir_before = [] && print_ir_after = []
        && (not print_ir_before_all)
        && not print_ir_after_all
      in
      (* Parallel execution needs every chunk materialized up front (the
         workers share the task array); the sequential driver below keeps
         one document resident at a time instead. *)
      let tasks =
        if n_jobs > 1 && flags_allow_parallel then
          List.concat
            (List.mapi
               (fun di (path, fetch) ->
                 List.map
                   (fun chunk -> (di, path, chunk))
                   (chunks_of (fetch_doc fetch)))
               docs)
          |> Array.of_list
        else [||]
      in
      if Array.length tasks <= 1 then
        List.iteri
          (fun di (path, fetch) ->
            let src = fetch_doc fetch in
            List.iter
              (fun chunk ->
                let pf, vf, out =
                  process_chunk ~engine ~streaming:use_streaming
                    ~timing:(Some (pass_timing, pass_timing_json))
                    passes ~path chunk
                in
                if pf then parse_failed := true;
                if vf then verify_failed := true;
                Option.iter (fun o -> doc_outs.(di) <- o :: doc_outs.(di)) out)
              (chunks_of src);
            (* This document's diagnostics are flushed (handlers render at
               emit time): drop its buffer so a long --batch run does not
               retain every processed source. *)
            if Option.is_some batch && not verify_diagnostics then
              Diag.Sources.drop path)
          docs
      else begin
        (* Registration is over: freeze the context so every domain can
           look definitions up (and verify against its own cache shard)
           without synchronization. *)
        Irdl_ir.Context.freeze ctx;
        let sources = Diag.Sources.snapshot () in
        let thunks =
          Array.map
            (fun (_, path, chunk) () ->
              (* Dialect-file sources from the main domain, so worker-side
                 rendering has the same snippets; the chunk itself is
                 registered by the parse below. *)
              Diag.Sources.preload sources;
              let worker_engine = Diag.Engine.create () in
              let rendered = ref [] in
              Diag.Engine.add_handler worker_engine (fun d ->
                  rendered := (d, Fmt.str "%a" Diag.pp_rendered d) :: !rendered);
              (* Pass instances are cheap per-chunk values; re-deriving
                 them here keeps workers from sharing any pass state. The
                 string parsed fine on the main domain, so it parses
                 fine here. *)
              let wpasses =
                match pipeline_src with
                | None -> []
                | Some src ->
                    Diag.get_ok
                      (Irdl_pass.Pipeline.parse
                         ~available:(Irdl_pass.Passes.builtin ~patterns ())
                         src)
              in
              let pf, vf, out =
                process_chunk ~engine:worker_engine ~streaming:use_streaming
                  ~timing:None wpasses ~path chunk
              in
              (List.rev !rendered, pf, vf, out))
            tasks
        in
        let results =
          Domain_pool.with_pool ~domains:n_jobs (fun pool ->
              Domain_pool.run pool thunks)
        in
        (* Replay in input order: counts and --diag-json through the main
           engine, pre-rendered text straight to stderr — byte-identical
           to the sequential printer handler. *)
        Array.iteri
          (fun i (diags, pf, vf, out) ->
            let di, _, _ = tasks.(i) in
            List.iter
              (fun (d, rendered) ->
                Diag.Engine.record engine d;
                if not verify_diagnostics then Fmt.epr "%s@." rendered)
              diags;
            if pf then parse_failed := true;
            if vf then verify_failed := true;
            Option.iter (fun o -> doc_outs.(di) <- o :: doc_outs.(di)) out)
          results
      end;
      (match emit_bytecode with
      | Some out ->
          (* Bytecode documents are self-delimiting and concatenate, so
             the assembled output is the plain concatenation in input
             order — headers or separators would corrupt the stream. *)
          let blobs =
            List.concat (List.mapi (fun di _ -> List.rev doc_outs.(di)) docs)
          in
          if blobs <> [] then write_binary out (String.concat "" blobs)
      | None -> (
          match batch with
          | None -> (
              match List.rev doc_outs.(0) with
              | [] -> ()
              | outs -> Fmt.pr "%s@." (String.concat "\n// -----\n" outs))
          | Some _ ->
              List.iteri
                (fun di (path, _) ->
                  match List.rev doc_outs.(di) with
                  | [] -> ()
                  | outs ->
                      Fmt.pr "// ===== %s =====@.%s@." path
                        (String.concat "\n// -----\n" outs))
                docs)));
  if verify_diagnostics then begin
    (* Expectations come from every input document and every -d dialect
       file. Bytecode carries no comments to annotate, so binary payloads
       contribute none. *)
    let sources =
      List.filter_map
        (fun p ->
          match Source.classify (read_file p) with
          | Source.Text src -> Some (p, src)
          | Source.Binary _ -> None)
        dialect_files
      @ List.filter_map
          (fun (p, fetch) ->
            match fetch_doc fetch with
            | Source.Text src -> Some (p, src)
            | Source.Binary _ -> None)
          docs
    in
    let expectations, scan_errors =
      List.fold_left
        (fun (es, errs) (file, src) ->
          let e, r = Harness.scan_expectations ~file src in
          (es @ e, errs @ r))
        ([], []) sources
    in
    let failures =
      scan_errors @ Harness.check ~expectations (Diag.Engine.diagnostics engine)
    in
    if failures = [] then finish 0
    else begin
      List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) failures;
      finish 3
    end
  end;
  finish (if !parse_failed then 1 else if !verify_failed then 2 else 0)

let dialect_files =
  Arg.(
    value & opt_all file []
    & info [ "d"; "dialect" ] ~docv:"FILE"
        ~doc:"Load IRDL dialect definitions from $(docv). Repeatable.")

let pattern_files =
  Arg.(
    value & opt_all file []
    & info [ "p"; "patterns" ] ~docv:"FILE"
        ~doc:
          "Load textual rewrite patterns from $(docv); they parameterize \
           the 'canonicalize' pass (added to the pipeline automatically \
           when no $(b,--pass-pipeline) is given). Repeatable.")

let with_corpus =
  Arg.(
    value & flag
    & info [ "corpus" ]
        ~doc:"Register the bundled 28-dialect MLIR corpus (Table 1).")

let with_cmath =
  Arg.(
    value & flag
    & info [ "cmath" ]
        ~doc:
          "Register the paper's cmath dialect with its native (IRDL-C++) \
           hooks.")

let input =
  Arg.(
    value & pos 0 (some string) None
    & info [] ~docv:"INPUT"
        ~doc:"IR file to parse and verify ('-' for stdin).")

let generic =
  Arg.(
    value & flag
    & info [ "generic" ]
        ~doc:"Print operations in generic form, ignoring custom formats.")

let verify_only =
  Arg.(
    value & flag
    & info [ "verify-only" ] ~doc:"Verify without re-printing the IR.")

let split_input_file =
  Arg.(
    value & flag
    & info [ "split-input-file" ]
        ~doc:
          "Split the input at '// -----' lines and process each chunk \
           independently; a malformed chunk does not block later chunks. \
           Diagnostics keep the line numbers of the original file.")

let verify_diagnostics =
  Arg.(
    value & flag
    & info [ "verify-diagnostics" ]
        ~doc:
          "Check produced diagnostics against 'expected-error@<offset> \
           {{substring}}' comment annotations (also -warning/-note; \
           offsets: @+N, @-N, @above, @below) in the input and dialect \
           files instead of printing them. Unexpected diagnostics and \
           unfulfilled expectations are reported and exit with status 3.")

let max_errors =
  Arg.(
    value & opt int 0
    & info [ "max-errors" ] ~docv:"N"
        ~doc:
          "Stop collecting after $(docv) errors (0, the default, is \
           unlimited); further errors are counted as suppressed.")

let diag_json =
  Arg.(
    value & opt (some string) None
    & info [ "diag-json" ] ~docv:"FILE"
        ~doc:
          "Write every diagnostic of the run (plus severity counts) as a \
           JSON document to $(docv) ('-' for stdout).")

let pipeline =
  Arg.(
    value & opt (some string) None
    & info [ "pass-pipeline" ] ~docv:"PIPELINE"
        ~doc:
          "Run a comma-separated pass pipeline over the parsed IR, e.g. \
           'canonicalize,cse,dce'. Available passes: canonicalize (greedy \
           pattern rewriting, uses the patterns of $(b,-p)), cse, dce, \
           verify-dominance.")

let dce =
  Arg.(
    value & flag
    & info [ "dce" ]
        ~doc:
          "Deprecated alias: appends 'dce' to the pass pipeline \
           (equivalent to --pass-pipeline dce).")

let cse =
  Arg.(
    value & flag
    & info [ "cse" ]
        ~doc:
          "Deprecated alias: appends 'cse' to the pass pipeline \
           (equivalent to --pass-pipeline cse).")

let dominance =
  Arg.(
    value & flag
    & info [ "dominance" ]
        ~doc:
          "Deprecated alias: appends 'verify-dominance' to the pass \
           pipeline (equivalent to --pass-pipeline verify-dominance).")

let verify_each =
  Arg.(
    value & flag
    & info [ "verify-each" ]
        ~doc:
          "Re-run the verifier after every pass; a failure is attributed \
           to the offending pass by name.")

let print_ir_before =
  Arg.(
    value & opt_all string []
    & info [ "print-ir-before" ] ~docv:"PASS"
        ~doc:"Dump the IR to stderr before the named pass. Repeatable.")

let print_ir_after =
  Arg.(
    value & opt_all string []
    & info [ "print-ir-after" ] ~docv:"PASS"
        ~doc:"Dump the IR to stderr after the named pass. Repeatable.")

let print_ir_before_all =
  Arg.(
    value & flag
    & info [ "print-ir-before-all" ]
        ~doc:"Dump the IR to stderr before every pass.")

let print_ir_after_all =
  Arg.(
    value & flag
    & info [ "print-ir-after-all" ]
        ~doc:"Dump the IR to stderr after every pass.")

let pass_timing =
  Arg.(
    value & opt (some string) None
    & info [ "pass-timing" ] ~docv:"FILE"
        ~doc:
          "Write the per-pass wall-clock timing report (text) to $(docv) \
           ('-' for stderr).")

let pass_timing_json =
  Arg.(
    value & opt (some string) None
    & info [ "pass-timing-json" ] ~docv:"FILE"
        ~doc:
          "Write the per-pass timing report as JSON to $(docv) ('-' for \
           stdout).")

let strict =
  Arg.(
    value & flag
    & info [ "strict-native" ]
        ~doc:
          "Fail on IRDL-C++ snippets with no registered native hook instead \
           of accepting them.")

let verify_stats =
  Arg.(
    value & flag
    & info [ "verify-stats" ]
        ~doc:
          "Report verification-cache statistics (entries, hit rate, \
           invalidations) on stderr after the run.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Verify $(b,--split-input-file) chunks and $(b,--batch) files on \
           $(docv) domains in parallel over the frozen dialect registry \
           (default 1; 0 picks the machine's recommended domain count). \
           Output, exit code and $(b,--diag-json) are byte-identical to a \
           sequential run. Falls back to sequential execution when \
           combined with $(b,--max-errors), $(b,--pass-timing[-json]) or \
           $(b,--print-ir-*), whose output is inherently cross-chunk.")

let batch =
  Arg.(
    value & opt (some string) None
    & info [ "batch" ] ~docv:"PATH"
        ~doc:
          "Process many IR files in one run over one resident dialect \
           registry: $(docv) is a directory (every *.mlir file in it, \
           sorted) or a text file listing one IR path per line ('#' \
           comments allowed). Each file's re-printed output is preceded \
           by a '// ===== <path> =====' header. Cannot be combined with a \
           positional $(b,INPUT).")

let streaming =
  Arg.(
    value & flag
    & info [ "streaming" ]
        ~doc:
          "Force the streaming frontend: parse, verify, re-print and \
           release one top-level operation at a time, bounding peak memory \
           by the largest single operation instead of the whole module. \
           This is already the default whenever no pass pipeline runs; \
           with passes (which transform the module as a whole) the flag \
           warns and falls back to the materializing parser. Output, exit \
           code and $(b,--diag-json) are byte-identical either way.")

let no_streaming =
  Arg.(
    value & flag
    & info [ "no-streaming" ]
        ~doc:
          "Force the materializing parser even on runs where the streaming \
           frontend would apply. Exists for differential testing and \
           debugging; output is byte-identical either way.")

let emit_bytecode =
  Arg.(
    value & opt (some string) None
    & info [ "emit-bytecode" ] ~docv:"FILE"
        ~doc:
          "Write the processed IR as versioned binary bytecode to $(docv) \
           ('-' for stdout) instead of re-printing it as text. Each \
           processed chunk becomes one self-delimiting bytecode document; \
           under $(b,--batch) the documents of every file are concatenated \
           in input order (bytecode needs no headers or separators). \
           Composes with $(b,--split-input-file), $(b,--jobs) and the \
           streaming frontend.")

let load_bytecode =
  Arg.(
    value & flag
    & info [ "load-bytecode" ]
        ~doc:
          "Require bytecode input: inputs that do not start with the \
           bytecode magic are rejected. The input format is always \
           detected automatically (magic sniffing, stdin included); this \
           flag only turns a silent fall-back to the text parser into an \
           error, for pipelines that expect pre-compiled bytecode.")

let emit_dialect_bytecode =
  Arg.(
    value & opt (some string) None
    & info [ "emit-dialect-bytecode" ] ~docv:"FILE"
        ~doc:
          "Write every dialect registered in this run ($(b,--corpus), \
           $(b,--cmath) and $(b,-d) files, in registration order) as a \
           bytecode dialect pack to $(docv) ('-' for stdout). A later run \
           warm-starts by passing the pack to $(b,-d), skipping IRDL \
           parsing and resolution entirely.")

let serve =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:
          "Run as a resident service over stdin/stdout: the dialect \
           registry is loaded once, then length-framed requests (parse, \
           verify, print, emit-bytecode, ping, stats, shutdown) are \
           answered until end of input. Responses preserve request order; \
           diagnostics are byte-identical to a one-shot run over the same \
           input. $(b,--jobs) sets the worker-domain count, the \
           $(b,--max-*)/$(b,--deadline-ms) budgets become the server-wide \
           ceiling, and $(b,--max-queue) bounds the accepted burst.")

let listen =
  Arg.(
    value & opt (some string) None
    & info [ "listen" ] ~docv:"SOCKET"
        ~doc:
          "Like $(b,--serve), but listen on a Unix-domain socket at \
           $(docv), serving any number of concurrent connections until \
           SIGTERM/SIGINT (in-flight requests drain first; the socket \
           file is removed on exit).")

let connect =
  Arg.(
    value & opt (some string) None
    & info [ "connect" ] ~docv:"SOCKET"
        ~doc:
          "Client mode: send the input (positional $(b,INPUT) or stdin) \
           as one request to the server at $(docv) and print its \
           response — diagnostics to stderr, output to stdout, one-shot \
           exit codes. $(b,--verify-only) requests verification only, \
           $(b,--emit-bytecode) a bytecode response; the \
           $(b,--max-*)/$(b,--deadline-ms) budgets ride along with the \
           request.")

let failpoints =
  Arg.(
    value & opt (some string) None
    & info [ "failpoints" ] ~docv:"SPEC"
        ~doc:
          "Arm fault-injection seams: a comma-separated list of \
           $(i,seam[:K]) entries (inject at every K-th hit; default every \
           hit). Seams: parse, verify, bytecode.decode, pool.task. Also \
           settable via $(b,IRDL_FAILPOINTS). Injected faults surface as \
           structured internal-error diagnostics; a server answers the \
           poisoned request and keeps running.")

let max_queue =
  Arg.(
    value & opt int 0
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Bound the request burst a server accepts at once: requests \
           beyond $(docv) are shed with a retry_later response carrying a \
           retry-after-ms hint (0, the default, accepts everything).")

let max_ops =
  Arg.(
    value & opt int 0
    & info [ "max-ops" ] ~docv:"N"
        ~doc:
          "Abort parsing/decoding after $(docv) operations with a \
           resource_exhausted diagnostic (0 = unlimited).")

let max_region_depth =
  Arg.(
    value & opt int 0
    & info [ "max-region-depth" ] ~docv:"N"
        ~doc:
          "Cap region nesting at $(docv) levels; deeper input is rejected \
           with a resource_exhausted diagnostic (0 = unlimited).")

let max_payload_bytes =
  Arg.(
    value & opt int 0
    & info [ "max-payload-bytes" ] ~docv:"N"
        ~doc:
          "Reject inputs larger than $(docv) bytes with a \
           resource_exhausted diagnostic; a server discards oversized \
           request payloads without buffering them (0 = unlimited).")

let deadline_ms =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Give up after $(docv) milliseconds (monotonic clock, checked \
           at operation boundaries) with a deadline_exceeded diagnostic \
           (0 = no deadline).")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let cmd =
  let doc = "parse, verify and transform IR against IRDL-defined dialects" in
  Cmd.v
    (Cmd.info "irdl-opt" ~doc)
    Term.(
      const run $ dialect_files $ pattern_files $ with_corpus $ with_cmath
      $ input $ generic $ verify_only $ split_input_file $ verify_diagnostics
      $ max_errors $ diag_json $ pipeline $ dce $ cse $ dominance
      $ verify_each $ print_ir_before $ print_ir_after $ print_ir_before_all
      $ print_ir_after_all $ pass_timing $ pass_timing_json $ strict
      $ verify_stats $ jobs $ batch $ streaming $ no_streaming $ emit_bytecode
      $ load_bytecode $ emit_dialect_bytecode $ serve $ listen $ connect
      $ failpoints $ max_queue $ max_ops $ max_region_depth
      $ max_payload_bytes $ deadline_ms $ verbose)

(* With SIGPIPE ignored, a downstream reader that stops early (irdl-opt
   ... | head) surfaces as EPIPE on write instead of killing the process;
   treat it as a clean early exit, like every well-behaved filter. *)
let is_broken_pipe = function
  | Unix.Unix_error (Unix.EPIPE, _, _) -> true
  | Sys_error msg ->
      (* OCaml channels wrap the errno text; match it rather than losing
         the case. *)
      let needle = "Broken pipe" in
      let rec find i =
        i + String.length needle <= String.length msg
        && (String.sub msg i (String.length needle) = needle || find (i + 1))
      in
      find 0
  | _ -> false

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Cmd.eval ~catch:false cmd with
  | code -> exit code
  | exception e when is_broken_pipe e ->
      (* The at_exit flushes would hit the same dead pipe and turn the
         clean exit into an uncaught exception; give the buffered bytes
         nowhere to fail. *)
      (try Unix.dup2 (Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0) Unix.stdout
       with Unix.Unix_error _ -> ());
      exit 0
