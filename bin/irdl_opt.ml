(* irdl-opt: the mlir-opt analog of this project.

   Loads IRDL dialect definitions (from files and/or the bundled corpus),
   then parses, verifies, transforms and re-prints an IR file — the full
   dynamic-registration flow of paper §3: no code is generated or compiled
   at any point.

   Transformations run through the instrumented pass manager
   (lib/pass): `--pass-pipeline "canonicalize,cse,dce"` names the passes;
   `--pass-timing`/`--pass-timing-json` report per-pass wall-clock time;
   `--print-ir-before/-after[-all]` snapshot the IR around passes; and
   `--verify-each` re-runs the (memoized) verifier between passes so a
   pass that breaks IR invariants is caught and attributed by name. The
   historical `--dce`/`--cse`/`--dominance` flags remain as deprecated
   aliases that desugar into pipeline entries. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let fail_diag d =
  Fmt.epr "%a@." Irdl_support.Diag.pp d;
  exit 1

let with_out_channel path f =
  if path = "-" then f Fmt.stderr
  else
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let ppf = Format.formatter_of_out_channel oc in
        f ppf;
        Format.pp_print_flush ppf ())

(* The deprecated boolean flags desugar into pipeline entries, in the
   historical execution order (dominance check, pattern application, CSE,
   DCE). With an explicit --pass-pipeline the alias entries are appended
   after it; the parser then reports duplicates uniformly. *)
let effective_pipeline ~pipeline ~have_patterns ~dce ~cse ~dominance =
  let explicit = Option.is_some pipeline in
  let entries =
    Option.to_list pipeline
    @ (if dominance then [ "verify-dominance" ] else [])
    @ (if have_patterns && not explicit then [ "canonicalize" ] else [])
    @ (if cse then [ "cse" ] else [])
    @ if dce then [ "dce" ] else []
  in
  if entries = [] then None else Some (String.concat "," entries)

let run dialect_files pattern_files with_corpus with_cmath input generic
    verify_only pipeline dce cse dominance verify_each print_ir_before
    print_ir_after print_ir_before_all print_ir_after_all pass_timing
    pass_timing_json strict verify_stats verbose =
  setup_logs verbose;
  let ctx = Irdl_ir.Context.create () in
  let native = Irdl_core.Native.create ~strict () in
  if with_cmath then
    Irdl_dialects.Cmath.register_hooks native;
  (* Dialect definitions: bundled corpus, cmath, then user files. *)
  if with_corpus then (
    match Irdl_dialects.Corpus.load_all ~native ctx with
    | Ok _ -> ()
    | Error d -> fail_diag d);
  if with_cmath then (
    match Irdl_core.Irdl.load_one ~native ctx Irdl_dialects.Cmath.source with
    | Ok _ -> ()
    | Error d -> fail_diag d);
  List.iter
    (fun path ->
      match Irdl_core.Irdl.load ~native ~file:path ctx (read_file path) with
      | Ok dls ->
          Logs.info (fun m ->
              m "loaded %d dialect(s) from %s" (List.length dls) path)
      | Error d -> fail_diag d)
    dialect_files;
  (* Textual rewrite patterns (fully dynamic pattern-based flow, paper §3);
     they parameterize the 'canonicalize' pass. *)
  let patterns =
    List.concat_map
      (fun path ->
        match
          Irdl_rewrite.Textual.parse_patterns ctx ~file:path (read_file path)
        with
        | Ok ps ->
            Logs.info (fun m ->
                m "loaded %d pattern(s) from %s" (List.length ps) path);
            ps
        | Error d -> fail_diag d)
      pattern_files
  in
  (* Resolve the pipeline before touching the input so a malformed pipeline
     fails fast. *)
  let passes =
    match
      effective_pipeline ~pipeline ~have_patterns:(patterns <> []) ~dce ~cse
        ~dominance
    with
    | None -> []
    | Some src -> (
        match
          Irdl_pass.Pipeline.parse
            ~available:(Irdl_pass.Passes.builtin ~patterns ())
            src
        with
        | Ok passes -> passes
        | Error d -> fail_diag d)
  in
  if
    patterns <> []
    && not (List.exists (fun p -> Irdl_pass.Pass.name p = "canonicalize") passes)
  then
    Logs.warn (fun m ->
        m "rewrite patterns were loaded but 'canonicalize' is not in the \
           pipeline; they will not be applied");
  (* The IR itself. *)
  let ops =
    match input with
    | None -> []
    | Some path -> (
        let src =
          if path = "-" then In_channel.input_all stdin else read_file path
        in
        match Irdl_ir.Parser.parse_ops ~file:path ctx src with
        | Error d -> fail_diag d
        | Ok ops ->
            (match Irdl_ir.Verifier.verify_ops ctx ops with
            | Ok () -> ()
            | Error d -> fail_diag d);
            ops)
  in
  (* Run the pipeline (even over an empty module: the timing report is
     still produced, with every pass at zero ops). *)
  if passes <> [] then begin
    let mgr =
      Irdl_pass.Pass_manager.create ~verify_each
        ~print_ir_before ~print_ir_after ~print_ir_before_all
        ~print_ir_after_all passes
    in
    match Irdl_pass.Pass_manager.run mgr ctx ops with
    | Error d -> fail_diag d
    | Ok report ->
        (* Whatever ran — CSE and DCE included — the transformed IR must
           still verify, pipeline instrumentation or not. *)
        (match Irdl_ir.Verifier.verify_ops ctx ops with
        | Ok () -> ()
        | Error d -> fail_diag d);
        Option.iter
          (fun path ->
            with_out_channel path (fun ppf ->
                Irdl_pass.Pass_manager.pp_report ppf report))
          pass_timing;
        Option.iter
          (fun path ->
            let json = Irdl_pass.Pass_manager.report_to_json report in
            if path = "-" then print_string json
            else
              let oc = open_out path in
              output_string oc json;
              close_out oc)
          pass_timing_json
  end;
  (match input with
  | None ->
      if passes = [] then
        Fmt.pr "registered dialects: %s@."
          (String.concat ", "
             (List.map
                (fun (d : Irdl_ir.Context.dialect) -> d.d_name)
                (Irdl_ir.Context.dialects ctx)))
  | Some _ ->
      if not verify_only then
        Fmt.pr "%s@." (Irdl_ir.Printer.ops_to_string ~generic ctx ops));
  if verify_stats then
    Fmt.epr "verification cache: %a@." Irdl_ir.Context.pp_verify_stats
      (Irdl_ir.Context.verify_stats ctx)

let dialect_files =
  Arg.(
    value & opt_all file []
    & info [ "d"; "dialect" ] ~docv:"FILE"
        ~doc:"Load IRDL dialect definitions from $(docv). Repeatable.")

let pattern_files =
  Arg.(
    value & opt_all file []
    & info [ "p"; "patterns" ] ~docv:"FILE"
        ~doc:
          "Load textual rewrite patterns from $(docv); they parameterize \
           the 'canonicalize' pass (added to the pipeline automatically \
           when no $(b,--pass-pipeline) is given). Repeatable.")

let with_corpus =
  Arg.(
    value & flag
    & info [ "corpus" ]
        ~doc:"Register the bundled 28-dialect MLIR corpus (Table 1).")

let with_cmath =
  Arg.(
    value & flag
    & info [ "cmath" ]
        ~doc:
          "Register the paper's cmath dialect with its native (IRDL-C++) \
           hooks.")

let input =
  Arg.(
    value & pos 0 (some string) None
    & info [] ~docv:"INPUT"
        ~doc:"IR file to parse and verify ('-' for stdin).")

let generic =
  Arg.(
    value & flag
    & info [ "generic" ]
        ~doc:"Print operations in generic form, ignoring custom formats.")

let verify_only =
  Arg.(
    value & flag
    & info [ "verify-only" ] ~doc:"Verify without re-printing the IR.")

let pipeline =
  Arg.(
    value & opt (some string) None
    & info [ "pass-pipeline" ] ~docv:"PIPELINE"
        ~doc:
          "Run a comma-separated pass pipeline over the parsed IR, e.g. \
           'canonicalize,cse,dce'. Available passes: canonicalize (greedy \
           pattern rewriting, uses the patterns of $(b,-p)), cse, dce, \
           verify-dominance.")

let dce =
  Arg.(
    value & flag
    & info [ "dce" ]
        ~doc:
          "Deprecated alias: appends 'dce' to the pass pipeline \
           (equivalent to --pass-pipeline dce).")

let cse =
  Arg.(
    value & flag
    & info [ "cse" ]
        ~doc:
          "Deprecated alias: appends 'cse' to the pass pipeline \
           (equivalent to --pass-pipeline cse).")

let dominance =
  Arg.(
    value & flag
    & info [ "dominance" ]
        ~doc:
          "Deprecated alias: appends 'verify-dominance' to the pass \
           pipeline (equivalent to --pass-pipeline verify-dominance).")

let verify_each =
  Arg.(
    value & flag
    & info [ "verify-each" ]
        ~doc:
          "Re-run the verifier after every pass; a failure is attributed \
           to the offending pass by name.")

let print_ir_before =
  Arg.(
    value & opt_all string []
    & info [ "print-ir-before" ] ~docv:"PASS"
        ~doc:"Dump the IR to stderr before the named pass. Repeatable.")

let print_ir_after =
  Arg.(
    value & opt_all string []
    & info [ "print-ir-after" ] ~docv:"PASS"
        ~doc:"Dump the IR to stderr after the named pass. Repeatable.")

let print_ir_before_all =
  Arg.(
    value & flag
    & info [ "print-ir-before-all" ]
        ~doc:"Dump the IR to stderr before every pass.")

let print_ir_after_all =
  Arg.(
    value & flag
    & info [ "print-ir-after-all" ]
        ~doc:"Dump the IR to stderr after every pass.")

let pass_timing =
  Arg.(
    value & opt (some string) None
    & info [ "pass-timing" ] ~docv:"FILE"
        ~doc:
          "Write the per-pass wall-clock timing report (text) to $(docv) \
           ('-' for stderr).")

let pass_timing_json =
  Arg.(
    value & opt (some string) None
    & info [ "pass-timing-json" ] ~docv:"FILE"
        ~doc:
          "Write the per-pass timing report as JSON to $(docv) ('-' for \
           stdout).")

let strict =
  Arg.(
    value & flag
    & info [ "strict-native" ]
        ~doc:
          "Fail on IRDL-C++ snippets with no registered native hook instead \
           of accepting them.")

let verify_stats =
  Arg.(
    value & flag
    & info [ "verify-stats" ]
        ~doc:
          "Report verification-cache statistics (entries, hit rate, \
           invalidations) on stderr after the run.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let cmd =
  let doc = "parse, verify and transform IR against IRDL-defined dialects" in
  Cmd.v
    (Cmd.info "irdl-opt" ~doc)
    Term.(
      const run $ dialect_files $ pattern_files $ with_corpus $ with_cmath
      $ input $ generic $ verify_only $ pipeline $ dce $ cse $ dominance
      $ verify_each $ print_ir_before $ print_ir_after $ print_ir_before_all
      $ print_ir_after_all $ pass_timing $ pass_timing_json $ strict
      $ verify_stats $ verbose)

let () = exit (Cmd.eval cmd)
