(** The paper's running example: the [cmath] dialect of Listings 1 and 3,
    extended with every construct introduced in §4 and §5 (Listings 4–11):
    aliases, attributes, optional operands, regions with terminators,
    successors, enums, IRDL-C++ constraints and native parameters. *)

let name = "cmath"

let source =
  {|
Dialect cmath {
  // Listing 3: aliases and the complex type.
  Alias !FloatType = !AnyOf<!f32, !f64>

  Type complex {
    Parameters (elementType: !FloatType)
    Summary "A complex number"
  }

  // Listing 4: aliases for types and parametric constraint aliases.
  Alias !Complexf32 = !complex<!f32>
  Alias !ComplexOr<T> = AnyOf<!complex<!AnyType>, T>

  Operation mul {
    ConstraintVars (!T: !complex<FloatType>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
    Format "$lhs, $rhs : $T.elementType"
    Summary "Multiply two complex numbers"
  }

  Operation norm {
    ConstraintVars (!T: !FloatType)
    Operands (c: !complex<!T>)
    Results (res: !T)
    Format "$c : $T"
    Summary "Compute the norm of a complex number"
  }

  // Listing 5: attributes add static information to operations.
  Operation create_constant {
    Results (res: !complex<!f32>)
    Attributes (re: #f32_attr, im: #f32_attr)
    Summary "Create a constant complex number"
  }

  // Listing 6: optional operands encode a default parameter.
  Operation log {
    Operands (c: !complex<!f32>, base: Optional<!f32>)
    Results (res: !complex<!f32>)
    Summary "Complex logarithm with an optional base"
  }

  // Listing 7: regions with arguments and terminators.
  Operation range_loop_terminator {
    Successors ()
    Summary "Terminates a range_loop body"
  }

  Operation range_loop {
    Operands (lower_bound: !i32, upper_bound: !i32, step: !i32)
    Region body {
      Arguments (induction_variable: !i32)
      Terminator range_loop_terminator
    }
    Summary "A loop iterating over an integer range"
  }

  // Listing 8: successors pass control to other basic blocks.
  Operation conditional_branch {
    Operands (condition: !i1)
    Successors (next_bb_true, next_bb_false)
    Summary "Branch on a condition"
  }

  // Listing 9: enumerations used in types.
  Enum signedness { Signless, Signed, Unsigned }

  Type integer {
    Parameters (bitwidth: uint32_t, signed: signedness)
    Summary "An integer with explicit signedness"
  }

  Alias signed_integer = !integer<uint32_t, signedness.Signed>

  // Listing 10: IRDL-C++ constraints and operation invariants.
  Constraint BoundedInteger : uint32_t {
    Summary "integer value between 0 and 32"
    CppConstraint "$_self <= 32"
  }

  Type BoundedVector {
    Parameters (typ: !AnyType, size: BoundedInteger)
  }

  Operation append_vector {
    ConstraintVars (T: !AnyType)
    Operands (lhs: !BoundedVector<T, BoundedInteger>,
              rhs: !BoundedVector<T, BoundedInteger>)
    Results (res: !BoundedVector<T, BoundedInteger>)
    CppConstraint "$_self.lhs().size() + $_self.rhs().size() == $_self.res().size()"
  }

  // Listing 11: native parameters (IRDL-C++ TypeOrAttrParam).
  TypeOrAttrParam StringParam {
    Summary "A string parameter"
    CppClassName "char*"
    CppParser "parseStringParam($self)"
    CppPrinter "printStringParam($self)"
  }

  Attribute StringAttr {
    Parameters (data: StringParam)
  }
}
|}

open Irdl_ir

(** Size of a !cmath.BoundedVector value's [size] parameter. *)
let bounded_vector_size (ty : Attr.ty) : int64 option =
  match ty with
  | Attr.Dynamic { dialect = "cmath"; name = "BoundedVector"; params = [ _; Attr.Int { value; _ } ] }
    ->
      Some value
  | _ -> None

(** Bind OCaml meaning to the dialect's IRDL-C++ snippets (paper §5: the
    snippets are opaque to IRDL itself; the host language interprets them). *)
let register_hooks (native : Irdl_core.Native.t) =
  Irdl_core.Native.register_param_hook native "$_self <= 32" (fun a ->
      match a with
      | Attr.Int { value; _ } ->
          Int64.compare value 0L >= 0 && Int64.compare value 32L <= 0
      | _ -> false);
  Irdl_core.Native.register_op_hook native
    "$_self.lhs().size() + $_self.rhs().size() == $_self.res().size()"
    (fun op ->
      match (Graph.Op.operands op, Graph.Op.results op) with
      | [ lhs; rhs ], [ res ] -> (
          match
            ( bounded_vector_size (Graph.Value.ty lhs),
              bounded_vector_size (Graph.Value.ty rhs),
              bounded_vector_size (Graph.Value.ty res) )
          with
          | Some a, Some b, Some c -> Int64.add a b = c
          | _ -> false)
      | _ -> false);
  Irdl_core.Native.register_codec native "StringParam"
    {
      Irdl_core.Native.codec_parse =
        (fun s -> Some (Attr.opaque ~tag:"StringParam" s));
      codec_print =
        (fun a ->
          match a with
          | Attr.Opaque { tag = "StringParam"; repr } -> Some repr
          | _ -> None);
    }

(** Load cmath into a context with its native hooks registered. *)
let load ?(native = Irdl_core.Native.create ()) ctx =
  register_hooks native;
  Irdl_core.Irdl.load_one ~native ctx source
