(** The analysis corpus: the 28 MLIR dialects of Table 1, written in IRDL.

    [history] records per-dialect operation-count checkpoints
    ([(YYYY-MM, cumulative ops)]) standing in for the MLIR git history behind
    Figure 3 (see DESIGN.md, substitutions): dialects absent from a month
    have no checkpoint yet; the final 2022-01 value is taken from the parsed
    corpus itself, so the curve's endpoint is measured, not recorded. *)

type entry = {
  name : string;
  description : string;
  source : string;
  history : (string * int) list;
      (** Cumulative op-count checkpoints, oldest first, strictly before the
          analysis date. *)
}

let all : entry list =
  [
    { name = Affine.name; description = Affine.description;
      source = Affine.source;
      history = [ ("2020-04", 12); ("2021-01", 13) ] };
    { name = Amx.name; description = Amx.description; source = Amx.source;
      history = [ ("2021-03", 10) ] };
    { name = Arith.name; description = Arith.description;
      source = Arith.source;
      history = [ ("2021-03", 35) ] };
    { name = Arm_sve.name; description = Arm_sve.description;
      source = Arm_sve.source;
      history = [ ("2020-04", 10); ("2021-02", 20) ] };
    { name = Arm_neon.name; description = Arm_neon.description;
      source = Arm_neon.source;
      history = [ ("2020-04", 3) ] };
    { name = Async.name; description = Async.description;
      source = Async.source;
      history = [ ("2020-04", 8); ("2021-04", 18) ] };
    { name = Builtin.name; description = Builtin.description;
      source = Builtin.source;
      history = [ ("2020-04", 3) ] };
    { name = Complex_dialect.name; description = Complex_dialect.description;
      source = Complex_dialect.source;
      history = [ ("2020-04", 8); ("2021-06", 15) ] };
    { name = Emitc.name; description = Emitc.description;
      source = Emitc.source;
      history = [ ("2021-04", 4) ] };
    { name = Gpu.name; description = Gpu.description; source = Gpu.source;
      history = [ ("2020-04", 18); ("2021-01", 24) ] };
    { name = Linalg.name; description = Linalg.description;
      source = Linalg.source;
      history = [ ("2020-04", 7) ] };
    { name = Llvm.name; description = Llvm.description; source = Llvm.source;
      history = [ ("2020-04", 95); ("2020-10", 105); ("2021-06", 120) ] };
    { name = Math.name; description = Math.description; source = Math.source;
      history = [ ("2021-01", 16) ] };
    { name = Memref.name; description = Memref.description;
      source = Memref.source;
      history = [ ("2021-02", 20) ] };
    { name = Nvvm.name; description = Nvvm.description; source = Nvvm.source;
      history = [ ("2020-04", 15); ("2021-08", 20) ] };
    { name = Pdl.name; description = Pdl.description; source = Pdl.source;
      history = [ ("2020-04", 8); ("2020-10", 12) ] };
    { name = Pdl_interp.name; description = Pdl_interp.description;
      source = Pdl_interp.source;
      history = [ ("2020-10", 25); ("2021-06", 30) ] };
    { name = Quant.name; description = Quant.description;
      source = Quant.source;
      history = [ ("2020-04", 10) ] };
    { name = Rocdl.name; description = Rocdl.description;
      source = Rocdl.source;
      history = [ ("2020-04", 15); ("2021-03", 25) ] };
    { name = Scf.name; description = Scf.description; source = Scf.source;
      history = [ ("2020-04", 7); ("2021-05", 9) ] };
    { name = Shape.name; description = Shape.description;
      source = Shape.source;
      history = [ ("2020-04", 20); ("2020-09", 30) ] };
    { name = Sparse_tensor.name; description = Sparse_tensor.description;
      source = Sparse_tensor.source;
      history = [ ("2021-03", 4) ] };
    { name = Spv.name; description = Spv.description; source = Spv.source;
      history = [ ("2020-04", 105); ("2020-12", 130); ("2021-07", 160) ] };
    { name = Std.name; description = Std.description; source = Std.source;
      (* std shrank as arith/math/memref/tensor were split out of it. *)
      history = [ ("2020-04", 75); ("2021-03", 60); ("2021-10", 50) ] };
    { name = Tensor.name; description = Tensor.description;
      source = Tensor.source;
      history = [ ("2020-12", 8) ] };
    { name = Tosa.name; description = Tosa.description; source = Tosa.source;
      history = [ ("2020-11", 55) ] };
    { name = Vector.name; description = Vector.description;
      source = Vector.source;
      history = [ ("2020-04", 25); ("2021-02", 30) ] };
    { name = X86vector.name; description = X86vector.description;
      source = X86vector.source;
      history = [ ("2021-05", 10) ] };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

(** Parse and resolve the full corpus (no registration). *)
let analyze () : (Irdl_core.Resolve.dialect list, Irdl_support.Diag.t) result
    =
  List.fold_left
    (fun acc e ->
      Result.bind acc (fun dls ->
          match Irdl_core.Irdl.analyze ~file:e.name e.source with
          | Ok [ dl ] -> Ok (dls @ [ dl ])
          | Ok _ ->
              Irdl_support.Diag.errorf
                "corpus entry %s defines more than one dialect" e.name
          | Error d -> Error d))
    (Ok []) all

(** Parse, resolve and register the full corpus into one context. *)
let load_all ?native ?compile (ctx : Irdl_ir.Context.t) =
  List.fold_left
    (fun acc e ->
      Result.bind acc (fun dls ->
          Result.map
            (fun dl -> dls @ [ dl ])
            (Irdl_core.Irdl.load_one ?native ?compile ~file:e.name ctx
               e.source)))
    (Ok []) all
