(** Structured diagnostics.

    Every user-facing failure in the IRDL frontend, the IR parser and the
    generated verifiers is reported as a {!t}: a severity, a message, a source
    location, and optional notes. Internal invariant violations use
    [invalid_arg]/[assert] instead — but {!protect_any} converts even those
    into diagnostics at public entry points, so no input can crash a caller.

    {!Engine} upgrades single-shot reporting into a fail-soft pipeline: an
    engine collects every diagnostic of a run (with severity counts and an
    error cap), forwards them to pluggable handlers, and can serialize the
    whole run as JSON. {!Sources} keeps the text of every lexed buffer so
    diagnostics can be rendered with caret/underline source snippets. *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
  notes : (Loc.t * string) list;
  code : string option;
      (** Machine-readable classification ([resource_exhausted],
          [deadline_exceeded], [injected_fault], ...). [None] for ordinary
          parse/verify diagnostics, whose rendering must stay byte-stable. *)
}

exception Error_exn of t

exception Fatal_exn of t
(** A diagnostic that must abort the whole session, not just the current
    op: budget violations (see {!Limits}) raise this so that fail-soft
    recovery — which catches {!Error_exn} at op boundaries and resumes —
    cannot swallow them and keep consuming the very resource that ran out.
    Only {!protect_any} (the outermost guard of public entry points)
    converts it to [Error]. *)

let make ?(severity = Error) ?(loc = Loc.unknown) ?(notes = []) ?code message =
  { severity; loc; message; notes; code }

let error ?loc ?notes ?code fmt =
  Fmt.kstr (fun message -> make ~severity:Error ?loc ?notes ?code message) fmt

let warning ?loc ?notes fmt =
  Fmt.kstr (fun message -> make ~severity:Warning ?loc ?notes message) fmt

let errorf ?loc ?notes ?code fmt =
  Fmt.kstr
    (fun message -> Result.Error (make ~severity:Error ?loc ?notes ?code message))
    fmt

(** Raise the diagnostic as an exception; callers at API boundaries catch
    [Error_exn] and convert to [result]. *)
let raise_error ?loc ?notes fmt =
  Fmt.kstr
    (fun message -> raise (Error_exn (make ~severity:Error ?loc ?notes message)))
    fmt

let raise_fatal ?loc ?notes ?code fmt =
  Fmt.kstr
    (fun message ->
      raise (Fatal_exn (make ~severity:Error ?loc ?notes ?code message)))
    fmt

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Note -> Fmt.string ppf "note"

let pp ppf t =
  if Loc.is_unknown t.loc then
    Fmt.pf ppf "%a: %s" pp_severity t.severity t.message
  else Fmt.pf ppf "%a: %a: %s" Loc.pp t.loc pp_severity t.severity t.message;
  List.iter
    (fun (loc, note) ->
      if Loc.is_unknown loc then Fmt.pf ppf "@\n  note: %s" note
      else Fmt.pf ppf "@\n  %a: note: %s" Loc.pp loc note)
    t.notes

let to_string t = Fmt.str "%a" pp t

(** Run [f], converting a raised [Error_exn] into [Error diag]. *)
let protect f = try Ok (f ()) with Error_exn d -> Error d

(** Like {!protect}, but additionally converts any other exception — a stray
    [Failure], [Invalid_argument], [Not_found], even a failed assertion —
    into an "internal error" diagnostic. Out-of-memory is re-raised. Public
    entry points use this so no input, however malformed, can crash a
    caller. *)
let protect_any ?(loc = Loc.unknown) f =
  try Ok (f ()) with
  | Error_exn d | Fatal_exn d -> Error d
  | Failpoints.Injected name ->
      Error
        (make ~loc ~code:"injected_fault"
           ("internal error: injected fault at failpoint '" ^ name ^ "'"))
  | Out_of_memory -> raise Out_of_memory
  | Stack_overflow ->
      Error (make ~loc "internal error: stack overflow (input nested too deeply)")
  | exn -> Error (make ~loc ("internal error: " ^ Printexc.to_string exn))

let get_ok = function
  | Ok v -> v
  | Error d -> raise (Error_exn d)

(* ------------------------------------------------------------------ *)
(* Source-buffer registry                                              *)
(* ------------------------------------------------------------------ *)

module Sources = struct
  (* Keyed by file name; {!Sbuf.of_string} registers every buffer it wraps,
     so by the time a diagnostic is rendered the text it points into is
     available here. Re-registration overwrites (the common "<string>"
     scratch name), making rendering best-effort by design.

     The registry is domain-local: parallel workers (--jobs) each parse and
     render their own chunk of a --split-input-file run, and the chunks of
     one file deliberately shadow each other under the same file name — a
     shared table would race and would render chunk A's diagnostics
     against chunk B's padding. A worker that needs the main domain's
     registrations (dialect files loaded before the fan-out) seeds itself
     with {!snapshot}/{!preload}. *)
  let key : (string, string) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 16)

  let table () = Domain.DLS.get key

  let register ~file src = if file <> "" then Hashtbl.replace (table ()) file src
  let lookup file = Hashtbl.find_opt (table ()) file
  let drop file = Hashtbl.remove (table ()) file
  let clear () = Hashtbl.reset (table ())

  let snapshot () = Hashtbl.fold (fun k v acc -> (k, v) :: acc) (table ()) []

  let preload entries =
    List.iter (fun (file, src) -> register ~file src) entries
end

(* ------------------------------------------------------------------ *)
(* Snippet rendering                                                   *)
(* ------------------------------------------------------------------ *)

(* [start, end) byte offsets of 1-based line [n] in [src]; None when out of
   range. Lines are located by counting newlines, not by the location's
   offset, so rendering stays correct for sources re-materialized with the
   same line structure (e.g. --split-input-file chunks padded with blank
   lines). *)
let line_bounds src n =
  let len = String.length src in
  let rec find_start line i =
    if line >= n then Some i
    else
      match String.index_from_opt src i '\n' with
      | Some j when j + 1 <= len -> find_start (line + 1) (j + 1)
      | _ -> None
  in
  if n < 1 then None
  else
    match find_start 1 0 with
    | None -> None
    | Some start ->
        let stop =
          match String.index_from_opt src start '\n' with
          | Some j -> j
          | None -> len
        in
        Some (start, stop)

(** Render the source line under [loc] with a [^~~~] caret span, when the
    file's text is available in {!Sources}. Renders nothing otherwise. *)
let pp_snippet ppf (loc : Loc.t) =
  if not (Loc.is_unknown loc) then
    match Sources.lookup loc.start_pos.file with
    | None -> ()
    | Some src -> (
        match line_bounds src loc.start_pos.line with
        | None -> ()
        | Some (start, stop) ->
            let line =
              String.map
                (fun c -> if c = '\t' then ' ' else c)
                (String.sub src start (stop - start))
            in
            let gutter = string_of_int loc.start_pos.line in
            let col = max 1 (min loc.start_pos.col (String.length line + 1)) in
            let width =
              if
                loc.end_pos.line = loc.start_pos.line
                && loc.end_pos.col > loc.start_pos.col
              then loc.end_pos.col - loc.start_pos.col
              else 1
            in
            let width = max 1 (min width (String.length line - col + 2)) in
            Fmt.pf ppf "@\n  %s | %s@\n  %s | %s^%s" gutter line
              (String.make (String.length gutter) ' ')
              (String.make (col - 1) ' ')
              (String.make (width - 1) '~'))

(** Like {!pp}, with a rendered source snippet under the header line and
    under every note whose location is known. *)
let pp_rendered ppf t =
  if Loc.is_unknown t.loc then
    Fmt.pf ppf "%a: %s" pp_severity t.severity t.message
  else Fmt.pf ppf "%a: %a: %s" Loc.pp t.loc pp_severity t.severity t.message;
  pp_snippet ppf t.loc;
  List.iter
    (fun (loc, note) ->
      if Loc.is_unknown loc then Fmt.pf ppf "@\n  note: %s" note
      else Fmt.pf ppf "@\n  %a: note: %s" Loc.pp loc note;
      pp_snippet ppf loc)
    t.notes

(* ------------------------------------------------------------------ *)
(* JSON serialization                                                  *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let loc_json (loc : Loc.t) =
  if Loc.is_unknown loc then {|"file": null, "line": 0, "col": 0|}
  else
    Printf.sprintf {|"file": "%s", "line": %d, "col": %d|}
      (json_escape loc.start_pos.file)
      loc.start_pos.line loc.start_pos.col

let to_json t =
  let notes =
    t.notes
    |> List.map (fun (loc, note) ->
           Printf.sprintf {|{ %s, "message": "%s" }|} (loc_json loc)
             (json_escape note))
    |> String.concat ", "
  in
  (* [code] is emitted only when present, so the serialization of every
     pre-existing diagnostic stays byte-identical. *)
  let code =
    match t.code with
    | None -> ""
    | Some c -> Printf.sprintf {| "code": "%s",|} (json_escape c)
  in
  Printf.sprintf
    {|{ "severity": "%s",%s %s, "message": "%s", "notes": [%s] }|}
    (Fmt.str "%a" pp_severity t.severity)
    code (loc_json t.loc) (json_escape t.message) notes

(* ------------------------------------------------------------------ *)
(* Diagnostic engine                                                   *)
(* ------------------------------------------------------------------ *)

type diag = t

module Engine = struct
  type handler = diag -> unit

  type t = {
    mutable diags_rev : diag list;
    mutable n_errors : int;
    mutable n_warnings : int;
    mutable n_notes : int;
    mutable n_suppressed : int;
    max_errors : int;  (** 0 = unlimited *)
    mutable handlers : handler list;
  }

  let create ?(max_errors = 0) () =
    {
      diags_rev = [];
      n_errors = 0;
      n_warnings = 0;
      n_notes = 0;
      n_suppressed = 0;
      max_errors;
      handlers = [];
    }

  let add_handler e h = e.handlers <- e.handlers @ [ h ]

  let limit_reached e = e.max_errors > 0 && e.n_errors >= e.max_errors

  (** Record a diagnostic, bump the severity counts and run every handler.
      Errors past the [max_errors] cap are counted as suppressed and
      neither recorded nor forwarded. *)
  let emit e (d : diag) =
    if d.severity = Error && limit_reached e then
      e.n_suppressed <- e.n_suppressed + 1
    else begin
      e.diags_rev <- d :: e.diags_rev;
      (match d.severity with
      | Error -> e.n_errors <- e.n_errors + 1
      | Warning -> e.n_warnings <- e.n_warnings + 1
      | Note -> e.n_notes <- e.n_notes + 1);
      List.iter (fun h -> h d) e.handlers
    end

  (* Like {!emit} with the handlers skipped: used to replay diagnostics a
     parallel worker already collected (and rendered with its own sources)
     into the main engine, keeping counts/JSON without double-printing. *)
  let record e (d : diag) =
    if d.severity = Error && limit_reached e then
      e.n_suppressed <- e.n_suppressed + 1
    else begin
      e.diags_rev <- d :: e.diags_rev;
      match d.severity with
      | Error -> e.n_errors <- e.n_errors + 1
      | Warning -> e.n_warnings <- e.n_warnings + 1
      | Note -> e.n_notes <- e.n_notes + 1
    end

  let diagnostics e = List.rev e.diags_rev
  let error_count e = e.n_errors
  let warning_count e = e.n_warnings
  let note_count e = e.n_notes
  let suppressed_count e = e.n_suppressed
  let has_errors e = e.n_errors > 0

  (** A handler printing each diagnostic to [ppf], one per line, with
      source snippets unless [snippets:false]. *)
  let printer ?(snippets = true) ppf : handler =
   fun d -> Fmt.pf ppf "%a@." (if snippets then pp_rendered else pp) d

  let to_json e =
    let diags =
      diagnostics e |> List.map to_json |> String.concat ",\n    "
    in
    Printf.sprintf
      {|{
  "errors": %d,
  "warnings": %d,
  "notes": %d,
  "suppressed": %d,
  "diagnostics": [
    %s
  ]
}|}
      e.n_errors e.n_warnings e.n_notes e.n_suppressed diags
end
