(* See the interface. The registry is a single atomic holding an immutable
   list of entries; each entry carries its own atomic hit counter, so
   concurrent domains hitting the same seam count (and fire) without locks.
   [configure] swaps the whole list, which is safe against concurrent
   [hit]s: a hit either sees the old entries or the new ones. *)

exception Injected of string

type entry = {
  fp_name : string;
  fp_every : int;  (* fire on every [fp_every]-th hit; 1 = always *)
  fp_hits : int Atomic.t;
  fp_injected : int Atomic.t;
}

let registry : entry list Atomic.t = Atomic.make []

(* Fast-path guard: [hit] loads only this when nothing is armed. *)
let armed = Atomic.make false

let clear () =
  Atomic.set registry [];
  Atomic.set armed false

let parse_entry s =
  match String.index_opt s ':' with
  | None ->
      if s = "" then Error "empty failpoint name"
      else Ok (s, 1)
  | Some i -> (
      let name = String.sub s 0 i in
      let k = String.sub s (i + 1) (String.length s - i - 1) in
      if name = "" then Error "empty failpoint name"
      else
        match int_of_string_opt k with
        | Some k when k >= 1 -> Ok (name, k)
        | _ -> Error (Printf.sprintf "bad failpoint period '%s' (want an integer >= 1)" k))

let configure spec =
  let parts =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: tl -> (
        match parse_entry p with
        | Ok (name, every) ->
            go
              ({
                 fp_name = name;
                 fp_every = every;
                 fp_hits = Atomic.make 0;
                 fp_injected = Atomic.make 0;
               }
              :: acc)
              tl
        | Error _ as e -> e)
  in
  match go [] parts with
  | Error _ as e -> e
  | Ok entries ->
      Atomic.set registry entries;
      Atomic.set armed (entries <> []);
      Ok ()

let active () = Atomic.get armed

let find name =
  List.find_opt (fun e -> e.fp_name = name) (Atomic.get registry)

let hit name =
  if Atomic.get armed then
    match find name with
    | None -> ()
    | Some e ->
        let n = Atomic.fetch_and_add e.fp_hits 1 + 1 in
        if n mod e.fp_every = 0 then begin
          Atomic.incr e.fp_injected;
          raise (Injected name)
        end

let injected_count name =
  match find name with None -> 0 | Some e -> Atomic.get e.fp_injected

let seams () =
  List.map
    (fun e -> (e.fp_name, e.fp_every, Atomic.get e.fp_injected))
    (Atomic.get registry)

(* Arm from the environment once at program start, so any embedding — the
   irdl-opt binary, the test runner, a library user — can inject faults
   without code changes. A malformed spec is reported once and ignored
   (fault injection must never break a production start-up). *)
let () =
  match Sys.getenv_opt "IRDL_FAILPOINTS" with
  | None | Some "" -> ()
  | Some spec -> (
      match configure spec with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "warning: ignoring IRDL_FAILPOINTS: %s\n%!" msg)
