(** A monotonic clock.

    Wall-clock time ([Unix.gettimeofday]) can step backwards or jump
    forwards when NTP corrects the system clock; anything computing a
    duration from two wall-clock samples can observe negative or garbage
    intervals. Every in-repo timing (per-pass reports, benchmarks' internal
    checks) and every deadline (the resident server's per-request budget)
    goes through this module instead: [CLOCK_MONOTONIC] via a tiny C stub,
    no dependency beyond libc.

    The absolute value of {!now_ns} is meaningless (typically time since
    boot); only differences are. *)

val now_ns : unit -> int64
(** The current monotonic time in nanoseconds. *)

val now_s : unit -> float
(** {!now_ns} in seconds, for timing code that subtracts two samples. *)

val elapsed_s : int64 -> float
(** [elapsed_s t0] is the seconds elapsed since the {!now_ns} sample [t0]. *)

val add_ms : int64 -> int -> int64
(** [add_ms t ms] is [t] advanced by [ms] milliseconds — deadline
    arithmetic for {!Limits}. *)
