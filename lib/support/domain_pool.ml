(** A small work-stealing pool of OCaml 5 domains. See the interface for
    the contract; the notes here are about the synchronization.

    One mutex [m] protects the batch lifecycle (generation counter, current
    batch pointer, stop flag); workers sleep on [start] between batches and
    the caller sleeps on [finished] while the last tasks drain. The task
    queues themselves are per-participant, each behind its own lock, so the
    only cross-domain contention during a batch is stealing — and a steal
    only happens when a participant's own queue is dry.

    Completion is tracked by an atomic countdown seeded with the batch
    size: whoever finishes the last task broadcasts [finished] (taking [m]
    first, so the caller cannot miss the wakeup between its check and its
    wait). Task results and exceptions are written into per-index slots
    before the countdown tick, and the caller reads them only after
    observing the countdown at zero — the atomic provides the
    happens-before edge, so no further synchronization is needed on the
    slots themselves. *)

type batch = {
  queues : (unit -> unit) Queue.t array;  (** one deque per participant *)
  qlocks : Mutex.t array;
  pending : int Atomic.t;  (** tasks not yet finished *)
}

type t = {
  total : int;  (** participants: spawned workers + the caller *)
  mutable current : batch option;  (** protected by [m] *)
  mutable generation : int;  (** bumped per batch; protected by [m] *)
  mutable stopped : bool;  (** protected by [m] *)
  mutable running : bool;  (** re-entrancy guard; protected by [m] *)
  m : Mutex.t;
  start : Condition.t;  (** workers wait here between batches *)
  finished : Condition.t;  (** the caller waits here for the countdown *)
  steals : int Atomic.t;
  executed : int Atomic.t;
  mutable workers : unit Domain.t list;
}

exception Stopped

let size t = t.total
let steals t = Atomic.get t.steals
let executed t = Atomic.get t.executed

(* Pop from queue [j], locking only when the unlocked emptiness peek says
   there might be work. The peek is racy by design: a stale "empty" just
   means another scan round, a stale "non-empty" costs one lock. *)
let try_take (b : batch) j =
  if Queue.is_empty b.queues.(j) then None
  else begin
    Mutex.lock b.qlocks.(j);
    let r = Queue.take_opt b.queues.(j) in
    Mutex.unlock b.qlocks.(j);
    r
  end

let signal_finished pool =
  Mutex.lock pool.m;
  Condition.broadcast pool.finished;
  Mutex.unlock pool.m

(* Run tasks until no queue has any left: own queue first, then steal
   round-robin from the neighbours. Returns when the whole batch is either
   finished or being finished by other participants. *)
let drain pool (b : batch) me =
  let n = pool.total in
  let rec find k =
    if k >= n then None
    else
      let j = (me + k) mod n in
      match try_take b j with
      | Some task ->
          if j <> me then Atomic.incr pool.steals;
          Some task
      | None -> find (k + 1)
  in
  let rec loop () =
    match find 0 with
    | None -> ()
    | Some task ->
        (* Tasks are wrapped by [run]: they store their own outcome and
           never raise. *)
        task ();
        Atomic.incr pool.executed;
        if Atomic.fetch_and_add b.pending (-1) = 1 then signal_finished pool;
        loop ()
  in
  loop ()

let worker_loop pool index =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.m;
    while (not pool.stopped) && pool.generation = !seen do
      Condition.wait pool.start pool.m
    done;
    if pool.stopped then begin
      Mutex.unlock pool.m;
      running := false
    end
    else begin
      seen := pool.generation;
      let b = pool.current in
      Mutex.unlock pool.m;
      match b with Some b -> drain pool b index | None -> ()
    end
  done

let create ?domains () =
  let total =
    match domains with
    | None -> max 1 (Domain.recommended_domain_count ())
    | Some n ->
        if n < 1 then invalid_arg "Domain_pool.create: domains must be >= 1";
        n
  in
  let pool =
    {
      total;
      current = None;
      generation = 0;
      stopped = false;
      running = false;
      m = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      steals = Atomic.make 0;
      executed = Atomic.make 0;
      workers = [];
    }
  in
  (* Participant 0 is the caller; workers take indices 1 .. total-1. *)
  pool.workers <-
    List.init (total - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let run pool (tasks : (unit -> 'a) array) : 'a array =
  Mutex.lock pool.m;
  if pool.stopped then begin
    Mutex.unlock pool.m;
    raise Stopped
  end;
  if pool.running then begin
    Mutex.unlock pool.m;
    invalid_arg "Domain_pool.run: a batch is already running"
  end;
  pool.running <- true;
  Mutex.unlock pool.m;
  let n = Array.length tasks in
  let finish_batch () =
    Mutex.lock pool.m;
    pool.running <- false;
    Mutex.unlock pool.m
  in
  if n = 0 then begin
    finish_batch ();
    [||]
  end
  else begin
    let results :
        ('a, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let wrap j () =
      let outcome =
        match tasks.(j) () with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(j) <- Some outcome
    in
    let b =
      {
        queues = Array.init pool.total (fun _ -> Queue.create ());
        qlocks = Array.init pool.total (fun _ -> Mutex.create ());
        pending = Atomic.make n;
      }
    in
    for j = 0 to n - 1 do
      Queue.add (wrap j) b.queues.(j mod pool.total)
    done;
    Mutex.lock pool.m;
    pool.current <- Some b;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.start;
    Mutex.unlock pool.m;
    drain pool b 0;
    Mutex.lock pool.m;
    while Atomic.get b.pending > 0 do
      Condition.wait pool.finished pool.m
    done;
    pool.current <- None;
    pool.running <- false;
    Mutex.unlock pool.m;
    (match
       Array.find_map
         (function Some (Error e) -> Some e | _ -> None)
         results
     with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None ->
            (* Unreachable: the countdown reached zero, so every slot was
               filled, and failures re-raised above. *)
            assert false)
      results
  end

let shutdown pool =
  Mutex.lock pool.m;
  if pool.stopped then Mutex.unlock pool.m
  else begin
    pool.stopped <- true;
    Condition.broadcast pool.start;
    Mutex.unlock pool.m;
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
