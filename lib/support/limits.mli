(** Resource budgets for untrusted input.

    A {!t} is an immutable description of what a parse/verify session may
    consume: payload bytes, total operations, region-nesting depth, and an
    absolute monotonic deadline. A {!budget} is the mutable per-session
    counter state derived from it; the parsers call {!tick_op} /
    {!enter_region} / {!leave_region} at op and region boundaries, and a
    blown budget raises {!Diag.Fatal_exn} with a located diagnostic whose
    [code] is {!resource_exhausted} or {!deadline_exceeded} — fatal, not
    recoverable, because fail-soft recovery resuming after "too many ops"
    would keep consuming the very resource that ran out.

    Everywhere, [0] means "unlimited" for the [int] fields and "no
    deadline" for [deadline_ns]. {!unlimited} is the default threaded
    through every entry point, so existing callers pay one integer compare
    per check. *)

type t = {
  max_payload_bytes : int;  (** input size cap; 0 = unlimited *)
  max_ops : int;  (** total parsed/decoded operations; 0 = unlimited *)
  max_depth : int;  (** region-nesting depth; 0 = unlimited *)
  deadline_ns : int64;
      (** absolute {!Monotonic.now_ns} deadline; 0 = none *)
}

val unlimited : t

val create :
  ?max_payload_bytes:int ->
  ?max_ops:int ->
  ?max_depth:int ->
  ?deadline_ns:int64 ->
  unit ->
  t
(** Omitted fields are unlimited. Negative values are treated as 0. *)

val with_deadline_ms : t -> int -> t
(** [with_deadline_ms t ms] sets the deadline to [ms] milliseconds from
    now ({!Monotonic.now_ns}); [ms <= 0] clears it. *)

val meet : t -> t -> t
(** Pointwise strictest combination: for each field the smaller nonzero
    value wins (a server's configured ceiling meets a request's own
    limits — a request can tighten but never loosen). *)

val is_unlimited : t -> bool

val resource_exhausted : string
(** Diagnostic code ["resource_exhausted"] (ops / depth / payload caps). *)

val deadline_exceeded : string
(** Diagnostic code ["deadline_exceeded"]. *)

val is_budget_code : string option -> bool
(** Whether a diagnostic's [code] is one of the two budget codes. *)

type budget
(** Mutable per-session counter state. Not thread-safe: one budget per
    parse/decode session, confined to the domain running it. *)

val budget : t -> budget
(** Fresh counters for one session of [t]. *)

val limits_of : budget -> t

val check_payload : budget -> file:string -> int -> unit
(** Check an input's byte size against [max_payload_bytes] before any
    parsing; raises {!Diag.Fatal_exn} ([resource_exhausted]) on excess. *)

val tick_op : budget -> loc:Loc.t -> unit
(** Account one operation at [loc]: raises {!Diag.Fatal_exn} with
    [resource_exhausted] past [max_ops], or [deadline_exceeded] once the
    deadline has passed. The deadline is polled here (op granularity) so a
    slow parse cannot overshoot by more than one op. *)

val enter_region : budget -> loc:Loc.t -> unit
(** Account one level of region nesting; raises past [max_depth]. Pair
    with {!leave_region} (use [Fun.protect] so error paths unwind). *)

val leave_region : budget -> unit

val ops_used : budget -> int
(** Operations accounted so far, for stats/tests. *)
