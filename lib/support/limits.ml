(* See the interface. *)

type t = {
  max_payload_bytes : int;
  max_ops : int;
  max_depth : int;
  deadline_ns : int64;
}

let unlimited =
  { max_payload_bytes = 0; max_ops = 0; max_depth = 0; deadline_ns = 0L }

let clamp n = if n < 0 then 0 else n

let create ?(max_payload_bytes = 0) ?(max_ops = 0) ?(max_depth = 0)
    ?(deadline_ns = 0L) () =
  {
    max_payload_bytes = clamp max_payload_bytes;
    max_ops = clamp max_ops;
    max_depth = clamp max_depth;
    deadline_ns = (if Int64.compare deadline_ns 0L < 0 then 0L else deadline_ns);
  }

let with_deadline_ms t ms =
  if ms <= 0 then { t with deadline_ns = 0L }
  else { t with deadline_ns = Monotonic.add_ms (Monotonic.now_ns ()) ms }

(* 0 is "unlimited", so the strictest combination is min-over-nonzero. *)
let meet_int a b = if a = 0 then b else if b = 0 then a else min a b

let meet_ns a b =
  if a = 0L then b
  else if b = 0L then a
  else if Int64.compare a b < 0 then a
  else b

let meet a b =
  {
    max_payload_bytes = meet_int a.max_payload_bytes b.max_payload_bytes;
    max_ops = meet_int a.max_ops b.max_ops;
    max_depth = meet_int a.max_depth b.max_depth;
    deadline_ns = meet_ns a.deadline_ns b.deadline_ns;
  }

let is_unlimited t = t = unlimited

let resource_exhausted = "resource_exhausted"
let deadline_exceeded = "deadline_exceeded"

let is_budget_code = function
  | Some c -> c = resource_exhausted || c = deadline_exceeded
  | None -> false

type budget = { limits : t; mutable ops : int; mutable depth : int }

let budget limits = { limits; ops = 0; depth = 0 }
let limits_of b = b.limits

let check_payload b ~file size =
  let cap = b.limits.max_payload_bytes in
  if cap > 0 && size > cap then
    Diag.raise_fatal
      ~loc:(Loc.point (Loc.start_of_file file))
      ~code:resource_exhausted
      "input of %d bytes exceeds the payload limit of %d bytes" size cap

let tick_op b ~loc =
  b.ops <- b.ops + 1;
  let cap = b.limits.max_ops in
  if cap > 0 && b.ops > cap then
    Diag.raise_fatal ~loc ~code:resource_exhausted
      "operation limit of %d exceeded" cap;
  let dl = b.limits.deadline_ns in
  if Int64.compare dl 0L > 0 && Int64.compare (Monotonic.now_ns ()) dl > 0 then
    Diag.raise_fatal ~loc ~code:deadline_exceeded
      "deadline exceeded after %d operations" b.ops

(* The failed entry is not counted: a rejected [enter_region] has no
   matching [leave_region] (the raise skips the protected body), so
   counting it would leak a level and make the budget drift. *)
let enter_region b ~loc =
  let cap = b.limits.max_depth in
  if cap > 0 && b.depth + 1 > cap then
    Diag.raise_fatal ~loc ~code:resource_exhausted
      "region nesting depth limit of %d exceeded" cap;
  b.depth <- b.depth + 1

let leave_region b = b.depth <- b.depth - 1
let ops_used b = b.ops
