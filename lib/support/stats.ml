(** Unified transformation statistics: ordered named counters. See the
    interface for the design notes. *)

type t = (string * int) list

let empty = []

let v counters =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (k, _) ->
      if Hashtbl.mem seen k then
        invalid_arg (Printf.sprintf "Stats.v: duplicate counter %S" k);
      Hashtbl.add seen k ())
    counters;
  counters

let get t name = Option.value ~default:0 (List.assoc_opt name t)
let get_flag t name = get t name <> 0

let add a b =
  List.map (fun (k, va) -> (k, va + get b k)) a
  @ List.filter (fun (k, _) -> not (List.mem_assoc k a)) b

let counters t = t
let is_empty t = t = []

let pp ppf = function
  | [] -> Fmt.string ppf "(no statistics)"
  | t ->
      Fmt.(list ~sep:(any ", ") (fun ppf (k, n) -> pf ppf "%s=%d" k n)) ppf t

(* Counter names are programmer-chosen identifiers; escape the JSON string
   metacharacters anyway so arbitrary names cannot corrupt the output. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json = function
  | [] -> "{}"
  | t ->
      "{ "
      ^ String.concat ", "
          (List.map (fun (k, n) -> Printf.sprintf "\"%s\": %d" (escape k) n) t)
      ^ " }"
