(** A small work-stealing pool of OCaml 5 domains.

    The pool runs batches of independent tasks over a fixed set of resident
    domains: [create] spawns the workers once, [run] schedules one batch and
    blocks until every task finished, and the pool is reusable for any
    number of subsequent batches until [shutdown]. The calling domain
    participates in every batch, so [~domains:n] means [n]-way parallelism
    with [n - 1] spawned workers — and [~domains:1] degrades to plain
    sequential execution on the caller, with no domain ever spawned.

    Scheduling is work-stealing: tasks are dealt round-robin into one queue
    per participant, each participant drains its own queue first and then
    steals from the others, so an unbalanced batch (a few long chunks among
    many short ones) still keeps every domain busy.

    Results are collected positionally: [run pool tasks] returns an array
    where slot [i] is the result of [tasks.(i)], whatever domain executed
    it and in whatever order — callers relying on deterministic output just
    fold the result array in input order. A task that raises does not kill
    the pool: the batch runs to completion and [run] then re-raises the
    exception of the lowest-indexed failed task (with its backtrace), so
    error reporting is deterministic too. *)

type t

exception Stopped
(** Raised by {!run} on a pool that was already {!shutdown}. *)

val create : ?domains:int -> unit -> t
(** [create ~domains:n ()] spawns [n - 1] worker domains ([n] total
    participants including the caller). Defaults to
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument when [n < 1]. *)

val size : t -> int
(** Total participants (spawned workers + the calling domain). *)

val run : t -> (unit -> 'a) array -> 'a array
(** Execute one batch, blocking until every task completed. Slot [i] of the
    result is the value of [tasks.(i)]. If tasks failed, re-raises the
    exception of the lowest-indexed failure after the whole batch drained.
    An empty batch returns [[||]] immediately.
    @raise Stopped on a pool that was shut down.
    @raise Invalid_argument when called re-entrantly (from inside a task)
    or concurrently — one batch at a time. *)

val steals : t -> int
(** Cumulative count of tasks executed by a participant other than the one
    they were dealt to — observability for tests and benchmarks. *)

val executed : t -> int
(** Cumulative count of tasks executed across all batches. *)

val shutdown : t -> unit
(** Stop and join every worker domain. Idempotent; subsequent {!run} calls
    raise {!Stopped}. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] over a fresh pool and shuts it down on
    the way out, exception or not. *)
