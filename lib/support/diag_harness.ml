(** The MLIR-style diagnostic test harness.

    Two building blocks used by [irdl-opt]:

    - {!split_input} cuts a source file at [// -----] separator lines into
      independent chunks, each padded with leading newlines so every
      diagnostic keeps its original line number.
    - {!scan_expectations}/{!check} implement [--verify-diagnostics]:
      [// expected-error@<offset> {{substring}}] annotations (and the
      [expected-warning]/[expected-note] variants) are matched against the
      diagnostics a run actually produced, reporting both unexpected
      diagnostics and annotations nothing fulfilled. *)

let is_separator line = String.trim line = "// -----"

(* Split [src] at separator lines. Each chunk is re-materialized with one
   leading newline per preceding source line, so the lexer reports the same
   line numbers it would for the whole file — and Diag's snippet renderer,
   which looks lines up by number, stays exact. Without any separator the
   source is returned untouched. *)
let split_input src =
  let lines = String.split_on_char '\n' src in
  if not (List.exists is_separator lines) then [ src ]
  else begin
    let chunks = ref [] in
    let current = ref [] in
    let start_line = ref 0 in
    let lineno = ref 0 in
    let flush () =
      let body = String.concat "\n" (List.rev !current) in
      chunks := (String.make !start_line '\n' ^ body) :: !chunks;
      current := []
    in
    List.iter
      (fun line ->
        if is_separator line then begin
          flush ();
          start_line := !lineno + 1
        end
        else current := line :: !current;
        incr lineno)
      lines;
    flush ();
    List.rev !chunks
  end

(* ------------------------------------------------------------------ *)
(* Expected-diagnostic annotations                                     *)
(* ------------------------------------------------------------------ *)

type expectation = {
  exp_file : string;
  exp_line : int;  (** line the diagnostic must be located on *)
  exp_decl_line : int;  (** line of the annotation comment itself *)
  exp_severity : Diag.severity;
  exp_substr : string;
  mutable exp_matched : bool;
}

let find_from s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if m = 0 || i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go (max 0 from)

let contains s sub = find_from s sub 0 <> None

(* Parse the "@+2" / "@-1" / "@above" / "@below" offset suffix starting at
   [i]; no suffix means "this very line". Returns (line-delta, index after
   the suffix), or None when the suffix is malformed. *)
let parse_offset line i =
  let n = String.length line in
  if i >= n || line.[i] <> '@' then Some (0, i)
  else
    let i = i + 1 in
    let word_at w delta =
      let m = String.length w in
      if i + m <= n && String.sub line i m = w then Some (delta, i + m)
      else None
    in
    match word_at "above" (-1) with
    | Some _ as r -> r
    | None -> (
        match word_at "below" 1 with
        | Some _ as r -> r
        | None ->
            if i < n && (line.[i] = '+' || line.[i] = '-') then begin
              let sign = if line.[i] = '+' then 1 else -1 in
              let j = ref (i + 1) in
              let v = ref 0 in
              let digits = ref 0 in
              while
                !j < n && line.[!j] >= '0' && line.[!j] <= '9' && !digits < 6
              do
                v := (!v * 10) + (Char.code line.[!j] - Char.code '0');
                incr j;
                incr digits
              done;
              if !digits = 0 then None else Some (sign * !v, !j)
            end
            else None)

let keywords =
  [
    ("expected-error", Diag.Error);
    ("expected-warning", Diag.Warning);
    ("expected-note", Diag.Note);
  ]

(* All annotations on one line. An annotation only counts inside a [//]
   comment; malformed ones (bad offset, missing [{{..}}]) are reported as
   harness errors rather than silently ignored. *)
let scan_line ~file ~lineno line =
  match find_from line "//" 0 with
  | None -> ([], [])
  | Some comment_at ->
      let expectations = ref [] and errors = ref [] in
      List.iter
        (fun (kw, severity) ->
          let rec scan from =
            match find_from line kw from with
            | None -> ()
            | Some i when i < comment_at -> scan (i + 1)
            | Some i -> (
                let after = i + String.length kw in
                match parse_offset line after with
                | None ->
                    errors :=
                      Diag.error
                        "%s:%d: malformed offset after '%s' (expected @+N, \
                         @-N, @above or @below)"
                        file lineno kw
                      :: !errors;
                    scan (after + 1)
                | Some (delta, j) -> (
                    let j = ref j in
                    let n = String.length line in
                    while !j < n && (line.[!j] = ' ' || line.[!j] = '\t') do
                      incr j
                    done;
                    match find_from line "{{" !j with
                    | Some b when b = !j -> (
                        match find_from line "}}" (b + 2) with
                        | None ->
                            errors :=
                              Diag.error "%s:%d: unterminated {{...}} after '%s'"
                                file lineno kw
                              :: !errors;
                            scan (after + 1)
                        | Some e ->
                            expectations :=
                              {
                                exp_file = file;
                                exp_line = lineno + delta;
                                exp_decl_line = lineno;
                                exp_severity = severity;
                                exp_substr = String.sub line (b + 2) (e - b - 2);
                                exp_matched = false;
                              }
                              :: !expectations;
                            scan (e + 2))
                    | _ ->
                        errors :=
                          Diag.error "%s:%d: expected {{...}} after '%s'" file
                            lineno kw
                          :: !errors;
                        scan (after + 1)))
          in
          scan comment_at)
        keywords;
      (List.rev !expectations, List.rev !errors)

(** Collect every annotation in [src]. Returns the expectations plus
    harness errors for malformed annotations. *)
let scan_expectations ~file src =
  let lines = String.split_on_char '\n' src in
  let expectations = ref [] and errors = ref [] in
  List.iteri
    (fun i line ->
      let exps, errs = scan_line ~file ~lineno:(i + 1) line in
      expectations := List.rev_append exps !expectations;
      errors := List.rev_append errs !errors)
    lines;
  (List.rev !expectations, List.rev !errors)

let loc_of_line file line : Loc.t =
  let pos = { Loc.file; line; col = 1; offset = 0 } in
  { start_pos = pos; end_pos = pos }

(* A diagnostic plus its notes, flattened into matchable
   (severity, loc, message) triples. *)
let flatten (d : Diag.t) =
  (d.severity, d.loc, d.message)
  :: List.map (fun (loc, msg) -> (Diag.Note, loc, msg)) d.notes

(** Match [diags] against [expectations] (mutating [exp_matched]).
    Returns harness failures: one error per unexpected error/warning and
    one per annotation that nothing fulfilled. Notes attached to matched or
    unmatched diagnostics are lenient — an un-annotated note is not a
    failure, only an [expected-note] annotation without a note is. *)
let check ~expectations diags =
  let failures = ref [] in
  let try_match (sev, (loc : Loc.t), message) =
    match
      List.find_opt
        (fun e ->
          (not e.exp_matched)
          && e.exp_severity = sev
          && e.exp_file = loc.start_pos.file
          && e.exp_line = loc.start_pos.line
          && contains message e.exp_substr)
        expectations
    with
    | Some e ->
        e.exp_matched <- true;
        true
    | None -> false
  in
  List.iter
    (fun d ->
      List.iter
        (fun ((sev, loc, message) as item) ->
          if not (try_match item) && sev <> Diag.Note then
            failures :=
              Diag.error ~loc "unexpected %s: %s"
                (Fmt.str "%a" Diag.pp_severity sev)
                message
              :: !failures)
        (flatten d))
    diags;
  List.iter
    (fun e ->
      if not e.exp_matched then
        failures :=
          Diag.error
            ~loc:(loc_of_line e.exp_file e.exp_decl_line)
            "expected %s {{%s}} was not produced%s"
            (Fmt.str "%a" Diag.pp_severity e.exp_severity)
            e.exp_substr
            (if e.exp_line = e.exp_decl_line then ""
             else Printf.sprintf " at line %d" e.exp_line)
          :: !failures)
    expectations;
  List.rev !failures
