/* Monotonic clock for timings and deadlines.

   CLOCK_MONOTONIC is immune to NTP steps and settimeofday, which is the
   whole point: per-pass timings and per-request deadlines must never go
   negative or jump because the wall clock was corrected under us. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value irdl_monotonic_now_ns(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t) ts.tv_sec * 1000000000LL + (int64_t) ts.tv_nsec);
}
