(** Structured diagnostics.

    Every user-facing failure (IRDL frontend, IR parser, generated
    verifiers) is reported as a {!t}; internal invariant violations use
    [invalid_arg]/[assert] instead. {!Engine} collects every diagnostic of a
    fail-soft run; {!Sources} keeps lexed buffers so diagnostics render with
    caret/underline source snippets. *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
  notes : (Loc.t * string) list;
  code : string option;
      (** Machine-readable classification ([resource_exhausted],
          [deadline_exceeded], [injected_fault], ...). [None] for ordinary
          diagnostics; serialized to JSON only when present so existing
          outputs stay byte-identical. *)
}

exception Error_exn of t
(** Raised by {!raise_error}; caught at API boundaries by {!protect}. *)

exception Fatal_exn of t
(** A session-aborting diagnostic (budget violation, deadline). Deliberately
    NOT caught by {!protect}: fail-soft recovery catches {!Error_exn} at op
    boundaries and resumes parsing, which must not happen once a resource
    budget is blown. {!protect_any} — the outermost guard — converts it to
    [Error] like any other failure. *)

val make :
  ?severity:severity -> ?loc:Loc.t -> ?notes:(Loc.t * string) list ->
  ?code:string -> string -> t

val error :
  ?loc:Loc.t -> ?notes:(Loc.t * string) list -> ?code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a
(** [error fmt ...] builds an error diagnostic from a format string. *)

val warning :
  ?loc:Loc.t -> ?notes:(Loc.t * string) list ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val errorf :
  ?loc:Loc.t -> ?notes:(Loc.t * string) list -> ?code:string ->
  ('a, Format.formatter, unit, ('b, t) result) format4 -> 'a
(** Like {!error} but already wrapped in [Result.Error]. *)

val raise_error :
  ?loc:Loc.t -> ?notes:(Loc.t * string) list ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise the diagnostic as {!Error_exn}. *)

val raise_fatal :
  ?loc:Loc.t -> ?notes:(Loc.t * string) list -> ?code:string ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise the diagnostic as {!Fatal_exn}. *)

val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val protect : (unit -> 'a) -> ('a, t) result
(** Run a thunk, converting a raised {!Error_exn} into [Error]. *)

val protect_any : ?loc:Loc.t -> (unit -> 'a) -> ('a, t) result
(** Like {!protect}, but additionally converts any other exception (stray
    [Failure], [Invalid_argument], [Not_found], assertion failure, stack
    overflow) into an "internal error" diagnostic at [loc]; {!Fatal_exn}
    carries its own diagnostic through, and {!Failpoints.Injected} becomes
    a diagnostic with code ["injected_fault"]. Out-of-memory is re-raised.
    Public entry points use this so no input can crash a caller. *)

val get_ok : ('a, t) result -> 'a
(** Unwrap, re-raising {!Error_exn} on [Error]. *)

(** Registry of source-buffer contents, keyed by file name. {!Sbuf.of_string}
    registers every buffer it wraps; {!pp_snippet} reads it back at render
    time. Re-registration overwrites, so rendering is best-effort for
    scratch names like ["<string>"].

    The registry is domain-local: each domain sees only the buffers it
    registered itself, so parallel chunk workers never race on (or shadow)
    each other's sources. {!Sources.snapshot}/{!Sources.preload} carry the
    spawning domain's registrations into a worker. *)
module Sources : sig
  val register : file:string -> string -> unit
  val lookup : string -> string option

  val drop : string -> unit
  (** Remove one file's buffer from the calling domain's registry (no-op
      when absent). Streaming/batch drivers call this once a source's
      diagnostics have been flushed, so a long [--batch] run does not
      retain every processed buffer for the process lifetime; diagnostics
      rendered later against the dropped file simply lose their snippet. *)

  val clear : unit -> unit

  val snapshot : unit -> (string * string) list
  (** Every registration of the calling domain, for {!preload} in another. *)

  val preload : (string * string) list -> unit
  (** Add [snapshot]ted entries to the calling domain's registry (existing
      keys are overwritten, nothing is removed). *)
end

val pp_snippet : Format.formatter -> Loc.t -> unit
(** Render the source line under a location with a [^~~~] caret span, when
    the file's text is registered in {!Sources}; renders nothing otherwise.
    The line is found by line number, so sources re-materialized with the
    same line structure (split-input-file chunks) render correctly. *)

val pp_rendered : Format.formatter -> t -> unit
(** Like {!pp}, with a source snippet under the header and under every
    note whose location is known. *)

val to_json : t -> string
(** One diagnostic as a JSON object (severity, file/line/col, message,
    notes). *)

type diag = t
(** Alias so {!Engine} can refer to diagnostics past its own [t]. *)

(** A diagnostic engine: collects every diagnostic of a run instead of
    stopping at the first, with severity counts, an error cap, and
    pluggable handlers. The recorded list doubles as the recording sink
    for tests; {!Engine.to_json} is the machine-readable sink. *)
module Engine : sig
  type handler = diag -> unit

  type t = {
    mutable diags_rev : diag list;
    mutable n_errors : int;
    mutable n_warnings : int;
    mutable n_notes : int;
    mutable n_suppressed : int;
    max_errors : int;
    mutable handlers : handler list;
  }

  val create : ?max_errors:int -> unit -> t
  (** [max_errors] caps recorded errors; 0 (the default) is unlimited. *)

  val add_handler : t -> handler -> unit
  (** Handlers run on every recorded diagnostic, in registration order. *)

  val emit : t -> diag -> unit
  (** Record a diagnostic and forward it to the handlers. Errors past the
      cap are counted as suppressed instead. *)

  val record : t -> diag -> unit
  (** Like {!emit} but without notifying the handlers: counts and records
      only. Used to replay pre-rendered diagnostics collected by parallel
      workers into the main engine. *)

  val limit_reached : t -> bool
  (** Whether the error cap has been hit (recovering parsers stop). *)

  val diagnostics : t -> diag list
  (** Everything recorded so far, in emission order. *)

  val error_count : t -> int
  val warning_count : t -> int
  val note_count : t -> int
  val suppressed_count : t -> int
  val has_errors : t -> bool

  val printer : ?snippets:bool -> Format.formatter -> handler
  (** A handler printing each diagnostic (with snippets by default). *)

  val to_json : t -> string
  (** The whole run as a JSON document: counts plus every diagnostic. *)
end
