(** Fault-injection points.

    A failpoint is a named seam in the code (the parse entry, the verify
    entry, the bytecode decoder, the server's pool task) that can be armed
    to raise {!Injected} deterministically, so robustness tests can drive
    real exceptions through real recovery paths instead of mocking them.

    Arming is process-global and cross-domain (the registry is read and
    counted atomically): the [IRDL_FAILPOINTS] environment variable is
    consulted once at program start, and {!configure} replaces the
    configuration at any time (tests, the [--failpoints] flag).

    Spec syntax: a comma-separated list of [seam] or [seam:K] entries.
    [seam] fires on every hit; [seam:K] fires on every Kth hit (the Kth,
    2Kth, ... — deterministic, no randomness, so soak tests are exactly
    reproducible). An empty spec disarms everything.

    When nothing is armed, {!hit} is one atomic load — cheap enough to
    leave in production code paths. *)

exception Injected of string
(** Raised by {!hit} at an armed seam; the payload is the seam name. *)

val configure : string -> (unit, string) result
(** Replace the armed set from a spec string. [Error] describes the first
    malformed entry; the previous configuration is kept on error. *)

val clear : unit -> unit
(** Disarm every seam and reset counters. *)

val active : unit -> bool
(** Whether any seam is armed. *)

val hit : string -> unit
(** Pass through the named seam: raises {!Injected} when the seam is armed
    and its counter says this hit fires. No-op (one atomic load) when
    nothing is armed. *)

val injected_count : string -> int
(** How many times the named seam actually raised so far (0 when not
    armed); observability for soak tests. *)

val seams : unit -> (string * int * int) list
(** The armed seams as [(name, every, injected)] triples. *)
