(** MLIR-style diagnostic test harness: [--split-input-file] chunking and
    [--verify-diagnostics] expected-diagnostic annotations. *)

val split_input : string -> string list
(** Split a source at [// -----] separator lines into independent chunks.
    Each chunk is padded with leading newlines so diagnostics keep the line
    numbers of the original file. A source without separators is returned
    as a single untouched chunk. *)

type expectation = {
  exp_file : string;
  exp_line : int;  (** line the diagnostic must be located on *)
  exp_decl_line : int;  (** line of the annotation comment itself *)
  exp_severity : Diag.severity;
  exp_substr : string;  (** substring the message must contain *)
  mutable exp_matched : bool;
}

val scan_expectations : file:string -> string -> expectation list * Diag.t list
(** All [// expected-error@<offset> {{substr}}] annotations (and the
    [-warning]/[-note] variants) in a source, plus harness errors for
    malformed annotations. Offsets: none (same line), [@+N], [@-N],
    [@above], [@below]. *)

val check : expectations:expectation list -> Diag.t list -> Diag.t list
(** Match produced diagnostics against the expectations (marking them
    fulfilled). Returns harness failures: unexpected errors/warnings and
    expectations nothing fulfilled. Notes are matched when annotated but
    un-annotated notes are not failures. *)
