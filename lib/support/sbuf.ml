(** A character-stream cursor over an in-memory source buffer.

    Shared lexing base for the IRDL lexer and the generic IR-syntax lexer:
    peeking, advancing with position tracking, and span extraction. *)

type t = {
  src : string;
  mutable pos : Loc.pos;
}

let of_string ?(file = "<string>") src =
  (* Feed the source registry so diagnostics over this buffer can render
     caret snippets long after the cursor is gone. *)
  Diag.Sources.register ~file src;
  { src; pos = Loc.start_of_file file }

let eof t = t.pos.offset >= String.length t.src

let peek t = if eof t then None else Some t.src.[t.pos.offset]

let peek2 t =
  if t.pos.offset + 1 >= String.length t.src then None
  else Some t.src.[t.pos.offset + 1]

let pos t = t.pos

let advance t =
  match peek t with
  | None -> ()
  | Some c -> t.pos <- Loc.advance t.pos c

let next t =
  let c = peek t in
  advance t;
  c

(** Consume [c] if it is the next character. *)
let accept t c =
  match peek t with
  | Some c' when c = c' ->
      advance t;
      true
  | _ -> false

let skip_while t pred =
  let continue = ref true in
  while !continue do
    match peek t with
    | Some c when pred c -> advance t
    | _ -> continue := false
  done

(** The substring between two previously captured positions. *)
let slice t (a : Loc.pos) (b : Loc.pos) =
  String.sub t.src a.offset (b.offset - a.offset)

let take_while t pred =
  let start = pos t in
  skip_while t pred;
  slice t start (pos t)

let loc_from t (start : Loc.pos) = Loc.span start (pos t)

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_start c = is_alpha c || c = '_'
let is_ident_char c = is_alpha c || is_digit c || c = '_' || c = '$'
let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\n'
