external now_ns : unit -> int64 = "irdl_monotonic_now_ns"

let now_s () = Int64.to_float (now_ns ()) /. 1e9
let elapsed_s t0 = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9
let add_ms t ms = Int64.add t (Int64.mul (Int64.of_int ms) 1_000_000L)
