(** Unified transformation statistics: ordered named counters.

    Every pass (the greedy pattern driver, CSE, DCE, dominance checking,
    user-defined passes) reports its work as a list of named counters with
    one shared pretty-printer and one shared JSON rendering, so the pass
    manager can aggregate, display and serialize them uniformly. Boolean
    facts (e.g. "converged") are 0/1 counters. The producing modules keep
    thin typed accessors ([Driver.iterations], [Cse.eliminated], ...) so
    call sites stay as readable as with the old per-pass records. *)

type t
(** Ordered named counters. Counter order is preserved as given (and, for
    {!add}, first-appearance order), so reports are deterministic. *)

val empty : t

val v : (string * int) list -> t
(** Build statistics from counters, keeping their order.
    @raise Invalid_argument on duplicate counter names. *)

val get : t -> string -> int
(** The value of a counter; [0] when absent. *)

val get_flag : t -> string -> bool
(** A counter read as a boolean: present and non-zero. *)

val add : t -> t -> t
(** Pointwise sum. Counters of the left operand first (in their order),
    then counters only the right operand has. *)

val counters : t -> (string * int) list

val is_empty : t -> bool

val pp : Format.formatter -> t -> unit
(** ["iterations=2, applications=1"]; ["(no statistics)"] when empty. *)

val to_json : t -> string
(** One JSON object, e.g. [{ "iterations": 2, "applications": 1 }]. *)
