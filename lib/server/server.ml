(* See the interface. *)

open Irdl_support
module Context = Irdl_ir.Context
module Verifier = Irdl_ir.Verifier
module Frontend = Irdl_bytecode.Frontend
module Source = Frontend.Source

type kind = Parse | Verify | Print | Emit_bytecode | Ping | Stats | Shutdown

type status =
  | Ok_
  | Parse_error
  | Verify_error
  | Resource_exhausted
  | Deadline_exceeded
  | Internal_error
  | Invalid_request
  | Retry_later

let kind_to_string = function
  | Parse -> "parse"
  | Verify -> "verify"
  | Print -> "print"
  | Emit_bytecode -> "emit-bytecode"
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let kind_of_string = function
  | "parse" -> Some Parse
  | "verify" -> Some Verify
  | "print" -> Some Print
  | "emit-bytecode" -> Some Emit_bytecode
  | "ping" -> Some Ping
  | "stats" -> Some Stats
  | "shutdown" -> Some Shutdown
  | _ -> None

let status_to_string = function
  | Ok_ -> "ok"
  | Parse_error -> "parse_error"
  | Verify_error -> "verify_error"
  | Resource_exhausted -> "resource_exhausted"
  | Deadline_exceeded -> "deadline_exceeded"
  | Internal_error -> "internal_error"
  | Invalid_request -> "invalid_request"
  | Retry_later -> "retry_later"

let status_of_string = function
  | "ok" -> Some Ok_
  | "parse_error" -> Some Parse_error
  | "verify_error" -> Some Verify_error
  | "resource_exhausted" -> Some Resource_exhausted
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "internal_error" -> Some Internal_error
  | "invalid_request" -> Some Invalid_request
  | "retry_later" -> Some Retry_later
  | _ -> None

(* Parse-stage failures — including blown budgets, which one-shot runs
   report during the parse stage — exit 1, verify failures 2, mirroring
   irdl-opt; so the cram determinism gate can compare codes directly. *)
let status_exit_code = function
  | Ok_ -> 0
  | Parse_error | Resource_exhausted | Deadline_exceeded | Invalid_request -> 1
  | Verify_error -> 2
  | Internal_error -> 4
  | Retry_later -> 5

type request = {
  rq_id : string;
  rq_kind : kind;
  rq_file : string;
  rq_limits : Limits.t;
  rq_payload : string;
}

type response = {
  rs_id : string;
  rs_status : status;
  rs_errors : int;
  rs_diags : string;
  rs_output : string;
  rs_retry_after_ms : int option;
}

type config = {
  limits : Limits.t;
  max_queue : int;
  domains : int;
  generic : bool;
  retry_after_ms : int;
}

let default_config =
  {
    limits = Limits.unlimited;
    max_queue = 0;
    domains = 0;
    generic = false;
    retry_after_ms = 10;
  }

(* One diagnostic, rendered exactly as the one-shot stderr printer would:
   [Engine.printer] is [Fmt.pf ppf "%a@." pp_rendered], i.e. rendered text
   plus one newline. *)
let render_diag d = Fmt.str "%a" Diag.pp_rendered d ^ "\n"

let synth_response ?(retry_after_ms = None) ~id ~status d =
  {
    rs_id = id;
    rs_status = status;
    rs_errors = (match status with Ok_ | Retry_later -> 0 | _ -> 1);
    rs_diags = (match d with None -> "" | Some d -> render_diag d);
    rs_output = "";
    rs_retry_after_ms = retry_after_ms;
  }

let invalid_response ~id fmt =
  Fmt.kstr
    (fun msg ->
      synth_response ~id ~status:Invalid_request
        (Some (Diag.make ("invalid request: " ^ msg))))
    fmt

let oversized_response ~id cap =
  synth_response ~id ~status:Resource_exhausted
    (Some
       (Diag.make ~code:Limits.resource_exhausted
          (Printf.sprintf
             "request payload exceeds the server payload limit of %d bytes" cap)))

let shed_response ~id ~retry_after_ms =
  synth_response ~id ~status:Retry_later
    ~retry_after_ms:(Some retry_after_ms)
    (Some
       (Diag.make ~severity:Diag.Warning
          (Printf.sprintf "server busy; retry in %d ms" retry_after_ms)))

let parse_request ~header ~payload =
  let get = Wire.header_get header in
  let id = Option.value (get "id") ~default:"" in
  let int_field name =
    match get name with
    | None -> Ok 0
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok n
        | _ -> Error (invalid_response ~id "bad integer for '%s': %s" name v))
  in
  let ( let* ) = Result.bind in
  match get "kind" with
  | None -> Error (invalid_response ~id "missing 'kind' header")
  | Some k -> (
      match kind_of_string k with
      | None -> Error (invalid_response ~id "unknown kind '%s'" k)
      | Some kind ->
          let* max_ops = int_field "max-ops" in
          let* max_depth = int_field "max-depth" in
          let* max_payload_bytes = int_field "max-bytes" in
          let* deadline_ms = int_field "deadline-ms" in
          let limits =
            Limits.create ~max_payload_bytes ~max_ops ~max_depth ()
          in
          (* The clock starts at acceptance: a request that then sits in
             the queue is spending its own deadline. *)
          let limits =
            if deadline_ms > 0 then Limits.with_deadline_ms limits deadline_ms
            else limits
          in
          Ok
            {
              rq_id = id;
              rq_kind = kind;
              rq_file = Option.value (get "file") ~default:"<request>";
              rq_limits = limits;
              rq_payload = payload;
            })

let request_header rq ~deadline_ms =
  let add name v kvs = if v = 0 then kvs else (name, string_of_int v) :: kvs in
  [ ("id", rq.rq_id); ("kind", kind_to_string rq.rq_kind);
    ("file", rq.rq_file) ]
  |> add "max-ops" rq.rq_limits.Limits.max_ops
  |> add "max-depth" rq.rq_limits.Limits.max_depth
  |> add "max-bytes" rq.rq_limits.Limits.max_payload_bytes
  |> add "deadline-ms" deadline_ms

(* ------------------------------------------------------------------ *)
(* Request processing                                                  *)
(* ------------------------------------------------------------------ *)

(* Highest-priority classification wins: a blown deadline outranks the
   parse error it interrupted, and either budget code outranks the
   ordinary failures. *)
let classify engine ~parse_failed ~verify_failed =
  let diags = Diag.Engine.diagnostics engine in
  let has code = List.exists (fun (d : Diag.t) -> d.code = Some code) diags in
  if has Limits.deadline_exceeded then Deadline_exceeded
  else if has Limits.resource_exhausted then Resource_exhausted
  else if has "injected_fault" then Internal_error
  else if parse_failed then Parse_error
  else if verify_failed then Verify_error
  else Ok_

(* The module-processing kinds mirror [irdl-opt]'s streaming chunk driver
   exactly: parse (or decode), verify, emit and release one top-level op
   at a time; parse diagnostics flow through the engine in parse order;
   per-op verification results are held back and merged into the stable
   [verify_ops_all] order at end-of-stream, and discarded when the parse
   failed. The engine's handler renders into a buffer, so the response's
   diagnostics section is byte-for-byte the one-shot stderr text. *)
let run_module ctx config rq =
  let limits = Limits.meet config.limits rq.rq_limits in
  let engine = Diag.Engine.create () in
  let dbuf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer dbuf in
  Diag.Engine.add_handler engine (Diag.Engine.printer ppf);
  let payload = Source.classify rq.rq_payload in
  let want_verify = rq.rq_kind <> Parse in
  let want_output =
    match rq.rq_kind with Print | Emit_bytecode -> true | _ -> false
  in
  let parse_failed = ref false and verify_failed = ref false in
  let output = ref None in
  let session =
    Frontend.Stream.create ~file:rq.rq_file ~engine ~limits ctx payload
  in
  let sink =
    if not want_output then None
    else if rq.rq_kind = Emit_bytecode then Some (Frontend.Sink.bytecode ())
    else Some (Frontend.Sink.text ~generic:config.generic ctx)
  in
  let vdiags = ref [] in
  let rec drain () =
    match Frontend.Stream.next session with
    | Ok None | Error _ -> ()
    | Ok (Some op) ->
        if want_verify then
          vdiags := Verifier.verify_all ctx op :: !vdiags;
        Option.iter (fun s -> Frontend.Sink.push s op) sink;
        Frontend.Stream.release op;
        drain ()
  in
  drain ();
  if Diag.Engine.error_count engine > 0 then parse_failed := true
  else begin
    let diags = Verifier.merge_diags (List.concat (List.rev !vdiags)) in
    List.iter (Diag.Engine.emit engine) diags;
    if diags <> [] then verify_failed := true
    else
      Option.iter
        (fun s ->
          match Frontend.Sink.close s with
          | Ok out -> output := Some out
          | Error d ->
              Diag.Engine.emit engine d;
              verify_failed := true)
        sink
  end;
  Format.pp_print_flush ppf ();
  let status =
    classify engine ~parse_failed:!parse_failed ~verify_failed:!verify_failed
  in
  let rs_output =
    match (!output, rq.rq_kind) with
    (* Text output gets the final newline [Fmt.pr "%s@."] would add;
       bytecode is the raw blob. *)
    | Some o, Print -> o ^ "\n"
    | Some o, Emit_bytecode -> o
    | _ -> ""
  in
  {
    rs_id = rq.rq_id;
    rs_status = status;
    rs_errors = Diag.Engine.error_count engine;
    rs_diags = Buffer.contents dbuf;
    rs_output;
    rs_retry_after_ms = None;
  }

let registered_dialects ctx =
  Fmt.str "registered dialects: %s@."
    (String.concat ", "
       (List.map
          (fun (d : Context.dialect) -> d.d_name)
          (Context.dialects ctx)))

let handle ctx config rq =
  (* Per-request source hygiene: the request's buffer is registered (in
     this domain) by the parse; drop it afterwards so a long-lived worker
     does not retain every payload it ever served. *)
  Fun.protect
    ~finally:(fun () -> if rq.rq_file <> "" then Diag.Sources.drop rq.rq_file)
  @@ fun () ->
  try
    (* The per-request fault seam. It lives here — inside the task, inside
       the catch-all — rather than in [Domain_pool], whose contract is to
       re-raise a task exception batch-wide: an injected fault must poison
       exactly one response. *)
    Failpoints.hit "pool.task";
    match rq.rq_kind with
    | Ping | Shutdown -> synth_response ~id:rq.rq_id ~status:Ok_ None
    | Stats ->
        {
          (synth_response ~id:rq.rq_id ~status:Ok_ None) with
          rs_output = registered_dialects ctx;
        }
    | Parse | Verify | Print | Emit_bytecode -> run_module ctx config rq
  with
  | Out_of_memory -> raise Out_of_memory
  | Failpoints.Injected name ->
      synth_response ~id:rq.rq_id ~status:Internal_error
        (Some
           (Diag.make ~code:"injected_fault"
              ("internal error: injected fault at failpoint '" ^ name ^ "'")))
  | exn ->
      synth_response ~id:rq.rq_id ~status:Internal_error
        (Some (Diag.make ("internal error: " ^ Printexc.to_string exn)))

let response_frame rs =
  let header =
    [ ("id", rs.rs_id); ("status", status_to_string rs.rs_status);
      ("errors", string_of_int rs.rs_errors) ]
    @
    match rs.rs_retry_after_ms with
    | Some ms -> [ ("retry-after-ms", string_of_int ms) ]
    | None -> []
  in
  Wire.encode_response ~header ~diags:rs.rs_diags ~output:rs.rs_output

let response_of_wire ~header ~diags ~output =
  let get = Wire.header_get header in
  match Option.bind (get "status") status_of_string with
  | None -> Error "response has no valid 'status' header"
  | Some status ->
      Ok
        {
          rs_id = Option.value (get "id") ~default:"";
          rs_status = status;
          rs_errors =
            Option.value ~default:0
              (Option.bind (get "errors") int_of_string_opt);
          rs_diags = diags;
          rs_output = output;
          rs_retry_after_ms = Option.bind (get "retry-after-ms") int_of_string_opt;
        }

(* ------------------------------------------------------------------ *)
(* Shutdown coordination                                               *)
(* ------------------------------------------------------------------ *)

let stop = Atomic.make false
let request_shutdown () = Atomic.set stop true
let shutdown_requested () = Atomic.get stop
let reset_shutdown () = Atomic.set stop false

let install_signal_handlers () =
  let h = Sys.Signal_handle (fun _ -> request_shutdown ()) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

(* ------------------------------------------------------------------ *)
(* Serve loops                                                         *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Requests and already-synthesized responses of one intake burst, in
   arrival order: dispatch fans the [Todo]s through the pool, then the
   responses are written back in slot order, so pipelined clients can
   match responses to requests positionally as well as by id. *)
type slot = Todo of request | Done of response

(* When unbounded, dispatch is still chunked so a pipelined flood is
   answered incrementally instead of accumulating until end of input. *)
let internal_batch = 256

type intake = {
  cfg : config;
  mutable slots : slot list;  (* reversed *)
  mutable n_todo : int;
  mutable corrupt : bool;
}

let intake cfg = { cfg; slots = []; n_todo = 0; corrupt = false }
let push i s = i.slots <- s :: i.slots

(* Accept one decoded wire event into the burst. Returns [true] when the
   caller should dispatch before accepting more (window full on an
   unbounded queue; a bounded queue sheds instead). *)
let accept ctx i event =
  match event with
  | Wire.Corrupt msg ->
      i.corrupt <- true;
      push i (Done (invalid_response ~id:"" "%s" msg));
      false
  | Wire.Frame { header; payload; oversized } ->
      let id = Option.value (Wire.header_get header "id") ~default:"" in
      if oversized then begin
        push i
          (Done (oversized_response ~id i.cfg.limits.Limits.max_payload_bytes));
        false
      end
      else (
        match parse_request ~header ~payload with
        | Error rs ->
            push i (Done rs);
            false
        | Ok ({ rq_kind = Ping | Stats | Shutdown; _ } as rq) ->
            (* Control requests are cheap; answer inline, in order. *)
            if rq.rq_kind = Shutdown then request_shutdown ();
            push i (Done (handle ctx i.cfg rq));
            false
        | Ok rq ->
            if i.cfg.max_queue > 0 && i.n_todo >= i.cfg.max_queue then begin
              push i
                (Done
                   (shed_response ~id:rq.rq_id
                      ~retry_after_ms:i.cfg.retry_after_ms));
              false
            end
            else begin
              push i (Todo rq);
              i.n_todo <- i.n_todo + 1;
              i.cfg.max_queue = 0 && i.n_todo >= internal_batch
            end)

(* Run every [Todo] of the burst through the pool and write the burst's
   responses, in arrival order, to [write]. Returns the number written. *)
let dispatch pool ctx cfg sources i ~write =
  let arr = Array.of_list (List.rev i.slots) in
  i.slots <- [];
  i.n_todo <- 0;
  let todos =
    Array.of_list
      (List.filter_map
         (function Todo rq -> Some rq | Done _ -> None)
         (Array.to_list arr))
  in
  let thunks =
    Array.map
      (fun rq () ->
        Diag.Sources.preload sources;
        handle ctx cfg rq)
      todos
  in
  let results = Domain_pool.run pool thunks in
  let next = ref 0 in
  Array.iter
    (fun s ->
      let rs =
        match s with
        | Done rs -> rs
        | Todo _ ->
            let rs = results.(!next) in
            incr next;
            rs
      in
      write (response_frame rs))
    arr;
  Array.length arr

let readable fd =
  match Unix.select [ fd ] [] [] 0.0 with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let serve_fd ?(config = default_config) ctx ~in_fd ~out_fd () =
  Context.freeze ctx;
  let sources = Diag.Sources.snapshot () in
  let domains = if config.domains > 0 then Some config.domains else None in
  Domain_pool.with_pool ?domains @@ fun pool ->
  let r = Wire.reader ~max_payload:config.limits.Limits.max_payload_bytes () in
  let i = intake config in
  let answered = ref 0 in
  let flush () =
    if i.slots <> [] then
      answered :=
        !answered + dispatch pool ctx config sources i ~write:(write_all out_fd)
  in
  let drain_events () =
    if not i.corrupt then begin
      let rec go () =
        match Wire.poll r with
        | None -> ()
        | Some e ->
            if accept ctx i e then flush ();
            if not i.corrupt then go ()
      in
      go ()
    end
  in
  let buf = Bytes.create 65536 in
  let rec loop () =
    drain_events ();
    if i.corrupt || shutdown_requested () then flush ()
    else begin
      (* Input pause: the client went quiet mid-pipeline — answer the
         burst gathered so far instead of blocking on [read] with work
         in hand. *)
      if i.slots <> [] && not (readable in_fd) then flush ();
      if shutdown_requested () then flush ()
      else
        match Unix.read in_fd buf 0 (Bytes.length buf) with
        | 0 ->
            drain_events ();
            flush ()
        | n ->
            Wire.feed r (Bytes.sub_string buf 0 n);
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ();
  !answered

(* ------------------------------------------------------------------ *)
(* Socket listener                                                     *)
(* ------------------------------------------------------------------ *)

type conn = {
  c_fd : Unix.file_descr;
  c_reader : Wire.reader;
  c_intake : intake;
  mutable c_closed : bool;
}

let serve_unix ?(config = default_config) ctx ~path () =
  Context.freeze ctx;
  let sources = Diag.Sources.snapshot () in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 64;
  let answered = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
  @@ fun () ->
  let domains = if config.domains > 0 then Some config.domains else None in
  Domain_pool.with_pool ?domains @@ fun pool ->
  let conns = ref [] in
  let flush c =
    if c.c_intake.slots <> [] then
      answered :=
        !answered
        + dispatch pool ctx config sources c.c_intake ~write:(fun s ->
              (* A client that hung up mid-drain loses its responses but
                 must not take the server down. *)
              try write_all c.c_fd s
              with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ())
  in
  let close_conn c =
    if not c.c_closed then begin
      c.c_closed <- true;
      try Unix.close c.c_fd with Unix.Unix_error _ -> ()
    end
  in
  let drain_events c =
    if not c.c_intake.corrupt then begin
      let rec go () =
        match Wire.poll c.c_reader with
        | None -> ()
        | Some e ->
            if accept ctx c.c_intake e then flush c;
            if not c.c_intake.corrupt then go ()
      in
      go ()
    end
  in
  let buf = Bytes.create 65536 in
  let service c =
    match Unix.read c.c_fd buf 0 (Bytes.length buf) with
    | 0 ->
        drain_events c;
        flush c;
        close_conn c
    | n ->
        Wire.feed c.c_reader (Bytes.sub_string buf 0 n);
        drain_events c;
        if c.c_intake.corrupt then begin
          flush c;
          close_conn c
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_conn c
  in
  let rec loop () =
    if not (shutdown_requested ()) then begin
      conns := List.filter (fun c -> not c.c_closed) !conns;
      let fds = lfd :: List.map (fun c -> c.c_fd) !conns in
      match Unix.select fds [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
          if List.mem lfd ready then begin
            match Unix.accept ~cloexec:true lfd with
            | fd, _ ->
                conns :=
                  {
                    c_fd = fd;
                    c_reader =
                      Wire.reader
                        ~max_payload:config.limits.Limits.max_payload_bytes ();
                    c_intake = intake config;
                    c_closed = false;
                  }
                  :: !conns
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          end;
          List.iter
            (fun c ->
              if (not c.c_closed) && List.mem c.c_fd ready then service c)
            !conns;
          List.iter
            (fun c ->
              if (not c.c_closed) && c.c_intake.slots <> []
                 && not (readable c.c_fd)
              then flush c)
            !conns;
          loop ()
    end
  in
  loop ();
  (* Shutdown: stop accepting, answer everything already taken in. *)
  List.iter
    (fun c ->
      if not c.c_closed then begin
        drain_events c;
        flush c;
        close_conn c
      end)
    !conns;
  !answered

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

let u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then Ok (Bytes.to_string b)
    else
      match Unix.read fd b off (n - off) with
      | 0 -> Error "connection closed mid-response"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let roundtrip ~path ~kind ?(id = "1") ?(file = "<request>") ?(deadline_ms = 0)
    ?(limits = Limits.unlimited) payload =
  match Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | exception Unix.Unix_error (e, _, _) ->
          Error ("connect: " ^ Unix.error_message e)
      | () -> (
          let rq =
            {
              rq_id = id;
              rq_kind = kind;
              rq_file = file;
              rq_limits = limits;
              rq_payload = payload;
            }
          in
          let header = request_header rq ~deadline_ms in
          match write_all fd (Wire.encode_request ~header ~payload) with
          | exception Unix.Unix_error (e, _, _) ->
              Error ("send: " ^ Unix.error_message e)
          | () ->
              let ( let* ) = Result.bind in
              let* fixed = read_exact fd 16 in
              if String.sub fixed 0 4 <> Wire.response_magic then
                Error "bad response magic"
              else
                let hlen = u32 fixed 4
                and dlen = u32 fixed 8
                and olen = u32 fixed 12 in
                let* rest = read_exact fd (hlen + dlen + olen) in
                let* header, diags, output =
                  Wire.decode_response (fixed ^ rest)
                in
                response_of_wire ~header ~diags ~output))
