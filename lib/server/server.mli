(** The resident verification service.

    A server holds one frozen {!Irdl_ir.Context} (the dialect corpus is
    loaded once) and answers framed requests — parse, verify, re-print,
    emit bytecode — over a byte stream: stdin/stdout ({!serve_fd}, the
    [--serve] mode) or a Unix-domain socket ({!serve_unix}, [--listen]).
    Request fan-out goes through the work-stealing {!Domain_pool}, so a
    batch of pipelined requests is processed in parallel while responses
    are always written in arrival order.

    Robustness contract, enforced per request:
    - {b Budgets}: the server's configured {!Limits.t} is {!Limits.meet}ed
      with the request's own limits; blown budgets produce a
      [resource_exhausted]/[deadline_exceeded] response, never a crash.
    - {b Isolation}: {!handle} never raises. Any exception — including
      injected {!Failpoints} faults — poisons only its own request, which
      is answered [internal_error].
    - {b Determinism}: the diagnostics text of a response is byte-identical
      to what a one-shot [irdl-opt] run over the same input would write to
      stderr (same renderer, same source snippets), and responses preserve
      request order.
    - {b Graceful shutdown}: SIGTERM/SIGINT (or a [shutdown] request) stop
      intake; every request already accepted is still processed and
      answered before the serve loop returns.
    - {b Load shedding}: with a bounded queue ([max_queue > 0]), requests
      beyond the window in one read burst are answered [retry_later] with
      a [retry-after-ms] hint instead of growing the heap. *)

open Irdl_support

type kind =
  | Parse  (** syntax (and budget) check only *)
  | Verify  (** parse + verify *)
  | Print  (** parse + verify + re-print (textual) *)
  | Emit_bytecode  (** parse + verify + serialize to bytecode *)
  | Ping
  | Stats  (** registered dialects, like one-shot [irdl-opt] with no input *)
  | Shutdown  (** answered [ok], then the serve loop drains and exits *)

type status =
  | Ok_
  | Parse_error
  | Verify_error
  | Resource_exhausted
  | Deadline_exceeded
  | Internal_error
  | Invalid_request
  | Retry_later

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val status_to_string : status -> string
val status_of_string : string -> status option

val status_exit_code : status -> int
(** The one-shot-compatible exit code a client should exit with: 0 for ok,
    1 for parse-stage failures (parse error, invalid request, blown
    budget), 2 for verify errors, 4 for internal errors, 5 for
    [retry_later]. *)

type request = {
  rq_id : string;
  rq_kind : kind;
  rq_file : string;  (** diagnostics file name; same as one-shot's path *)
  rq_limits : Limits.t;  (** request-side budget, deadline already absolute *)
  rq_payload : string;  (** classified by magic sniffing, as every input *)
}

type response = {
  rs_id : string;
  rs_status : status;
  rs_errors : int;
  rs_diags : string;  (** pre-rendered; byte-identical to one-shot stderr *)
  rs_output : string;
  rs_retry_after_ms : int option;
}

type config = {
  limits : Limits.t;
      (** server-wide ceiling; met with each request's own limits, so a
          request can tighten but never loosen it *)
  max_queue : int;
      (** > 0 bounds accepted-per-burst requests (excess is shed with
          [retry_later]); 0 accepts everything, dispatching in internal
          batches *)
  domains : int;  (** {!Domain_pool} width; 0 = recommended count *)
  generic : bool;  (** print in generic form, as [irdl-opt --generic] *)
  retry_after_ms : int;  (** the hint sent with shed responses *)
}

val default_config : config
(** Unlimited budgets, unbounded queue, recommended domain count, pretty
    printing, 10 ms retry hint. *)

val parse_request :
  header:(string * string) list -> payload:string -> (request, response) result
(** Decode a request from its frame header ([id], [kind], [file],
    [max-ops], [max-depth], [max-bytes], [deadline-ms]; unknown keys
    ignored). [Error] is the ready-to-send [invalid_request] response. The
    deadline starts {e now} — time spent queued counts against it. *)

val request_header : request -> deadline_ms:int -> (string * string) list
(** The wire header for a request (client side). [deadline_ms] is sent
    relative; 0 means none. *)

val handle : Irdl_ir.Context.t -> config -> request -> response
(** Process one request. Never raises (except asynchronous
    [Out_of_memory]): internal failures and injected faults become
    [internal_error] responses. Safe to call from any domain of a pool
    provided [ctx] is frozen; call {!Diag.Sources.preload} with the
    loader domain's snapshot first so diagnostics render dialect-file
    snippets identically to a one-shot run. *)

val response_frame : response -> string
(** The encoded wire frame of a response. *)

val response_of_wire :
  header:(string * string) list ->
  diags:string ->
  output:string ->
  (response, string) result
(** Client-side decode of {!response_frame}'s sections. *)

(** {1 Shutdown coordination} *)

val request_shutdown : unit -> unit
(** Ask every serve loop in the process to drain and exit; what the
    SIGTERM/SIGINT handlers call. *)

val shutdown_requested : unit -> bool

val reset_shutdown : unit -> unit
(** Clear the flag (tests running several serve loops in one process). *)

val install_signal_handlers : unit -> unit
(** Route SIGTERM and SIGINT to {!request_shutdown}. *)

(** {1 Serve loops} *)

val serve_fd :
  ?config:config ->
  Irdl_ir.Context.t ->
  in_fd:Unix.file_descr ->
  out_fd:Unix.file_descr ->
  unit ->
  int
(** Serve framed requests from [in_fd], writing responses to [out_fd], in
    arrival order, until end of input, a protocol error (answered with a
    final [invalid_request] response), or shutdown — in every case the
    requests already accepted are processed and answered first. Freezes
    [ctx]. Returns the number of requests answered. *)

val serve_unix :
  ?config:config -> Irdl_ir.Context.t -> path:string -> unit -> int
(** Listen on a Unix-domain socket at [path] (an existing socket file is
    replaced), serving any number of concurrent connections until
    shutdown; then stop accepting, drain, close every connection and
    unlink [path]. Returns the number of requests answered. *)

(** {1 Client} *)

val roundtrip :
  path:string ->
  kind:kind ->
  ?id:string ->
  ?file:string ->
  ?deadline_ms:int ->
  ?limits:Limits.t ->
  string ->
  (response, string) result
(** Connect to the socket at [path], send one request carrying the given
    payload, and read the response. [Error] describes a transport or
    protocol failure. *)
