(* See the interface. *)

let request_magic = "IRQ1"
let response_magic = "IRS1"
let max_header_bytes = 64 * 1024

let put_u32 b n =
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode_header kvs =
  let b = Buffer.create 64 in
  List.iter
    (fun (k, v) ->
      if k = "" || String.contains k '=' || String.contains k '\n' then
        invalid_arg (Printf.sprintf "Wire.encode_header: bad key %S" k);
      if String.contains v '\n' then
        invalid_arg (Printf.sprintf "Wire.encode_header: value of %S has a newline" k);
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v;
      Buffer.add_char b '\n')
    kvs;
  Buffer.contents b

let decode_header s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line '=' with
         | None -> None
         | Some i ->
             Some
               ( String.sub line 0 i,
                 String.sub line (i + 1) (String.length line - i - 1) ))

(* Later duplicates win: a client repeating a key means the last value. *)
let header_get kvs k =
  List.fold_left (fun acc (k', v) -> if k' = k then Some v else acc) None kvs

let encode_request ~header ~payload =
  let h = encode_header header in
  let b = Buffer.create (16 + String.length h + String.length payload) in
  Buffer.add_string b request_magic;
  put_u32 b (String.length h);
  put_u32 b (String.length payload);
  Buffer.add_string b h;
  Buffer.add_string b payload;
  Buffer.contents b

let encode_response ~header ~diags ~output =
  let h = encode_header header in
  let b =
    Buffer.create
      (16 + String.length h + String.length diags + String.length output)
  in
  Buffer.add_string b response_magic;
  put_u32 b (String.length h);
  put_u32 b (String.length diags);
  put_u32 b (String.length output);
  Buffer.add_string b h;
  Buffer.add_string b diags;
  Buffer.add_string b output;
  Buffer.contents b

let decode_response s =
  let len = String.length s in
  if len < 16 then Error "truncated response frame"
  else if String.sub s 0 4 <> response_magic then
    Error "bad response magic"
  else
    let hlen = get_u32 s 4 and dlen = get_u32 s 8 and olen = get_u32 s 12 in
    if hlen < 0 || dlen < 0 || olen < 0 || 16 + hlen + dlen + olen > len then
      Error "truncated response frame"
    else
      let header = decode_header (String.sub s 16 hlen) in
      let diags = String.sub s (16 + hlen) dlen in
      let output = String.sub s (16 + hlen + dlen) olen in
      Ok (header, diags, output)

(* ------------------------------------------------------------------ *)
(* Incremental request reader                                          *)
(* ------------------------------------------------------------------ *)

type event =
  | Frame of {
      header : (string * string) list;
      payload : string;
      oversized : bool;
    }
  | Corrupt of string

(* [Discarding]: the header of an oversized request was decoded; its
   payload is being consumed and dropped as it arrives, so the buffer
   never grows past one read chunk however large the declared length. *)
type state =
  | Scanning
  | Discarding of { header : (string * string) list; mutable left : int }
  | Broken of string

type reader = {
  max_payload : int;
  mutable acc : string;  (* unconsumed bytes start at [pos] *)
  mutable pos : int;
  ready : event Queue.t;
  mutable state : state;
}

let reader ?(max_payload = 0) () =
  {
    max_payload;
    acc = "";
    pos = 0;
    ready = Queue.create ();
    state = Scanning;
  }

let buffered r = String.length r.acc - r.pos

let take r n =
  let s = String.sub r.acc r.pos n in
  r.pos <- r.pos + n;
  s

let rec step r =
  match r.state with
  | Broken _ -> ()
  | Discarding d ->
      let avail = buffered r in
      let n = min avail d.left in
      r.pos <- r.pos + n;
      d.left <- d.left - n;
      if d.left = 0 then begin
        Queue.add (Frame { header = d.header; payload = ""; oversized = true })
          r.ready;
        r.state <- Scanning;
        step r
      end
  | Scanning ->
      if buffered r >= 12 then begin
        let m = String.sub r.acc r.pos 4 in
        if m <> request_magic then begin
          let msg =
            Printf.sprintf "bad request magic %S (protocol error)" m
          in
          r.state <- Broken msg;
          Queue.add (Corrupt msg) r.ready
        end
        else
          let hlen = get_u32 r.acc (r.pos + 4) in
          let plen = get_u32 r.acc (r.pos + 8) in
          if hlen < 0 || hlen > max_header_bytes then begin
            let msg =
              Printf.sprintf "request header of %d bytes exceeds the %d-byte cap"
                hlen max_header_bytes
            in
            r.state <- Broken msg;
            Queue.add (Corrupt msg) r.ready
          end
          else if plen < 0 then begin
            let msg = "negative request payload length" in
            r.state <- Broken msg;
            Queue.add (Corrupt msg) r.ready
          end
          else if buffered r >= 12 + hlen then begin
            let oversized = r.max_payload > 0 && plen > r.max_payload in
            if oversized then begin
              r.pos <- r.pos + 12;
              let header = decode_header (take r hlen) in
              r.state <- Discarding { header; left = plen };
              step r
            end
            else if buffered r >= 12 + hlen + plen then begin
              r.pos <- r.pos + 12;
              let header = decode_header (take r hlen) in
              let payload = take r plen in
              Queue.add (Frame { header; payload; oversized = false }) r.ready;
              step r
            end
          end
      end

let feed r s =
  (match r.state with
  | Broken _ -> ()
  | _ ->
      if s <> "" then begin
        (* Compact: drop consumed bytes before appending. *)
        let rem = buffered r in
        if rem = 0 then r.acc <- s
        else r.acc <- String.sub r.acc r.pos rem ^ s;
        r.pos <- 0
      end);
  step r

let poll r =
  match Queue.take_opt r.ready with
  | Some e -> Some e
  | None -> ( match r.state with Broken m -> Some (Corrupt m) | _ -> None)
