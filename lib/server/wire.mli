(** Length-framed wire protocol of the resident service.

    One request frame:
    {v
    "IRQ1"  u32be hlen  u32be plen  header[hlen]  payload[plen]
    v}
    One response frame:
    {v
    "IRS1"  u32be hlen  u32be dlen  u32be olen
    header[hlen]  diagnostics[dlen]  output[olen]
    v}

    Headers are [key=value\n] lines (UTF-8, no '\n' in values); unknown
    keys are ignored so the protocol can grow. Diagnostics are the
    pre-rendered text a one-shot [irdl-opt] run would have written to
    stderr; output is the printed module, the bytecode blob, or empty.

    Framing is deliberately dumb: fixed magic, explicit lengths, no
    compression, no negotiation. A reader can always either resynchronize
    (skip exactly the declared lengths) or reject the stream as corrupt
    ({!Corrupt} — there is nothing to resynchronize on after a bad
    magic). *)

val request_magic : string
val response_magic : string

val max_header_bytes : int
(** Hard cap (64 KiB) on a frame's header section; a larger declared
    header is a protocol error, not a resource question. *)

val encode_header : (string * string) list -> string
(** @raise Invalid_argument when a key or value contains ['\n'] or a key
    contains ['=']. *)

val decode_header : string -> (string * string) list
(** Malformed lines (no '=') are dropped; later duplicates win in
    {!header_get}. *)

val header_get : (string * string) list -> string -> string option

val encode_request : header:(string * string) list -> payload:string -> string

val encode_response :
  header:(string * string) list -> diags:string -> output:string -> string

val decode_response :
  string -> ((string * string) list * string * string, string) result
(** Decode one complete response frame (client side):
    [(header, diags, output)], or [Error] describing the corruption. *)

(** Incremental request-frame reader with bounded buffering: payloads
    larger than [max_payload] are consumed and dropped chunk-by-chunk as
    they arrive — never accumulated — and surface as a {!Frame} with
    [oversized = true] and an empty payload, so the server can still
    answer the request (by id) with a [resource_exhausted] response. *)
type reader

type event =
  | Frame of {
      header : (string * string) list;
      payload : string;
      oversized : bool;
    }
  | Corrupt of string
      (** Unrecoverable protocol error (bad magic, header over
          {!max_header_bytes}); the reader consumes nothing further. *)

val reader : ?max_payload:int -> unit -> reader
(** [max_payload] is the discard threshold; 0 (default) buffers any
    declared payload length. *)

val feed : reader -> string -> unit
(** Append received bytes. *)

val poll : reader -> event option
(** The next complete event, if any. After {!Corrupt} is returned once,
    every subsequent call returns it again. *)

val buffered : reader -> int
(** Bytes currently buffered (excludes discarded payload bytes). *)
