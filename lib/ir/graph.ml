(** The mutable SSA IR object graph: values, operations, blocks and regions.

    This mirrors MLIR's object model (section 2 of the paper): operations take
    SSA-value operands, produce result values, carry named attributes, may own
    nested regions of basic blocks, and terminators name successor blocks.
    Blocks carry arguments (phi nodes).

    Operations are extensible: [op_name] is a plain ["dialect.mnemonic"]
    string and all structural fields are generic, exactly the property IRDL
    relies on to register dialects at runtime without code generation. *)

open Irdl_support

type value = {
  v_id : int;
  mutable v_ty : Attr.ty;
  mutable v_def : value_def;
}

and value_def =
  | Op_result of { op : op; index : int }
  | Block_arg of { block : block; index : int }
  | Forward_ref of string
      (** A use seen before its definition while parsing; patched to a real
          definition when the defining operation is parsed, and an error if
          still unresolved at end of parse. *)

and op = {
  op_id : int;
  op_name : string;  (** Fully qualified, e.g. ["cmath.mul"]. *)
  mutable operands : value list;
  mutable results : value list;
  mutable attrs : (string * Attr.t) list;
  mutable regions : region list;
  mutable successors : block list;
  mutable op_parent : block option;
  op_loc : Loc.t;
}

and block = {
  blk_id : int;
  mutable blk_args : value list;
  mutable blk_ops : op list;
  mutable blk_parent : region option;
}

and region = {
  reg_id : int;
  mutable blocks : block list;
  mutable reg_parent : op option;
}

let next_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

module Value = struct
  type t = value

  let ty v = v.v_ty
  let id v = v.v_id
  let equal a b = a.v_id = b.v_id

  let defining_op v =
    match v.v_def with
    | Op_result { op; _ } -> Some op
    | Block_arg _ | Forward_ref _ -> None

  let owner_block v =
    match v.v_def with
    | Op_result { op; _ } -> op.op_parent
    | Block_arg { block; _ } -> Some block
    | Forward_ref _ -> None

  let pp ppf v = Fmt.pf ppf "%%%d : %a" v.v_id Attr.pp_ty v.v_ty
end

module Op = struct
  type t = op

  let create ?(operands = []) ?(result_tys = []) ?(attrs = []) ?(regions = [])
      ?(successors = []) ?(loc = Loc.unknown) name =
    let op_id = next_id () in
    let op =
      {
        op_id;
        op_name = name;
        operands;
        results = [];
        attrs = List.map (fun (k, v) -> (k, Attr.intern v)) attrs;
        regions;
        successors;
        op_parent = None;
        op_loc = loc;
      }
    in
    (* Interning at every SSA-value creation point keeps the uniquing
       invariant even for types assembled outside {!Attr}'s constructors. *)
    op.results <-
      List.mapi
        (fun index ty ->
          { v_id = next_id ();
            v_ty = Attr.intern_ty ty;
            v_def = Op_result { op; index } })
        result_tys;
    List.iter
      (fun r ->
        if r.reg_parent <> None then
          invalid_arg "Op.create: region already attached to an operation";
        r.reg_parent <- Some op)
      regions;
    op

  let name op = op.op_name

  let dialect op =
    match String.index_opt op.op_name '.' with
    | Some i -> String.sub op.op_name 0 i
    | None -> ""

  let mnemonic op =
    match String.index_opt op.op_name '.' with
    | Some i -> String.sub op.op_name (i + 1) (String.length op.op_name - i - 1)
    | None -> op.op_name

  let operand op i = List.nth op.operands i
  let result op i = List.nth op.results i
  let num_operands op = List.length op.operands
  let num_results op = List.length op.results
  let attr op key = List.assoc_opt key op.attrs

  let set_attr op key value =
    op.attrs <- (key, Attr.intern value) :: List.remove_assoc key op.attrs

  let remove_attr op key = op.attrs <- List.remove_assoc key op.attrs

  let set_operands op operands = op.operands <- operands

  let parent_op op =
    match op.op_parent with
    | None -> None
    | Some blk -> ( match blk.blk_parent with None -> None | Some r -> r.reg_parent)

  (** Pre-order walk over [op] and every operation nested in its regions. *)
  let rec walk op ~f =
    f op;
    List.iter
      (fun region ->
        List.iter (fun blk -> List.iter (fun o -> walk o ~f) blk.blk_ops) region.blocks)
      op.regions

  (** [is_ancestor ~ancestor op]: is [op] nested (strictly or not) inside
      [ancestor]'s regions? *)
  let is_ancestor ~ancestor op =
    let rec up o = if o.op_id = ancestor.op_id then true
      else match parent_op o with None -> false | Some p -> up p
    in
    up op
end

module Block = struct
  type t = block

  let create ?(arg_tys = []) () =
    let blk_id = next_id () in
    let block = { blk_id; blk_args = []; blk_ops = []; blk_parent = None } in
    block.blk_args <-
      List.mapi
        (fun index ty ->
          { v_id = next_id ();
            v_ty = Attr.intern_ty ty;
            v_def = Block_arg { block; index } })
        arg_tys;
    block

  let args b = b.blk_args
  let ops b = b.blk_ops

  let add_arg b ty =
    let index = List.length b.blk_args in
    let v =
      { v_id = next_id ();
        v_ty = Attr.intern_ty ty;
        v_def = Block_arg { block = b; index } }
    in
    b.blk_args <- b.blk_args @ [ v ];
    v

  let append b op =
    if op.op_parent <> None then
      invalid_arg "Block.append: operation already has a parent block";
    op.op_parent <- Some b;
    b.blk_ops <- b.blk_ops @ [ op ]

  let prepend b op =
    if op.op_parent <> None then
      invalid_arg "Block.prepend: operation already has a parent block";
    op.op_parent <- Some b;
    b.blk_ops <- op :: b.blk_ops

  let insert_before b ~anchor op =
    if op.op_parent <> None then
      invalid_arg "Block.insert_before: operation already has a parent block";
    let rec go = function
      | [] -> invalid_arg "Block.insert_before: anchor not in block"
      | o :: rest when o.op_id = anchor.op_id -> op :: o :: rest
      | o :: rest -> o :: go rest
    in
    op.op_parent <- Some b;
    b.blk_ops <- go b.blk_ops

  let remove b op =
    b.blk_ops <- List.filter (fun o -> o.op_id <> op.op_id) b.blk_ops;
    op.op_parent <- None

  let terminator b =
    match List.rev b.blk_ops with [] -> None | last :: _ -> Some last
end

module Region = struct
  type t = region

  let create ?(blocks = []) () =
    let r = { reg_id = next_id (); blocks = []; reg_parent = None } in
    List.iter
      (fun b ->
        if b.blk_parent <> None then
          invalid_arg "Region.create: block already attached to a region";
        b.blk_parent <- Some r)
      blocks;
    r.blocks <- blocks;
    r

  let add_block r b =
    if b.blk_parent <> None then
      invalid_arg "Region.add_block: block already attached to a region";
    b.blk_parent <- Some r;
    r.blocks <- r.blocks @ [ b ]

  let entry r = match r.blocks with [] -> None | b :: _ -> Some b
  let blocks r = r.blocks
  let num_blocks r = List.length r.blocks
end

(** Detach [op] from its parent block (if any). The op keeps its operands and
    results; callers are responsible for use-def hygiene (see
    {!replace_uses_in}). *)
let detach op =
  match op.op_parent with None -> () | Some b -> Block.remove b op

(** Replace every use of [from] by [to_] in all operations nested inside
    [scope] (inclusive). Scans operand lists; at the IR sizes this project
    manipulates an explicit use-list is not worth the bookkeeping. *)
let replace_uses_in scope ~from ~to_ =
  Op.walk scope ~f:(fun o ->
      if List.exists (fun v -> Value.equal v from) o.operands then
        o.operands <-
          List.map (fun v -> if Value.equal v from then to_ else v) o.operands)

(** [has_uses_in scope v] reports whether any operation nested in [scope] uses
    [v] as an operand. *)
let has_uses_in scope v =
  let found = ref false in
  Op.walk scope ~f:(fun o ->
      if (not !found) && List.exists (fun u -> Value.equal u v) o.operands then
        found := true);
  !found
