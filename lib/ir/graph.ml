(** The mutable SSA IR object graph: values, operations, blocks and regions.

    This mirrors MLIR's object model (section 2 of the paper): operations take
    SSA-value operands, produce result values, carry named attributes, may own
    nested regions of basic blocks, and terminators name successor blocks.
    Blocks carry arguments (phi nodes).

    Operations are extensible: [op_name] is a plain ["dialect.mnemonic"]
    string and all structural fields are generic, exactly the property IRDL
    relies on to register dialects at runtime without code generation.

    The storage layout follows MLIR's million-op design rather than a naive
    object graph:

    - Operations are nodes of an intrusive doubly-linked list per block
      ([op_prev]/[op_next] + [blk_first]/[blk_last]), so append, prepend,
      insert-before/after and removal are all O(1) with no list rebuilding.
      Blocks are likewise an intrusive list per region.
    - Operands, results and block arguments are [array]s with O(1) indexed
      access.
    - Every operand slot is a {!use} node threaded into an intrusive use
      chain hanging off the used value ([v_first_use]), maintained by every
      operand mutation. Replace-all-uses, has-uses and use iteration are
      proportional to the value's use count, never to the scope size.
    - Each op carries a block-local order index ([op_order]), assigned by
      midpoint insertion and renumbered (rarely) when a gap closes, so
      "does a come before b in this block" — the inner loop of dominance
      checking — is an integer compare instead of a list scan. *)

open Irdl_support

type value = {
  v_id : int;
  mutable v_ty : Attr.ty;
  mutable v_def : value_def;
  mutable v_first_use : use option;
      (** Head of the intrusive chain of operand slots using this value. *)
}

and value_def =
  | Op_result of { op : op; index : int }
  | Block_arg of { block : block; index : int }
  | Forward_ref of string
      (** A use seen before its definition while parsing; patched to a real
          definition when the defining operation is parsed, and an error if
          still unresolved at end of parse. *)
  | Released
      (** The defining operation was handed back by a streaming parse
          session and {!release}d: the value keeps its identity and type so
          later operations can still use (and type-check against) it, but
          it no longer retains the defining subtree, which lets the GC
          reclaim the operation. *)

and use = {
  u_owner : op;  (** The operation owning the operand slot. *)
  u_index : int;  (** The operand index within [u_owner]. *)
  mutable u_value : value;  (** The value currently occupying the slot. *)
  mutable u_prev : use option;
  mutable u_next : use option;
}

and op = {
  op_id : int;
  op_name : string;  (** Fully qualified, e.g. ["cmath.mul"]. *)
  mutable op_operands : use array;
  mutable op_results : value array;
  mutable attrs : (string * Attr.t) list;
  mutable regions : region list;
  mutable successors : block list;
  mutable op_parent : block option;
  mutable op_prev : op option;
  mutable op_next : op option;
  mutable op_order : int;
      (** Block-local ordering index; strictly increasing along the block's
          op list. Maintained by the insertion primitives. *)
  op_loc : Loc.t;
}

and block = {
  blk_id : int;
  mutable blk_args : value array;
  mutable blk_first : op option;
  mutable blk_last : op option;
  mutable blk_num_ops : int;
  mutable blk_parent : region option;
  mutable blk_prev : block option;
  mutable blk_next : block option;
}

and region = {
  reg_id : int;
  mutable reg_first : block option;
  mutable reg_last : block option;
  mutable reg_num_blocks : int;
  mutable reg_parent : op option;
}

(* Atomic so ID allocation stays race-free once construction moves onto
   OCaml 5 domains (the multicore verification service); uncontended
   fetch-and-add costs the same as the old ref bump. *)
let id_counter = Atomic.make 0
let next_id () = Atomic.fetch_and_add id_counter 1 + 1

(* Gap left between consecutive order indices so insertions in the middle
   usually find a free midpoint; when a gap closes the whole block is
   renumbered (amortized O(1) per insertion, as in MLIR). *)
let order_stride = 32

(* ------------------------------------------------------------------ *)
(* Use-chain maintenance                                               *)
(* ------------------------------------------------------------------ *)

(* Push [u] onto the front of its value's use chain. [u] must be unlinked. *)
let link_use (u : use) =
  let v = u.u_value in
  u.u_prev <- None;
  u.u_next <- v.v_first_use;
  (match v.v_first_use with Some h -> h.u_prev <- Some u | None -> ());
  v.v_first_use <- Some u

(* Remove [u] from its value's use chain. O(1) via the doubly links. *)
let unlink_use (u : use) =
  (match u.u_prev with
  | Some p -> p.u_next <- u.u_next
  | None -> u.u_value.v_first_use <- u.u_next);
  (match u.u_next with Some n -> n.u_prev <- u.u_prev | None -> ());
  u.u_prev <- None;
  u.u_next <- None

let make_use owner index v =
  let u = { u_owner = owner; u_index = index; u_value = v; u_prev = None; u_next = None } in
  link_use u;
  u

module Value = struct
  type t = value

  let ty v = v.v_ty
  let id v = v.v_id
  let equal a b = a.v_id = b.v_id

  (* Used by the IR parser for uses seen before their definition. *)
  let forward_ref name =
    { v_id = next_id (); v_ty = Attr.none; v_def = Forward_ref name;
      v_first_use = None }

  let defining_op v =
    match v.v_def with
    | Op_result { op; _ } -> Some op
    | Block_arg _ | Forward_ref _ | Released -> None

  let owner_block v =
    match v.v_def with
    | Op_result { op; _ } -> op.op_parent
    | Block_arg { block; _ } -> Some block
    | Forward_ref _ | Released -> None

  let has_uses v = v.v_first_use <> None

  let num_uses v =
    let rec go n = function None -> n | Some u -> go (n + 1) u.u_next in
    go 0 v.v_first_use

  let iter_uses v ~f =
    (* The callback may relink the current use; grab the successor first. *)
    let rec go = function
      | None -> ()
      | Some u ->
          let next = u.u_next in
          f u;
          go next
    in
    go v.v_first_use

  (** The (owner op, operand index) pairs currently using [v]. Most-recently
      linked first; order carries no semantic meaning. *)
  let uses v =
    let rec go acc = function
      | None -> List.rev acc
      | Some u -> go ((u.u_owner, u.u_index) :: acc) u.u_next
    in
    go [] v.v_first_use

  (** Re-home every use of [from] onto [to_]: O(number of uses of [from]),
      independent of any enclosing scope. The core RAUW primitive. *)
  let replace_all_uses ~from ~to_ =
    if from != to_ then begin
      let rec go = function
        | None -> ()
        | Some u ->
            let next = u.u_next in
            u.u_value <- to_;
            link_use u;
            go next
      in
      let head = from.v_first_use in
      from.v_first_use <- None;
      go head
    end

  let pp ppf v = Fmt.pf ppf "%%%d : %a" v.v_id Attr.pp_ty v.v_ty
end

module Op = struct
  type t = op

  let create ?(operands = []) ?(result_tys = []) ?(attrs = []) ?(regions = [])
      ?(successors = []) ?(loc = Loc.unknown) name =
    let op =
      {
        op_id = next_id ();
        op_name = name;
        op_operands = [||];
        op_results = [||];
        attrs = List.map (fun (k, v) -> (k, Attr.intern v)) attrs;
        regions;
        successors;
        op_parent = None;
        op_prev = None;
        op_next = None;
        op_order = 0;
        op_loc = loc;
      }
    in
    op.op_operands <-
      Array.of_list (List.mapi (fun i v -> make_use op i v) operands);
    (* Interning at every SSA-value creation point keeps the uniquing
       invariant even for types assembled outside {!Attr}'s constructors. *)
    op.op_results <-
      Array.of_list
        (List.mapi
           (fun index ty ->
             { v_id = next_id ();
               v_ty = Attr.intern_ty ty;
               v_def = Op_result { op; index };
               v_first_use = None })
           result_tys);
    List.iter
      (fun r ->
        if r.reg_parent <> None then
          invalid_arg "Op.create: region already attached to an operation";
        r.reg_parent <- Some op)
      regions;
    op

  (* Deserialization fast path: operands and result types arrive as arrays
     and are used as given — the caller guarantees result types are already
     canonical and attribute values interned, as the bytecode reader's
     table pass does. Skips [create]'s defensive interning and its
     list-to-array copies; a measurable share of module load time at
     10^6 ops. *)
  let create_prebuilt ~(operands : value array) ~(result_tys : Attr.ty array)
      ~attrs ~regions ~successors ~loc name =
    let op =
      {
        op_id = next_id ();
        op_name = name;
        op_operands = [||];
        op_results = [||];
        attrs;
        regions;
        successors;
        op_parent = None;
        op_prev = None;
        op_next = None;
        op_order = 0;
        op_loc = loc;
      }
    in
    let n_operands = Array.length operands in
    if n_operands > 0 then begin
      let uses = Array.make n_operands (make_use op 0 operands.(0)) in
      for i = 1 to n_operands - 1 do
        uses.(i) <- make_use op i operands.(i)
      done;
      op.op_operands <- uses
    end;
    let n_results = Array.length result_tys in
    if n_results > 0 then begin
      let res =
        Array.make n_results
          {
            v_id = next_id ();
            v_ty = result_tys.(0);
            v_def = Op_result { op; index = 0 };
            v_first_use = None;
          }
      in
      for index = 1 to n_results - 1 do
        res.(index) <-
          {
            v_id = next_id ();
            v_ty = result_tys.(index);
            v_def = Op_result { op; index };
            v_first_use = None;
          }
      done;
      op.op_results <- res
    end;
    List.iter
      (fun r ->
        if r.reg_parent <> None then
          invalid_arg "Op.create: region already attached to an operation";
        r.reg_parent <- Some op)
      regions;
    op

  let name op = op.op_name

  let dialect op =
    match String.index_opt op.op_name '.' with
    | Some i -> String.sub op.op_name 0 i
    | None -> ""

  let mnemonic op =
    match String.index_opt op.op_name '.' with
    | Some i -> String.sub op.op_name (i + 1) (String.length op.op_name - i - 1)
    | None -> op.op_name

  let operand op i = op.op_operands.(i).u_value
  let result op i = op.op_results.(i)
  let num_operands op = Array.length op.op_operands
  let num_results op = Array.length op.op_results

  let operands op =
    Array.fold_right (fun u acc -> u.u_value :: acc) op.op_operands []

  let results op = Array.to_list op.op_results

  let operand_tys op =
    Array.fold_right (fun u acc -> u.u_value.v_ty :: acc) op.op_operands []

  let result_tys op =
    Array.fold_right (fun v acc -> v.v_ty :: acc) op.op_results []

  let iter_operands op ~f = Array.iter (fun u -> f u.u_value) op.op_operands
  let iteri_operands op ~f = Array.iteri (fun i u -> f i u.u_value) op.op_operands
  let iter_results op ~f = Array.iter f op.op_results

  let attr op key = List.assoc_opt key op.attrs

  let set_attr op key value =
    op.attrs <- (key, Attr.intern value) :: List.remove_assoc key op.attrs

  let remove_attr op key = op.attrs <- List.remove_assoc key op.attrs

  let set_operand op i v =
    let u = op.op_operands.(i) in
    if u.u_value != v then begin
      unlink_use u;
      u.u_value <- v;
      link_use u
    end

  let set_operands op operands =
    Array.iter unlink_use op.op_operands;
    op.op_operands <-
      Array.of_list (List.mapi (fun i v -> make_use op i v) operands)

  (* Drop this op's operand slots from their use chains. Part of {!erase};
     the op keeps no operands afterwards. *)
  let drop_operand_uses op =
    Array.iter unlink_use op.op_operands;
    op.op_operands <- [||]

  let parent_op op =
    match op.op_parent with
    | None -> None
    | Some blk -> ( match blk.blk_parent with None -> None | Some r -> r.reg_parent)

  let prev_op op = op.op_prev
  let next_op op = op.op_next

  (** Does [a] come strictly before [b] in their (shared) block? O(1): an
      order-index compare. *)
  let is_before_in_block a b =
    (match (a.op_parent, b.op_parent) with
    | Some ba, Some bb when ba == bb -> ()
    | _ -> invalid_arg "Op.is_before_in_block: ops not in the same block");
    a.op_order < b.op_order

  (** Pre-order walk over [op] and every operation nested in its regions.
      Iterative (explicit worklist), so arbitrarily deep region nesting
      cannot overflow the call stack. *)
  let walk op ~f =
    let stack = ref [ op ] in
    let running = ref true in
    while !running do
      match !stack with
      | [] -> running := false
      | o :: rest ->
          stack := rest;
          f o;
          (* Collect direct nested ops in reverse program order, then push:
             the first nested op ends on top, preserving pre-order. *)
          let rev_children = ref [] in
          List.iter
            (fun region ->
              let b = ref region.reg_first in
              let bgo = ref true in
              while !bgo do
                match !b with
                | None -> bgo := false
                | Some blk ->
                    let o = ref blk.blk_first in
                    let ogo = ref true in
                    while !ogo do
                      match !o with
                      | None -> ogo := false
                      | Some child ->
                          rev_children := child :: !rev_children;
                          o := child.op_next
                    done;
                    b := blk.blk_next
              done)
            o.regions;
          List.iter (fun c -> stack := c :: !stack) !rev_children
    done

  (** [is_ancestor ~ancestor op]: is [op] nested (strictly or not) inside
      [ancestor]'s regions? *)
  let is_ancestor ~ancestor op =
    let rec up o = if o.op_id = ancestor.op_id then true
      else match parent_op o with None -> false | Some p -> up p
    in
    up op
end

module Block = struct
  type t = block

  let create ?(arg_tys = []) () =
    let block =
      { blk_id = next_id (); blk_args = [||]; blk_first = None; blk_last = None;
        blk_num_ops = 0; blk_parent = None; blk_prev = None; blk_next = None }
    in
    block.blk_args <-
      Array.of_list
        (List.mapi
           (fun index ty ->
             { v_id = next_id ();
               v_ty = Attr.intern_ty ty;
               v_def = Block_arg { block; index };
               v_first_use = None })
           arg_tys);
    block

  let args b = Array.to_list b.blk_args
  let arg b i = b.blk_args.(i)
  let num_args b = Array.length b.blk_args

  let ops b =
    let rec go acc = function
      | None -> List.rev acc
      | Some o -> go (o :: acc) o.op_next
    in
    go [] b.blk_first

  let iter_ops b ~f =
    (* Robust against [f] removing the current op: advance first. *)
    let cur = ref b.blk_first in
    let running = ref true in
    while !running do
      match !cur with
      | None -> running := false
      | Some o ->
          cur := o.op_next;
          f o
    done

  let num_ops b = b.blk_num_ops
  let first_op b = b.blk_first
  let last_op b = b.blk_last

  let add_arg b ty =
    let index = Array.length b.blk_args in
    let v =
      { v_id = next_id ();
        v_ty = Attr.intern_ty ty;
        v_def = Block_arg { block = b; index };
        v_first_use = None }
    in
    b.blk_args <- Array.append b.blk_args [| v |];
    v

  (* Rewrite every order index to index * stride. Called when a midpoint
     insertion finds no gap; O(n) but amortized away by the stride. *)
  let renumber b =
    let i = ref 0 in
    let cur = ref b.blk_first in
    let running = ref true in
    while !running do
      match !cur with
      | None -> running := false
      | Some o ->
          o.op_order <- !i * order_stride;
          incr i;
          cur := o.op_next
    done

  (* Assign an order to an already-linked [op] from its neighbours. *)
  let assign_order b op =
    match (op.op_prev, op.op_next) with
    | None, None -> op.op_order <- 0
    | Some p, None -> op.op_order <- p.op_order + order_stride
    | None, Some n -> op.op_order <- n.op_order - order_stride
    | Some p, Some n ->
        if n.op_order - p.op_order >= 2 then
          op.op_order <- p.op_order + ((n.op_order - p.op_order) / 2)
        else renumber b

  let append b op =
    if op.op_parent <> None then
      invalid_arg "Block.append: operation already has a parent block";
    op.op_parent <- Some b;
    op.op_prev <- b.blk_last;
    op.op_next <- None;
    (match b.blk_last with
    | Some l ->
        l.op_next <- Some op;
        op.op_order <- l.op_order + order_stride
    | None ->
        b.blk_first <- Some op;
        op.op_order <- 0);
    b.blk_last <- Some op;
    b.blk_num_ops <- b.blk_num_ops + 1

  let prepend b op =
    if op.op_parent <> None then
      invalid_arg "Block.prepend: operation already has a parent block";
    op.op_parent <- Some b;
    op.op_prev <- None;
    op.op_next <- b.blk_first;
    (match b.blk_first with
    | Some f ->
        f.op_prev <- Some op;
        op.op_order <- f.op_order - order_stride
    | None ->
        b.blk_last <- Some op;
        op.op_order <- 0);
    b.blk_first <- Some op;
    b.blk_num_ops <- b.blk_num_ops + 1

  let insert_before b ~anchor op =
    if op.op_parent <> None then
      invalid_arg "Block.insert_before: operation already has a parent block";
    (match anchor.op_parent with
    | Some b' when b' == b -> ()
    | _ -> invalid_arg "Block.insert_before: anchor not in block");
    op.op_parent <- Some b;
    op.op_prev <- anchor.op_prev;
    op.op_next <- Some anchor;
    (match anchor.op_prev with
    | Some p -> p.op_next <- Some op
    | None -> b.blk_first <- Some op);
    anchor.op_prev <- Some op;
    b.blk_num_ops <- b.blk_num_ops + 1;
    assign_order b op

  let insert_after b ~anchor op =
    if op.op_parent <> None then
      invalid_arg "Block.insert_after: operation already has a parent block";
    (match anchor.op_parent with
    | Some b' when b' == b -> ()
    | _ -> invalid_arg "Block.insert_after: anchor not in block");
    op.op_parent <- Some b;
    op.op_prev <- Some anchor;
    op.op_next <- anchor.op_next;
    (match anchor.op_next with
    | Some n -> n.op_prev <- Some op
    | None -> b.blk_last <- Some op);
    anchor.op_next <- Some op;
    b.blk_num_ops <- b.blk_num_ops + 1;
    assign_order b op

  let remove b op =
    match op.op_parent with
    | Some b' when b' == b ->
        (match op.op_prev with
        | Some p -> p.op_next <- op.op_next
        | None -> b.blk_first <- op.op_next);
        (match op.op_next with
        | Some n -> n.op_prev <- op.op_prev
        | None -> b.blk_last <- op.op_prev);
        op.op_prev <- None;
        op.op_next <- None;
        op.op_parent <- None;
        b.blk_num_ops <- b.blk_num_ops - 1
    | _ -> op.op_parent <- None

  let terminator b = b.blk_last
end

module Region = struct
  type t = region

  let add_block r b =
    if b.blk_parent <> None then
      invalid_arg "Region.add_block: block already attached to a region";
    b.blk_parent <- Some r;
    b.blk_prev <- r.reg_last;
    b.blk_next <- None;
    (match r.reg_last with
    | Some l -> l.blk_next <- Some b
    | None -> r.reg_first <- Some b);
    r.reg_last <- Some b;
    r.reg_num_blocks <- r.reg_num_blocks + 1

  let create ?(blocks = []) () =
    let r =
      { reg_id = next_id (); reg_first = None; reg_last = None;
        reg_num_blocks = 0; reg_parent = None }
    in
    List.iter
      (fun b ->
        if b.blk_parent <> None then
          invalid_arg "Region.create: block already attached to a region";
        add_block r b)
      blocks;
    r

  let entry r = r.reg_first

  let blocks r =
    let rec go acc = function
      | None -> List.rev acc
      | Some b -> go (b :: acc) b.blk_next
    in
    go [] r.reg_first

  let iter_blocks r ~f =
    let cur = ref r.reg_first in
    let running = ref true in
    while !running do
      match !cur with
      | None -> running := false
      | Some b ->
          cur := b.blk_next;
          f b
    done

  let num_blocks r = r.reg_num_blocks
end

(** Detach [op] from its parent block (if any). The op keeps its operands,
    results and use links; use {!erase} when the op is going away for good. *)
let detach op =
  match op.op_parent with None -> () | Some b -> Block.remove b op

(** Remove [op] from its block and unlink every operand slot of [op] — and
    of every operation nested inside it — from the use chains, so values it
    consumed no longer count it as a user. The erasure primitive for DCE,
    CSE and pattern replacement; callers must have rewired (or checked) uses
    of [op]'s own results first. *)
let erase op =
  detach op;
  Op.walk op ~f:Op.drop_operand_uses

(** Release [op] after a streaming consumer is done with it: detach it,
    unlink every operand slot of its subtree from the use chains (so values
    defined earlier no longer retain it as a user), and mark every value the
    subtree defines — results and block arguments, at every nesting level —
    as {!Released}. Released values keep their identity and type, so later
    operations can still take them as operands, but they no longer point
    back at the defining subtree: once the caller drops its own reference,
    the whole operation tree is garbage. *)
let release op =
  detach op;
  Op.walk op ~f:(fun o ->
      Op.drop_operand_uses o;
      Array.iter (fun (v : value) -> v.v_def <- Released) o.op_results;
      List.iter
        (fun r ->
          Region.iter_blocks r ~f:(fun b ->
              Array.iter (fun (v : value) -> v.v_def <- Released) b.blk_args))
        o.regions)

(** Replace every use of [from] by [to_] in operations nested inside [scope]
    (inclusive). With the intrusive use chains this touches only [from]'s
    actual users — O(uses × nesting depth) for the scope filter — instead of
    scanning the scope. Unscoped callers should prefer
    {!Value.replace_all_uses}. *)
let replace_uses_in scope ~from ~to_ =
  if from != to_ then
    Value.iter_uses from ~f:(fun u ->
        if Op.is_ancestor ~ancestor:scope u.u_owner then begin
          unlink_use u;
          u.u_value <- to_;
          link_use u
        end)

(** [has_uses_in scope v]: does any operation nested in [scope] use [v]?
    Walks [v]'s use chain, not the scope. *)
let has_uses_in scope v =
  let rec go = function
    | None -> false
    | Some u -> Op.is_ancestor ~ancestor:scope u.u_owner || go u.u_next
  in
  go v.v_first_use

(* ------------------------------------------------------------------ *)
(* Structural invariant checking (debug / test harness)                *)
(* ------------------------------------------------------------------ *)

(** Check every structural invariant of the intrusive representation over
    [root]'s subtree: parent pointers, doubly-linked list integrity and
    counts, strictly increasing order indices, result/argument back-pointers,
    and exact agreement between operand slots and use chains. O(n) in the
    subtree plus total use count; meant for tests and debug builds, not hot
    paths. *)
let check_invariants (root : op) : (unit, string) result =
  let exception Bad of string in
  let fail fmt = Fmt.kstr (fun s -> raise (Bad s)) fmt in
  (* Physical membership test; [o = Some x] would allocate a fresh option
     cell, so destructure instead. *)
  let opt_is x = function Some y -> y == x | None -> false in
  let check_value_chain what (v : value) =
    (* Every node agrees with its neighbours and with its owner's slot. *)
    let seen = ref 0 in
    let rec go prev = function
      | None -> ()
      | Some u ->
          incr seen;
          if !seen > 10_000_000 then
            fail "%s %%%d: use chain too long (cycle?)" what v.v_id;
          if u.u_value != v then
            fail "%s %%%d: chained use points at a different value" what v.v_id;
          (match (prev, u.u_prev) with
          | None, None -> ()
          | Some p, Some p' when p == p' -> ()
          | _ -> fail "%s %%%d: use chain prev link broken" what v.v_id);
          let slots = u.u_owner.op_operands in
          if u.u_index >= Array.length slots || not (slots.(u.u_index) == u)
          then
            fail "%s %%%d: use chain entry not backed by operand slot %d of '%s'"
              what v.v_id u.u_index u.u_owner.op_name;
          go (Some u) u.u_next
    in
    go None v.v_first_use
  in
  let check_op (o : op) =
    Array.iteri
      (fun i u ->
        if u.u_owner != o then
          fail "'%s': operand slot %d owned by a different op" o.op_name i;
        if u.u_index <> i then
          fail "'%s': operand slot %d carries index %d" o.op_name i u.u_index;
        (* Local chain membership: the slot's links must be mutual. *)
        (match u.u_prev with
        | Some p ->
            if not (opt_is u p.u_next) then
              fail "'%s': operand slot %d has a broken prev link" o.op_name i
        | None ->
            if not (opt_is u u.u_value.v_first_use) then
              fail "'%s': operand slot %d is not the chain head of its value"
                o.op_name i);
        match u.u_next with
        | Some n ->
            if not (opt_is u n.u_prev) then
              fail "'%s': operand slot %d has a broken next link" o.op_name i
        | None -> ())
      o.op_operands;
    Array.iteri
      (fun i (v : value) ->
        (match v.v_def with
        | Op_result { op = owner; index } when owner == o && index = i -> ()
        | _ -> fail "'%s': result %d back-pointer broken" o.op_name i);
        check_value_chain "result" v)
      o.op_results;
    List.iter
      (fun (r : region) ->
        (match r.reg_parent with
        | Some p when p == o -> ()
        | _ -> fail "'%s': owned region lacks parent pointer" o.op_name);
        let count = ref 0 in
        let prev_blk = ref None in
        Region.iter_blocks r ~f:(fun b ->
            incr count;
            (match b.blk_parent with
            | Some r' when r' == r -> ()
            | _ -> fail "block in region of '%s' has wrong parent" o.op_name);
            (match (!prev_blk, b.blk_prev) with
            | None, None -> ()
            | Some p, Some p' when p == p' -> ()
            | _ -> fail "region of '%s': block prev link broken" o.op_name);
            prev_blk := Some b;
            Array.iteri
              (fun i (v : value) ->
                (match v.v_def with
                | Block_arg { block; index } when block == b && index = i -> ()
                | _ -> fail "block arg %d back-pointer broken" i);
                check_value_chain "block arg" v)
              b.blk_args;
            let n = ref 0 in
            let last_order = ref min_int in
            let prev_op = ref None in
            Block.iter_ops b ~f:(fun child ->
                incr n;
                (match child.op_parent with
                | Some b' when b' == b -> ()
                | _ -> fail "'%s' has wrong parent block" child.op_name);
                (match (!prev_op, child.op_prev) with
                | None, None -> ()
                | Some p, Some p' when p == p' -> ()
                | _ -> fail "'%s': op prev link broken" child.op_name);
                if child.op_order <= !last_order then
                  fail "'%s': order index not increasing" child.op_name;
                last_order := child.op_order;
                prev_op := Some child);
            (match (b.blk_last, !prev_op) with
            | None, None -> ()
            | Some l, Some l' when l == l' -> ()
            | _ -> fail "region of '%s': blk_last out of sync" o.op_name);
            if !n <> b.blk_num_ops then
              fail "block of '%s': op count %d but blk_num_ops %d" o.op_name !n
                b.blk_num_ops);
        (match (r.reg_last, !prev_blk) with
        | None, None -> ()
        | Some l, Some l' when l == l' -> ()
        | _ -> fail "region of '%s': reg_last out of sync" o.op_name);
        if !count <> r.reg_num_blocks then
          fail "region of '%s': block count %d but reg_num_blocks %d" o.op_name
            !count r.reg_num_blocks)
      o.regions
  in
  try
    Op.walk root ~f:check_op;
    Ok ()
  with Bad msg -> Error msg
