(** Types and attributes of the IR.

    Following xDSL (and unlike MLIR's C++ split), types and attributes live in
    one recursive value domain: a type can appear as an attribute ({!Type})
    and dynamic (IRDL-defined) types carry attribute parameters. This makes
    IRDL parameter constraints uniform: they all constrain attributes.

    Builtin types mirror the MLIR builtins that the paper's corpus depends
    on: signless/signed/unsigned integers, the standard float kinds, [index],
    and function/tuple aggregates. Everything else is a {!Dynamic} type or
    {!Dyn_attr} attribute introduced at runtime by dialect registration.

    {b Uniquing.} Like MLIR's [MLIRContext], every node built through the
    constructors below is hash-consed into a uniquer ({!Intern}) — one
    shard per domain, so parallel workers never share a table: within a
    domain structurally equal attributes are physically equal, and
    {!equal}/{!equal_ty} decide interned operands with a pointer comparison.
    The variant constructors remain exposed for pattern matching, but values
    must never be built from them directly outside this module — always go
    through the smart constructors (or {!intern}/{!intern_ty} for values
    assembled elsewhere). *)

open Irdl_support

type signedness = Signless | Signed | Unsigned

type float_kind = BF16 | F16 | F32 | F64

type ty =
  | Integer of { width : int; signedness : signedness }
  | Float of float_kind
  | Index
  | None_ty
  | Function of { inputs : ty list; outputs : ty list }
  | Tuple of ty list
  | Dynamic of { dialect : string; name : string; params : t list }

and t =
  | Unit
  | Bool of bool
  | Int of { value : int64; ty : ty }
  | Float_attr of { value : float; ty : ty }
  | String of string
  | Array of t list
  | Dict of (string * t) list
  | Type of ty
  | Enum of { dialect : string; enum : string; case : string }
  | Symbol of string
  | Location of { file : string; line : int; col : int }
  | Type_id of string
  | Opaque of { tag : string; repr : string }
      (** Escape hatch for IRDL-C++ [TypeOrAttrParam] parameters: [tag] names
          the registered native parameter kind, [repr] its printed form. *)
  | Dyn_attr of { dialect : string; name : string; params : t list }
      (** An attribute defined at runtime by an IRDL [Attribute] definition. *)

(* ------------------------------------------------------------------ *)
(* Structural equality and hashing (the uniquer's keys)                *)
(* ------------------------------------------------------------------ *)

(* The structural walks below carry a physical fast path at every level:
   once sub-terms are interned, comparing two attributes only descends until
   it meets canonical nodes, so equality of interned values never walks. *)

let rec structural_equal_ty (a : ty) (b : ty) =
  a == b
  ||
  match (a, b) with
  | Integer a, Integer b -> a.width = b.width && a.signedness = b.signedness
  | Float a, Float b -> a = b
  | Index, Index | None_ty, None_ty -> true
  | Function a, Function b ->
      List.length a.inputs = List.length b.inputs
      && List.length a.outputs = List.length b.outputs
      && List.for_all2 structural_equal_ty a.inputs b.inputs
      && List.for_all2 structural_equal_ty a.outputs b.outputs
  | Tuple a, Tuple b ->
      List.length a = List.length b && List.for_all2 structural_equal_ty a b
  | Dynamic a, Dynamic b ->
      a.dialect = b.dialect && a.name = b.name
      && List.length a.params = List.length b.params
      && List.for_all2 structural_equal a.params b.params
  | ( ( Integer _ | Float _ | Index | None_ty | Function _ | Tuple _
      | Dynamic _ ),
      _ ) ->
      false

and structural_equal (a : t) (b : t) =
  a == b
  ||
  match (a, b) with
  | Unit, Unit -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> Int64.equal a.value b.value && structural_equal_ty a.ty b.ty
  | Float_attr a, Float_attr b ->
      (* Bitwise comparison so that attribute equality is reflexive even for
         NaN payloads appearing in folded constants. *)
      Int64.equal (Int64.bits_of_float a.value) (Int64.bits_of_float b.value)
      && structural_equal_ty a.ty b.ty
  | String a, String b -> String.equal a b
  | Array a, Array b ->
      List.length a = List.length b && List.for_all2 structural_equal a b
  | Dict a, Dict b ->
      (* Dictionaries are canonicalized to sorted key order at construction
         time, so the ordered comparison is key-order-insensitive for any
         value built through {!dict} or {!intern}. *)
      List.length a = List.length b
      && List.for_all2
           (fun (ka, va) (kb, vb) ->
             String.equal ka kb && structural_equal va vb)
           a b
  | Type a, Type b -> structural_equal_ty a b
  | Enum a, Enum b ->
      a.dialect = b.dialect && a.enum = b.enum && a.case = b.case
  | Symbol a, Symbol b -> String.equal a b
  | Location a, Location b ->
      String.equal a.file b.file && a.line = b.line && a.col = b.col
  | Type_id a, Type_id b -> String.equal a b
  | Opaque a, Opaque b -> a.tag = b.tag && a.repr = b.repr
  | Dyn_attr a, Dyn_attr b ->
      a.dialect = b.dialect && a.name = b.name
      && List.length a.params = List.length b.params
      && List.for_all2 structural_equal a.params b.params
  | ( ( Unit | Bool _ | Int _ | Float_attr _ | String _ | Array _ | Dict _
      | Type _ | Enum _ | Symbol _ | Location _ | Type_id _ | Opaque _
      | Dyn_attr _ ),
      _ ) ->
      false

(** Interned operands decide on the pointer; the structural walk remains as
    a correct fallback for values that bypassed the uniquer. *)
let equal_ty a b = a == b || structural_equal_ty a b

let equal a b = a == b || structural_equal a b

(* A conventional accumulator mix (Boost hash_combine); paired with the
   equalities above so that [equal a b] implies [hash a = hash b]. *)
let combine h k = h lxor (k + 0x9e3779b9 + (h lsl 6) + (h lsr 2))

let hash_string h s = combine h (Hashtbl.hash (s : string))
let hash_int64 h (v : int64) = combine (combine h (Int64.to_int v)) 17

let hash_signedness = function Signless -> 1 | Signed -> 2 | Unsigned -> 3
let hash_float_kind = function BF16 -> 1 | F16 -> 2 | F32 -> 3 | F64 -> 4

let rec hash_ty (ty : ty) =
  match ty with
  | Integer { width; signedness } ->
      combine (combine 3 width) (hash_signedness signedness)
  | Float k -> combine 5 (hash_float_kind k)
  | Index -> 7
  | None_ty -> 11
  | Function { inputs; outputs } ->
      let h = List.fold_left (fun h t -> combine h (hash_ty t)) 13 inputs in
      List.fold_left (fun h t -> combine h (hash_ty t)) (combine h 0) outputs
  | Tuple tys -> List.fold_left (fun h t -> combine h (hash_ty t)) 17 tys
  | Dynamic { dialect; name; params } ->
      List.fold_left
        (fun h p -> combine h (hash p))
        (hash_string (hash_string 19 dialect) name)
        params

and hash (a : t) =
  match a with
  | Unit -> 23
  | Bool b -> combine 29 (Bool.to_int b)
  | Int { value; ty } -> combine (hash_int64 31 value) (hash_ty ty)
  | Float_attr { value; ty } ->
      (* Hash the bits to match the bitwise equality (NaN-safe). *)
      combine (hash_int64 37 (Int64.bits_of_float value)) (hash_ty ty)
  | String s -> hash_string 41 s
  | Array xs -> List.fold_left (fun h x -> combine h (hash x)) 43 xs
  | Dict kvs ->
      List.fold_left
        (fun h (k, v) -> combine (hash_string h k) (hash v))
        47 kvs
  | Type ty -> combine 53 (hash_ty ty)
  | Enum { dialect; enum; case } ->
      hash_string (hash_string (hash_string 59 dialect) enum) case
  | Symbol s -> hash_string 61 s
  | Location { file; line; col } ->
      combine (combine (hash_string 67 file) line) col
  | Type_id s -> hash_string 71 s
  | Opaque { tag; repr } -> hash_string (hash_string 73 tag) repr
  | Dyn_attr { dialect; name; params } ->
      List.fold_left
        (fun h p -> combine h (hash p))
        (hash_string (hash_string 79 dialect) name)
        params

(* ------------------------------------------------------------------ *)
(* The uniquer                                                         *)
(* ------------------------------------------------------------------ *)

module Ty_uniquer = Intern.Make (struct
  type t = ty

  let equal = structural_equal_ty
  let hash = hash_ty
end)

module Attr_uniquer = Intern.Make (struct
  type nonrec t = t

  let equal = structural_equal
  let hash = hash
end)

(* One uniquer pair per domain, owned conceptually by {!Context} (which
   reports its statistics): attribute construction must work before any
   context exists — dialect corpus helpers, constant pools — exactly as
   MLIR's builtin attribute storage outlives dialect registration.

   The pair is domain-local (Domain.DLS) rather than process-wide so that
   parallel verification workers never contend on — or race inside — the
   hash tables: each domain uniques into its own shard, physical equality
   and dense ids hold within a domain (which is where [==] fast paths and
   id-keyed caches are consulted), and cross-domain comparisons fall back
   to the structural walk that every equality in this module keeps anyway.
   A registry of all shards backs the merged statistics. *)
type uniquer_shard = {
  sh_tys : Ty_uniquer.table;
  sh_attrs : Attr_uniquer.table;
}

let shard_registry : uniquer_shard list ref = ref []
let shard_registry_lock = Mutex.create ()

let uniquer_key : uniquer_shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let sh =
        { sh_tys = Ty_uniquer.create (); sh_attrs = Attr_uniquer.create () }
      in
      Mutex.lock shard_registry_lock;
      shard_registry := sh :: !shard_registry;
      Mutex.unlock shard_registry_lock;
      sh)

let ty_uniquer () = (Domain.DLS.get uniquer_key).sh_tys
let attr_uniquer () = (Domain.DLS.get uniquer_key).sh_attrs

(** Canonicalize a dictionary's entries: stable-sort by key so equality and
    hashing are key-order-insensitive, and reject duplicate keys. *)
let canonicalize_dict kvs =
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> String.compare a b) kvs
  in
  let rec check = function
    | (k1, _) :: ((k2, _) :: _ as rest) ->
        if String.equal k1 k2 then
          Diag.raise_error "duplicate key '%s' in dictionary attribute" k1;
        check rest
    | _ -> ()
  in
  check sorted;
  sorted

(** Deeply intern an attribute/type assembled outside this module (tests,
    deserializers). Nodes built through the smart constructors are already
    canonical, so the [find] fast path stops the walk at the first
    already-interned level. *)
let rec intern_ty (ty0 : ty) : ty =
  let ty_uniquer = ty_uniquer () in
  match Ty_uniquer.find ty_uniquer ty0 with
  | Some canonical -> canonical
  | None ->
      let rebuilt =
        match ty0 with
        | Integer _ | Float _ | Index | None_ty -> ty0
        | Function { inputs; outputs } ->
            Function
              {
                inputs = List.map intern_ty inputs;
                outputs = List.map intern_ty outputs;
              }
        | Tuple tys -> Tuple (List.map intern_ty tys)
        | Dynamic { dialect; name; params } ->
            Dynamic { dialect; name; params = List.map intern params }
      in
      Ty_uniquer.intern ty_uniquer rebuilt

and intern (a0 : t) : t =
  let attr_uniquer = attr_uniquer () in
  match Attr_uniquer.find attr_uniquer a0 with
  | Some canonical -> canonical
  | None ->
      let rebuilt =
        match a0 with
        | Unit | Bool _ | String _ | Enum _ | Symbol _ | Location _
        | Type_id _ | Opaque _ ->
            a0
        | Int { value; ty } -> Int { value; ty = intern_ty ty }
        | Float_attr { value; ty } -> Float_attr { value; ty = intern_ty ty }
        | Array xs -> Array (List.map intern xs)
        | Dict kvs ->
            Dict
              (canonicalize_dict (List.map (fun (k, v) -> (k, intern v)) kvs))
        | Type ty -> Type (intern_ty ty)
        | Dyn_attr { dialect; name; params } ->
            Dyn_attr { dialect; name; params = List.map intern params }
      in
      Attr_uniquer.intern attr_uniquer rebuilt

let id a = Attr_uniquer.id (attr_uniquer ()) (intern a)
let id_ty ty = Ty_uniquer.id (ty_uniquer ()) (intern_ty ty)

(** The calling domain's shard counters. Single-domain programs see exactly
    the historical process-wide numbers (there is only one shard). *)
let uniquer_stats () =
  (Ty_uniquer.stats (ty_uniquer ()), Attr_uniquer.stats (attr_uniquer ()))

(** Counters summed over every domain's shard. [nodes] counts canonical
    copies per shard, not globally distinct structures. *)
let uniquer_stats_merged () =
  Mutex.lock shard_registry_lock;
  let shards = !shard_registry in
  Mutex.unlock shard_registry_lock;
  List.fold_left
    (fun (tys, attrs) sh ->
      ( Intern.add_stats tys (Ty_uniquer.stats sh.sh_tys),
        Intern.add_stats attrs (Attr_uniquer.stats sh.sh_attrs) ))
    ( { Intern.nodes = 0; hits = 0; misses = 0 },
      { Intern.nodes = 0; hits = 0; misses = 0 } )
    shards

(* ------------------------------------------------------------------ *)
(* Smart constructors (every node they build is interned)              *)
(* ------------------------------------------------------------------ *)

(* Convenience type constructors. *)

let i1 = intern_ty (Integer { width = 1; signedness = Signless })
let i8 = intern_ty (Integer { width = 8; signedness = Signless })
let i16 = intern_ty (Integer { width = 16; signedness = Signless })
let i32 = intern_ty (Integer { width = 32; signedness = Signless })
let i64 = intern_ty (Integer { width = 64; signedness = Signless })
let f16 = intern_ty (Float F16)
let f32 = intern_ty (Float F32)
let f64 = intern_ty (Float F64)
let bf16 = intern_ty (Float BF16)
let index = intern_ty Index
let none = intern_ty None_ty

let integer ?(signedness = Signless) width =
  if width <= 0 then invalid_arg "Attr.integer: width must be positive";
  intern_ty (Integer { width; signedness })

let dynamic ~dialect ~name params = intern_ty (Dynamic { dialect; name; params })
let function_ty ~inputs ~outputs = intern_ty (Function { inputs; outputs })
let tuple tys = intern_ty (Tuple tys)

(* Convenience attribute constructors. *)

let unit = intern Unit
let bool b = intern (Bool b)
let int ?(ty = i64) value = intern (Int { value; ty })
let int_of ~ty value = intern (Int { value = Int64.of_int value; ty })
let float ?(ty = f64) value = intern (Float_attr { value; ty })
let string s = intern (String s)
let array xs = intern (Array xs)
let dict kvs = intern (Dict kvs)
let typ ty = intern (Type ty)
let enum ~dialect ~enum:e case = intern (Enum { dialect; enum = e; case })
let symbol s = intern (Symbol s)
let location ~file ~line ~col = intern (Location { file; line; col })
let type_id s = intern (Type_id s)
let opaque ~tag repr = intern (Opaque { tag; repr })
let dyn_attr ~dialect ~name params = intern (Dyn_attr { dialect; name; params })

let pp_signedness ppf = function
  | Signless -> Fmt.string ppf "i"
  | Signed -> Fmt.string ppf "si"
  | Unsigned -> Fmt.string ppf "ui"

let pp_float_kind ppf k =
  Fmt.string ppf
    (match k with BF16 -> "bf16" | F16 -> "f16" | F32 -> "f32" | F64 -> "f64")

let rec pp_ty ppf (ty : ty) =
  match ty with
  | Integer { width; signedness } ->
      Fmt.pf ppf "%a%d" pp_signedness signedness width
  | Float k -> pp_float_kind ppf k
  | Index -> Fmt.string ppf "index"
  | None_ty -> Fmt.string ppf "none"
  | Function { inputs; outputs } ->
      Fmt.pf ppf "(%a) -> (%a)"
        Fmt.(list ~sep:(any ", ") pp_ty)
        inputs
        Fmt.(list ~sep:(any ", ") pp_ty)
        outputs
  | Tuple tys -> Fmt.pf ppf "tuple<%a>" Fmt.(list ~sep:(any ", ") pp_ty) tys
  | Dynamic { dialect; name; params = [] } -> Fmt.pf ppf "!%s.%s" dialect name
  | Dynamic { dialect; name; params } ->
      Fmt.pf ppf "!%s.%s<%a>" dialect name Fmt.(list ~sep:(any ", ") pp) params

and pp ppf (a : t) =
  match a with
  | Unit -> Fmt.string ppf "unit"
  | Bool b -> Fmt.bool ppf b
  | Int { value; ty } -> Fmt.pf ppf "%Ld : %a" value pp_ty ty
  | Float_attr { value; ty } ->
      (* Shortest decimal form that round-trips; the parser requires a '.'
         or exponent to lex a float, which %.1f / %g guarantee here. *)
      let repr =
        if Float.is_integer value && Float.abs value < 1e15 then
          Printf.sprintf "%.1f" value
        else
          let s = Printf.sprintf "%.15g" value in
          if float_of_string s = value then s
          else Printf.sprintf "%.17g" value
      in
      Fmt.pf ppf "%s : %a" repr pp_ty ty
  | String s -> Fmt.pf ppf "%S" s
  | Array xs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp) xs
  | Dict kvs ->
      Fmt.pf ppf "{%a}"
        Fmt.(list ~sep:(any ", ") (fun ppf (k, v) -> pf ppf "%s = %a" k pp v))
        kvs
  | Type ty -> pp_ty ppf ty
  | Enum { dialect; enum; case } -> Fmt.pf ppf "#%s<%s.%s>" dialect enum case
  | Symbol s -> Fmt.pf ppf "@%s" s
  | Location { file; line; col } -> Fmt.pf ppf "loc(%S:%d:%d)" file line col
  | Type_id id -> Fmt.pf ppf "#typeid<%s>" id
  | Opaque { tag; repr } -> Fmt.pf ppf "#native<%s, %S>" tag repr
  | Dyn_attr { dialect; name; params = [] } -> Fmt.pf ppf "#%s.%s" dialect name
  | Dyn_attr { dialect; name; params } ->
      Fmt.pf ppf "#%s.%s<%a>" dialect name Fmt.(list ~sep:(any ", ") pp) params

let ty_to_string ty = Fmt.str "%a" pp_ty ty
let to_string a = Fmt.str "%a" pp a

(** The [i1] constant [true]/[false] used by conditional branches. *)
let bool_int b = int ~ty:i1 (if b then 1L else 0L)

let is_float_ty = function Float _ -> true | _ -> false
let is_integer_ty = function Integer _ -> true | _ -> false

(** Dictionary lookup helper used throughout verifier generation. *)
let dict_find key = function
  | Dict kvs -> List.assoc_opt key kvs
  | _ -> None
