(** SSA dominance checking.

    The defining property of SSA (paper §2): every use of a value must be
    dominated by its definition. Within a block that is textual order;
    across blocks it is CFG dominance (computed per region from terminator
    successors, entry = first block); across regions a value defined in an
    enclosing region is visible everywhere inside (MLIR's SSACFG region
    visibility).

    Kept separate from {!Verifier} because the textual format deliberately
    allows forward references while parsing; dominance is checked on demand
    (e.g. [irdl-opt --dominance]). *)

open Irdl_support

(* ------------------------------------------------------------------ *)
(* Per-region dominator trees                                          *)
(* ------------------------------------------------------------------ *)

type region_info = {
  index_of : (int, int) Hashtbl.t;  (** block id -> dense index *)
  idom : int array;  (** immediate dominator indices; entry maps to itself *)
  reachable : bool array;
}

(** Cooper–Harvey–Kennedy iterative dominator computation. *)
let region_info (region : Graph.region) : region_info =
  let blocks = Array.of_list (Graph.Region.blocks region) in
  let n = Array.length blocks in
  let index_of = Hashtbl.create (max 4 n) in
  Array.iteri (fun i (b : Graph.block) -> Hashtbl.replace index_of b.blk_id i) blocks;
  let succs i =
    match Graph.Block.terminator blocks.(i) with
    | None -> []
    | Some term ->
        List.filter_map
          (fun (s : Graph.block) -> Hashtbl.find_opt index_of s.blk_id)
          term.Graph.successors
  in
  (* Predecessor lists. *)
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    List.iter (fun s -> preds.(s) <- i :: preds.(s)) (succs i)
  done;
  (* Reverse postorder from the entry block (index 0). *)
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs (succs i);
      order := i :: !order
    end
  in
  if n > 0 then dfs 0;
  let rpo = Array.of_list !order in
  let rpo_number = Array.make n (-1) in
  Array.iteri (fun k i -> rpo_number.(i) <- k) rpo;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_number.(!a) > rpo_number.(!b) do
        a := idom.(!a)
      done;
      while rpo_number.(!b) > rpo_number.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun i ->
        if i <> 0 then begin
          let new_idom = ref (-1) in
          List.iter
            (fun p ->
              if idom.(p) <> -1 then
                new_idom := if !new_idom = -1 then p else intersect p !new_idom)
            preds.(i);
          if !new_idom <> -1 && idom.(i) <> !new_idom then begin
            idom.(i) <- !new_idom;
            changed := true
          end
        end)
      rpo
  done;
  { index_of; idom; reachable = visited }

(** Does block index [a] dominate block index [b] (within one region)? *)
let dominates_index (info : region_info) a b =
  if (not info.reachable.(a)) || not info.reachable.(b) then
    (* Unreachable code: be permissive, as MLIR is. *)
    true
  else
    let rec up x = x = a || (x <> info.idom.(x) && up info.idom.(x)) in
    up b

(* ------------------------------------------------------------------ *)
(* Use/def positions                                                   *)
(* ------------------------------------------------------------------ *)

(** The chain of (region, block, position-in-block) from the scope root
    down to [op]. Positions are the block-local [op_order] indices, so each
    level costs O(1); the loop is iterative (no stack growth on deep
    nesting). *)
let ancestry (op : Graph.op) : (Graph.region * Graph.block * int) list =
  let rec up acc (op : Graph.op) =
    match op.Graph.op_parent with
    | None -> acc
    | Some blk -> (
        match blk.Graph.blk_parent with
        | None -> acc
        | Some region ->
            let acc = (region, blk, op.Graph.op_order) :: acc in
            (match region.Graph.reg_parent with
            | None -> acc
            | Some parent -> up acc parent))
  in
  up [] op

type t = {
  infos : (int, region_info) Hashtbl.t;  (** region id -> dominator info *)
}

let create () = { infos = Hashtbl.create 16 }

let info_for t (region : Graph.region) =
  match Hashtbl.find_opt t.infos region.Graph.reg_id with
  | Some info -> info
  | None ->
      let info = region_info region in
      Hashtbl.replace t.infos region.Graph.reg_id info;
      info

(** The definition point of a value: its region, block, and position in the
    block — the defining op's [op_order] index, or [min_int] for block
    arguments so they dominate every op of the block (orders can go
    negative under prepending). [None] for forward references and detached
    definitions. *)
let def_point (value : Graph.value) :
    (Graph.region * Graph.block * int) option =
  match value.Graph.v_def with
  | Graph.Forward_ref _ | Graph.Released -> None
  | Graph.Block_arg { block; _ } ->
      Option.map (fun r -> (r, block, min_int)) block.Graph.blk_parent
  | Graph.Op_result { op = def_op; _ } -> (
      match def_op.Graph.op_parent with
      | None -> None
      | Some blk -> (
          match blk.Graph.blk_parent with
          | None -> None
          | Some region -> Some (region, blk, def_op.Graph.op_order)))

(** Does [value] properly dominate the use in [user]?

    Following MLIR: hoist the use to its ancestor at the level of the
    definition's region — if the use is not nested inside that region the
    value is not visible at all; in the same block compare positions;
    across blocks use CFG dominance. *)
let value_dominates t (value : Graph.value) (user : Graph.op) : bool =
  match def_point value with
  | None -> false
  | Some (def_region, def_block, def_pos) -> (
      let use_chain = ancestry user in
      match
        List.find_opt
          (fun ((r : Graph.region), _, _) ->
            r.Graph.reg_id = def_region.Graph.reg_id)
          use_chain
      with
      | None -> false (* the use is not nested inside the def's region *)
      | Some (_, use_block, use_pos) ->
          if def_block.Graph.blk_id = use_block.Graph.blk_id then
            def_pos < use_pos
          else
            let info = info_for t def_region in
            let di = Hashtbl.find_opt info.index_of def_block.Graph.blk_id in
            let ui = Hashtbl.find_opt info.index_of use_block.Graph.blk_id in
            (match (di, ui) with
            | Some di, Some ui -> dominates_index info di ui
            | _ -> false))

(** Check SSA dominance for every use inside [scope]. *)
let verify (scope : Graph.op) : (unit, Diag.t) result =
  let t = create () in
  let result = ref (Ok ()) in
  (try
     Graph.Op.walk scope ~f:(fun user ->
         if user != scope then
           Graph.Op.iteri_operands user ~f:(fun i (v : Graph.value) ->
               if not (value_dominates t v user) then begin
                 result :=
                   Diag.errorf ~loc:user.Graph.op_loc
                     "operand %d of '%s' is not dominated by its definition"
                     i user.Graph.op_name;
                 raise Exit
               end))
   with Exit -> ());
  !result
