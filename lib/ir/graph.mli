(** The mutable SSA IR object graph: values, operations, blocks and regions
    (MLIR's object model, paper §2).

    Operations are extensible: [op_name] is a plain ["dialect.mnemonic"]
    string and all structural fields are generic — the property IRDL relies
    on to register dialects at runtime without code generation.

    The storage layout is MLIR's million-op design: operations and blocks
    are nodes of intrusive doubly-linked lists (O(1) insertion and removal
    anywhere), operands/results/block arguments are arrays (O(1) indexed
    access), and every value heads an intrusive chain of its {!use}s, making
    replace-all-uses and has-uses proportional to the use count rather than
    to any enclosing scope. The intrusive link fields are exposed for
    in-library traversals; mutate the structure only through the module
    operations below, which maintain the invariants checked by
    {!check_invariants}. *)

type value = {
  v_id : int;
  mutable v_ty : Attr.ty;
  mutable v_def : value_def;
  mutable v_first_use : use option;
      (** Head of the intrusive chain of operand slots using this value. *)
}

and value_def =
  | Op_result of { op : op; index : int }
  | Block_arg of { block : block; index : int }
  | Forward_ref of string
      (** A use seen before its definition while parsing; patched to a real
          definition when the defining operation is parsed. *)
  | Released
      (** The defining operation was {!release}d by a streaming consumer:
          the value keeps its identity and type for later uses but no
          longer retains the defining subtree. *)

and use = {
  u_owner : op;  (** The operation owning the operand slot. *)
  u_index : int;  (** The operand index within [u_owner]. *)
  mutable u_value : value;
  mutable u_prev : use option;
  mutable u_next : use option;
}

and op = {
  op_id : int;
  op_name : string;  (** Fully qualified, e.g. ["cmath.mul"]. *)
  mutable op_operands : use array;
  mutable op_results : value array;
  mutable attrs : (string * Attr.t) list;
  mutable regions : region list;
  mutable successors : block list;
  mutable op_parent : block option;
  mutable op_prev : op option;
  mutable op_next : op option;
  mutable op_order : int;
      (** Block-local ordering index, strictly increasing along the block.
          Maintained by the insertion primitives; compare two ops of the
          same block in O(1) via {!Op.is_before_in_block}. *)
  op_loc : Irdl_support.Loc.t;
}

and block = {
  blk_id : int;
  mutable blk_args : value array;
  mutable blk_first : op option;
  mutable blk_last : op option;
  mutable blk_num_ops : int;
  mutable blk_parent : region option;
  mutable blk_prev : block option;
  mutable blk_next : block option;
}

and region = {
  reg_id : int;
  mutable reg_first : block option;
  mutable reg_last : block option;
  mutable reg_num_blocks : int;
  mutable reg_parent : op option;
}

val next_id : unit -> int
(** A fresh id, unique within the process. Atomic: safe to call from
    multiple domains. *)

module Value : sig
  type t = value

  val ty : t -> Attr.ty
  val id : t -> int
  val equal : t -> t -> bool
  val defining_op : t -> op option
  val owner_block : t -> block option

  val forward_ref : string -> t
  (** A placeholder for a use seen before its definition (IR parsing);
      carries [Attr.none] as its type until patched. *)

  val has_uses : t -> bool
  (** O(1): is the use chain non-empty? *)

  val num_uses : t -> int
  val iter_uses : t -> f:(use -> unit) -> unit
  (** Iterate the use chain; [f] may relink or remove the current use. *)

  val uses : t -> (op * int) list
  (** The (owner, operand index) pairs using this value. Order carries no
      semantic meaning. *)

  val replace_all_uses : from:t -> to_:t -> unit
  (** Re-home every use of [from] onto [to_]. O(uses of [from]),
      independent of any enclosing scope. *)

  val pp : Format.formatter -> t -> unit
end

module Op : sig
  type t = op

  val create :
    ?operands:value list -> ?result_tys:Attr.ty list ->
    ?attrs:(string * Attr.t) list -> ?regions:region list ->
    ?successors:block list -> ?loc:Irdl_support.Loc.t -> string -> t
  (** Create an operation; fresh result values are wired to it, operand use
      chains are linked, and the given regions are attached (they must be
      detached). *)

  val create_prebuilt :
    operands:value array -> result_tys:Attr.ty array ->
    attrs:(string * Attr.t) list -> regions:region list ->
    successors:block list -> loc:Irdl_support.Loc.t -> string -> t
  (** {!create} for deserializers. The operand values and result types
      arrive as arrays (read, not retained) and are trusted as given: the
      caller must pass canonical (interned) types and attribute values, as
      the bytecode reader's table pass guarantees. Skips {!create}'s
      defensive re-interning and intermediate lists — the difference is
      measurable when materializing 10^6 ops. *)

  val name : t -> string
  val dialect : t -> string
  val mnemonic : t -> string
  val operand : t -> int -> value
  val result : t -> int -> value
  val num_operands : t -> int
  val num_results : t -> int

  val operands : t -> value list
  (** The operand values as a fresh list (O(n) materialization; prefer
      {!operand}/{!iter_operands} on hot paths). *)

  val results : t -> value list
  val operand_tys : t -> Attr.ty list
  val result_tys : t -> Attr.ty list
  val iter_operands : t -> f:(value -> unit) -> unit
  val iteri_operands : t -> f:(int -> value -> unit) -> unit
  val iter_results : t -> f:(value -> unit) -> unit
  val attr : t -> string -> Attr.t option
  val set_attr : t -> string -> Attr.t -> unit
  val remove_attr : t -> string -> unit

  val set_operand : t -> int -> value -> unit
  (** Replace operand [i], maintaining both values' use chains. *)

  val set_operands : t -> value list -> unit
  (** Replace the whole operand list, maintaining use chains. *)

  val parent_op : t -> t option
  val prev_op : t -> t option
  val next_op : t -> t option

  val is_before_in_block : t -> t -> bool
  (** Does the first op come strictly before the second in their shared
      block? O(1). Raises [Invalid_argument] if they are not block
      siblings. *)

  val walk : t -> f:(t -> unit) -> unit
  (** Pre-order walk over the op and everything nested in its regions.
      Stack-safe: uses an explicit worklist, so region nesting depth is
      bounded only by memory. *)

  val is_ancestor : ancestor:t -> t -> bool
  (** Is the op nested (strictly or not) inside [ancestor]? *)
end

module Block : sig
  type t = block

  val create : ?arg_tys:Attr.ty list -> unit -> t
  val args : t -> value list
  val arg : t -> int -> value
  val num_args : t -> int

  val ops : t -> op list
  (** The block's operations as a fresh list (O(n) materialization; prefer
      {!iter_ops} on hot paths). *)

  val iter_ops : t -> f:(op -> unit) -> unit
  (** Iterate in program order; [f] may detach the current op. *)

  val num_ops : t -> int
  (** O(1). *)

  val first_op : t -> op option
  val last_op : t -> op option
  val add_arg : t -> Attr.ty -> value
  val append : t -> op -> unit
  val prepend : t -> op -> unit
  val insert_before : t -> anchor:op -> op -> unit
  val insert_after : t -> anchor:op -> op -> unit
  val remove : t -> op -> unit
  val terminator : t -> op option
  (** The last operation of the block, if any. O(1). *)
end

module Region : sig
  type t = region

  val create : ?blocks:block list -> unit -> t
  val add_block : t -> block -> unit
  val entry : t -> block option
  val blocks : t -> block list
  val iter_blocks : t -> f:(block -> unit) -> unit
  val num_blocks : t -> int
end

val detach : op -> unit
(** Remove an op from its parent block (no-op when detached). The op keeps
    its operands and use links: use {!erase} when it is going away. *)

val erase : op -> unit
(** Detach [op] and unlink every operand slot of [op] and of all operations
    nested inside it from the use chains. Callers must have rewired (or
    checked) uses of [op]'s own results first. *)

val release : op -> unit
(** Like {!erase}, but for a streaming consumer that is done with [op] and
    wants its memory back while later operations may still name its
    results: every value defined in the subtree (results and block
    arguments at every nesting level) is marked {!Released} — keeping its
    identity and type for later uses and type checks — and stops retaining
    the defining subtree, so the operation tree becomes garbage as soon as
    the caller drops its reference. The workhorse of
    {!Parser.Stream}-driven pipelines. *)

val replace_uses_in : op -> from:value -> to_:value -> unit
(** Replace every use of [from] by [to_] in operations nested inside the
    scope op (inclusive). Walks [from]'s use chain, not the scope. For
    unscoped replacement prefer {!Value.replace_all_uses}. *)

val has_uses_in : op -> value -> bool
(** Does any operation nested in the scope use the value? Walks the value's
    use chain, not the scope. O(1) when unused. *)

val check_invariants : op -> (unit, string) result
(** Verify every structural invariant of the intrusive representation over
    the op's subtree: parent pointers, link and count integrity, strictly
    increasing order indices, result/argument back-pointers, and operand
    slot ↔ use chain agreement. For tests and debugging. *)
