(** The verification driver: structural SSA invariants, registered per-op
    verifiers (generated from IRDL constraints), and registered
    type/attribute parameter verifiers for every type mentioned in the IR. *)

open Irdl_support

val verify_ty : Context.t -> Attr.ty -> (unit, Diag.t) result
(** Check a type (recursively, including dynamic-type parameters) against
    the registered definitions. *)

val verify_attr : Context.t -> Attr.t -> (unit, Diag.t) result

val is_terminator : Context.t -> Graph.op -> bool
(** Registered terminators, or (for unregistered ops) ops with successors. *)

val verify_op : Context.t -> Graph.op -> (unit, Diag.t) result
(** Verify a single operation (not its nested regions' ops). *)

val verify : Context.t -> Graph.op -> (unit, Diag.t) result
(** Verify the op and everything nested inside it; stops at the first
    failure. *)

val verify_all : Context.t -> Graph.op -> Diag.t list
(** Collect every verification failure instead of stopping at the first,
    sorted by location and de-duplicated so multi-error output is stable
    and diffable. *)

val verify_ops : Context.t -> Graph.op list -> (unit, Diag.t) result
(** {!verify} over a list of top-level operations, stopping at the first
    failure — the re-verification hook used by the pass manager between
    passes ([--verify-each]) and after transformation pipelines. *)

val verify_ops_all : Context.t -> Graph.op list -> Diag.t list
(** {!verify_all} over a whole parsed module, in one stable, de-duplicated
    location order. *)

val merge_diags : Diag.t list -> Diag.t list
(** Sort and de-duplicate already-collected diagnostics into the order of
    {!verify_ops_all}: drivers that verify op-by-op (the streaming path)
    concatenate per-op {!verify_all} results and merge once at
    end-of-stream to produce byte-identical multi-error output. *)
