(** The IR context: the registry of dialects and their operation, type and
    attribute definitions.

    Everything here is runtime data — registering an IRDL dialect populates a
    context without any code generation, which is the paper's "instantiate
    all necessary data structures at runtime (without recompilation)".

    {b Concurrency model.} A context lives in two phases. While {e open},
    registration mutates the dialect maps under [reg_lock] (and flushes the
    verification cache); reads are only safe from the registering domain.
    {!freeze} transitions the context — under the same lock, so a racing
    registration either completes before the freeze or is cleanly rejected
    after it — and from then on the dialect maps are immutable: any number
    of domains may look definitions up and verify concurrently. The
    verification cache is sharded per domain (each shard touched only by
    its owning domain), so post-freeze it is append-only and lock-free. *)

open Irdl_support

module SMap = Map.Make (String)

type op_def = {
  od_dialect : string;
  od_name : string;  (** mnemonic, without the dialect prefix *)
  od_summary : string;
  od_is_terminator : bool;
  od_num_regions : int;
  od_verify : Graph.op -> (unit, Diag.t) result;
  od_format : Opfmt.t option;
}

type type_def = {
  td_dialect : string;
  td_name : string;
  td_summary : string;
  td_num_params : int;
  td_verify : Attr.t list -> (unit, Diag.t) result;
}

type attr_def = {
  ad_dialect : string;
  ad_name : string;
  ad_summary : string;
  ad_num_params : int;
  ad_verify : Attr.t list -> (unit, Diag.t) result;
}

type dialect = {
  d_name : string;
  mutable d_ops : op_def SMap.t;
  mutable d_types : type_def SMap.t;
  mutable d_attrs : attr_def SMap.t;
}

(* One domain's slice of the verification cache. Only the owning domain
   ever reads or writes the tables and counters, so no synchronization is
   needed on them; cross-domain visibility of the whole shard record is
   established by the [reg_lock]-protected cons onto [vc_shards]. *)
type vc_shard = {
  sh_domain : int;  (** the owning [Domain.id] *)
  sh_ty : (int, (unit, Diag.t) result) Hashtbl.t;
  sh_attr : (int, (unit, Diag.t) result) Hashtbl.t;
  mutable sh_hits : int;
  mutable sh_misses : int;
}

type t = {
  mutable dialects : dialect SMap.t;
  mutable allow_unregistered : bool;
      (** When true (the default, as in [mlir-opt
          --allow-unregistered-dialect]), operations of unknown dialects
          parse and verify structurally only. *)
  reg_lock : Mutex.t;
      (** Serializes registration, the freeze transition, and shard-list /
          cache-configuration updates. *)
  mutable frozen : bool;
      (** Written only under [reg_lock]; monotone false → true. *)
  mutable vc_shards : vc_shard list;
      (** Per-domain cache shards; consed under [reg_lock]. The unlocked
          read in [shard] is safe: list cells are immutable, a stale read
          at worst misses the newest shard and retries under the lock. *)
  mutable vc_enabled : bool;
  mutable vc_invalidations : int;
}

let create ?(allow_unregistered = true) () =
  {
    dialects = SMap.empty;
    allow_unregistered;
    reg_lock = Mutex.create ();
    frozen = false;
    vc_shards = [];
    vc_enabled = true;
    vc_invalidations = 0;
  }

let locked t f =
  Mutex.lock t.reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reg_lock) f

(* ---------------------------------------------------------------- *)
(* Freeze lifecycle                                                  *)
(* ---------------------------------------------------------------- *)

let freeze t = locked t (fun () -> t.frozen <- true)
let is_frozen t = t.frozen

(* Registration entry points call this under [reg_lock], so a register
   racing a freeze is either fully applied before the flag flips or
   rejected here — the dialect maps and the uniquer are never left
   half-updated. *)
let check_open t ~what ~name =
  if t.frozen then
    Diag.raise_error "cannot register %s '%s': the context is frozen" what
      name

(* ---------------------------------------------------------------- *)
(* Verification cache                                                *)
(* ---------------------------------------------------------------- *)

let rec find_shard did = function
  | [] -> None
  | (s : vc_shard) :: rest ->
      if s.sh_domain = did then Some s else find_shard did rest

(* The calling domain's shard, created on first use. Domain ids are never
   reused within a process, so a shard belongs to exactly one domain for
   the lifetime of the context. *)
let shard t =
  let did = (Domain.self () :> int) in
  match find_shard did t.vc_shards with
  | Some s -> s
  | None ->
      locked t (fun () ->
          match find_shard did t.vc_shards with
          | Some s -> s
          | None ->
              let s =
                {
                  sh_domain = did;
                  sh_ty = Hashtbl.create 256;
                  sh_attr = Hashtbl.create 256;
                  sh_hits = 0;
                  sh_misses = 0;
                }
              in
              t.vc_shards <- s :: t.vc_shards;
              s)

(* Counts only flushes that actually dropped entries, so corpus-sized
   registration bursts into a fresh context don't inflate the number.
   Callers hold [reg_lock]; pre-freeze there are no concurrent readers. *)
let invalidate_locked t =
  let dropped =
    List.exists
      (fun s -> Hashtbl.length s.sh_ty > 0 || Hashtbl.length s.sh_attr > 0)
      t.vc_shards
  in
  List.iter
    (fun s ->
      Hashtbl.reset s.sh_ty;
      Hashtbl.reset s.sh_attr)
    t.vc_shards;
  if dropped then t.vc_invalidations <- t.vc_invalidations + 1

let invalidate_verify_cache t = locked t (fun () -> invalidate_locked t)

let cached_verify_ty t id compute =
  if not t.vc_enabled then compute ()
  else
    let s = shard t in
    match Hashtbl.find_opt s.sh_ty id with
    | Some r ->
        s.sh_hits <- s.sh_hits + 1;
        r
    | None ->
        s.sh_misses <- s.sh_misses + 1;
        let r = compute () in
        Hashtbl.replace s.sh_ty id r;
        r

let cached_verify_attr t id compute =
  if not t.vc_enabled then compute ()
  else
    let s = shard t in
    match Hashtbl.find_opt s.sh_attr id with
    | Some r ->
        s.sh_hits <- s.sh_hits + 1;
        r
    | None ->
        s.sh_misses <- s.sh_misses + 1;
        let r = compute () in
        Hashtbl.replace s.sh_attr id r;
        r

(* [set_verify_cache t false] restores the pre-memoization behaviour (every
   node re-verified on every visit) — the baseline configuration for
   benchmarks and differential tests. Disabling flushes every shard so a
   later re-enable starts from a clean slate. Not safe to race with active
   verification on other domains; flip it before fanning out. *)
let set_verify_cache t enabled =
  locked t (fun () ->
      if (not enabled) && t.vc_enabled then invalidate_locked t;
      t.vc_enabled <- enabled)

let verify_cache_enabled t = t.vc_enabled

type verify_stats = {
  vs_ty_entries : int;
  vs_attr_entries : int;
  vs_hits : int;
  vs_misses : int;
  vs_invalidations : int;
}

let empty_verify_stats =
  {
    vs_ty_entries = 0;
    vs_attr_entries = 0;
    vs_hits = 0;
    vs_misses = 0;
    vs_invalidations = 0;
  }

let shard_stats (s : vc_shard) =
  {
    vs_ty_entries = Hashtbl.length s.sh_ty;
    vs_attr_entries = Hashtbl.length s.sh_attr;
    vs_hits = s.sh_hits;
    vs_misses = s.sh_misses;
    vs_invalidations = 0;
  }

let add_verify_stats a b =
  {
    vs_ty_entries = a.vs_ty_entries + b.vs_ty_entries;
    vs_attr_entries = a.vs_attr_entries + b.vs_attr_entries;
    vs_hits = a.vs_hits + b.vs_hits;
    vs_misses = a.vs_misses + b.vs_misses;
    vs_invalidations = a.vs_invalidations + b.vs_invalidations;
  }

(* Per-shard counters, newest shard first. Meaningful once the domains
   that own the shards are quiescent (e.g. after a pool join). *)
let verify_shard_stats t =
  locked t (fun () -> List.map shard_stats t.vc_shards)

(* Merged across shards: the single-domain numbers are unchanged (one
   shard), and after a parallel run this is the whole-process view. *)
let verify_stats t =
  let merged =
    List.fold_left
      (fun acc s -> add_verify_stats acc (shard_stats s))
      empty_verify_stats (locked t (fun () -> t.vc_shards))
  in
  { merged with vs_invalidations = t.vc_invalidations }

let verify_hit_rate { vs_hits; vs_misses; _ } =
  let total = vs_hits + vs_misses in
  if total = 0 then 0. else float_of_int vs_hits /. float_of_int total

let pp_verify_stats ppf s =
  Fmt.pf ppf
    "%d type + %d attr entries, %d hits / %d misses (%.1f%% hit rate), %d \
     invalidations"
    s.vs_ty_entries s.vs_attr_entries s.vs_hits s.vs_misses
    (100. *. verify_hit_rate s)
    s.vs_invalidations

let qualified ~dialect ~name = dialect ^ "." ^ name

let get_dialect t name = SMap.find_opt name t.dialects

let dialects t = SMap.bindings t.dialects |> List.map snd

let register_dialect_locked t name =
  match SMap.find_opt name t.dialects with
  | Some d -> d
  | None ->
      check_open t ~what:"dialect" ~name;
      let d =
        { d_name = name; d_ops = SMap.empty; d_types = SMap.empty;
          d_attrs = SMap.empty }
      in
      t.dialects <- SMap.add name d t.dialects;
      d

let register_dialect t name = locked t (fun () -> register_dialect_locked t name)

let register_op t (od : op_def) =
  locked t (fun () ->
      check_open t ~what:"operation"
        ~name:(qualified ~dialect:od.od_dialect ~name:od.od_name);
      let d = register_dialect_locked t od.od_dialect in
      if SMap.mem od.od_name d.d_ops then
        Diag.raise_error "operation '%s.%s' is already registered"
          od.od_dialect od.od_name;
      d.d_ops <- SMap.add od.od_name od d.d_ops;
      invalidate_locked t)

let register_type t (td : type_def) =
  locked t (fun () ->
      check_open t ~what:"type"
        ~name:(qualified ~dialect:td.td_dialect ~name:td.td_name);
      let d = register_dialect_locked t td.td_dialect in
      if SMap.mem td.td_name d.d_types then
        Diag.raise_error "type '%s.%s' is already registered" td.td_dialect
          td.td_name;
      d.d_types <- SMap.add td.td_name td d.d_types;
      invalidate_locked t)

let register_attr t (ad : attr_def) =
  locked t (fun () ->
      check_open t ~what:"attribute"
        ~name:(qualified ~dialect:ad.ad_dialect ~name:ad.ad_name);
      let d = register_dialect_locked t ad.ad_dialect in
      if SMap.mem ad.ad_name d.d_attrs then
        Diag.raise_error "attribute '%s.%s' is already registered"
          ad.ad_dialect ad.ad_name;
      d.d_attrs <- SMap.add ad.ad_name ad d.d_attrs;
      invalidate_locked t)

(** Look up the definition for a fully-qualified op name like ["cmath.mul"]. *)
let lookup_op t qualified_name =
  match String.index_opt qualified_name '.' with
  | None -> None
  | Some i ->
      let dialect = String.sub qualified_name 0 i in
      let name =
        String.sub qualified_name (i + 1)
          (String.length qualified_name - i - 1)
      in
      Option.bind (get_dialect t dialect) (fun d -> SMap.find_opt name d.d_ops)

let lookup_type t ~dialect ~name =
  Option.bind (get_dialect t dialect) (fun d -> SMap.find_opt name d.d_types)

let lookup_attr t ~dialect ~name =
  Option.bind (get_dialect t dialect) (fun d -> SMap.find_opt name d.d_attrs)

let op_stats t =
  SMap.fold
    (fun _ d (nops, ntys, nattrs) ->
      ( nops + SMap.cardinal d.d_ops,
        ntys + SMap.cardinal d.d_types,
        nattrs + SMap.cardinal d.d_attrs ))
    t.dialects (0, 0, 0)

type uniquing_stats = { us_types : Intern.stats; us_attrs : Intern.stats }

let pp_uniquing_stats ppf { us_types; us_attrs } =
  Fmt.pf ppf "types: %a@ attrs: %a" Intern.pp_stats us_types Intern.pp_stats
    us_attrs

(* ------------------------------------------------------------------ *)
(* Unified stats surface                                               *)
(* ------------------------------------------------------------------ *)

type stats = {
  st_uniquing : uniquing_stats;
  st_verify : verify_stats;
  st_verify_shards : verify_stats list;
}

let stats ?(scope = `Merged) t =
  let st_uniquing =
    let us_types, us_attrs =
      match scope with
      | `Merged -> Attr.uniquer_stats_merged ()
      | `Per_domain -> Attr.uniquer_stats ()
    in
    { us_types; us_attrs }
  in
  let st_verify_shards =
    match scope with `Merged -> [] | `Per_domain -> verify_shard_stats t
  in
  { st_uniquing; st_verify = verify_stats t; st_verify_shards }
