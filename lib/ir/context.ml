(** The IR context: the registry of dialects and their operation, type and
    attribute definitions.

    Everything here is runtime data — registering an IRDL dialect populates a
    context without any code generation, which is the paper's "instantiate
    all necessary data structures at runtime (without recompilation)". *)

open Irdl_support

module SMap = Map.Make (String)

type op_def = {
  od_dialect : string;
  od_name : string;  (** mnemonic, without the dialect prefix *)
  od_summary : string;
  od_is_terminator : bool;
  od_num_regions : int;
  od_verify : Graph.op -> (unit, Diag.t) result;
  od_format : Opfmt.t option;
}

type type_def = {
  td_dialect : string;
  td_name : string;
  td_summary : string;
  td_num_params : int;
  td_verify : Attr.t list -> (unit, Diag.t) result;
}

type attr_def = {
  ad_dialect : string;
  ad_name : string;
  ad_summary : string;
  ad_num_params : int;
  ad_verify : Attr.t list -> (unit, Diag.t) result;
}

type dialect = {
  d_name : string;
  mutable d_ops : op_def SMap.t;
  mutable d_types : type_def SMap.t;
  mutable d_attrs : attr_def SMap.t;
}

type t = {
  mutable dialects : dialect SMap.t;
  mutable allow_unregistered : bool;
      (** When true (the default, as in [mlir-opt
          --allow-unregistered-dialect]), operations of unknown dialects
          parse and verify structurally only. *)
}

let create ?(allow_unregistered = true) () =
  { dialects = SMap.empty; allow_unregistered }

let qualified ~dialect ~name = dialect ^ "." ^ name

let get_dialect t name = SMap.find_opt name t.dialects

let dialects t = SMap.bindings t.dialects |> List.map snd

let register_dialect t name =
  match SMap.find_opt name t.dialects with
  | Some d -> d
  | None ->
      let d =
        { d_name = name; d_ops = SMap.empty; d_types = SMap.empty;
          d_attrs = SMap.empty }
      in
      t.dialects <- SMap.add name d t.dialects;
      d

let register_op t (od : op_def) =
  let d = register_dialect t od.od_dialect in
  if SMap.mem od.od_name d.d_ops then
    Diag.raise_error "operation '%s.%s' is already registered" od.od_dialect
      od.od_name;
  d.d_ops <- SMap.add od.od_name od d.d_ops

let register_type t (td : type_def) =
  let d = register_dialect t td.td_dialect in
  if SMap.mem td.td_name d.d_types then
    Diag.raise_error "type '%s.%s' is already registered" td.td_dialect
      td.td_name;
  d.d_types <- SMap.add td.td_name td d.d_types

let register_attr t (ad : attr_def) =
  let d = register_dialect t ad.ad_dialect in
  if SMap.mem ad.ad_name d.d_attrs then
    Diag.raise_error "attribute '%s.%s' is already registered" ad.ad_dialect
      ad.ad_name;
  d.d_attrs <- SMap.add ad.ad_name ad d.d_attrs

(** Look up the definition for a fully-qualified op name like ["cmath.mul"]. *)
let lookup_op t qualified_name =
  match String.index_opt qualified_name '.' with
  | None -> None
  | Some i ->
      let dialect = String.sub qualified_name 0 i in
      let name =
        String.sub qualified_name (i + 1)
          (String.length qualified_name - i - 1)
      in
      Option.bind (get_dialect t dialect) (fun d -> SMap.find_opt name d.d_ops)

let lookup_type t ~dialect ~name =
  Option.bind (get_dialect t dialect) (fun d -> SMap.find_opt name d.d_types)

let lookup_attr t ~dialect ~name =
  Option.bind (get_dialect t dialect) (fun d -> SMap.find_opt name d.d_attrs)

let op_stats t =
  SMap.fold
    (fun _ d (nops, ntys, nattrs) ->
      ( nops + SMap.cardinal d.d_ops,
        ntys + SMap.cardinal d.d_types,
        nattrs + SMap.cardinal d.d_attrs ))
    t.dialects (0, 0, 0)

type uniquing_stats = { us_types : Intern.stats; us_attrs : Intern.stats }

(* The uniquer itself is process-wide (attributes are built before any
   context exists, e.g. by dialect corpus helpers), so every context reports
   the same tables — the same shape as MLIR, where builtin attribute storage
   outlives dialect registration in the context. *)
let uniquing_stats (_ : t) =
  let us_types, us_attrs = Attr.uniquer_stats () in
  { us_types; us_attrs }

let pp_uniquing_stats ppf { us_types; us_attrs } =
  Fmt.pf ppf "types: %a@ attrs: %a" Intern.pp_stats us_types Intern.pp_stats
    us_attrs
