(** The IR context: the registry of dialects and their operation, type and
    attribute definitions.

    Everything here is runtime data — registering an IRDL dialect populates a
    context without any code generation, which is the paper's "instantiate
    all necessary data structures at runtime (without recompilation)". *)

open Irdl_support

module SMap = Map.Make (String)

type op_def = {
  od_dialect : string;
  od_name : string;  (** mnemonic, without the dialect prefix *)
  od_summary : string;
  od_is_terminator : bool;
  od_num_regions : int;
  od_verify : Graph.op -> (unit, Diag.t) result;
  od_format : Opfmt.t option;
}

type type_def = {
  td_dialect : string;
  td_name : string;
  td_summary : string;
  td_num_params : int;
  td_verify : Attr.t list -> (unit, Diag.t) result;
}

type attr_def = {
  ad_dialect : string;
  ad_name : string;
  ad_summary : string;
  ad_num_params : int;
  ad_verify : Attr.t list -> (unit, Diag.t) result;
}

type dialect = {
  d_name : string;
  mutable d_ops : op_def SMap.t;
  mutable d_types : type_def SMap.t;
  mutable d_attrs : attr_def SMap.t;
}

type t = {
  mutable dialects : dialect SMap.t;
  mutable allow_unregistered : bool;
      (** When true (the default, as in [mlir-opt
          --allow-unregistered-dialect]), operations of unknown dialects
          parse and verify structurally only. *)
  vc_ty : (int, (unit, Diag.t) result) Hashtbl.t;
      (** Memoized type-verification results, keyed by the dense {!Attr.id_ty}
          of the (hash-consed) type. Valid because types are immutable and
          the result depends only on this context's registrations; cleared
          whenever a definition is registered. *)
  vc_attr : (int, (unit, Diag.t) result) Hashtbl.t;
  mutable vc_enabled : bool;
  mutable vc_hits : int;
  mutable vc_misses : int;
  mutable vc_invalidations : int;
}

let create ?(allow_unregistered = true) () =
  {
    dialects = SMap.empty;
    allow_unregistered;
    vc_ty = Hashtbl.create 256;
    vc_attr = Hashtbl.create 256;
    vc_enabled = true;
    vc_hits = 0;
    vc_misses = 0;
    vc_invalidations = 0;
  }

(* ---------------------------------------------------------------- *)
(* Verification cache                                                *)
(* ---------------------------------------------------------------- *)

(* Counts only flushes that actually dropped entries, so corpus-sized
   registration bursts into a fresh context don't inflate the number. *)
let invalidate_verify_cache t =
  if Hashtbl.length t.vc_ty > 0 || Hashtbl.length t.vc_attr > 0 then begin
    Hashtbl.reset t.vc_ty;
    Hashtbl.reset t.vc_attr;
    t.vc_invalidations <- t.vc_invalidations + 1
  end

let cached_verify_ty t id compute =
  if not t.vc_enabled then compute ()
  else
    match Hashtbl.find_opt t.vc_ty id with
    | Some r ->
        t.vc_hits <- t.vc_hits + 1;
        r
    | None ->
        t.vc_misses <- t.vc_misses + 1;
        let r = compute () in
        Hashtbl.replace t.vc_ty id r;
        r

let cached_verify_attr t id compute =
  if not t.vc_enabled then compute ()
  else
    match Hashtbl.find_opt t.vc_attr id with
    | Some r ->
        t.vc_hits <- t.vc_hits + 1;
        r
    | None ->
        t.vc_misses <- t.vc_misses + 1;
        let r = compute () in
        Hashtbl.replace t.vc_attr id r;
        r

(* [set_verify_cache t false] restores the pre-memoization behaviour (every
   node re-verified on every visit) — the baseline configuration for
   benchmarks and differential tests. Disabling flushes so a later re-enable
   starts from a clean slate. *)
let set_verify_cache t enabled =
  if (not enabled) && t.vc_enabled then invalidate_verify_cache t;
  t.vc_enabled <- enabled

let verify_cache_enabled t = t.vc_enabled

type verify_stats = {
  vs_ty_entries : int;
  vs_attr_entries : int;
  vs_hits : int;
  vs_misses : int;
  vs_invalidations : int;
}

let verify_stats t =
  {
    vs_ty_entries = Hashtbl.length t.vc_ty;
    vs_attr_entries = Hashtbl.length t.vc_attr;
    vs_hits = t.vc_hits;
    vs_misses = t.vc_misses;
    vs_invalidations = t.vc_invalidations;
  }

let verify_hit_rate { vs_hits; vs_misses; _ } =
  let total = vs_hits + vs_misses in
  if total = 0 then 0. else float_of_int vs_hits /. float_of_int total

let pp_verify_stats ppf s =
  Fmt.pf ppf
    "%d type + %d attr entries, %d hits / %d misses (%.1f%% hit rate), %d \
     invalidations"
    s.vs_ty_entries s.vs_attr_entries s.vs_hits s.vs_misses
    (100. *. verify_hit_rate s)
    s.vs_invalidations

let qualified ~dialect ~name = dialect ^ "." ^ name

let get_dialect t name = SMap.find_opt name t.dialects

let dialects t = SMap.bindings t.dialects |> List.map snd

let register_dialect t name =
  match SMap.find_opt name t.dialects with
  | Some d -> d
  | None ->
      let d =
        { d_name = name; d_ops = SMap.empty; d_types = SMap.empty;
          d_attrs = SMap.empty }
      in
      t.dialects <- SMap.add name d t.dialects;
      d

let register_op t (od : op_def) =
  let d = register_dialect t od.od_dialect in
  if SMap.mem od.od_name d.d_ops then
    Diag.raise_error "operation '%s.%s' is already registered" od.od_dialect
      od.od_name;
  d.d_ops <- SMap.add od.od_name od d.d_ops;
  invalidate_verify_cache t

let register_type t (td : type_def) =
  let d = register_dialect t td.td_dialect in
  if SMap.mem td.td_name d.d_types then
    Diag.raise_error "type '%s.%s' is already registered" td.td_dialect
      td.td_name;
  d.d_types <- SMap.add td.td_name td d.d_types;
  invalidate_verify_cache t

let register_attr t (ad : attr_def) =
  let d = register_dialect t ad.ad_dialect in
  if SMap.mem ad.ad_name d.d_attrs then
    Diag.raise_error "attribute '%s.%s' is already registered" ad.ad_dialect
      ad.ad_name;
  d.d_attrs <- SMap.add ad.ad_name ad d.d_attrs;
  invalidate_verify_cache t

(** Look up the definition for a fully-qualified op name like ["cmath.mul"]. *)
let lookup_op t qualified_name =
  match String.index_opt qualified_name '.' with
  | None -> None
  | Some i ->
      let dialect = String.sub qualified_name 0 i in
      let name =
        String.sub qualified_name (i + 1)
          (String.length qualified_name - i - 1)
      in
      Option.bind (get_dialect t dialect) (fun d -> SMap.find_opt name d.d_ops)

let lookup_type t ~dialect ~name =
  Option.bind (get_dialect t dialect) (fun d -> SMap.find_opt name d.d_types)

let lookup_attr t ~dialect ~name =
  Option.bind (get_dialect t dialect) (fun d -> SMap.find_opt name d.d_attrs)

let op_stats t =
  SMap.fold
    (fun _ d (nops, ntys, nattrs) ->
      ( nops + SMap.cardinal d.d_ops,
        ntys + SMap.cardinal d.d_types,
        nattrs + SMap.cardinal d.d_attrs ))
    t.dialects (0, 0, 0)

type uniquing_stats = { us_types : Intern.stats; us_attrs : Intern.stats }

(* The uniquer itself is process-wide (attributes are built before any
   context exists, e.g. by dialect corpus helpers), so every context reports
   the same tables — the same shape as MLIR, where builtin attribute storage
   outlives dialect registration in the context. *)
let uniquing_stats (_ : t) =
  let us_types, us_attrs = Attr.uniquer_stats () in
  { us_types; us_attrs }

let pp_uniquing_stats ppf { us_types; us_attrs } =
  Fmt.pf ppf "types: %a@ attrs: %a" Intern.pp_stats us_types Intern.pp_stats
    us_attrs
