(** Parser for the textual IR syntax produced by {!Printer}.

    Accepts both the generic form ["cmath.mul"(%a, %b) : (t, t) -> t] and,
    for operations registered with a declarative format, the custom pretty
    form [cmath.mul %a, %b : f32]. Forward references to values and blocks
    are allowed within a region (SSA dominance is not a parsing concern). *)

open Irdl_support

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Value_id of string  (** [%x] *)
  | Block_id of string  (** [^bb0] *)
  | Symbol_id of string  (** [@sym] *)
  | Bang_id of string  (** [!cmath.complex] (dotted) *)
  | Hash_id of string  (** [#cmath.attr] (dotted) *)
  | Ident of string  (** bare, possibly dotted: [cmath.mul], [f32] *)
  | Str of string
  | Int_lit of int64
  | Float_lit of float
  | Punct of string  (** one of ( ) { } [ ] < > , : = - and "->" *)
  | Eof

type lexed = { tok : token; tloc : Loc.t }

let keyword_chars c = Sbuf.is_ident_char c || c = '.'

let lex_string buf loc_start =
  let b = Buffer.create 16 in
  let rec go () =
    match Sbuf.next buf with
    | None -> Diag.raise_error ~loc:(Loc.point loc_start) "unterminated string"
    | Some '"' -> Buffer.contents b
    | Some '\\' -> (
        match Sbuf.next buf with
        | Some 'n' -> Buffer.add_char b '\n'; go ()
        | Some 't' -> Buffer.add_char b '\t'; go ()
        | Some '\\' -> Buffer.add_char b '\\'; go ()
        | Some '"' -> Buffer.add_char b '"'; go ()
        | Some c -> Buffer.add_char b c; go ()
        | None ->
            Diag.raise_error ~loc:(Loc.point loc_start) "unterminated string")
    | Some c ->
        Buffer.add_char b c;
        go ()
  in
  go ()

let rec skip_trivia buf =
  Sbuf.skip_while buf Sbuf.is_space;
  (* Line comments: // ... \n *)
  match (Sbuf.peek buf, Sbuf.peek2 buf) with
  | Some '/', Some '/' ->
      Sbuf.skip_while buf (fun c -> c <> '\n');
      skip_trivia buf
  | _ -> ()

let is_number_start buf =
  match Sbuf.peek buf with
  | Some c when Sbuf.is_digit c -> true
  | Some '-' -> (
      match Sbuf.peek2 buf with Some c -> Sbuf.is_digit c | None -> false)
  | _ -> false

let lex_number buf =
  let start = Sbuf.pos buf in
  ignore (Sbuf.accept buf '-');
  (* Hex floats (0x1.9p+1) and hex ints (0xff). *)
  let is_hex =
    Sbuf.peek buf = Some '0'
    && (Sbuf.peek2 buf = Some 'x' || Sbuf.peek2 buf = Some 'X')
  in
  if is_hex then (
    Sbuf.advance buf;
    Sbuf.advance buf;
    Sbuf.skip_while buf (fun c ->
        Sbuf.is_digit c
        || (c >= 'a' && c <= 'f')
        || (c >= 'A' && c <= 'F')
        || c = '.' || c = 'p' || c = 'P' || c = '+' || c = '-'))
  else (
    Sbuf.skip_while buf Sbuf.is_digit;
    if Sbuf.peek buf = Some '.'
       && (match Sbuf.peek2 buf with Some c -> Sbuf.is_digit c | None -> false)
    then (
      Sbuf.advance buf;
      Sbuf.skip_while buf Sbuf.is_digit);
    if Sbuf.peek buf = Some 'e' || Sbuf.peek buf = Some 'E' then (
      Sbuf.advance buf;
      ignore (Sbuf.accept buf '+' || Sbuf.accept buf '-');
      Sbuf.skip_while buf Sbuf.is_digit));
  let text = Sbuf.slice buf start (Sbuf.pos buf) in
  let float_lit () =
    match float_of_string_opt text with
    | Some f -> Float_lit f
    | None ->
        Diag.raise_error
          ~loc:(Loc.span start (Sbuf.pos buf))
          "malformed numeric literal '%s'" text
  in
  if
    String.contains text '.'
    || (not is_hex) && (String.contains text 'e' || String.contains text 'E')
    || (is_hex && (String.contains text 'p' || String.contains text 'P'))
  then float_lit ()
  else
    match Int64.of_string_opt text with
    | Some i -> Int_lit i
    | None -> float_lit ()

let next_token buf : lexed =
  skip_trivia buf;
  let start = Sbuf.pos buf in
  let mk tok = { tok; tloc = Sbuf.loc_from buf start } in
  match Sbuf.peek buf with
  | None -> mk Eof
  | Some '"' ->
      Sbuf.advance buf;
      mk (Str (lex_string buf start))
  | Some '%' ->
      Sbuf.advance buf;
      mk (Value_id (Sbuf.take_while buf Sbuf.is_ident_char))
  | Some '^' ->
      Sbuf.advance buf;
      mk (Block_id (Sbuf.take_while buf Sbuf.is_ident_char))
  | Some '@' ->
      Sbuf.advance buf;
      mk (Symbol_id (Sbuf.take_while buf keyword_chars))
  | Some '!' ->
      Sbuf.advance buf;
      mk (Bang_id (Sbuf.take_while buf keyword_chars))
  | Some '#' ->
      Sbuf.advance buf;
      mk (Hash_id (Sbuf.take_while buf keyword_chars))
  | Some '-' when Sbuf.peek2 buf = Some '>' ->
      Sbuf.advance buf;
      Sbuf.advance buf;
      mk (Punct "->")
  | Some c when Sbuf.is_digit c -> mk (lex_number buf)
  | Some '-' when is_number_start buf -> mk (lex_number buf)
  | Some c when Sbuf.is_ident_start c ->
      mk (Ident (Sbuf.take_while buf keyword_chars))
  | Some (('(' | ')' | '{' | '}' | '[' | ']' | '<' | '>' | ',' | ':' | '=' | '-') as c)
    ->
      Sbuf.advance buf;
      mk (Punct (String.make 1 c))
  | Some c ->
      (* Consume the offending character so every lexer error leaves the
         buffer strictly advanced — fail-soft retry relies on that. *)
      Sbuf.advance buf;
      Diag.raise_error ~loc:(Loc.point start) "unexpected character %C" c

let pp_token ppf = function
  | Value_id s -> Fmt.pf ppf "%%%s" s
  | Block_id s -> Fmt.pf ppf "^%s" s
  | Symbol_id s -> Fmt.pf ppf "@%s" s
  | Bang_id s -> Fmt.pf ppf "!%s" s
  | Hash_id s -> Fmt.pf ppf "#%s" s
  | Ident s -> Fmt.string ppf s
  | Str s -> Fmt.pf ppf "%S" s
  | Int_lit i -> Fmt.pf ppf "%Ld" i
  | Float_lit f -> Fmt.float ppf f
  | Punct s -> Fmt.string ppf s
  | Eof -> Fmt.string ppf "<eof>"

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  ctx : Context.t;
  buf : Sbuf.t;
  engine : Diag.Engine.t option;
      (** when set, lexing and op sequences recover instead of aborting *)
  budget : Limits.budget;
      (** resource accounting; blown budgets raise {!Diag.Fatal_exn}, which
          deliberately escapes the fail-soft recovery below *)
  mutable lookahead : lexed;
  values : (string, Graph.value) Hashtbl.t;
  mutable forwards : (string * Loc.t * Graph.value) list;
      (** pending forward references with the location of their first use *)
}

(* Lex the next token; in fail-soft mode lexer errors go to the engine and
   lexing is retried (every lexer raise leaves the buffer advanced). *)
let next_token_safe p =
  match p.engine with
  | None -> next_token p.buf
  | Some e ->
      let rec go () =
        match Diag.protect (fun () -> next_token p.buf) with
        | Ok t -> t
        | Error d ->
            Diag.Engine.emit e d;
            go ()
      in
      go ()

let create ?(file = "<string>") ?engine ?(limits = Limits.unlimited) ctx src =
  let budget = Limits.budget limits in
  Limits.check_payload budget ~file (String.length src);
  Failpoints.hit "parse";
  let buf = Sbuf.of_string ~file src in
  let p =
    { ctx; buf; engine; budget; lookahead = { tok = Eof; tloc = Loc.unknown };
      values = Hashtbl.create 64; forwards = [] }
  in
  p.lookahead <- next_token_safe p;
  p

let peek p = p.lookahead.tok
let loc p = p.lookahead.tloc

let advance p =
  let l = p.lookahead in
  p.lookahead <- next_token_safe p;
  l

let fail p fmt =
  Diag.raise_error ~loc:(loc p)
    ("%a: " ^^ fmt)
    (fun ppf () -> Fmt.pf ppf "at '%a'" pp_token (peek p))
    ()

let expect_punct p s =
  match peek p with
  | Punct s' when s = s' -> ignore (advance p)
  | _ -> fail p "expected '%s'" s

let accept_punct p s =
  match peek p with
  | Punct s' when s = s' ->
      ignore (advance p);
      true
  | _ -> false

let expect_ident p =
  match peek p with
  | Ident s ->
      ignore (advance p);
      s
  | _ -> fail p "expected identifier"

(* ------------------------------------------------------------------ *)
(* Types and attributes                                                *)
(* ------------------------------------------------------------------ *)

let int_ty_of_ident s : Attr.ty option =
  let parse_width prefix signedness =
    let plen = String.length prefix in
    if
      String.length s > plen
      && String.sub s 0 plen = prefix
      && String.for_all Sbuf.is_digit
           (String.sub s plen (String.length s - plen))
    then
      match int_of_string_opt (String.sub s plen (String.length s - plen)) with
      | Some width when width > 0 -> Some (Attr.integer ~signedness width)
      | _ -> None (* zero or absurdly wide: not a builtin integer type *)
    else None
  in
  match parse_width "si" Attr.Signed with
  | Some ty -> Some ty
  | None -> (
      match parse_width "ui" Attr.Unsigned with
      | Some ty -> Some ty
      | None -> parse_width "i" Attr.Signless)

let builtin_ty_of_ident s : Attr.ty option =
  match s with
  | "f16" -> Some Attr.f16
  | "f32" -> Some Attr.f32
  | "f64" -> Some Attr.f64
  | "bf16" -> Some Attr.bf16
  | "index" -> Some Attr.index
  | "none" -> Some Attr.none
  | _ -> int_ty_of_ident s

let split_dialect_name p s =
  match String.index_opt s '.' with
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> fail p "expected 'dialect.name', got '%s'" s

let rec parse_ty p : Attr.ty =
  match peek p with
  | Ident "tuple" ->
      ignore (advance p);
      expect_punct p "<";
      let tys = parse_ty_list_until p ">" in
      Attr.tuple tys
  | Ident s -> (
      match builtin_ty_of_ident s with
      | Some ty ->
          ignore (advance p);
          ty
      | None -> fail p "unknown builtin type '%s'" s)
  | Bang_id s ->
      ignore (advance p);
      let dialect, name = split_dialect_name p s in
      let params =
        if accept_punct p "<" then parse_attr_list_until p ">" else []
      in
      Attr.dynamic ~dialect ~name params
  | Punct "(" ->
      ignore (advance p);
      let inputs = parse_ty_list_until p ")" in
      expect_punct p "->";
      let outputs =
        if accept_punct p "(" then parse_ty_list_until p ")"
        else [ parse_ty p ]
      in
      Attr.function_ty ~inputs ~outputs
  | _ -> fail p "expected a type"

and parse_ty_list_until p closer =
  if accept_punct p closer then []
  else
    let rec go acc =
      let ty = parse_ty p in
      if accept_punct p "," then go (ty :: acc)
      else (
        expect_punct p closer;
        List.rev (ty :: acc))
    in
    go []

and parse_attr p : Attr.t =
  match peek p with
  | Ident "unit" ->
      ignore (advance p);
      Attr.unit
  | Ident "true" ->
      ignore (advance p);
      Attr.bool true
  | Ident "false" ->
      ignore (advance p);
      Attr.bool false
  | Ident "loc" ->
      ignore (advance p);
      expect_punct p "(";
      let file =
        match advance p with
        | { tok = Str s; _ } -> s
        | _ -> fail p "expected file string in loc"
      in
      expect_punct p ":";
      let line =
        match advance p with
        | { tok = Int_lit i; _ } -> Int64.to_int i
        | _ -> fail p "expected line number in loc"
      in
      expect_punct p ":";
      let col =
        match advance p with
        | { tok = Int_lit i; _ } -> Int64.to_int i
        | _ -> fail p "expected column number in loc"
      in
      expect_punct p ")";
      Attr.location ~file ~line ~col
  | Str s ->
      ignore (advance p);
      Attr.string s
  | Int_lit v ->
      ignore (advance p);
      let ty = if accept_punct p ":" then parse_ty p else Attr.i64 in
      Attr.int ~ty v
  | Float_lit v ->
      ignore (advance p);
      let ty = if accept_punct p ":" then parse_ty p else Attr.f64 in
      Attr.float ~ty v
  | Symbol_id s ->
      ignore (advance p);
      Attr.symbol s
  | Punct "[" ->
      ignore (advance p);
      Attr.array (parse_attr_list_until p "]")
  | Punct "{" ->
      ignore (advance p);
      Attr.dict (parse_attr_dict_entries p)
  | Hash_id "typeid" ->
      ignore (advance p);
      expect_punct p "<";
      let id = expect_ident p in
      expect_punct p ">";
      Attr.type_id id
  | Hash_id "native" ->
      ignore (advance p);
      expect_punct p "<";
      let tag = expect_ident p in
      expect_punct p ",";
      let repr =
        match advance p with
        | { tok = Str s; _ } -> s
        | _ -> fail p "expected string repr in #native"
      in
      expect_punct p ">";
      Attr.opaque ~tag repr
  | Hash_id s when String.contains s '.' ->
      ignore (advance p);
      let dialect, name = split_dialect_name p s in
      let params =
        if accept_punct p "<" then parse_attr_list_until p ">" else []
      in
      Attr.dyn_attr ~dialect ~name params
  | Hash_id dialect ->
      (* Enum attribute: #dialect<enum.Case> *)
      ignore (advance p);
      expect_punct p "<";
      let path = expect_ident p in
      let enum, case = split_dialect_name p path in
      expect_punct p ">";
      Attr.enum ~dialect ~enum case
  | Ident _ | Bang_id _ | Punct "(" -> Attr.typ (parse_ty p)
  | _ -> fail p "expected an attribute"

and parse_attr_list_until p closer =
  if accept_punct p closer then []
  else
    let rec go acc =
      let a = parse_attr p in
      if accept_punct p "," then go (a :: acc)
      else (
        expect_punct p closer;
        List.rev (a :: acc))
    in
    go []

and parse_attr_dict_entries p =
  if accept_punct p "}" then []
  else
    let rec go acc =
      let key = expect_ident p in
      expect_punct p "=";
      let v = parse_attr p in
      if accept_punct p "," then go ((key, v) :: acc)
      else (
        expect_punct p "}";
        List.rev ((key, v) :: acc))
    in
    go []

(* ------------------------------------------------------------------ *)
(* Values and blocks                                                   *)
(* ------------------------------------------------------------------ *)

(** Resolve a value use; creates a forward placeholder on first use before
    definition, remembering where that first use was for error reporting. *)
let use_value p ~loc name =
  match Hashtbl.find_opt p.values name with
  | Some v -> v
  | None ->
      let v = Graph.Value.forward_ref name in
      Hashtbl.replace p.values name v;
      p.forwards <- (name, loc, v) :: p.forwards;
      v

(** Bind a definition for [name]. If a forward placeholder exists it is
    patched in place (keeping use identity) and returned. *)
let define_value p name (fresh : Graph.value) =
  match Hashtbl.find_opt p.values name with
  | Some ({ v_def = Graph.Forward_ref _; _ } as placeholder) ->
      placeholder.v_ty <- fresh.v_ty;
      placeholder.v_def <- fresh.v_def;
      p.forwards <- List.filter (fun (n, _, _) -> n <> name) p.forwards;
      Hashtbl.replace p.values name placeholder;
      placeholder
  | _ ->
      Hashtbl.replace p.values name fresh;
      fresh

let expect_value_id p =
  match peek p with
  | Value_id s ->
      ignore (advance p);
      s
  | _ -> fail p "expected SSA value name"

let parse_value_use p =
  let use_loc = loc p in
  use_value p ~loc:use_loc (expect_value_id p)

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

(* Whether a token can plausibly start an operation (or block label) —
   the sync points of panic-mode recovery. *)
let op_start_token = function
  | Value_id _ | Str _ | Block_id _ -> true
  | Ident s -> String.contains s '.'
  | _ -> false

(* Skip tokens after a failed operation until something that can start the
   next one, a closing [}] of the enclosing region (left unconsumed for the
   region parser), or end of file. Brace/paren nesting is tracked so tokens
   inside the abandoned op's sub-structure are not mistaken for sync
   points. *)
let resync_op p =
  let rec go depth =
    match peek p with
    | Eof -> ()
    | Punct "}" when depth = 0 -> ()
    | t when depth = 0 && op_start_token t -> ()
    | Punct ("{" | "(") ->
        ignore (advance p);
        go (depth + 1)
    | Punct ("}" | ")") ->
        ignore (advance p);
        go (max 0 (depth - 1))
    | _ ->
        ignore (advance p);
        go depth
  in
  go 0

type block_scope = (string, Graph.block) Hashtbl.t

let scope_block (scope : block_scope) name =
  match Hashtbl.find_opt scope name with
  | Some b -> b
  | None ->
      let b = Graph.Block.create () in
      Hashtbl.replace scope name b;
      b

let rec parse_op p ~(scope : block_scope option) : Graph.op =
  let op_loc = loc p in
  (* Budget accounting happens before anything is consumed; a blown budget
     raises [Fatal_exn], which skips op-boundary recovery entirely. *)
  Limits.tick_op p.budget ~loc:op_loc;
  (* Optional result list: %a, %b = ... *)
  let result_names =
    match peek p with
    | Value_id _ ->
        let rec go acc =
          let n = expect_value_id p in
          if accept_punct p "," then go (n :: acc) else List.rev (n :: acc)
        in
        let names = go [] in
        expect_punct p "=";
        names
    | _ -> []
  in
  let op =
    match peek p with
    | Str name ->
        ignore (advance p);
        parse_generic_body p ~scope ~name ~op_loc
    | Ident name when String.contains name '.' -> (
        ignore (advance p);
        match Context.lookup_op p.ctx name with
        | Some ({ od_format = Some f; _ } as od) ->
            parse_custom_body p ~name ~od ~format:f ~op_loc
        | Some _ ->
            fail p
              "operation '%s' has no declarative format; use the generic \
               \"%s\"(...) form"
              name name
        | None -> fail p "unknown operation '%s' in custom form" name)
    | _ -> fail p "expected an operation"
  in
  if result_names <> [] then (
    if List.length result_names <> Graph.Op.num_results op then
      Diag.raise_error ~loc:op_loc
        "'%s' produces %d results but %d names were bound" op.Graph.op_name
        (Graph.Op.num_results op)
        (List.length result_names);
    (* Forward placeholders are patched in place and substituted for the
       fresh result values, keeping the identity earlier uses point at. *)
    List.iteri
      (fun i name ->
        op.Graph.op_results.(i) <-
          define_value p name op.Graph.op_results.(i))
      result_names);
  op

and parse_generic_body p ~scope ~name ~op_loc : Graph.op =
  expect_punct p "(";
  let operands =
    if accept_punct p ")" then []
    else
      let rec go acc =
        let v = parse_value_use p in
        if accept_punct p "," then go (v :: acc)
        else (
          expect_punct p ")";
          List.rev (v :: acc))
      in
      go []
  in
  let successors =
    if accept_punct p "[" then (
      let scope =
        match scope with
        | Some s -> s
        | None ->
            Diag.raise_error ~loc:op_loc
              "successors are only allowed inside a region"
      in
      let rec go acc =
        match advance p with
        | { tok = Block_id b; _ } ->
            let blk = scope_block scope b in
            if accept_punct p "," then go (blk :: acc)
            else (
              expect_punct p "]";
              List.rev (blk :: acc))
        | _ -> fail p "expected block name"
      in
      go [])
    else []
  in
  let regions =
    if accept_punct p "(" then
      let rec go acc =
        let r = parse_region p in
        if accept_punct p "," then go (r :: acc)
        else (
          expect_punct p ")";
          List.rev (r :: acc))
      in
      go []
    else []
  in
  let attrs = if accept_punct p "{" then parse_attr_dict_entries p else [] in
  expect_punct p ":";
  expect_punct p "(";
  let operand_tys = parse_ty_list_until p ")" in
  expect_punct p "->";
  let result_tys =
    if accept_punct p "(" then parse_ty_list_until p ")" else [ parse_ty p ]
  in
  if List.length operand_tys <> List.length operands then
    Diag.raise_error ~loc:op_loc
      "'%s': %d operands but %d operand types" name (List.length operands)
      (List.length operand_tys);
  (* Set (for forwards) or check operand types. *)
  List.iter2
    (fun (v : Graph.value) ty ->
      match v.v_def with
      | Graph.Forward_ref _ -> v.v_ty <- ty
      | _ ->
          if not (Attr.equal_ty v.v_ty ty) then
            Diag.raise_error ~loc:op_loc
              "'%s': operand has type %s but was declared with %s" name
              (Attr.ty_to_string v.v_ty) (Attr.ty_to_string ty))
    operands operand_tys;
  Graph.Op.create ~operands ~result_tys ~attrs ~regions ~successors
    ~loc:op_loc name

and parse_region p : Graph.region =
  let region_start = loc p in
  Limits.enter_region p.budget ~loc:region_start;
  Fun.protect ~finally:(fun () -> Limits.leave_region p.budget) @@ fun () ->
  expect_punct p "{";
  let scope : block_scope = Hashtbl.create 4 in
  let region = Graph.Region.create () in
  (* Implicit entry block: operations before any ^label. In fail-soft mode
     each operation is parsed under its own protection, so one bad op in a
     block does not abandon the ops after it. *)
  let parse_block_body blk =
    let continue = ref true in
    while !continue do
      match peek p with
      | Punct "}" | Block_id _ | Eof -> continue := false
      | _ -> (
          match p.engine with
          | None ->
              let op = parse_op p ~scope:(Some scope) in
              Graph.Block.append blk op
          | Some e ->
              if Diag.Engine.limit_reached e then continue := false
              else begin
                let before = (loc p).start_pos.offset in
                match Diag.protect (fun () -> parse_op p ~scope:(Some scope))
                with
                | Ok op -> Graph.Block.append blk op
                | Error d ->
                    Diag.Engine.emit e d;
                    resync_op p;
                    (* Never loop without consuming. *)
                    if
                      (loc p).start_pos.offset = before
                      && (match peek p with
                         | Eof | Punct "}" | Block_id _ -> false
                         | _ -> true)
                    then ignore (advance p)
              end)
    done
  in
  (match peek p with
  | Punct "}" -> ()
  | Block_id _ -> ()
  | _ ->
      let entry = Graph.Block.create () in
      Graph.Region.add_block region entry;
      parse_block_body entry);
  let rec labeled_blocks () =
    match peek p with
    | Block_id label ->
        ignore (advance p);
        let blk = scope_block scope label in
        if blk.Graph.blk_parent <> None then
          Diag.raise_error ~loc:(loc p) "duplicate block label ^%s" label;
        (* Block arguments: (%a: ty, ...) *)
        if accept_punct p "(" then
          if not (accept_punct p ")") then begin
            let rec args () =
              let name = expect_value_id p in
              expect_punct p ":";
              let ty = parse_ty p in
              let v = Graph.Block.add_arg blk ty in
              (* As with results: a forward placeholder is patched in place
                 and substituted into the argument slot, keeping the
                 identity earlier uses point at. *)
              let bound = define_value p name v in
              if bound != v then
                blk.Graph.blk_args.(Graph.Block.num_args blk - 1) <- bound;
              if accept_punct p "," then args () else expect_punct p ")"
            in
            args ()
          end;
        expect_punct p ":";
        Graph.Region.add_block region blk;
        parse_block_body blk;
        labeled_blocks ()
    | _ -> ()
  in
  labeled_blocks ();
  expect_punct p "}";
  (* Every referenced block must have been defined (attached). *)
  Hashtbl.iter
    (fun name (b : Graph.block) ->
      if b.blk_parent = None then
        Diag.raise_error ~loc:region_start "use of undefined block ^%s" name)
    scope;
  region

and parse_custom_body p ~name ~od:_ ~(format : Opfmt.t) ~op_loc : Graph.op =
  let directives = Hashtbl.create 4 in
  let fixed = Hashtbl.create 4 in
  let group = ref None in
  let attrs = ref [] in
  List.iter
    (fun (item : Opfmt.item) ->
      match item with
      | Opfmt.Lit s -> (
          match (peek p, s) with
          | Punct s', _ when s = s' -> ignore (advance p)
          | Ident s', _ when s = s' -> ignore (advance p)
          | _ -> fail p "expected '%s' in '%s' custom syntax" s name)
      | Opfmt.Operand_ref i -> Hashtbl.replace fixed i (parse_value_use p)
      | Opfmt.Operand_group _start ->
          let rec go acc =
            let v = parse_value_use p in
            if accept_punct p "," then go (v :: acc) else List.rev (v :: acc)
          in
          let vs = match peek p with Value_id _ -> go [] | _ -> [] in
          group := Some vs
      | Opfmt.Attr_ref key ->
          let a = parse_attr p in
          attrs := (key, a) :: !attrs
      | Opfmt.Ty_directive { index; _ } ->
          Hashtbl.replace directives index (parse_ty p))
    format.items;
  let directive i =
    match Hashtbl.find_opt directives i with
    | Some ty -> ty
    | None ->
        Diag.raise_error ~loc:op_loc
          "'%s': format did not bind type directive %d" name i
  in
  let rec eval_ty (e : Opfmt.ty_expr) : Attr.ty =
    match e with
    | Opfmt.Known ty -> ty
    | Opfmt.From_directive i -> directive i
    | Opfmt.Param_of (i, j) -> (
        match directive i with
        | Attr.Dynamic { params; _ } -> (
            match List.nth_opt params j with
            | Some (Attr.Type ty) -> ty
            | _ ->
                Diag.raise_error ~loc:op_loc
                  "'%s': type directive %d has no type parameter %d" name i j)
        | ty ->
            Diag.raise_error ~loc:op_loc
              "'%s': type %s has no parameters" name (Attr.ty_to_string ty))
    | Opfmt.Wrap { dialect; name = tname; params } ->
        Attr.dynamic ~dialect ~name:tname
          (List.map (fun e -> Attr.typ (eval_ty e)) params)
  in
  let num_fixed =
    List.length format.operand_tys - (match !group with Some _ -> 1 | None -> 0)
  in
  let fixed_operands =
    List.init num_fixed (fun i ->
        match Hashtbl.find_opt fixed i with
        | Some v -> v
        | None ->
            Diag.raise_error ~loc:op_loc
              "'%s': format did not bind operand %d" name i)
  in
  let operands = fixed_operands @ Option.value ~default:[] !group in
  (* Reconstruct operand types: set forward placeholders, check the rest. *)
  let operand_ty i =
    if i < num_fixed then List.nth format.operand_tys i
    else List.nth format.operand_tys num_fixed
  in
  List.iteri
    (fun i (v : Graph.value) ->
      let ty = eval_ty (operand_ty i) in
      match v.v_def with
      | Graph.Forward_ref _ -> v.v_ty <- ty
      | _ ->
          if not (Attr.equal_ty v.v_ty ty) then
            Diag.raise_error ~loc:op_loc
              "'%s': operand %d has type %s, expected %s" name i
              (Attr.ty_to_string v.v_ty) (Attr.ty_to_string ty))
    operands;
  let result_tys = List.map eval_ty format.result_tys in
  Graph.Op.create ~operands ~result_tys ~attrs:(List.rev !attrs) ~loc:op_loc
    name

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let finish p =
  match List.rev p.forwards with
  | [] -> ()
  | (name, use_loc, _) :: _ ->
      Diag.raise_error ~loc:use_loc "use of undefined value %%%s" name

(* Collect-mode counterpart of {!finish}: one located error per value that
   was used but never defined. *)
let finish_collect p engine =
  List.iter
    (fun (name, use_loc, _) ->
      Diag.Engine.emit engine
        (Diag.error ~loc:use_loc "use of undefined value %%%s" name))
    (List.rev p.forwards)

(** Parse a sequence of top-level operations.

    Without [engine] the parse is fail-fast: the first error aborts and is
    returned as [Error]. With [engine] the parse is fail-soft: every
    lexing/parsing error (and every use of an undefined value) is emitted
    to the engine, parsing resumes at the next operation boundary, and the
    result is always [Ok] with the operations that parsed. *)
let parse_ops ?file ?engine ?limits ctx src : (Graph.op list, Diag.t) result =
  match engine with
  | None ->
      Diag.protect_any (fun () ->
          let p = create ?file ?limits ctx src in
          let rec go acc =
            match peek p with
            | Eof -> List.rev acc
            | _ -> go (parse_op p ~scope:None :: acc)
          in
          let ops = go [] in
          finish p;
          ops)
  | Some engine ->
      Ok
        (match
           Diag.protect_any (fun () ->
               let p = create ?file ~engine ?limits ctx src in
               let ops = ref [] in
               let continue = ref true in
               while !continue do
                 if Diag.Engine.limit_reached engine then continue := false
                 else
                   match peek p with
                   | Eof -> continue := false
                   | Punct "}" ->
                       (* Fallout of an earlier abandoned op — or a genuinely
                          stray brace. Consume it either way so it cannot
                          poison the ops after it. *)
                       let brace_loc = loc p in
                       ignore (advance p);
                       if not (Diag.Engine.has_errors engine) then
                         Diag.Engine.emit engine
                           (Diag.error ~loc:brace_loc "unexpected '}'")
                   | _ -> (
                       let before = (loc p).start_pos.offset in
                       match
                         Diag.protect (fun () -> parse_op p ~scope:None)
                       with
                       | Ok op -> ops := op :: !ops
                       | Error d ->
                           Diag.Engine.emit engine d;
                           resync_op p;
                           if
                             (loc p).start_pos.offset = before && peek p <> Eof
                           then ignore (advance p))
               done;
               finish_collect p engine;
               List.rev !ops)
         with
        | Ok ops -> ops
        | Error d ->
            Diag.Engine.emit engine d;
            [])

(* ------------------------------------------------------------------ *)
(* Streaming sessions                                                  *)
(* ------------------------------------------------------------------ *)

(* The pull-based counterpart of [parse_ops]: one fully-parsed top-level
   operation at a time, so a driver can parse → verify → print → release
   each op without the whole module ever being resident. The materializing
   entry points above are kept untouched as the differential oracle; the
   per-op machinery (lexer, [parse_op], panic-mode recovery) is shared, so
   the two paths can only diverge in the top-level driver loop. *)
module Stream = struct
  (* A parsed op is only handed out once every forward reference that was
     pending when its parse finished has been resolved: a consumer
     verifying (or printing) the op immediately must see the same patched
     values the materializing parser would have produced by the end of the
     module. Ops are queued FIFO, each with a snapshot of the then-pending
     forward values; the head is yielded as soon as its snapshot has
     drained. Well-formed modules with no top-level forward references
     (the overwhelmingly common case) keep the queue at length one. *)
  type pending = {
    pd_op : Graph.op;
    pd_forwards : Graph.value list;
        (** Forward placeholders unresolved when [pd_op] finished parsing. *)
  }

  type session = {
    sp : t;
    s_engine : Diag.Engine.t option;
    s_queue : pending Queue.t;
    mutable s_eof : bool;  (** No more input will be consumed. *)
    mutable s_finished : bool;  (** End-of-parse bookkeeping done. *)
    mutable s_failed : Diag.t option;
        (** Fail-fast mode only: the error that ended the session. *)
  }

  let create ?file ?engine ?limits ctx src =
    (* Session open can itself fail — payload over budget, injected fault —
       and must fail like everything else in a session: a sticky [Error]
       from [next], not an exception out of [create]. *)
    match
      Diag.protect_any (fun () -> create ?file ?engine ?limits ctx src)
    with
    | Ok sp ->
        {
          sp;
          s_engine = engine;
          s_queue = Queue.create ();
          s_eof = false;
          s_finished = false;
          s_failed = None;
        }
    | Error d ->
        (match engine with
        | Some e -> Diag.Engine.emit e d
        | None -> ());
        {
          sp = create ?file ?engine ctx "";
          s_engine = engine;
          s_queue = Queue.create ();
          s_eof = true;
          s_finished = true;
          s_failed = Some d;
        }

  let resolved (v : Graph.value) =
    match v.Graph.v_def with Graph.Forward_ref _ -> false | _ -> true

  let ready pd = List.for_all resolved pd.pd_forwards

  let head_ready s =
    match Queue.peek_opt s.s_queue with
    | Some pd -> ready pd
    | None -> false

  let snapshot_forwards p = List.map (fun (_, _, v) -> v) p.forwards

  (* Consume one top-level item in fail-soft mode; mirrors the loop body of
     [parse_ops ~engine] exactly (same sync points, same stray-brace
     handling, same never-loop-without-consuming guard) so the diagnostic
     stream is byte-identical. *)
  let step_collect s engine =
    let p = s.sp in
    if Diag.Engine.limit_reached engine then s.s_eof <- true
    else
      match peek p with
      | Eof -> s.s_eof <- true
      | Punct "}" ->
          let brace_loc = loc p in
          ignore (advance p);
          if not (Diag.Engine.has_errors engine) then
            Diag.Engine.emit engine
              (Diag.error ~loc:brace_loc "unexpected '}'")
      | _ -> (
          let before = (loc p).start_pos.offset in
          match Diag.protect (fun () -> parse_op p ~scope:None) with
          | Ok op ->
              Queue.add
                { pd_op = op; pd_forwards = snapshot_forwards p }
                s.s_queue
          | Error d ->
              Diag.Engine.emit engine d;
              resync_op p;
              if (loc p).start_pos.offset = before && peek p <> Eof then
                ignore (advance p))

  (* Consume one top-level op in fail-fast mode; raises on error. *)
  let step_failfast s =
    let p = s.sp in
    match peek p with
    | Eof -> s.s_eof <- true
    | _ ->
        let op = parse_op p ~scope:None in
        Queue.add
          { pd_op = op; pd_forwards = snapshot_forwards p }
          s.s_queue

  (* End-of-input bookkeeping, once: the undefined-value check of [finish]
     (fail-fast) or [finish_collect] (fail-soft). After it runs, any still-
     pending ops are handed out as they are — exactly the values the
     materializing parser would have returned. *)
  let finish_stream s =
    if not s.s_finished then begin
      s.s_finished <- true;
      match s.s_engine with
      | Some engine -> finish_collect s.sp engine
      | None -> finish s.sp
    end

  let next s : (Graph.op option, Diag.t) result =
    match s.s_failed with
    | Some d -> Error d
    | None ->
        Diag.protect_any (fun () ->
            let rec go () =
              if head_ready s then Some (Queue.pop s.s_queue).pd_op
              else if s.s_eof then begin
                finish_stream s;
                match Queue.take_opt s.s_queue with
                | Some pd -> Some pd.pd_op
                | None -> None
              end
              else begin
                (match s.s_engine with
                | Some engine -> step_collect s engine
                | None -> step_failfast s);
                go ()
              end
            in
            go ())
        |> function
        | Ok _ as ok -> ok
        | Error d ->
            (* Fail-fast sessions die on their first error; fail-soft
               sessions only land here on an internal error escaping
               [protect], which the collect loop would also have aborted
               on. *)
            (match s.s_engine with
            | Some engine -> Diag.Engine.emit engine d
            | None -> ());
            s.s_eof <- true;
            s.s_failed <- Some d;
            Error d

  let release = Graph.release
end

(** Parse exactly one operation. *)
let parse_op_string ?file ctx src =
  Diag.protect_any (fun () ->
      let p = create ?file ctx src in
      let op = parse_op p ~scope:None in
      (match peek p with
      | Eof -> ()
      | _ -> fail p "trailing input after operation");
      finish p;
      op)

(** Parse a standalone type, e.g. ["!cmath.complex<f32>"]. *)
let parse_type_string ?file ctx src =
  Diag.protect_any (fun () ->
      let p = create ?file ctx src in
      let ty = parse_ty p in
      (match peek p with Eof -> () | _ -> fail p "trailing input after type");
      ty)

(** Parse a standalone attribute. *)
let parse_attr_string ?file ctx src =
  Diag.protect_any (fun () ->
      let p = create ?file ctx src in
      let a = parse_attr p in
      (match peek p with
      | Eof -> ()
      | _ -> fail p "trailing input after attribute");
      a)
