(** The IR context: the registry of dialects and their operation, type and
    attribute definitions. Registering an IRDL dialect populates a context
    at runtime, without code generation (paper §3). *)

open Irdl_support

module SMap : Map.S with type key = string

type op_def = {
  od_dialect : string;
  od_name : string;  (** mnemonic, without the dialect prefix *)
  od_summary : string;
  od_is_terminator : bool;
  od_num_regions : int;
  od_verify : Graph.op -> (unit, Diag.t) result;
      (** The verifier generated from the IRDL constraints. *)
  od_format : Opfmt.t option;
      (** Compiled declarative format, when the op defines one. *)
}

type type_def = {
  td_dialect : string;
  td_name : string;
  td_summary : string;
  td_num_params : int;
  td_verify : Attr.t list -> (unit, Diag.t) result;
}

type attr_def = {
  ad_dialect : string;
  ad_name : string;
  ad_summary : string;
  ad_num_params : int;
  ad_verify : Attr.t list -> (unit, Diag.t) result;
}

type dialect = {
  d_name : string;
  mutable d_ops : op_def SMap.t;
  mutable d_types : type_def SMap.t;
  mutable d_attrs : attr_def SMap.t;
}

type t = {
  mutable dialects : dialect SMap.t;
  mutable allow_unregistered : bool;
      (** When true (the default), operations/types of unknown dialects
          parse and verify structurally only. *)
  vc_ty : (int, (unit, Diag.t) result) Hashtbl.t;
      (** Memoized type-verification results keyed by dense {!Attr.id_ty}
          ids; managed by {!cached_verify_ty} and flushed on registration. *)
  vc_attr : (int, (unit, Diag.t) result) Hashtbl.t;
  mutable vc_enabled : bool;
  mutable vc_hits : int;
  mutable vc_misses : int;
  mutable vc_invalidations : int;
}

val create : ?allow_unregistered:bool -> unit -> t
val qualified : dialect:string -> name:string -> string

val get_dialect : t -> string -> dialect option
val dialects : t -> dialect list
val register_dialect : t -> string -> dialect
(** Get or create the named dialect. *)

val register_op : t -> op_def -> unit
(** @raise Irdl_support.Diag.Error_exn on duplicate registration. *)

val register_type : t -> type_def -> unit
val register_attr : t -> attr_def -> unit

val lookup_op : t -> string -> op_def option
(** Look up a fully-qualified name like ["cmath.mul"]. *)

val lookup_type : t -> dialect:string -> name:string -> type_def option
val lookup_attr : t -> dialect:string -> name:string -> attr_def option

val op_stats : t -> int * int * int
(** Total registered (operations, types, attributes). *)

(** {2 Verification cache}

    Hash-consing (PR 1) gives every type and attribute a dense integer id;
    the context memoizes the result of verifying each one against the
    registered definitions, so repeat visits are O(1). Registering any
    operation, type or attribute definition flushes the cache (the new
    definition may change what verifies). The cache must also be flushed
    manually — {!invalidate_verify_cache} — if verification behaviour is
    changed behind the context's back: flipping [allow_unregistered], or
    registering new native hooks after verification started. *)

val cached_verify_ty :
  t -> int -> (unit -> (unit, Diag.t) result) -> (unit, Diag.t) result
(** [cached_verify_ty t id compute] returns the memoized verification
    result for the type with dense id [id], running (and recording)
    [compute] on the first visit. *)

val cached_verify_attr :
  t -> int -> (unit -> (unit, Diag.t) result) -> (unit, Diag.t) result

val invalidate_verify_cache : t -> unit
(** Drop all memoized verification results. Called automatically by the
    [register_*] functions; the invalidation counter increments only when
    entries were actually dropped. *)

val set_verify_cache : t -> bool -> unit
(** Enable/disable memoization (enabled by default). Disabling flushes the
    cache and restores the pre-memoization behaviour — every node
    re-verified on every visit — which is the baseline configuration for
    benchmarks and differential tests. *)

val verify_cache_enabled : t -> bool

type verify_stats = {
  vs_ty_entries : int;
  vs_attr_entries : int;
  vs_hits : int;
  vs_misses : int;
  vs_invalidations : int;
}

val verify_stats : t -> verify_stats
val verify_hit_rate : verify_stats -> float
val pp_verify_stats : Format.formatter -> verify_stats -> unit

type uniquing_stats = { us_types : Intern.stats; us_attrs : Intern.stats }

val uniquing_stats : t -> uniquing_stats
(** Counters of the attribute/type uniquer ({!Intern}) reachable from this
    context: canonical node counts and hit rates. The uniquer is
    process-wide, so all contexts report the same tables. *)

val pp_uniquing_stats : Format.formatter -> uniquing_stats -> unit
