(** The IR context: the registry of dialects and their operation, type and
    attribute definitions. Registering an IRDL dialect populates a context
    at runtime, without code generation (paper §3).

    {b Concurrency model.} A context lives in two phases. While {e open},
    the [register_*] functions mutate the dialect maps under an internal
    registration lock; reads are only safe from the registering domain.
    {!freeze} transitions the context under the same lock — a registration
    racing a freeze either completes before it or is cleanly rejected after
    it — and from then on the dialect maps are immutable, so any number of
    domains may run lookups and verification concurrently. The verification
    cache is sharded per domain (each shard only ever touched by its owning
    domain) and post-freeze is append-only and lock-free. *)

open Irdl_support

module SMap : Map.S with type key = string

type op_def = {
  od_dialect : string;
  od_name : string;  (** mnemonic, without the dialect prefix *)
  od_summary : string;
  od_is_terminator : bool;
  od_num_regions : int;
  od_verify : Graph.op -> (unit, Diag.t) result;
      (** The verifier generated from the IRDL constraints. *)
  od_format : Opfmt.t option;
      (** Compiled declarative format, when the op defines one. *)
}

type type_def = {
  td_dialect : string;
  td_name : string;
  td_summary : string;
  td_num_params : int;
  td_verify : Attr.t list -> (unit, Diag.t) result;
}

type attr_def = {
  ad_dialect : string;
  ad_name : string;
  ad_summary : string;
  ad_num_params : int;
  ad_verify : Attr.t list -> (unit, Diag.t) result;
}

type dialect = {
  d_name : string;
  mutable d_ops : op_def SMap.t;
  mutable d_types : type_def SMap.t;
  mutable d_attrs : attr_def SMap.t;
}

type t = private {
  mutable dialects : dialect SMap.t;
  mutable allow_unregistered : bool;
      (** When true (the default), operations/types of unknown dialects
          parse and verify structurally only. *)
  reg_lock : Mutex.t;
  mutable frozen : bool;
  mutable vc_shards : vc_shard list;
  mutable vc_enabled : bool;
  mutable vc_invalidations : int;
}

and vc_shard
(** One domain's slice of the verification cache; see {!verify_stats}. *)

val create : ?allow_unregistered:bool -> unit -> t
val qualified : dialect:string -> name:string -> string

val get_dialect : t -> string -> dialect option
val dialects : t -> dialect list

val register_dialect : t -> string -> dialect
(** Get or create the named dialect.
    @raise Irdl_support.Diag.Error_exn when the context is frozen and the
    dialect does not already exist. *)

val register_op : t -> op_def -> unit
(** @raise Irdl_support.Diag.Error_exn on duplicate registration or a
    frozen context. *)

val register_type : t -> type_def -> unit
val register_attr : t -> attr_def -> unit

(** {2 Freeze lifecycle}

    Freezing declares registration finished and unlocks concurrent use:
    after {!freeze}, the dialect maps never change, so lookups and
    verification are safe from any domain without synchronization. The
    transition itself is serialized with registration — a [register_*]
    call racing a freeze on another domain either completes before the
    flag flips or raises the frozen-context error; it can never leave a
    definition half-registered. Freezing is idempotent and one-way. *)

val freeze : t -> unit
val is_frozen : t -> bool

val lookup_op : t -> string -> op_def option
(** Look up a fully-qualified name like ["cmath.mul"]. *)

val lookup_type : t -> dialect:string -> name:string -> type_def option
val lookup_attr : t -> dialect:string -> name:string -> attr_def option

val op_stats : t -> int * int * int
(** Total registered (operations, types, attributes). *)

(** {2 Verification cache}

    Hash-consing (PR 1) gives every type and attribute a dense integer id;
    the context memoizes the result of verifying each one against the
    registered definitions, so repeat visits are O(1). Ids are domain-local
    (the uniquer is sharded per domain), so the memo table is sharded the
    same way: each domain reads and writes only its own shard, which keeps
    id-keyed lookups sound and post-freeze operation lock-free.

    Registering any operation, type or attribute definition flushes all
    shards (the new definition may change what verifies). The cache must
    also be flushed manually — {!invalidate_verify_cache} — if verification
    behaviour is changed behind the context's back: flipping
    [allow_unregistered], or registering new native hooks after
    verification started. *)

val cached_verify_ty :
  t -> int -> (unit -> (unit, Diag.t) result) -> (unit, Diag.t) result
(** [cached_verify_ty t id compute] returns the memoized verification
    result for the type with dense id [id] in the calling domain's shard,
    running (and recording) [compute] on the first visit. [id] must come
    from {!Attr.id_ty} evaluated on the calling domain. *)

val cached_verify_attr :
  t -> int -> (unit -> (unit, Diag.t) result) -> (unit, Diag.t) result

val invalidate_verify_cache : t -> unit
(** Drop all memoized verification results, in every shard. Called
    automatically by the [register_*] functions; the invalidation counter
    increments only when entries were actually dropped. Not safe to race
    with active verification on other domains. *)

val set_verify_cache : t -> bool -> unit
(** Enable/disable memoization (enabled by default). Disabling flushes
    every shard and restores the pre-memoization behaviour — every node
    re-verified on every visit — which is the baseline configuration for
    benchmarks and differential tests. Flip it before fanning out to
    multiple domains, not during. *)

val verify_cache_enabled : t -> bool

type verify_stats = {
  vs_ty_entries : int;
  vs_attr_entries : int;
  vs_hits : int;
  vs_misses : int;
  vs_invalidations : int;
}

type uniquing_stats = { us_types : Intern.stats; us_attrs : Intern.stats }

type stats = {
  st_uniquing : uniquing_stats;
      (** Attribute/type uniquer ({!Intern}) counters: canonical node
          counts and hit rates. [`Merged]: summed over every domain's
          shard (the whole-process view after a parallel run).
          [`Per_domain]: the calling domain's shard only. The uniquer is
          domain-local and shared by all contexts, so every context
          reports the same numbers. *)
  st_verify : verify_stats;
      (** Verification-cache counters summed over every domain's shard,
          plus the context-global invalidation counter, at either scope
          (invalidations cannot be attributed to a shard). After a
          parallel run, read them once the worker domains have joined. *)
  st_verify_shards : verify_stats list;
      (** [`Per_domain]: per-shard verify-cache counters, newest shard
          first, each with [vs_invalidations = 0]; [st_verify] is their
          sum plus the global invalidation counter. [`Merged]: empty. *)
}

val stats : ?scope:[ `Merged | `Per_domain ] -> t -> stats
(** The context's counters in one record. [?scope] (default [`Merged])
    selects whole-process merged numbers or the per-domain breakdown; see
    the field docs for what each scope changes. *)

val verify_hit_rate : verify_stats -> float
val pp_verify_stats : Format.formatter -> verify_stats -> unit
val pp_uniquing_stats : Format.formatter -> uniquing_stats -> unit
