(** Types and attributes of the IR.

    Following xDSL (and unlike MLIR's C++ split), types and attributes live
    in one recursive value domain: a type can appear as an attribute
    ({!Type}) and dynamic (IRDL-defined) types carry attribute parameters.
    This makes IRDL parameter constraints uniform: they all constrain
    attributes.

    {b Uniquing discipline.} Every value built through the smart
    constructors below is hash-consed ({!Intern}) into a domain-local
    uniquer shard, as MLIR's [MLIRContext] uniques its types and
    attributes: within one domain structurally equal nodes are physically
    equal and {!equal}/{!equal_ty} decide them with a pointer comparison
    (values crossing domains fall back to the structural walk). The
    variant constructors stay exposed for pattern matching only — never
    build attribute values from them directly; route hand-assembled
    values through {!intern} / {!intern_ty}. *)

type signedness = Signless | Signed | Unsigned
type float_kind = BF16 | F16 | F32 | F64

type ty =
  | Integer of { width : int; signedness : signedness }
  | Float of float_kind
  | Index
  | None_ty
  | Function of { inputs : ty list; outputs : ty list }
  | Tuple of ty list
  | Dynamic of { dialect : string; name : string; params : t list }
      (** A type defined at runtime by an IRDL [Type] definition. *)

and t =
  | Unit
  | Bool of bool
  | Int of { value : int64; ty : ty }
  | Float_attr of { value : float; ty : ty }
  | String of string
  | Array of t list
  | Dict of (string * t) list
      (** Canonicalized to sorted key order at construction time. *)
  | Type of ty  (** A type used as an attribute. *)
  | Enum of { dialect : string; enum : string; case : string }
  | Symbol of string
  | Location of { file : string; line : int; col : int }
  | Type_id of string
  | Opaque of { tag : string; repr : string }
      (** Escape hatch for IRDL-C++ [TypeOrAttrParam] parameters: [tag]
          names the registered native parameter kind, [repr] its printed
          form. *)
  | Dyn_attr of { dialect : string; name : string; params : t list }
      (** An attribute defined at runtime by an IRDL [Attribute]
          definition. *)

(** {2 Type constructors} *)

val i1 : ty
val i8 : ty
val i16 : ty
val i32 : ty
val i64 : ty
val f16 : ty
val f32 : ty
val f64 : ty
val bf16 : ty
val index : ty
val none : ty

val integer : ?signedness:signedness -> int -> ty
(** An integer type of the given positive bit width. *)

val dynamic : dialect:string -> name:string -> t list -> ty
val function_ty : inputs:ty list -> outputs:ty list -> ty
val tuple : ty list -> ty

(** {2 Attribute constructors} *)

val unit : t
val bool : bool -> t
val int : ?ty:ty -> int64 -> t
val int_of : ty:ty -> int -> t
val float : ?ty:ty -> float -> t
val string : string -> t
val array : t list -> t

val dict : (string * t) list -> t
(** Entries are canonicalized to sorted key order, making dictionary
    equality key-order-insensitive.
    @raise Irdl_support.Diag.Error_exn on duplicate keys. *)

val typ : ty -> t
val enum : dialect:string -> enum:string -> string -> t
val symbol : string -> t
val location : file:string -> line:int -> col:int -> t
val type_id : string -> t
val opaque : tag:string -> string -> t
val dyn_attr : dialect:string -> name:string -> t list -> t

val bool_int : bool -> t
(** The [i1] constant 1/0 used by conditional branches. *)

(** {2 Uniquing} *)

val intern : t -> t
(** The canonical node for a (possibly hand-assembled) attribute:
    structurally equal inputs return the same physical node, recursively
    canonicalizing sub-terms (dictionary key order included). Idempotent,
    and the identity on nodes produced by the constructors above.
    @raise Irdl_support.Diag.Error_exn on dictionaries with duplicate
    keys. *)

val intern_ty : ty -> ty

val id : t -> int
(** The unique integer id of the canonical node (interning first if
    needed): [id a = id b] iff [equal a b], evaluated on one domain. Ids
    are dense, stable for the process lifetime and domain-local — the
    uniquer tables are per-domain shards, so ids must never be compared
    across domains (per-domain caches key on them instead). Attribute and
    type ids are separate spaces. *)

val id_ty : ty -> int

val uniquer_stats : unit -> Intern.stats * Intern.stats
(** The calling domain's uniquer shard counters as [(types, attributes)];
    reported via [Context.stats ~scope:`Per_domain]. Identical to the
    historical process-wide numbers in single-domain programs. *)

val uniquer_stats_merged : unit -> Intern.stats * Intern.stats
(** Counters summed over every domain's shard. [nodes] counts canonical
    copies per shard, not globally distinct structures. *)

(** {2 Equality, hashing and printing} *)

val equal_ty : ty -> ty -> bool

val equal : t -> t -> bool
(** Pointer comparison when both operands are interned (the invariant for
    every value built through this module), falling back to a structural
    walk — with float payloads comparing bitwise so equality is reflexive —
    for values that bypassed the uniquer. *)

val hash : t -> int
(** Structural; agrees with {!equal} ([equal a b] implies
    [hash a = hash b]). *)

val hash_ty : ty -> int

val pp_signedness : Format.formatter -> signedness -> unit
val pp_float_kind : Format.formatter -> float_kind -> unit
val pp_ty : Format.formatter -> ty -> unit
val pp : Format.formatter -> t -> unit
val ty_to_string : ty -> string
val to_string : t -> string

(** {2 Classifiers and helpers} *)

val is_float_ty : ty -> bool
val is_integer_ty : ty -> bool
val dict_find : string -> t -> t option
