(** Hash-consing uniquer tables.

    MLIR's [MLIRContext] uniques every type and attribute it creates so that
    equality is pointer comparison and re-construction of an existing node is
    a table hit. This module provides the same mechanism for our runtime:
    a {!Make}-generated table maps every constructed value to a canonical
    physical node carrying a unique integer id.

    The table is strong (nodes live as long as the process, like MLIR's
    context-owned storage): the attribute population of a compilation session
    is small and heavily shared, so reclaiming unused nodes is not worth the
    weak-pointer bookkeeping.

    Instantiated by {!Attr} for the type and attribute domains; the counters
    back the uniquing statistics reported through {!Context}. *)

type stats = {
  nodes : int;  (** distinct canonical nodes currently in the table *)
  hits : int;  (** intern calls answered by an existing node *)
  misses : int;  (** intern calls that created a new node *)
}

let hit_rate { hits; misses; _ } =
  let total = hits + misses in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

let pp_stats ppf s =
  Fmt.pf ppf "%d nodes, %d hits / %d misses (%.1f%% hit rate)" s.nodes s.hits
    s.misses
    (100. *. hit_rate s)

(** The structural identity of the interned domain. [equal]/[hash] must
    agree ([equal a b] implies [hash a = hash b]); both may assume nothing
    about prior interning of sub-terms. *)
module type HASHED = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module type S = sig
  type node

  type table

  val create : ?size:int -> unit -> table

  val intern : table -> node -> node
  (** [intern tbl x] returns the canonical node structurally equal to [x],
      inserting [x] itself (with a fresh id) on first encounter. Idempotent:
      [intern tbl (intern tbl x) == intern tbl x]. *)

  val find : table -> node -> node option
  (** Like {!intern} but never inserts; counts a hit when found. *)

  val id : table -> node -> int
  (** The unique id of [x]'s canonical node, interning it if needed. Ids are
      dense, starting at 0, and never reused within a table. *)

  val mem : table -> node -> bool

  val stats : table -> stats

  val clear : table -> unit
  (** Drop all nodes and reset counters. Canonical nodes handed out earlier
      keep working as plain values but lose their identity guarantee; only
      meant for tests and benchmarks. *)
end

module Make (H : HASHED) : S with type node = H.t = struct
  type node = H.t

  module Tbl = Hashtbl.Make (H)

  type table = {
    tbl : (node * int) Tbl.t;
    mutable next_id : int;
    mutable hits : int;
    mutable misses : int;
  }

  let create ?(size = 1024) () =
    { tbl = Tbl.create size; next_id = 0; hits = 0; misses = 0 }

  let intern t x =
    match Tbl.find_opt t.tbl x with
    | Some (canonical, _) ->
        t.hits <- t.hits + 1;
        canonical
    | None ->
        t.misses <- t.misses + 1;
        Tbl.add t.tbl x (x, t.next_id);
        t.next_id <- t.next_id + 1;
        x

  let find t x =
    match Tbl.find_opt t.tbl x with
    | Some (canonical, _) ->
        t.hits <- t.hits + 1;
        Some canonical
    | None -> None

  let id t x =
    match Tbl.find_opt t.tbl x with
    | Some (_, id) ->
        t.hits <- t.hits + 1;
        id
    | None ->
        let id = t.next_id in
        t.misses <- t.misses + 1;
        Tbl.add t.tbl x (x, id);
        t.next_id <- t.next_id + 1;
        id

  let mem t x = Tbl.mem t.tbl x

  let stats t = { nodes = Tbl.length t.tbl; hits = t.hits; misses = t.misses }

  let clear t =
    Tbl.reset t.tbl;
    t.next_id <- 0;
    t.hits <- 0;
    t.misses <- 0
end
