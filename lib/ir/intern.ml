(** Hash-consing uniquer tables.

    MLIR's [MLIRContext] uniques every type and attribute it creates so that
    equality is pointer comparison and re-construction of an existing node is
    a table hit. This module provides the same mechanism for our runtime:
    a {!Make}-generated table maps every constructed value to a canonical
    physical node carrying a unique integer id.

    The table is strong (nodes live as long as the process, like MLIR's
    context-owned storage): the attribute population of a compilation session
    is small and heavily shared, so reclaiming unused nodes is not worth the
    weak-pointer bookkeeping.

    Instantiated by {!Attr} for the type and attribute domains; the counters
    back the uniquing statistics reported through {!Context}. *)

type stats = {
  nodes : int;  (** distinct canonical nodes currently in the table *)
  hits : int;  (** intern calls answered by an existing node *)
  misses : int;  (** intern calls that created a new node *)
}

let hit_rate { hits; misses; _ } =
  let total = hits + misses in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

(* Pointwise sum, for merging the per-domain shard tables' counters. Note
   that summed [nodes] counts canonical copies per shard, not distinct
   structures: two domains that each interned [i32] contribute two nodes. *)
let add_stats a b =
  { nodes = a.nodes + b.nodes; hits = a.hits + b.hits;
    misses = a.misses + b.misses }

let pp_stats ppf s =
  Fmt.pf ppf "%d nodes, %d hits / %d misses (%.1f%% hit rate)" s.nodes s.hits
    s.misses
    (100. *. hit_rate s)

(** The structural identity of the interned domain. [equal]/[hash] must
    agree ([equal a b] implies [hash a = hash b]); both may assume nothing
    about prior interning of sub-terms. *)
module type HASHED = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module type S = sig
  type node

  type table

  val create : ?size:int -> unit -> table

  val intern : table -> node -> node
  (** [intern tbl x] returns the canonical node structurally equal to [x],
      inserting [x] itself (with a fresh id) on first encounter. Idempotent:
      [intern tbl (intern tbl x) == intern tbl x]. *)

  val find : table -> node -> node option
  (** Like {!intern} but never inserts; counts a hit when found. *)

  val id : table -> node -> int
  (** The unique id of [x]'s canonical node, interning it if needed. Ids are
      dense, starting at 0, and never reused within a table. When [x] is
      itself canonical (the common case: every constructor interns), the
      lookup is O(1) via a physical-identity side table rather than a
      structural re-hash of the whole node. *)

  val mem : table -> node -> bool

  val stats : table -> stats

  val clear : table -> unit
  (** Drop all nodes and reset counters. Canonical nodes handed out earlier
      keep working as plain values but lose their identity guarantee; only
      meant for tests and benchmarks. *)
end

module Make (H : HASHED) : S with type node = H.t = struct
  type node = H.t

  module Tbl = Hashtbl.Make (H)

  (* Physical-identity side table over canonical nodes. The depth-limited
     [Hashtbl.hash] only picks a bucket (O(1) even on huge trees); [(==)]
     decides membership, which is sound because only canonical nodes are
     ever inserted and each one is inserted exactly once. This is what makes
     [id] O(1) on an already-interned node instead of a full structural
     re-hash — the property the verification cache's "dense key" relies on. *)
  module Phys = Hashtbl.Make (struct
    type t = H.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

  type table = {
    tbl : (node * int) Tbl.t;
    phys : int Phys.t;  (** canonical node ↦ id *)
    mutable next_id : int;
    mutable hits : int;
    mutable misses : int;
  }

  let create ?(size = 1024) () =
    {
      tbl = Tbl.create size;
      phys = Phys.create size;
      next_id = 0;
      hits = 0;
      misses = 0;
    }

  let insert t x =
    let id = t.next_id in
    t.misses <- t.misses + 1;
    Tbl.add t.tbl x (x, id);
    Phys.add t.phys x id;
    t.next_id <- t.next_id + 1;
    id

  let intern t x =
    if Phys.mem t.phys x then begin
      t.hits <- t.hits + 1;
      x
    end
    else
      match Tbl.find_opt t.tbl x with
      | Some (canonical, _) ->
          t.hits <- t.hits + 1;
          canonical
      | None ->
          ignore (insert t x);
          x

  let find t x =
    if Phys.mem t.phys x then begin
      t.hits <- t.hits + 1;
      Some x
    end
    else
      match Tbl.find_opt t.tbl x with
      | Some (canonical, _) ->
          t.hits <- t.hits + 1;
          Some canonical
      | None -> None

  let id t x =
    match Phys.find_opt t.phys x with
    | Some id ->
        t.hits <- t.hits + 1;
        id
    | None -> (
        match Tbl.find_opt t.tbl x with
        | Some (_, id) ->
            t.hits <- t.hits + 1;
            id
        | None -> insert t x)

  let mem t x = Phys.mem t.phys x || Tbl.mem t.tbl x

  let stats t = { nodes = Tbl.length t.tbl; hits = t.hits; misses = t.misses }

  let clear t =
    Tbl.reset t.tbl;
    Phys.reset t.phys;
    t.next_id <- 0;
    t.hits <- 0;
    t.misses <- 0
end
