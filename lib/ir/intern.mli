(** Hash-consing uniquer tables (MLIR's [MLIRContext] uniquing).

    A table maps every constructed value of a domain to a canonical physical
    node carrying a unique integer id, so that structural equality of interned
    values collapses to pointer/id comparison. Instantiated by {!Attr} for
    the type and attribute domains. *)

type stats = {
  nodes : int;  (** distinct canonical nodes currently in the table *)
  hits : int;  (** intern calls answered by an existing node *)
  misses : int;  (** intern calls that created a new node *)
}

val hit_rate : stats -> float
(** Fraction of lookups answered from the table, in [0..1]; 0 when empty. *)

val add_stats : stats -> stats -> stats
(** Pointwise sum, for merging per-domain shard counters. Summed [nodes]
    counts canonical copies per shard, not distinct structures. *)

val pp_stats : Format.formatter -> stats -> unit

(** The structural identity of the interned domain. [equal]/[hash] must
    agree ([equal a b] implies [hash a = hash b]). *)
module type HASHED = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module type S = sig
  type node
  type table

  val create : ?size:int -> unit -> table

  val intern : table -> node -> node
  (** [intern tbl x] returns the canonical node structurally equal to [x],
      inserting [x] itself (with a fresh id) on first encounter. Idempotent:
      [intern tbl (intern tbl x) == intern tbl x]. *)

  val find : table -> node -> node option
  (** Like {!intern} but never inserts; counts a hit when found. *)

  val id : table -> node -> int
  (** The unique id of [x]'s canonical node, interning it if needed. Ids are
      dense, starting at 0, and never reused within a table. *)

  val mem : table -> node -> bool
  val stats : table -> stats

  val clear : table -> unit
  (** Drop all nodes and reset counters (tests and benchmarks only). *)
end

module Make (H : HASHED) : S with type node = H.t
