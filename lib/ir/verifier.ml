(** The verification driver.

    Verifies an operation tree against a {!Context.t}: structural SSA
    invariants (dominance-free structural checks, terminator placement,
    successor sanity), registered per-op verifiers (generated from IRDL
    constraints), and registered type/attribute parameter verifiers for every
    type mentioned in the IR. *)

open Irdl_support

let ( let* ) = Result.bind

(* Types and attributes are hash-consed with dense ids (PR 1), so the
   context memoizes each composite node's verification result: repeat
   visits of a type already seen — the common case in any realistic module
   — are a single hashtable probe. Leaf nodes verify vacuously and are not
   worth an entry. *)
let rec verify_ty ctx (ty : Attr.ty) =
  match ty with
  | Attr.Dynamic _ | Attr.Function _ | Attr.Tuple _ ->
      Context.cached_verify_ty ctx (Attr.id_ty ty) (fun () ->
          verify_ty_uncached ctx ty)
  | _ -> Ok ()

and verify_ty_uncached ctx (ty : Attr.ty) =
  match ty with
  | Attr.Dynamic { dialect; name; params } -> (
      let* () = verify_params ctx params in
      match Context.lookup_type ctx ~dialect ~name with
      | Some td ->
          if List.length params <> td.td_num_params then
            Diag.errorf "type '!%s.%s' expects %d parameters but has %d"
              dialect name td.td_num_params (List.length params)
          else td.td_verify params
      | None ->
          if ctx.allow_unregistered then Ok ()
          else Diag.errorf "unregistered type '!%s.%s'" dialect name)
  | Attr.Function { inputs; outputs } ->
      let* () = verify_tys ctx inputs in
      verify_tys ctx outputs
  | Attr.Tuple tys -> verify_tys ctx tys
  | _ -> Ok ()

and verify_tys ctx = function
  | [] -> Ok ()
  | ty :: rest ->
      let* () = verify_ty ctx ty in
      verify_tys ctx rest

and verify_attr ctx (a : Attr.t) =
  match a with
  | Attr.Type ty -> verify_ty ctx ty
  | Attr.Int { ty; _ } | Attr.Float_attr { ty; _ } -> verify_ty ctx ty
  | Attr.Array _ | Attr.Dict _ | Attr.Dyn_attr _ ->
      Context.cached_verify_attr ctx (Attr.id a) (fun () ->
          verify_attr_uncached ctx a)
  | _ -> Ok ()

and verify_attr_uncached ctx (a : Attr.t) =
  match a with
  | Attr.Array xs -> verify_params ctx xs
  | Attr.Dict kvs -> verify_params ctx (List.map snd kvs)
  | Attr.Dyn_attr { dialect; name; params } -> (
      let* () = verify_params ctx params in
      match Context.lookup_attr ctx ~dialect ~name with
      | Some ad ->
          if List.length params <> ad.ad_num_params then
            Diag.errorf "attribute '#%s.%s' expects %d parameters but has %d"
              dialect name ad.ad_num_params (List.length params)
          else ad.ad_verify params
      | None ->
          if ctx.allow_unregistered then Ok ()
          else Diag.errorf "unregistered attribute '#%s.%s'" dialect name)
  | _ -> Ok ()

and verify_params ctx = function
  | [] -> Ok ()
  | a :: rest ->
      let* () = verify_attr ctx a in
      verify_params ctx rest

let is_terminator ctx (op : Graph.op) =
  match Context.lookup_op ctx op.op_name with
  | Some od -> od.od_is_terminator
  | None -> op.successors <> []

(* Structural checks that hold for every operation, registered or not. *)
let verify_structure ctx (op : Graph.op) =
  let* () =
    (* Successors may only appear on block terminators. *)
    match op.op_parent with
    | Some blk when op.successors <> [] -> (
        match Graph.Block.terminator blk with
        | Some last when last.op_id = op.op_id -> Ok ()
        | _ ->
            Diag.errorf ~loc:op.op_loc
              "'%s' has successors but is not the last operation in its block"
              op.op_name)
    | _ -> Ok ()
  in
  let* () =
    if is_terminator ctx op then
      match op.op_parent with
      | None -> Ok () (* top-level ops are not inside a block *)
      | Some blk -> (
          match Graph.Block.terminator blk with
          | Some last when last.op_id = op.op_id -> Ok ()
          | _ ->
              Diag.errorf ~loc:op.op_loc
                "terminator '%s' must be the last operation in its block"
                op.op_name)
    else Ok ()
  in
  (* Successor block must belong to the same region as the op's block. *)
  match op.op_parent with
  | None when op.successors <> [] ->
      Diag.errorf ~loc:op.op_loc "'%s': successors on a detached operation"
        op.op_name
  | None -> Ok ()
  | Some blk ->
      if
        List.for_all
          (fun (s : Graph.block) ->
            match (s.blk_parent, blk.blk_parent) with
            | Some a, Some b -> a == b
            | None, None -> true
            | _ -> false)
          op.successors
      then Ok ()
      else
        Diag.errorf ~loc:op.op_loc
          "'%s': successor blocks must be in the same region" op.op_name

(* Attach the op's location to diagnostics that lack one (e.g. from
   type/attribute parameter verifiers, which do not know where the type was
   used). *)
let with_op_loc (op : Graph.op) = function
  | Ok () -> Ok ()
  | Error (d : Diag.t) when Loc.is_unknown d.loc ->
      Error { d with loc = op.op_loc }
  | Error _ as e -> e

let verify_op ctx (op : Graph.op) =
  with_op_loc op
  @@
  let* () = verify_structure ctx op in
  let* () = verify_tys ctx (Graph.Op.operand_tys op) in
  let* () = verify_tys ctx (Graph.Op.result_tys op) in
  let* () = verify_params ctx (List.map snd op.attrs) in
  match Context.lookup_op ctx op.op_name with
  | Some od -> od.od_verify op
  | None ->
      if ctx.allow_unregistered then Ok ()
      else Diag.errorf ~loc:op.op_loc "unregistered operation '%s'" op.op_name

(** Verify [op] and everything nested inside it. Stops at the first failure. *)
let verify ctx (op : Graph.op) =
  let result = ref (Ok ()) in
  (try
     Graph.Op.walk op ~f:(fun o ->
         match verify_op ctx o with
         | Ok () -> ()
         | Error d ->
             result := Error d;
             raise Exit)
   with Exit -> ());
  !result

(* Stable order for multi-error output: by location (file, then start and
   end offsets), ties broken structurally so sorting is deterministic
   whatever order the walk produced. Used with [List.sort_uniq], it also
   drops repeated identical diagnostics from shared sub-terms. *)
let diag_order (a : Diag.t) (b : Diag.t) =
  let pos (d : Diag.t) =
    (d.loc.start_pos.file, d.loc.start_pos.offset, d.loc.end_pos.offset)
  in
  match compare (pos a) (pos b) with 0 -> compare a b | c -> c

(** Collect every verification failure instead of stopping at the first.
    The result is sorted by location and de-duplicated, so multi-error
    output is diffable. *)
let verify_all ctx (op : Graph.op) =
  Failpoints.hit "verify";
  let diags = ref [] in
  Graph.Op.walk op ~f:(fun o ->
      match verify_op ctx o with
      | Ok () -> ()
      | Error d -> diags := d :: !diags);
  List.sort_uniq diag_order !diags

(** Verify a whole parsed module (a list of top-level operations), stopping
    at the first failure. This is the hook the pass manager's
    [--verify-each] instrumentation runs between passes. *)
let verify_ops ctx ops =
  List.fold_left
    (fun acc op -> match acc with Error _ -> acc | Ok () -> verify ctx op)
    (Ok ()) ops

(** Put already-collected diagnostics into the stable, de-duplicated
    {!diag_order}. A streaming driver concatenates per-op {!verify_all}
    results and merges once at end-of-stream; by construction the result
    is exactly what {!verify_ops_all} would have produced. *)
let merge_diags diags = List.sort_uniq diag_order diags

(** Collect every verification failure across a whole parsed module, in the
    same stable, de-duplicated order as {!verify_all}. *)
let verify_ops_all ctx ops = merge_diags (List.concat_map (verify_all ctx) ops)
