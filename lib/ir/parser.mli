(** Parser for the textual IR syntax produced by {!Printer}: the generic
    form and, for operations registered with a declarative format, the
    custom pretty form. Forward references to values and blocks are allowed
    within a region. *)

open Irdl_support

val builtin_ty_of_ident : string -> Attr.ty option
(** Classify a bare identifier as a builtin type ([f32], [si8], [index],
    ...); shared with the IRDL resolver. *)

val int_ty_of_ident : string -> Attr.ty option

val parse_ops :
  ?file:string -> Context.t -> string -> (Graph.op list, Diag.t) result
(** Parse a sequence of top-level operations. Stops at the first error. *)

val parse_ops_collect :
  ?file:string -> engine:Diag.Engine.t -> Context.t -> string -> Graph.op list
(** Fail-soft variant of {!parse_ops}: every lexing/parsing error (and every
    undefined value) is emitted to [engine] and parsing resumes at the next
    operation boundary. Returns the operations that parsed. *)

val parse_op_string :
  ?file:string -> Context.t -> string -> (Graph.op, Diag.t) result
(** Parse exactly one operation. *)

val parse_type_string :
  ?file:string -> Context.t -> string -> (Attr.ty, Diag.t) result
(** Parse a standalone type, e.g. ["!cmath.complex<f32>"]. *)

val parse_attr_string :
  ?file:string -> Context.t -> string -> (Attr.t, Diag.t) result
(** Parse a standalone attribute. *)
