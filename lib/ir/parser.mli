(** Parser for the textual IR syntax produced by {!Printer}: the generic
    form and, for operations registered with a declarative format, the
    custom pretty form. Forward references to values and blocks are allowed
    within a region. *)

open Irdl_support

val builtin_ty_of_ident : string -> Attr.ty option
(** Classify a bare identifier as a builtin type ([f32], [si8], [index],
    ...); shared with the IRDL resolver. *)

val int_ty_of_ident : string -> Attr.ty option

val parse_ops :
  ?file:string ->
  ?engine:Diag.Engine.t ->
  ?limits:Limits.t ->
  Context.t ->
  string ->
  (Graph.op list, Diag.t) result
(** Parse a sequence of top-level operations.

    Without [engine] the parse is fail-fast: it stops at the first error,
    returned as [Error]. With [engine] it is fail-soft: every
    lexing/parsing error (and every undefined value) is emitted to the
    engine, parsing resumes at the next operation boundary, and the result
    is always [Ok] with the operations that parsed.

    [limits] (default {!Limits.unlimited}) caps payload size, op count,
    region depth and wall time. A blown budget aborts the whole parse even
    in fail-soft mode — the budget diagnostic (code
    [resource_exhausted]/[deadline_exceeded]) is emitted/returned and in
    fail-soft mode the result is [Ok []]. *)

(** Pull-based parse sessions: one fully-parsed top-level operation at a
    time (regions materialized per-op), so a driver can parse → verify →
    print → {!release} each op without the whole module ever being
    resident. Shares the per-op machinery with {!parse_ops}; the sequence
    of yielded ops and emitted diagnostics is identical. *)
module Stream : sig
  type session
  (** An in-progress streaming parse over one source buffer. *)

  val create :
    ?file:string ->
    ?engine:Diag.Engine.t ->
    ?limits:Limits.t ->
    Context.t ->
    string ->
    session
  (** Open a session. As with {!parse_ops}, [engine] selects fail-soft
      collect-and-recover parsing; without it the first error ends the
      session. [limits] caps the session's resources; a blown budget never
      raises out of [create] or {!next} — it ends the session with a
      sticky [Error] whose diagnostic carries the budget code. *)

  val next : session -> (Graph.op option, Diag.t) result
  (** The next top-level operation, [Ok None] at end of input, or — in
      fail-fast mode — the error that ended the session (returned again on
      every subsequent call). An op is yielded only once every top-level
      forward reference pending at its parse has been resolved, so its
      operands are exactly the values the materializing parser would have
      produced; modules with no top-level forward references are parsed
      strictly one op ahead. *)

  val release : Graph.op -> unit
  (** Alias of {!Graph.release}: call when done with a yielded op to let
      the GC reclaim its subtree while later ops may still name its
      results. *)
end

val parse_op_string :
  ?file:string -> Context.t -> string -> (Graph.op, Diag.t) result
(** Parse exactly one operation. *)

val parse_type_string :
  ?file:string -> Context.t -> string -> (Attr.ty, Diag.t) result
(** Parse a standalone type, e.g. ["!cmath.complex<f32>"]. *)

val parse_attr_string :
  ?file:string -> Context.t -> string -> (Attr.t, Diag.t) result
(** Parse a standalone attribute. *)
