(** Textual IR output.

    Prints the MLIR-like generic form for every operation:

    {v
    %0 = "cmath.norm"(%p) : (!cmath.complex<f32>) -> f32
    v}

    and, when the operation's definition carries a compiled declarative
    format (paper §4.7), the custom pretty form:

    {v
    %0 = cmath.norm %p : f32
    v}

    Printing never fails: if a custom format cannot be applied to a
    (possibly invalid) operation, the printer falls back to the generic
    form for that operation. *)

type t = {
  ctx : Context.t;
  value_names : (int, string) Hashtbl.t;
  block_names : (int, string) Hashtbl.t;
  mutable next_value : int;
  mutable next_block : int;
  generic : bool;  (** Force generic form even when a format is registered. *)
}

let create ?(generic = false) ctx =
  {
    ctx;
    value_names = Hashtbl.create 64;
    block_names = Hashtbl.create 16;
    next_value = 0;
    next_block = 0;
    generic;
  }

let value_name t (v : Graph.value) =
  match Hashtbl.find_opt t.value_names v.v_id with
  | Some n -> n
  | None ->
      let n = Printf.sprintf "%%%d" t.next_value in
      t.next_value <- t.next_value + 1;
      Hashtbl.add t.value_names v.v_id n;
      n

let block_name t (b : Graph.block) =
  match Hashtbl.find_opt t.block_names b.blk_id with
  | Some n -> n
  | None ->
      let n = Printf.sprintf "^bb%d" t.next_block in
      t.next_block <- t.next_block + 1;
      Hashtbl.add t.block_names b.blk_id n;
      n

exception Fallback
(* Raised when a custom format cannot be applied; caught to emit generic
   form instead. *)

let project_ty (op : Graph.op) (proj : Opfmt.ty_proj) : Attr.ty =
  let base =
    match proj.source with
    | `Operand i ->
        if i < Graph.Op.num_operands op then
          Graph.Value.ty (Graph.Op.operand op i)
        else raise Fallback
    | `Result i ->
        if i < Graph.Op.num_results op then
          Graph.Value.ty (Graph.Op.result op i)
        else raise Fallback
  in
  List.fold_left
    (fun ty idx ->
      match (ty : Attr.ty) with
      | Attr.Dynamic { params; _ } -> (
          match List.nth_opt params idx with
          | Some (Attr.Type ty') -> ty'
          | _ -> raise Fallback)
      | _ -> raise Fallback)
    base proj.path

(* Indentation is capped so that pathologically deep region nesting (the
   50k-level regression test) produces O(n) output instead of O(n²). *)
let max_indent = 64
let indent_string n = String.make (min n max_indent) ' '

let pp_custom t ppf (op : Graph.op) (f : Opfmt.t) =
  Fmt.pf ppf "%s" op.op_name;
  List.iter
    (fun (item : Opfmt.item) ->
      match item with
      | Opfmt.Lit s ->
          (* Punctuation hugs the previous token; words get a space. *)
          if s = "," || s = ">" || s = ")" then Fmt.string ppf s
          else Fmt.pf ppf " %s" s
      | Opfmt.Operand_ref i ->
          if i < Graph.Op.num_operands op then
            Fmt.pf ppf " %s" (value_name t (Graph.Op.operand op i))
          else raise Fallback
      | Opfmt.Operand_group start ->
          let rec drop n l =
            if n = 0 then l
            else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
          in
          let group = drop start (Graph.Op.operands op) in
          Fmt.pf ppf " %s"
            (String.concat ", " (List.map (value_name t) group))
      | Opfmt.Attr_ref name -> (
          match Graph.Op.attr op name with
          | Some a -> Fmt.pf ppf " %a" Attr.pp a
          | None -> raise Fallback)
      | Opfmt.Ty_directive { proj; _ } ->
          Fmt.pf ppf " %a" Attr.pp_ty (project_ty op proj))
    f.items

(* The printer drives an explicit job stack instead of recursing through
   regions, so nesting depth is bounded only by memory. Value and block
   names are assigned strictly at emission time, which keeps the numbering
   (and thus the output) identical to the former recursive printer. *)
type job =
  | J_text of string
  | J_op of int * Graph.op  (** print one op at the given indent level *)
  | J_region of int * Graph.region
  | J_block_label of int * bool * Graph.block

let pp_op ?(level = 0) t ppf (op : Graph.op) =
  let stack = ref [ J_op (level, op) ] in
  let push_in_order jobs = List.iter (fun j -> stack := j :: !stack) (List.rev jobs) in
  let emit_generic level (op : Graph.op) =
    Fmt.pf ppf "%S(%s)" op.op_name
      (String.concat ", " (List.map (value_name t) (Graph.Op.operands op)));
    (match op.successors with
    | [] -> ()
    | succs ->
        Fmt.pf ppf "[%s]"
          (String.concat ", " (List.map (block_name t) succs)));
    (* Everything after the regions contains no value names, so it can be
       rendered now and deferred as plain text. *)
    let tail =
      let attrs_part =
        match op.attrs with
        | [] -> ""
        | attrs ->
            Fmt.str " {%s}"
              (String.concat ", "
                 (List.map
                    (fun (k, v) -> Fmt.str "%s = %a" k Attr.pp v)
                    attrs))
      in
      attrs_part
      ^ Fmt.str " : (%s) -> (%s)"
          (String.concat ", "
             (List.map Attr.ty_to_string (Graph.Op.operand_tys op)))
          (String.concat ", "
             (List.map Attr.ty_to_string (Graph.Op.result_tys op)))
    in
    match op.regions with
    | [] -> Fmt.string ppf tail
    | regions ->
        Fmt.string ppf " (";
        let jobs = ref [] in
        List.iteri
          (fun i r ->
            if i > 0 then jobs := J_text ", " :: !jobs;
            jobs := J_region (level, r) :: !jobs)
          regions;
        jobs := J_text (")" ^ tail) :: !jobs;
        push_in_order (List.rev !jobs)
  in
  let emit_op level (op : Graph.op) =
    (* Results are named before the body so that custom formats see them. *)
    let result_names = List.map (value_name t) (Graph.Op.results op) in
    (match result_names with
    | [] -> ()
    | names -> Fmt.pf ppf "%s = " (String.concat ", " names));
    let custom_format =
      if t.generic then None
      else
        match Context.lookup_op t.ctx op.op_name with
        | Some { od_format = Some f; _ } -> Some f
        | _ -> None
    in
    match custom_format with
    | Some f -> (
        (* Render to a buffer first: on Fallback, nothing partial is
           emitted. Custom formats never nest regions, so this stays flat. *)
        let buf = Buffer.create 64 in
        let bppf = Format.formatter_of_buffer buf in
        try
          pp_custom t bppf op f;
          Format.pp_print_flush bppf ();
          Fmt.string ppf (Buffer.contents buf)
        with Fallback -> emit_generic level op)
    | None -> emit_generic level op
  in
  let emit_region level (r : Graph.region) =
    let inner = level + 2 in
    Fmt.string ppf "{";
    let nblocks = Graph.Region.num_blocks r in
    let jobs = ref [] in
    let i = ref 0 in
    Graph.Region.iter_blocks r ~f:(fun b ->
        (* The entry block's label is implicit when it has no arguments and
           is the only block, matching MLIR's convention. *)
        let needs_label =
          !i > 0 || Graph.Block.num_args b > 0 || nblocks > 1
        in
        incr i;
        jobs := J_block_label (level, needs_label, b) :: !jobs;
        Graph.Block.iter_ops b ~f:(fun o ->
            jobs :=
              J_op (inner, o) :: J_text ("\n" ^ indent_string inner) :: !jobs));
    jobs := J_text ("\n" ^ indent_string level ^ "}") :: !jobs;
    push_in_order (List.rev !jobs)
  in
  let emit_block_label level needs_label (b : Graph.block) =
    if needs_label then begin
      Fmt.pf ppf "\n%s%s" (indent_string level) (block_name t b);
      (match Graph.Block.args b with
      | [] -> ()
      | args ->
          Fmt.pf ppf "(%s)"
            (String.concat ", "
               (List.map
                  (fun v ->
                    Fmt.str "%s: %a" (value_name t v) Attr.pp_ty
                      (Graph.Value.ty v))
                  args)));
      Fmt.string ppf ":"
    end
  in
  let rec run () =
    match !stack with
    | [] -> ()
    | job :: rest ->
        stack := rest;
        (match job with
        | J_text s -> Fmt.string ppf s
        | J_op (lvl, o) -> emit_op lvl o
        | J_region (lvl, r) -> emit_region lvl r
        | J_block_label (lvl, needs, b) -> emit_block_label lvl needs b);
        run ()
  in
  run ()

let op_to_string ?generic ctx op =
  let t = create ?generic ctx in
  Fmt.str "%a" (pp_op t) op

(** Print a list of top-level operations, one per line. *)
let ops_to_string ?generic ctx ops =
  let t = create ?generic ctx in
  String.concat "\n" (List.map (fun o -> Fmt.str "%a" (pp_op t) o) ops)
