(** A convenience API for constructing IR programmatically.

    The builder tracks an insertion point (a block) and appends created
    operations to it, mirroring MLIR's [OpBuilder]. It is deliberately thin:
    all structure lives in {!Graph}. *)

type t = { mutable insertion_block : Graph.block option }

let create () = { insertion_block = None }

let at_end_of block = { insertion_block = Some block }

let set_insertion_point t block = t.insertion_block <- Some block

let insertion_block t = t.insertion_block

(** Create an operation and insert it at the current insertion point (if
    any). Returns the operation; use {!Graph.Op.result} for its values. *)
let build t ?operands ?result_tys ?attrs ?regions ?successors ?loc name =
  let op =
    Graph.Op.create ?operands ?result_tys ?attrs ?regions ?successors ?loc name
  in
  (match t.insertion_block with
  | Some blk -> Graph.Block.append blk op
  | None -> ());
  op

(** [build1] is {!build} for the common single-result case; returns the
    result value. *)
let build1 t ?operands ~result_ty ?attrs ?regions ?successors ?loc name =
  let op =
    build t ?operands ~result_tys:[ result_ty ] ?attrs ?regions ?successors
      ?loc name
  in
  Graph.Op.result op 0

(** Create a single-block region, run [f] with a builder positioned in that
    block, and return the region. *)
let region_with_block ?(arg_tys = []) f =
  let block = Graph.Block.create ~arg_tys () in
  let region = Graph.Region.create ~blocks:[ block ] () in
  let b = at_end_of block in
  f b (Graph.Block.args block);
  region

(** A module-like top-level container op holding one region with one block. *)
let module_op ?(name = "builtin.module") ?loc f =
  let region = region_with_block (fun b _ -> f b) in
  Graph.Op.create ~regions:[ region ] ?loc name

let func_op ?loc ~name ~inputs ~outputs f =
  let region = region_with_block ~arg_tys:inputs (fun b args -> f b args) in
  Graph.Op.create ~regions:[ region ]
    ~attrs:
      [
        ("sym_name", Attr.string name);
        ("function_type", Attr.typ (Attr.function_ty ~inputs ~outputs));
      ]
    ?loc "func.func"
