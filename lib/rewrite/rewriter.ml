(** The IR mutation API handed to rewrite patterns.

    All mutations are scoped to a root operation (typically a function or
    module). Use-def updates ride the values' intrusive use chains —
    replacement and dead-detection touch only actual users, never the whole
    scope. The rewriter records whether anything changed so the greedy
    driver can detect fixpoints. *)

open Irdl_ir

type t = {
  scope : Graph.op;  (** root of the IR being rewritten *)
  ctx : Context.t;
  mutable changed : bool;
  mutable num_replacements : int;
}

let create ctx scope = { scope; ctx; changed = false; num_replacements = 0 }

let mark_changed t =
  t.changed <- true;
  t.num_replacements <- t.num_replacements + 1

(** Create an operation inserted immediately before [anchor]. *)
let insert_before t ~anchor ?operands ?result_tys ?attrs ?regions ?successors
    name =
  let op = Graph.Op.create ?operands ?result_tys ?attrs ?regions ?successors name in
  (match anchor.Graph.op_parent with
  | Some blk -> Graph.Block.insert_before blk ~anchor op
  | None -> invalid_arg "Rewriter.insert_before: anchor is detached");
  t.changed <- true;
  op

(** Replace every use of [op]'s results with [values] and erase [op].
    [values] must match the result count. *)
let replace_op t (op : Graph.op) ~with_:(values : Graph.value list) =
  if List.length values <> Graph.Op.num_results op then
    invalid_arg "Rewriter.replace_op: result count mismatch";
  List.iteri
    (fun i to_ ->
      Graph.Value.replace_all_uses ~from:(Graph.Op.result op i) ~to_)
    values;
  Graph.erase op;
  mark_changed t

(** Erase an operation whose results are unused. *)
let erase_op t (op : Graph.op) =
  if Array.exists Graph.Value.has_uses op.Graph.op_results then
    invalid_arg "Rewriter.erase_op: results still in use";
  Graph.erase op;
  mark_changed t

(** Create a replacement op before [op], wire its results in place of
    [op]'s, and erase [op]. Returns the new operation. *)
let replace_op_with_new t (op : Graph.op) ?operands ?attrs ~result_tys name =
  let fresh = insert_before t ~anchor:op ?operands ?attrs ~result_tys name in
  replace_op t op ~with_:(Graph.Op.results fresh);
  fresh

(** Erase operations whose results are all unused and that have no side
    observable effect in our model (no regions, no successors, not a
    terminator). One pass; call repeatedly for cascades. *)
let dce_pass t =
  let erased = ref 0 in
  let candidates = ref [] in
  Graph.Op.walk t.scope ~f:(fun o ->
      if o != t.scope then candidates := o :: !candidates);
  List.iter
    (fun (o : Graph.op) ->
      let is_terminator =
        match Context.lookup_op t.ctx o.op_name with
        | Some od -> od.od_is_terminator
        | None -> o.successors <> []
      in
      if
        o.op_parent <> None
        && Graph.Op.num_results o > 0
        && o.regions = []
        && (not is_terminator)
        && not (Array.exists Graph.Value.has_uses o.op_results)
      then begin
        Graph.erase o;
        incr erased;
        t.changed <- true
      end)
    !candidates;
  !erased

(** Run {!dce_pass} to fixpoint; returns the number of erased operations. *)
let dce t =
  let total = ref 0 in
  let rec go () =
    let n = dce_pass t in
    total := !total + n;
    if n > 0 then go ()
  in
  go ();
  !total

(** {!dce} reported as unified pass statistics. *)
let dce_stats t = Irdl_support.Stats.v [ ("erased", dce t) ]
