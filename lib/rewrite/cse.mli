(** Common-subexpression elimination, dominance-aware (MLIR's [-cse]
    analog), over dynamically registered IRDL dialects. *)

open Irdl_support
open Irdl_ir

val default_is_pure : Context.t -> Graph.op -> bool
(** The default purity heuristic: has results, no regions/successors, not a
    terminator, and no memory/call-like mnemonic fragment. *)

val op_key : Graph.op -> string
(** The structural value-numbering key (name, operand identities, sorted
    attributes, result types). *)

type stats = Stats.t
(** Unified named counters ([examined], [eliminated]); use the typed
    accessors below rather than counter names. *)

val examined : stats -> int
val eliminated : stats -> int

val run : ?is_pure:(Graph.op -> bool) -> Context.t -> Graph.op -> stats
(** Eliminate dominated duplicates of pure operations inside the scope. *)
