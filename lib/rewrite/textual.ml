(** Textual rewrite patterns: the fully dynamic companion to IRDL.

    Paper §3 envisions registering a dialect from an IRDL file *and*
    defining rewrites without writing or compiling host code ("together
    with the dynamic pattern rewriting support currently in construction in
    MLIR, this provides the components needed to define a simple
    pattern-based compilation flow"). This module provides that last piece:
    a small s-expression pattern syntax parsed at runtime into
    {!Pattern.t} values.

    Syntax:

    {v
    Pattern norm_of_mul {
      Benefit 2
      Match (arith.mulf (cmath.norm $p) (cmath.norm $q))
      Rewrite (cmath.norm (cmath.mul $p $q : $p) : f32)
    }
    v}

    - [(op sub1 sub2 ...)] matches an operation by name whose single result
      feeds the parent; [$x] captures (and, when repeated, constrains
      equality of) an operand value.
    - In the rewrite template, [(op args... : ty)] creates an operation with
      one result of type [ty], where [ty] is either a concrete type (parsed
      with the generic type syntax) or [$x], meaning "the type of capture
      [x]". When the ascription is omitted, the type of the first capture
      mentioned in the subtree is used.

    Several [Pattern] definitions may appear in one source. *)

open Irdl_support
open Irdl_ir

type sexp =
  | S_op of { name : string; args : sexp list; ty : ty_ref option }
  | S_capture of string

and ty_ref = T_concrete of Attr.ty | T_of_capture of string

(* ---------------- parsing ---------------- *)

type stream = { buf : Sbuf.t; ctx : Context.t }

let skip_ws st =
  Sbuf.skip_while st.buf Sbuf.is_space;
  match (Sbuf.peek st.buf, Sbuf.peek2 st.buf) with
  | Some '/', Some '/' ->
      Sbuf.skip_while st.buf (fun c -> c <> '\n');
      Sbuf.skip_while st.buf Sbuf.is_space
  | _ -> ()

let fail st fmt =
  Diag.raise_error ~loc:(Loc.point (Sbuf.pos st.buf)) fmt

let ident st =
  let s = Sbuf.take_while st.buf (fun c -> Sbuf.is_ident_char c || c = '.') in
  if s = "" then fail st "expected an identifier";
  s

let expect st c =
  skip_ws st;
  if not (Sbuf.accept st.buf c) then fail st "expected '%c'" c

let parse_ty_ref st : ty_ref =
  skip_ws st;
  match Sbuf.peek st.buf with
  | Some '$' ->
      Sbuf.advance st.buf;
      T_of_capture (ident st)
  | _ ->
      (* Reuse the generic type grammar by slicing up to a delimiter. *)
      let start = Sbuf.pos st.buf in
      let depth = ref 0 in
      let continue = ref true in
      while !continue do
        match Sbuf.peek st.buf with
        | Some '<' | Some '(' ->
            incr depth;
            Sbuf.advance st.buf
        | Some '>' ->
            decr depth;
            Sbuf.advance st.buf
        | Some ')' when !depth > 0 ->
            decr depth;
            Sbuf.advance st.buf
        | Some ')' -> continue := false
        | Some c when Sbuf.is_space c && !depth = 0 -> continue := false
        | Some _ -> Sbuf.advance st.buf
        | None -> continue := false
      done;
      let text = Sbuf.slice st.buf start (Sbuf.pos st.buf) in
      (match Parser.parse_type_string st.ctx text with
      | Ok ty -> T_concrete ty
      | Error d -> raise (Diag.Error_exn d))

let rec parse_sexp st : sexp =
  skip_ws st;
  match Sbuf.peek st.buf with
  | Some '$' ->
      Sbuf.advance st.buf;
      S_capture (ident st)
  | Some '(' ->
      Sbuf.advance st.buf;
      skip_ws st;
      let name = ident st in
      if not (String.contains name '.') then
        fail st "operation name '%s' must be dialect-qualified" name;
      let args = ref [] in
      let ty = ref None in
      let rec go () =
        skip_ws st;
        match Sbuf.peek st.buf with
        | Some ')' -> Sbuf.advance st.buf
        | Some ':' ->
            Sbuf.advance st.buf;
            ty := Some (parse_ty_ref st);
            expect st ')'
        | Some _ ->
            args := parse_sexp st :: !args;
            go ()
        | None -> fail st "unterminated '('"
      in
      go ();
      S_op { name; args = List.rev !args; ty = !ty }
  | _ -> fail st "expected '(' or '$'"

(* ---------------- compilation to Pattern ---------------- *)

let rec to_matcher (s : sexp) : Pattern.matcher =
  match s with
  | S_capture x -> Pattern.m_val x
  | S_op { name; args; _ } -> Pattern.m_op name (List.map to_matcher args)

let rec first_capture (s : sexp) : string option =
  match s with
  | S_capture x -> Some x
  | S_op { args; _ } -> List.find_map first_capture args

let rec to_builder (s : sexp) : (Pattern.builder, Diag.t) result =
  match s with
  | S_capture x -> Ok (Pattern.b_cap x)
  | S_op { name; args; ty } -> (
      let rec build_args acc = function
        | [] -> Ok (List.rev acc)
        | a :: rest ->
            Result.bind (to_builder a) (fun b -> build_args (b :: acc) rest)
      in
      Result.bind (build_args [] args) @@ fun args' ->
      match ty with
      | Some (T_concrete ty) ->
          Ok (Pattern.b_op name args' (Pattern.Ty_const ty))
      | Some (T_of_capture x) ->
          Ok (Pattern.b_op name args' (Pattern.Ty_of_capture x))
      | None -> (
          match first_capture s with
          | Some x -> Ok (Pattern.b_op name args' (Pattern.Ty_of_capture x))
          | None ->
              Diag.errorf
                "cannot infer the result type of (%s ...); add ': <type>'"
                name))

(** Captures used in the rewrite template must be bound by the match. *)
let rec captures (s : sexp) : string list =
  match s with
  | S_capture x -> [ x ]
  | S_op { args; _ } -> List.concat_map captures args

let compile_pattern ~name ~benefit ~(match_ : sexp) ~(rewrite : sexp) :
    (Pattern.t, Diag.t) result =
  let bound = captures match_ in
  let unbound =
    List.filter (fun c -> not (List.mem c bound)) (captures rewrite)
  in
  match unbound with
  | c :: _ -> Diag.errorf "pattern %s: capture $%s is not bound by Match" name c
  | [] -> (
      match match_ with
      | S_capture _ ->
          Diag.errorf "pattern %s: Match root must be an operation" name
      | S_op _ ->
          Result.map
            (fun replacement ->
              Pattern.dag ~benefit ~name ~root:(to_matcher match_) ~replacement
                ())
            (to_builder rewrite))

(* ---------------- top-level pattern files ---------------- *)

let kw st expected =
  skip_ws st;
  let got = ident st in
  if got <> expected then fail st "expected '%s', got '%s'" expected got

(** Parse a source containing [Pattern name { Benefit? Match ... Rewrite ... }]
    definitions against [ctx] (used to parse concrete types). *)
let parse_patterns (ctx : Context.t) ?(file = "<pattern>") src :
    (Pattern.t list, Diag.t) result =
  Diag.protect_any @@ fun () ->
  let st = { buf = Sbuf.of_string ~file src; ctx } in
  let rec go acc =
    skip_ws st;
    if Sbuf.eof st.buf then List.rev acc
    else begin
      kw st "Pattern";
      skip_ws st;
      let name = ident st in
      expect st '{';
      skip_ws st;
      let benefit = ref 1 in
      (let save = Sbuf.pos st.buf in
       let word = Sbuf.take_while st.buf Sbuf.is_ident_char in
       if word = "Benefit" then begin
         skip_ws st;
         let digits = Sbuf.take_while st.buf Sbuf.is_digit in
         if digits = "" then fail st "expected a benefit value";
         match int_of_string_opt digits with
         | Some b -> benefit := b
         | None -> fail st "benefit value '%s' out of range" digits
       end
       else st.buf.Sbuf.pos <- save);
      kw st "Match";
      let match_ = parse_sexp st in
      kw st "Rewrite";
      let rewrite = parse_sexp st in
      expect st '}';
      let p =
        match compile_pattern ~name ~benefit:!benefit ~match_ ~rewrite with
        | Ok p -> p
        | Error d -> raise (Diag.Error_exn d)
      in
      go (p :: acc)
    end
  in
  go []
