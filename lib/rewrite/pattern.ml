(** Rewrite patterns, native and declarative.

    A native pattern is an arbitrary match-and-rewrite function (MLIR's
    [RewritePattern]). The declarative combinators below cover the common
    DAG-shaped peephole patterns — enough to express the paper's Listing 1
    optimization over dynamically registered IRDL operations without any
    host-language match code, which is the "dynamic pattern rewriting"
    companion the paper's §3 refers to. *)

open Irdl_ir

type t = {
  name : string;
  benefit : int;  (** Higher-benefit patterns are attempted first. *)
  match_and_rewrite : Rewriter.t -> Graph.op -> bool;
      (** Returns true iff the pattern applied (and mutated the IR). *)
}

let make ?(benefit = 1) ~name match_and_rewrite =
  { name; benefit; match_and_rewrite }

(* ---------------------------------------------------------------- *)
(* Declarative DAG patterns                                          *)
(* ---------------------------------------------------------------- *)

(** Matcher over the producer DAG of an operation: [M_op] matches an op by
    name and its operand sub-patterns, capturing values by name. *)
type matcher =
  | M_op of { op_name : string; operands : matcher list; bind : string option }
      (** Matches a value produced by (the unique result of) an op. *)
  | M_value of string  (** Matches any value, capturing it. *)

let m_op ?bind op_name operands = M_op { op_name; operands; bind }
let m_val name = M_value name

type captures = (string, Graph.value) Hashtbl.t

let rec match_value (m : matcher) (v : Graph.value) (caps : captures) : bool =
  match m with
  | M_value name -> (
      (* Non-linear patterns: a repeated name must match the same value. *)
      match Hashtbl.find_opt caps name with
      | Some v' -> Graph.Value.equal v v'
      | None ->
          Hashtbl.replace caps name v;
          true)
  | M_op { op_name; operands; bind } -> (
      match Graph.Value.defining_op v with
      | Some op
        when op.Graph.op_name = op_name
             && Graph.Op.num_operands op = List.length operands
             && Graph.Op.num_results op = 1 ->
          (match bind with
          | Some name -> Hashtbl.replace caps name v
          | None -> ());
          List.for_all2 (fun m v -> match_value m v caps) operands
            (Graph.Op.operands op)
      | _ -> false)

(** Result builder: a small op-DAG template instantiated on success. *)
type builder =
  | B_capture of string  (** A captured value. *)
  | B_op of {
      op_name : string;
      operands : builder list;
      result_ty : ty_builder;
    }

and ty_builder =
  | Ty_const of Attr.ty
  | Ty_of_capture of string  (** Type of a captured value. *)
  | Ty_fn of (captures -> Attr.ty)

let b_cap name = B_capture name
let b_op op_name operands result_ty = B_op { op_name; operands; result_ty }

let rec build_value rw ~anchor (caps : captures) (b : builder) : Graph.value =
  match b with
  | B_capture name -> (
      match Hashtbl.find_opt caps name with
      | Some v -> v
      | None -> invalid_arg ("Pattern: unbound capture " ^ name))
  | B_op { op_name; operands; result_ty } ->
      let operands = List.map (build_value rw ~anchor caps) operands in
      let ty =
        match result_ty with
        | Ty_const ty -> ty
        | Ty_of_capture name -> (
            match Hashtbl.find_opt caps name with
            | Some v -> Graph.Value.ty v
            | None -> invalid_arg ("Pattern: unbound capture " ^ name))
        | Ty_fn f -> f caps
      in
      let op =
        Rewriter.insert_before rw ~anchor ~operands ~result_tys:[ ty ] op_name
      in
      Graph.Op.result op 0

(** A declarative root-to-leaves pattern: match [root] at an op with one
    result, rewrite to [replacement]. The root op and any matched producers
    left dead are cleaned up by the driver's DCE. *)
let dag ?(benefit = 1) ~name ~(root : matcher) ~(replacement : builder) () : t
    =
  let match_and_rewrite rw (op : Graph.op) =
    match (root, Graph.Op.results op) with
    | M_op { op_name; operands; bind }, [ result ]
      when op_name = op.Graph.op_name
           && Graph.Op.num_operands op = List.length operands ->
        let caps : captures = Hashtbl.create 8 in
        (match bind with
        | Some n -> Hashtbl.replace caps n result
        | None -> ());
        if
          List.for_all2
            (fun m v -> match_value m v caps)
            operands (Graph.Op.operands op)
        then begin
          let v = build_value rw ~anchor:op caps replacement in
          Rewriter.replace_op rw op ~with_:[ v ];
          true
        end
        else false
    | _ -> false
  in
  { name; benefit; match_and_rewrite }
