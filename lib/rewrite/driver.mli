(** The greedy pattern-rewrite driver (MLIR's
    [applyPatternsAndFoldGreedily] analog): sweeps the scope, trying
    patterns in decreasing benefit order, until a fixpoint or the iteration
    cap; dead producers are removed between sweeps. *)

open Irdl_support
open Irdl_ir

type stats = Stats.t
(** Unified named counters ([iterations], [applications], [erased],
    [converged]) shared with every other pass; use the typed accessors
    below rather than counter names. *)

val iterations : stats -> int
val applications : stats -> int
val erased : stats -> int
val converged : stats -> bool

val pp_stats : Format.formatter -> stats -> unit

val apply :
  ?max_iterations:int -> Context.t -> Pattern.t list -> Graph.op -> stats
