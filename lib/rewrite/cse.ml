(** Common-subexpression elimination, dominance-aware.

    Two operations are equivalent when they have the same name, the same
    operands (as SSA values), the same attributes and the same result types.
    A dominated duplicate is replaced by its representative. Operations are
    only considered when they are pure according to [is_pure]; the default
    heuristic accepts region-, successor- and side-effect-free operations
    (conservatively excluding memory- and call-like mnemonics).

    This is the classic SSA cleanup pass MLIR runs as [-cse]; here it runs
    against dynamically registered IRDL dialects like everything else. *)

open Irdl_support
open Irdl_ir

(* Conservative purity heuristic: structure first, then mnemonic blacklist
   for effects the structure cannot show. *)
let default_is_pure (ctx : Context.t) (op : Graph.op) =
  Graph.Op.num_results op > 0
  && op.Graph.regions = []
  && op.Graph.successors = []
  && (not (Verifier.is_terminator ctx op))
  && (let m = Graph.Op.mnemonic op in
      let has_fragment frag =
        let ml = String.length m and fl = String.length frag in
        let rec go i = i + fl <= ml && (String.sub m i fl = frag || go (i + 1)) in
        fl > 0 && go 0
      in
      not
        (List.exists has_fragment
           [ "load"; "store"; "alloc"; "dealloc"; "call"; "atomic"; "dma";
             "print"; "barrier"; "rand" ]))

(** A structural key for value-numbering. Attributes and result types are
    fingerprinted by their uniquer ids ({!Attr.id}) instead of their printed
    form: operations built by the parser or builder carry canonical nodes,
    so each component is an O(1) table hit rather than a pretty-print. *)
let op_key (op : Graph.op) : string =
  let buf = Buffer.create 64 in
  Buffer.add_string buf op.Graph.op_name;
  Graph.Op.iter_operands op ~f:(fun (v : Graph.value) ->
      Buffer.add_char buf '%';
      Buffer.add_string buf (string_of_int (Graph.Value.id v)));
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '#';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf (string_of_int (Attr.id v)))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) op.Graph.attrs);
  Graph.Op.iter_results op ~f:(fun (r : Graph.value) ->
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int (Attr.id_ty (Graph.Value.ty r))));
  Buffer.contents buf

type stats = Stats.t

let examined s = Stats.get s "examined"
let eliminated s = Stats.get s "eliminated"

(** Run CSE inside [scope]. Returns the number of operations eliminated. *)
let run ?is_pure (ctx : Context.t) (scope : Graph.op) : stats =
  let is_pure = Option.value ~default:(default_is_pure ctx) is_pure in
  let dom = Dominance.create () in
  let table : (string, Graph.op list) Hashtbl.t = Hashtbl.create 64 in
  let examined = ref 0 in
  let eliminated = ref 0 in
  (* Collect candidates in program (walk) order so representatives are seen
     before ops they might dominate. *)
  let candidates = ref [] in
  Graph.Op.walk scope ~f:(fun op ->
      if op != scope && is_pure op then candidates := op :: !candidates);
  List.iter
    (fun (op : Graph.op) ->
      incr examined;
      let key = op_key op in
      let known = Option.value ~default:[] (Hashtbl.find_opt table key) in
      (* A representative must dominate every use of the duplicate's
         results; representative-dominates-duplicate is sufficient since
         uses are dominated by the duplicate. *)
      let rep =
        List.find_opt
          (fun (r : Graph.op) ->
            r.Graph.op_parent <> None
            && Array.for_all
                 (fun (a : Graph.value) -> Dominance.value_dominates dom a op)
                 r.Graph.op_results)
          known
      in
      match rep with
      | Some r ->
          for i = 0 to Graph.Op.num_results op - 1 do
            Graph.Value.replace_all_uses ~from:(Graph.Op.result op i)
              ~to_:(Graph.Op.result r i)
          done;
          Graph.erase op;
          incr eliminated
      | None -> Hashtbl.replace table key (op :: known))
    (List.rev !candidates);
  Stats.v [ ("examined", !examined); ("eliminated", !eliminated) ]
