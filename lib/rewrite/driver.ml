(** The greedy pattern-rewrite driver (MLIR's
    [applyPatternsAndFoldGreedily] analog).

    Repeatedly sweeps the scope, trying patterns in decreasing benefit
    order at every operation, until a sweep applies nothing or the
    iteration cap is hit. Dead producers exposed by replacements are
    removed between sweeps. *)

open Irdl_support
open Irdl_ir

type stats = Stats.t

let iterations s = Stats.get s "iterations"
let applications s = Stats.get s "applications"
let erased s = Stats.get s "erased"
let converged s = Stats.get_flag s "converged"

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "%d iteration(s), %d pattern application(s), %d op(s) erased, %s"
    (iterations s) (applications s) (erased s)
    (if converged s then "converged" else "iteration cap reached")

let src = Logs.Src.create "irdl.rewrite" ~doc:"Greedy pattern driver"

module Log = (val Logs.src_log src : Logs.LOG)

(** Apply [patterns] greedily inside [scope]. *)
let apply ?(max_iterations = 16) (ctx : Context.t) (patterns : Pattern.t list)
    (scope : Graph.op) : stats =
  let patterns =
    List.sort (fun (a : Pattern.t) b -> compare b.benefit a.benefit) patterns
  in
  let rw = Rewriter.create ctx scope in
  let applications = ref 0 in
  let erased = ref 0 in
  let iterations = ref 0 in
  let converged = ref false in
  (try
     while !iterations < max_iterations do
       incr iterations;
       rw.changed <- false;
       (* Collect first: rewrites invalidate the walk. *)
       let worklist = ref [] in
       Graph.Op.walk scope ~f:(fun o ->
           if o != scope then worklist := o :: !worklist);
       List.iter
         (fun (op : Graph.op) ->
           (* Skip ops erased by a previous application this sweep. *)
           if op.op_parent <> None then
             List.iter
               (fun (p : Pattern.t) ->
                 if op.op_parent <> None && p.match_and_rewrite rw op then begin
                   incr applications;
                   Log.debug (fun m -> m "applied pattern %s" p.name)
                 end)
               patterns)
         (List.rev !worklist);
       erased := !erased + Rewriter.dce rw;
       if not rw.changed then begin
         converged := true;
         raise Exit
       end
     done
   with Exit -> ());
  Stats.v
    [
      ("iterations", !iterations);
      ("applications", !applications);
      ("erased", !erased);
      ("converged", if !converged then 1 else 0);
    ]
