(** The IR mutation API handed to rewrite patterns. All mutations are scoped
    to a root operation; use-def updates walk that scope only. *)

open Irdl_ir

type t = {
  scope : Graph.op;  (** root of the IR being rewritten *)
  ctx : Context.t;
  mutable changed : bool;
  mutable num_replacements : int;
}

val create : Context.t -> Graph.op -> t

val mark_changed : t -> unit
(** Record that a pattern made progress (for custom patterns that mutate
    the IR directly). *)

val insert_before :
  t -> anchor:Graph.op -> ?operands:Graph.value list ->
  ?result_tys:Attr.ty list -> ?attrs:(string * Attr.t) list ->
  ?regions:Graph.region list -> ?successors:Graph.block list -> string ->
  Graph.op
(** Create an operation inserted immediately before [anchor]. *)

val replace_op : t -> Graph.op -> with_:Graph.value list -> unit
(** Replace every use of the op's results with [with_] and erase the op.
    @raise Invalid_argument on result-count mismatch. *)

val erase_op : t -> Graph.op -> unit
(** Erase an operation whose results are unused.
    @raise Invalid_argument when results are still used. *)

val replace_op_with_new :
  t -> Graph.op -> ?operands:Graph.value list ->
  ?attrs:(string * Attr.t) list -> result_tys:Attr.ty list -> string ->
  Graph.op
(** Create a replacement op before [op], rewire its results, erase [op]. *)

val dce_pass : t -> int
(** One sweep of dead-op elimination; returns the number erased. *)

val dce : t -> int
(** {!dce_pass} to fixpoint. *)

val dce_stats : t -> Irdl_support.Stats.t
(** {!dce} with the erased count reported as unified pass statistics
    (counter [erased]), the representation shared by every pass. *)
