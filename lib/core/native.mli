(** The IRDL-C++ escape hatch (paper §5), reinterpreted for OCaml.

    A registry binds each C++ snippet — keyed by its verbatim text — to an
    OCaml closure. Snippets without a registered hook are the paper's
    "requires generic C++" category: by default they verify vacuously and
    are counted; [strict] mode turns them into hard errors. *)

open Irdl_ir

type codec = {
  codec_parse : string -> Attr.t option;
  codec_print : Attr.t -> string option;
}
(** A [TypeOrAttrParam]'s [CppParser]/[CppPrinter] pair: conversion between
    text and an {!Irdl_ir.Attr.Opaque} payload. *)

type t = {
  param_hooks : (string, Attr.t -> bool) Hashtbl.t;
  def_hooks : (string, Attr.t list -> bool) Hashtbl.t;
  op_hooks : (string, Graph.op -> bool) Hashtbl.t;
  codecs : (string, codec) Hashtbl.t;
  mutable strict : bool;
  unresolved : string list Atomic.t;
      (** Lock-free: verification may note unresolved snippets from several
          domains against one shared registry. *)
}

val create : ?strict:bool -> unit -> t

val default : t
(** A shared default registry used by convenience entry points. *)

val register_param_hook : t -> string -> (Attr.t -> bool) -> unit
(** Bind a [Constraint ... { CppConstraint "..." }] snippet: a predicate
    over a single parameter value ([$_self]). *)

val register_def_hook : t -> string -> (Attr.t list -> bool) -> unit
(** Bind a [CppConstraint] inside a [Type]/[Attribute] definition: a
    predicate over the full parameter list. *)

val register_op_hook : t -> string -> (Graph.op -> bool) -> unit
(** Bind a [CppConstraint] inside an [Operation]: a predicate over the op. *)

val register_codec : t -> string -> codec -> unit
(** Bind a [TypeOrAttrParam] (by definition name) to its codec. *)

val find_codec : t -> string -> codec option

val check_param : t -> string -> Attr.t -> (bool, string) result
(** Evaluate a snippet: [Ok b] when a hook is registered, [Ok true] (and the
    snippet recorded) when unresolved and non-strict, [Error snippet] when
    unresolved in strict mode. *)

val check_def : t -> string -> Attr.t list -> (bool, string) result
val check_op : t -> string -> Graph.op -> (bool, string) result

val unresolved : t -> string list
(** Snippets looked up without a registered hook, oldest first. *)

val clear_unresolved : t -> unit
