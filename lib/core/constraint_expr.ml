(** Resolved IRDL constraints and their evaluator.

    This is the semantic core of the paper: every constructor of Figure 2 has
    a case here, plus the IRDL-C++ extensions of §5. Constraints uniformly
    range over the attribute domain ({!Irdl_ir.Attr.t}); a constrained *type*
    is checked as [Attr.Type ty].

    Evaluation threads an environment of constraint-variable bindings
    ([ConstraintVars], §4.6): the first successful check against a variable
    binds it, later checks require equality. *)

open Irdl_ir

type int_kind = { ik_width : int; ik_signedness : Attr.signedness }

type t =
  | Any  (** [AnyParam] *)
  | Any_type  (** [!AnyType] *)
  | Any_attr  (** [#AnyAttr] *)
  | Eq of Attr.t
      (** Equality with a concrete type ([!f32]), value ([3 : int32_t],
          ["foo"]) or enum constructor ([signedness.Signed]). *)
  | Base_type of { dialect : string; name : string; params : t list option }
      (** [!complex] ([params = None]) or [!complex<pc1, ...>]. *)
  | Base_attr of { dialect : string; name : string; params : t list option }
  | Int_param of int_kind  (** [int32_t], [uint8_t], ... *)
  | Float_param of Attr.float_kind option  (** [#f32_attr]; [None] = any *)
  | String_param  (** [string] *)
  | Symbol_param  (** [symbol]: a [@name] symbol reference *)
  | Bool_param
  | Location_param
  | Type_id_param
  | Enum_param of { dialect : string; enum : string }
      (** Any constructor of the enum (§4.8). *)
  | Array_any  (** [array] *)
  | Array_of of t  (** [array<pc>] *)
  | Array_exact of t list  (** [[pc1, ..., pcN]] *)
  | Any_of of t list
  | And of t list
  | Not of t
  | Var of var  (** A [ConstraintVars] variable use. *)
  | Native of { name : string; base : t; snippets : string list }
      (** IRDL-C++ [Constraint] definition (§5.1). *)
  | Native_param of { name : string; class_name : string }
      (** IRDL-C++ [TypeOrAttrParam] (§5.2): matches [Attr.Opaque] values
          tagged with [name]. *)
  | Variadic of t  (** Top-level only, in operand/result/region-arg slots. *)
  | Optional of t

and var = { v_name : string; v_constraint : t }

module Env = Map.Make (String)

type env = Attr.t Env.t

let empty_env : env = Env.empty

let int_kind_matches { ik_width; ik_signedness } (ty : Attr.ty) =
  match ty with
  | Attr.Integer { width; signedness } ->
      width = ik_width
      && (signedness = ik_signedness || signedness = Attr.Signless
         || ik_signedness = Attr.Signless)
  | _ -> false

let int_kind_in_range { ik_width; ik_signedness } (v : int64) =
  if ik_width >= 64 then true
  else
    match ik_signedness with
    | Attr.Unsigned ->
        let max = Int64.shift_left 1L ik_width in
        Int64.compare v 0L >= 0 && Int64.compare v max < 0
    | Attr.Signed | Attr.Signless ->
        let max = Int64.shift_left 1L (ik_width - 1) in
        Int64.compare v (Int64.neg max) >= 0 && Int64.compare v max < 0

(** [verify ~native ~env c a] checks attribute [a] against constraint [c],
    returning the (possibly extended) environment on success and a
    human-readable reason on failure. *)
let rec verify ~(native : Native.t) ~(env : env) (c : t) (a : Attr.t) :
    (env, string) result =
  match c with
  | Any -> Ok env
  | Any_type -> (
      match a with
      | Attr.Type _ -> Ok env
      | _ -> Error (Fmt.str "expected a type, got %a" Attr.pp a))
  | Any_attr -> Ok env
  | Eq expected ->
      (* Both sides are interned (the constraint at resolution time, the
         checked attribute at parse/build time), so this is a pointer
         comparison — the hot path of every fixed-type operand check. *)
      if Attr.equal expected a then Ok env
      else Error (Fmt.str "expected %a, got %a" Attr.pp expected Attr.pp a)
  | Base_type { dialect; name; params } -> (
      match a with
      | Attr.Type (Attr.Dynamic d) when d.dialect = dialect && d.name = name
        -> (
          match params with
          | None -> Ok env
          | Some pcs -> verify_params ~native ~env ~what:"type" pcs d.params)
      | _ ->
          Error
            (Fmt.str "expected a !%s.%s type, got %a" dialect name Attr.pp a))
  | Base_attr { dialect; name; params } -> (
      match a with
      | Attr.Dyn_attr d when d.dialect = dialect && d.name = name -> (
          match params with
          | None -> Ok env
          | Some pcs ->
              verify_params ~native ~env ~what:"attribute" pcs d.params)
      | _ ->
          Error
            (Fmt.str "expected a #%s.%s attribute, got %a" dialect name
               Attr.pp a))
  | Int_param kind -> (
      match a with
      | Attr.Int { value; ty } when int_kind_matches kind ty ->
          if int_kind_in_range kind value then Ok env
          else Error (Fmt.str "integer %Ld out of range" value)
      | _ ->
          Error
            (Fmt.str "expected a %d-bit integer parameter, got %a"
               kind.ik_width Attr.pp a))
  | Float_param kind -> (
      match (a, kind) with
      | Attr.Float_attr _, None -> Ok env
      | Attr.Float_attr { ty = Attr.Float k; _ }, Some k' when k = k' -> Ok env
      | _ -> Error (Fmt.str "expected a float parameter, got %a" Attr.pp a))
  | String_param -> (
      match a with
      | Attr.String _ -> Ok env
      | _ -> Error (Fmt.str "expected a string parameter, got %a" Attr.pp a))
  | Symbol_param -> (
      match a with
      | Attr.Symbol _ -> Ok env
      | _ -> Error (Fmt.str "expected a symbol reference, got %a" Attr.pp a))
  | Bool_param -> (
      match a with
      | Attr.Bool _ -> Ok env
      | _ -> Error (Fmt.str "expected a boolean parameter, got %a" Attr.pp a))
  | Location_param -> (
      match a with
      | Attr.Location _ -> Ok env
      | _ -> Error (Fmt.str "expected a location, got %a" Attr.pp a))
  | Type_id_param -> (
      match a with
      | Attr.Type_id _ -> Ok env
      | _ -> Error (Fmt.str "expected a type id, got %a" Attr.pp a))
  | Enum_param { dialect; enum } -> (
      match a with
      | Attr.Enum e when e.dialect = dialect && e.enum = enum -> Ok env
      | _ ->
          Error
            (Fmt.str "expected a constructor of enum %s.%s, got %a" dialect
               enum Attr.pp a))
  | Array_any -> (
      match a with
      | Attr.Array _ -> Ok env
      | _ -> Error (Fmt.str "expected an array parameter, got %a" Attr.pp a))
  | Array_of elem -> (
      match a with
      | Attr.Array xs ->
          List.fold_left
            (fun acc x ->
              match acc with
              | Error _ as e -> e
              | Ok env -> verify ~native ~env elem x)
            (Ok env) xs
      | _ -> Error (Fmt.str "expected an array parameter, got %a" Attr.pp a))
  | Array_exact elems -> (
      match a with
      | Attr.Array xs when List.length xs = List.length elems ->
          List.fold_left2
            (fun acc c x ->
              match acc with
              | Error _ as e -> e
              | Ok env -> verify ~native ~env c x)
            (Ok env) elems xs
      | Attr.Array xs ->
          Error
            (Fmt.str "expected an array of %d elements, got %d"
               (List.length elems) (List.length xs))
      | _ -> Error (Fmt.str "expected an array parameter, got %a" Attr.pp a))
  | Any_of cs ->
      let rec try_all = function
        | [] ->
            Error (Fmt.str "%a satisfies no alternative of AnyOf" Attr.pp a)
        | c :: rest -> (
            match verify ~native ~env c a with
            | Ok env -> Ok env
            | Error _ -> try_all rest)
      in
      try_all cs
  | And cs ->
      List.fold_left
        (fun acc c ->
          match acc with
          | Error _ as e -> e
          | Ok env -> verify ~native ~env c a)
        (Ok env) cs
  | Not c -> (
      (* Bindings made inside a negation are discarded. *)
      match verify ~native ~env c a with
      | Ok _ -> Error (Fmt.str "%a satisfies negated constraint" Attr.pp a)
      | Error _ -> Ok env)
  | Var { v_name; v_constraint } -> (
      match Env.find_opt v_name env with
      | Some bound ->
          (* Interned on both sides: O(1) identity check per re-use of a
             bound [ConstraintVars] variable. *)
          if Attr.equal bound a then Ok env
          else
            Error
              (Fmt.str "constraint variable %s already bound to %a, got %a"
                 v_name Attr.pp bound Attr.pp a)
      | None -> (
          match verify ~native ~env v_constraint a with
          | Ok env -> Ok (Env.add v_name a env)
          | Error reason ->
              Error (Fmt.str "constraint variable %s: %s" v_name reason)))
  | Native { name; base; snippets } -> (
      match verify ~native ~env base a with
      | Error _ as e -> e
      | Ok env ->
          let rec run = function
            | [] -> Ok env
            | snippet :: rest -> (
                match Native.check_param native snippet a with
                | Ok true -> run rest
                | Ok false ->
                    Error
                      (Fmt.str "%a violates native constraint %s (%s)" Attr.pp
                         a name snippet)
                | Error snippet ->
                    Error
                      (Fmt.str
                         "no native hook registered for %S (strict mode)"
                         snippet))
          in
          run snippets)
  | Native_param { name; _ } -> (
      match a with
      | Attr.Opaque { tag; _ } when tag = name -> Ok env
      | _ ->
          Error
            (Fmt.str "expected a native %s parameter, got %a" name Attr.pp a))
  | Variadic c | Optional c ->
      (* Element-wise check; arity is the verifier generator's concern. *)
      verify ~native ~env c a

and verify_params ~native ~env ~what pcs params =
  if List.length pcs <> List.length params then
    Error
      (Fmt.str "%s expects %d parameters, got %d" what (List.length pcs)
         (List.length params))
  else
    List.fold_left2
      (fun acc c param ->
        match acc with
        | Error _ as e -> e
        | Ok env -> verify ~native ~env c param)
      (Ok env) pcs params

(** Check a type against a type constraint. [Attr.typ] is a uniquer hit for
    every type already seen, so the wrapper allocates nothing new. *)
let verify_ty ~native ~env c ty = verify ~native ~env c (Attr.typ ty)

(* ------------------------------------------------------------------ *)
(* Compilation to checkers                                             *)
(* ------------------------------------------------------------------ *)

type checker = env -> Attr.t -> (env, string) result

(** [compile ~native c] lowers the resolved constraint tree once into a
    closure/dispatch form: [Eq] becomes a physical-equality test against the
    interned value, combinators become pre-built closure arrays, parameter
    kinds become direct tag tests. The result is observationally equivalent
    to {!verify} — same accept/reject decisions, same environment bindings,
    same failure messages — with the tree walk and constructor dispatch paid
    at compile (registration) time instead of on every check. The
    interpreted {!verify} stays as the reference oracle; the differential
    test harness checks agreement on generated constraints. *)
let rec compile ~(native : Native.t) (c : t) : checker =
  match c with
  | Any | Any_attr -> fun env _ -> Ok env
  | Any_type -> (
      fun env a ->
        match a with
        | Attr.Type _ -> Ok env
        | _ -> Error (Fmt.str "expected a type, got %a" Attr.pp a))
  | Eq expected ->
      (* Interned once here, so the hot path is a pointer comparison (with
         the structural fallback of [Attr.equal] for uninterned inputs). *)
      let expected = Attr.intern expected in
      fun env a ->
        if expected == a || Attr.equal expected a then Ok env
        else Error (Fmt.str "expected %a, got %a" Attr.pp expected Attr.pp a)
  | Base_type { dialect; name; params } -> (
      let check_params =
        Option.map (compile_params ~native ~what:"type") params
      in
      fun env a ->
        match a with
        | Attr.Type (Attr.Dynamic d) when d.dialect = dialect && d.name = name
          -> (
            match check_params with
            | None -> Ok env
            | Some check -> check env d.params)
        | _ ->
            Error
              (Fmt.str "expected a !%s.%s type, got %a" dialect name Attr.pp a))
  | Base_attr { dialect; name; params } -> (
      let check_params =
        Option.map (compile_params ~native ~what:"attribute") params
      in
      fun env a ->
        match a with
        | Attr.Dyn_attr d when d.dialect = dialect && d.name = name -> (
            match check_params with
            | None -> Ok env
            | Some check -> check env d.params)
        | _ ->
            Error
              (Fmt.str "expected a #%s.%s attribute, got %a" dialect name
                 Attr.pp a))
  | Int_param kind -> (
      fun env a ->
        match a with
        | Attr.Int { value; ty } when int_kind_matches kind ty ->
            if int_kind_in_range kind value then Ok env
            else Error (Fmt.str "integer %Ld out of range" value)
        | _ ->
            Error
              (Fmt.str "expected a %d-bit integer parameter, got %a"
                 kind.ik_width Attr.pp a))
  | Float_param kind -> (
      fun env a ->
        match (a, kind) with
        | Attr.Float_attr _, None -> Ok env
        | Attr.Float_attr { ty = Attr.Float k; _ }, Some k' when k = k' ->
            Ok env
        | _ -> Error (Fmt.str "expected a float parameter, got %a" Attr.pp a))
  | String_param -> (
      fun env a ->
        match a with
        | Attr.String _ -> Ok env
        | _ -> Error (Fmt.str "expected a string parameter, got %a" Attr.pp a))
  | Symbol_param -> (
      fun env a ->
        match a with
        | Attr.Symbol _ -> Ok env
        | _ -> Error (Fmt.str "expected a symbol reference, got %a" Attr.pp a))
  | Bool_param -> (
      fun env a ->
        match a with
        | Attr.Bool _ -> Ok env
        | _ -> Error (Fmt.str "expected a boolean parameter, got %a" Attr.pp a))
  | Location_param -> (
      fun env a ->
        match a with
        | Attr.Location _ -> Ok env
        | _ -> Error (Fmt.str "expected a location, got %a" Attr.pp a))
  | Type_id_param -> (
      fun env a ->
        match a with
        | Attr.Type_id _ -> Ok env
        | _ -> Error (Fmt.str "expected a type id, got %a" Attr.pp a))
  | Enum_param { dialect; enum } -> (
      fun env a ->
        match a with
        | Attr.Enum e when e.dialect = dialect && e.enum = enum -> Ok env
        | _ ->
            Error
              (Fmt.str "expected a constructor of enum %s.%s, got %a" dialect
                 enum Attr.pp a))
  | Array_any -> (
      fun env a ->
        match a with
        | Attr.Array _ -> Ok env
        | _ -> Error (Fmt.str "expected an array parameter, got %a" Attr.pp a))
  | Array_of elem -> (
      let check = compile ~native elem in
      fun env a ->
        match a with
        | Attr.Array xs ->
            let rec go env = function
              | [] -> Ok env
              | x :: rest -> (
                  match check env x with
                  | Ok env -> go env rest
                  | Error _ as e -> e)
            in
            go env xs
        | _ -> Error (Fmt.str "expected an array parameter, got %a" Attr.pp a))
  | Array_exact elems -> (
      let n = List.length elems in
      let checks = List.map (compile ~native) elems in
      fun env a ->
        match a with
        | Attr.Array xs when List.length xs = n ->
            List.fold_left2
              (fun acc check x ->
                match acc with
                | Error _ as e -> e
                | Ok env -> check env x)
              (Ok env) checks xs
        | Attr.Array xs ->
            Error
              (Fmt.str "expected an array of %d elements, got %d" n
                 (List.length xs))
        | _ -> Error (Fmt.str "expected an array parameter, got %a" Attr.pp a))
  | Any_of cs ->
      let checks = Array.of_list (List.map (compile ~native) cs) in
      let n = Array.length checks in
      fun env a ->
        let rec try_i i =
          if i >= n then
            Error (Fmt.str "%a satisfies no alternative of AnyOf" Attr.pp a)
          else
            match checks.(i) env a with
            | Ok _ as ok -> ok
            | Error _ -> try_i (i + 1)
        in
        try_i 0
  | And cs ->
      let checks = Array.of_list (List.map (compile ~native) cs) in
      let n = Array.length checks in
      fun env a ->
        let rec go env i =
          if i >= n then Ok env
          else
            match checks.(i) env a with
            | Ok env -> go env (i + 1)
            | Error _ as e -> e
        in
        go env 0
  | Not c -> (
      let check = compile ~native c in
      fun env a ->
        match check env a with
        | Ok _ -> Error (Fmt.str "%a satisfies negated constraint" Attr.pp a)
        | Error _ -> Ok env)
  | Var { v_name; v_constraint } -> (
      let check = compile ~native v_constraint in
      fun env a ->
        match Env.find_opt v_name env with
        | Some bound ->
            if Attr.equal bound a then Ok env
            else
              Error
                (Fmt.str "constraint variable %s already bound to %a, got %a"
                   v_name Attr.pp bound Attr.pp a)
        | None -> (
            match check env a with
            | Ok env -> Ok (Env.add v_name a env)
            | Error reason ->
                Error (Fmt.str "constraint variable %s: %s" v_name reason)))
  | Native { name; base; snippets } -> (
      let check = compile ~native base in
      fun env a ->
        match check env a with
        | Error _ as e -> e
        | Ok env ->
            let rec run = function
              | [] -> Ok env
              | snippet :: rest -> (
                  match Native.check_param native snippet a with
                  | Ok true -> run rest
                  | Ok false ->
                      Error
                        (Fmt.str "%a violates native constraint %s (%s)"
                           Attr.pp a name snippet)
                  | Error snippet ->
                      Error
                        (Fmt.str
                           "no native hook registered for %S (strict mode)"
                           snippet))
            in
            run snippets)
  | Native_param { name; _ } -> (
      fun env a ->
        match a with
        | Attr.Opaque { tag; _ } when tag = name -> Ok env
        | _ ->
            Error
              (Fmt.str "expected a native %s parameter, got %a" name Attr.pp a))
  | Variadic c | Optional c -> compile ~native c

and compile_params ~native ~what pcs :
    env -> Attr.t list -> (env, string) result =
  let n = List.length pcs in
  let checks = List.map (compile ~native) pcs in
  fun env params ->
    if List.length params <> n then
      Error
        (Fmt.str "%s expects %d parameters, got %d" what n
           (List.length params))
    else
      List.fold_left2
        (fun acc check param ->
          match acc with
          | Error _ as e -> e
          | Ok env -> check env param)
        (Ok env) checks params

let compile_ty ~native c =
  let check = compile ~native c in
  fun env ty -> check env (Attr.typ ty)

let is_variadic = function Variadic _ | Optional _ -> true | _ -> false
let is_optional = function Optional _ -> true | _ -> false

let rec strip_variadic = function
  | Variadic c | Optional c -> strip_variadic c
  | c -> c

(* ------------------------------------------------------------------ *)
(* Pretty-printing (for diagnostics and introspection tooling)         *)
(* ------------------------------------------------------------------ *)

let pp_int_kind ppf { ik_width; ik_signedness } =
  let prefix =
    match ik_signedness with
    | Attr.Signed -> "int"
    | Attr.Unsigned -> "uint"
    | Attr.Signless -> "int" (* signless literals print as signed kinds *)
  in
  Fmt.pf ppf "%s%d_t" prefix ik_width

let rec pp ppf (c : t) =
  match c with
  | Any -> Fmt.string ppf "AnyParam"
  | Any_type -> Fmt.string ppf "!AnyType"
  | Any_attr -> Fmt.string ppf "#AnyAttr"
  | Eq a -> Attr.pp ppf a
  | Base_type { dialect; name; params = None } ->
      Fmt.pf ppf "!%s.%s" dialect name
  | Base_type { dialect; name; params = Some pcs } ->
      Fmt.pf ppf "!%s.%s<%a>" dialect name Fmt.(list ~sep:(any ", ") pp) pcs
  | Base_attr { dialect; name; params = None } ->
      Fmt.pf ppf "#%s.%s" dialect name
  | Base_attr { dialect; name; params = Some pcs } ->
      Fmt.pf ppf "#%s.%s<%a>" dialect name Fmt.(list ~sep:(any ", ") pp) pcs
  | Int_param k -> pp_int_kind ppf k
  | Float_param None -> Fmt.string ppf "float"
  | Float_param (Some k) -> Fmt.pf ppf "#%a_attr" Attr.pp_float_kind k
  | String_param -> Fmt.string ppf "string"
  | Symbol_param -> Fmt.string ppf "symbol"
  | Bool_param -> Fmt.string ppf "bool"
  | Location_param -> Fmt.string ppf "location"
  | Type_id_param -> Fmt.string ppf "type_id"
  | Enum_param { dialect; enum } -> Fmt.pf ppf "%s.%s" dialect enum
  | Array_any -> Fmt.string ppf "array"
  | Array_of c -> Fmt.pf ppf "array<%a>" pp c
  | Array_exact cs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp) cs
  | Any_of cs -> Fmt.pf ppf "AnyOf<%a>" Fmt.(list ~sep:(any ", ") pp) cs
  | And cs -> Fmt.pf ppf "And<%a>" Fmt.(list ~sep:(any ", ") pp) cs
  | Not c -> Fmt.pf ppf "Not<%a>" pp c
  | Var { v_name; _ } -> Fmt.pf ppf "$%s" v_name
  | Native { name; _ } -> Fmt.string ppf name
  | Native_param { name; _ } -> Fmt.string ppf name
  | Variadic c -> Fmt.pf ppf "Variadic<%a>" pp c
  | Optional c -> Fmt.pf ppf "Optional<%a>" pp c

let to_string c = Fmt.str "%a" pp c
