(** Recursive-descent parser for IRDL. The grammar is LL(1) over the token
    stream of {!Lexer}; keywords are contextual. *)

open Irdl_support

val parse_file :
  ?file:string ->
  ?engine:Diag.Engine.t ->
  string ->
  (Ast.dialect list, Diag.t) result
(** Parse a whole IRDL file: a sequence of [Dialect name { ... }].

    Without [engine] the parse is fail-fast: it stops at the first error,
    returned as [Error]. With [engine] it is fail-soft: every
    lexing/parsing error is emitted to the engine and parsing resumes at
    the next item or dialect boundary, so one run reports all errors; the
    result is always [Ok] with the dialects (and the items within them)
    that parsed. *)

val parse_one : ?file:string -> string -> (Ast.dialect, Diag.t) result
(** Parse a source expected to contain exactly one dialect. *)

val parse_constraint_string :
  ?file:string -> string -> (Ast.cexpr, Diag.t) result
(** Parse a standalone constraint expression (tests and tooling). *)
