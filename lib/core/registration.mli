(** Dynamic dialect registration: resolved IRDL dialects into a live
    {!Irdl_ir.Context.t}. Every registered definition is a closure over the
    resolved constraints — the generated verifiers of the paper's Listing 2
    — with no code generation involved (paper §3). *)

open Irdl_support
open Irdl_ir

val assign_slots :
  what:string -> seg_attr:string -> op:Graph.op -> Resolve.slot list ->
  'a list -> ('a list list, Diag.t) result
(** Split values across operand/result slots, honouring variadic/optional
    slots and, with several variadic groups, the
    [operandSegmentSizes]/[resultSegmentSizes] attribute (paper §4.6).
    Exposed for testing and tooling. *)

val make_op_verifier :
  native:Native.t -> Resolve.op -> Graph.op -> (unit, Diag.t) result
(** The generated operation verifier (arity, constraints with shared
    variables, attributes, regions, successors, IRDL-C++ hooks). Partial
    application to the resolved op lowers every constraint to its compiled
    checker form once ({!Constraint_expr.compile}); registration stores the
    returned closure. *)

val make_op_verifier_interp :
  native:Native.t -> Resolve.op -> Graph.op -> (unit, Diag.t) result
(** The interpreted reference oracle: same semantics as
    {!make_op_verifier}, re-walking the constraint tree on every check.
    Used by differential tests and the verification benchmarks. *)

val register_collect :
  ?native:Native.t -> ?compile:bool -> Context.t -> Resolve.dialect ->
  Diag.t list
(** Register a resolved dialect, accumulating one error per definition that
    failed (duplicate registration, malformed declarative format) while all
    the others are registered. Declarative formats are compiled eagerly so
    malformed specs fail at registration, not first use. [compile] (default
    [true]) selects the compiled verifiers; [compile:false] registers the
    interpreted reference verifiers instead, for benchmarking and
    differential testing. *)

val register :
  ?native:Native.t -> ?compile:bool -> Context.t -> Resolve.dialect ->
  (unit, Diag.t) result
(** Like {!register_collect}, reporting only the first error. *)
