(** Example-instance synthesis from resolved constraints.

    Given a resolved definition, synthesize attribute/type/operation
    instances that satisfy its declarative constraints. This powers the
    meta-tooling the paper motivates (completion in an IR language server,
    spec-based testing of dialects) and doubles as an end-to-end exerciser
    for the generated verifiers: every synthesized operation should verify
    against its own definition.

    Synthesis is best-effort: constraints that are only satisfiable with
    knowledge IRDL does not carry (native predicates, [Not], exact array
    shapes under [array<...>]) yield [None]. *)

open Irdl_ir
module C = Constraint_expr

(** Resolver for the parameters of referenced type/attribute definitions:
    needed when a constraint is [!builtin.tensor] (any parameters) but the
    registered definition demands specific ones. *)
type lookup =
  kind:[ `Type | `Attr ] -> dialect:string -> name:string ->
  Resolve.typedef option

let no_lookup : lookup = fun ~kind:_ ~dialect:_ ~name:_ -> None

let max_depth = 6

let rec example_attr ?(lookup = no_lookup) ?(depth = 0) (c : C.t) :
    Attr.t option =
  if depth > max_depth then None
  else
    let example_attr ?(lookup = lookup) c =
      example_attr ~lookup ~depth:(depth + 1) c
    in
    let synth_params ~kind ~dialect ~name params =
      match params with
      | Some pcs ->
          let xs = List.map example_attr pcs in
          if List.for_all Option.is_some xs then
            Some (List.filter_map Fun.id xs)
          else None
      | None -> (
          (* No parameter constraints given: consult the definition. *)
          match lookup ~kind ~dialect ~name with
          | None -> Some []
          | Some td ->
              let xs =
                List.map
                  (fun (s : Resolve.slot) -> example_attr s.s_constraint)
                  td.td_params
              in
              if List.for_all Option.is_some xs then
                Some (List.filter_map Fun.id xs)
              else None)
    in
    match c with
    | C.Any | C.Any_attr -> Some Attr.unit
    | C.Any_type -> Some (Attr.typ Attr.f32)
    | C.Eq a -> Some a
    | C.Base_type { dialect; name; params } ->
        Option.map
          (fun params -> Attr.typ (Attr.dynamic ~dialect ~name params))
          (synth_params ~kind:`Type ~dialect ~name params)
    | C.Base_attr { dialect; name; params } ->
        Option.map
          (fun params -> Attr.dyn_attr ~dialect ~name params)
          (synth_params ~kind:`Attr ~dialect ~name params)
  | C.Int_param { ik_width; ik_signedness } ->
      Some
        (Attr.int ~ty:(Attr.integer ~signedness:ik_signedness ik_width) 1L)
  | C.Float_param kind ->
      let ty =
        match kind with
        | Some Attr.F16 -> Attr.f16
        | Some Attr.F64 -> Attr.f64
        | Some Attr.BF16 -> Attr.bf16
        | _ -> Attr.f32
      in
      Some (Attr.float ~ty 1.0)
  | C.String_param -> Some (Attr.string "example")
  | C.Symbol_param -> Some (Attr.symbol "example")
  | C.Bool_param -> Some (Attr.bool true)
  | C.Location_param -> Some (Attr.location ~file:"ex" ~line:1 ~col:1)
  | C.Type_id_param -> Some (Attr.type_id "Example")
  | C.Enum_param { dialect; enum } ->
      (* The enum's cases are not recorded in the constraint; the context
         would know, but any case name satisfies Enum_param. *)
      Some (Attr.enum ~dialect ~enum "__example__")
  | C.Array_any -> Some (Attr.array [])
  | C.Array_of _ -> Some (Attr.array [])
  | C.Array_exact pcs ->
      let xs = List.map example_attr pcs in
      if List.for_all Option.is_some xs then
        Some (Attr.array (List.filter_map Fun.id xs))
      else None
  | C.Any_of cs -> List.find_map example_attr cs
  | C.And (c :: _) -> example_attr c
  | C.And [] -> Some Attr.unit
  | C.Not _ -> None
  | C.Var v -> example_attr v.C.v_constraint
  | C.Native { base; _ } ->
      (* Best effort: the base's example may violate the native predicate,
         but unregistered predicates accept (non-strict). *)
      example_attr base
  | C.Native_param { name; _ } -> Some (Attr.opaque ~tag:name "example")
  | C.Variadic c | C.Optional c -> example_attr c

let example_ty ?lookup (c : C.t) : Attr.ty option =
  match example_attr ?lookup c with Some (Attr.Type ty) -> Some ty | _ -> None

(** Why an operation cannot be synthesized. *)
type skip_reason =
  | Is_terminator  (** needs successor blocks we cannot fabricate *)
  | Multiple_variadic_groups
  | Unsatisfiable_slot of string

let num_variadic slots =
  List.length
    (List.filter (fun (s : Resolve.slot) -> C.is_variadic s.s_constraint) slots)

(** Resolver for terminator operations referenced by region definitions. *)
type op_lookup = dialect:string -> name:string -> Resolve.op option

let no_op_lookup : op_lookup = fun ~dialect:_ ~name:_ -> None

let split_qualified qname =
  match String.index_opt qname '.' with
  | Some i ->
      ( String.sub qname 0 i,
        String.sub qname (i + 1) (String.length qname - i - 1) )
  | None -> ("", qname)

(** Synthesize an instance of [op]: a fresh operation whose operands are
    results of placeholder ["test.source"] ops, with single-block regions
    (including required terminators, resolved through [op_lookup]) when the
    definition demands them. Shared constraint variables are respected:
    a [Var] always takes its first example. Terminators with a non-empty
    successor list are skipped — there are no blocks to branch to. *)
let rec instantiate_op ?(lookup = no_lookup) ?(op_lookup = no_op_lookup)
    ~(dialect : string) (op : Resolve.op) : (Graph.op, skip_reason) result =
  (match op.op_successors with
  | Some (_ :: _) -> Error Is_terminator
  | Some [] | None -> Ok ())
  |> Fun.flip Result.bind @@ fun () ->
  if num_variadic op.op_operands > 1 || num_variadic op.op_results > 1 then
    Error Multiple_variadic_groups
  else
    (* Pre-bind constraint variables to a single example each so repeated
       uses agree. *)
    let var_examples = Hashtbl.create 4 in
    List.iter
      (fun (v : C.var) ->
        match example_attr ~lookup v.C.v_constraint with
        | Some a -> Hashtbl.replace var_examples v.C.v_name a
        | None -> ())
      op.op_vars;
    let rec resolve_slot (c : C.t) : Attr.t option =
      match c with
      | C.Var v -> (
          match Hashtbl.find_opt var_examples v.C.v_name with
          | Some a -> Some a
          | None -> example_attr ~lookup v.C.v_constraint)
      | C.Variadic c | C.Optional c -> resolve_slot c
      | C.Base_type { dialect; name; params = Some pcs } ->
          let xs = List.map resolve_slot pcs in
          if List.for_all Option.is_some xs then
            Some
              (Attr.typ
                 (Attr.dynamic ~dialect ~name (List.filter_map Fun.id xs)))
          else None
      | _ -> example_attr ~lookup c
    in
    let slot_ty what (s : Resolve.slot) =
      match resolve_slot s.s_constraint with
      | Some (Attr.Type ty) -> Ok ty
      | _ -> Error (Unsatisfiable_slot (what ^ " " ^ s.s_name))
    in
    let rec collect what acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest ->
          Result.bind (slot_ty what s) (fun ty ->
              collect what (ty :: acc) rest)
    in
    Result.bind (collect "operand" [] op.op_operands) @@ fun operand_tys ->
    Result.bind (collect "result" [] op.op_results) @@ fun result_tys ->
    let attrs =
      List.filter_map
        (fun (s : Resolve.slot) ->
          if C.is_optional s.s_constraint then None
          else
            match resolve_slot s.s_constraint with
            | Some a -> Some (s.s_name, a)
            | None -> None)
        op.op_attributes
    in
    (* A required attribute we could not synthesize is a failure. *)
    let missing =
      List.find_opt
        (fun (s : Resolve.slot) ->
          (not (C.is_optional s.s_constraint))
          && not (List.mem_assoc s.s_name attrs))
        op.op_attributes
    in
    (match missing with
    | Some s -> Error (Unsatisfiable_slot ("attribute " ^ s.s_name))
    | None -> Ok ())
    |> Fun.flip Result.bind @@ fun () ->
    (* Regions: a single block whose fixed arguments are synthesized
       (variadic argument groups take zero values) and whose terminator, if
       required, is itself synthesized recursively. *)
    let build_region (rd : Resolve.region) :
        (Graph.region, skip_reason) result =
      if num_variadic rd.reg_args > 1 then Error Multiple_variadic_groups
      else
        let fixed_args =
          List.filter
            (fun (s : Resolve.slot) -> not (C.is_variadic s.s_constraint))
            rd.reg_args
        in
        Result.bind (collect "region argument" [] fixed_args)
        @@ fun arg_tys ->
        let block = Graph.Block.create ~arg_tys () in
        let finish () =
          Ok (Graph.Region.create ~blocks:[ block ] ())
        in
        match rd.reg_terminator with
        | None ->
            (* Blocks are only created when needed: an empty region is
               valid when there are no argument constraints either. *)
            if rd.reg_args = [] then Ok (Graph.Region.create ())
            else finish ()
        | Some term_qname -> (
            let tdialect, tname = split_qualified term_qname in
            match op_lookup ~dialect:tdialect ~name:tname with
            | None ->
                Error
                  (Unsatisfiable_slot ("region terminator " ^ term_qname))
            | Some term_def -> (
                match
                  instantiate_op ~lookup ~op_lookup ~dialect:tdialect
                    term_def
                with
                | Error _ ->
                    Error
                      (Unsatisfiable_slot
                         ("region terminator " ^ term_qname))
                | Ok term ->
                    (* Move the terminator's placeholder operand sources
                       into the block so the IR stays well-scoped. *)
                    Graph.Op.iter_operands term ~f:(fun (v : Graph.value) ->
                        match Graph.Value.defining_op v with
                        | Some src when src.Graph.op_parent = None ->
                            Graph.Block.append block src
                        | _ -> ());
                    Graph.Block.append block term;
                    finish ()))
    in
    let rec build_regions acc = function
      | [] -> Ok (List.rev acc)
      | rd :: rest ->
          Result.bind (build_region rd) (fun r ->
              build_regions (r :: acc) rest)
    in
    Result.bind (build_regions [] op.op_regions) @@ fun regions ->
    let operands =
      List.map
        (fun ty ->
          Graph.Op.result (Graph.Op.create ~result_tys:[ ty ] "test.source") 0)
        operand_tys
    in
    Ok
      (Graph.Op.create ~operands ~result_tys ~attrs ~regions
         (dialect ^ "." ^ op.op_name))

let skip_reason_to_string = function
  | Is_terminator -> "terminator with successors"
  | Multiple_variadic_groups -> "multiple variadic groups"
  | Unsatisfiable_slot s -> "unsatisfiable " ^ s
