(** The public facade of the IRDL implementation.

    Typical use:

    {[
      let ctx = Irdl_ir.Context.create () in
      match Irdl_core.Irdl.load ctx source with
      | Ok dialects -> (* cmath &co are now registered; parse & verify IR *)
      | Error diag -> prerr_endline (Irdl_support.Diag.to_string diag)
    ]} *)

open Irdl_support

let ( let* ) = Result.bind

(** Parse IRDL source into ASTs. *)
let parse = Parser.parse_file

(** Parse, resolve and register every dialect in [src] into [ctx]. Returns
    the resolved dialects for introspection. *)
let load ?native ?compile ?file (ctx : Irdl_ir.Context.t) src :
    (Resolve.dialect list, Diag.t) result =
  let* asts = Parser.parse_file ?file src in
  let* resolved =
    List.fold_left
      (fun acc ast ->
        let* acc = acc in
        let* dl = Resolve.resolve_dialect ast in
        Ok (dl :: acc))
      (Ok []) asts
  in
  let resolved = List.rev resolved in
  let* () =
    List.fold_left
      (fun acc dl ->
        let* () = acc in
        Registration.register ?native ?compile ctx dl)
      (Ok ()) resolved
  in
  Ok resolved

(** Fail-soft variant of {!load}: every error across parsing, resolution
    and registration is emitted to [engine], and every definition that
    survives is registered — a dialect file with three mistakes reports all
    three in one run, and its good definitions still work. *)
let load_collect ?native ?compile ?file ~engine (ctx : Irdl_ir.Context.t) src
    : Resolve.dialect list =
  let asts =
    Parser.parse_file ?file ~engine src |> Result.value ~default:[]
  in
  let resolved =
    List.filter_map
      (fun ast -> Result.to_option (Resolve.resolve_dialect ~engine ast))
      asts
  in
  List.iter
    (fun dl ->
      List.iter (Diag.Engine.emit engine)
        (Registration.register_collect ?native ?compile ctx dl))
    resolved;
  resolved

(** [load] for sources containing exactly one dialect. *)
let load_one ?native ?compile ?file ctx src : (Resolve.dialect, Diag.t) result
    =
  let* dls = load ?native ?compile ?file ctx src in
  match dls with
  | [ dl ] -> Ok dl
  | dls ->
      Diag.errorf "expected exactly one dialect definition, found %d"
        (List.length dls)

(** Parse and resolve without registering (used by the analysis pipeline). *)
let analyze ?file src : (Resolve.dialect list, Diag.t) result =
  let* asts = Parser.parse_file ?file src in
  List.fold_left
    (fun acc ast ->
      let* acc = acc in
      let* dl = Resolve.resolve_dialect ast in
      Ok (acc @ [ dl ]))
    (Ok []) asts
