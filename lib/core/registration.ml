(** Dynamic dialect registration: resolved IRDL dialects into a live
    {!Irdl_ir.Context.t}.

    This is the paper's §3 payoff: "the compiler then instantiates all
    necessary data structures at runtime (without recompilation)". Every
    registered definition is a closure over the resolved constraints — the
    generated verifiers of Listing 2 — with no code generation involved.

    Variadic segmentation follows §4.6: with at most one variadic operand
    (or result) group the split is inferred from the arity; with several,
    the operation must carry an [operandSegmentSizes] ([resultSegmentSizes])
    array attribute. *)

open Irdl_support
open Irdl_ir
module C = Constraint_expr

let ( let* ) = Result.bind

(* ---------------------------------------------------------------- *)
(* Variadic slot assignment                                          *)
(* ---------------------------------------------------------------- *)

(** Split [values] across [slots], honouring variadic/optional slots.
    Returns the per-slot value groups. *)
let assign_slots ~what ~seg_attr ~(op : Graph.op) (slots : Resolve.slot list)
    (values : 'a list) : ('a list list, Diag.t) result =
  let n_slots = List.length slots in
  let n_values = List.length values in
  let variadics =
    List.filter (fun (s : Resolve.slot) -> C.is_variadic s.s_constraint) slots
  in
  let* sizes =
    match variadics with
    | [] ->
        if n_values = n_slots then Ok (List.map (fun _ -> 1) slots)
        else
          Diag.errorf ~loc:op.op_loc "'%s' expects %d %ss, got %d" op.op_name
            n_slots what n_values
    | [ v ] ->
        let group = n_values - (n_slots - 1) in
        if group < 0 then
          Diag.errorf ~loc:op.op_loc
            "'%s' expects at least %d %ss, got %d" op.op_name (n_slots - 1)
            what n_values
        else if C.is_optional v.s_constraint && group > 1 then
          Diag.errorf ~loc:op.op_loc
            "'%s': optional %s '%s' matched %d values" op.op_name what
            v.s_name group
        else
          Ok
            (List.map
               (fun (s : Resolve.slot) ->
                 if C.is_variadic s.s_constraint then group else 1)
               slots)
    | _ -> (
        (* Multiple variadic groups: segment sizes must be explicit. *)
        match Graph.Op.attr op seg_attr with
        | Some (Attr.Array entries) ->
            let* sizes =
              List.fold_left
                (fun acc (a : Attr.t) ->
                  let* acc = acc in
                  match a with
                  | Attr.Int { value; _ } -> Ok (Int64.to_int value :: acc)
                  | _ ->
                      Diag.errorf ~loc:op.op_loc
                        "'%s': %s must be an array of integers" op.op_name
                        seg_attr)
                (Ok []) entries
            in
            let sizes = List.rev sizes in
            if List.length sizes <> n_slots then
              Diag.errorf ~loc:op.op_loc
                "'%s': %s has %d entries but the operation defines %d %s \
                 groups"
                op.op_name seg_attr (List.length sizes) n_slots what
            else if List.fold_left ( + ) 0 sizes <> n_values then
              Diag.errorf ~loc:op.op_loc
                "'%s': %s sums to %d but there are %d %ss" op.op_name seg_attr
                (List.fold_left ( + ) 0 sizes)
                n_values what
            else begin
              let* () =
                List.fold_left2
                  (fun acc (s : Resolve.slot) size ->
                    let* () = acc in
                    if (not (C.is_variadic s.s_constraint)) && size <> 1 then
                      Diag.errorf ~loc:op.op_loc
                        "'%s': segment size of non-variadic %s '%s' must be \
                         1, got %d"
                        op.op_name what s.s_name size
                    else if C.is_optional s.s_constraint && size > 1 then
                      Diag.errorf ~loc:op.op_loc
                        "'%s': segment size of optional %s '%s' must be at \
                         most 1, got %d"
                        op.op_name what s.s_name size
                    else Ok ())
                  (Ok ()) slots sizes
              in
              Ok sizes
            end
        | Some _ ->
            Diag.errorf ~loc:op.op_loc "'%s': %s must be an array attribute"
              op.op_name seg_attr
        | None ->
            Diag.errorf ~loc:op.op_loc
              "'%s' has multiple variadic %s groups and needs a %s attribute"
              op.op_name what seg_attr)
  in
  (* Slice the value list according to the sizes. *)
  let rec slice values sizes acc =
    match sizes with
    | [] -> List.rev acc
    | size :: rest ->
        let rec take n vs taken =
          if n = 0 then (List.rev taken, vs)
          else
            match vs with
            | [] -> invalid_arg "assign_slots: size mismatch"
            | v :: tl -> take (n - 1) tl (v :: taken)
        in
        let group, remaining = take size values [] in
        slice remaining rest (group :: acc)
  in
  Ok (slice values sizes [])

(* ---------------------------------------------------------------- *)
(* Verifier generation (interpreted reference oracle)                *)
(* ---------------------------------------------------------------- *)

let check_slot_group ~native ~env ~(op : Graph.op) ~what (s : Resolve.slot)
    (tys : Attr.ty list) =
  let c = C.strip_variadic s.s_constraint in
  List.fold_left
    (fun acc ty ->
      let* env = acc in
      match C.verify_ty ~native ~env c ty with
      | Ok env -> Ok env
      | Error reason ->
          Diag.errorf ~loc:op.op_loc "'%s': %s '%s': %s" op.op_name what
            s.s_name reason)
    (Ok env) tys

(* Takes the slot types directly: callers use [Graph.Op.operand_tys] /
   [result_tys], which read the operand arrays without materializing an
   intermediate value list on the hot verification path. *)
let verify_value_slots ~native ~env ~op ~what ~seg_attr slots tys =
  let* groups = assign_slots ~what ~seg_attr ~op slots tys in
  List.fold_left2
    (fun acc slot group ->
      let* env = acc in
      check_slot_group ~native ~env ~op ~what slot group)
    (Ok env) slots groups

let verify_attributes ~native ~env ~(op : Graph.op)
    (slots : Resolve.slot list) =
  List.fold_left
    (fun acc (s : Resolve.slot) ->
      let* env = acc in
      match Graph.Op.attr op s.s_name with
      | None ->
          if C.is_optional s.s_constraint then Ok env
          else
            Diag.errorf ~loc:op.op_loc "'%s' requires attribute '%s'"
              op.op_name s.s_name
      | Some a -> (
          match C.verify ~native ~env (C.strip_variadic s.s_constraint) a with
          | Ok env -> Ok env
          | Error reason ->
              Diag.errorf ~loc:op.op_loc "'%s': attribute '%s': %s" op.op_name
                s.s_name reason))
    (Ok env) slots

let verify_regions ~native ~env ~(op : Graph.op) (rdefs : Resolve.region list)
    =
  if List.length op.regions <> List.length rdefs then
    Diag.errorf ~loc:op.op_loc "'%s' expects %d regions, got %d" op.op_name
      (List.length rdefs)
      (List.length op.regions)
  else
    List.fold_left2
      (fun acc (rd : Resolve.region) (region : Graph.region) ->
        let* env = acc in
        let* env =
          match Graph.Region.entry region with
          | None ->
              if rd.reg_args = [] && rd.reg_terminator = None then Ok env
              else
                Diag.errorf ~loc:op.op_loc
                  "'%s': region '%s' must not be empty" op.op_name rd.reg_name
          | Some entry ->
              verify_value_slots ~native ~env ~op ~what:"region argument"
                ~seg_attr:"regionArgSegmentSizes" rd.reg_args
                (List.map Graph.Value.ty (Graph.Block.args entry))
        in
        match rd.reg_terminator with
        | None -> Ok env
        | Some term_name -> (
            if Graph.Region.num_blocks region <> 1 then
              Diag.errorf ~loc:op.op_loc
                "'%s': region '%s' must consist of a single block" op.op_name
                rd.reg_name
            else
              match Graph.Region.entry region with
              | None -> assert false
              | Some entry -> (
                  match Graph.Block.terminator entry with
                  | Some last when last.op_name = term_name -> Ok env
                  | Some last ->
                      Diag.errorf ~loc:op.op_loc
                        "'%s': region '%s' must end with '%s', found '%s'"
                        op.op_name rd.reg_name term_name last.op_name
                  | None ->
                      Diag.errorf ~loc:op.op_loc
                        "'%s': region '%s' must end with '%s' but is empty"
                        op.op_name rd.reg_name term_name)))
      (Ok env) rdefs op.regions

let verify_successors ~(op : Graph.op) (succs : string list option) =
  match succs with
  | None ->
      if op.successors = [] then Ok ()
      else
        Diag.errorf ~loc:op.op_loc
          "'%s' is not a terminator and cannot have successors" op.op_name
  | Some names ->
      if List.length op.successors = List.length names then Ok ()
      else
        Diag.errorf ~loc:op.op_loc "'%s' expects %d successors, got %d"
          op.op_name (List.length names)
          (List.length op.successors)

let verify_cpp ~native ~(op : Graph.op) snippets =
  List.fold_left
    (fun acc snippet ->
      let* () = acc in
      match Native.check_op native snippet op with
      | Ok true -> Ok ()
      | Ok false ->
          Diag.errorf ~loc:op.op_loc "'%s' violates native constraint %S"
            op.op_name snippet
      | Error snippet ->
          Diag.errorf ~loc:op.op_loc
            "no native hook registered for %S (strict mode)" snippet)
    (Ok ()) snippets

(** The interpreted operation verifier: re-walks the resolved constraint
    tree on every check. Kept as the reference oracle for the compiled
    verifier below (differential tests, interpreted benchmarks). *)
let make_op_verifier_interp ~native (rop : Resolve.op) (op : Graph.op) :
    (unit, Diag.t) result =
  let env = C.empty_env in
  let* env =
    verify_value_slots ~native ~env ~op ~what:"operand"
      ~seg_attr:"operandSegmentSizes" rop.op_operands (Graph.Op.operand_tys op)
  in
  let* env =
    verify_value_slots ~native ~env ~op ~what:"result"
      ~seg_attr:"resultSegmentSizes" rop.op_results (Graph.Op.result_tys op)
  in
  let* env = verify_attributes ~native ~env ~op rop.op_attributes in
  let* _env = verify_regions ~native ~env ~op rop.op_regions in
  let* () = verify_successors ~op rop.op_successors in
  verify_cpp ~native ~op rop.op_cpp

let make_params_verifier_interp ~native ~what ~qual_name
    (slots : Resolve.slot list) (cpp : string list) (params : Attr.t list) :
    (unit, Diag.t) result =
  if List.length params <> List.length slots then
    Diag.errorf "%s '%s' expects %d parameters, got %d" what qual_name
      (List.length slots) (List.length params)
  else
    let* _env =
      List.fold_left2
        (fun acc (s : Resolve.slot) param ->
          let* env = acc in
          match C.verify ~native ~env s.s_constraint param with
          | Ok env -> Ok env
          | Error reason ->
              Diag.errorf "%s '%s': parameter '%s': %s" what qual_name
                s.s_name reason)
        (Ok C.empty_env) slots params
    in
    List.fold_left
      (fun acc snippet ->
        let* () = acc in
        match Native.check_def native snippet params with
        | Ok true -> Ok ()
        | Ok false ->
            Diag.errorf "%s '%s' violates native constraint %S" what qual_name
              snippet
        | Error snippet ->
            Diag.errorf "no native hook registered for %S (strict mode)"
              snippet)
      (Ok ()) cpp

(* ---------------------------------------------------------------- *)
(* Verifier generation (compiled)                                    *)
(* ---------------------------------------------------------------- *)

(* A slot whose (variadic-stripped) constraint has been lowered to a
   checker closure. The original slot rides along for [assign_slots] and
   diagnostics. *)
type cslot = {
  c_slot : Resolve.slot;
  c_optional : bool;
  c_check : C.checker;
}

let compile_slot ~native (s : Resolve.slot) =
  {
    c_slot = s;
    c_optional = C.is_optional s.s_constraint;
    c_check = C.compile ~native (C.strip_variadic s.s_constraint);
  }

(* A compiled operand/result/region-argument group: the raw slot list is
   kept pre-extracted so segmentation pays no per-verify allocation. *)
type cgroup = { g_raw : Resolve.slot list; g_slots : cslot list }

let compile_group ~native slots =
  { g_raw = slots; g_slots = List.map (compile_slot ~native) slots }

type cregion = { r_def : Resolve.region; r_args : cgroup }

let check_cslot_group ~env ~(op : Graph.op) ~what (cs : cslot)
    (tys : Attr.ty list) =
  List.fold_left
    (fun acc ty ->
      let* env = acc in
      match cs.c_check env (Attr.typ ty) with
      | Ok env -> Ok env
      | Error reason ->
          Diag.errorf ~loc:op.op_loc "'%s': %s '%s': %s" op.op_name what
            cs.c_slot.s_name reason)
    (Ok env) tys

let verify_value_cslots ~env ~op ~what ~seg_attr (g : cgroup) tys =
  let* groups = assign_slots ~what ~seg_attr ~op g.g_raw tys in
  List.fold_left2
    (fun acc cslot group ->
      let* env = acc in
      check_cslot_group ~env ~op ~what cslot group)
    (Ok env) g.g_slots groups

let verify_cattributes ~env ~(op : Graph.op) (cslots : cslot list) =
  List.fold_left
    (fun acc (cs : cslot) ->
      let* env = acc in
      match Graph.Op.attr op cs.c_slot.s_name with
      | None ->
          if cs.c_optional then Ok env
          else
            Diag.errorf ~loc:op.op_loc "'%s' requires attribute '%s'"
              op.op_name cs.c_slot.s_name
      | Some a -> (
          match cs.c_check env a with
          | Ok env -> Ok env
          | Error reason ->
              Diag.errorf ~loc:op.op_loc "'%s': attribute '%s': %s" op.op_name
                cs.c_slot.s_name reason))
    (Ok env) cslots

let verify_cregions ~env ~(op : Graph.op) (cregions : cregion list) =
  if List.length op.regions <> List.length cregions then
    Diag.errorf ~loc:op.op_loc "'%s' expects %d regions, got %d" op.op_name
      (List.length cregions)
      (List.length op.regions)
  else
    List.fold_left2
      (fun acc (cr : cregion) (region : Graph.region) ->
        let rd = cr.r_def in
        let* env = acc in
        let* env =
          match Graph.Region.entry region with
          | None ->
              if rd.reg_args = [] && rd.reg_terminator = None then Ok env
              else
                Diag.errorf ~loc:op.op_loc
                  "'%s': region '%s' must not be empty" op.op_name rd.reg_name
          | Some entry ->
              verify_value_cslots ~env ~op ~what:"region argument"
                ~seg_attr:"regionArgSegmentSizes" cr.r_args
                (List.map Graph.Value.ty (Graph.Block.args entry))
        in
        match rd.reg_terminator with
        | None -> Ok env
        | Some term_name -> (
            if Graph.Region.num_blocks region <> 1 then
              Diag.errorf ~loc:op.op_loc
                "'%s': region '%s' must consist of a single block" op.op_name
                rd.reg_name
            else
              match Graph.Region.entry region with
              | None -> assert false
              | Some entry -> (
                  match Graph.Block.terminator entry with
                  | Some last when last.op_name = term_name -> Ok env
                  | Some last ->
                      Diag.errorf ~loc:op.op_loc
                        "'%s': region '%s' must end with '%s', found '%s'"
                        op.op_name rd.reg_name term_name last.op_name
                  | None ->
                      Diag.errorf ~loc:op.op_loc
                        "'%s': region '%s' must end with '%s' but is empty"
                        op.op_name rd.reg_name term_name)))
      (Ok env) cregions op.regions

(** The generated operation verifier: the runtime analog of Listing 2's
    [MulOp::verify]. Partially applying to the resolved op compiles every
    slot constraint once — registration stores the returned closure, so
    verification never re-interprets the constraint tree. *)
let make_op_verifier ~native (rop : Resolve.op) : Graph.op ->
    (unit, Diag.t) result =
  let operands = compile_group ~native rop.op_operands in
  let results = compile_group ~native rop.op_results in
  let attributes = List.map (compile_slot ~native) rop.op_attributes in
  let regions =
    List.map
      (fun (rd : Resolve.region) ->
        { r_def = rd; r_args = compile_group ~native rd.reg_args })
      rop.op_regions
  in
  fun (op : Graph.op) ->
    let env = C.empty_env in
    let* env =
      verify_value_cslots ~env ~op ~what:"operand"
        ~seg_attr:"operandSegmentSizes" operands (Graph.Op.operand_tys op)
    in
    let* env =
      verify_value_cslots ~env ~op ~what:"result"
        ~seg_attr:"resultSegmentSizes" results (Graph.Op.result_tys op)
    in
    let* env = verify_cattributes ~env ~op attributes in
    let* _env = verify_cregions ~env ~op regions in
    let* () = verify_successors ~op rop.op_successors in
    verify_cpp ~native ~op rop.op_cpp

(** The generated type/attribute parameter verifier, compiled the same way:
    partial application up to [cpp] lowers every parameter constraint. *)
let make_params_verifier ~native ~what ~qual_name (slots : Resolve.slot list)
    (cpp : string list) : Attr.t list -> (unit, Diag.t) result =
  let n = List.length slots in
  let checks =
    List.map
      (fun (s : Resolve.slot) -> (s, C.compile ~native s.s_constraint))
      slots
  in
  fun (params : Attr.t list) ->
    if List.length params <> n then
      Diag.errorf "%s '%s' expects %d parameters, got %d" what qual_name n
        (List.length params)
    else
      let* _env =
        List.fold_left2
          (fun acc ((s : Resolve.slot), check) param ->
            let* env = acc in
            match check env param with
            | Ok env -> Ok env
            | Error reason ->
                Diag.errorf "%s '%s': parameter '%s': %s" what qual_name
                  s.s_name reason)
          (Ok C.empty_env) checks params
      in
      List.fold_left
        (fun acc snippet ->
          let* () = acc in
          match Native.check_def native snippet params with
          | Ok true -> Ok ()
          | Ok false ->
              Diag.errorf "%s '%s' violates native constraint %S" what
                qual_name snippet
          | Error snippet ->
              Diag.errorf "no native hook registered for %S (strict mode)"
                snippet)
        (Ok ()) cpp

(* ---------------------------------------------------------------- *)
(* Registration                                                      *)
(* ---------------------------------------------------------------- *)

(** Register a resolved dialect into [ctx], accumulating one error per
    definition that failed (duplicate registration, malformed declarative
    format) while all the others are registered. Compiles declarative
    formats eagerly so malformed specs fail at registration, not first use,
    and — unless [compile:false] selects the interpreted reference
    verifiers — lowers every constraint to its closure form once, here. *)
let register_collect ?(native = Native.default) ?(compile = true)
    (ctx : Context.t) (dl : Resolve.dialect) : Diag.t list =
  if Context.is_frozen ctx then
    (* One clean rejection up front instead of a per-definition error for
       every op/type/attr in the dialect. *)
    [
      Diag.error "cannot register dialect '%s': the context is frozen"
        dl.dl_name;
    ]
  else begin
  let errors = ref [] in
  (* Run one definition's registration; errors without a location get the
     definition's own. *)
  let guard ~loc f =
    match Diag.protect_any ~loc f with
    | Ok () -> ()
    | Error (d : Diag.t) ->
        let d =
          if Loc.is_unknown d.loc && not (Loc.is_unknown loc) then
            { d with loc }
          else d
        in
        errors := d :: !errors
  in
  let params_verifier ~what ~qual_name slots cpp =
    if compile then make_params_verifier ~native ~what ~qual_name slots cpp
    else make_params_verifier_interp ~native ~what ~qual_name slots cpp
  in
  let op_verifier rop =
    if compile then make_op_verifier ~native rop
    else make_op_verifier_interp ~native rop
  in
  let lookup_type_params ~dialect ~name =
    if dialect = dl.dl_name then
      List.find_opt (fun (t : Resolve.typedef) -> t.td_name = name) dl.dl_types
      |> Option.map (fun (t : Resolve.typedef) ->
             List.map (fun (s : Resolve.slot) -> s.s_name) t.td_params)
    else
      Context.lookup_type ctx ~dialect ~name
      |> Option.map (fun (_ : Context.type_def) -> [])
      (* Parameter names of foreign types are not recorded in the context;
         formats can only project through same-dialect types. *)
      |> fun o -> (match o with Some [] -> None | o -> o)
  in
  List.iter
    (fun (td : Resolve.typedef) ->
      guard ~loc:td.td_loc (fun () ->
          Context.register_type ctx
            {
              Context.td_dialect = dl.dl_name;
              td_name = td.td_name;
              td_summary = Option.value ~default:"" td.td_summary;
              td_num_params = List.length td.td_params;
              td_verify =
                (let qual_name = dl.dl_name ^ "." ^ td.td_name in
                 params_verifier ~what:"type" ~qual_name td.td_params
                   td.td_cpp);
            }))
    dl.dl_types;
  List.iter
    (fun (ad : Resolve.typedef) ->
      guard ~loc:ad.td_loc (fun () ->
          Context.register_attr ctx
            {
              Context.ad_dialect = dl.dl_name;
              ad_name = ad.td_name;
              ad_summary = Option.value ~default:"" ad.td_summary;
              ad_num_params = List.length ad.td_params;
              ad_verify =
                (let qual_name = dl.dl_name ^ "." ^ ad.td_name in
                 params_verifier ~what:"attribute" ~qual_name ad.td_params
                   ad.td_cpp);
            }))
    dl.dl_attrs;
  List.iter
    (fun (rop : Resolve.op) ->
      guard ~loc:rop.op_loc (fun () ->
          let od_format =
            match rop.op_format with
            | None -> None
            | Some _ -> (
                match Opformat.compile ~lookup_type_params dl.dl_name rop with
                | Ok f -> Some f
                | Error d -> raise (Diag.Error_exn d))
          in
          Context.register_op ctx
            {
              Context.od_dialect = dl.dl_name;
              od_name = rop.op_name;
              od_summary = Option.value ~default:"" rop.op_summary;
              od_is_terminator = rop.op_successors <> None;
              od_num_regions = List.length rop.op_regions;
              od_verify = op_verifier rop;
              od_format;
            }))
    dl.dl_ops;
  List.rev !errors
  end

(** Like {!register_collect}, reporting only the first error. Definitions
    after a failed one are still registered. *)
let register ?native ?compile (ctx : Context.t) (dl : Resolve.dialect) :
    (unit, Diag.t) result =
  match register_collect ?native ?compile ctx dl with
  | [] -> Ok ()
  | d :: _ -> Error d
