(** The IRDL-C++ escape hatch (paper §5), reinterpreted for OCaml.

    IRDL-C++ embeds generic C++ snippets in a spec ([CppConstraint],
    [CppParser], [CppPrinter]) and relies on the host compiler to give them
    meaning. Here the host language is OCaml: a registry binds each snippet —
    keyed by its verbatim text, optionally scoped to a dialect — to an OCaml
    closure. Snippets without a registered hook are exactly the paper's
    "requires generic C++" category: by default they verify vacuously and are
    counted (Logs debug), while [strict] mode turns them into hard errors.

    Hook kinds mirror where snippets appear:
    - {!register_param_hook}: [Constraint ... { CppConstraint "..." }] —
      predicate over a single parameter value ([$_self]);
    - {!register_def_hook}: [CppConstraint] inside a [Type]/[Attribute]
      definition — predicate over the full parameter list;
    - {!register_op_hook}: [CppConstraint] inside an [Operation] — predicate
      over the operation ([$_self]);
    - {!register_codec}: [TypeOrAttrParam]'s [CppParser]/[CppPrinter] pair —
      conversion between text and an {!Irdl_ir.Attr.Opaque} payload. *)

open Irdl_ir

type codec = {
  codec_parse : string -> Attr.t option;
  codec_print : Attr.t -> string option;
}

type t = {
  param_hooks : (string, Attr.t -> bool) Hashtbl.t;
  def_hooks : (string, Attr.t list -> bool) Hashtbl.t;
  op_hooks : (string, Graph.op -> bool) Hashtbl.t;
  codecs : (string, codec) Hashtbl.t;  (** keyed by TypeOrAttrParam name *)
  mutable strict : bool;
  unresolved : string list Atomic.t;
      (** Snippets looked up without a registered hook, most recent first;
          introspectable for tooling and tests. Atomic because the verifier
          notes unresolved snippets and verification may run on several
          domains against one shared registry. *)
}

let create ?(strict = false) () =
  {
    param_hooks = Hashtbl.create 16;
    def_hooks = Hashtbl.create 16;
    op_hooks = Hashtbl.create 16;
    codecs = Hashtbl.create 16;
    strict;
    unresolved = Atomic.make [];
  }

(** A shared default registry for convenience entry points. *)
let default = create ()

let src = Logs.Src.create "irdl.native" ~doc:"IRDL native-hook registry"

module Log = (val Logs.src_log src : Logs.LOG)

let register_param_hook t snippet f = Hashtbl.replace t.param_hooks snippet f
let register_def_hook t snippet f = Hashtbl.replace t.def_hooks snippet f
let register_op_hook t snippet f = Hashtbl.replace t.op_hooks snippet f
let register_codec t name codec = Hashtbl.replace t.codecs name codec

let find_codec t name = Hashtbl.find_opt t.codecs name

let note_unresolved t snippet =
  Log.debug (fun m -> m "no native hook registered for %S" snippet);
  (* CAS push: verification may note snippets from several domains at once. *)
  let rec push () =
    let cur = Atomic.get t.unresolved in
    if not (Atomic.compare_and_set t.unresolved cur (snippet :: cur)) then
      push ()
  in
  push ()

(* Hooks are arbitrary user closures; one that raises must not crash the
   verifier, so a raising hook counts as a failed constraint (with a
   warning naming the snippet). Out-of-memory is re-raised. *)
let apply_hook snippet f x =
  try f x with
  | Out_of_memory -> raise Out_of_memory
  | exn ->
      Log.warn (fun m ->
          m "native hook for %S raised %s; treating as failed" snippet
            (Printexc.to_string exn));
      false

(** Evaluate a snippet against a value. [Ok true]/[Ok false] when a hook is
    registered, [Ok true] with a note when unresolved and non-strict,
    [Error] when unresolved in strict mode. *)
let check_param t snippet value =
  match Hashtbl.find_opt t.param_hooks snippet with
  | Some f -> Ok (apply_hook snippet f value)
  | None ->
      if t.strict then Error snippet
      else (
        note_unresolved t snippet;
        Ok true)

let check_def t snippet params =
  match Hashtbl.find_opt t.def_hooks snippet with
  | Some f -> Ok (apply_hook snippet f params)
  | None ->
      if t.strict then Error snippet
      else (
        note_unresolved t snippet;
        Ok true)

let check_op t snippet op =
  match Hashtbl.find_opt t.op_hooks snippet with
  | Some f -> Ok (apply_hook snippet f op)
  | None ->
      if t.strict then Error snippet
      else (
        note_unresolved t snippet;
        Ok true)

let unresolved t = List.rev (Atomic.get t.unresolved)
let clear_unresolved t = Atomic.set t.unresolved []
