(** Name resolution: IRDL ASTs to resolved dialects.

    Classifies every surface reference (builtin constructors, builtin types,
    constraint variables, alias parameters, the dialect's own definitions,
    cross-dialect [dialect.name] references) and expands aliases — with
    cycle detection — so downstream passes never see them. *)

open Irdl_support
module C = Constraint_expr

type slot = { s_name : string; s_constraint : C.t; s_loc : Loc.t }
(** A named, constrained binder: parameter, operand, result, attribute or
    region argument. *)

type region = {
  reg_name : string;
  reg_args : slot list;
  reg_terminator : string option;  (** fully qualified op name *)
}

type op = {
  op_name : string;  (** mnemonic, unqualified *)
  op_summary : string option;
  op_vars : C.var list;
  op_operands : slot list;
  op_results : slot list;
  op_attributes : slot list;
  op_regions : region list;
  op_successors : string list option;
      (** [Some names] marks a terminator, even when empty (§4.6). *)
  op_format : string option;
  op_cpp : string list;  (** op-level [CppConstraint] snippets *)
  op_loc : Loc.t;
}

type typedef = {
  td_name : string;
  td_params : slot list;
  td_summary : string option;
  td_cpp : string list;
  td_loc : Loc.t;
}
(** A resolved type or attribute definition (isomorphic, §4.4). *)

type dialect = {
  dl_name : string;
  dl_types : typedef list;
  dl_attrs : typedef list;
  dl_ops : op list;
  dl_enums : Ast.enum_def list;
  dl_ast : Ast.dialect;  (** kept for introspection tooling and analysis *)
}

val resolve_dialect :
  ?engine:Diag.Engine.t -> Ast.dialect -> (dialect, Diag.t) result
(** Resolve a whole dialect definition.

    Without [engine] the resolve is fail-fast: it stops at the first
    error, returned as [Error]. With [engine] it is fail-soft: every error
    is emitted and resolution continues with the next definition, so one
    run reports all errors; definitions that fail to resolve are dropped
    from the returned dialect, and the result is [Error] (also emitted)
    only when the dialect scope itself could not be built. *)
