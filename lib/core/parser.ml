(** Recursive-descent parser for IRDL.

    The grammar is LL(1) over the token stream produced by {!Lexer}; IRDL
    keywords are contextual, so definition names may collide with them. *)

open Irdl_support

type t = {
  buf : Sbuf.t;
  engine : Diag.Engine.t option;
      (** when set, lexing and dialect bodies recover instead of aborting *)
  mutable lookahead : Lexer.t;
}

(* Lex the next token. In fail-soft mode lexer errors are emitted to the
   engine and lexing retried: every lexer raise leaves the buffer strictly
   advanced (or at end of file), so this terminates. *)
let next_token p =
  match p.engine with
  | None -> Lexer.next_token p.buf
  | Some e ->
      let rec go () =
        match Diag.protect (fun () -> Lexer.next_token p.buf) with
        | Ok t -> t
        | Error d ->
            Diag.Engine.emit e d;
            go ()
      in
      go ()

let create ?(file = "<string>") ?engine src =
  let buf = Sbuf.of_string ~file src in
  let p = { buf; engine; lookahead = { Lexer.tok = Lexer.Eof; loc = Loc.unknown } } in
  p.lookahead <- next_token p;
  p

let peek p = p.lookahead.tok
let loc p = p.lookahead.loc

let advance p =
  let t = p.lookahead in
  p.lookahead <- next_token p;
  t

let fail p fmt =
  Diag.raise_error ~loc:(loc p)
    ("at '%a': " ^^ fmt)
    Lexer.pp_token (peek p)

let expect_punct p s =
  match peek p with
  | Lexer.Punct s' when s = s' -> ignore (advance p)
  | _ -> fail p "expected '%s'" s

let accept_punct p s =
  match peek p with
  | Lexer.Punct s' when s = s' ->
      ignore (advance p);
      true
  | _ -> false

let expect_ident p =
  match peek p with
  | Lexer.Ident s ->
      ignore (advance p);
      s
  | _ -> fail p "expected identifier"

let expect_string p =
  match peek p with
  | Lexer.Str s ->
      ignore (advance p);
      s
  | _ -> fail p "expected string literal"

let accept_keyword p kw =
  match peek p with
  | Lexer.Ident s when s = kw ->
      ignore (advance p);
      true
  | _ -> false

(* --------------------------------------------------------------- *)
(* Constraint expressions                                           *)
(* --------------------------------------------------------------- *)

let rec parse_cexpr p : Ast.cexpr =
  let start = loc p in
  match peek p with
  | Lexer.Int_lit value ->
      ignore (advance p);
      let kind =
        if accept_punct p ":" then Some (expect_ident p) else None
      in
      Ast.C_int { value; kind; loc = Loc.merge start (loc p) }
  | Lexer.Str value ->
      ignore (advance p);
      Ast.C_string { value; loc = start }
  | Lexer.Punct "[" ->
      ignore (advance p);
      let elems =
        if accept_punct p "]" then []
        else
          let rec go acc =
            let e = parse_cexpr p in
            if accept_punct p "," then go (e :: acc)
            else (
              expect_punct p "]";
              List.rev (e :: acc))
          in
          go []
      in
      Ast.C_list { elems; loc = Loc.merge start (loc p) }
  | Lexer.Ident name ->
      ignore (advance p);
      parse_ref_args p ~prefix:Ast.P_bare ~name ~start
  | Lexer.Bang_ident name ->
      ignore (advance p);
      parse_ref_args p ~prefix:Ast.P_type ~name ~start
  | Lexer.Hash_ident name ->
      ignore (advance p);
      parse_ref_args p ~prefix:Ast.P_attr ~name ~start
  | _ -> fail p "expected a constraint expression"

and parse_ref_args p ~prefix ~name ~start : Ast.cexpr =
  let args =
    if accept_punct p "<" then
      if accept_punct p ">" then Some []
      else
        let rec go acc =
          let e = parse_cexpr p in
          if accept_punct p "," then go (e :: acc)
          else (
            expect_punct p ">";
            List.rev (e :: acc))
        in
        Some (go [])
    else None
  in
  Ast.C_ref { prefix; name; args; loc = Loc.merge start (loc p) }

(* --------------------------------------------------------------- *)
(* Binder lists: (name: constraint, ...)                            *)
(* --------------------------------------------------------------- *)

(** Binder names may carry a decorative [!]/[#] prefix, as in the paper's
    [ConstraintVar (!T: !complex<FloatType>)]. *)
let parse_binder_name p =
  match peek p with
  | Lexer.Ident s | Lexer.Bang_ident s | Lexer.Hash_ident s ->
      ignore (advance p);
      s
  | _ -> fail p "expected binder name"

let parse_params p : Ast.param list =
  expect_punct p "(";
  if accept_punct p ")" then []
  else
    let rec go acc =
      let p_loc = loc p in
      let p_name = parse_binder_name p in
      expect_punct p ":";
      let p_constraint = parse_cexpr p in
      let param = { Ast.p_name; p_constraint; p_loc } in
      if accept_punct p "," then go (param :: acc)
      else (
        expect_punct p ")";
        List.rev (param :: acc))
    in
    go []

(* --------------------------------------------------------------- *)
(* Definitions                                                      *)
(* --------------------------------------------------------------- *)

type type_like_acc = {
  mutable tl_params : Ast.param list;
  mutable tl_summary : string option;
  mutable tl_cpp : string list;
}

let parse_type_like_body p =
  expect_punct p "{";
  let acc = { tl_params = []; tl_summary = None; tl_cpp = [] } in
  let rec go () =
    if accept_punct p "}" then ()
    else if accept_keyword p "Parameters" then (
      acc.tl_params <- acc.tl_params @ parse_params p;
      go ())
    else if accept_keyword p "Summary" then (
      acc.tl_summary <- Some (expect_string p);
      go ())
    else if accept_keyword p "CppConstraint" then (
      acc.tl_cpp <- acc.tl_cpp @ [ expect_string p ];
      go ())
    else fail p "expected Parameters, Summary, CppConstraint or '}'"
  in
  go ();
  acc

let parse_type_def p ~start : Ast.type_def =
  let t_name = expect_ident p in
  let acc = parse_type_like_body p in
  {
    t_name;
    t_params = acc.tl_params;
    t_summary = acc.tl_summary;
    t_cpp_constraints = acc.tl_cpp;
    t_loc = Loc.merge start (loc p);
  }

let parse_attr_def p ~start : Ast.attr_def =
  let a_name = expect_ident p in
  let acc = parse_type_like_body p in
  {
    a_name;
    a_params = acc.tl_params;
    a_summary = acc.tl_summary;
    a_cpp_constraints = acc.tl_cpp;
    a_loc = Loc.merge start (loc p);
  }

let parse_region_def p : Ast.region_def =
  let r_loc = loc p in
  let r_name = expect_ident p in
  expect_punct p "{";
  let args = ref [] in
  let terminator = ref None in
  let rec go () =
    if accept_punct p "}" then ()
    else if accept_keyword p "Arguments" then (
      args := !args @ parse_params p;
      go ())
    else if accept_keyword p "Terminator" then (
      terminator := Some (expect_ident p);
      go ())
    else fail p "expected Arguments, Terminator or '}' in region definition"
  in
  go ();
  { r_name; r_args = !args; r_terminator = !terminator; r_loc }

let parse_successors p =
  expect_punct p "(";
  if accept_punct p ")" then []
  else
    let rec go acc =
      let s = parse_binder_name p in
      if accept_punct p "," then go (s :: acc)
      else (
        expect_punct p ")";
        List.rev (s :: acc))
    in
    go []

let parse_op_def p ~start : Ast.op_def =
  let o_name = expect_ident p in
  expect_punct p "{";
  let summary = ref None in
  let cvars = ref [] in
  let operands = ref [] in
  let results = ref [] in
  let attributes = ref [] in
  let regions = ref [] in
  let successors = ref None in
  let format = ref None in
  let cpp = ref [] in
  let rec go () =
    if accept_punct p "}" then ()
    else begin
      (if accept_keyword p "Summary" then summary := Some (expect_string p)
       else if accept_keyword p "ConstraintVar" || accept_keyword p "ConstraintVars"
       then cvars := !cvars @ parse_params p
       else if accept_keyword p "Operands" then
         operands := !operands @ parse_params p
       else if accept_keyword p "Results" then
         results := !results @ parse_params p
       else if accept_keyword p "Attributes" then
         attributes := !attributes @ parse_params p
       else if accept_keyword p "Region" then
         regions := !regions @ [ parse_region_def p ]
       else if accept_keyword p "Successors" then
         successors := Some (parse_successors p)
       else if accept_keyword p "Format" then format := Some (expect_string p)
       else if accept_keyword p "CppConstraint" then
         cpp := !cpp @ [ expect_string p ]
       else
         fail p
           "expected an operation field (Summary, ConstraintVar(s), \
            Operands, Results, Attributes, Region, Successors, Format, \
            CppConstraint) or '}'");
      go ()
    end
  in
  go ();
  {
    o_name;
    o_summary = !summary;
    o_constraint_vars = !cvars;
    o_operands = !operands;
    o_results = !results;
    o_attributes = !attributes;
    o_regions = !regions;
    o_successors = !successors;
    o_format = !format;
    o_cpp_constraints = !cpp;
    o_loc = Loc.merge start (loc p);
  }

let parse_alias_def p ~start : Ast.alias_def =
  let al_prefix, al_name =
    match peek p with
    | Lexer.Ident s ->
        ignore (advance p);
        (Ast.P_bare, s)
    | Lexer.Bang_ident s ->
        ignore (advance p);
        (Ast.P_type, s)
    | Lexer.Hash_ident s ->
        ignore (advance p);
        (Ast.P_attr, s)
    | _ -> fail p "expected alias name"
  in
  let al_params =
    if accept_punct p "<" then
      let rec go acc =
        let s = parse_binder_name p in
        if accept_punct p "," then go (s :: acc)
        else (
          expect_punct p ">";
          List.rev (s :: acc))
      in
      go []
    else []
  in
  expect_punct p "=";
  let al_body = parse_cexpr p in
  { al_prefix; al_name; al_params; al_body; al_loc = Loc.merge start (loc p) }

let parse_enum_def p ~start : Ast.enum_def =
  let e_name = expect_ident p in
  expect_punct p "{";
  let cases =
    if accept_punct p "}" then []
    else
      let rec go acc =
        let c = expect_ident p in
        if accept_punct p "," then go (c :: acc)
        else (
          expect_punct p "}";
          List.rev (c :: acc))
      in
      go []
  in
  { e_name; e_cases = cases; e_loc = Loc.merge start (loc p) }

let parse_constraint_def p ~start : Ast.constraint_def =
  let c_name = expect_ident p in
  expect_punct p ":";
  let c_base = parse_cexpr p in
  expect_punct p "{";
  let summary = ref None in
  let cpp = ref [] in
  let rec go () =
    if accept_punct p "}" then ()
    else if accept_keyword p "Summary" then (
      summary := Some (expect_string p);
      go ())
    else if accept_keyword p "CppConstraint" then (
      cpp := !cpp @ [ expect_string p ];
      go ())
    else fail p "expected Summary, CppConstraint or '}'"
  in
  go ();
  {
    c_name;
    c_base;
    c_summary = !summary;
    c_cpp_constraints = !cpp;
    c_loc = Loc.merge start (loc p);
  }

let parse_param_def p ~start : Ast.param_def =
  let tp_name = expect_ident p in
  expect_punct p "{";
  let summary = ref None in
  let class_name = ref None in
  let parser_ = ref None in
  let printer = ref None in
  let rec go () =
    if accept_punct p "}" then ()
    else if accept_keyword p "Summary" then (
      summary := Some (expect_string p);
      go ())
    else if accept_keyword p "CppClassName" then (
      class_name := Some (expect_string p);
      go ())
    else if accept_keyword p "CppParser" then (
      parser_ := Some (expect_string p);
      go ())
    else if accept_keyword p "CppPrinter" then (
      printer := Some (expect_string p);
      go ())
    else fail p "expected Summary, CppClassName, CppParser, CppPrinter or '}'"
  in
  go ();
  let tp_class_name =
    match !class_name with
    | Some c -> c
    | None ->
        Diag.raise_error ~loc:start "TypeOrAttrParam '%s' needs a CppClassName"
          tp_name
  in
  {
    tp_name;
    tp_summary = !summary;
    tp_class_name;
    tp_parser = !parser_;
    tp_printer = !printer;
    tp_loc = Loc.merge start (loc p);
  }

let parse_item p : Ast.item =
  let start = loc p in
  if accept_keyword p "Type" then Ast.I_type (parse_type_def p ~start)
  else if accept_keyword p "Attribute" then Ast.I_attr (parse_attr_def p ~start)
  else if accept_keyword p "Operation" then Ast.I_op (parse_op_def p ~start)
  else if accept_keyword p "Alias" then Ast.I_alias (parse_alias_def p ~start)
  else if accept_keyword p "Enum" then Ast.I_enum (parse_enum_def p ~start)
  else if accept_keyword p "Constraint" then
    Ast.I_constraint (parse_constraint_def p ~start)
  else if accept_keyword p "TypeOrAttrParam" then
    Ast.I_param (parse_param_def p ~start)
  else
    fail p
      "expected a dialect item (Type, Attribute, Operation, Alias, Enum, \
       Constraint, TypeOrAttrParam)"

let item_keywords =
  [ "Type"; "Attribute"; "Operation"; "Alias"; "Enum"; "Constraint";
    "TypeOrAttrParam" ]

(* Panic-mode resynchronization after a failed item: skip tokens until
   something that can start the next item, a new [Dialect] (a missing
   brace), or end of file. Braces are tracked so sync keywords inside a
   nested body are not mistaken for item starts. A '}' at depth 0 is
   ambiguous — the broken item's own closer or the dialect's — so it is
   consumed tentatively: when an item keyword follows it belonged to the
   item ([`Item]); when [Dialect]/EOF follows it closed the dialect
   ([`Closed]). *)
let resync_item p =
  let rec go depth ~closed =
    match peek p with
    | Lexer.Eof -> if closed then `Closed else `Eof
    | Lexer.Punct "}" when depth = 0 ->
        ignore (advance p);
        go 0 ~closed:true
    | Lexer.Punct "}" ->
        ignore (advance p);
        go (depth - 1) ~closed
    | Lexer.Punct "{" ->
        ignore (advance p);
        go (depth + 1) ~closed
    | Lexer.Ident kw when depth = 0 && List.mem kw item_keywords -> `Item
    | Lexer.Ident "Dialect" when depth = 0 ->
        if closed then `Closed else `Dialect
    | _ ->
        ignore (advance p);
        go depth ~closed
  in
  go 0 ~closed:false

let parse_dialect_body p ~start : Ast.dialect =
  let d_name = expect_ident p in
  expect_punct p "{";
  let items = ref [] in
  let continue = ref true in
  while !continue do
    if accept_punct p "}" then continue := false
    else
      match (peek p, p.engine) with
      | Lexer.Eof, None -> items := parse_item p :: !items (* fail as before *)
      | Lexer.Eof, Some e ->
          Diag.Engine.emit e
            (Diag.error ~loc:(loc p) "unexpected end of file in dialect '%s'"
               d_name);
          continue := false
      | _, None -> items := parse_item p :: !items
      | _, Some e -> (
          match Diag.protect (fun () -> parse_item p) with
          | Ok item -> items := item :: !items
          | Error d ->
              Diag.Engine.emit e d;
              if Diag.Engine.limit_reached e then continue := false
              else
                (match resync_item p with
                | `Item -> () (* next iteration parses it *)
                | `Closed | `Dialect | `Eof -> continue := false))
  done;
  { d_name; d_items = List.rev !items; d_loc = Loc.merge start (loc p) }

(** Parse one [Dialect name { ... }]. *)
let parse_dialect p : Ast.dialect =
  let start = loc p in
  if accept_keyword p "Dialect" then parse_dialect_body p ~start
  else fail p "expected 'Dialect'"

(* Skip to the next top-level [Dialect] keyword (or end of file) after a
   failed dialect, tracking braces so nested occurrences don't count. *)
let resync_dialect p =
  let rec go depth =
    match peek p with
    | Lexer.Eof -> ()
    | Lexer.Ident "Dialect" when depth = 0 -> ()
    | Lexer.Punct "{" ->
        ignore (advance p);
        go (depth + 1)
    | Lexer.Punct "}" ->
        ignore (advance p);
        go (max 0 (depth - 1))
    | _ ->
        ignore (advance p);
        go depth
  in
  go 0

(** Parse a whole IRDL file: a sequence of dialect definitions.

    Without [engine] the parse is fail-fast: the first error aborts and is
    returned as [Error]. With [engine] it is fail-soft: every error is
    emitted to the engine with resynchronization at item and dialect
    boundaries, and the result is always [Ok] with the dialects whose
    headers parsed (keeping the items that survived). *)
let parse_file ?file ?engine src : (Ast.dialect list, Diag.t) result =
  match engine with
  | None ->
      Diag.protect_any (fun () ->
          let p = create ?file src in
          let rec go acc =
            match peek p with
            | Lexer.Eof -> List.rev acc
            | _ -> go (parse_dialect p :: acc)
          in
          go [])
  | Some engine ->
      Ok
        (match
           Diag.protect_any (fun () ->
               let p = create ?file ~engine src in
               let dialects = ref [] in
               let continue = ref true in
               while !continue do
                 match peek p with
                 | Lexer.Eof -> continue := false
                 | _ when Diag.Engine.limit_reached engine -> continue := false
                 | _ -> (
                     let before = (loc p).start_pos.offset in
                     match Diag.protect (fun () -> parse_dialect p) with
                     | Ok d -> dialects := d :: !dialects
                     | Error d ->
                         Diag.Engine.emit engine d;
                         resync_dialect p;
                         (* Belt and braces: never loop without consuming. *)
                         if
                           (loc p).start_pos.offset = before
                           && peek p <> Lexer.Eof
                         then ignore (advance p))
               done;
               List.rev !dialects)
         with
        | Ok ds -> ds
        | Error d ->
            Diag.Engine.emit engine d;
            [])

(** Parse a source expected to contain exactly one dialect. *)
let parse_one ?file src : (Ast.dialect, Diag.t) result =
  match parse_file ?file src with
  | Error _ as e -> e
  | Ok [ d ] -> Ok d
  | Ok ds ->
      Diag.errorf "expected exactly one dialect definition, found %d"
        (List.length ds)

(** Parse a standalone constraint expression (used by tests and tooling). *)
let parse_constraint_string ?file src : (Ast.cexpr, Diag.t) result =
  Diag.protect_any (fun () ->
      let p = create ?file src in
      let e = parse_cexpr p in
      match peek p with
      | Lexer.Eof -> e
      | _ -> fail p "trailing input after constraint")
