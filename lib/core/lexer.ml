(** Lexer for the IRDL surface syntax (paper §4).

    IRDL keywords ([Dialect], [Operation], [Operands], ...) are lexed as plain
    identifiers and recognized by the parser, so that they remain usable as
    definition names (MLIR dialects do define ops called e.g. [type]). *)

open Irdl_support

type token =
  | Ident of string  (** bare identifier, possibly dotted: [signedness.Signed] *)
  | Bang_ident of string  (** [!f32], [!cmath.complex] *)
  | Hash_ident of string  (** [#f32_attr] *)
  | Int_lit of int64
  | Str of string
  | Punct of string  (** one of [{ } ( ) < > , : = [ ] -] *)
  | Eof

type t = { tok : token; loc : Loc.t }

let pp_token ppf = function
  | Ident s -> Fmt.string ppf s
  | Bang_ident s -> Fmt.pf ppf "!%s" s
  | Hash_ident s -> Fmt.pf ppf "#%s" s
  | Int_lit i -> Fmt.pf ppf "%Ld" i
  | Str s -> Fmt.pf ppf "%S" s
  | Punct s -> Fmt.string ppf s
  | Eof -> Fmt.string ppf "<eof>"

let dotted_ident_char c = Sbuf.is_ident_char c || c = '.'

let rec skip_trivia buf =
  Sbuf.skip_while buf Sbuf.is_space;
  match (Sbuf.peek buf, Sbuf.peek2 buf) with
  | Some '/', Some '/' ->
      Sbuf.skip_while buf (fun c -> c <> '\n');
      skip_trivia buf
  | _ -> ()

let lex_string buf start =
  let b = Buffer.create 16 in
  let rec go () =
    match Sbuf.next buf with
    | None -> Diag.raise_error ~loc:(Loc.point start) "unterminated string"
    | Some '"' -> Buffer.contents b
    | Some '\\' -> (
        match Sbuf.next buf with
        | Some 'n' -> Buffer.add_char b '\n'; go ()
        | Some 't' -> Buffer.add_char b '\t'; go ()
        | Some '"' -> Buffer.add_char b '"'; go ()
        | Some '\\' -> Buffer.add_char b '\\'; go ()
        | Some c -> Buffer.add_char b c; go ()
        | None ->
            Diag.raise_error ~loc:(Loc.point start) "unterminated string")
    | Some c ->
        Buffer.add_char b c;
        go ()
  in
  go ()

let lex_int buf start text =
  match Int64.of_string_opt text with
  | Some v -> v
  | None ->
      Diag.raise_error
        ~loc:(Sbuf.loc_from buf start)
        "integer literal '%s' out of range" text

let next_token buf : t =
  skip_trivia buf;
  let start = Sbuf.pos buf in
  let mk tok = { tok; loc = Sbuf.loc_from buf start } in
  match Sbuf.peek buf with
  | None -> mk Eof
  | Some '"' ->
      Sbuf.advance buf;
      mk (Str (lex_string buf start))
  | Some '!' ->
      Sbuf.advance buf;
      mk (Bang_ident (Sbuf.take_while buf dotted_ident_char))
  | Some '#' ->
      Sbuf.advance buf;
      mk (Hash_ident (Sbuf.take_while buf dotted_ident_char))
  | Some c when Sbuf.is_digit c ->
      let text = Sbuf.take_while buf Sbuf.is_digit in
      mk (Int_lit (lex_int buf start text))
  | Some '-' when (match Sbuf.peek2 buf with
                   | Some c -> Sbuf.is_digit c
                   | None -> false) ->
      Sbuf.advance buf;
      let text = Sbuf.take_while buf Sbuf.is_digit in
      mk (Int_lit (Int64.neg (lex_int buf start text)))
  | Some c when Sbuf.is_ident_start c ->
      mk (Ident (Sbuf.take_while buf dotted_ident_char))
  | Some (('{' | '}' | '(' | ')' | '<' | '>' | ',' | ':' | '=' | '[' | ']' | '-') as c)
    ->
      Sbuf.advance buf;
      mk (Punct (String.make 1 c))
  | Some c ->
      (* Consume the offending character so every lexer error leaves the
         buffer strictly advanced — the recovering parsers rely on that to
         retry lexing without looping. *)
      Sbuf.advance buf;
      Diag.raise_error ~loc:(Loc.point start) "unexpected character %C" c

(** Lex a whole buffer; used by tests and the round-trip property checks. *)
let tokenize ?(file = "<string>") src =
  let buf = Sbuf.of_string ~file src in
  let rec go acc =
    let t = next_token buf in
    match t.tok with Eof -> List.rev (t :: acc) | _ -> go (t :: acc)
  in
  go []
