(** Resolved IRDL constraints and their evaluator: every constructor of the
    paper's Figure 2, plus the IRDL-C++ extensions of §5. Constraints range
    uniformly over the attribute domain; a constrained {e type} is checked
    as [Attr.Type ty]. *)

open Irdl_ir

type int_kind = { ik_width : int; ik_signedness : Attr.signedness }

type t =
  | Any  (** [AnyParam] *)
  | Any_type  (** [!AnyType] *)
  | Any_attr  (** [#AnyAttr] *)
  | Eq of Attr.t
      (** Equality with a concrete type ([!f32]), value ([3 : int32_t],
          ["foo"]) or enum constructor ([signedness.Signed]). *)
  | Base_type of { dialect : string; name : string; params : t list option }
      (** [!complex] ([params = None]) or [!complex<pc1, ...>]. *)
  | Base_attr of { dialect : string; name : string; params : t list option }
  | Int_param of int_kind  (** [int32_t], [uint8_t], ... *)
  | Float_param of Attr.float_kind option  (** [#f32_attr]; [None] = any *)
  | String_param  (** [string] *)
  | Symbol_param  (** [symbol] *)
  | Bool_param
  | Location_param
  | Type_id_param
  | Enum_param of { dialect : string; enum : string }
      (** Any constructor of the enum (§4.8). *)
  | Array_any  (** [array] *)
  | Array_of of t  (** [array<pc>] *)
  | Array_exact of t list  (** [[pc1, ..., pcN]] *)
  | Any_of of t list
  | And of t list
  | Not of t
  | Var of var  (** A [ConstraintVars] variable use. *)
  | Native of { name : string; base : t; snippets : string list }
      (** IRDL-C++ [Constraint] definition (§5.1). *)
  | Native_param of { name : string; class_name : string }
      (** IRDL-C++ [TypeOrAttrParam] (§5.2): matches [Attr.Opaque] values
          tagged with [name]. *)
  | Variadic of t  (** Top-level only, in operand/result/region-arg slots. *)
  | Optional of t

and var = { v_name : string; v_constraint : t }

module Env : Map.S with type key = string

type env = Attr.t Env.t
(** Constraint-variable bindings: the first successful check against a
    variable binds it; later checks require equality (paper §4.6). *)

val empty_env : env

val verify : native:Native.t -> env:env -> t -> Attr.t -> (env, string) result
(** Check an attribute against a constraint; returns the (possibly
    extended) environment on success, a human-readable reason on failure. *)

val verify_ty :
  native:Native.t -> env:env -> t -> Attr.ty -> (env, string) result

type checker = env -> Attr.t -> (env, string) result
(** A pre-compiled constraint check: the closure form {!compile} lowers a
    resolved constraint tree into. *)

val compile : native:Native.t -> t -> checker
(** Lower the constraint once — at registration time — into closures:
    [Eq] becomes a physical-equality test against the interned value,
    [Any_of]/[And] become pre-built closure arrays, parameter kinds become
    direct tag tests. Observationally equivalent to {!verify} (same
    accept/reject, same environment bindings, same failure messages); the
    interpreted {!verify} remains the reference oracle. *)

val compile_ty :
  native:Native.t -> t -> env -> Attr.ty -> (env, string) result
(** {!compile} for type checks: wraps the checked type as [Attr.Type]. *)

val is_variadic : t -> bool
(** [Variadic] or [Optional] at the top level. *)

val is_optional : t -> bool
val strip_variadic : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
