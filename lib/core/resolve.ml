(** Name resolution: IRDL ASTs to resolved dialects.

    Resolution classifies every surface reference (paper §4.2): builtin
    constraint constructors, builtin types, constraint variables, parametric
    alias parameters, then the current dialect's own types, attributes,
    aliases, enums, [Constraint] and [TypeOrAttrParam] definitions, and
    finally cross-dialect references through their [dialect.name] spelling.
    Aliases are expanded here (with cycle detection), so downstream passes
    never see them. *)

open Irdl_support
module C = Constraint_expr

module SMap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Resolved representation                                             *)
(* ------------------------------------------------------------------ *)

type slot = { s_name : string; s_constraint : C.t; s_loc : Loc.t }

type region = {
  reg_name : string;
  reg_args : slot list;
  reg_terminator : string option;  (** fully qualified op name *)
}

type op = {
  op_name : string;  (** mnemonic, unqualified *)
  op_summary : string option;
  op_vars : C.var list;
  op_operands : slot list;
  op_results : slot list;
  op_attributes : slot list;
  op_regions : region list;
  op_successors : string list option;
  op_format : string option;
  op_cpp : string list;
  op_loc : Loc.t;
}

(** A resolved type or attribute definition (they are isomorphic, §4.4). *)
type typedef = {
  td_name : string;
  td_params : slot list;
  td_summary : string option;
  td_cpp : string list;
  td_loc : Loc.t;
}

type dialect = {
  dl_name : string;
  dl_types : typedef list;
  dl_attrs : typedef list;
  dl_ops : op list;
  dl_enums : Ast.enum_def list;
  dl_ast : Ast.dialect;  (** kept for introspection tooling and analysis *)
}

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

type scope = {
  dialect_name : string;
  ty_defs : Ast.type_def SMap.t;
  at_defs : Ast.attr_def SMap.t;
  alias_defs : Ast.alias_def SMap.t;
  enum_defs : Ast.enum_def SMap.t;
  constraint_defs : Ast.constraint_def SMap.t;
  param_defs : Ast.param_def SMap.t;
  op_names : unit SMap.t;  (** operations defined by this dialect *)
  vars : C.var SMap.t;  (** in-scope constraint variables *)
  subst : C.t SMap.t;  (** parametric-alias argument substitution *)
  expanding : string list;  (** alias expansion stack, for cycle detection *)
}

let scope_of_dialect ?on_dup (d : Ast.dialect) =
  (* Duplicate definitions raise by default; a fail-soft caller passes
     [on_dup] to record the error and keep the first definition. *)
  let add_named name v map loc what =
    if SMap.mem name map then begin
      let diag =
        Diag.error ~loc "duplicate %s definition '%s' in dialect %s" what name
          d.d_name
      in
      match on_dup with
      | None -> raise (Diag.Error_exn diag)
      | Some f ->
          f diag;
          map
    end
    else SMap.add name v map
  in
  List.fold_left
    (fun sc item ->
      match (item : Ast.item) with
      | Ast.I_type t ->
          { sc with ty_defs = add_named t.t_name t sc.ty_defs t.t_loc "type" }
      | Ast.I_attr a ->
          {
            sc with
            at_defs = add_named a.a_name a sc.at_defs a.a_loc "attribute";
          }
      | Ast.I_alias a ->
          {
            sc with
            alias_defs = add_named a.al_name a sc.alias_defs a.al_loc "alias";
          }
      | Ast.I_enum e ->
          { sc with enum_defs = add_named e.e_name e sc.enum_defs e.e_loc "enum" }
      | Ast.I_constraint c ->
          {
            sc with
            constraint_defs =
              add_named c.c_name c sc.constraint_defs c.c_loc "constraint";
          }
      | Ast.I_param tp ->
          {
            sc with
            param_defs =
              add_named tp.tp_name tp sc.param_defs tp.tp_loc
                "TypeOrAttrParam";
          }
      | Ast.I_op o -> { sc with op_names = SMap.add o.o_name () sc.op_names })
    {
      dialect_name = d.d_name;
      ty_defs = SMap.empty;
      at_defs = SMap.empty;
      alias_defs = SMap.empty;
      enum_defs = SMap.empty;
      constraint_defs = SMap.empty;
      param_defs = SMap.empty;
      op_names = SMap.empty;
      vars = SMap.empty;
      subst = SMap.empty;
      expanding = [];
    }
    d.d_items

(* ------------------------------------------------------------------ *)
(* Builtin names                                                       *)
(* ------------------------------------------------------------------ *)

let int_kind_of_name name : C.int_kind option =
  let of_prefix prefix signedness =
    let plen = String.length prefix in
    let slen = String.length name in
    if
      slen > plen + 2
      && String.sub name 0 plen = prefix
      && String.sub name (slen - 2) 2 = "_t"
    then
      let digits = String.sub name plen (slen - plen - 2) in
      if digits <> "" && String.for_all Sbuf.is_digit digits then
        match int_of_string_opt digits with
        | Some width -> Some { C.ik_width = width; ik_signedness = signedness }
        | None -> None (* absurdly wide: not an integer kind *)
      else None
    else None
  in
  match of_prefix "uint" Irdl_ir.Attr.Unsigned with
  | Some k -> Some k
  | None -> of_prefix "int" Irdl_ir.Attr.Signed

(** [iN_attr] / [f32_attr]-style builtin value-attribute constraints. *)
let value_attr_of_name name : C.t option =
  match name with
  | "f16_attr" -> Some (C.Float_param (Some Irdl_ir.Attr.F16))
  | "f32_attr" -> Some (C.Float_param (Some Irdl_ir.Attr.F32))
  | "f64_attr" -> Some (C.Float_param (Some Irdl_ir.Attr.F64))
  | "bf16_attr" -> Some (C.Float_param (Some Irdl_ir.Attr.BF16))
  | "float_attr" -> Some (C.Float_param None)
  | _ ->
      let slen = String.length name in
      if
        slen > 6
        && name.[0] = 'i'
        && String.sub name (slen - 5) 5 = "_attr"
        && String.for_all Sbuf.is_digit (String.sub name 1 (slen - 6))
      then
        match int_of_string_opt (String.sub name 1 (slen - 6)) with
        | Some width ->
            Some
              (C.Int_param
                 { C.ik_width = width; ik_signedness = Irdl_ir.Attr.Signless })
        | None -> None (* absurdly wide: not a value-attr constraint *)
      else None

let split_dots s = String.split_on_char '.' s

(* ------------------------------------------------------------------ *)
(* Constraint resolution                                               *)
(* ------------------------------------------------------------------ *)

let arity_error ~loc name expected got =
  Diag.raise_error ~loc "%s expects %s, got %d arguments" name expected got

let rec resolve_cexpr (sc : scope) (e : Ast.cexpr) : C.t =
  match e with
  | Ast.C_int { value; kind; loc } ->
      let ty =
        match kind with
        | None -> Irdl_ir.Attr.i64
        | Some k -> (
            match int_kind_of_name k with
            | Some { C.ik_width; ik_signedness } ->
                Irdl_ir.Attr.integer ~signedness:ik_signedness ik_width
            | None -> Diag.raise_error ~loc "unknown integer kind '%s'" k)
      in
      C.Eq (Irdl_ir.Attr.int ~ty value)
  | Ast.C_string { value; _ } -> C.Eq (Irdl_ir.Attr.string value)
  | Ast.C_list { elems; _ } -> C.Array_exact (List.map (resolve_cexpr sc) elems)
  | Ast.C_ref { prefix; name; args; loc } -> (
      match split_dots name with
      | [ single ] -> resolve_single sc ~prefix ~name:single ~args ~loc
      | [ a; b ] -> resolve_dotted2 sc ~prefix ~a ~b ~args ~loc
      | [ d; e'; c ] ->
          (* dialect-qualified enum constructor *)
          if args <> None then
            Diag.raise_error ~loc "enum constructor %s takes no arguments" name;
          C.Eq (Irdl_ir.Attr.enum ~dialect:d ~enum:e' c)
      | _ -> Diag.raise_error ~loc "cannot resolve reference '%s'" name)

and resolve_args sc args = Option.map (List.map (resolve_cexpr sc)) args

and resolve_single sc ~prefix ~name ~args ~loc : C.t =
  let args' () = resolve_args sc args in
  let expect_n n k =
    match args with
    | Some l when List.length l = n -> k (List.map (resolve_cexpr sc) l)
    | Some l -> arity_error ~loc name (string_of_int n) (List.length l)
    | None -> arity_error ~loc name (string_of_int n) 0
  in
  let expect_some k =
    match args with
    | Some l when l <> [] -> k (List.map (resolve_cexpr sc) l)
    | _ -> arity_error ~loc name "at least one" 0
  in
  let no_args c =
    match args with
    | None -> c
    | Some l -> arity_error ~loc name "no" (List.length l)
  in
  (* 1. Substituted parametric-alias arguments, then constraint variables:
     innermost scopes first. *)
  match SMap.find_opt name sc.subst with
  | Some c -> no_args c
  | None -> (
      match SMap.find_opt name sc.vars with
      | Some v -> no_args (C.Var v)
      | None -> (
          (* 2. Builtin constructors (Figure 2). *)
          match name with
          | "AnyType" -> no_args C.Any_type
          | "AnyAttr" -> no_args C.Any_attr
          | "AnyParam" -> no_args C.Any
          | "AnyOf" -> expect_some (fun cs -> C.Any_of cs)
          | "And" -> expect_some (fun cs -> C.And cs)
          | "Not" -> expect_n 1 (fun cs -> C.Not (List.hd cs))
          | "Variadic" -> expect_n 1 (fun cs -> C.Variadic (List.hd cs))
          | "Optional" -> expect_n 1 (fun cs -> C.Optional (List.hd cs))
          | "array" -> (
              match args' () with
              | None -> C.Array_any
              | Some [ c ] -> C.Array_of c
              | Some l -> arity_error ~loc name "zero or one" (List.length l))
          | "string" -> no_args C.String_param
          | "symbol" -> no_args C.Symbol_param
          | "bool" -> no_args C.Bool_param
          | "location" -> no_args C.Location_param
          | "type_id" -> no_args C.Type_id_param
          | "float" -> no_args (C.Float_param None)
          | _ -> (
              match int_kind_of_name name with
              | Some kind -> no_args (C.Int_param kind)
              | None -> (
                  match value_attr_of_name name with
                  | Some c -> no_args c
                  | None -> (
                      match Irdl_ir.Parser.builtin_ty_of_ident name with
                      | Some ty -> no_args (C.Eq (Irdl_ir.Attr.typ ty))
                      | None -> resolve_local sc ~prefix ~name ~args ~loc)))))

(** Names defined by the current dialect. *)
and resolve_local sc ~prefix ~name ~args ~loc : C.t =
  let params = resolve_args sc args in
  match SMap.find_opt name sc.ty_defs with
  | Some td when prefix <> Ast.P_attr ->
      check_def_arity ~loc ~what:"type" ~name (List.length td.t_params) params;
      C.Base_type { dialect = sc.dialect_name; name; params }
  | _ -> (
      match SMap.find_opt name sc.at_defs with
      | Some ad when prefix <> Ast.P_type ->
          check_def_arity ~loc ~what:"attribute" ~name
            (List.length ad.a_params) params;
          C.Base_attr { dialect = sc.dialect_name; name; params }
      | _ -> (
          match SMap.find_opt name sc.alias_defs with
          | Some alias -> expand_alias sc alias ~params ~loc
          | None -> (
              match SMap.find_opt name sc.constraint_defs with
              | Some cd ->
                  if params <> None then
                    Diag.raise_error ~loc
                      "constraint '%s' takes no arguments" name;
                  let base = resolve_cexpr sc cd.c_base in
                  if cd.c_cpp_constraints = [] then base
                  else
                    C.Native
                      { name; base; snippets = cd.c_cpp_constraints }
              | None -> (
                  match SMap.find_opt name sc.param_defs with
                  | Some tp ->
                      if params <> None then
                        Diag.raise_error ~loc
                          "TypeOrAttrParam '%s' takes no arguments" name;
                      C.Native_param { name; class_name = tp.tp_class_name }
                  | None -> (
                      match SMap.find_opt name sc.enum_defs with
                      | Some _ ->
                          if params <> None then
                            Diag.raise_error ~loc
                              "enum '%s' takes no arguments" name;
                          C.Enum_param
                            { dialect = sc.dialect_name; enum = name }
                      | None ->
                          Diag.raise_error ~loc
                            "unknown name '%s' in dialect %s" name
                            sc.dialect_name)))))

and check_def_arity ~loc ~what ~name expected params =
  match params with
  | None -> ()
  | Some ps ->
      if List.length ps <> expected then
        Diag.raise_error ~loc "%s '%s' expects %d parameters, got %d" what
          name expected (List.length ps)

and expand_alias sc (alias : Ast.alias_def) ~params ~loc : C.t =
  if List.mem alias.al_name sc.expanding then
    Diag.raise_error ~loc "alias '%s' is recursively defined" alias.al_name;
  let subst =
    match (alias.al_params, params) with
    | [], None -> SMap.empty
    | [], Some l ->
        arity_error ~loc alias.al_name "no" (List.length l)
    | formals, Some actuals when List.length formals = List.length actuals ->
        List.fold_left2
          (fun m f a -> SMap.add f a m)
          SMap.empty formals actuals
    | formals, Some actuals ->
        arity_error ~loc alias.al_name
          (string_of_int (List.length formals))
          (List.length actuals)
    | formals, None ->
        arity_error ~loc alias.al_name (string_of_int (List.length formals)) 0
  in
  resolve_cexpr
    { sc with subst; expanding = alias.al_name :: sc.expanding;
      (* Alias bodies are closed w.r.t. constraint variables. *)
      vars = SMap.empty }
    alias.al_body

and resolve_dotted2 sc ~prefix ~a ~b ~args ~loc : C.t =
  (* [a.b] is an enum constructor if [a] names a local enum, a local
     reference if [a] is the current dialect, a builtin spelling if [a] is
     the builtin/std namespace, and a cross-dialect reference otherwise. *)
  match SMap.find_opt a sc.enum_defs with
  | Some e ->
      if args <> None then
        Diag.raise_error ~loc "enum constructor %s.%s takes no arguments" a b;
      if not (List.mem b e.e_cases) then
        Diag.raise_error ~loc "enum %s has no constructor %s" a b;
      C.Eq (Irdl_ir.Attr.enum ~dialect:sc.dialect_name ~enum:a b)
  | None ->
      if a = sc.dialect_name then resolve_local sc ~prefix ~name:b ~args ~loc
      else if a = "builtin" || a = "std" then (
        match Irdl_ir.Parser.builtin_ty_of_ident b with
        | Some ty ->
            if args <> None then
              Diag.raise_error ~loc "builtin type %s takes no arguments" b;
            C.Eq (Irdl_ir.Attr.typ ty)
        | None -> resolve_external sc ~prefix ~dialect:a ~name:b ~args ~loc)
      else resolve_external sc ~prefix ~dialect:a ~name:b ~args ~loc

and resolve_external sc ~prefix ~dialect ~name ~args ~loc : C.t =
  ignore loc;
  let params = resolve_args sc args in
  (* Cross-dialect references cannot be arity-checked locally; the IR
     verifier checks instantiations against the registered definition. *)
  match prefix with
  | Ast.P_attr -> C.Base_attr { dialect; name; params }
  | Ast.P_type | Ast.P_bare -> C.Base_type { dialect; name; params }

(* ------------------------------------------------------------------ *)
(* Definition resolution                                               *)
(* ------------------------------------------------------------------ *)

let rec has_nested_variadic = function
  | C.Variadic c | C.Optional c -> has_nested c
  | c -> has_nested c

and has_nested = function
  | C.Variadic _ | C.Optional _ -> true
  | C.Any_of cs | C.And cs | C.Array_exact cs -> List.exists has_nested cs
  | C.Not c | C.Array_of c -> has_nested c
  | C.Base_type { params = Some ps; _ } | C.Base_attr { params = Some ps; _ }
    ->
      List.exists has_nested ps
  | C.Native { base; _ } -> has_nested base
  | C.Var { v_constraint; _ } -> has_nested v_constraint
  | _ -> false

let resolve_slot sc ~allow_variadic (p : Ast.param) : slot =
  let c = resolve_cexpr sc p.p_constraint in
  (match c with
  | C.Variadic _ | C.Optional _ when not allow_variadic ->
      Diag.raise_error ~loc:p.p_loc
        "Variadic/Optional is not allowed on '%s' in this position" p.p_name
  | _ -> ());
  if has_nested_variadic c then
    Diag.raise_error ~loc:p.p_loc
      "Variadic/Optional may only appear as a top-level constraint (on '%s')"
      p.p_name;
  { s_name = p.p_name; s_constraint = c; s_loc = p.p_loc }

let resolve_typedef sc ~what:_ ~name ~params ~summary ~cpp ~loc : typedef =
  let td_params = List.map (resolve_slot sc ~allow_variadic:false) params in
  { td_name = name; td_params; td_summary = summary; td_cpp = cpp; td_loc = loc }

(** Qualify an operation reference (e.g. a region terminator): names of
    operations defined by the current dialect — dotted or not — get the
    dialect prefix; other dotted names are taken as already qualified. *)
let qualify sc name =
  if SMap.mem name sc.op_names then sc.dialect_name ^ "." ^ name
  else if String.contains name '.' then name
  else sc.dialect_name ^ "." ^ name

let resolve_op sc (o : Ast.op_def) : op =
  (* Constraint variables come into scope left to right; a variable's own
     constraint may refer to previously declared variables. *)
  let sc, vars =
    List.fold_left
      (fun (sc, acc) (p : Ast.param) ->
        if SMap.mem p.p_name sc.vars then
          Diag.raise_error ~loc:p.p_loc
            "duplicate constraint variable '%s' in operation %s" p.p_name
            o.o_name;
        let c = resolve_cexpr sc p.p_constraint in
        let v = { C.v_name = p.p_name; v_constraint = c } in
        ({ sc with vars = SMap.add p.p_name v sc.vars }, v :: acc))
      (sc, []) o.o_constraint_vars
  in
  let op_vars = List.rev vars in
  let op_operands = List.map (resolve_slot sc ~allow_variadic:true) o.o_operands in
  let op_results = List.map (resolve_slot sc ~allow_variadic:true) o.o_results in
  (* Attributes may be Optional (meaning: may be absent) but not Variadic. *)
  let op_attributes =
    List.map
      (fun (p : Ast.param) ->
        let s = resolve_slot sc ~allow_variadic:true p in
        match s.s_constraint with
        | C.Variadic _ ->
            Diag.raise_error ~loc:p.p_loc "attribute '%s' cannot be Variadic"
              s.s_name
        | _ -> s)
      o.o_attributes
  in
  let op_regions =
    List.map
      (fun (r : Ast.region_def) ->
        {
          reg_name = r.r_name;
          reg_args = List.map (resolve_slot sc ~allow_variadic:true) r.r_args;
          reg_terminator = Option.map (qualify sc) r.r_terminator;
        })
      o.o_regions
  in
  {
    op_name = o.o_name;
    op_summary = o.o_summary;
    op_vars;
    op_operands;
    op_results;
    op_attributes;
    op_regions;
    op_successors = o.o_successors;
    op_format = o.o_format;
    op_cpp = o.o_cpp_constraints;
    op_loc = o.o_loc;
  }

(** Resolve a whole dialect definition. Fail-fast without [engine] (first
    error returned as [Error]); fail-soft with it — every error (duplicate
    definitions, unresolvable references, misplaced variadics) is emitted
    and resolution continues with the next definition, so one run reports
    all errors. In fail-soft mode definitions that fail to resolve are
    dropped; the result is [Error] (already emitted) only when the dialect
    scope itself could not be built. *)
let resolve_dialect ?engine (d : Ast.dialect) : (dialect, Diag.t) result =
  let result =
    Diag.protect_any ~loc:d.d_loc (fun () ->
        let on_dup = Option.map (fun e -> Diag.Engine.emit e) engine in
        let sc = scope_of_dialect ?on_dup d in
        (* Fail-fast: let the exception propagate to [protect_any].
           Fail-soft: emit and drop just this definition. *)
        let keep ~loc f x =
          match engine with
          | None -> Some (f x)
          | Some engine -> (
              match Diag.protect_any ~loc (fun () -> f x) with
              | Ok v -> Some v
              | Error diag ->
                  Diag.Engine.emit engine diag;
                  None)
        in
        let dl_types =
          List.filter_map
            (fun (t : Ast.type_def) ->
              keep ~loc:t.t_loc
                (fun t ->
                  let sc = { sc with vars = SMap.empty } in
                  resolve_typedef sc ~what:"type" ~name:t.Ast.t_name
                    ~params:t.t_params ~summary:t.t_summary
                    ~cpp:t.t_cpp_constraints ~loc:t.t_loc)
                t)
            (Ast.types d)
        in
        let dl_attrs =
          List.filter_map
            (fun (a : Ast.attr_def) ->
              keep ~loc:a.a_loc
                (fun a ->
                  resolve_typedef sc ~what:"attribute" ~name:a.Ast.a_name
                    ~params:a.a_params ~summary:a.a_summary
                    ~cpp:a.a_cpp_constraints ~loc:a.a_loc)
                a)
            (Ast.attrs d)
        in
        let seen_ops = Hashtbl.create 16 in
        let dl_ops =
          List.filter_map
            (fun (o : Ast.op_def) ->
              keep ~loc:o.o_loc
                (fun o ->
                  if Hashtbl.mem seen_ops o.Ast.o_name then
                    Diag.raise_error ~loc:o.o_loc
                      "duplicate operation '%s' in dialect %s" o.o_name
                      d.d_name;
                  Hashtbl.add seen_ops o.o_name ();
                  resolve_op sc o)
                o)
            (Ast.ops d)
        in
        {
          dl_name = d.d_name;
          dl_types;
          dl_attrs;
          dl_ops;
          dl_enums = Ast.enums d;
          dl_ast = d;
        })
  in
  (match (result, engine) with
  | Error diag, Some engine -> Diag.Engine.emit engine diag
  | _ -> ());
  result
