(** The public facade of the IRDL implementation.

    {[
      let ctx = Irdl_ir.Context.create () in
      match Irdl_core.Irdl.load ctx source with
      | Ok dialects -> (* registered; parse & verify IR against them *)
      | Error diag -> prerr_endline (Irdl_support.Diag.to_string diag)
    ]} *)

open Irdl_support

val parse :
  ?file:string ->
  ?engine:Diag.Engine.t ->
  string ->
  (Ast.dialect list, Diag.t) result
(** Parse IRDL source into ASTs (no resolution or registration). Alias of
    {!Parser.parse_file}: with [engine] the parse is fail-soft and always
    returns [Ok]; without it the first error is returned as [Error]. *)

val load :
  ?native:Native.t -> ?compile:bool -> ?file:string -> Irdl_ir.Context.t ->
  string -> (Resolve.dialect list, Diag.t) result
(** Parse, resolve and register every dialect in the source. Returns the
    resolved dialects for introspection. [compile] (default [true]) selects
    compiled constraint checkers; see {!Registration.register}. *)

val load_collect :
  ?native:Native.t -> ?compile:bool -> ?file:string ->
  engine:Diag.Engine.t -> Irdl_ir.Context.t -> string ->
  Resolve.dialect list
(** Fail-soft variant of {!load}: every error across parsing, resolution
    and registration is emitted to [engine], and every definition that
    survives is registered, so one run reports all errors in a source. *)

val load_one :
  ?native:Native.t -> ?compile:bool -> ?file:string -> Irdl_ir.Context.t ->
  string -> (Resolve.dialect, Diag.t) result
(** {!load} for sources containing exactly one dialect. *)

val analyze :
  ?file:string -> string -> (Resolve.dialect list, Diag.t) result
(** Parse and resolve without registering (used by the analysis pipeline). *)
