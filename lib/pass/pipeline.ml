(** The textual pass-pipeline parser. See the interface for the grammar. *)

open Irdl_support

let default_file = "<pass-pipeline>"

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let parse ~available ?(file = default_file) src =
  let n = String.length src in
  (* positions.(i) is the source position of byte offset i (i = n is the
     end-of-string position), so every diagnostic is a real span. *)
  let positions = Array.make (n + 1) (Loc.start_of_file file) in
  for i = 0 to n - 1 do
    positions.(i + 1) <- Loc.advance positions.(i) src.[i]
  done;
  let loc i j =
    if i = j then Loc.point positions.(i) else Loc.span positions.(i) positions.(j)
  in
  (* Split into comma-separated segments, keeping offsets. *)
  let segments = ref [] in
  let start = ref 0 in
  let commas = ref [] in
  for i = 0 to n - 1 do
    if src.[i] = ',' then begin
      segments := (!start, i) :: !segments;
      commas := i :: !commas;
      start := i + 1
    end
  done;
  segments := (!start, n) :: !segments;
  let segments = List.rev !segments in
  (* Trim whitespace inside a segment, preserving offsets. *)
  let trim (i, j) =
    let i = ref i and j = ref j in
    while !i < !j && is_space src.[!i] do incr i done;
    while !j > !i && is_space src.[!j - 1] do decr j done;
    (!i, !j)
  in
  let segments = List.map trim segments in
  let available_names = String.concat ", " (List.map Pass.name available) in
  let exception Fail of Diag.t in
  try
    (* A trailing comma leaves an empty final segment; diagnose the comma
       itself rather than the empty name it implies. *)
    (match (List.rev segments, !commas) with
    | (i, j) :: _ :: _, last_comma :: _ when i = j ->
        raise
          (Fail
             (Diag.error
                ~loc:(loc last_comma (last_comma + 1))
                "trailing comma in pass pipeline"))
    | _ -> ());
    (match segments with
    | [ (i, j) ] when i = j ->
        raise (Fail (Diag.error ~loc:(loc 0 n) "empty pass pipeline"))
    | _ -> ());
    let seen : (string * Loc.t) list ref = ref [] in
    let resolve (i, j) =
      let l = loc i j in
      if i = j then
        raise (Fail (Diag.error ~loc:l "empty pass name in pipeline"));
      let name = String.sub src i (j - i) in
      match List.find_opt (fun p -> Pass.name p = name) available with
      | None ->
          raise
            (Fail
               (Diag.error ~loc:l
                  ~notes:
                    [ (Loc.unknown, "available passes: " ^ available_names) ]
                  "unknown pass '%s' in pipeline" name))
      | Some p ->
          (match List.assoc_opt name !seen with
          | Some first ->
              raise
                (Fail
                   (Diag.error ~loc:l
                      ~notes:[ (first, "first occurrence here") ]
                      "duplicate pass '%s' in pipeline" name))
          | None -> seen := (name, l) :: !seen);
          p
    in
    Ok (List.map resolve segments)
  with Fail d -> Error d
