(** The builtin passes. See the interface. *)

open Irdl_support
open Irdl_ir
open Irdl_rewrite

let canonicalize ?max_iterations ~patterns () =
  Pass.make ~name:"canonicalize"
    ~description:
      "apply rewrite patterns greedily to fixpoint, cleaning up dead code \
       between sweeps"
    (fun ctx op -> Ok (Driver.apply ?max_iterations ctx patterns op))

let cse =
  Pass.make ~name:"cse"
    ~description:"dominance-aware common-subexpression elimination"
    (fun ctx op -> Ok (Cse.run ctx op))

let dce =
  Pass.make ~name:"dce" ~description:"dead-code elimination to fixpoint"
    (fun ctx op -> Ok (Rewriter.dce_stats (Rewriter.create ctx op)))

let verify_dominance =
  Pass.make ~name:"verify-dominance"
    ~description:"check SSA dominance (defs dominate uses); mutates nothing"
    (fun _ctx op ->
      match Dominance.verify op with
      | Ok () -> Ok (Stats.v [ ("checked", 1) ])
      | Error d -> Error d)

let builtin ?max_iterations ?(patterns = []) () =
  [ canonicalize ?max_iterations ~patterns (); cse; dce; verify_dominance ]
