(** The pass abstraction (MLIR's [Pass] analog).

    A pass is a named IR transformation (or analysis/check) over one
    top-level operation. It reports its work as unified {!statistics}
    (named counters, shared by every pass) or fails with a structured
    diagnostic. Passes are pure values: wrap any function, register it in
    a pipeline registry, and the textual pipeline parser ({!Pipeline}) and
    the instrumented executor ({!Pass_manager}) treat it exactly like the
    builtins ({!Passes}). *)

open Irdl_support
open Irdl_ir

type statistics = Stats.t
(** What a pass did, as named counters — one representation for the greedy
    driver, CSE, DCE and user passes, with shared [pp]/JSON rendering. *)

type t = {
  name : string;  (** The pipeline name, e.g. ["cse"]. *)
  description : string;  (** One line for [--help] and docs. *)
  run : Context.t -> Graph.op -> (statistics, Diag.t) result;
      (** Transform (mutate) one top-level op, or fail. *)
}

val make :
  name:string ->
  ?description:string ->
  (Context.t -> Graph.op -> (statistics, Diag.t) result) ->
  t

val name : t -> string
val description : t -> string
