(** The textual pass-pipeline parser behind
    [irdl-opt --pass-pipeline "canonicalize,cse,dce"].

    Grammar (documented in DESIGN.md "Pass infrastructure"):

    {v pipeline ::= pass ("," pass)*
   pass     ::= [A-Za-z0-9_-]+        (surrounding whitespace ignored) v}

    Malformed pipelines — an unknown pass name, an empty entry, a duplicate
    entry, a trailing comma — are reported as located {!Irdl_support.Diag}
    diagnostics pointing into the pipeline string (positions are 1-based
    columns under the pseudo-file name {!default_file}), never as
    exceptions. *)

open Irdl_support

val default_file : string
(** ["<pass-pipeline>"], the pseudo-file name used in diagnostics. *)

val parse :
  available:Pass.t list -> ?file:string -> string -> (Pass.t list, Diag.t) result
(** Resolve a comma-separated pipeline against the registry [available]
    (name conflicts resolve to the first entry). Returns the passes in
    pipeline order. *)
