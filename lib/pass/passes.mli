(** The builtin passes: the existing transformations of [lib/rewrite] and
    [lib/ir] wrapped as registered {!Pass.t} values. *)

open Irdl_rewrite

val canonicalize : ?max_iterations:int -> patterns:Pattern.t list -> unit -> Pass.t
(** The greedy pattern driver ([Driver.apply]) over the given patterns,
    with its between-sweep dead-code cleanup. Pipeline name
    ["canonicalize"]. *)

val cse : Pass.t
(** Dominance-aware common-subexpression elimination ([Cse.run]).
    Pipeline name ["cse"]. *)

val dce : Pass.t
(** Dead-code elimination to fixpoint ([Rewriter.dce]). Pipeline name
    ["dce"]. *)

val verify_dominance : Pass.t
(** SSA dominance checking ([Dominance.verify]); mutates nothing and fails
    with the dominance diagnostic. Pipeline name ["verify-dominance"]. *)

val builtin : ?max_iterations:int -> ?patterns:Pattern.t list -> unit -> Pass.t list
(** Every builtin pass, in a stable order — the default registry handed to
    {!Pipeline.parse}. [patterns] (default [[]]) parameterizes
    {!canonicalize}. *)
