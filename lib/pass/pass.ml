(** The pass abstraction. See the interface. *)

open Irdl_support
open Irdl_ir

type statistics = Stats.t

type t = {
  name : string;
  description : string;
  run : Context.t -> Graph.op -> (statistics, Diag.t) result;
}

let make ~name ?(description = "") run = { name; description; run }
let name t = t.name
let description t = t.description
