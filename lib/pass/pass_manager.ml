(** The instrumented pipeline executor. See the interface. *)

open Irdl_support
open Irdl_ir

let src = Logs.Src.create "irdl.pass" ~doc:"Pass manager"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  pm_passes : Pass.t list;
  verify_each : bool;
  verifier : Context.t -> Graph.op -> (unit, Diag.t) result;
  print_before : string list;
  print_after : string list;
  print_before_all : bool;
  print_after_all : bool;
  dump : Context.t -> string -> Graph.op list -> unit;
}

(* Generic form on purpose: snapshots are for debugging pass pipelines, and
   the generic syntax is the one that cannot hide anything. *)
let default_dump ctx header ops =
  Fmt.epr "// -----// %s //----- //@.%s@." header
    (Printer.ops_to_string ~generic:true ctx ops)

let create ?(verify_each = false) ?(verifier = Verifier.verify)
    ?(print_ir_before = []) ?(print_ir_after = [])
    ?(print_ir_before_all = false) ?(print_ir_after_all = false)
    ?(dump = default_dump) passes =
  {
    pm_passes = passes;
    verify_each;
    verifier;
    print_before = print_ir_before;
    print_after = print_ir_after;
    print_before_all = print_ir_before_all;
    print_after_all = print_ir_after_all;
    dump;
  }

let passes t = t.pm_passes

type pass_report = {
  pr_pass : string;
  pr_time_s : float;
  pr_stats : Pass.statistics;
}

type report = { rp_passes : pass_report list; rp_total_s : float }

(* Monotonic, not wall-clock: pass timings must not go negative or jump
   when NTP steps the system clock mid-pipeline. *)
let now = Monotonic.now_s

(* A failing pass keeps its own diagnostic (message and location); the
   pass name rides along as a note so tooling scraping messages still sees
   the underlying failure first. *)
let attribute_failure (p : Pass.t) (d : Diag.t) =
  {
    d with
    Diag.notes =
      d.Diag.notes
      @ [ (Loc.unknown, Fmt.str "while running pass '%s'" p.Pass.name) ];
  }

let attribute_verify_failure (p : Pass.t) (d : Diag.t) =
  {
    d with
    Diag.message =
      Fmt.str "IR verification failed after pass '%s': %s" p.Pass.name
        d.Diag.message;
  }

let verify_module t ctx ops =
  List.fold_left
    (fun acc op -> match acc with Error _ -> acc | Ok () -> t.verifier ctx op)
    (Ok ()) ops

let run_pass t ctx ops (p : Pass.t) : (pass_report, Diag.t) result =
  if t.print_before_all || List.mem p.Pass.name t.print_before then
    t.dump ctx (Fmt.str "IR dump before %s" p.Pass.name) ops;
  let t0 = now () in
  let rec go acc = function
    | [] -> Ok acc
    | op :: rest -> (
        match p.Pass.run ctx op with
        | Ok s -> go (Stats.add acc s) rest
        | Error d -> Error (attribute_failure p d))
  in
  match go Stats.empty ops with
  | Error _ as e -> e
  | Ok stats ->
      let dt = now () -. t0 in
      Log.info (fun m ->
          m "pass %s: %a (%.6f s)" p.Pass.name Stats.pp stats dt);
      if t.print_after_all || List.mem p.Pass.name t.print_after then
        t.dump ctx (Fmt.str "IR dump after %s" p.Pass.name) ops;
      let verified =
        if t.verify_each then
          match verify_module t ctx ops with
          | Ok () -> Ok ()
          | Error d -> Error (attribute_verify_failure p d)
        else Ok ()
      in
      Result.map
        (fun () -> { pr_pass = p.Pass.name; pr_time_s = dt; pr_stats = stats })
        verified

let run t ctx ops =
  let t0 = now () in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match run_pass t ctx ops p with
        | Ok r -> go (r :: acc) rest
        | Error _ as e -> e)
  in
  Result.map
    (fun reports -> { rp_passes = reports; rp_total_s = now () -. t0 })
    (go [] t.pm_passes)

let pp_report ppf r =
  let width =
    List.fold_left
      (fun w pr -> max w (String.length pr.pr_pass))
      (String.length "pass") r.rp_passes
  in
  Fmt.pf ppf "===%s===@." (String.make 60 '-');
  Fmt.pf ppf "  pass execution timing report@.";
  Fmt.pf ppf "===%s===@." (String.make 60 '-');
  Fmt.pf ppf "  total wall-clock: %.6f s@." r.rp_total_s;
  Fmt.pf ppf "  %10s  %7s  %-*s  %s@." "time (s)" "share" width "pass"
    "statistics";
  List.iter
    (fun pr ->
      let share =
        if r.rp_total_s > 0. then 100. *. pr.pr_time_s /. r.rp_total_s else 0.
      in
      Fmt.pf ppf "  %10.6f  %6.1f%%  %-*s  %a@." pr.pr_time_s share width
        pr.pr_pass Stats.pp pr.pr_stats)
    r.rp_passes

let report_to_json r =
  let pass_json pr =
    Fmt.str {|    { "pass": "%s", "time_s": %.6f, "stats": %s }|} pr.pr_pass
      pr.pr_time_s
      (Stats.to_json pr.pr_stats)
  in
  Fmt.str "{\n  \"total_s\": %.6f,\n  \"passes\": [\n%s\n  ]\n}\n"
    r.rp_total_s
    (String.concat ",\n" (List.map pass_json r.rp_passes))
