(** The instrumented pipeline executor (MLIR's [PassManager] +
    [PassInstrumentation] analog).

    A manager holds an ordered list of passes and instrumentation options;
    {!run} executes the pipeline over a parsed module (a list of top-level
    operations) and returns a {!report}: per-pass wall-clock time plus the
    pass's unified statistics, aggregated across the module's ops.

    Instrumentation:
    - {b timing} is always collected (monotonic-enough wall clock); render
      it with {!pp_report} (text) or {!report_to_json} (machine-readable,
      the [--pass-timing-json] payload).
    - {b IR snapshots}: [print_ir_before]/[print_ir_after] name passes to
      dump the IR around (or [_all] for every pass); dumps go through the
      [dump] hook (default: generic-form printing to stderr with an
      MLIR-style [// -----// IR dump before cse //----- //] header).
    - {b verify-each}: after every pass, re-run the (memoized) verifier
      over the whole module; a failure is attributed to the pass by name —
      ["IR verification failed after pass 'cse': ..."]. The verifier is a
      hook so tests can inject one; the default is
      {!Irdl_ir.Verifier.verify}. *)

open Irdl_support
open Irdl_ir

type t

val create :
  ?verify_each:bool ->
  ?verifier:(Context.t -> Graph.op -> (unit, Diag.t) result) ->
  ?print_ir_before:string list ->
  ?print_ir_after:string list ->
  ?print_ir_before_all:bool ->
  ?print_ir_after_all:bool ->
  ?dump:(Context.t -> string -> Graph.op list -> unit) ->
  Pass.t list ->
  t

val passes : t -> Pass.t list

type pass_report = {
  pr_pass : string;  (** pass name *)
  pr_time_s : float;  (** wall-clock seconds, summed over the module's ops *)
  pr_stats : Pass.statistics;  (** aggregated over the module's ops *)
}

type report = { rp_passes : pass_report list; rp_total_s : float }

val run : t -> Context.t -> Graph.op list -> (report, Diag.t) result
(** Execute the pipeline over the module. Stops at the first failure: a
    failing pass keeps its own diagnostic and gains a
    ["while running pass '<name>'"] note; a [verify_each] failure is
    attributed with ["IR verification failed after pass '<name>':"]. *)

val pp_report : Format.formatter -> report -> unit
(** The human-readable timing report: total time, then one row per pass
    with time, share of total, and statistics. *)

val report_to_json : report -> string
(** Machine-readable rendering:
    [{ "total_s": ..., "passes": [ { "pass": ..., "time_s": ...,
       "stats": {...} }, ... ] }]. *)
