(* The unified frontend: every input — file, stdin, batch entry — becomes a
   [Source.payload] classified by magic sniffing (text or bytecode), every
   output flows through a [Sink] (textual printer or bytecode emitter), and
   [Stream] erases the text/bytecode distinction behind the pull-based
   session API of [Ir.Parser.Stream]. Drivers compose these uniformly
   across --split-input-file, --batch, --jobs and streaming instead of
   growing per-format input paths. *)

open Irdl_support
module Graph = Irdl_ir.Graph
module Context = Irdl_ir.Context
module Printer = Irdl_ir.Printer
module Ir_parser = Irdl_ir.Parser
module Resolve = Irdl_core.Resolve
module Native = Irdl_core.Native

module Source = struct
  type payload = Text of string | Binary of string

  let classify s = if Bytecode.sniff s then Binary s else Text s
  let contents = function Text s | Binary s -> s
  let is_binary = function Binary _ -> true | Text _ -> false

  (* Classify a channel that cannot seek (stdin): peek just the magic-sized
     prefix, then push it back by prepending — never [seek_in]. *)
  let of_channel ic =
    let mlen = String.length Bytecode.magic in
    let buf = Bytes.create mlen in
    let rec fill off =
      if off = mlen then off
      else
        match input ic buf off (mlen - off) with
        | 0 -> off
        | n -> fill (off + n)
    in
    let got = fill 0 in
    let prefix = Bytes.sub_string buf 0 got in
    classify (prefix ^ In_channel.input_all ic)

  let read path =
    if path = "-" then begin
      In_channel.set_binary_mode stdin true;
      of_channel stdin
    end
    else
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> classify (really_input_string ic (in_channel_length ic)))

  (* The unit-of-work split: '// -----' chunks for text, document
     boundaries for bytecode. Without [split] the payload is one chunk —
     a multi-document bytecode buffer still reads fine, the documents are
     just processed as one unit. *)
  let chunks ~split payload =
    match payload with
    | Text s ->
        let parts = if split then Diag_harness.split_input s else [ s ] in
        List.map (fun c -> Text c) parts
    | Binary b ->
        if split then
          List.map (fun c -> Binary c) (Bytecode.split_documents b)
        else [ payload ]
end

module Sink = struct
  type t =
    | Text_sink of {
        printer : Printer.t;
        buf : Buffer.t;
        mutable first : bool;
      }
    | Binary_sink of { w : Bytecode.Write.t; mutable err : Diag.t option }

  let text ?generic ctx =
    Text_sink
      {
        printer = Printer.create ?generic ctx;
        buf = Buffer.create 256;
        first = true;
      }

  let bytecode () = Binary_sink { w = Bytecode.Write.create (); err = None }
  let is_binary = function Binary_sink _ -> true | Text_sink _ -> false

  let push t op =
    match t with
    | Text_sink s ->
        if s.first then s.first <- false else Buffer.add_char s.buf '\n';
        Buffer.add_string s.buf
          (Fmt.str "%a" (Printer.pp_op s.printer) op)
    | Binary_sink s ->
        if s.err = None then (
          match
            Diag.protect_any (fun () -> Bytecode.Write.push_op s.w op)
          with
          | Ok () -> ()
          | Error d -> s.err <- Some d)

  let close = function
    | Text_sink s -> Ok (Buffer.contents s.buf)
    | Binary_sink s -> (
        match s.err with
        | Some d -> Error d
        | None -> Bytecode.Write.close s.w)
end

module Stream = struct
  type t =
    | Text_stream of Ir_parser.Stream.session
    | Binary_stream of Bytecode.Stream.session

  let create ?file ?engine ?limits ctx payload =
    match payload with
    | Source.Text s ->
        Text_stream (Ir_parser.Stream.create ?file ?engine ?limits ctx s)
    | Source.Binary b ->
        Binary_stream (Bytecode.Stream.create ?file ?engine ?limits ctx b)

  let next = function
    | Text_stream s -> Ir_parser.Stream.next s
    | Binary_stream s -> Bytecode.Stream.next s

  let release = Graph.release
end

let parse_module ?file ?engine ?limits ctx payload =
  match payload with
  | Source.Text s -> Ir_parser.parse_ops ?file ?engine ?limits ctx s
  | Source.Binary b -> Bytecode.read_module ?file ?engine ?limits ctx b

let load_dialects ?native ?compile ?file ?engine ctx payload =
  match (payload, engine) with
  | Source.Text src, None ->
      Irdl_core.Irdl.load ?native ?compile ?file ctx src
  | Source.Text src, Some engine ->
      Ok (Irdl_core.Irdl.load_collect ?native ?compile ?file ~engine ctx src)
  | Source.Binary b, None ->
      Result.bind (Bytecode.read_dialects ?file b) (fun dls ->
          let rec reg = function
            | [] -> Ok dls
            | dl :: tl ->
                Result.bind
                  (Irdl_core.Registration.register ?native ?compile ctx dl)
                  (fun () -> reg tl)
          in
          reg dls)
  | Source.Binary b, Some engine -> (
      match Bytecode.read_dialects ?file ~engine b with
      | Error d -> Error d
      | Ok dls ->
          List.iter
            (fun dl ->
              List.iter (Diag.Engine.emit engine)
                (Irdl_core.Registration.register_collect ?native ?compile ctx
                   dl))
            dls;
          Ok dls)
