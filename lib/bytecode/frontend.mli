(** The unified text/bytecode frontend.

    Every input becomes a {!Source.payload} classified by magic sniffing;
    every output flows through a {!Sink}; {!Stream} erases the format
    distinction behind the pull-based session API of
    [Irdl_ir.Parser.Stream]. Drivers (irdl-opt) compose these uniformly
    across [--split-input-file], [--batch], [--jobs] and streaming. *)

open Irdl_support
module Graph = Irdl_ir.Graph
module Context = Irdl_ir.Context

(** Classified inputs. *)
module Source : sig
  type payload = Text of string | Binary of string

  val classify : string -> payload
  (** [Binary] iff the buffer starts with the bytecode magic. *)

  val contents : payload -> string
  val is_binary : payload -> bool

  val of_channel : in_channel -> payload
  (** Classify a channel that cannot seek (stdin): the magic-sized prefix
      is peeked and pushed back by prepending; [seek_in] is never used. *)

  val read : string -> payload
  (** Read and classify a file path, or stdin for ["-"] (switched to
      binary mode first).
      @raise Sys_error as [open_in] does. *)

  val chunks : split:bool -> payload -> payload list
  (** The independent units of work in a payload: [// -----] chunks for
      text, document boundaries for bytecode. Without [split], the whole
      payload as one chunk. *)
end

(** Output accumulation: the textual printer (one printer session, ops
    joined with a newline — byte-identical to [Printer.ops_to_string]) or
    the incremental bytecode emitter. Ops may be pushed as they stream;
    push never raises (the first emit error is reported by {!Sink.close}). *)
module Sink : sig
  type t

  val text : ?generic:bool -> Context.t -> t
  val bytecode : unit -> t
  val is_binary : t -> bool
  val push : t -> Graph.op -> unit
  val close : t -> (string, Diag.t) result
end

(** Format-erased pull-based parsing: [Ir.Parser.Stream] for text,
    [Bytecode.Stream] for bytecode, one session API. *)
module Stream : sig
  type t

  val create :
    ?file:string ->
    ?engine:Diag.Engine.t ->
    ?limits:Limits.t ->
    Context.t ->
    Source.payload ->
    t

  val next : t -> (Graph.op option, Diag.t) result
  val release : Graph.op -> unit
end

val parse_module :
  ?file:string ->
  ?engine:Diag.Engine.t ->
  ?limits:Limits.t ->
  Context.t ->
  Source.payload ->
  (Graph.op list, Diag.t) result
(** Materialize a whole payload: [Parser.parse_ops] for text,
    [Bytecode.read_module] for bytecode; same fail-fast/fail-soft
    [?engine] discipline as both. [limits] caps payload size, op count,
    region depth and wall time (see {!Limits}); budget violations abort
    the session even in fail-soft mode. *)

val load_dialects :
  ?native:Irdl_core.Native.t ->
  ?compile:bool ->
  ?file:string ->
  ?engine:Diag.Engine.t ->
  Context.t ->
  Source.payload ->
  (Irdl_core.Resolve.dialect list, Diag.t) result
(** Load and register dialect definitions from IRDL text ([Irdl.load]) or
    a bytecode dialect pack ([Bytecode.read_dialects] + registration).
    With [engine] the load is fail-soft: errors are emitted, surviving
    definitions are registered, and the result is [Ok] with the dialects
    that loaded. *)
