(** Versioned binary serialization ("IRDL bytecode") for IR modules and
    resolved IRDL dialect definitions.

    A bytecode buffer is a sequence of self-delimiting {e documents}, each
    [magic version kind payload_len payload]; documents concatenate freely
    (the binary analog of [// -----] chunks). Module payloads carry
    deduplicated string and type/attribute tables that intern directly on
    load, plus a byte-length index of the top-level ops so a streaming
    reader can {!Stream.skip} an op — regions included — without decoding
    it.

    The reader never crashes on malformed input: every read is
    bounds-checked and surfaces as a located diagnostic (an [Error], or an
    emit on the fail-soft [?engine]). See DESIGN.md "Bytecode format" for
    the layout and compatibility policy. *)

open Irdl_support
module Graph = Irdl_ir.Graph
module Context = Irdl_ir.Context
module Resolve = Irdl_core.Resolve

val magic : string
(** The 8-byte document magic; the lead byte is invalid UTF-8, so bytecode
    never collides with textual IR. *)

val version : int
(** The format version this library writes; the reader accepts
    [1..version]. *)

val sniff : string -> bool
(** Does the buffer start with the bytecode magic? *)

type kind = Module_doc | Dialect_doc

type doc_info = {
  di_kind : kind;
  di_version : int;
  di_offset : int;  (** byte offset of the document in the buffer *)
  di_length : int;  (** total document length, header included *)
}

val documents : ?file:string -> string -> doc_info list
(** Walk the document headers without decoding payloads. An undecodable
    tail is returned as one final opaque slice (version 0), so consumers
    still visit — and report — it. *)

val split_documents : ?file:string -> string -> string list
(** The buffer split at document boundaries (the bytecode analog of
    splitting text on [// -----]). A buffer holding zero or one document
    is returned whole. *)

(** Serializing: an incremental module writer (ops pushed one at a time —
    the streaming emit path) plus whole-value convenience entry points. *)
module Write : sig
  type t

  val create : unit -> t

  val push_op : t -> Graph.op -> unit
  (** Append one top-level op.
      @raise Diag.Error_exn on unserializable structure (a successor
      outside the enclosing region). *)

  val close : t -> (string, Diag.t) result
  (** The finished single-document buffer. [Error] when a value used by
      the emitted ops was never defined by them. *)

  val module_to_string : Graph.op list -> (string, Diag.t) result
  val dialects_to_string : Resolve.dialect list -> (string, Diag.t) result
end

val read_module :
  ?file:string ->
  ?engine:Diag.Engine.t ->
  ?limits:Irdl_support.Limits.t ->
  Context.t ->
  string ->
  (Graph.op list, Diag.t) result
(** Materialize every module document of the buffer. Fail-fast without
    [engine] (first error, as [Error]); fail-soft with it (errors emitted,
    decoding resumes at the next document boundary, always [Ok] with the
    ops that decoded). Drains {!Stream} internally, so diagnostics are
    identical to the streaming path. [limits] caps payload size, decoded
    ops, region depth and wall time across the whole buffer; budget
    violations abort the session even in fail-soft mode. *)

val read_dialects :
  ?file:string ->
  ?engine:Diag.Engine.t ->
  string ->
  (Resolve.dialect list, Diag.t) result
(** Decode every dialect document of the buffer; error discipline as
    {!read_module}. The surface AST is not serialized: loaded dialects
    carry a minimal [dl_ast] holding only the enum definitions. *)

(** Pull-based reading, API-compatible with {!Irdl_ir.Parser.Stream}: one
    fully-materialized top-level op at a time, in document order. *)
module Stream : sig
  type session

  val create :
    ?file:string ->
    ?engine:Diag.Engine.t ->
    ?limits:Irdl_support.Limits.t ->
    Context.t ->
    string ->
    session

  val next : session -> (Graph.op option, Diag.t) result
  (** The next top-level op, [Ok None] at end of input. As with the
      textual stream, an op is yielded only once every forward value
      reference pending at its decode has resolved. In fail-fast mode the
      first error is sticky; with an engine, errors are emitted and the
      session resumes at the next document — except budget violations
      (diagnostic code [resource_exhausted]/[deadline_exceeded]), which
      are sticky in both modes. *)

  val skip : session -> (bool, Diag.t) result
  (** Skip the next top-level op {e without decoding it} — one hop through
      the byte-length index, regions included. [Ok false] at end of
      input. Values defined by skipped ops surface as [Released]
      placeholders to later uses, mirroring a streamed-and-released
      subtree. *)

  val release : Graph.op -> unit
  (** Alias of {!Graph.release}. *)
end

(** Structural equality oracles for round-trip tests: values and blocks
    are paired by definition position, identities and locations are
    ignored. *)
module Equal : sig
  val module_eq : Graph.op list -> Graph.op list -> bool
  val dialect_eq : Resolve.dialect -> Resolve.dialect -> bool
end
